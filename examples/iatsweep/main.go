// IAT sweep: reproduce the Figure 1 scenario for any function — how the
// invocation inter-arrival time drives a warm instance lukewarm as
// co-resident instances thrash the host's microarchitectural state.
//
//	go run ./examples/iatsweep [function]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"lukewarm"
)

func main() {
	name := "Auth-P"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	fn, err := lukewarm.FunctionByName(name)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CPI of %s vs inter-arrival time on a ~50%%-loaded host\n", fn.Name)
	fmt.Printf("(normalized to back-to-back invocations; paper Fig. 1 saturates at 150-270%%)\n\n")

	iats := []float64{0, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000}
	var base float64
	for _, iat := range iats {
		srv := lukewarm.NewServer(lukewarm.ServerConfig{CPU: lukewarm.CharacterizationConfig()})
		inst := srv.Deploy(fn)
		srv.RunReference(inst, 2) // warm up
		var cpi float64
		const n = 3
		for i := 0; i < n; i++ {
			cpi += srv.RunWithIAT(inst, 1, iat).CPI()
		}
		cpi /= n
		if iat == 0 {
			base = cpi
		}
		norm := cpi / base * 100
		bar := strings.Repeat("#", int(norm/5))
		fmt.Printf("IAT %8.1f ms  CPI %.3f  %4.0f%%  %s\n", iat, cpi, norm, bar)
	}
}

// Predictive pre-warming: spend speculative replay to buy back the lukewarm
// penalty. Under production restore semantics the dispatch-time warm-up
// replay blocks the invocation (TrafficConfig.SyncReplay), so every arrival
// that finds its instance merely resident — not pre-warmed — pays the
// restore on its critical path. A forecaster that predicts the next arrival
// can run that replay early, off the critical path; a forecaster that fires
// into a lull wastes the replay bytes and the ledger says so.
//
// This walkthrough serves the same bursty traffic three ways on a host
// carrying both warm-up mechanisms (Jukebox instruction-region replay +
// REAP page-manifest restore):
//
//   - bare: no prediction — every dispatch pays its synchronous replay
//   - histogram: the ATC'20-style IAT-histogram forecaster, which must
//     learn the rhythm online and mispredicts the bursts' lulls
//   - oracle: an upper bound that peeks at the true schedule
//
// The readiness ladder (cold -> resident -> pre-warmed -> executing) is
// accounted in wall-clock: TierPrewarmedMs is time instances sat ready
// ahead of a predicted arrival.
//
//	go run ./examples/prewarm
package main

import (
	"fmt"
	"log"

	"lukewarm"
)

var funcs = []string{"Auth-G", "Email-P"}

// serve runs bursty traffic with synchronous restore semantics; fc "" leaves
// prediction off, otherwise it names the forecaster to arm.
func serve(fc string, leadMs float64) lukewarm.TrafficResult {
	jb := lukewarm.DefaultJukeboxConfig()
	rc := lukewarm.DefaultReapConfig()
	srv := lukewarm.NewServer(lukewarm.ServerConfig{Jukebox: &jb, Reap: &rc})
	for _, name := range funcs {
		w, err := lukewarm.FunctionByName(name)
		if err != nil {
			log.Fatal(err)
		}
		srv.Deploy(w)
	}
	cfg := lukewarm.TrafficConfig{
		MeanIATms:              64,
		Bursty:                 true,
		InvocationsPerInstance: 16,
		NoKeepAlive:            true,
		AmbientThrash:          true,
		SyncReplay:             true,
		Seed:                   29,
	}
	if fc != "" {
		cfg.Predict = &lukewarm.PredictConfig{
			Forecaster: lukewarm.NewForecaster(fc),
			LeadMs:     leadMs,
		}
	}
	res, err := srv.ServeTraffic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := lukewarm.AuditTraffic(res); err != nil {
		log.Fatalf("traffic audit: %v", err)
	}
	return res
}

func main() {
	const leadMs float64 = 16

	bare := serve("", 0)
	fmt.Printf("bursty traffic on %v, synchronous restore, lead %g ms\n\n", funcs, leadMs)
	show := func(label string, r lukewarm.TrafficResult) {
		l := r.Prewarm
		fmt.Printf("%-10s CPI %.3f   sync replays %2d (%6.2f ms on critical path)   "+
			"pre-warms %d sched / %d used / %d wasted (%.0f KiB wasted)   pre-warmed %4.0f ms\n",
			label, r.CPI.Mean(), r.SyncReplays, r.SyncReplayMs,
			l.Scheduled, l.Used, l.Wasted, float64(l.WastedReplayBytes)/1024,
			r.TierPrewarmedMs)
	}
	show("bare", bare)
	show("histogram", serve("histpeak", leadMs))
	show("oracle", serve("oracle", leadMs))

	fmt.Println("\nA used pre-warm already ran the replay off the critical path, so the")
	fmt.Println("invocation pays at most the unfinished tail; a wasted one spent real")
	fmt.Println("replay bytes on an arrival that never came. Run `lukewarm prewarm`")
	fmt.Println("for the full forecaster x lead x arrival-shape sweep.")
}

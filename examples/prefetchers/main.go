// Prefetcher comparison: run one function lukewarm under four front-end
// configurations — no prefetcher, PIF, PIF-ideal, and Jukebox — and report
// speedups plus L2 instruction-miss coverage, the Sec. 5.5 story in
// miniature.
//
//	go run ./examples/prefetchers [function]
package main

import (
	"fmt"
	"log"
	"os"

	"lukewarm"
)

// run executes n lukewarm invocations under the given setup and returns the
// last result plus the instruction coverage observed at the L2.
func run(fn lukewarm.Workload, attach func(*lukewarm.Server) *lukewarm.Instance, n int) (lukewarm.RunResult, float64) {
	srv := lukewarm.NewServer(lukewarm.ServerConfig{})
	inst := attach(srv)
	_ = srv.RunLukewarm(inst, n-1)
	srv.Core.Hier.ResetStats()
	res := srv.RunLukewarm(inst, 1)
	l2 := srv.Core.Hier.L2.Stats
	covered := float64(l2.PrefetchUsed[lukewarm.InstrKind])
	total := covered + float64(l2.DemandMisses[lukewarm.InstrKind])
	cov := 0.0
	if total > 0 {
		cov = covered / total
	}
	return res, cov
}

func main() {
	name := "ProdL-G"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	fn, err := lukewarm.FunctionByName(name)
	if err != nil {
		log.Fatal(err)
	}

	const invocations = 4
	type cfg struct {
		label  string
		attach func(*lukewarm.Server) *lukewarm.Instance
	}
	jb := lukewarm.DefaultJukeboxConfig()
	configs := []cfg{
		{"baseline", func(s *lukewarm.Server) *lukewarm.Instance {
			return s.Deploy(fn)
		}},
		{"PIF", func(s *lukewarm.Server) *lukewarm.Instance {
			s.AttachCorePrefetcher(lukewarm.NewPIF(lukewarm.DefaultPIFConfig(), s))
			return s.Deploy(fn)
		}},
		{"PIF-ideal", func(s *lukewarm.Server) *lukewarm.Instance {
			s.AttachCorePrefetcher(lukewarm.NewPIF(lukewarm.IdealPIFConfig(), s))
			return s.Deploy(fn)
		}},
	}

	fmt.Printf("lukewarm executions of %s (%s), %d invocations each\n\n", fn.Name, fn.Lang, invocations)
	var baseCPI float64
	for _, c := range configs {
		res, _ := run(fn, c.attach, invocations)
		if c.label == "baseline" {
			baseCPI = res.CPI()
		}
		fmt.Printf("%-12s CPI %.3f  speedup %+5.1f%%\n", c.label, res.CPI(), (baseCPI/res.CPI()-1)*100)
	}

	// Jukebox needs the per-instance deployment path.
	srv := lukewarm.NewServer(lukewarm.ServerConfig{Jukebox: &jb})
	inst := srv.Deploy(fn)
	_ = srv.RunLukewarm(inst, invocations-1)
	srv.Core.Hier.ResetStats()
	res := srv.RunLukewarm(inst, 1)
	l2 := srv.Core.Hier.L2.Stats
	cov := float64(l2.PrefetchUsed[lukewarm.InstrKind]) /
		float64(l2.PrefetchUsed[lukewarm.InstrKind]+l2.DemandMisses[lukewarm.InstrKind])
	fmt.Printf("%-12s CPI %.3f  speedup %+5.1f%%  (L2 instr-miss coverage %.0f%%, metadata %dB)\n",
		"Jukebox", res.CPI(), (baseCPI/res.CPI()-1)*100, cov*100,
		inst.Jukebox.ReplayBuffer().SizeBytes())
	fmt.Println("\npaper (Fig. 13 geomeans): PIF +2.4%, PIF-ideal +6.7%, Jukebox +18.7%")
}

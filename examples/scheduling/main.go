// Scheduling: what the cluster scheduler can do about lukewarm functions
// before any hardware changes. Placement decides which core serves an
// invocation — and therefore whose microarchitectural leftovers it finds —
// while keep-alive decides whether the instance is still warm in memory at
// all. This walkthrough runs both policy families against the same traffic
// the characterization uses.
//
// Part 1 deploys a subset of the suite co-resident on an 8-core host under
// busy Poisson traffic and compares placement policies: the
// earliest-available baseline scatters each function across cores (every
// invocation lands on someone else's cache state), sticky affinity routes
// it back to the core it warmed most recently, and the Jukebox-aware placer
// keeps instances where their prefetch metadata is already bound. With
// roughly one core available per function, affinity placement keeps each
// function's L1-I and BTB state alive between its invocations — the warmth
// a consolidated host loses.
//
// Part 2 slows traffic down to provider-scale inter-arrival times under a
// diurnal daily rhythm and compares keep-alive policies at the memory
// budget each one spends: a fixed timeout evicts on schedule and eats a
// cold start almost every time, while the hybrid histogram (Shahrad et al.,
// ATC'20) learns each function's rhythm and pre-warms just in time.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"lukewarm"
)

// The co-resident subset: enough functions to keep the host busy and make
// placement decisions matter, small enough to run in seconds.
var funcs = []string{"Auth-G", "Pay-N", "Email-P", "ProdL-G", "Curr-N", "Geo-G"}

func deploy(srv *lukewarm.Server) {
	for _, name := range funcs {
		w, err := lukewarm.FunctionByName(name)
		if err != nil {
			log.Fatal(err)
		}
		srv.Deploy(w)
	}
}

// servePlacement runs busy Poisson traffic on an 8-core Jukebox host under
// the given placement policy.
func servePlacement(p lukewarm.Placer) lukewarm.TrafficResult {
	jb := lukewarm.DefaultJukeboxConfig()
	srv := lukewarm.NewServer(lukewarm.ServerConfig{Cores: 8, Jukebox: &jb})
	deploy(srv)
	res, err := srv.ServeTraffic(lukewarm.TrafficConfig{
		MeanIATms:              2, // busy: each function fires every 2 ms
		Poisson:                true,
		InvocationsPerInstance: 6,
		KeepAliveMs:            200,
		ColdStartMs:            250,
		ShedAfterMs:            50,
		Placer:                 p,
		Seed:                   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// serveKeepAlive runs slow diurnal traffic under the given eviction policy.
func serveKeepAlive(ka lukewarm.KeepAlive) lukewarm.TrafficResult {
	srv := lukewarm.NewServer(lukewarm.ServerConfig{Cores: 2})
	deploy(srv)
	res, err := srv.ServeTraffic(lukewarm.TrafficConfig{
		MeanIATms:              400, // provider-scale gaps, compressed
		Diurnal:                true,
		InvocationsPerInstance: 10,
		ColdStartMs:            25, // compressed with the gaps
		KeepAlive:              ka,
		Seed:                   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Part 1: placement policy, 8 cores, busy Poisson traffic")
	fmt.Println()
	placers := []struct {
		label string
		p     lukewarm.Placer
	}{
		{"earliest-available", lukewarm.EarliestAvailablePlacer()},
		{"round-robin", lukewarm.RoundRobinPlacer()},
		{"sticky-affinity", lukewarm.StickyAffinityPlacer(0)},
		{"jukebox-aware", lukewarm.JukeboxAwarePlacer(0)},
	}
	baseCPI := 0.0
	for i, pl := range placers {
		res := servePlacement(pl.p)
		cpi := res.CPI.Mean()
		if i == 0 {
			baseCPI = cpi
		}
		fmt.Printf("  %-20s CPI %.3f (%+5.1f%% vs baseline)  %3d migrations  %3.0f%% Jukebox coverage  %4.1f%% shed\n",
			pl.label, cpi, (baseCPI/cpi-1)*100,
			res.PlacementMigrations, res.JukeboxCoverage()*100, res.ShedRate()*100)
	}
	fmt.Println()
	fmt.Println("  Sticky placement finds warm L1-I/BTB state the baseline scatters;")
	fmt.Println("  the Jukebox-aware placer trades a little of that for fewer Bind calls.")
	fmt.Println()

	fmt.Println("Part 2: keep-alive policy, diurnal traffic, mean gap 400 ms")
	fmt.Println()
	kas := []struct {
		label string
		ka    lukewarm.KeepAlive
	}{
		{"fixed-timeout 260ms", lukewarm.FixedTimeoutKeepAlive(260)},
		{"hybrid-histogram", lukewarm.HybridKeepAlive(lukewarm.HybridKeepAliveConfig{FallbackMs: 260})},
		{"no-evict", lukewarm.NoEvictKeepAlive()},
	}
	for _, k := range kas {
		res := serveKeepAlive(k.ka)
		resident := res.ResidentMs / float64(res.Served)
		fmt.Printf("  %-20s %5.1f%% cold starts  %3d pre-warm hits  %4.0f ms resident memory per invocation\n",
			k.label, res.ColdStartRate()*100, res.PrewarmHits, resident)
	}
	fmt.Println()
	fmt.Println("  The hybrid policy cold-starts only while learning each function's")
	fmt.Println("  rhythm, then pre-warms just in time — fewer cold starts than the")
	fmt.Println("  fixed timeout at a smaller instance-memory budget. No-evict is the")
	fmt.Println("  zero-cold-start bound at unbounded memory cost.")
}

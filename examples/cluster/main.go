// Cluster: what node failures cost a fleet of lukewarm-function servers,
// and what a resilient front end buys back. Every single-node result in
// this repository assumes the node stays up; a crash destroys exactly the
// state those results bank on — warm instances, cache contents, and the
// Jukebox metadata that makes rescheduled invocations fast. This
// walkthrough runs the same three-node fleet through rising failure rates,
// first with the front end stripped bare, then with the full resilience
// stack (retry/backoff, hedged requests, health ejection) switched on.
//
// Everything is seeded and deterministic: fault draws are keyed to the
// request, so a run replays bit-for-bit and the set of requests struck at a
// low failure rate is a subset of the set struck at a higher one.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"lukewarm"
)

// The co-resident subset deployed on every node.
var funcs = []string{"Auth-G", "Email-P", "Pay-N", "Geo-G"}

func workloads() []lukewarm.Workload {
	var ws []lukewarm.Workload
	for _, name := range funcs {
		w, err := lukewarm.FunctionByName(name)
		if err != nil {
			log.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// fleet builds a three-node configuration at the given failure intensity
// (0 = clean). resilient arms the front end's full recovery stack.
func fleet(intensity float64, resilient bool) lukewarm.FleetConfig {
	cfg := lukewarm.FleetConfig{
		Nodes:     3,
		Workloads: workloads(),
		Traffic: lukewarm.TrafficConfig{
			MeanIATms:              8, // brisk: backlogs form, so hedging has work to do
			Poisson:                true,
			InvocationsPerInstance: 8,
			KeepAliveMs:            200,
			ColdStartMs:            25,
			Seed:                   7,
		},
	}
	if resilient {
		cfg.DeadlineMs = 300
		cfg.RetryMax = 2
		cfg.RetryBackoffMs = 2
		cfg.HedgeDelayMinMs = 1
		cfg.EjectAfter = 3
		cfg.EjectMs = 50
	}
	if intensity > 0 {
		cfg.Faults = lukewarm.NewFaultPlan(11, lukewarm.FaultKinds()...)
		cfg.DispatchFlakeProb = 0.10 * intensity
		cfg.InstanceCrashProb = 0.05 * intensity
		cfg.NodeCrashMTBFms = 800 / intensity
		cfg.NodeDownMs = 120
	}
	return cfg
}

func show(label string, r lukewarm.FleetResult) {
	fmt.Printf("  %-18s %6.1f%% available  %2d node / %2d instance crashes  "+
		"%2d retries  cold/luke/warm %d/%d/%d  p99 %6.0f cyc\n",
		label, r.Availability()*100, r.NodeCrashes, r.InstanceCrashes,
		r.Retries, r.ColdServed, r.LukewarmServed, r.WarmServed,
		r.P99LatencyCycles())
}

func run(cfg lukewarm.FleetConfig) lukewarm.FleetResult {
	r, err := lukewarm.RunFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Every run must balance its request ledger: offered = served + shed +
	// failed, retries never double-count, nothing served by a down node.
	if err := lukewarm.AuditFleetResult(&r); err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("Part 1: a bare fleet under rising failure rates (no retries, no hedging)")
	fmt.Println()
	for _, in := range []float64{0, 0.5, 1, 2} {
		show(fmt.Sprintf("intensity %.1fx", in), run(fleet(in, false)))
	}
	fmt.Println()
	fmt.Println("  Availability falls monotonically: keyed fault draws mean a request")
	fmt.Println("  struck at 0.5x is also struck at 2x, so nothing recovers by luck.")
	fmt.Println("  Node crashes force cold restarts — the warmth (and Jukebox")
	fmt.Println("  metadata) the single-node results assume is simply gone.")
	fmt.Println()

	fmt.Println("Part 2: the same fleet with the resilience stack armed")
	fmt.Println()
	for _, in := range []float64{0.5, 1, 2} {
		r := run(fleet(in, true))
		show(fmt.Sprintf("intensity %.1fx", in), r)
		fmt.Printf("  %18s hedges %d (wasted %d, rescues %d)  ejections %d  failed %d\n",
			"", r.Hedges, r.WastedHedges, r.HedgeRescues, r.Ejections, r.Failed)
	}
	fmt.Println()
	fmt.Println("  Retries and hedging buy most of the availability back, at a price")
	fmt.Println("  the result itemizes: redone work arrives cold or lukewarm, wasted")
	fmt.Println("  hedge copies burn cycles, and the tail latency carries the backoff.")
}

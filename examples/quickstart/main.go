// Quickstart: deploy one serverless function on a simulated host and
// compare a truly warm invocation, a lukewarm invocation (microarchitectural
// state obliterated by interleaving), and a lukewarm invocation accelerated
// by Jukebox.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lukewarm"
)

func main() {
	fn, err := lukewarm.FunctionByName("Auth-G")
	if err != nil {
		log.Fatal(err)
	}

	// A plain host: no prefetcher.
	srv := lukewarm.NewServer(lukewarm.ServerConfig{})
	inst := srv.Deploy(fn)
	warm := srv.RunReference(inst, 3) // back-to-back: everything stays warm
	luke := srv.RunLukewarm(inst, 3)  // full flush between invocations

	// The same host with Jukebox deployed per instance.
	jb := lukewarm.DefaultJukeboxConfig()
	srvJB := lukewarm.NewServer(lukewarm.ServerConfig{Jukebox: &jb})
	instJB := srvJB.Deploy(fn)
	withJB := srvJB.RunLukewarm(instJB, 3)

	fmt.Printf("function: %s (%s, %s)\n\n", fn.Name, fn.Lang, fn.App)
	report := func(label string, r lukewarm.RunResult) {
		fmt.Printf("%-22s CPI %.3f  (retiring %.2f, fetch-lat %.2f, fetch-bw %.2f, bad-spec %.2f, backend %.2f)\n",
			label, r.CPI(),
			r.Stack.CPIOf(lukewarm.Retiring),
			r.Stack.CPIOf(lukewarm.FetchLatency),
			r.Stack.CPIOf(lukewarm.FetchBandwidth),
			r.Stack.CPIOf(lukewarm.BadSpeculation),
			r.Stack.CPIOf(lukewarm.BackendBound))
	}
	report("warm (reference)", warm)
	report("lukewarm (baseline)", luke)
	report("lukewarm + Jukebox", withJB)

	fmt.Printf("\nlukewarm penalty:   +%.0f%% CPI over warm (paper: 31-114%%)\n",
		(luke.CPI()/warm.CPI()-1)*100)
	fmt.Printf("Jukebox speedup:    +%.1f%% over lukewarm baseline (paper avg: 18.7%%)\n",
		(float64(luke.Cycles)/float64(withJB.Cycles)-1)*100)
	fmt.Printf("Jukebox metadata:   %d KB per instance (record + replay)\n",
		instJB.Jukebox.MetadataFootprintBytes()/1024)
}

// Cold-start walkthrough: one heavy Python-profile function started cold
// four ways — bare, with a REAP page-manifest restore, with Jukebox replay,
// and with the combined stack — contrasting the first invocation each pays.
//
// The asymmetry that drives the comparison: Evict drops the Jukebox replay
// metadata with the rest of the instance's microarchitectural footprint,
// but the sealed REAP manifest lives with the snapshot and survives. So on
// a true cold start only REAP has anything to replay, while in the lukewarm
// band (instance resident, caches thrashed) Jukebox's targeted L2 replay
// beats REAP's blind page streaming.
//
//	go run ./examples/coldstart [function]
package main

import (
	"fmt"
	"log"
	"os"

	"lukewarm"
)

// coldFirstInvocation warms inst (recording whatever the mechanisms record),
// then evicts it, flushes the host, and measures the first invocation of the
// restored instance.
func coldFirstInvocation(srv *lukewarm.Server, inst *lukewarm.Instance, warmups int) lukewarm.RunResult {
	_ = srv.RunLukewarm(inst, warmups)
	inst.Evict()
	srv.FlushMicroarch()
	return srv.Invoke(inst)
}

func main() {
	name := "Email-P"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	fn, err := lukewarm.FunctionByName(name)
	if err != nil {
		log.Fatal(err)
	}
	const warmups = 3

	type variant struct {
		label string
		build func() (*lukewarm.Server, *lukewarm.Instance)
	}
	variants := []variant{
		{"bare cold start", func() (*lukewarm.Server, *lukewarm.Instance) {
			srv := lukewarm.NewServer(lukewarm.ServerConfig{})
			return srv, srv.Deploy(fn)
		}},
		{"REAP restore", func() (*lukewarm.Server, *lukewarm.Instance) {
			rc := lukewarm.DefaultReapConfig()
			srv := lukewarm.NewServer(lukewarm.ServerConfig{Reap: &rc})
			return srv, srv.Deploy(fn)
		}},
		{"Jukebox replay", func() (*lukewarm.Server, *lukewarm.Instance) {
			jb := lukewarm.DefaultJukeboxConfig()
			srv := lukewarm.NewServer(lukewarm.ServerConfig{Jukebox: &jb})
			return srv, srv.Deploy(fn)
		}},
		{"REAP + Jukebox", func() (*lukewarm.Server, *lukewarm.Instance) {
			rc := lukewarm.DefaultReapConfig()
			jb := lukewarm.DefaultJukeboxConfig()
			srv := lukewarm.NewServer(lukewarm.ServerConfig{Reap: &rc, Jukebox: &jb})
			return srv, srv.Deploy(fn)
		}},
	}

	fmt.Printf("cold starts of %s (%s), first invocation after evict + flush\n\n", fn.Name, fn.Lang)
	var baseCycles float64
	for _, v := range variants {
		srv, inst := v.build()
		res := coldFirstInvocation(srv, inst, warmups)
		cycles := float64(res.Cycles)
		if v.label == "bare cold start" {
			baseCycles = cycles
		}
		line := fmt.Sprintf("%-16s first invocation %6.2f Mcycles  CPI %.3f  speedup %+5.1f%%",
			v.label, cycles/1e6, res.CPI(), (baseCycles/cycles-1)*100)
		if inst.Reap != nil {
			s := inst.Reap.Stats
			if err := lukewarm.AuditReap(s); err != nil {
				log.Fatalf("reap audit: %v", err)
			}
			line += fmt.Sprintf("  (prefetched %d KB, demand-faulted %d pages)",
				s.PrefetchedBytes>>10, s.DivergentPages)
		}
		fmt.Println(line)
	}

	fmt.Println("\nJukebox metadata dies with the evicted instance, so it cannot help a")
	fmt.Println("true cold start; the REAP manifest ships with the snapshot and can.")
	fmt.Println("Run `lukewarm coldstart` for the full mechanism x IAT-band sweep.")
}

// Capacity planning: size Jukebox's metadata for a consolidated serverless
// host. For each function the example measures the metadata actually
// required (the Fig. 8 quantity), then projects the total main-memory cost
// and expected throughput gain of deploying Jukebox for a server keeping
// 1000 warm instances — the paper's "32 MB for a thousand functions"
// headline, recomputed from first principles.
//
//	go run ./examples/capacity
package main

import (
	"fmt"

	"lukewarm"
)

func main() {
	suite := lukewarm.Suite()
	jbDefault := lukewarm.DefaultJukeboxConfig()

	fmt.Println("Per-function Jukebox metadata requirement and speedup (lukewarm, Skylake-like):")
	fmt.Println()
	fmt.Printf("%-10s %-8s %12s %12s %10s\n", "Function", "Lang", "Required", "Budgeted", "Speedup")

	var totalRequired, totalBudgeted int
	var speedups []float64
	for _, fn := range suite {
		// Record-only pass with an unlimited buffer: how much metadata does
		// one invocation's working set need?
		sizing := jbDefault
		sizing.MetadataBytes = 0
		sizing.ReplayEnabled = false
		srv := lukewarm.NewServer(lukewarm.ServerConfig{Jukebox: &sizing})
		inst := srv.Deploy(fn)
		srv.RunLukewarm(inst, 1)
		required := inst.Jukebox.Stats.LastRecordBytes

		// Measured speedup with the paper's fixed 16 KB budget.
		base := lukewarm.NewServer(lukewarm.ServerConfig{})
		bres := base.RunLukewarm(base.Deploy(fn), 3)
		jb := jbDefault
		jsrv := lukewarm.NewServer(lukewarm.ServerConfig{Jukebox: &jb})
		jinst := jsrv.Deploy(fn)
		jres := jsrv.RunLukewarm(jinst, 3)
		speedup := float64(bres.Cycles)/float64(jres.Cycles) - 1
		speedups = append(speedups, speedup)

		budgeted := jinst.Jukebox.MetadataFootprintBytes()
		totalRequired += 2 * required // record + replay directions
		totalBudgeted += budgeted
		fmt.Printf("%-10s %-8s %9.1f KB %9.1f KB %+9.1f%%\n",
			fn.Name, fn.Lang, float64(required)/1024, float64(budgeted)/1024, speedup*100)
	}

	n := len(suite)
	mean := 0.0
	for _, s := range speedups {
		mean += s
	}
	mean /= float64(n)

	const instances = 1000
	fmt.Println()
	fmt.Printf("Projection for a host keeping %d warm instances (suite mix):\n", instances)
	fmt.Printf("  fixed 16KBx2 budget:    %5.1f MB of metadata (paper: 32 MB)\n",
		float64(totalBudgeted)/float64(n)*instances/(1<<20))
	fmt.Printf("  per-function sizing:    %5.1f MB of metadata\n",
		float64(totalRequired)/float64(n)*instances/(1<<20))
	fmt.Printf("  mean lukewarm speedup:  %+5.1f%% -> equal throughput gain at fixed load\n", mean*100)
	fmt.Println("\n(Speedup on lukewarm invocations translates directly into throughput:")
	fmt.Println(" the same core serves proportionally more invocations per second.)")
}

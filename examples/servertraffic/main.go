// Server traffic: a system-level view of the lukewarm problem. The whole
// 20-function suite is deployed as co-resident warm instances on one host;
// Poisson invocation traffic interleaves their executions naturally (no
// artificial flushing), and the ambient-thrash model stands in for the
// thousands of additional instances a production host would hold. Run once
// without and once with Jukebox to see the end-to-end latency and
// throughput effect.
//
//	go run ./examples/servertraffic [meanIATms]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"lukewarm"
)

func main() {
	meanIAT := 30.0
	if len(os.Args) > 1 {
		v, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil {
			log.Fatalf("bad IAT %q: %v", os.Args[1], err)
		}
		meanIAT = v
	}

	traffic := lukewarm.TrafficConfig{
		MeanIATms:              meanIAT,
		Poisson:                true,
		InvocationsPerInstance: 4,
		KeepAliveMs:            0, // providers keep instances warm for minutes
		AmbientThrash:          true,
		Seed:                   42,
	}

	run := func(label string, jb bool) float64 {
		cfg := lukewarm.ServerConfig{}
		if jb {
			j := lukewarm.DefaultJukeboxConfig()
			cfg.Jukebox = &j
		}
		srv := lukewarm.NewServer(cfg)
		for _, w := range lukewarm.Suite() {
			srv.Deploy(w)
		}
		res, err := srv.ServeTraffic(traffic)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-10s %s\n", label, res.String())
		return res.ServiceCycles.Mean()
	}

	fmt.Printf("20 co-resident instances, Poisson arrivals, mean IAT %.0f ms per instance\n\n", meanIAT)
	base := run("baseline", false)
	withJB := run("jukebox", true)
	fmt.Printf("\nJukebox cuts mean service time by %.1f%% -> the host serves that much more\n",
		(base/withJB-1)*100)
	fmt.Println("load at the same latency, or the same load at lower latency.")
	fmt.Println("(paper Sec. 1: an 18.7% speedup \"translates into a corresponding throughput improvement\")")
}

# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test lint bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/lukewarmlint ./...

# bench captures the performance trajectory: the fleet-simulation benchmarks
# and the raw simulator-throughput benchmark, one iteration each, serialized
# to BENCH_$(PR).json via cmd/benchjson. Refresh the committed snapshot when
# simulator performance changes materially.
PR ?= 6
bench:
	$(GO) test -run '^$$' -bench 'Fleet|ExtensionCluster|SimulationThroughput' -benchtime 1x ./internal/cluster . \
		| $(GO) run ./cmd/benchjson > BENCH_$(PR).json
	@echo "wrote BENCH_$(PR).json"

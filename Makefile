# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test lint bench benchdiff profile

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/lukewarmlint ./...

# bench captures the performance trajectory: the fleet-simulation benchmarks,
# the raw simulator-throughput benchmark, the REAP restore path, the arrival
# forecasters and the pre-warm sweep kernel, one iteration each, serialized
# to BENCH_$(PR).json via cmd/benchjson. Refresh
# the committed snapshot when simulator performance changes materially.
#
# PR defaults to one past the highest committed BENCH_<n>.json so each PR's
# `make bench` lands a fresh snapshot without editing this file; override
# with `make bench PR=ci` (or any explicit tag) to write elsewhere.
PR ?= $(shell ls BENCH_*.json 2>/dev/null | sed -n 's/^BENCH_\([0-9]*\)\.json$$/\1/p' | sort -n | tail -1 | awk '{print $$1 + 1}')
bench:
	$(GO) test -run '^$$' -bench 'Fleet|ExtensionCluster|SimulationThroughput|ReapRestore|Forecast|PrewarmSweep' -benchtime 1x ./internal/cluster ./internal/reap ./internal/predict ./internal/serverless . \
		| $(GO) run ./cmd/benchjson > BENCH_$(PR).json
	@echo "wrote BENCH_$(PR).json"

# benchdiff compares the two newest committed BENCH_<n>.json snapshots and
# fails when the simulator-throughput trajectory regresses by more than 10%;
# other benches (fleet sweeps dominated by scheduling noise) only warn.
benchdiff:
	$(GO) run ./cmd/benchdiff

# profile captures CPU and heap profiles of the simulator's hot loop (the
# throughput benchmark); inspect with `go tool pprof cpu.prof`. The same
# seams exist on the CLI: `lukewarm -cpuprofile cpu.prof <experiment>`.
profile:
	$(GO) test -run '^$$' -bench SimulationThroughput -benchtime 20x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "wrote cpu.prof mem.prof (go tool pprof cpu.prof)"

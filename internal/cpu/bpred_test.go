package cpu

import "testing"

func TestPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(BPConfig{})
	pc := uint64(0x1000)
	// Train: always taken.
	for i := 0; i < 50; i++ {
		bp.Update(pc, true)
	}
	if !bp.Predict(pc) {
		t.Error("predictor failed to learn always-taken")
	}
	rateBefore := bp.Stats.MispredictRate()
	if rateBefore > 0.2 {
		t.Errorf("training mispredict rate = %v", rateBefore)
	}
}

func TestPredictorLearnsAlternation(t *testing.T) {
	// gshare with history should learn a strict T/N alternation that
	// bimodal cannot.
	bp := NewBranchPredictor(BPConfig{})
	pc := uint64(0x2222)
	for i := 0; i < 400; i++ {
		bp.Update(pc, i%2 == 0)
	}
	bp.ResetStats()
	for i := 400; i < 600; i++ {
		bp.Update(pc, i%2 == 0)
	}
	if rate := bp.Stats.MispredictRate(); rate > 0.1 {
		t.Errorf("alternation mispredict rate after training = %v", rate)
	}
}

func TestPredictorFlush(t *testing.T) {
	bp := NewBranchPredictor(BPConfig{})
	pc := uint64(0x3000)
	for i := 0; i < 50; i++ {
		bp.Update(pc, true)
	}
	bp.Flush()
	bp.ResetStats()
	// Right after a flush the counters are weakly-not-taken; a taken branch
	// mispredicts.
	if correct := bp.Update(pc, true); correct {
		t.Error("flushed predictor still knew the branch")
	}
}

func TestPredictorStatsCount(t *testing.T) {
	bp := NewBranchPredictor(BPConfig{})
	for i := 0; i < 10; i++ {
		bp.Update(uint64(i)<<4, i%2 == 0)
	}
	if bp.Stats.Predictions != 10 {
		t.Errorf("Predictions = %d", bp.Stats.Predictions)
	}
	if bp.Stats.Mispredicts == 0 || bp.Stats.Mispredicts > 10 {
		t.Errorf("Mispredicts = %d", bp.Stats.Mispredicts)
	}
	var empty BPStats
	if empty.MispredictRate() != 0 {
		t.Error("empty rate != 0")
	}
}

func TestPredictorPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBranchPredictor(BPConfig{GshareEntries: 100})
}

func TestPredictorDefaults(t *testing.T) {
	bp := NewBranchPredictor(BPConfig{})
	def := DefaultBPConfig()
	if bp.cfg != def {
		t.Errorf("defaults not applied: %+v", bp.cfg)
	}
}

func TestBTBHitAfterInstall(t *testing.T) {
	btb := NewBTB(16)
	if btb.LookupAndUpdate(0x100, 0x500) {
		t.Error("cold BTB hit")
	}
	if !btb.LookupAndUpdate(0x100, 0x500) {
		t.Error("warm BTB missed")
	}
	// Changed target: resteer, then learned.
	if btb.LookupAndUpdate(0x100, 0x900) {
		t.Error("stale target considered a hit")
	}
	if !btb.LookupAndUpdate(0x100, 0x900) {
		t.Error("updated target missed")
	}
	if btb.Stats.Lookups != 4 || btb.Stats.Resteers != 2 {
		t.Errorf("stats = %+v", btb.Stats)
	}
}

func TestBTBConflict(t *testing.T) {
	btb := NewBTB(16)
	a := uint64(0x100)
	b := a + 16*4 // same index (pc>>2 mod 16)
	btb.LookupAndUpdate(a, 1)
	btb.LookupAndUpdate(b, 2) // evicts a
	if btb.LookupAndUpdate(a, 1) {
		t.Error("conflict-evicted entry still hit")
	}
}

func TestBTBFlushAndReset(t *testing.T) {
	btb := NewBTB(16)
	btb.LookupAndUpdate(0x100, 0x500)
	btb.Flush()
	if btb.LookupAndUpdate(0x100, 0x500) {
		t.Error("entry survived flush")
	}
	btb.ResetStats()
	if btb.Stats.Lookups != 0 {
		t.Error("stats survive reset")
	}
}

func TestBTBPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -4, 24} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for size %d", n)
				}
			}()
			NewBTB(n)
		}()
	}
}

func TestBumpCounterSaturation(t *testing.T) {
	if bumpCounter(3, true) != 3 {
		t.Error("counter overflowed")
	}
	if bumpCounter(0, false) != 0 {
		t.Error("counter underflowed")
	}
	if bumpCounter(1, true) != 2 || bumpCounter(2, false) != 1 {
		t.Error("counter step wrong")
	}
}

package cpu

import (
	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/topdown"
	"lukewarm/internal/vm"
)

// InstrSource supplies the dynamic instruction stream of one invocation.
// *program.Invocation implements it; so does a trace reader (package
// trace), which lets the core replay externally captured streams.
type InstrSource interface {
	Next() (program.Instr, bool)
}

// batchSource is the bulk-delivery fast path: sources that implement it
// (program.Invocation, trace.Reader) hand the core whole buffers of
// instructions, so the inner loop pays no per-instruction interface call.
// NextBatch must yield exactly the stream repeated Next calls would — the
// differential tests in internal/check hold the two paths bit-identical.
type batchSource interface {
	NextBatch(buf []program.Instr) int
}

// batchLen is the core's instruction-buffer size (a few host cache pages).
const batchLen = 512

// tdAcc accumulates Top-Down cycles as integers during a run; RunInvocation
// converts to the float Stack once at the end. Every charge is a
// non-negative integer and invocation totals stay far below 2^53, so
// float64 addition of the charges is exact and the one-shot conversion is
// bit-identical to the previous per-charge Stack.Add calls.
type tdAcc [topdown.NumCategories]mem.Cycle

// InstrPrefetcher is the hook surface for instruction prefetchers (Jukebox
// in package core, PIF in package pif). A nil prefetcher is valid.
type InstrPrefetcher interface {
	// InvocationStart fires when the OS schedules the instance to process a
	// new invocation — Jukebox's replay trigger (Sec. 3.3).
	InvocationStart(now mem.Cycle)
	// InvocationEnd fires when the invocation completes and the process is
	// descheduled — record metadata is sealed here (Sec. 3.4.1).
	InvocationEnd(now mem.Cycle)
	// OnFetch fires after every demand instruction-block fetch with the
	// hierarchy's result; res.L2Miss drives Jukebox's record filter. Both
	// the virtual and physical addresses of the fetch are provided:
	// Jukebox records virtual addresses, PIF's physically-indexed
	// structures use physical ones.
	OnFetch(now mem.Cycle, vaddr, paddr uint64, res mem.Result)
	// OnBlockRetire fires once per executed code block in program order —
	// the retired-instruction stream PIF records.
	OnBlockRetire(now mem.Cycle, vBlock, pBlock uint64)
}

// DataObserver is an optional extension of InstrPrefetcher: a prefetcher
// that also implements it sees the retired data-access stream (loads and
// stores). Page-granular working-set recorders (internal/reap) need both
// sides — instruction pages arrive via OnFetch, data pages via
// OnDataAccess. The hook fires after the access completes, so observers
// must not charge latency from it.
type DataObserver interface {
	OnDataAccess(now mem.Cycle, vaddr, paddr uint64, store bool)
}

// RunResult summarizes one invocation's execution.
type RunResult struct {
	Instrs uint64
	Cycles mem.Cycle
	Stack  topdown.Stack
	// Mispredicts and Resteers are the branch events in this run.
	Mispredicts uint64
	Resteers    uint64
}

// CPI reports cycles per instruction.
func (r RunResult) CPI() float64 {
	if r.Instrs == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instrs)
}

// Core is one simulated CPU core plus its private memory system.
type Core struct {
	Cfg  Config
	Hier *mem.Hierarchy
	MMU  *vm.MMU
	BP   *BranchPredictor
	BTB  *BTB
	// Prefetcher receives the hook calls; nil disables prefetching.
	Prefetcher InstrPrefetcher
	// dataObs caches the Prefetcher's DataObserver side, re-asserted once
	// per invocation so the load/store hot path pays no interface probe.
	dataObs DataObserver

	now mem.Cycle

	// retireAcc accumulates sub-cycle retiring quanta.
	retireAcc int
	// instruction-miss overlap state
	lastIMissInstr uint64
	// data-miss overlap state
	lastDMissInstr uint64
	dBurstCount    int
	instrCount     uint64
	// curBlock is the current fetch block during a run.
	curBlock uint64
	// batch is the reusable instruction buffer for batchSource streams.
	batch []program.Instr
}

// NewCore builds a core from cfg with its own full memory hierarchy. The
// caller attaches address spaces via core.MMU.SetAddressSpace before
// running.
func NewCore(cfg Config) *Core {
	cfg.validate()
	return NewCoreWithHierarchy(cfg, mem.NewHierarchy(cfg.Hier))
}

// NewCoreWithHierarchy builds a core around an externally constructed
// hierarchy — used by multi-core servers whose cores share an LLC and
// memory controller (mem.NewSharedHierarchy).
func NewCoreWithHierarchy(cfg Config, hier *mem.Hierarchy) *Core {
	cfg.validate()
	return &Core{
		Cfg:  cfg,
		Hier: hier,
		MMU:  vm.NewMMU(cfg.MMU, hier.DRAM),
		BP:   NewBranchPredictor(cfg.BP),
		BTB:  NewBTB(cfg.BP.BTBEntries),
	}
}

// Now reports the core's current cycle.
func (c *Core) Now() mem.Cycle { return c.now }

// AdvanceCycles moves the clock forward without executing (idle time between
// invocations).
func (c *Core) AdvanceCycles(n mem.Cycle) { c.now += n }

// FlushMicroarch obliterates all on-core and cache state: the paper's
// simulated interleaving baseline "flushes all microarchitectural state
// in-between function invocations".
func (c *Core) FlushMicroarch() {
	c.Hier.FlushAll()
	c.MMU.Flush()
	c.BP.Flush()
	c.BTB.Flush()
	c.lastIMissInstr = 0
	c.lastDMissInstr = 0
	c.dBurstCount = 0
}

// RunInvocation executes one invocation stream to completion and returns its
// timing decomposition. The prefetcher hooks fire at the boundaries.
func (c *Core) RunInvocation(inv InstrSource) RunResult {
	var acc tdAcc
	var res RunResult
	mispBefore := c.BP.Stats.Mispredicts
	resteerBefore := c.BTB.Stats.Resteers
	start := c.now

	c.dataObs, _ = c.Prefetcher.(DataObserver)
	if c.Prefetcher != nil {
		c.Prefetcher.InvocationStart(c.now)
	}

	c.curBlock = ^uint64(0)

	if bs, ok := inv.(batchSource); ok {
		if c.batch == nil {
			c.batch = make([]program.Instr, batchLen)
		}
		for {
			n := bs.NextBatch(c.batch)
			if n == 0 {
				break
			}
			res.Instrs += uint64(n)
			for i := range c.batch[:n] {
				c.exec(&c.batch[i], &acc)
			}
		}
	} else {
		for {
			in, ok := inv.Next()
			if !ok {
				break
			}
			res.Instrs++
			c.exec(&in, &acc)
		}
	}

	if c.Prefetcher != nil {
		c.Prefetcher.InvocationEnd(c.now)
	}

	var td topdown.Stack
	for cat, cyc := range acc {
		td.Cycles[cat] = float64(cyc)
	}
	td.AddInstrs(res.Instrs)
	res.Cycles = c.now - start
	res.Stack = td
	res.Mispredicts = c.BP.Stats.Mispredicts - mispBefore
	res.Resteers = c.BTB.Stats.Resteers - resteerBefore
	return res
}

// exec advances the model by one dynamic instruction.
//lukewarm:hotpath noalloc,noescape,nobce the per-instruction timing step; everything the simulator measures flows through it
func (c *Core) exec(in *program.Instr, acc *tdAcc) {
	c.instrCount++

	// Retiring quantum: one cycle per DispatchWidth instructions.
	c.retireAcc++
	if c.retireAcc >= c.Cfg.DispatchWidth {
		c.retireAcc = 0
		c.now++
		acc[topdown.Retiring]++
	}

	// Front end: new fetch block?
	if blk := in.VAddr &^ (mem.LineSize - 1); blk != c.curBlock {
		c.curBlock = blk
		c.fetchBlock(in.VAddr, acc)
	}

	switch in.Op {
	case program.OpLoad:
		c.load(in, acc)
	case program.OpStore:
		c.store(in, acc)
	case program.OpBranch:
		c.branch(in, acc)
	}
}

// fetchBlock performs the instruction-side access for a new fetch block:
// ITLB translation, L1-I access, miss-latency exposure with fetch-engine
// overlap, and prefetcher notification.
//lukewarm:hotpath noalloc,noescape the batched front-end step, once per 64 B fetch block
func (c *Core) fetchBlock(vaddr uint64, acc *tdAcc) {
	cfg := &c.Cfg
	paddr, walkLat := c.MMU.TranslateInstr(c.now, vaddr)
	if walkLat > 0 {
		// ITLB miss: the walk serializes instruction delivery.
		w := walkLat / 2 // PTE reads partially overlap fetch-ahead
		c.now += w
		acc[topdown.FetchLatency] += w
	}

	fres := c.Hier.FetchInstr(c.now, paddr)
	if c.Prefetcher != nil {
		c.Prefetcher.OnFetch(c.now, vaddr, paddr, fres)
		c.Prefetcher.OnBlockRetire(c.now, vaddr&^(mem.LineSize-1), paddr&^(mem.LineSize-1))
	}
	miss := fres.Latency - cfg.Hier.L1I.HitLatency
	if miss <= 0 {
		return
	}
	// Instruction miss: the first FetchHide cycles disappear into the
	// decode/fetch-target queues; the remainder is exposed, with
	// fetch-engine overlap when the previous instruction miss was close by.
	if miss <= cfg.FetchHide {
		c.lastIMissInstr = c.instrCount
		return
	}
	exposed := miss - cfg.FetchHide
	if c.instrCount-c.lastIMissInstr <= uint64(cfg.FetchMLPWindow) {
		exposed = exposed / mem.Cycle(cfg.FetchMLP)
		if exposed == 0 {
			exposed = 1
		}
	}
	c.lastIMissInstr = c.instrCount
	c.now += exposed
	acc[topdown.FetchLatency] += exposed
	// Decoder undersupply while the fetch queue refills after the miss: a
	// small bandwidth-class cost that scales with the exposed latency, plus
	// the fixed restart bubble.
	fb := exposed/16 + cfg.MissDecodeBubble
	if fb > 0 {
		c.now += fb
		acc[topdown.FetchBandwidth] += fb
	}
}

// load performs the data-side access for a load and charges exposed miss
// latency to Backend Bound under the MLP model.
//lukewarm:hotpath noalloc,noescape,nobce roughly a third of dynamic instructions are loads
func (c *Core) load(in *program.Instr, acc *tdAcc) {
	cfg := &c.Cfg
	paddr, walkLat := c.MMU.TranslateData(c.now, in.MemAddr)
	if walkLat > 0 {
		w := walkLat / 2
		c.now += w
		acc[topdown.BackendBound] += w
	}
	res := c.Hier.AccessData(c.now, paddr, false)
	if c.dataObs != nil {
		c.dataObs.OnDataAccess(c.now, in.MemAddr, paddr, false)
	}
	miss := res.Latency - cfg.Hier.L1D.HitLatency
	if miss <= 0 {
		return
	}
	// Independent misses within the ROB window overlap by DataMLP, but only
	// while L1-D MSHRs remain: a burst longer than the MSHR count stalls
	// and restarts (Table 1: 10 MSHRs).
	exposed := miss
	overlapped := !in.DepLoad &&
		c.instrCount-c.lastDMissInstr <= uint64(cfg.ROBSize) &&
		c.dBurstCount < cfg.Hier.L1D.MSHRs
	if overlapped {
		c.dBurstCount++
		exposed = miss / mem.Cycle(cfg.DataMLP)
		if exposed == 0 {
			exposed = 1
		}
	} else {
		c.dBurstCount = 1
	}
	c.lastDMissInstr = c.instrCount
	c.now += exposed
	acc[topdown.BackendBound] += exposed
}

// store retires through the store buffer: it consumes cache/DRAM bandwidth
// but does not stall the pipeline.
//lukewarm:hotpath noalloc,noescape,nobce store retirement shares the data path's zero-alloc requirement
func (c *Core) store(in *program.Instr, acc *tdAcc) {
	paddr, walkLat := c.MMU.TranslateData(c.now, in.MemAddr)
	if walkLat > 0 {
		w := walkLat / 2
		c.now += w
		acc[topdown.BackendBound] += w
	}
	c.Hier.AccessData(c.now, paddr, true)
	if c.dataObs != nil {
		c.dataObs.OnDataAccess(c.now, in.MemAddr, paddr, true)
	}
}

// branch resolves a control transfer: direction prediction for
// conditionals, BTB target check for taken branches.
//lukewarm:hotpath noalloc,noescape one control transfer per generated code line
func (c *Core) branch(in *program.Instr, acc *tdAcc) {
	cfg := &c.Cfg
	if in.Cond {
		if correct := c.BP.Update(in.VAddr, in.Taken); !correct {
			c.now += cfg.MispredictPenalty
			acc[topdown.BadSpeculation] += cfg.MispredictPenalty
		}
	}
	if !in.Taken {
		return
	}
	// Taken branch: fetch-block break.
	if cfg.TakenBranchBubble > 0 {
		c.now += cfg.TakenBranchBubble
		acc[topdown.FetchBandwidth] += cfg.TakenBranchBubble
	}
	// Indirect branches never have a stable BTB target; model them as a
	// fresh target each time (interpreter dispatch).
	target := in.Target
	if in.Indirect {
		target = in.Target ^ (c.instrCount << 32) // unique per occurrence
	}
	if hit := c.BTB.LookupAndUpdate(in.VAddr, target); !hit {
		c.now += cfg.ResteerPenalty
		acc[topdown.FetchLatency] += cfg.ResteerPenalty
	}
}

package cpu

import "lukewarm/internal/cfgerr"

// BPConfig sizes the branch prediction structures (Table 1: "LTAGE (16K
// gShare 4K bimodal) + BTB 8K entries"). We implement the classic tournament
// organization that line describes: a history-indexed gshare table, a bimodal
// table, and a chooser.
type BPConfig struct {
	GshareEntries  int
	BimodalEntries int
	ChooserEntries int
	BTBEntries     int
	HistoryBits    int
}

// DefaultBPConfig matches Table 1.
func DefaultBPConfig() BPConfig {
	return BPConfig{
		GshareEntries:  16 << 10,
		BimodalEntries: 4 << 10,
		ChooserEntries: 4 << 10,
		BTBEntries:     8 << 10,
		HistoryBits:    14,
	}
}

// Validate reports whether the geometry is realizable: table sizes must be
// zero (select the default) or a power of two (they are indexed by masking),
// and the history length must fit the gshare hash. Errors wrap
// cfgerr.ErrBadConfig.
func (c BPConfig) Validate() error {
	for _, t := range []struct {
		name string
		n    int
	}{
		{"gshare", c.GshareEntries}, {"bimodal", c.BimodalEntries},
		{"chooser", c.ChooserEntries}, {"BTB", c.BTBEntries},
	} {
		if t.n < 0 || t.n&(t.n-1) != 0 {
			return cfgerr.New("predictor %s table size %d is not a power of two", t.name, t.n)
		}
	}
	if c.HistoryBits < 0 || c.HistoryBits > 64 {
		return cfgerr.New("predictor history length %d outside [0, 64]", c.HistoryBits)
	}
	return nil
}

// BPStats counts direction-prediction outcomes.
type BPStats struct {
	Predictions uint64
	Mispredicts uint64
}

// BranchPredictor is a tournament direction predictor: gshare vs. bimodal,
// selected per-branch by a chooser table. All tables hold 2-bit saturating
// counters.
type BranchPredictor struct {
	cfg     BPConfig
	gshare  []uint8
	bimodal []uint8
	chooser []uint8 // >=2 selects gshare, <2 selects bimodal
	history uint64
	Stats   BPStats
}

// NewBranchPredictor builds a predictor; zero-valued config fields fall back
// to defaults. Table sizes must be powers of two (panic otherwise: they are
// design-time constants).
func NewBranchPredictor(cfg BPConfig) *BranchPredictor {
	def := DefaultBPConfig()
	if cfg.GshareEntries == 0 {
		cfg.GshareEntries = def.GshareEntries
	}
	if cfg.BimodalEntries == 0 {
		cfg.BimodalEntries = def.BimodalEntries
	}
	if cfg.ChooserEntries == 0 {
		cfg.ChooserEntries = def.ChooserEntries
	}
	if cfg.BTBEntries == 0 {
		cfg.BTBEntries = def.BTBEntries
	}
	if cfg.HistoryBits == 0 {
		cfg.HistoryBits = def.HistoryBits
	}
	if err := cfg.Validate(); err != nil {
		panic("cpu: " + err.Error())
	}
	bp := &BranchPredictor{
		cfg:     cfg,
		gshare:  make([]uint8, cfg.GshareEntries),
		bimodal: make([]uint8, cfg.BimodalEntries),
		chooser: make([]uint8, cfg.ChooserEntries),
	}
	bp.Flush()
	return bp
}

func (bp *BranchPredictor) gshareIdx(pc uint64) int {
	h := bp.history & ((1 << bp.cfg.HistoryBits) - 1)
	return int((pc>>2)^h) & (bp.cfg.GshareEntries - 1)
}

func (bp *BranchPredictor) bimodalIdx(pc uint64) int {
	return int(pc>>2) & (bp.cfg.BimodalEntries - 1)
}

func (bp *BranchPredictor) chooserIdx(pc uint64) int {
	return int(pc>>2) & (bp.cfg.ChooserEntries - 1)
}

// Predict returns the predicted direction for the conditional branch at pc.
func (bp *BranchPredictor) Predict(pc uint64) bool {
	if bp.chooser[bp.chooserIdx(pc)] >= 2 {
		return bp.gshare[bp.gshareIdx(pc)] >= 2
	}
	return bp.bimodal[bp.bimodalIdx(pc)] >= 2
}

// Update trains the predictor with the branch's actual outcome and reports
// whether the prediction (as of before the update) was correct.
func (bp *BranchPredictor) Update(pc uint64, taken bool) bool {
	gi, bi, ci := bp.gshareIdx(pc), bp.bimodalIdx(pc), bp.chooserIdx(pc)
	gPred := bp.gshare[gi] >= 2
	bPred := bp.bimodal[bi] >= 2
	var pred bool
	if bp.chooser[ci] >= 2 {
		pred = gPred
	} else {
		pred = bPred
	}
	correct := pred == taken
	bp.Stats.Predictions++
	if !correct {
		bp.Stats.Mispredicts++
	}

	// Train the component tables.
	bp.gshare[gi] = bumpCounter(bp.gshare[gi], taken)
	bp.bimodal[bi] = bumpCounter(bp.bimodal[bi], taken)
	// Train the chooser toward whichever component was right (only when
	// they disagree).
	if gPred != bPred {
		bp.chooser[ci] = bumpCounter(bp.chooser[ci], gPred == taken)
	}
	bp.history = (bp.history << 1) | b2u(taken)
	return correct
}

// Flush resets all prediction state to weakly-taken neutral, modeling total
// obliteration by interleaved executions.
func (bp *BranchPredictor) Flush() {
	for i := range bp.gshare {
		bp.gshare[i] = 1
	}
	for i := range bp.bimodal {
		bp.bimodal[i] = 1
	}
	for i := range bp.chooser {
		bp.chooser[i] = 1
	}
	bp.history = 0
}

// ResetStats zeroes the counters without touching prediction state.
func (bp *BranchPredictor) ResetStats() { bp.Stats = BPStats{} }

// DecayFraction resets approximately frac of all prediction counters to the
// weak state, modeling partial overwriting by interleaved foreign branches.
func (bp *BranchPredictor) DecayFraction(frac float64, rng func() uint64) {
	if frac <= 0 {
		return
	}
	threshold := uint64(frac * float64(1<<32))
	decay := func(table []uint8) {
		for i := range table {
			if rng()&0xFFFFFFFF < threshold {
				table[i] = 1
			}
		}
	}
	decay(bp.gshare)
	decay(bp.bimodal)
	decay(bp.chooser)
	if frac >= 0.5 {
		bp.history = 0
	}
}

// MispredictRate reports mispredictions per prediction, or 0 when idle.
func (s BPStats) MispredictRate() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Predictions)
}

func bumpCounter(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTBStats counts target-prediction outcomes for taken branches.
type BTBStats struct {
	Lookups uint64
	// Resteers counts taken branches whose target was absent or wrong in
	// the BTB, forcing a front-end redirect (a Fetch Latency event in
	// Top-Down terms).
	Resteers uint64
}

// BTB is a direct-mapped branch target buffer.
type BTB struct {
	entries int
	tags    []uint64
	targets []uint64
	valid   []bool
	Stats   BTBStats
}

// NewBTB builds a BTB with n entries (power of two; panics otherwise).
func NewBTB(n int) *BTB {
	if n <= 0 || n&(n-1) != 0 {
		panic("cpu: BTB size must be a power of two")
	}
	return &BTB{
		entries: n,
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		valid:   make([]bool, n),
	}
}

func (b *BTB) idx(pc uint64) int { return int(pc>>2) & (b.entries - 1) }

// LookupAndUpdate predicts the target of the taken branch at pc, installs
// the actual target, and reports whether the front end had the correct
// target (no resteer needed).
func (b *BTB) LookupAndUpdate(pc, target uint64) bool {
	b.Stats.Lookups++
	i := b.idx(pc)
	hit := b.valid[i] && b.tags[i] == pc && b.targets[i] == target
	if !hit {
		b.Stats.Resteers++
	}
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
	return hit
}

// Flush invalidates all entries.
func (b *BTB) Flush() {
	for i := range b.valid {
		b.valid[i] = false
	}
}

// ResetStats zeroes counters, keeping contents.
func (b *BTB) ResetStats() { b.Stats = BTBStats{} }

// EvictFraction invalidates approximately frac of the BTB's entries,
// modeling partial displacement by interleaved foreign branches.
func (b *BTB) EvictFraction(frac float64, rng func() uint64) {
	if frac <= 0 {
		return
	}
	threshold := uint64(frac * float64(1<<32))
	for i := range b.valid {
		if b.valid[i] && rng()&0xFFFFFFFF < threshold {
			b.valid[i] = false
		}
	}
}

package cpu

import (
	"math"
	"testing"

	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/topdown"
	"lukewarm/internal/vm"
)

func testProgram() *program.Program {
	return program.New(program.Config{
		Name:          "cpu-test-fn",
		Seed:          77,
		CodeKB:        256,
		DynamicInstrs: 150_000,
		CoreFrac:      0.8,
		OptionalProb:  0.7,
		RareFrac:      0.05,
		RareProb:      0.05,
		InstrPerLine:  16,
		LoadFrac:      0.25,
		StoreFrac:     0.10,
		CondFrac:      0.30,
		CondBias:      0.9,
		NoisyFrac:     0.03,
		IndirectFrac:  0.2,
		CallFrac:      0.35,
		DataKB:        128,
		HotDataKB:     16,
		HotDataFrac:   0.7,
		ColdDataFrac:  0.05,
		DepLoadFrac:   0.2,
		KernelFrac:    0.1,
	})
}

func newTestCore() *Core {
	c := NewCore(SkylakeConfig())
	alloc := vm.NewFrameAllocator(0)
	c.MMU.SetAddressSpace(vm.NewAddressSpace(alloc))
	return c
}

func TestRunInvocationBasics(t *testing.T) {
	c := newTestCore()
	p := testProgram()
	res := c.RunInvocation(p.NewInvocation(0))
	if res.Instrs == 0 || res.Cycles == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	cpi := res.CPI()
	if cpi < 0.25 || cpi > 20 {
		t.Errorf("CPI = %v out of plausible range", cpi)
	}
	if res.Stack.Instrs != res.Instrs {
		t.Errorf("stack instrs %d != run instrs %d", res.Stack.Instrs, res.Instrs)
	}
}

func TestTopDownAccountsEveryCycle(t *testing.T) {
	c := newTestCore()
	p := testProgram()
	res := c.RunInvocation(p.NewInvocation(1))
	if got, want := res.Stack.Total(), float64(res.Cycles); math.Abs(got-want) > 1 {
		t.Errorf("topdown total %v != cycles %v", got, want)
	}
	// All categories present in a lukewarm first run.
	for cat := topdown.Category(0); cat < topdown.NumCategories; cat++ {
		if res.Stack.Cycles[cat] == 0 {
			t.Errorf("category %v never charged", cat)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	p := testProgram()
	r1 := newTestCore().RunInvocation(p.NewInvocation(4))
	r2 := newTestCore().RunInvocation(p.NewInvocation(4))
	if r1.Cycles != r2.Cycles || r1.Instrs != r2.Instrs {
		t.Errorf("nondeterministic run: %+v vs %+v", r1, r2)
	}
}

func TestWarmFasterThanCold(t *testing.T) {
	c := newTestCore()
	p := testProgram()
	cold := c.RunInvocation(p.NewInvocation(0))
	warm := c.RunInvocation(p.NewInvocation(0))
	if warm.CPI() >= cold.CPI() {
		t.Errorf("warm CPI %v not better than cold %v", warm.CPI(), cold.CPI())
	}
}

func TestFlushMicroarchRecreatesLukewarm(t *testing.T) {
	c := newTestCore()
	p := testProgram()
	c.RunInvocation(p.NewInvocation(0)) // warm everything
	warm := c.RunInvocation(p.NewInvocation(1))
	c.FlushMicroarch()
	luke := c.RunInvocation(p.NewInvocation(2))
	// The paper's headline: lukewarm executions are 31-114% slower. Our
	// calibration targets that band loosely here; the precise check lives in
	// the experiments package.
	ratio := luke.CPI() / warm.CPI()
	if ratio < 1.2 {
		t.Errorf("lukewarm/warm CPI ratio = %v, interleaving has no effect", ratio)
	}
	if ratio > 4 {
		t.Errorf("lukewarm/warm CPI ratio = %v, implausibly large", ratio)
	}
}

func TestLukewarmExtraIsMostlyFrontend(t *testing.T) {
	c := newTestCore()
	p := testProgram()
	c.RunInvocation(p.NewInvocation(0))
	warm := c.RunInvocation(p.NewInvocation(1))
	c.FlushMicroarch()
	luke := c.RunInvocation(p.NewInvocation(1))
	delta := luke.Stack.Delta(warm.Stack)
	fe := delta.Cycles[topdown.FetchLatency] + delta.Cycles[topdown.FetchBandwidth]
	if total := delta.Total(); total > 0 {
		share := fe / total
		if share < 0.35 {
			t.Errorf("frontend share of extra stalls = %v, paper says it dominates (~0.56)", share)
		}
	} else {
		t.Error("no extra stall cycles in lukewarm run")
	}
}

func TestPerfectICacheHelps(t *testing.T) {
	p := testProgram()
	base := newTestCore()
	base.FlushMicroarch()
	b := base.RunInvocation(p.NewInvocation(3))

	perfect := newTestCore()
	perfect.Hier.PerfectL1I = true
	perfect.FlushMicroarch()
	pr := perfect.RunInvocation(p.NewInvocation(3))

	if pr.Cycles >= b.Cycles {
		t.Errorf("perfect I-cache not faster: %d vs %d", pr.Cycles, b.Cycles)
	}
	// With a perfect I-cache there are no instruction-miss fetch stalls;
	// remaining fetch latency comes only from ITLB walks and resteers.
	if pr.Stack.Cycles[topdown.FetchLatency] >= b.Stack.Cycles[topdown.FetchLatency] {
		t.Error("perfect I-cache did not reduce fetch latency")
	}
}

func TestBranchEventsCounted(t *testing.T) {
	c := newTestCore()
	p := testProgram()
	res := c.RunInvocation(p.NewInvocation(5))
	if res.Mispredicts == 0 {
		t.Error("no mispredicts recorded")
	}
	if res.Resteers == 0 {
		t.Error("no resteers recorded")
	}
	// Indirect branches should force recurring resteers even when warm.
	res2 := c.RunInvocation(p.NewInvocation(5))
	if res2.Resteers == 0 {
		t.Error("warm run has zero resteers despite indirect branches")
	}
}

func TestAdvanceCycles(t *testing.T) {
	c := newTestCore()
	c.AdvanceCycles(1000)
	if c.Now() != 1000 {
		t.Errorf("Now = %d", c.Now())
	}
}

func TestConfigPanicsOnBadStructure(t *testing.T) {
	cfg := SkylakeConfig()
	cfg.DispatchWidth = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCore(cfg)
}

func TestPlatformConfigs(t *testing.T) {
	sky := SkylakeConfig()
	bdw := BroadwellConfig()
	chr := CharacterizationConfig()
	if sky.Hier.L2.SizeBytes <= bdw.Hier.L2.SizeBytes {
		t.Error("Skylake L2 should be larger than Broadwell's")
	}
	if chr.Hier.LLC.SizeBytes <= bdw.Hier.LLC.SizeBytes {
		t.Error("characterization host LLC should be larger")
	}
	for _, cfg := range []Config{sky, bdw, chr} {
		NewCore(cfg)
	}
}

// recordingPrefetcher checks hook plumbing.
type recordingPrefetcher struct {
	starts, ends, fetches, retires int
	sawL2Miss                      bool
}

func (r *recordingPrefetcher) InvocationStart(mem.Cycle) { r.starts++ }
func (r *recordingPrefetcher) InvocationEnd(mem.Cycle)   { r.ends++ }
func (r *recordingPrefetcher) OnFetch(_ mem.Cycle, _, _ uint64, res mem.Result) {
	r.fetches++
	if res.L2Miss {
		r.sawL2Miss = true
	}
}
func (r *recordingPrefetcher) OnBlockRetire(mem.Cycle, uint64, uint64) { r.retires++ }

func TestPrefetcherHooks(t *testing.T) {
	c := newTestCore()
	rp := &recordingPrefetcher{}
	c.Prefetcher = rp
	p := testProgram()
	c.FlushMicroarch()
	c.RunInvocation(p.NewInvocation(0))
	if rp.starts != 1 || rp.ends != 1 {
		t.Errorf("boundary hooks: starts=%d ends=%d", rp.starts, rp.ends)
	}
	if rp.fetches == 0 || rp.retires == 0 {
		t.Errorf("stream hooks: fetches=%d retires=%d", rp.fetches, rp.retires)
	}
	if !rp.sawL2Miss {
		t.Error("no L2 miss ever reported to prefetcher on a cold run")
	}
	if rp.fetches != rp.retires {
		t.Errorf("fetches %d != block retires %d", rp.fetches, rp.retires)
	}
}

package cpu

import (
	"testing"

	"lukewarm/internal/program"
	"lukewarm/internal/vm"
)

func BenchmarkPredictorUpdate(b *testing.B) {
	bp := NewBranchPredictor(BPConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.Update(uint64(i%1024)<<4, i%3 == 0)
	}
}

func BenchmarkBTBLookup(b *testing.B) {
	btb := NewBTB(8 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		btb.LookupAndUpdate(uint64(i%4096)<<4, uint64(i)<<6)
	}
}

func BenchmarkRunInvocationWarm(b *testing.B) {
	c := NewCore(SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	p := testProgram()
	c.RunInvocation(p.NewInvocation(0)) // warm
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.RunInvocation(p.NewInvocation(uint64(i)))
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkRunInvocationLukewarm(b *testing.B) {
	c := NewCore(SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	p := testProgram()
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FlushMicroarch()
		res := c.RunInvocation(p.NewInvocation(uint64(i)))
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

var benchSink program.Instr

func BenchmarkFlushMicroarch(b *testing.B) {
	c := NewCore(SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	for i := 0; i < b.N; i++ {
		c.FlushMicroarch()
	}
}

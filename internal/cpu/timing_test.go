package cpu

import (
	"testing"

	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/topdown"
	"lukewarm/internal/vm"
)

// scriptedSource feeds a hand-written instruction sequence to the core, so
// timing rules can be checked in isolation.
type scriptedSource struct {
	ins []program.Instr
	pos int
}

func (s *scriptedSource) Next() (program.Instr, bool) {
	if s.pos >= len(s.ins) {
		return program.Instr{}, false
	}
	in := s.ins[s.pos]
	s.pos++
	return in, true
}

// plainRun executes a hand-written sequence on a fresh core.
func plainRun(t *testing.T, ins []program.Instr) (RunResult, *Core) {
	t.Helper()
	c := NewCore(SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	res := c.RunInvocation(&scriptedSource{ins: ins})
	return res, c
}

// block returns n plain instructions filling the 64 B block at base.
func block(base uint64, n int) []program.Instr {
	ins := make([]program.Instr, n)
	for i := range ins {
		ins[i] = program.Instr{VAddr: base + uint64(i)*4, Op: program.OpPlain}
	}
	return ins
}

func TestFetchHideSwallowsShortMisses(t *testing.T) {
	// Two blocks: the second is L2-resident (latency 36 < FetchHide+L1...).
	// Warm the L2 by running once, flushing only the L1I, and re-running.
	c := NewCore(SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	seq := append(block(0x1000, 16), block(0x1040, 16)...)
	c.RunInvocation(&scriptedSource{ins: seq})
	c.Hier.L1I.Flush()
	res := c.RunInvocation(&scriptedSource{ins: seq})
	// L1I misses hit the L2 (36 cycles); miss-beyond-hit is 36, FetchHide
	// is 18, so exposure is (36-18)/5 = 3 cycles per block at most.
	fl := res.Stack.Cycles[topdown.FetchLatency]
	if fl > 10 {
		t.Errorf("L2-hit instruction misses exposed %v cycles; FetchHide broken", fl)
	}
}

func TestDependentLoadExposesFullLatency(t *testing.T) {
	mk := func(dep bool) []program.Instr {
		ins := block(0x1000, 12)
		// Two loads to cold, distinct lines.
		ins = append(ins,
			program.Instr{VAddr: 0x1030, Op: program.OpLoad, MemAddr: 0x10_0000},
			program.Instr{VAddr: 0x1034, Op: program.OpLoad, MemAddr: 0x20_0000, DepLoad: dep},
		)
		return ins
	}
	indep, _ := plainRun(t, mk(false))
	dep, _ := plainRun(t, mk(true))
	if dep.Cycles <= indep.Cycles {
		t.Errorf("dependent load not slower: %d vs %d", dep.Cycles, indep.Cycles)
	}
	// The difference is roughly the unhidden fraction of a miss.
	diff := float64(dep.Cycles - indep.Cycles)
	if diff < 50 {
		t.Errorf("dependence penalty only %v cycles", diff)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	loads := append(block(0x1000, 12),
		program.Instr{VAddr: 0x1030, Op: program.OpLoad, MemAddr: 0x10_0000, DepLoad: true},
		program.Instr{VAddr: 0x1034, Op: program.OpLoad, MemAddr: 0x20_0000, DepLoad: true})
	stores := append(block(0x1000, 12),
		program.Instr{VAddr: 0x1030, Op: program.OpStore, MemAddr: 0x10_0000},
		program.Instr{VAddr: 0x1034, Op: program.OpStore, MemAddr: 0x20_0000})
	lr, _ := plainRun(t, loads)
	sr, _ := plainRun(t, stores)
	if sr.Cycles >= lr.Cycles {
		t.Errorf("stores (%d) not cheaper than dependent loads (%d)", sr.Cycles, lr.Cycles)
	}
	// Stores still reach the memory system.
	_, c := plainRun(t, stores)
	if c.Hier.L1D.Stats.DemandAccesses[mem.Data] == 0 {
		t.Error("stores never accessed the L1D")
	}
}

func TestMispredictChargesBadSpeculation(t *testing.T) {
	// A conditional branch with an adversarial pattern: random outcomes.
	var ins []program.Instr
	rng := program.NewRNG(9)
	for b := 0; b < 64; b++ {
		base := uint64(0x1000 + b*64)
		ins = append(ins, block(base, 15)...)
		ins = append(ins, program.Instr{
			VAddr: base + 60, Op: program.OpBranch, Cond: true,
			Taken: rng.Bool(0.5), Target: base + 64,
		})
	}
	res, _ := plainRun(t, ins)
	bs := res.Stack.Cycles[topdown.BadSpeculation]
	if bs == 0 {
		t.Fatal("no bad speculation charged for random branches")
	}
	// Mispredict rate near 50%: ~32 mispredicts x 14 cycles.
	if bs < 14*10 || bs > 14*60 {
		t.Errorf("bad speculation = %v cycles, want roughly 32x14", bs)
	}
}

func TestIndirectBranchAlwaysResteers(t *testing.T) {
	var ins []program.Instr
	for b := 0; b < 16; b++ {
		base := uint64(0x1000 + b*128) // taken target skips a block
		ins = append(ins, block(base, 15)...)
		ins = append(ins, program.Instr{
			VAddr: base + 60, Op: program.OpBranch, Taken: true,
			Indirect: true, Target: base + 128,
		})
	}
	res, _ := plainRun(t, ins)
	if res.Resteers < 16 {
		t.Errorf("resteers = %d, want one per indirect branch", res.Resteers)
	}
}

func TestITLBWalkChargedOnPageChange(t *testing.T) {
	// Two blocks on different pages: the second fetch needs a new ITLB
	// entry and a walk.
	ins := append(block(0x1000, 16), block(0x5000, 16)...)
	res, c := plainRun(t, ins)
	if c.MMU.ITLB.Stats.Misses < 2 {
		t.Errorf("ITLB misses = %d, want >= 2", c.MMU.ITLB.Stats.Misses)
	}
	if res.Stack.Cycles[topdown.FetchLatency] == 0 {
		t.Error("no fetch latency charged despite cold fetches")
	}
}

func TestMSHRCapLimitsOverlap(t *testing.T) {
	// A burst of independent cold loads overlaps only up to the L1-D MSHR
	// count; longer bursts pay a full-latency restart. Compare per-load
	// cost of a burst inside the cap with one well beyond it.
	mshrs := SkylakeConfig().Hier.L1D.MSHRs
	cost := func(n int) float64 {
		c := NewCore(SkylakeConfig())
		c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
		// Warm the code block so the front end is quiet during measurement.
		c.RunInvocation(&scriptedSource{ins: block(0x1000, 16)})
		var ins []program.Instr
		for i := 0; i < n; i++ {
			ins = append(ins, program.Instr{
				VAddr: 0x1000 + uint64(i%16)*4, Op: program.OpLoad,
				MemAddr: 0x100_0000 + uint64(i)*4096, // distinct cold lines
			})
		}
		res := c.RunInvocation(&scriptedSource{ins: ins})
		return float64(res.Cycles) / float64(n)
	}
	inside := cost(mshrs - 2)
	beyond := cost(mshrs * 8)
	if beyond <= inside*1.1 {
		t.Errorf("per-load cost beyond the MSHR cap (%.1f) not clearly above within-cap (%.1f)",
			beyond, inside)
	}
}

func TestRetiringFloor(t *testing.T) {
	// A long warm run approaches the dispatch-width floor of 0.25 CPI plus
	// small L1-resident overheads.
	seq := block(0x1000, 16)
	c := NewCore(SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	c.RunInvocation(&scriptedSource{ins: seq}) // warm
	var long []program.Instr
	for i := 0; i < 100; i++ {
		long = append(long, seq...)
	}
	res := c.RunInvocation(&scriptedSource{ins: long})
	if cpi := res.CPI(); cpi > 0.3 {
		t.Errorf("warm straight-line CPI = %.3f, want near 0.25", cpi)
	}
}

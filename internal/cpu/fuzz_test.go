package cpu

import (
	"fmt"
	"testing"

	"lukewarm/internal/program"
	"lukewarm/internal/vm"
)

// nextOnly hides an invocation's NextBatch method, forcing RunInvocation
// down the per-instruction interface path. FuzzCacheBatchedFetch uses it to
// hold the region-batched fetch pipeline bit-identical to the unbatched one.
type nextOnly struct{ src InstrSource }

func (n nextOnly) Next() (program.Instr, bool) { return n.src.Next() }

// coreFingerprint captures everything an invocation run can influence:
// the timing decomposition plus the full stat blocks of every private cache
// level and the core clock.
func coreFingerprint(c *Core, res RunResult) string {
	return fmt.Sprintf("res=%+v now=%d l1i=%+v l1d=%+v l2=%+v itlb=%+v dtlb=%+v",
		res, c.Now(), c.Hier.L1I.Stats, c.Hier.L1D.Stats, c.Hier.L2.Stats,
		c.MMU.ITLB.Stats, c.MMU.DTLB.Stats)
}

// FuzzCacheBatchedFetch generates a synthetic program from fuzzed knobs and
// runs the same invocation twice on fresh cores: once through the batched
// fast path (NextBatch buffers feeding the fetch→L1I→walk→L2 pipeline),
// once through the per-instruction Next fallback. Any fingerprint mismatch
// means the batched pipeline drifted from the architectural model.
func FuzzCacheBatchedFetch(f *testing.F) {
	f.Add(uint64(77), uint64(0), uint16(64), uint32(5000), byte(5), byte(2), byte(6), byte(2), byte(1), byte(3))
	f.Add(uint64(1), uint64(3), uint16(240), uint32(29999), byte(7), byte(3), byte(0), byte(0), byte(3), byte(0))
	f.Fuzz(func(t *testing.T, seed, id uint64, codeKB uint16, dyn uint32,
		loadB, storeB, condB, noisyB, skipB, callB byte) {
		ckb := 16 + int(codeKB%240)
		cfg := program.Config{
			Name:          "fuzz",
			Seed:          seed,
			CodeKB:        ckb,
			DynamicInstrs: ckb*16 + 2000 + int(dyn%30000),
			CoreFrac:      0.6,
			OptionalProb:  0.5,
			RareFrac:      0.05,
			RareProb:      0.1,
			InstrPerLine:  16,
			LoadFrac:      float64(loadB%8) * 0.05,
			StoreFrac:     float64(storeB%4) * 0.05,
			CondFrac:      float64(condB%8) * 0.04,
			CondBias:      0.9,
			NoisyFrac:     float64(noisyB%4) * 0.01,
			SkipFrac:      float64(skipB%4) * 0.05,
			IndirectFrac:  0.2,
			CallFrac:      float64(callB%5) * 0.1,
			DataKB:        64,
			HotDataKB:     8,
			HotDataFrac:   0.6,
			ColdDataFrac:  0.05,
			DepLoadFrac:   0.2,
			KernelFrac:    0.1,
		}
		if err := cfg.Validate(); err != nil {
			t.Skip(err)
		}
		p := program.New(cfg)

		run := func(batched bool) string {
			c := NewCore(SkylakeConfig())
			c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
			inv := p.NewInvocation(id % 8)
			var res RunResult
			if batched {
				res = c.RunInvocation(inv)
			} else {
				res = c.RunInvocation(nextOnly{inv})
			}
			return coreFingerprint(c, res)
		}

		got, want := run(true), run(false)
		if got != want {
			t.Fatalf("batched pipeline diverged from per-instruction path:\nbatched:   %s\nunbatched: %s", got, want)
		}
	})
}

package cpu

import "lukewarm/internal/mem"

// MultiPrefetcher fans every hook out to each member in order, enabling
// combined configurations such as the paper's "JB + PIF-ideal" (Fig. 13).
type MultiPrefetcher []InstrPrefetcher

var _ InstrPrefetcher = MultiPrefetcher(nil)

// InvocationStart implements InstrPrefetcher.
func (m MultiPrefetcher) InvocationStart(now mem.Cycle) {
	for _, p := range m {
		p.InvocationStart(now)
	}
}

// InvocationEnd implements InstrPrefetcher.
func (m MultiPrefetcher) InvocationEnd(now mem.Cycle) {
	for _, p := range m {
		p.InvocationEnd(now)
	}
}

// OnFetch implements InstrPrefetcher.
func (m MultiPrefetcher) OnFetch(now mem.Cycle, vaddr, paddr uint64, res mem.Result) {
	for _, p := range m {
		p.OnFetch(now, vaddr, paddr, res)
	}
}

// OnBlockRetire implements InstrPrefetcher.
func (m MultiPrefetcher) OnBlockRetire(now mem.Cycle, vBlock, pBlock uint64) {
	for _, p := range m {
		p.OnBlockRetire(now, vBlock, pBlock)
	}
}

// OnDataAccess implements DataObserver, forwarding to the members that
// observe the data side. The composite always satisfies DataObserver, so
// Core caches one assertion and the per-member probes happen here.
func (m MultiPrefetcher) OnDataAccess(now mem.Cycle, vaddr, paddr uint64, store bool) {
	for _, p := range m {
		if o, ok := p.(DataObserver); ok {
			o.OnDataAccess(now, vaddr, paddr, store)
		}
	}
}

// Package cpu implements the core timing model: an interval-analysis engine
// (Karkhanis & Smith style) over the synthetic instruction streams of
// package program, driving the cache hierarchy of package mem and the MMU of
// package vm, and charging every stall cycle to a Top-Down category.
//
// The model processes instructions in program order. Steady-state throughput
// is bounded by the dispatch width; miss events open intervals:
//
//   - L1-I misses, ITLB walks and BTB resteers charge Fetch Latency. The
//     front end cannot reorder instruction misses, but modern fetch engines
//     do run ahead; misses in a dense burst overlap by the configured
//     FetchMLP factor.
//   - Taken-branch fetch-block breaks and miss-induced decode bubbles charge
//     Fetch Bandwidth.
//   - Branch direction mispredictions charge Bad Speculation.
//   - L1-D load misses charge Backend Bound after MLP overlap: independent
//     misses within the ROB window overlap by DataMLP; dependent (pointer
//     chasing) loads expose their full latency. Stores retire through the
//     store buffer without stalling (they still consume cache and DRAM
//     bandwidth). DTLB walks charge Backend Bound.
//   - Every retired instruction charges 1/DispatchWidth cycles of Retiring.
//
// This reproduces the causal structure the paper measures: in-order fetch
// makes instruction misses expensive while the out-of-order back end hides
// much of the data-miss latency (Sec. 2.4).
package cpu

import (
	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
	"lukewarm/internal/vm"
)

// Config describes one simulated platform (core + hierarchy + MMU + BP).
type Config struct {
	// Name labels the platform in reports.
	Name string
	// FreqGHz is the core clock, used only to convert cycles to time in
	// reports.
	FreqGHz float64
	// DispatchWidth is the sustained pipeline width in instructions/cycle.
	DispatchWidth int
	// ROBSize bounds the data-miss overlap window, in instructions.
	ROBSize int
	// MispredictPenalty is the pipeline-refill cost of a direction
	// misprediction, in cycles.
	MispredictPenalty mem.Cycle
	// ResteerPenalty is the front-end redirect bubble of a BTB miss on a
	// taken branch, in cycles (charged to Fetch Latency).
	ResteerPenalty mem.Cycle
	// FetchMLP divides instruction-miss latency (beyond the L1-I hit) when
	// the previous instruction miss was within FetchMLPWindow instructions:
	// the effective memory-level parallelism of a running fetch engine.
	FetchMLP int
	// FetchHide is the portion of an instruction miss absorbed by the
	// decode queue and fetch-target queue before any pipeline bubble is
	// visible: short (L2-hit) misses are largely hidden, DRAM-bound misses
	// barely notice. Applied before the FetchMLP division.
	FetchHide mem.Cycle
	// FetchMLPWindow is the instruction distance within which instruction
	// misses overlap.
	FetchMLPWindow int
	// DataMLP divides independent load-miss latency within the ROB window.
	DataMLP int
	// TakenBranchBubble is the fetch-bandwidth cost of breaking a fetch
	// block at a taken branch, in cycles.
	TakenBranchBubble mem.Cycle
	// MissDecodeBubble is the fetch-bandwidth cost charged per L1-I miss
	// (decoder restart / queue refill inefficiency).
	MissDecodeBubble mem.Cycle

	Hier mem.HierarchyConfig
	MMU  vm.MMUConfig
	BP   BPConfig
}

// SkylakeConfig returns the paper's Table 1 platform: a 2.6 GHz Skylake-like
// core with a 1 MB L2.
func SkylakeConfig() Config {
	return Config{
		Name:              "Skylake-like",
		FreqGHz:           2.6,
		DispatchWidth:     4,
		ROBSize:           224,
		MispredictPenalty: 14,
		ResteerPenalty:    8,
		FetchMLP:          5,
		FetchHide:         18,
		FetchMLPWindow:    128,
		DataMLP:           4,
		TakenBranchBubble: 2,
		MissDecodeBubble:  1,
		Hier:              mem.SkylakeHierarchy(),
		MMU:               vm.DefaultMMUConfig(),
		BP:                DefaultBPConfig(),
	}
}

// BroadwellConfig returns the Sec. 5.6 platform: same core, 256 KB L2.
func BroadwellConfig() Config {
	c := SkylakeConfig()
	c.Name = "Broadwell-like"
	c.FreqGHz = 2.4
	c.Hier = mem.BroadwellHierarchy()
	return c
}

// CharacterizationConfig returns the Sec. 4.1 real-hardware stand-in: the
// Broadwell-like core with the CloudLab host's large LLC, used for the
// characterization figures (Figs. 1-5).
func CharacterizationConfig() Config {
	c := BroadwellConfig()
	c.Name = "Broadwell-xl170"
	c.Hier = mem.CharacterizationHierarchy()
	return c
}

// Validate reports whether the configuration is self-consistent: positive
// structural parameters and realizable cache/TLB geometry. Errors wrap
// cfgerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.DispatchWidth <= 0 || c.ROBSize <= 0 || c.FetchMLP <= 0 || c.DataMLP <= 0 {
		return cfgerr.New("cpu %q: non-positive structural parameters (width %d, ROB %d, fetchMLP %d, dataMLP %d)",
			c.Name, c.DispatchWidth, c.ROBSize, c.FetchMLP, c.DataMLP)
	}
	if c.MispredictPenalty < 0 || c.ResteerPenalty < 0 || c.TakenBranchBubble < 0 || c.MissDecodeBubble < 0 {
		return cfgerr.New("cpu %q: negative penalty cycles", c.Name)
	}
	if err := c.Hier.Validate(); err != nil {
		return err
	}
	if err := c.MMU.Validate(); err != nil {
		return err
	}
	return c.BP.Validate()
}

// validate is the internal invariant check used by the core constructors,
// which receive compiled-in platform configs; it panics on violation.
func (c Config) validate() {
	if err := c.Validate(); err != nil {
		panic("cpu: " + err.Error())
	}
}

package cpu

import (
	"testing"

	"lukewarm/internal/program"
)

// TestRunInvocationWarmAllocs pins the steady-state allocation rate of the
// core's hot loop at zero: once the batch buffer, the pooled walker's plan
// storage, and the address space's frame chunks exist, serving further
// invocations must not touch the heap. A regression here silently taxes
// every simulated instruction, so it fails loudly instead.
func TestRunInvocationWarmAllocs(t *testing.T) {
	p := testProgram()
	c := newTestCore()
	var inv program.Invocation
	// Warm both data generations (even/odd ids) and grow the plan buffer to
	// its high-water mark before measuring.
	for id := uint64(0); id < 10; id++ {
		p.ResetInvocation(&inv, id)
		c.RunInvocation(&inv)
	}
	id := uint64(0)
	avg := testing.AllocsPerRun(8, func() {
		p.ResetInvocation(&inv, id%10)
		id++
		c.RunInvocation(&inv)
	})
	if avg != 0 {
		t.Fatalf("warm RunInvocation allocates %.2f objects/run, want 0", avg)
	}
}

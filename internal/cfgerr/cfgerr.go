// Package cfgerr holds the shared configuration-error sentinel.
//
// It is a leaf package (no lukewarm-internal imports) so that every layer —
// cpu, mem, vm, core, serverless, stats — can wrap the same sentinel without
// import cycles. The public facade re-exports it as lukewarm.ErrBadConfig.
package cfgerr

import (
	"errors"
	"fmt"
)

// ErrBadConfig is the sentinel wrapped by every configuration validation
// error in the library. Test with errors.Is(err, cfgerr.ErrBadConfig).
var ErrBadConfig = errors.New("invalid configuration")

// New builds an error wrapping ErrBadConfig with a formatted detail message.
func New(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadConfig}, args...)...)
}

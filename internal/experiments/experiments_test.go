package experiments

import (
	"errors"
	"strings"
	"testing"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/workload"
)

// quick options: a small cross-language subset so each test runs in seconds.
var quickOpt = Options{
	Functions: []string{"Auth-G", "ProdL-G", "Email-P", "Pay-N"},
	Warmup:    1,
	Measure:   2,
	Audit:     true,
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Warmup != 2 || o.Measure != 3 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Engine == nil {
		t.Error("withDefaults left Engine nil")
	}
	o = Options{Warmup: -1}.withDefaults()
	if o.Warmup != 0 {
		t.Errorf("legacy negative no-warmup = %+v", o)
	}
	o = Options{NoWarmup: true}.withDefaults()
	if o.Warmup != 0 {
		t.Errorf("NoWarmup = %+v", o)
	}
	o = Options{NoWarmup: true, Warmup: 5}.withDefaults()
	if o.Warmup != 0 {
		t.Errorf("NoWarmup overrides explicit warmup: %+v", o)
	}
	o = Options{Warmup: 7}.withDefaults()
	if o.Warmup != 7 {
		t.Errorf("explicit warmup = %+v", o)
	}
	all, err := (Options{}).suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Errorf("default suite = %d", len(all))
	}
	sub, err := quickOpt.suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 4 {
		t.Errorf("subset suite = %d", len(sub))
	}
	if _, err := (Options{Functions: []string{"Nope-X"}}).suite(); err == nil {
		t.Error("unknown function not rejected")
	}
}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	r, err := Fig1(Options{Warmup: 1, Measure: 2, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, fn := range r.Functions {
		base := r.Rows[0].NormCPI[fn]
		if base != 100 {
			t.Errorf("%s: back-to-back point = %v%%, want 100%%", fn, base)
		}
		sat := r.Rows[4].NormCPI[fn] // 1s
		if sat < 130 || sat > 320 {
			t.Errorf("%s: saturated CPI = %.0f%%, paper band ~150-270%%", fn, sat)
		}
		// Monotone growth up to saturation.
		prev := 0.0
		for i := 0; i <= 4; i++ {
			v := r.Rows[i].NormCPI[fn]
			if v+8 < prev { // small tolerance for measurement noise
				t.Errorf("%s: CPI not monotone at IAT %v: %v after %v",
					fn, r.Rows[i].IATms, v, prev)
			}
			if v > prev {
				prev = v
			}
		}
		// Saturation: 10s within 10% of 1s.
		if r.Rows[5].NormCPI[fn] > sat*1.10 {
			t.Errorf("%s: no saturation: %v%% at 10s vs %v%% at 1s", fn, r.Rows[5].NormCPI[fn], sat)
		}
	}
	if !strings.Contains(r.Table().String(), "Figure 1") {
		t.Error("table rendering broken")
	}
}

func TestCharacterizeMatchesPaperBands(t *testing.T) {
	r, err := Characterize(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Headline: 31-114% CPI uplift, 70% average. Allow a looser band on the
	// tiny subset.
	up := r.MeanUplift()
	if up < 0.25 || up > 1.2 {
		t.Errorf("mean uplift = %.0f%%, paper: 70%%", up*100)
	}
	for _, row := range r.Rows {
		if row.Interleaved.CPI <= row.Ref.CPI {
			t.Errorf("%s: interleaved not slower", row.Name)
		}
		// Front-end share of interleaved cycles should be the largest
		// stall class (paper: 55% of all cycles are front-end stalls).
		fe := row.Interleaved.Stack.FrontendBound()
		be := row.Interleaved.Stack.Cycles[3+1] // BackendBound
		if fe <= be/2 {
			t.Errorf("%s: frontend %v not dominant vs backend %v", row.Name, fe, be)
		}
	}
	// Fetch latency dominates the extra stalls (paper: 56%).
	if share := r.Fig4FetchLatencyShare(); share < 0.4 || share > 0.85 {
		t.Errorf("fetch-latency share of extra stalls = %.0f%%", share*100)
	}
	// LLC MPKI: ~0 in reference, >5 for instructions interleaved (Fig. 5b).
	for _, row := range r.Rows {
		if row.Ref.LLCMPKIInstr > 1 {
			t.Errorf("%s: reference LLC instr MPKI = %.2f, want ~0", row.Name, row.Ref.LLCMPKIInstr)
		}
		if row.Interleaved.LLCMPKIInstr < 5 {
			t.Errorf("%s: interleaved LLC instr MPKI = %.1f, want >5", row.Name, row.Interleaved.LLCMPKIInstr)
		}
		if row.Interleaved.LLCMPKIInstr < row.Interleaved.LLCMPKIData {
			t.Errorf("%s: LLC misses not instruction-dominated", row.Name)
		}
		// L2 MPKI high in both regimes, instructions above data (Fig. 5a).
		if row.Ref.L2MPKIInstr < row.Ref.L2MPKIData {
			t.Errorf("%s: L2 instr MPKI below data", row.Name)
		}
	}
	for _, tb := range []string{
		r.Fig2Table().String(), r.Fig3Table().String(),
		r.Fig4Table().String(), r.Fig5aTable().String(), r.Fig5bTable().String(),
	} {
		if !strings.Contains(tb, "Figure") {
			t.Error("table rendering broken")
		}
	}
}

func TestFootprintsMatchFig6(t *testing.T) {
	r, err := Footprints(Options{Functions: []string{"Fib-G", "Auth-P", "Email-P"}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Invocations != 6 {
		t.Fatalf("invocations = %d", r.Invocations)
	}
	for _, row := range r.Rows {
		if row.KB.Mean() < 230 || row.KB.Mean() > 820 {
			t.Errorf("%s: footprint %.0fKB outside paper range", row.Name, row.KB.Mean())
		}
		if row.Jaccard.Mean() < 0.7 {
			t.Errorf("%s: commonality %.2f too low", row.Name, row.Jaccard.Mean())
		}
	}
	// Email-P is a designated outlier; Auth-P is not.
	var authP, emailP float64
	for _, row := range r.Rows {
		switch row.Name {
		case "Auth-P":
			authP = row.Jaccard.Mean()
		case "Email-P":
			emailP = row.Jaccard.Mean()
		}
	}
	if emailP >= authP {
		t.Errorf("outlier ordering: Email-P %.3f !< Auth-P %.3f", emailP, authP)
	}
	if !strings.Contains(r.Fig6aTable().String(), "Figure 6a") ||
		!strings.Contains(r.Fig6bTable().String(), "Figure 6b") {
		t.Error("table rendering broken")
	}
	if r.MeanFootprintKB() <= 0 || r.HighCommonalityCount() < 1 {
		t.Error("summary accessors broken")
	}
}

func TestFig8MinimumAtOneKB(t *testing.T) {
	r, err := Fig8(Options{Functions: []string{"Auth-G", "Email-P", "Pay-N"}, Measure: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.BestRegionSize(); got != 1024 && got != 2048 {
		t.Errorf("best region size = %d, paper: 1024", got)
	}
	for _, row := range r.Rows {
		kb := float64(row.BytesByRegion[1024]) / 1024
		if kb < 5 || kb > 35 {
			t.Errorf("%s: metadata at 1KB regions = %.1fKB, paper band 9.6-29.5", row.Name, kb)
		}
		// U-shape: extremes larger than the minimum.
		min := row.BytesByRegion[r.BestRegionSize()]
		if row.BytesByRegion[128] <= min || row.BytesByRegion[8192] <= min {
			t.Errorf("%s: no U-shape: 128B=%d min=%d 8KB=%d",
				row.Name, row.BytesByRegion[128], min, row.BytesByRegion[8192])
		}
	}
	if !strings.Contains(r.Table().String(), "Figure 8") {
		t.Error("table rendering broken")
	}
}

func TestCRRBAblationModestSensitivity(t *testing.T) {
	r, err := CRRBAblation(Options{Functions: []string{"Auth-G", "Email-P"}, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MeanKB) != 3 {
		t.Fatalf("sizes = %v", r.Sizes)
	}
	// Larger CRRBs never need more metadata; sensitivity is modest
	// (paper: "very similar trends").
	if r.MeanKB[2] > r.MeanKB[0] {
		t.Errorf("32-entry CRRB needs more metadata than 8-entry: %v", r.MeanKB)
	}
	if r.MeanKB[0] > r.MeanKB[2]*1.8 {
		t.Errorf("CRRB sensitivity not modest: %v", r.MeanKB)
	}
	if !strings.Contains(r.Table().String(), "CRRB") {
		t.Error("table rendering broken")
	}
}

func TestPerformanceMatchesFig10To12(t *testing.T) {
	r, err := Performance(quickOpt, cpu.SkylakeConfig(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jb, pf := r.GeomeanSpeedups()
	if jb < 10 || jb > 30 {
		t.Errorf("Jukebox geomean = %.1f%%, paper: 18.7%%", jb)
	}
	if pf <= jb {
		t.Errorf("perfect I-cache (%.1f%%) not above Jukebox (%.1f%%)", pf, jb)
	}
	if pf > 70 {
		t.Errorf("perfect I-cache %.1f%% implausibly high", pf)
	}
	for _, row := range r.Rows {
		c, u, o := row.Coverage()
		if c < 0.4 || c > 1.05 {
			t.Errorf("%s: coverage %.2f out of range", row.Name, c)
		}
		if c+u < 0.85 || c+u > 1.15 {
			t.Errorf("%s: covered+uncovered = %.2f, want ~1", row.Name, c+u)
		}
		if o > 0.30 {
			t.Errorf("%s: overprediction %.2f, paper max 0.158", row.Name, o)
		}
		ov, mr, mp := row.BandwidthOverhead()
		total := ov + mr + mp
		if total < 0 || total > 0.30 {
			t.Errorf("%s: bandwidth overhead %.2f, paper max 0.23", row.Name, total)
		}
	}
	// Language ordering of coverage: Go above Python (Fig. 11).
	cov := r.MeanCoverageByLang()
	if cov[workload.Go] <= cov[workload.Python] {
		t.Errorf("coverage ordering: Go %.2f !> Python %.2f", cov[workload.Go], cov[workload.Python])
	}
	for _, tb := range []string{r.Fig10Table().String(), r.Fig11Table().String(), r.Fig12Table().String()} {
		if !strings.Contains(tb, "Figure 1") {
			t.Error("table rendering broken")
		}
	}
}

func TestFig9BudgetSweep(t *testing.T) {
	r, err := Fig9(Options{Functions: []string{"Email-P", "Pay-N", "ProdL-G"}, Warmup: 1, Measure: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("budget rows = %d", len(r.Rows))
	}
	g8 := r.Rows[0].SpeedupPct["GEOMEAN"]
	g16 := r.Rows[2].SpeedupPct["GEOMEAN"]
	g32 := r.Rows[3].SpeedupPct["GEOMEAN"]
	if g16 <= g8 {
		t.Errorf("16KB (%.1f%%) not better than 8KB (%.1f%%)", g16, g8)
	}
	// "Little gain with increasing metadata storage beyond 16KB".
	if g32-g16 > g16-g8 {
		t.Errorf("gain did not flatten: 8->16 %+.1f, 16->32 %+.1f", g16-g8, g32-g16)
	}
	if !strings.Contains(r.Table().String(), "Figure 9") {
		t.Error("table rendering broken")
	}
}

func TestFig13Ordering(t *testing.T) {
	r, err := Fig13(Options{Functions: []string{"Email-P", "ProdL-G"}, Warmup: 1, Measure: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := func(c PIFConfig) float64 { return r.SpeedupPct[c]["GEOMEAN"] }
	if !(g(CfgJukebox) > g(CfgPIFIdeal) && g(CfgPIFIdeal) > g(CfgPIF)) {
		t.Errorf("ordering broken: JB=%.1f ideal=%.1f PIF=%.1f",
			g(CfgJukebox), g(CfgPIFIdeal), g(CfgPIF))
	}
	if g(CfgPIF) < -1 {
		t.Errorf("PIF clearly slower than baseline: %.1f%%", g(CfgPIF))
	}
	// Combining PIF-ideal with Jukebox neither helps much nor hurts much.
	if diff := g(CfgJBPIFIdeal) - g(CfgJukebox); diff < -4 || diff > 6 {
		t.Errorf("JB+PIF-ideal deviates from JB by %.1f points", diff)
	}
	if !strings.Contains(r.Table().String(), "Figure 13") {
		t.Error("table rendering broken")
	}
}

func TestTable3PlatformComparison(t *testing.T) {
	r, err := Table3(Options{Functions: []string{"Auth-G", "Email-P"}, Warmup: 1, Measure: 2})
	if err != nil {
		t.Fatal(err)
	}
	sky := r.ReductionPct["Skylake"]
	bdw := r.ReductionPct["Broadwell"]
	// Jukebox eliminates the vast majority of LLC instruction misses on
	// both platforms (paper: -86% and -91%).
	if sky["LLC"] < 50 || bdw["LLC"] < 50 {
		t.Errorf("LLC reductions too small: sky %.0f%%, bdw %.0f%%", sky["LLC"], bdw["LLC"])
	}
	// The small Broadwell L2 keeps conflicting: its L2 reduction is much
	// smaller than Skylake's (paper: -15% vs -74%).
	if bdw["L2"] >= sky["L2"] {
		t.Errorf("Broadwell L2 reduction %.0f%% not below Skylake's %.0f%%", bdw["L2"], sky["L2"])
	}
	// And the Broadwell speedup does not exceed Skylake's (paper: 12% vs
	// 18.7%; in this model the LLC retains the prefetches the small L2
	// evicts, so the gap is narrower — allow a small tolerance).
	if r.GeomeanSpeedupPct["Broadwell"] > r.GeomeanSpeedupPct["Skylake"]+1 {
		t.Errorf("Broadwell speedup %.1f%% above Skylake %.1f%%",
			r.GeomeanSpeedupPct["Broadwell"], r.GeomeanSpeedupPct["Skylake"])
	}
	if r.GeomeanSpeedupPct["Broadwell"] < 2 {
		t.Errorf("Broadwell speedup %.1f%% should still be tangible", r.GeomeanSpeedupPct["Broadwell"])
	}
	if !strings.Contains(r.Table().String(), "Table 3") {
		t.Error("table rendering broken")
	}
}

func TestCompactionAblation(t *testing.T) {
	r, err := Compaction(Options{Functions: []string{"Auth-G", "Email-P"}, Warmup: 1, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Coverage["virtual"] < 0.4 {
		t.Errorf("virtual coverage after compaction = %.2f", r.Coverage["virtual"])
	}
	if r.Coverage["physical"] > r.Coverage["virtual"]/2 {
		t.Errorf("physical metadata should collapse: %.2f vs %.2f",
			r.Coverage["physical"], r.Coverage["virtual"])
	}
	if r.Speedup["virtual"] <= r.Speedup["physical"] {
		t.Errorf("virtual (%.1f%%) should beat physical (%.1f%%)",
			r.Speedup["virtual"], r.Speedup["physical"])
	}
	if !strings.Contains(r.Table().String(), "Ablation") {
		t.Error("table rendering broken")
	}
}

func TestSnapshotExtension(t *testing.T) {
	r, err := Snapshot(Options{Functions: []string{"Auth-G", "ProdL-G"}, Warmup: 1, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.FirstInvocationSpeedupPct < 3 {
		t.Errorf("snapshot replay speedup = %.1f%%, want clearly positive", r.FirstInvocationSpeedupPct)
	}
	if len(r.PerFunction) != 2 {
		t.Errorf("per-function entries = %d", len(r.PerFunction))
	}
	if !strings.Contains(r.Table().String(), "snapshot") {
		t.Error("table rendering broken")
	}
}

func TestDynamicMetadataExtension(t *testing.T) {
	r, err := DynamicMetadata(Options{Functions: []string{"Auth-G", "ProdL-G", "Email-P"}, Warmup: 1, Measure: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.DynamicSpeedupPct < r.FixedSpeedupPct-3 {
		t.Errorf("per-function sizing lost too much speedup: %.1f vs %.1f",
			r.DynamicSpeedupPct, r.FixedSpeedupPct)
	}
	if r.FixedTotalMB <= 0 || r.DynamicTotalMB <= 0 {
		t.Error("metadata totals empty")
	}
	if !strings.Contains(r.Table().String(), "dynamic") {
		t.Error("table rendering broken")
	}
}

func TestBaselinesComparison(t *testing.T) {
	r, err := Baselines(Options{Functions: []string{"Auth-G", "Email-P"}, Warmup: 1, Measure: 2})
	if err != nil {
		t.Fatal(err)
	}
	jb := r.SpeedupPct["Jukebox"]
	nl := r.SpeedupPct["NextLine"]
	rc := r.SpeedupPct["RECAP"]
	if jb <= nl {
		t.Errorf("Jukebox (%.1f%%) should beat NextLine (%.1f%%)", jb, nl)
	}
	// The paper's Sec. 6 verdict is about cost, not raw speedup: whole-LLC
	// restoration can match Jukebox's benefit but needs far more bandwidth
	// and metadata (and physical addressing; see the compaction tests).
	if jb < rc-3 {
		t.Errorf("Jukebox (%.1f%%) should be within a few points of RECAP (%.1f%%)", jb, rc)
	}
	if rc <= 0 {
		t.Errorf("RECAP speedup %.1f%% should be positive", rc)
	}
	if r.BandwidthPct["RECAP"] <= 3*r.BandwidthPct["Jukebox"] {
		t.Errorf("RECAP bandwidth %+.0f%% not clearly above Jukebox's %+.0f%%",
			r.BandwidthPct["RECAP"], r.BandwidthPct["Jukebox"])
	}
	if r.MetadataKB["RECAP"] <= 2*r.MetadataKB["Jukebox"] {
		t.Errorf("RECAP metadata %.0fKB not far above Jukebox's %.0fKB",
			r.MetadataKB["RECAP"], r.MetadataKB["Jukebox"])
	}
	if !strings.Contains(r.Table().String(), "RECAP") {
		t.Error("table rendering broken")
	}
}

func TestServerSim(t *testing.T) {
	// System-level validation needs real co-residency pressure: the full
	// suite, two invocations each.
	r, err := ServerSim(Options{Warmup: 1, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline.Served != 40 || r.Jukebox.Served != 40 {
		t.Fatalf("served %d/%d, want 40/40", r.Baseline.Served, r.Jukebox.Served)
	}
	if r.ThroughputGainPct < 2 {
		t.Errorf("throughput gain %.1f%%, want clearly positive under co-residency", r.ThroughputGainPct)
	}
	if r.Jukebox.CPI.Mean() >= r.Baseline.CPI.Mean() {
		t.Errorf("Jukebox mean CPI %.3f not below baseline %.3f",
			r.Jukebox.CPI.Mean(), r.Baseline.CPI.Mean())
	}
	if !strings.Contains(r.Table().String(), "traffic") {
		t.Error("table rendering broken")
	}
}

func TestScaling(t *testing.T) {
	r, err := Scaling(Options{Warmup: 1, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		if row.JukeboxGainPct < 1 {
			t.Errorf("%d cores: Jukebox gain %.1f%%, want positive", row.Cores, row.JukeboxGainPct)
		}
		if i > 0 {
			prev := r.Rows[i-1]
			if row.Baseline.P99LatencyCycles() >= prev.Baseline.P99LatencyCycles() {
				t.Errorf("p99 latency did not improve from %d to %d cores", prev.Cores, row.Cores)
			}
			if row.Baseline.BusyFraction >= prev.Baseline.BusyFraction {
				t.Errorf("busy fraction did not drop from %d to %d cores", prev.Cores, row.Cores)
			}
		}
	}
	if !strings.Contains(r.Table().String(), "Multi-core") {
		t.Error("table rendering broken")
	}
}

func TestStaticTables(t *testing.T) {
	if !strings.Contains(Table1().String(), "Table 1") {
		t.Error("Table 1 rendering broken")
	}
	t2 := Table2()
	if t2.NumRows() != 20 {
		t.Errorf("Table 2 rows = %d", t2.NumRows())
	}
}

func TestSuiteByNameRejectsUnknown(t *testing.T) {
	if _, err := suiteByName("Nope-X"); !errors.Is(err, cfgerr.ErrBadConfig) {
		t.Errorf("unknown function: err = %v, want ErrBadConfig", err)
	}
	if w, err := suiteByName("Auth-G"); err != nil || w.Name != "Auth-G" {
		t.Errorf("known function: %v, %v", w.Name, err)
	}
}

package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/mem"
	"lukewarm/internal/pif"
	"lukewarm/internal/reap"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// ColdstartMech names one warm-up mechanism in the cold-start comparator.
type ColdstartMech string

// The compared mechanisms. REAP restores the recorded page working set into
// the LLC and TLBs from a manifest that survives eviction; Jukebox replays
// instruction regions into the L2 from metadata that dies with the
// instance's memory; PIF is the record/replay comparator prefetcher.
const (
	MechNone   ColdstartMech = "none"
	MechREAP   ColdstartMech = "REAP"
	MechJB     ColdstartMech = "JB"
	MechPIF    ColdstartMech = "PIF"
	MechREAPJB ColdstartMech = "REAP+JB"
)

// coldstartMechs is the sweep order.
var coldstartMechs = []ColdstartMech{MechNone, MechREAP, MechJB, MechPIF, MechREAPJB}

// coldstartBand is one start-condition band of the sweep: a full eviction
// (cold) or an idle inter-arrival gap (lukewarm).
type coldstartBand struct {
	name  string
	cold  bool
	iatMs float64
}

// coldstartBands spans the paper's regimes: eviction at one end, the
// lukewarm IAT band (tens to hundreds of milliseconds, Sec. 2.1) at the
// other.
var coldstartBands = []coldstartBand{
	{name: "cold", cold: true},
	{name: "iat8ms", iatMs: 8},
	{name: "iat64ms", iatMs: 64},
	{name: "iat512ms", iatMs: 512},
}

// coldstartStaleAges is the manifest-age axis of the staleness sweep.
var coldstartStaleAges = []int{1, 2, 4, 8}

// coldstartStaleSlideKB is the allocator drift applied to the staleness
// sweep's workloads (workload.WithChurnSlide): the canonical two-generation
// churn flips between exactly two states, so a gradual slide is what turns
// manifest age into a monotone axis.
const coldstartStaleSlideKB = 8

// ColdstartResult backs the cold-start comparator: mechanism x band x
// language-representative sweep, plus the manifest-staleness sweep.
type ColdstartResult struct {
	Mechs     []ColdstartMech
	Bands     []string
	Functions []string
	// SpeedupPct[band][mech] is the suite-geomean speedup over MechNone
	// within the band.
	SpeedupPct map[string]map[ColdstartMech]float64
	// FirstInvMCycles[band][mech] is the geomean first-invocation latency in
	// megacycles — the start latency a client observes.
	FirstInvMCycles map[string]map[ColdstartMech]float64
	// PrefetchedKB and DemandedKB [band][mech] are mean per-function DRAM
	// bytes moved by prefetch (REAP restore + Jukebox replay + PIF) and by
	// demand misses over the measurement window, in KB.
	PrefetchedKB map[string]map[ColdstartMech]float64
	DemandedKB   map[string]map[ColdstartMech]float64
	// WastedPct[band][mech] is the wasted-prefetch fraction of the REAP
	// restores (restored pages never touched), in percent.
	WastedPct map[string]map[ColdstartMech]float64
	// Winner[band] is the mechanism with the best geomean cycles in the band.
	Winner map[string]ColdstartMech
	// CrossoverIATms is the smallest swept IAT at which Jukebox alone beats
	// REAP alone (REAP owns the cold end, Jukebox the lukewarm band); -1 if
	// Jukebox never wins.
	CrossoverIATms float64
	// Staleness is the manifest-age sweep on drifting-allocator variants.
	Staleness []StalenessRow
}

// StalenessRow is one age point of the staleness sweep: a manifest frozen at
// invocation 0 restores before invocation Age.
type StalenessRow struct {
	Age int
	// WastedPct is the mean wasted-prefetch fraction across functions, in
	// percent.
	WastedPct float64
}

// coldstartCell tags one (function, mechanism, band) point. Every point is a
// variant cell: the measurement loop (evict or idle per invocation) is
// custom, and mechanism configs ride on the cell so they land in the cache
// key.
func coldstartCell(opt Options, w string, m ColdstartMech, b coldstartBand) runner.Cell {
	c := opt.variantCell(fmt.Sprintf("coldstart-%s-%s", m, b.name), w, cpu.SkylakeConfig(), nil, lukewarm)
	if m == MechJB || m == MechREAPJB {
		jb := core.DefaultConfig()
		c.Jukebox = &jb
	}
	if m == MechREAP || m == MechREAPJB {
		rc := reap.DefaultConfig()
		c.Reap = &rc
	}
	return c
}

// coldstartBandOf resolves a coldstart variant tag back to its band.
func coldstartBandOf(variant string) (ColdstartMech, coldstartBand, error) {
	rest, ok := strings.CutPrefix(variant, "coldstart-")
	if !ok {
		return "", coldstartBand{}, fmt.Errorf("experiments: not a coldstart variant %q", variant)
	}
	for _, m := range coldstartMechs {
		for _, b := range coldstartBands {
			if rest == string(m)+"-"+b.name {
				return m, b, nil
			}
		}
	}
	return "", coldstartBand{}, fmt.Errorf("experiments: unknown coldstart variant %q", variant)
}

// execColdstart executes coldstart cells: warm up and record lukewarm, then
// measure invocations that each start from the band's condition — eviction
// plus a full flush (cold: pages gone, Jukebox metadata gone, REAP manifest
// survives) or an idle gap (lukewarm: partial thrash, delta restore).
func execColdstart(c runner.Cell) (runner.Measurement, error) {
	if strings.HasPrefix(c.Variant, "coldstart-stale-") {
		return execColdstartStale(c)
	}
	mech, band, err := coldstartBandOf(c.Variant)
	if err != nil {
		return runner.Measurement{}, err
	}
	w, err := suiteByName(c.Workload)
	if err != nil {
		return runner.Measurement{}, err
	}
	srv := serverless.New(serverless.Config{CPU: c.CPU, Jukebox: c.Jukebox, Reap: c.Reap})
	if mech == MechPIF {
		srv.AttachCorePrefetcher(pif.New(pif.DefaultConfig(), srv.Core.Hier))
	}
	inst := srv.Deploy(w)
	srv.RunLukewarm(inst, c.Warmup) // functional warm-up records manifest + metadata
	srv.Core.Hier.ResetStats()
	srv.Core.MMU.ResetStats()
	srv.Core.BP.ResetStats()
	srv.Core.BTB.ResetStats()
	if inst.Jukebox != nil {
		inst.Jukebox.ResetStats()
	}
	if inst.Reap != nil {
		inst.Reap.ResetStats()
	}

	var out runner.Measurement
	for i := 0; i < c.Measure; i++ {
		if band.cold {
			inst.Evict()
			srv.FlushMicroarch()
		} else {
			srv.AdvanceIAT(band.iatMs)
		}
		res := srv.Invoke(inst)
		if c.Audit {
			if err := faults.Audit(res); err != nil {
				return out, fmt.Errorf("%s invocation %d: %w", c.Label(), i, err)
			}
		}
		if i == 0 {
			out.FirstInvCycles = res.Cycles
		}
		out.Stack.Merge(res.Stack)
		out.Instrs += res.Instrs
		out.Cycles += res.Cycles
	}
	hier := srv.Core.Hier
	hier.DrainUnusedPrefetches()
	out.L1I, out.L2, out.LLC = hier.L1I.Stats, hier.L2.Stats, hier.LLC.Stats
	out.DRAM = map[mem.TrafficClass]uint64{}
	for _, cls := range []mem.TrafficClass{mem.TrafficDemand, mem.TrafficPrefetch,
		mem.TrafficMetadataRecord, mem.TrafficMetadataReplay, mem.TrafficWriteback} {
		out.DRAM[cls] = hier.DRAM.Bytes(cls)
	}
	if inst.Jukebox != nil {
		out.JB = inst.Jukebox.Stats
	}
	if inst.Reap != nil {
		out.Reap = inst.Reap.Stats
		if c.Audit {
			if err := faults.AuditReap(out.Reap); err != nil {
				return out, fmt.Errorf("%s: %w", c.Label(), err)
			}
		}
	}
	return out, nil
}

// execColdstartStale executes one staleness point: freeze the manifest after
// the first (recorded) invocation of a drifting-allocator workload variant,
// age it for age-1 lukewarm invocations, and measure the restore before
// invocation age.
func execColdstartStale(c runner.Cell) (runner.Measurement, error) {
	age, err := strconv.Atoi(strings.TrimPrefix(c.Variant, "coldstart-stale-"))
	if err != nil || age < 1 {
		return runner.Measurement{}, fmt.Errorf("experiments: bad staleness variant %q", c.Variant)
	}
	w, err := suiteByName(c.Workload)
	if err != nil {
		return runner.Measurement{}, err
	}
	w = workload.WithChurnSlide(w, coldstartStaleSlideKB)
	srv := serverless.New(serverless.Config{CPU: c.CPU, Reap: c.Reap})
	inst := srv.Deploy(w)
	srv.RunLukewarm(inst, 1) // record invocation 0, then freeze
	inst.Reap.SetRecordEnabled(false)
	srv.RunLukewarm(inst, age-1)
	inst.Reap.ResetStats()
	res := srv.RunLukewarm(inst, 1)
	var out runner.Measurement
	out.Instrs, out.Cycles, out.FirstInvCycles = res.Instrs, res.Cycles, res.Cycles
	out.Reap = inst.Reap.Stats
	if c.Audit {
		if err := faults.AuditReap(out.Reap); err != nil {
			return out, fmt.Errorf("%s: %w", c.Label(), err)
		}
	}
	return out, nil
}

// Coldstart runs the cold-start comparator (see DESIGN.md Sec. 11): REAP's
// page-granular record/prefetch against Jukebox, PIF and the combined stack,
// across start-condition bands and the three language representatives, plus
// the manifest-staleness sweep.
func Coldstart(opt Options) (ColdstartResult, error) {
	opt = opt.withDefaults()
	fns := opt.Functions
	if len(fns) == 0 {
		fns = workload.Representatives()
	}
	out := ColdstartResult{
		Mechs:           coldstartMechs,
		Functions:       fns,
		SpeedupPct:      map[string]map[ColdstartMech]float64{},
		FirstInvMCycles: map[string]map[ColdstartMech]float64{},
		PrefetchedKB:    map[string]map[ColdstartMech]float64{},
		DemandedKB:      map[string]map[ColdstartMech]float64{},
		WastedPct:       map[string]map[ColdstartMech]float64{},
		Winner:          map[string]ColdstartMech{},
		CrossoverIATms:  -1,
	}
	for _, b := range coldstartBands {
		out.Bands = append(out.Bands, b.name)
	}
	var cells []runner.Cell
	for _, b := range coldstartBands {
		for _, m := range coldstartMechs {
			for _, fn := range fns {
				cells = append(cells, coldstartCell(opt, fn, m, b))
			}
		}
	}
	staleStart := len(cells)
	for _, age := range coldstartStaleAges {
		for _, fn := range fns {
			c := opt.variantCell(fmt.Sprintf("coldstart-stale-%d", age), fn, cpu.SkylakeConfig(), nil, lukewarm)
			rc := reap.DefaultConfig()
			c.Reap = &rc
			cells = append(cells, c)
		}
	}
	ms, err := opt.engine().MeasureFunc(cells, execColdstart)
	if err != nil {
		return out, err
	}

	geoCycles := map[string]map[ColdstartMech]float64{}
	idx := 0
	for _, b := range coldstartBands {
		for _, m := range coldstartMechs {
			var cyc, first, pref, dem, waste []float64
			for range fns {
				mm := ms[idx]
				idx++
				cyc = append(cyc, normCycles(mm))
				first = append(first, float64(mm.FirstInvCycles)/1e6)
				pref = append(pref, float64(mm.DRAM[mem.TrafficPrefetch])/1024)
				dem = append(dem, float64(mm.DRAM[mem.TrafficDemand])/1024)
				waste = append(waste, mm.Reap.WastedFraction()*100)
			}
			if geoCycles[b.name] == nil {
				geoCycles[b.name] = map[ColdstartMech]float64{}
				out.FirstInvMCycles[b.name] = map[ColdstartMech]float64{}
				out.PrefetchedKB[b.name] = map[ColdstartMech]float64{}
				out.DemandedKB[b.name] = map[ColdstartMech]float64{}
				out.WastedPct[b.name] = map[ColdstartMech]float64{}
			}
			geoCycles[b.name][m] = stats.GeoMean(cyc)
			out.FirstInvMCycles[b.name][m] = stats.GeoMean(first)
			out.PrefetchedKB[b.name][m] = stats.Mean(pref)
			out.DemandedKB[b.name][m] = stats.Mean(dem)
			out.WastedPct[b.name][m] = stats.Mean(waste)
		}
	}
	for _, b := range coldstartBands {
		out.SpeedupPct[b.name] = map[ColdstartMech]float64{}
		base := geoCycles[b.name][MechNone]
		best := MechNone
		for _, m := range coldstartMechs {
			out.SpeedupPct[b.name][m] = stats.SpeedupPct(base, geoCycles[b.name][m])
			if geoCycles[b.name][m] < geoCycles[b.name][best] {
				best = m
			}
		}
		out.Winner[b.name] = best
		if !b.cold && out.CrossoverIATms < 0 &&
			geoCycles[b.name][MechJB] < geoCycles[b.name][MechREAP] {
			out.CrossoverIATms = b.iatMs
		}
	}
	for ai, age := range coldstartStaleAges {
		var waste []float64
		for fi := range fns {
			waste = append(waste, ms[staleStart+ai*len(fns)+fi].Reap.WastedFraction()*100)
		}
		out.Staleness = append(out.Staleness, StalenessRow{Age: age, WastedPct: stats.Mean(waste)})
	}
	return out, nil
}

// ColdSpeedupPct reports the combined REAP+Jukebox stack's cold-band geomean
// speedup — the comparator's headline metric.
func (r ColdstartResult) ColdSpeedupPct() float64 { return r.SpeedupPct["cold"][MechREAPJB] }

// Table renders the band x mechanism sweep.
func (r ColdstartResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Cold-start comparator: geomean over %s", strings.Join(r.Functions, ", ")),
		"Band", "Mechanism", "Speedup", "FirstInv [Mcyc]", "Prefetched [KB]", "Demanded [KB]", "REAP waste")
	for _, b := range r.Bands {
		for _, m := range r.Mechs {
			waste := "-"
			if m == MechREAP || m == MechREAPJB {
				waste = fmt.Sprintf("%.1f%%", r.WastedPct[b][m])
			}
			t.AddRow(b, string(m),
				fmt.Sprintf("%.1f%%", r.SpeedupPct[b][m]),
				fmt.Sprintf("%.2f", r.FirstInvMCycles[b][m]),
				fmt.Sprintf("%.0f", r.PrefetchedKB[b][m]),
				fmt.Sprintf("%.0f", r.DemandedKB[b][m]),
				waste)
		}
	}
	return t
}

// CrossoverTable renders the per-band winner and the REAP/Jukebox crossover.
func (r ColdstartResult) CrossoverTable() *stats.Table {
	t := stats.NewTable("Cold-start crossover: best mechanism per band", "Band", "Winner", "Speedup")
	for _, b := range r.Bands {
		w := r.Winner[b]
		t.AddRow(b, string(w), fmt.Sprintf("%.1f%%", r.SpeedupPct[b][w]))
	}
	if r.CrossoverIATms >= 0 {
		t.AddRow("crossover", string(MechJB), fmt.Sprintf("JB>REAP from IAT %.0f ms", r.CrossoverIATms))
	} else {
		t.AddRow("crossover", string(MechREAP), "JB never beats REAP")
	}
	return t
}

// StalenessTable renders the manifest-age sweep.
func (r ColdstartResult) StalenessTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("REAP manifest staleness (frozen manifest, %d KB/invocation allocator drift)", coldstartStaleSlideKB),
		"Manifest age [invocations]", "Wasted prefetch")
	for _, row := range r.Staleness {
		t.AddRow(strconv.Itoa(row.Age), fmt.Sprintf("%.1f%%", row.WastedPct))
	}
	return t
}

package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/pif"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// PIFConfig names one Fig. 13 configuration.
type PIFConfig string

// Fig. 13 configurations.
const (
	CfgBaseline   PIFConfig = "Baseline"
	CfgPIF        PIFConfig = "PIF"
	CfgPIFIdeal   PIFConfig = "PIF-ideal"
	CfgJukebox    PIFConfig = "JB"
	CfgJBPIFIdeal PIFConfig = "JB+PIF-ideal"
)

// Fig13Result backs the state-of-the-art comparison (Sec. 5.5).
type Fig13Result struct {
	Configs   []PIFConfig
	Functions []string
	// SpeedupPct[cfg][fn] is the speedup over baseline; fn "GEOMEAN" is the
	// suite geomean.
	SpeedupPct map[PIFConfig]map[string]float64
}

// measurePIF measures one workload under one Fig. 13 configuration.
func measurePIF(w workload.Workload, cfg PIFConfig, opt Options) (measured, error) {
	var jb *core.Config
	if cfg == CfgJukebox || cfg == CfgJBPIFIdeal {
		c := core.DefaultConfig()
		jb = &c
	}
	srv := serverless.New(serverless.Config{CPU: cpu.SkylakeConfig(), Jukebox: jb})
	switch cfg {
	case CfgPIF:
		srv.AttachCorePrefetcher(pif.New(pif.DefaultConfig(), srv.Core.Hier))
	case CfgPIFIdeal, CfgJBPIFIdeal:
		srv.AttachCorePrefetcher(pif.New(pif.IdealConfig(), srv.Core.Hier))
	}
	inst := srv.Deploy(w)
	return measure(srv, inst, lukewarm, opt)
}

// Fig13 compares Jukebox against PIF and PIF-ideal, alone and combined, on
// the interleaved Skylake setup.
func Fig13(opt Options) (Fig13Result, error) {
	opt = opt.withDefaults()
	out := Fig13Result{
		Configs:    []PIFConfig{CfgPIF, CfgPIFIdeal, CfgJukebox, CfgJBPIFIdeal},
		Functions:  workload.Representatives(),
		SpeedupPct: map[PIFConfig]map[string]float64{},
	}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	base := map[string]float64{}
	for _, w := range suite {
		m, err := measurePIF(w, CfgBaseline, opt)
		if err != nil {
			return out, err
		}
		base[w.Name] = normCycles(m)
	}
	for _, cfg := range out.Configs {
		out.SpeedupPct[cfg] = map[string]float64{}
		var all []float64
		for _, w := range suite {
			m, err := measurePIF(w, cfg, opt)
			if err != nil {
				return out, err
			}
			sp := stats.SpeedupPct(base[w.Name], normCycles(m))
			all = append(all, 1+sp/100)
			for _, rep := range out.Functions {
				if rep == w.Name {
					out.SpeedupPct[cfg][rep] = sp
				}
			}
		}
		out.SpeedupPct[cfg]["GEOMEAN"] = (stats.GeoMean(all) - 1) * 100
	}
	return out, nil
}

// Table renders the comparison.
func (r Fig13Result) Table() *stats.Table {
	hdr := append(append([]string{"Config"}, r.Functions...), "GEOMEAN")
	t := stats.NewTable("Figure 13: Jukebox vs PIF (speedup over interleaved baseline)", hdr...)
	for _, cfg := range r.Configs {
		cells := []string{string(cfg)}
		for _, fn := range r.Functions {
			if v, ok := r.SpeedupPct[cfg][fn]; ok {
				cells = append(cells, fmt.Sprintf("%.1f%%", v))
			} else {
				cells = append(cells, "-")
			}
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", r.SpeedupPct[cfg]["GEOMEAN"]))
		t.AddRow(cells...)
	}
	return t
}

package experiments

import (
	"fmt"
	"strings"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/pif"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// PIFConfig names one Fig. 13 configuration.
type PIFConfig string

// Fig. 13 configurations.
const (
	CfgBaseline   PIFConfig = "Baseline"
	CfgPIF        PIFConfig = "PIF"
	CfgPIFIdeal   PIFConfig = "PIF-ideal"
	CfgJukebox    PIFConfig = "JB"
	CfgJBPIFIdeal PIFConfig = "JB+PIF-ideal"
)

// Fig13Result backs the state-of-the-art comparison (Sec. 5.5).
type Fig13Result struct {
	Configs   []PIFConfig
	Functions []string
	// SpeedupPct[cfg][fn] is the speedup over baseline; fn "GEOMEAN" is the
	// suite geomean.
	SpeedupPct map[PIFConfig]map[string]float64
}

// pifCell describes one workload under one Fig. 13 configuration. Baseline
// and plain-Jukebox configurations are standard cells — they hit the same
// cache entries as Fig. 10's baseline and Jukebox measurements — while the
// PIF-attaching configurations carry a "fig13-" variant tag and run through
// execPIF.
func pifCell(opt Options, w string, cfg PIFConfig) runner.Cell {
	var jb *core.Config
	if cfg == CfgJukebox || cfg == CfgJBPIFIdeal {
		c := core.DefaultConfig()
		jb = &c
	}
	switch cfg {
	case CfgBaseline, CfgJukebox:
		return opt.cell(w, cpu.SkylakeConfig(), jb, false, lukewarm)
	default:
		return opt.variantCell("fig13-"+string(cfg), w, cpu.SkylakeConfig(), jb, lukewarm)
	}
}

// execPIF executes Fig. 13 cells, attaching the tagged PIF prefetcher before
// measuring; untagged cells fall through to the standard executor.
func execPIF(c runner.Cell) (runner.Measurement, error) {
	if c.Variant == "" {
		return runner.Execute(c)
	}
	cfg := PIFConfig(strings.TrimPrefix(c.Variant, "fig13-"))
	w, err := suiteByName(c.Workload)
	if err != nil {
		return runner.Measurement{}, err
	}
	srv := serverless.New(serverless.Config{CPU: c.CPU, Jukebox: c.Jukebox})
	switch cfg {
	case CfgPIF:
		srv.AttachCorePrefetcher(pif.New(pif.DefaultConfig(), srv.Core.Hier))
	case CfgPIFIdeal, CfgJBPIFIdeal:
		srv.AttachCorePrefetcher(pif.New(pif.IdealConfig(), srv.Core.Hier))
	default:
		return runner.Measurement{}, fmt.Errorf("experiments: unknown fig13 variant %q", c.Variant)
	}
	inst := srv.Deploy(w)
	return runner.MeasureInstance(srv, inst, c.Mode, c.Warmup, c.Measure, c.Audit)
}

// Fig13 compares Jukebox against PIF and PIF-ideal, alone and combined, on
// the interleaved Skylake setup.
func Fig13(opt Options) (Fig13Result, error) {
	opt = opt.withDefaults()
	out := Fig13Result{
		Configs:    []PIFConfig{CfgPIF, CfgPIFIdeal, CfgJukebox, CfgJBPIFIdeal},
		Functions:  workload.Representatives(),
		SpeedupPct: map[PIFConfig]map[string]float64{},
	}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	var cells []runner.Cell
	for _, w := range suite {
		cells = append(cells, pifCell(opt, w.Name, CfgBaseline))
	}
	for _, cfg := range out.Configs {
		for _, w := range suite {
			cells = append(cells, pifCell(opt, w.Name, cfg))
		}
	}
	ms, err := opt.engine().MeasureFunc(cells, execPIF)
	if err != nil {
		return out, err
	}
	base := map[string]float64{}
	for i, w := range suite {
		base[w.Name] = normCycles(ms[i])
	}
	for ci, cfg := range out.Configs {
		out.SpeedupPct[cfg] = map[string]float64{}
		var all []float64
		for wi, w := range suite {
			m := ms[len(suite)*(1+ci)+wi]
			sp := stats.SpeedupPct(base[w.Name], normCycles(m))
			all = append(all, 1+sp/100)
			for _, rep := range out.Functions {
				if rep == w.Name {
					out.SpeedupPct[cfg][rep] = sp
				}
			}
		}
		out.SpeedupPct[cfg]["GEOMEAN"] = (stats.GeoMean(all) - 1) * 100
	}
	return out, nil
}

// Table renders the comparison.
func (r Fig13Result) Table() *stats.Table {
	hdr := append(append([]string{"Config"}, r.Functions...), "GEOMEAN")
	t := stats.NewTable("Figure 13: Jukebox vs PIF (speedup over interleaved baseline)", hdr...)
	for _, cfg := range r.Configs {
		cells := []string{string(cfg)}
		for _, fn := range r.Functions {
			if v, ok := r.SpeedupPct[cfg][fn]; ok {
				cells = append(cells, fmt.Sprintf("%.1f%%", v))
			} else {
				cells = append(cells, "-")
			}
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", r.SpeedupPct[cfg]["GEOMEAN"]))
		t.AddRow(cells...)
	}
	return t
}

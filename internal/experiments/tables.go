package experiments

import (
	"fmt"

	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// Table2 renders the workload suite (Table 2).
func Table2() *stats.Table {
	t := stats.NewTable("Table 2: serverless functions and their language runtimes",
		"Function", "Language", "Application", "Code KB", "Dyn. instrs")
	for _, w := range workload.Suite() {
		cfg := w.Program.Config()
		t.AddRow(w.Name, w.Lang.String(), w.App,
			fmt.Sprint(cfg.CodeKB), fmt.Sprint(cfg.DynamicInstrs))
	}
	return t
}

package experiments

import (
	"fmt"

	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/topdown"
	"lukewarm/internal/workload"
)

// Fig1Row is one IAT point of the Fig. 1 sweep.
type Fig1Row struct {
	IATms float64
	// NormCPI maps function name to CPI normalized to back-to-back
	// invocations (100% = fully warm).
	NormCPI map[string]float64
}

// Fig1Result is the Fig. 1 reproduction: CPI vs. invocation inter-arrival
// time for an authentication function in Python and an AES function in
// NodeJS, on the characterization host at ~50% ambient load.
type Fig1Result struct {
	Functions []string
	Rows      []Fig1Row
}

// Fig1 runs the IAT sweep. Every (function, IAT) point is one cell: the
// point's server warms up, idles for the gap, and measures independently of
// every other point, so the sweep parallelizes fully.
func Fig1(opt Options) (Fig1Result, error) {
	opt = opt.withDefaults()
	fns := opt.Functions
	if len(fns) == 0 {
		fns = []string{"Auth-P", "AES-N"}
	}
	iats := []float64{0, 1, 10, 100, 1000, 10000}
	res := Fig1Result{Functions: fns}
	rows := make([]Fig1Row, len(iats))
	for i, iat := range iats {
		rows[i] = Fig1Row{IATms: iat, NormCPI: map[string]float64{}}
	}

	var cells []runner.Cell
	iatOf := map[string]float64{}
	for _, name := range fns {
		if _, err := workload.ByName(name); err != nil {
			return res, fmt.Errorf("experiments: %w", err)
		}
		for _, iat := range iats {
			variant := fmt.Sprintf("fig1-iat=%g", iat)
			iatOf[variant] = iat
			cells = append(cells, opt.variantCell(variant, name, cpu.CharacterizationConfig(), nil, reference))
		}
	}
	ms, err := opt.engine().MeasureFunc(cells, func(c runner.Cell) (measured, error) {
		w, err := workload.ByName(c.Workload)
		if err != nil {
			return measured{}, err
		}
		srv := serverless.New(serverless.Config{CPU: c.CPU})
		inst := srv.Deploy(w)
		srv.RunReference(inst, c.Warmup+1)
		var m measured
		for k := 0; k < c.Measure; k++ {
			r := srv.RunWithIAT(inst, 1, iatOf[c.Variant])
			m.Instrs += r.Instrs
			m.Cycles += r.Cycles
		}
		return m, nil
	})
	if err != nil {
		return res, err
	}
	for fi, name := range fns {
		base := ms[fi*len(iats)].CPI()
		for i := range iats {
			rows[i].NormCPI[name] = stats.Pct(ms[fi*len(iats)+i].CPI(), base)
		}
	}
	res.Rows = rows
	return res, nil
}

// Table renders the sweep.
func (r Fig1Result) Table() *stats.Table {
	hdr := append([]string{"IAT [ms]"}, r.Functions...)
	t := stats.NewTable("Figure 1: normalized CPI vs. inter-arrival time (100% = back-to-back)", hdr...)
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%.0f", row.IATms)}
		for _, fn := range r.Functions {
			cells = append(cells, fmt.Sprintf("%.0f%%", row.NormCPI[fn]))
		}
		t.AddRow(cells...)
	}
	return t
}

// CharRow is one function's characterization measurements: reference and
// interleaved runs on the characterization host.
type CharRow struct {
	Name        string
	Lang        workload.Lang
	Ref         measuredView
	Interleaved measuredView
}

// measuredView exposes the per-run numbers the characterization figures
// plot.
type measuredView struct {
	CPI            float64
	Stack          topdown.Stack
	L2MPKIInstr    float64
	L2MPKIData     float64
	LLCMPKIInstr   float64
	LLCMPKIData    float64
	MispredictRate float64
}

func view(m measured) measuredView {
	return measuredView{
		CPI:          m.CPI(),
		Stack:        m.Stack,
		L2MPKIInstr:  m.MPKI(m.L2, mem.Instr),
		L2MPKIData:   m.MPKI(m.L2, mem.Data),
		LLCMPKIInstr: m.MPKI(m.LLC, mem.Instr),
		LLCMPKIData:  m.MPKI(m.LLC, mem.Data),
	}
}

// CharacterizationResult backs Figs. 2-5: the Top-Down and MPKI data for
// every function in both regimes.
type CharacterizationResult struct {
	Rows []CharRow
}

// Characterize runs the Sec. 2.3-2.4 study: every function measured in the
// reference (back-to-back) and interleaved (stressor/flush) configurations
// on the Broadwell characterization host.
func Characterize(opt Options) (CharacterizationResult, error) {
	opt = opt.withDefaults()
	cfg := cpu.CharacterizationConfig()
	var out CharacterizationResult
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	var cells []runner.Cell
	for _, w := range suite {
		cells = append(cells,
			opt.cell(w.Name, cfg, nil, false, reference),
			opt.cell(w.Name, cfg, nil, false, lukewarm))
	}
	ms, err := opt.engine().Measure(cells)
	if err != nil {
		return out, err
	}
	for i, w := range suite {
		out.Rows = append(out.Rows, CharRow{
			Name: w.Name, Lang: w.Lang,
			Ref:         view(ms[2*i]),
			Interleaved: view(ms[2*i+1]),
		})
	}
	return out, nil
}

// MeanUplift reports the average interleaved/reference CPI ratio minus one
// (the paper's headline 70% average, range 31-114%).
func (r CharacterizationResult) MeanUplift() float64 {
	var s stats.Summary
	for _, row := range r.Rows {
		s.Add(row.Interleaved.CPI/row.Ref.CPI - 1)
	}
	return s.Mean()
}

// Fig2Table renders the Top-Down CPI stacks (Fig. 2): striped (here "ref")
// vs solid ("int") per category.
func (r CharacterizationResult) Fig2Table() *stats.Table {
	t := stats.NewTable("Figure 2: Top-Down CPI stacks (reference vs interleaved)",
		"Function", "Cfg", "CPI", "Retiring", "Frontend", "BadSpec", "Backend", "CPI stack")
	add := func(name, cfg string, v measuredView) {
		st := v.Stack
		fe := st.CPIOf(topdown.FetchLatency) + st.CPIOf(topdown.FetchBandwidth)
		segs := []float64{st.CPIOf(topdown.Retiring), fe,
			st.CPIOf(topdown.BadSpeculation), st.CPIOf(topdown.BackendBound)}
		t.AddRow(name, cfg,
			fmt.Sprintf("%.2f", v.CPI),
			fmt.Sprintf("%.2f", segs[0]),
			fmt.Sprintf("%.2f", segs[1]),
			fmt.Sprintf("%.2f", segs[2]),
			fmt.Sprintf("%.2f", segs[3]),
			stats.StackedBar(segs, []rune{'R', 'F', 'S', 'B'}, 5, 40))
	}
	var refMean, intMean topdown.Stack
	for _, row := range r.Rows {
		add(row.Name, "ref", row.Ref)
		add(row.Name, "int", row.Interleaved)
		refMean.Merge(row.Ref.Stack)
		intMean.Merge(row.Interleaved.Stack)
	}
	add("Mean", "ref", measuredView{CPI: refMean.CPI(), Stack: refMean})
	add("Mean", "int", measuredView{CPI: intMean.CPI(), Stack: intMean})
	return t
}

// Fig3Table renders the front-end stall split (Fig. 3): fetch latency vs
// fetch bandwidth, reference vs interleaved, normalized to the reference
// front-end portion.
func (r CharacterizationResult) Fig3Table() *stats.Table {
	t := stats.NewTable("Figure 3: front-end stalls, fetch latency vs bandwidth (normalized to reference front-end)",
		"Function", "RefLat", "RefBW", "IntLat", "IntBW", "Lat growth", "BW growth")
	var latG, bwG stats.Summary
	for _, row := range r.Rows {
		refLat := row.Ref.Stack.CPIOf(topdown.FetchLatency)
		refBW := row.Ref.Stack.CPIOf(topdown.FetchBandwidth)
		intLat := row.Interleaved.Stack.CPIOf(topdown.FetchLatency)
		intBW := row.Interleaved.Stack.CPIOf(topdown.FetchBandwidth)
		lg := stats.Pct(intLat-refLat, refLat)
		bg := stats.Pct(intBW-refBW, refBW)
		latG.Add(lg)
		bwG.Add(bg)
		t.AddRow(row.Name,
			fmt.Sprintf("%.3f", refLat), fmt.Sprintf("%.3f", refBW),
			fmt.Sprintf("%.3f", intLat), fmt.Sprintf("%.3f", intBW),
			fmt.Sprintf("%+.0f%%", lg), fmt.Sprintf("%+.0f%%", bg))
	}
	t.AddRow("Mean", "", "", "", "",
		fmt.Sprintf("%+.0f%%", latG.Mean()), fmt.Sprintf("%+.0f%%", bwG.Mean()))
	return t
}

// Fig4FetchLatencyShare reports fetch latency's share of the extra stall
// cycles in the interleaved setup (the paper's 56%).
func (r CharacterizationResult) Fig4FetchLatencyShare() float64 {
	var extra topdown.Stack
	for _, row := range r.Rows {
		d := row.Interleaved.Stack.Normalize(row.Ref.Stack.Instrs).Delta(row.Ref.Stack)
		extra.Merge(d)
	}
	return stats.Ratio(extra.Cycles[topdown.FetchLatency], extra.StallCycles())
}

// Fig4Table renders the mean interleaved CPI normalized to the mean
// reference CPI, split fetch latency / fetch bandwidth / rest (Fig. 4).
func (r CharacterizationResult) Fig4Table() *stats.Table {
	var ref, il topdown.Stack
	for _, row := range r.Rows {
		ref.Merge(row.Ref.Stack)
		il.Merge(row.Interleaved.Stack.Normalize(row.Ref.Stack.Instrs))
	}
	refCPI := ref.CPI()
	t := stats.NewTable("Figure 4: mean interleaved CPI normalized to reference (100% = reference CPI)",
		"Component", "Reference", "Interleaved", "Extra")
	part := func(name string, rv, iv float64) {
		t.AddRow(name,
			fmt.Sprintf("%.0f%%", stats.Pct(rv, refCPI)),
			fmt.Sprintf("%.0f%%", stats.Pct(iv, refCPI)),
			fmt.Sprintf("%+.0f%%", stats.Pct(iv-rv, refCPI)))
	}
	part("Fetch Latency", ref.CPIOf(topdown.FetchLatency), il.CPIOf(topdown.FetchLatency))
	part("Fetch Bandwidth", ref.CPIOf(topdown.FetchBandwidth), il.CPIOf(topdown.FetchBandwidth))
	part("Rest", ref.CPI()-ref.CPIOf(topdown.FetchLatency)-ref.CPIOf(topdown.FetchBandwidth),
		il.CPI()-il.CPIOf(topdown.FetchLatency)-il.CPIOf(topdown.FetchBandwidth))
	part("Total", ref.CPI(), il.CPI())
	t.AddRow("Fetch-latency share of extra stalls",
		"", "", fmt.Sprintf("%.0f%%", r.Fig4FetchLatencyShare()*100))
	return t
}

// Fig5aTable renders L2 MPKI, instructions vs data (Fig. 5a).
func (r CharacterizationResult) Fig5aTable() *stats.Table {
	t := stats.NewTable("Figure 5a: L2 MPKI (instructions vs data)",
		"Function", "Ref data", "Ref instr", "Int data", "Int instr")
	var rd, ri, id, ii stats.Summary
	for _, row := range r.Rows {
		rd.Add(row.Ref.L2MPKIData)
		ri.Add(row.Ref.L2MPKIInstr)
		id.Add(row.Interleaved.L2MPKIData)
		ii.Add(row.Interleaved.L2MPKIInstr)
		t.AddRow(row.Name,
			fmt.Sprintf("%.1f", row.Ref.L2MPKIData), fmt.Sprintf("%.1f", row.Ref.L2MPKIInstr),
			fmt.Sprintf("%.1f", row.Interleaved.L2MPKIData), fmt.Sprintf("%.1f", row.Interleaved.L2MPKIInstr))
	}
	t.AddRow("Mean",
		fmt.Sprintf("%.1f", rd.Mean()), fmt.Sprintf("%.1f", ri.Mean()),
		fmt.Sprintf("%.1f", id.Mean()), fmt.Sprintf("%.1f", ii.Mean()))
	return t
}

// Fig5bTable renders LLC MPKI, instructions vs data (Fig. 5b).
func (r CharacterizationResult) Fig5bTable() *stats.Table {
	t := stats.NewTable("Figure 5b: LLC MPKI (instructions vs data)",
		"Function", "Ref data", "Ref instr", "Int data", "Int instr")
	var rd, ri, id, ii stats.Summary
	for _, row := range r.Rows {
		rd.Add(row.Ref.LLCMPKIData)
		ri.Add(row.Ref.LLCMPKIInstr)
		id.Add(row.Interleaved.LLCMPKIData)
		ii.Add(row.Interleaved.LLCMPKIInstr)
		t.AddRow(row.Name,
			fmt.Sprintf("%.2f", row.Ref.LLCMPKIData), fmt.Sprintf("%.2f", row.Ref.LLCMPKIInstr),
			fmt.Sprintf("%.1f", row.Interleaved.LLCMPKIData), fmt.Sprintf("%.1f", row.Interleaved.LLCMPKIInstr))
	}
	t.AddRow("Mean",
		fmt.Sprintf("%.2f", rd.Mean()), fmt.Sprintf("%.2f", ri.Mean()),
		fmt.Sprintf("%.1f", id.Mean()), fmt.Sprintf("%.1f", ii.Mean()))
	return t
}

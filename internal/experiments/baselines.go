package experiments

import (
	"fmt"
	"strings"

	"lukewarm/internal/baselines"
	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
)

// BaselinesResult backs the Sec. 6 related-work comparison: Jukebox against
// a next-line instruction prefetcher and a RECAP-style whole-LLC context
// restoration scheme.
type BaselinesResult struct {
	// SpeedupPct maps configuration -> geomean speedup over the lukewarm
	// baseline.
	SpeedupPct map[string]float64
	// BandwidthPct maps configuration -> mean DRAM traffic increase over
	// the baseline run.
	BandwidthPct map[string]float64
	// MetadataKB maps configuration -> mean per-instance metadata cost.
	MetadataKB map[string]float64
}

// baselineConfigs names the compared schemes, in presentation order.
var baselineConfigs = []string{"NextLine", "RECAP", "Jukebox"}

// execBaseline executes "baseline-<scheme>" cells, attaching the scheme's
// prefetcher and reporting its per-instance metadata cost in MetaBytes;
// untagged cells fall through to the standard executor.
func execBaseline(c runner.Cell) (runner.Measurement, error) {
	if c.Variant == "" {
		return runner.Execute(c)
	}
	w, err := suiteByName(c.Workload)
	if err != nil {
		return runner.Measurement{}, err
	}
	switch strings.TrimPrefix(c.Variant, "baseline-") {
	case "Jukebox":
		srv := newServer(c.CPU, c.Jukebox, false)
		inst := srv.Deploy(w)
		m, err := runner.MeasureInstance(srv, inst, c.Mode, c.Warmup, c.Measure, c.Audit)
		if err != nil {
			return m, err
		}
		m.MetaBytes = inst.Jukebox.MetadataFootprintBytes()
		return m, nil
	case "NextLine":
		srv := serverless.New(serverless.Config{CPU: c.CPU})
		srv.AttachCorePrefetcher(baselines.NewNextLineI(srv.Core.Hier, 1))
		inst := srv.Deploy(w)
		return runner.MeasureInstance(srv, inst, c.Mode, c.Warmup, c.Measure, c.Audit)
	case "RECAP":
		srv := serverless.New(serverless.Config{CPU: c.CPU})
		rc := baselines.NewRecap(baselines.DefaultRecapConfig(), srv.Core.Hier)
		srv.AttachCorePrefetcher(rc)
		inst := srv.Deploy(w)
		m, err := runner.MeasureInstance(srv, inst, c.Mode, c.Warmup, c.Measure, c.Audit)
		if err != nil {
			return m, err
		}
		m.MetaBytes = rc.Stats.LastMetadataBytes
		return m, nil
	}
	return runner.Measurement{}, fmt.Errorf("experiments: unknown baseline variant %q", c.Variant)
}

// Baselines measures the three schemes across the selected suite on the
// Skylake-like platform.
func Baselines(opt Options) (BaselinesResult, error) {
	opt = opt.withDefaults()
	out := BaselinesResult{
		SpeedupPct:   map[string]float64{},
		BandwidthPct: map[string]float64{},
		MetadataKB:   map[string]float64{},
	}
	type acc struct {
		speed []float64
		bw    stats.Summary
		meta  stats.Summary
	}
	accs := map[string]*acc{}
	for _, cfg := range baselineConfigs {
		accs[cfg] = &acc{}
	}

	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	stride := 1 + len(baselineConfigs)
	var cells []runner.Cell
	for _, w := range suite {
		cells = append(cells, opt.cell(w.Name, cpu.SkylakeConfig(), nil, false, lukewarm))
		for _, cfg := range baselineConfigs {
			var jb *core.Config
			if cfg == "Jukebox" {
				c := core.DefaultConfig()
				jb = &c
			}
			cells = append(cells, opt.variantCell("baseline-"+cfg, w.Name, cpu.SkylakeConfig(), jb, lukewarm))
		}
	}
	ms, err := opt.engine().MeasureFunc(cells, execBaseline)
	if err != nil {
		return out, err
	}
	for wi := range suite {
		base := ms[stride*wi]
		// Sum in the integer domain: float accumulation over a map would
		// round differently run to run with iteration order.
		var baseBytes uint64
		for _, b := range base.DRAM {
			baseBytes += b
		}
		for ci, cfg := range baselineConfigs {
			m := ms[stride*wi+1+ci]
			a := accs[cfg]
			a.speed = append(a.speed, 1+stats.SpeedupPct(normCycles(base), normCycles(m))/100)
			var bytes uint64
			for _, b := range m.DRAM {
				bytes += b
			}
			scale := float64(base.Instrs) / float64(m.Instrs)
			a.bw.Add(stats.Pct(float64(bytes)*scale-float64(baseBytes), float64(baseBytes)))
			a.meta.Add(float64(m.MetaBytes) / 1024)
		}
	}
	for _, cfg := range baselineConfigs {
		a := accs[cfg]
		out.SpeedupPct[cfg] = (stats.GeoMean(a.speed) - 1) * 100
		out.BandwidthPct[cfg] = a.bw.Mean()
		out.MetadataKB[cfg] = a.meta.Mean()
	}
	return out, nil
}

// Table renders the comparison.
func (r BaselinesResult) Table() *stats.Table {
	t := stats.NewTable("Related-work baselines vs Jukebox (lukewarm, Skylake-like)",
		"Scheme", "Geomean speedup", "DRAM traffic increase", "Metadata per instance")
	for _, cfg := range baselineConfigs {
		meta := "-"
		if r.MetadataKB[cfg] > 0 {
			meta = fmt.Sprintf("%.0f KB", r.MetadataKB[cfg])
		}
		t.AddRow(cfg,
			fmt.Sprintf("%.1f%%", r.SpeedupPct[cfg]),
			fmt.Sprintf("%+.0f%%", r.BandwidthPct[cfg]),
			meta)
	}
	return t
}

package experiments

import (
	"fmt"

	"lukewarm/internal/baselines"
	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
)

// BaselinesResult backs the Sec. 6 related-work comparison: Jukebox against
// a next-line instruction prefetcher and a RECAP-style whole-LLC context
// restoration scheme.
type BaselinesResult struct {
	// SpeedupPct maps configuration -> geomean speedup over the lukewarm
	// baseline.
	SpeedupPct map[string]float64
	// BandwidthPct maps configuration -> mean DRAM traffic increase over
	// the baseline run.
	BandwidthPct map[string]float64
	// MetadataKB maps configuration -> mean per-instance metadata cost.
	MetadataKB map[string]float64
}

// baselineConfigs names the compared schemes, in presentation order.
var baselineConfigs = []string{"NextLine", "RECAP", "Jukebox"}

// Baselines measures the three schemes across the selected suite on the
// Skylake-like platform.
func Baselines(opt Options) (BaselinesResult, error) {
	opt = opt.withDefaults()
	out := BaselinesResult{
		SpeedupPct:   map[string]float64{},
		BandwidthPct: map[string]float64{},
		MetadataKB:   map[string]float64{},
	}
	type acc struct {
		speed []float64
		bw    stats.Summary
		meta  stats.Summary
	}
	accs := map[string]*acc{}
	for _, cfg := range baselineConfigs {
		accs[cfg] = &acc{}
	}

	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	for _, w := range suite {
		base, err := measureWorkload(w, cpu.SkylakeConfig(), nil, false, lukewarm, opt)
		if err != nil {
			return out, err
		}
		var baseBytes float64
		for _, b := range base.DRAM {
			baseBytes += float64(b)
		}

		run := func(cfg string) (m measured, metaBytes int, err error) {
			switch cfg {
			case "Jukebox":
				jb := core.DefaultConfig()
				srv := newServer(cpu.SkylakeConfig(), &jb, false)
				inst := srv.Deploy(w)
				m, err = measure(srv, inst, lukewarm, opt)
				return m, inst.Jukebox.MetadataFootprintBytes(), err
			case "NextLine":
				srv := serverless.New(serverless.Config{CPU: cpu.SkylakeConfig()})
				srv.AttachCorePrefetcher(baselines.NewNextLineI(srv.Core.Hier, 1))
				inst := srv.Deploy(w)
				m, err = measure(srv, inst, lukewarm, opt)
				return m, 0, err
			case "RECAP":
				srv := serverless.New(serverless.Config{CPU: cpu.SkylakeConfig()})
				rc := baselines.NewRecap(baselines.DefaultRecapConfig(), srv.Core.Hier)
				srv.AttachCorePrefetcher(rc)
				inst := srv.Deploy(w)
				m, err = measure(srv, inst, lukewarm, opt)
				return m, rc.Stats.LastMetadataBytes, err
			}
			// baselineConfigs is a private list; a miss here is a programmer
			// error, not user input.
			panic("unknown baseline config " + cfg)
		}

		for _, cfg := range baselineConfigs {
			m, meta, err := run(cfg)
			if err != nil {
				return out, err
			}
			a := accs[cfg]
			a.speed = append(a.speed, 1+stats.SpeedupPct(normCycles(base), normCycles(m))/100)
			var bytes float64
			for _, b := range m.DRAM {
				bytes += float64(b)
			}
			scale := float64(base.Instrs) / float64(m.Instrs)
			a.bw.Add(stats.Pct(bytes*scale-baseBytes, baseBytes))
			a.meta.Add(float64(meta) / 1024)
		}
	}
	for _, cfg := range baselineConfigs {
		a := accs[cfg]
		out.SpeedupPct[cfg] = (stats.GeoMean(a.speed) - 1) * 100
		out.BandwidthPct[cfg] = a.bw.Mean()
		out.MetadataKB[cfg] = a.meta.Mean()
	}
	return out, nil
}

// Table renders the comparison.
func (r BaselinesResult) Table() *stats.Table {
	t := stats.NewTable("Related-work baselines vs Jukebox (lukewarm, Skylake-like)",
		"Scheme", "Geomean speedup", "DRAM traffic increase", "Metadata per instance")
	for _, cfg := range baselineConfigs {
		meta := "-"
		if r.MetadataKB[cfg] > 0 {
			meta = fmt.Sprintf("%.0f KB", r.MetadataKB[cfg])
		}
		t.AddRow(cfg,
			fmt.Sprintf("%.1f%%", r.SpeedupPct[cfg]),
			fmt.Sprintf("%+.0f%%", r.BandwidthPct[cfg]),
			meta)
	}
	return t
}

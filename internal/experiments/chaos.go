package experiments

import (
	"bytes"
	"fmt"

	"lukewarm/internal/cluster"
	"lukewarm/internal/core"
	"lukewarm/internal/faults"
	"lukewarm/internal/program"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/trace"
	"lukewarm/internal/workload"
)

// ChaosOutcome classifies one fault-injection cell.
type ChaosOutcome string

// The three cell outcomes.
const (
	// ChaosPass: the fault was injected and the system absorbed it with no
	// loss of function (or there was nothing for it to hit).
	ChaosPass ChaosOutcome = "PASS"
	// ChaosDegraded: the fault cost something — a replay generation, shed
	// requests, a rejected stream — but the system degraded along a designed
	// path and every invariant held.
	ChaosDegraded ChaosOutcome = "DEGRADED"
	// ChaosFail: a panic, an invariant violation, undetected corruption, or
	// a degraded run that exceeded its performance bound.
	ChaosFail ChaosOutcome = "FAIL"
)

// ChaosCell is one (function, fault) cell of the chaos matrix.
type ChaosCell struct {
	Function string
	Fault    faults.Kind
	Outcome  ChaosOutcome
	Detail   string
}

// ChaosResult backs the `lukewarm chaos` sweep: the full fault matrix run
// against the representative functions.
type ChaosResult struct {
	Seed  uint64
	Cells []ChaosCell
}

// Chaos sweeps every fault kind across the representative functions (or
// opt.Functions when set), one deterministic seeded plan per cell. A cell
// that panics is caught and reported as FAIL — the sweep itself always
// completes.
func Chaos(opt Options, seed uint64) (ChaosResult, error) {
	opt = opt.withDefaults()
	out := ChaosResult{Seed: seed}
	fns := opt.Functions
	if len(fns) == 0 {
		fns = workload.Representatives()
	}
	// One engine job per function: each runs the full fault matrix against
	// its own servers, so functions sweep concurrently while the cell order
	// within a function stays fixed.
	rows, err := runner.MapOn(opt.engine(), len(fns),
		func(i int) string { return fns[i] + "/chaos" },
		func(i int) ([]ChaosCell, error) {
			w, err := workload.ByName(fns[i])
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			// The acceptance bound for corrupted metadata: a Jukebox fed
			// garbage must not run materially worse than no Jukebox at all.
			base := serverless.New(serverless.Config{})
			baseCPI := base.RunLukewarm(base.Deploy(w), 4).CPI()
			var cells []ChaosCell
			for _, k := range faults.Kinds() {
				cells = append(cells, chaosCell(w, k, seed, baseCPI))
			}
			return cells, nil
		})
	if err != nil {
		return out, err
	}
	for _, cells := range rows {
		out.Cells = append(out.Cells, cells...)
	}
	return out, nil
}

// Failures counts FAIL cells.
func (r ChaosResult) Failures() int {
	n := 0
	for _, c := range r.Cells {
		if c.Outcome == ChaosFail {
			n++
		}
	}
	return n
}

// Table renders the matrix.
func (r ChaosResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Chaos sweep: fault matrix outcomes (seed %d)", r.Seed),
		"Function", "Fault", "Outcome", "Detail")
	for _, c := range r.Cells {
		t.AddRow(c.Function, c.Fault.String(), string(c.Outcome), c.Detail)
	}
	return t
}

// chaosJBServer builds a Jukebox-equipped server with w deployed and warmed
// far enough to have sealed replay metadata.
func chaosJBServer(w workload.Workload) (*serverless.Server, *serverless.Instance) {
	jb := core.DefaultConfig()
	s := serverless.New(serverless.Config{Jukebox: &jb})
	inst := s.Deploy(w)
	for i := 0; i < 3; i++ {
		s.FlushMicroarch()
		s.Invoke(inst)
	}
	return s, inst
}

// chaosCell runs one fault cell. Panics anywhere inside become FAIL cells,
// so a chaos sweep can never take the process down.
func chaosCell(w workload.Workload, k faults.Kind, seed uint64, baseCPI float64) (cell ChaosCell) {
	cell = ChaosCell{Function: w.Name, Fault: k}
	defer func() {
		if rec := recover(); rec != nil {
			cell.Outcome = ChaosFail
			cell.Detail = fmt.Sprintf("panic: %v", rec)
		}
	}()
	set := func(o ChaosOutcome, format string, args ...any) ChaosCell {
		cell.Outcome = o
		cell.Detail = fmt.Sprintf(format, args...)
		return cell
	}
	plan := faults.NewPlan(program.Mix(seed, uint64(k)), k)

	switch k {
	case faults.MetadataCorrupt, faults.MetadataTruncate, faults.MetadataZero:
		s, inst := chaosJBServer(w)
		plan.CorruptMetadata(inst.Jukebox)
		if plan.Injections[k] == 0 {
			return set(ChaosPass, "replay metadata empty; nothing to corrupt")
		}
		s.FlushMicroarch()
		r := s.Invoke(inst)
		if err := faults.Audit(r); err != nil {
			return set(ChaosFail, "audit: %v", err)
		}
		if inst.Jukebox.Stats.DegradedReplays == 0 {
			return set(ChaosFail, "corrupted metadata replayed undetected")
		}
		if ratio := r.CPI() / baseCPI; ratio > 1.02 {
			return set(ChaosFail, "degraded CPI %.4f is %+.1f%% vs no-Jukebox %.4f (bound +2%%)",
				r.CPI(), (ratio-1)*100, baseCPI)
		}
		return set(ChaosDegraded, "fell back to record-only; CPI %+.1f%% vs no-Jukebox baseline",
			(r.CPI()/baseCPI-1)*100)

	case faults.ReplayCompaction:
		s, inst := chaosJBServer(w)
		plan.ArmReplayCompaction(inst.Jukebox, inst.AS)
		s.FlushMicroarch()
		r := s.Invoke(inst)
		inst.Jukebox.ReplayHook = nil
		if err := faults.Audit(r); err != nil {
			return set(ChaosFail, "audit: %v", err)
		}
		if plan.Injections[k] == 0 {
			return set(ChaosPass, "no replay in flight; nothing to migrate under")
		}
		if inst.Jukebox.Stats.DegradedReplays != 0 {
			return set(ChaosFail, "page migration misread as metadata corruption")
		}
		return set(ChaosPass, "replay survived full page migration mid-flight (%d pages moved)",
			inst.AS.Migrations)

	case faults.RecordEviction:
		s, inst := chaosJBServer(w)
		plan.ArmMidRecordEviction(inst)
		s.FlushMicroarch()
		r := s.Invoke(inst)
		inst.Jukebox.RecordHook = nil
		if err := faults.Audit(r); err != nil {
			return set(ChaosFail, "audit: %v", err)
		}
		if plan.Injections[k] == 0 {
			return set(ChaosFail, "eviction hook never fired")
		}
		inst.Evict()
		for i := 0; i < 2; i++ {
			s.FlushMicroarch()
			s.Invoke(inst)
		}
		if inst.Jukebox.Stats.ReplayPrefetches == 0 {
			return set(ChaosFail, "replay did not re-seed after eviction")
		}
		return set(ChaosDegraded, "metadata dropped mid-record; replay re-seeded two invocations later")

	case faults.DRAMSpike:
		s := serverless.New(serverless.Config{})
		inst := s.Deploy(w)
		clean := s.RunLukewarm(inst, 2)
		plan.DisturbDRAM(s.Core.Hier.DRAM)
		s.FlushMicroarch()
		r := s.Invoke(inst)
		if err := faults.Audit(r); err != nil {
			return set(ChaosFail, "audit: %v", err)
		}
		return set(ChaosDegraded, "ran through interference: CPI %.3f vs %.3f clean",
			r.CPI(), clean.CPI())

	case faults.TraceCorrupt:
		var buf bytes.Buffer
		if _, err := trace.Capture(w.Program, 0, &buf); err != nil {
			return set(ChaosFail, "capture: %v", err)
		}
		data := plan.CorruptTrace(buf.Bytes())
		instrs, err := trace.Read(bytes.NewReader(data), 0)
		if err != nil {
			return set(ChaosDegraded, "decoder rejected corrupt stream with typed error")
		}
		for _, in := range instrs {
			if in.VAddr >= 1<<48 || in.MemAddr >= 1<<48 || in.Target >= 1<<48 {
				return set(ChaosFail, "corrupt stream decoded to non-canonical address")
			}
		}
		return set(ChaosPass, "corruption decoded as a different but canonical stream")

	case faults.TrafficBurst:
		s := serverless.New(serverless.Config{})
		s.Deploy(w)
		cfg := serverless.DefaultTrafficConfig()
		cfg.MeanIATms = 30
		cfg.InvocationsPerInstance = 8
		cfg = plan.BurstTraffic(cfg)
		res, err := s.ServeTraffic(cfg)
		if err != nil {
			return set(ChaosFail, "serve: %v", err)
		}
		if err := faults.AuditTraffic(res); err != nil {
			return set(ChaosFail, "audit: %v", err)
		}
		if res.Served+res.Shed != cfg.InvocationsPerInstance {
			return set(ChaosFail, "served %d + shed %d != offered %d",
				res.Served, res.Shed, cfg.InvocationsPerInstance)
		}
		if res.Shed > 0 {
			return set(ChaosDegraded, "shed %d of %d under 100x burst, served the rest",
				res.Shed, cfg.InvocationsPerInstance)
		}
		return set(ChaosPass, "absorbed 100x burst without shedding")

	case faults.NodeCrash:
		cfg := chaosClusterCfg(w, plan)
		cfg.NodeCrashMTBFms = 100
		cfg.NodeDownMs = 40
		res, err := cluster.Run(cfg)
		if err != nil {
			return set(ChaosFail, "cluster: %v", err)
		}
		if err := cluster.Audit(&res); err != nil {
			return set(ChaosFail, "audit: %v", err)
		}
		if res.NodeCrashes == 0 {
			return set(ChaosPass, "no crash landed in the simulated span")
		}
		cold := 0
		for i := range res.PerNode {
			cold += res.PerNode[i].ColdStarts
		}
		if res.Served == res.Offered {
			return set(ChaosDegraded, "%d node crashes absorbed by rerouting and retries (%d cold restarts)",
				res.NodeCrashes, cold)
		}
		return set(ChaosDegraded, "%d node crashes: served %d of %d, %d cold restarts",
			res.NodeCrashes, res.Served, res.Offered, cold)

	case faults.InstanceCrash:
		cfg := chaosClusterCfg(w, plan)
		cfg.InstanceCrashProb = 0.2
		res, err := cluster.Run(cfg)
		if err != nil {
			return set(ChaosFail, "cluster: %v", err)
		}
		if err := cluster.Audit(&res); err != nil {
			return set(ChaosFail, "audit: %v", err)
		}
		if res.InstanceCrashes == 0 {
			return set(ChaosPass, "no crash struck in the simulated span")
		}
		if res.Served == res.Offered {
			return set(ChaosDegraded, "%d mid-invocation crashes absorbed by retries (work redone cold)",
				res.InstanceCrashes)
		}
		return set(ChaosDegraded, "%d mid-invocation crashes: served %d of %d",
			res.InstanceCrashes, res.Served, res.Offered)

	case faults.DispatchFlake:
		cfg := chaosClusterCfg(w, plan)
		cfg.DispatchFlakeProb = 0.3
		res, err := cluster.Run(cfg)
		if err != nil {
			return set(ChaosFail, "cluster: %v", err)
		}
		if err := cluster.Audit(&res); err != nil {
			return set(ChaosFail, "audit: %v", err)
		}
		if res.DispatchFlakes == 0 {
			return set(ChaosPass, "no flake struck in the simulated span")
		}
		if res.Served == res.Offered {
			return set(ChaosPass, "%d transient dispatch failures absorbed by retry/backoff",
				res.DispatchFlakes)
		}
		return set(ChaosDegraded, "%d dispatch flakes: served %d of %d",
			res.DispatchFlakes, res.Served, res.Offered)
	}
	return set(ChaosFail, "no cell runner for fault kind")
}

// chaosClusterCfg is the small two-node fleet the fleet-fault cells share:
// retries on, everything else at defaults, the plan under test armed.
func chaosClusterCfg(w workload.Workload, plan *faults.Plan) cluster.Config {
	tc := serverless.DefaultTrafficConfig()
	tc.MeanIATms = 50
	tc.InvocationsPerInstance = 6
	return cluster.Config{
		Nodes:          2,
		Workloads:      []workload.Workload{w},
		Traffic:        tc,
		RetryMax:       2,
		RetryBackoffMs: 2,
		Faults:         plan,
	}
}

package experiments

import (
	"fmt"

	"lukewarm/internal/runner"
	"lukewarm/internal/stats"
)

// FootprintRow is one function's Fig. 6 measurements.
type FootprintRow struct {
	Name string
	// KB summarizes per-invocation instruction footprints (Fig. 6a).
	KB stats.Summary
	// Jaccard summarizes the pairwise commonality distribution (Fig. 6b).
	Jaccard stats.Summary
}

// FootprintResult backs Figs. 6a and 6b.
type FootprintResult struct {
	Rows []FootprintRow
	// Invocations is the number of invocations traced per function (the
	// paper uses 25, for 300 pairwise comparisons).
	Invocations int
}

// Footprints traces invocations invocations per function — the paper uses
// 25, which invocations <= 0 selects — collecting per-invocation unique
// instruction blocks and all pairwise Jaccard indices (Sec. 2.5).
func Footprints(opt Options, invocations int) (FootprintResult, error) {
	opt = opt.withDefaults()
	n := invocations
	if n <= 0 {
		n = 25
	}
	out := FootprintResult{Invocations: n}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	rows, err := runner.MapOn(opt.engine(), len(suite),
		func(i int) string { return suite[i].Name + "/footprint" },
		func(i int) (FootprintRow, error) {
			w := suite[i]
			row := FootprintRow{Name: w.Name}
			sets := make([]map[uint64]struct{}, n)
			for i := 0; i < n; i++ {
				sets[i] = w.Program.FootprintBlocks(uint64(i))
				row.KB.Add(float64(len(sets[i])) * 64 / 1024)
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					row.Jaccard.Add(stats.Jaccard(sets[i], sets[j]))
				}
			}
			return row, nil
		})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// Fig6aTable renders the footprint sizes.
func (r FootprintResult) Fig6aTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 6a: instruction footprints per invocation (%d invocations)", r.Invocations),
		"Function", "Mean KB", "Min KB", "Max KB", "StdDev")
	var mean stats.Summary
	for _, row := range r.Rows {
		mean.Add(row.KB.Mean())
		t.AddRow(row.Name,
			fmt.Sprintf("%.0f", row.KB.Mean()),
			fmt.Sprintf("%.0f", row.KB.Min()),
			fmt.Sprintf("%.0f", row.KB.Max()),
			fmt.Sprintf("%.1f", row.KB.StdDev()))
	}
	t.AddRow("MEAN", fmt.Sprintf("%.0f", mean.Mean()), "", "", "")
	return t
}

// Fig6bTable renders the commonality distributions.
func (r FootprintResult) Fig6bTable() *stats.Table {
	t := stats.NewTable("Figure 6b: pairwise Jaccard commonality of instruction footprints",
		"Function", "Mean", "Min", "Max")
	var mean stats.Summary
	for _, row := range r.Rows {
		mean.Add(row.Jaccard.Mean())
		t.AddRow(row.Name,
			fmt.Sprintf("%.3f", row.Jaccard.Mean()),
			fmt.Sprintf("%.3f", row.Jaccard.Min()),
			fmt.Sprintf("%.3f", row.Jaccard.Max()))
	}
	t.AddRow("MEAN", fmt.Sprintf("%.3f", mean.Mean()), "", "")
	return t
}

// MeanFootprintKB reports the suite-wide mean footprint.
func (r FootprintResult) MeanFootprintKB() float64 {
	var s stats.Summary
	for _, row := range r.Rows {
		s.Add(row.KB.Mean())
	}
	return s.Mean()
}

// HighCommonalityCount reports how many functions have mean Jaccard >= 0.9
// (the paper: all but three).
func (r FootprintResult) HighCommonalityCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.Jaccard.Mean() >= 0.9 {
			n++
		}
	}
	return n
}

package experiments

import (
	"fmt"
	"strings"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/runner"
	"lukewarm/internal/sched"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// The scheduling experiment asks the system-level question the paper's
// characterization implies: how much of the lukewarm penalty can a smarter
// scheduler claim back for free, and how much remains for Jukebox? It runs
// two sweeps over the co-resident suite:
//
//   - Placement: four placement policies × three traffic shapes on a host
//     with ~1 core per co-resident function, measuring CPI (warmth), shed
//     rate (load balance) and Jukebox Bind churn (metadata locality).
//   - Keep-alive: three eviction policies × three traffic shapes at
//     provider-realistic IATs, measuring cold-start rate against the
//     instance-memory budget each policy spends (à la Shahrad et al.,
//     ATC'20).
//
// Every (shape, policy) pair is one runner.Cell with a Variant tag, so the
// whole sweep fans out across the engine's worker pool and memoizes in the
// content-addressed result cache like every other experiment.

// Placement-sweep parameters: a host with roughly one core per co-resident
// function (the suite's 20 functions on 16 cores) under busy traffic, with
// a front-end deadline so overload sheds instead of queueing without bound.
// The near-1 function-to-core ratio is the regime where placement policy is
// decisive: an affinity placer can give each function a mostly-dedicated
// core and keep its L1-I/BTB state alive between invocations, while the
// earliest-available baseline — which picks the least-recently-finished
// core — systematically scatters them. On heavily consolidated hosts
// (several functions per core) every core's private state is thrashed by
// co-resident executions no matter where an invocation lands, placement
// deltas vanish, and only Jukebox-style replay recovers the warmth; the
// sweep targets the regime where the scheduler still has room to act. The
// generous keep-alive keeps eviction out of the placement signal.
const (
	schedPlaceCores  = 16
	schedPlaceIATms  = 2
	schedPlaceShedMs = 50
	schedPlaceKeepMs = 200
	schedPlaceSeed   = 17
)

// Keep-alive-sweep parameters: IATs at the provider scale the Azure study
// reports (hundreds of ms here, compressed from minutes so runs stay
// tractable) and a fixed timeout at 65% of the mean gap (a memory-pressured
// provider setting). The cold-start charge is compressed with the IATs —
// 25 ms against 400 ms gaps preserves the real-world charge-to-gap ratio;
// the paper's full 250 ms against compressed gaps would let each cold start
// eat most of the following idle period and distort the gap distribution
// both policies observe.
const (
	schedKACores  = 2
	schedKAIATms  = 400
	schedKAFixMs  = 260
	schedKAColdMs = 25
	schedKASeed   = 23
)

// schedShapes are the traffic shapes both sweeps cover.
var schedShapes = []sched.ShapeKind{sched.Poisson, sched.HeavyTail, sched.Diurnal}

// schedPlacers enumerates the placement policies, baseline first.
var schedPlacers = []string{"EarliestAvailable", "RoundRobin", "StickyAffinity", "JukeboxAware"}

// schedKeepAlives enumerates the keep-alive policies, baseline first.
var schedKeepAlives = []string{"FixedTimeout", "HybridHistogram", "NoEvict"}

// newPlacer builds a fresh (stateful) placer by policy name.
func newPlacer(name string) sched.Placer {
	switch name {
	case "RoundRobin":
		return sched.RoundRobin()
	case "StickyAffinity":
		return sched.StickyAffinity(0)
	case "JukeboxAware":
		return sched.JukeboxAware(0)
	}
	return sched.EarliestAvailable()
}

// newKeepAlive builds a fresh (learning) keep-alive policy by name.
func newKeepAlive(name string) sched.KeepAlive {
	switch name {
	case "HybridHistogram":
		return sched.HybridHistogram(sched.HybridConfig{FallbackMs: schedKAFixMs})
	case "NoEvict":
		return sched.NoEvict()
	}
	return sched.FixedTimeout(schedKAFixMs)
}

// SchedRow is one (traffic shape, policy) cell of a sweep.
type SchedRow struct {
	// Shape names the arrival process.
	Shape string
	// Policy names the placement or keep-alive policy.
	Policy string
	// T is the traffic run's summary.
	T serverless.TrafficSummary
}

// SchedResult backs the scheduling experiment.
type SchedResult struct {
	// Placement holds the placer sweep, grouped by shape in schedShapes
	// order with policies in schedPlacers order.
	Placement []SchedRow
	// KeepAlive holds the eviction-policy sweep, grouped likewise.
	KeepAlive []SchedRow
}

// schedSpec describes one cell's traffic setup; the Variant tag is derived
// from it, so content-identical cells share a cache address and any
// parameter change lands elsewhere.
type schedSpec struct {
	sweep  string // "place" or "keepalive"
	shape  sched.ShapeKind
	policy string
	invocs int
}

func (sp schedSpec) variant() string {
	switch sp.sweep {
	case "place":
		return fmt.Sprintf("sched/place/%s/%s/cores=%d/iat=%g/shed=%g/keep=%g/inv=%d/seed=%d",
			sp.shape, sp.policy, schedPlaceCores, float64(schedPlaceIATms),
			float64(schedPlaceShedMs), float64(schedPlaceKeepMs), sp.invocs, schedPlaceSeed)
	default:
		return fmt.Sprintf("sched/keepalive/%s/%s/cores=%d/iat=%g/fix=%g/cold=%g/inv=%d/seed=%d",
			sp.shape, sp.policy, schedKACores, float64(schedKAIATms),
			float64(schedKAFixMs), float64(schedKAColdMs), sp.invocs, schedKASeed)
	}
}

// traffic builds the cell's traffic configuration with fresh policy state.
func (sp schedSpec) traffic() serverless.TrafficConfig {
	cfg := serverless.TrafficConfig{
		InvocationsPerInstance: sp.invocs,
	}
	switch sp.shape {
	case sched.Diurnal:
		cfg.Diurnal = true
	case sched.HeavyTail:
		cfg.HeavyTail = true
	case sched.Poisson:
		cfg.Poisson = true
	}
	if sp.sweep == "place" {
		cfg.MeanIATms = schedPlaceIATms
		cfg.ShedAfterMs = schedPlaceShedMs
		cfg.KeepAliveMs = schedPlaceKeepMs
		cfg.ColdStartMs = 250
		cfg.Placer = newPlacer(sp.policy)
		cfg.Seed = schedPlaceSeed
	} else {
		cfg.MeanIATms = schedKAIATms
		cfg.ColdStartMs = schedKAColdMs
		cfg.KeepAlive = newKeepAlive(sp.policy)
		cfg.Seed = schedKASeed
	}
	return cfg
}

// Sched runs the scheduling-policy experiment over the selected suite.
func Sched(opt Options) (SchedResult, error) {
	opt = opt.withDefaults()
	var out SchedResult
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	names := make([]string, len(suite))
	for i, w := range suite {
		names[i] = w.Name
	}
	suiteTag := strings.Join(names, "+")

	placeInvocs := opt.Measure + opt.Warmup
	// The hybrid policy needs a few observed gaps per function before its
	// histogram is trusted; give the keep-alive sweep enough depth to show
	// both the learning and the learned phases.
	kaInvocs := 2 * (opt.Measure + opt.Warmup)
	if kaInvocs < 8 {
		kaInvocs = 8
	}

	var specs []schedSpec
	for _, shape := range schedShapes {
		for _, p := range schedPlacers {
			specs = append(specs, schedSpec{sweep: "place", shape: shape, policy: p, invocs: placeInvocs})
		}
	}
	for _, shape := range schedShapes {
		for _, ka := range schedKeepAlives {
			specs = append(specs, schedSpec{sweep: "keepalive", shape: shape, policy: ka, invocs: kaInvocs})
		}
	}

	byVariant := make(map[string]schedSpec, len(specs))
	cells := make([]runner.Cell, len(specs))
	for i, sp := range specs {
		jbCfg := core.DefaultConfig()
		c := runner.Cell{
			Workload: suiteTag,
			CPU:      cpu.SkylakeConfig(),
			Mode:     runner.Reference,
			Warmup:   opt.Warmup,
			Measure:  opt.Measure,
			Audit:    opt.Audit,
			Variant:  sp.variant(),
		}
		// The placement sweep runs with Jukebox so metadata locality is a
		// live axis; the keep-alive sweep isolates eviction policy.
		if sp.sweep == "place" {
			c.Jukebox = &jbCfg
		}
		cells[i] = c
		byVariant[sp.variant()] = sp
	}

	ms, err := opt.engine().MeasureFunc(cells, func(c runner.Cell) (runner.Measurement, error) {
		sp := byVariant[c.Variant]
		cores := schedKACores
		if sp.sweep == "place" {
			cores = schedPlaceCores
		}
		srv := serverless.New(serverless.Config{CPU: c.CPU, Cores: cores, Jukebox: c.Jukebox})
		for _, name := range strings.Split(c.Workload, "+") {
			w, err := workload.ByName(name)
			if err != nil {
				return runner.Measurement{}, err
			}
			srv.Deploy(w)
		}
		res, err := srv.ServeTraffic(sp.traffic())
		if err != nil {
			return runner.Measurement{}, err
		}
		if c.Audit {
			if err := faults.AuditTraffic(res); err != nil {
				return runner.Measurement{}, fmt.Errorf("%s: %w", c.Variant, err)
			}
		}
		sum := res.Summary()
		return runner.Measurement{Traffic: &sum}, nil
	})
	if err != nil {
		return out, err
	}

	for i, sp := range specs {
		if ms[i].Traffic == nil {
			return out, fmt.Errorf("sched: cell %s returned no traffic summary", sp.variant())
		}
		row := SchedRow{Shape: sp.shape.String(), Policy: sp.policy, T: *ms[i].Traffic}
		if sp.sweep == "place" {
			out.Placement = append(out.Placement, row)
		} else {
			out.KeepAlive = append(out.KeepAlive, row)
		}
	}
	return out, nil
}

// placementCPI collects a placer's mean CPI per shape, in sweep order.
func (r SchedResult) placementCPI(policy string) []float64 {
	var cpis []float64
	for _, row := range r.Placement {
		if row.Policy == policy {
			cpis = append(cpis, row.T.MeanCPI)
		}
	}
	return cpis
}

// GeomeanCPI reports a placer's geometric-mean CPI across traffic shapes.
func (r SchedResult) GeomeanCPI(policy string) float64 {
	return stats.GeoMean(r.placementCPI(policy))
}

// CPIDeltaPct reports a placer's geomean-CPI improvement over the
// EarliestAvailable baseline, in percent (positive = faster).
func (r SchedResult) CPIDeltaPct(policy string) float64 {
	base := r.GeomeanCPI("EarliestAvailable")
	own := r.GeomeanCPI(policy)
	//lukewarm:floateq GeoMean returns exactly 0 on empty input; this guards the no-data sentinel
	if base == 0 || own == 0 {
		return 0
	}
	return (base/own - 1) * 100
}

// BestPolicyCPIDeltaPct reports the best non-baseline placer's geomean CPI
// delta vs EarliestAvailable — the experiment's headline metric — and the
// policy that achieves it.
func (r SchedResult) BestPolicyCPIDeltaPct() (policy string, deltaPct float64) {
	for _, p := range schedPlacers[1:] {
		if d := r.CPIDeltaPct(p); policy == "" || d > deltaPct {
			policy, deltaPct = p, d
		}
	}
	return policy, deltaPct
}

// keepAliveRow finds one keep-alive sweep cell.
func (r SchedResult) keepAliveRow(shape, policy string) (SchedRow, bool) {
	for _, row := range r.KeepAlive {
		if row.Shape == shape && row.Policy == policy {
			return row, true
		}
	}
	return SchedRow{}, false
}

// Table renders the placement sweep with per-placer geomean summary rows.
func (r SchedResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Scheduling: placement policy x traffic shape (%d cores, Jukebox on)", schedPlaceCores),
		"Shape", "Placer", "Mean CPI", "Cold", "Shed rate", "Migrations", "JB coverage", "p99 latency [cyc]")
	for _, row := range r.Placement {
		t.AddRow(row.Shape, row.Policy,
			fmt.Sprintf("%.3f", row.T.MeanCPI),
			fmt.Sprint(row.T.ColdStarts),
			fmt.Sprintf("%.1f%%", row.T.ShedRate()*100),
			fmt.Sprint(row.T.Migrations),
			fmt.Sprintf("%.0f%%", row.T.JukeboxCoverage()*100),
			fmt.Sprintf("%.0f", row.T.P99LatencyCyc))
	}
	for _, p := range schedPlacers {
		t.AddRow("geomean", p,
			fmt.Sprintf("%.3f", r.GeomeanCPI(p)), "", "", "", "",
			fmt.Sprintf("%+.1f%% vs EA", r.CPIDeltaPct(p)))
	}
	return t
}

// KeepAliveTable renders the eviction-policy sweep: cold starts against the
// instance-memory budget each policy spends.
func (r SchedResult) KeepAliveTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Scheduling: keep-alive policy x traffic shape (mean IAT %d ms, cold start %d ms)", schedKAIATms, schedKAColdMs),
		"Shape", "Policy", "Cold-start rate", "Pre-warm hits", "Resident [ms/inv]", "Mean CPI")
	for _, row := range r.KeepAlive {
		t.AddRow(row.Shape, row.Policy,
			fmt.Sprintf("%.1f%%", row.T.ColdStartRate()*100),
			fmt.Sprint(row.T.PrewarmHits),
			fmt.Sprintf("%.0f", row.T.ResidentMsPerServed()),
			fmt.Sprintf("%.3f", row.T.MeanCPI))
	}
	return t
}

// PerFuncTable renders the per-function cold-start breakdown of the
// keep-alive sweep under diurnal traffic — the shape where per-function
// learning matters most.
func (r SchedResult) PerFuncTable() *stats.Table {
	t := stats.NewTable("Scheduling: per-function cold starts under diurnal traffic",
		"Function", "Served", "FixedTimeout cold", "HybridHistogram cold", "NoEvict cold")
	fixed, okF := r.keepAliveRow("diurnal", "FixedTimeout")
	hybrid, okH := r.keepAliveRow("diurnal", "HybridHistogram")
	noEvict, okN := r.keepAliveRow("diurnal", "NoEvict")
	if !okF || !okH || !okN {
		return t
	}
	for i, f := range fixed.T.PerFunction {
		hc, nc := "-", "-"
		if i < len(hybrid.T.PerFunction) {
			hc = fmt.Sprint(hybrid.T.PerFunction[i].ColdStarts)
		}
		if i < len(noEvict.T.PerFunction) {
			nc = fmt.Sprint(noEvict.T.PerFunction[i].ColdStarts)
		}
		t.AddRow(f.Name, fmt.Sprint(f.Served), fmt.Sprint(f.ColdStarts), hc, nc)
	}
	return t
}

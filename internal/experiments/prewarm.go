package experiments

import (
	"fmt"
	"strings"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/predict"
	"lukewarm/internal/reap"
	"lukewarm/internal/runner"
	"lukewarm/internal/sched"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// The pre-warm experiment asks the prediction question on top of the
// mechanism question: given Jukebox and REAP can repay the lukewarm tax
// *after* dispatch, how much more is recovered by running their replay
// *ahead* of the predicted arrival — and what does speculation cost when the
// forecast is wrong? It sweeps forecaster x lead x arrival shape on a
// single-core host in the lukewarm IAT band with ambient interleaving and
// synchronous restore semantics (TrafficConfig.SyncReplay: an invocation
// cannot run ahead of its own working set, so replay left to dispatch lands
// on the critical path), so every invocation's warmth — and its restore
// bill — is exactly what the pre-warm (or its absence) left behind. Oracle rows bound what prediction can ever recover; the
// bursty shape is the adversarial case where the learned forecasters fire
// into lulls and the wasted-replay ledger fills up.

// Pre-warm sweep parameters: one core, the paper's representative lukewarm
// gap (64 ms, squarely in the tens-to-hundreds-of-ms band of Sec. 2.1),
// ambient thrash so idle gaps decay installed state, and no keep-alive so
// readiness is purely the pre-warm's doing.
const (
	prewarmCores = 1
	prewarmIATms = 64
	prewarmSeed  = 29
)

// prewarmShapes is the arrival-shape axis, most to least predictable.
var prewarmShapes = []sched.ShapeKind{sched.Diurnal, sched.Poisson, sched.HeavyTail, sched.Bursty}

// prewarmForecasters is the forecaster axis (predict.NewForecaster names).
var prewarmForecasters = []string{"histpeak", "ewma", "oracle"}

// prewarmLeads is the lead-time axis in milliseconds: late enough to finish,
// early enough to decay.
var prewarmLeads = []float64{1, 4, 16}

// prewarmMechFor alternates the pre-warmed mechanism across the suite in
// deployment order — both replay engines and the combined stack are
// exercised under prediction in one sweep.
func prewarmMechFor(names []string) func(string) predict.Mech {
	mech := map[string]predict.Mech{}
	for i, n := range names {
		mech[n] = []predict.Mech{predict.MechAuto, predict.MechReap, predict.MechJukebox}[i%3]
	}
	return func(fn string) predict.Mech { return mech[fn] }
}

// PrewarmRow is one (shape, forecaster, lead) cell of the sweep.
type PrewarmRow struct {
	// Shape names the arrival process.
	Shape string
	// Forecaster names the predictor; "bare" is the no-prediction baseline
	// (mechanisms still replay at dispatch).
	Forecaster string
	// LeadMs is the pre-warm lead (0 for the bare baseline).
	LeadMs float64
	// T is the traffic run's summary, pre-warm ledger included.
	T serverless.TrafficSummary
}

// PrewarmResult backs the pre-warm experiment.
type PrewarmResult struct {
	// Functions is the measured suite.
	Functions []string
	// Rows holds the sweep, shape-major in prewarmShapes order: the bare
	// baseline first, then forecasters x leads in sweep order.
	Rows []PrewarmRow
	// WarmCPI is the suite's fully warm reference CPI (back-to-back, no
	// interleaving) — the floor no pre-warm can beat.
	WarmCPI float64
}

// prewarmVariant tags one traffic cell; fc is "bare" for the baseline.
func prewarmVariant(shape sched.ShapeKind, fc string, leadMs float64, invocs int) string {
	return fmt.Sprintf("prewarm/%s/%s/lead=%g/cores=%d/iat=%d/inv=%d/seed=%d/sync",
		shape, fc, leadMs, prewarmCores, prewarmIATms, invocs, prewarmSeed)
}

// prewarmSpec resolves a variant tag back to its sweep point.
type prewarmSpec struct {
	shape  sched.ShapeKind
	fc     string
	leadMs float64
	invocs int
}

// traffic builds the cell's traffic configuration with fresh forecaster
// state.
func (sp prewarmSpec) traffic(names []string) serverless.TrafficConfig {
	cfg := serverless.TrafficConfig{
		MeanIATms:              prewarmIATms,
		InvocationsPerInstance: sp.invocs,
		NoKeepAlive:            true,
		AmbientThrash:          true,
		// Production restore semantics: dispatch-time replay blocks the
		// invocation, so every cell — the bare baseline included — pays its
		// restore on the critical path unless a timely pre-warm already ran
		// it. This is the cost axis the forecaster competes on.
		SyncReplay: true,
		Seed:       prewarmSeed,
	}
	switch sp.shape {
	case sched.Diurnal:
		cfg.Diurnal = true
	case sched.Bursty:
		cfg.Bursty = true
	case sched.HeavyTail:
		cfg.HeavyTail = true
	case sched.Poisson:
		cfg.Poisson = true
	}
	if sp.fc != "bare" {
		cfg.Predict = &predict.Config{
			Forecaster: predict.NewForecaster(sp.fc),
			LeadMs:     sp.leadMs,
			MechFor:    prewarmMechFor(names),
		}
	}
	return cfg
}

// execPrewarm executes one traffic cell of the sweep.
func execPrewarm(c runner.Cell, sp prewarmSpec) (runner.Measurement, error) {
	srv := serverless.New(serverless.Config{
		CPU: c.CPU, Cores: prewarmCores, Jukebox: c.Jukebox, Reap: c.Reap,
	})
	names := strings.Split(c.Workload, "+")
	for _, name := range names {
		w, err := workload.ByName(name)
		if err != nil {
			return runner.Measurement{}, err
		}
		srv.Deploy(w)
	}
	res, err := srv.ServeTraffic(sp.traffic(names))
	if err != nil {
		return runner.Measurement{}, err
	}
	if c.Audit {
		if err := faults.AuditTraffic(res); err != nil {
			return runner.Measurement{}, fmt.Errorf("%s: %w", c.Variant, err)
		}
		fc := sp.fc
		if fc == "bare" {
			fc = ""
		}
		if err := faults.AuditPredict(res.Prewarm, fc); err != nil {
			return runner.Measurement{}, fmt.Errorf("%s: %w", c.Variant, err)
		}
	}
	sum := res.Summary()
	return runner.Measurement{Traffic: &sum}, nil
}

// execPrewarmWarm executes one warm-reference cell: back-to-back
// invocations of a single function with nothing disturbed, no mechanisms —
// the readiness ceiling every pre-warm chases.
func execPrewarmWarm(c runner.Cell) (runner.Measurement, error) {
	w, err := workload.ByName(c.Workload)
	if err != nil {
		return runner.Measurement{}, err
	}
	srv := serverless.New(serverless.Config{CPU: c.CPU, Cores: 1})
	inst := srv.Deploy(w)
	srv.RunLukewarm(inst, c.Warmup)
	var out runner.Measurement
	for i := 0; i < c.Measure; i++ {
		res := srv.Invoke(inst)
		if c.Audit {
			if err := faults.Audit(res); err != nil {
				return out, fmt.Errorf("%s invocation %d: %w", c.Label(), i, err)
			}
		}
		out.Instrs += res.Instrs
		out.Cycles += res.Cycles
	}
	return out, nil
}

// Prewarm runs the predictive pre-warm experiment (see DESIGN.md Sec. 12):
// forecaster x lead x arrival shape over the language representatives, with
// a bare (replay-at-dispatch) baseline per shape and a fully warm reference
// closing the penalty scale.
func Prewarm(opt Options) (PrewarmResult, error) {
	opt = opt.withDefaults()
	fns := opt.Functions
	if len(fns) == 0 {
		fns = workload.Representatives()
	}
	out := PrewarmResult{Functions: fns}
	suiteTag := strings.Join(fns, "+")

	// The histogram forecaster needs DefaultMinSamples observed gaps per
	// function before it predicts at all; give every run enough arrivals to
	// show the learned phase and to fill the misprediction ledger.
	invocs := 2 * (opt.Measure + opt.Warmup)
	if invocs < 16 {
		invocs = 16
	}

	var specs []prewarmSpec
	for _, shape := range prewarmShapes {
		specs = append(specs, prewarmSpec{shape: shape, fc: "bare", invocs: invocs})
		for _, fc := range prewarmForecasters {
			for _, lead := range prewarmLeads {
				specs = append(specs, prewarmSpec{shape: shape, fc: fc, leadMs: lead, invocs: invocs})
			}
		}
	}

	byVariant := make(map[string]prewarmSpec, len(specs))
	var cells []runner.Cell
	for _, sp := range specs {
		jb := core.DefaultConfig()
		rc := reap.DefaultConfig()
		c := opt.variantCell(prewarmVariant(sp.shape, sp.fc, sp.leadMs, sp.invocs),
			suiteTag, cpu.SkylakeConfig(), nil, lukewarm)
		c.Jukebox = &jb
		c.Reap = &rc
		cells = append(cells, c)
		byVariant[c.Variant] = sp
	}
	warmStart := len(cells)
	for _, fn := range fns {
		cells = append(cells, opt.variantCell("prewarm-warm", fn, cpu.SkylakeConfig(), nil, reference))
	}

	ms, err := opt.engine().MeasureFunc(cells, func(c runner.Cell) (runner.Measurement, error) {
		if c.Variant == "prewarm-warm" {
			return execPrewarmWarm(c)
		}
		return execPrewarm(c, byVariant[c.Variant])
	})
	if err != nil {
		return out, err
	}

	for i, sp := range specs {
		if ms[i].Traffic == nil {
			return out, fmt.Errorf("prewarm: cell %s returned no traffic summary", cells[i].Variant)
		}
		out.Rows = append(out.Rows, PrewarmRow{
			Shape: sp.shape.String(), Forecaster: sp.fc, LeadMs: sp.leadMs,
			T: *ms[i].Traffic,
		})
	}
	var warm []float64
	for i := range fns {
		m := ms[warmStart+i]
		if m.Instrs > 0 {
			warm = append(warm, float64(m.Cycles)/float64(m.Instrs))
		}
	}
	// Arithmetic mean matches the traffic engine's equal-weight per-
	// invocation CPI mean across a suite with equal arrival counts.
	out.WarmCPI = stats.Mean(warm)
	return out, nil
}

// row finds one sweep cell.
func (r PrewarmResult) row(shape, fc string, leadMs float64) (PrewarmRow, bool) {
	for _, row := range r.Rows {
		//lukewarm:floateq LeadMs is an exact swept parameter, not arithmetic
		if row.Shape == shape && row.Forecaster == fc && row.LeadMs == leadMs {
			return row, true
		}
	}
	return PrewarmRow{}, false
}

// PenaltyRemovedPct reports how much of the shape's lukewarm CPI penalty
// (bare minus warm reference) the (forecaster, lead) cell removed, in
// percent. 100% would mean pre-warming made traffic CPI fully warm.
func (r PrewarmResult) PenaltyRemovedPct(shape, fc string, leadMs float64) float64 {
	bare, okB := r.row(shape, "bare", 0)
	own, okO := r.row(shape, fc, leadMs)
	if !okB || !okO {
		return 0
	}
	penalty := bare.T.MeanCPI - r.WarmCPI
	if penalty <= 0 {
		return 0
	}
	return (bare.T.MeanCPI - own.T.MeanCPI) / penalty * 100
}

// OracleBestPenaltyRemovedPct reports the oracle's best penalty recovery
// over every (shape, lead) — the experiment's headline upper bound — and
// where it lands.
func (r PrewarmResult) OracleBestPenaltyRemovedPct() (shape string, leadMs, pct float64) {
	for _, sh := range prewarmShapes {
		for _, lead := range prewarmLeads {
			if p := r.PenaltyRemovedPct(sh.String(), "oracle", lead); shape == "" || p > pct {
				shape, leadMs, pct = sh.String(), lead, p
			}
		}
	}
	return shape, leadMs, pct
}

// BurstyHistpeakWastedFraction reports the histogram forecaster's worst
// wasted-pre-warm fraction under the adversarial bursty shape across swept
// leads — the experiment's headline misprediction cost.
func (r PrewarmResult) BurstyHistpeakWastedFraction() float64 {
	worst := 0.0
	for _, lead := range prewarmLeads {
		if row, ok := r.row("bursty", "histpeak", lead); ok {
			if f := row.T.Prewarm.WastedFraction(); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// Table renders the sweep: readiness recovered against speculation spent.
func (r PrewarmResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Predictive pre-warm: forecaster x lead x shape (%s; %d core, IAT %d ms, warm ref CPI %.3f)",
			strings.Join(r.Functions, "+"), prewarmCores, prewarmIATms, r.WarmCPI),
		"Shape", "Forecaster", "Lead [ms]", "Mean CPI", "Penalty removed",
		"Sched", "Used/Part/Waste", "Wasted KiB", "|err| [ms]", "Prewarmed [ms]", "p99 lat [cyc]")
	for _, row := range r.Rows {
		lead, removed := "-", "-"
		if row.Forecaster != "bare" {
			lead = fmt.Sprintf("%g", row.LeadMs)
			removed = fmt.Sprintf("%.0f%%", r.PenaltyRemovedPct(row.Shape, row.Forecaster, row.LeadMs))
		}
		l := row.T.Prewarm
		t.AddRow(row.Shape, row.Forecaster, lead,
			fmt.Sprintf("%.3f", row.T.MeanCPI), removed,
			fmt.Sprint(l.Scheduled),
			fmt.Sprintf("%d/%d/%d", l.Used, l.Partial, l.Wasted),
			fmt.Sprintf("%.1f", float64(l.WastedReplayBytes)/1024),
			fmt.Sprintf("%.1f", l.MeanAbsErrMs()),
			fmt.Sprintf("%.0f", row.T.TierPrewarmedMs),
			fmt.Sprintf("%.0f", row.T.P99LatencyCyc))
	}
	return t
}

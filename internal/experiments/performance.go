package experiments

import (
	"fmt"
	"slices"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/runner"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// PerfRow is one function's Fig. 10-12 measurements on a platform.
type PerfRow struct {
	Name string
	Lang workload.Lang
	// Baseline, Jukebox, Perfect are the three Fig. 10 configurations.
	Baseline measured
	Jukebox  measured
	Perfect  measured
}

// SpeedupJukebox reports Jukebox's % speedup over the baseline.
func (r PerfRow) SpeedupJukebox() float64 {
	return stats.SpeedupPct(normCycles(r.Baseline), normCycles(r.Jukebox))
}

// SpeedupPerfect reports the perfect-I-cache % speedup over the baseline.
func (r PerfRow) SpeedupPerfect() float64 {
	return stats.SpeedupPct(normCycles(r.Baseline), normCycles(r.Perfect))
}

// normCycles compares runs by cycles-per-instruction times a common
// instruction count, so slightly different invocation mixes do not skew
// speedups.
func normCycles(m measured) float64 {
	if m.Instrs == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Instrs) * 1e6
}

// Coverage reports Fig. 11's fractions, normalized to the baseline's L2
// instruction misses: covered (prefetched and used), uncovered (demand L2
// instruction misses remaining with Jukebox), overpredicted (prefetched but
// never referenced).
func (r PerfRow) Coverage() (covered, uncovered, overpredicted float64) {
	misses := r.Baseline.L2.DemandMisses[mem.Instr]
	if misses == 0 {
		return 0, 0, 0
	}
	base := float64(misses)
	// Normalize per instruction first: runs may have different lengths.
	scale := float64(r.Baseline.Instrs) / float64(r.Jukebox.Instrs)
	covered = float64(r.Jukebox.L2.PrefetchUsed[mem.Instr]) * scale / base
	uncovered = float64(r.Jukebox.L2.DemandMisses[mem.Instr]) * scale / base
	overpredicted = float64(r.Jukebox.L2.PrefetchEvictedUnused[mem.Instr]) * scale / base
	return
}

// BandwidthOverhead reports Fig. 12's components as fractions of the
// baseline's total DRAM traffic: overpredicted prefetch bytes, metadata
// record bytes, and metadata replay bytes.
func (r PerfRow) BandwidthOverhead() (overpred, metaRecord, metaReplay float64) {
	// Integer-domain sum: float accumulation over a map rounds differently
	// run to run with iteration order.
	var totalBytes uint64
	for _, b := range r.Baseline.DRAM {
		totalBytes += b
	}
	if totalBytes == 0 {
		return 0, 0, 0
	}
	baseTotal := float64(totalBytes)
	scale := float64(r.Baseline.Instrs) / float64(r.Jukebox.Instrs)
	overpred = float64(r.Jukebox.L2.PrefetchEvictedUnused[mem.Instr]*mem.LineSize) * scale / baseTotal
	metaRecord = float64(r.Jukebox.DRAM[mem.TrafficMetadataRecord]) * scale / baseTotal
	metaReplay = float64(r.Jukebox.DRAM[mem.TrafficMetadataReplay]) * scale / baseTotal
	return
}

// PerfResult backs Figs. 10, 11 and 12.
type PerfResult struct {
	Platform string
	Rows     []PerfRow
}

// Performance runs the headline evaluation (Sec. 5.2-5.4): every function
// in the interleaved (lukewarm) regime under three configurations —
// baseline, Jukebox (16 KB metadata), and perfect I-cache — on the given
// platform configuration.
func Performance(opt Options, platform cpu.Config, jbCfg core.Config) (PerfResult, error) {
	opt = opt.withDefaults()
	out := PerfResult{Platform: platform.Name}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	var cells []runner.Cell
	for _, w := range suite {
		cells = append(cells,
			opt.cell(w.Name, platform, nil, false, lukewarm),
			opt.cell(w.Name, platform, &jbCfg, false, lukewarm),
			opt.cell(w.Name, platform, nil, true, lukewarm))
	}
	ms, err := opt.engine().Measure(cells)
	if err != nil {
		return out, err
	}
	for i, w := range suite {
		out.Rows = append(out.Rows, PerfRow{
			Name: w.Name, Lang: w.Lang,
			Baseline: ms[3*i], Jukebox: ms[3*i+1], Perfect: ms[3*i+2],
		})
	}
	return out, nil
}

// GeomeanSpeedups reports the suite geomean speedups (Jukebox, Perfect).
func (r PerfResult) GeomeanSpeedups() (jb, perfect float64) {
	var js, ps []float64
	for _, row := range r.Rows {
		js = append(js, 1+row.SpeedupJukebox()/100)
		ps = append(ps, 1+row.SpeedupPerfect()/100)
	}
	return (stats.GeoMean(js) - 1) * 100, (stats.GeoMean(ps) - 1) * 100
}

// Fig10Table renders the headline speedups.
func (r PerfResult) Fig10Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 10: speedup over interleaved baseline (%s)", r.Platform),
		"Function", "Jukebox", "Perfect I-cache", "Jukebox bar")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.1f%%", row.SpeedupJukebox()),
			fmt.Sprintf("%.1f%%", row.SpeedupPerfect()),
			stats.Bar(row.SpeedupJukebox(), 60, 30))
	}
	jb, pf := r.GeomeanSpeedups()
	t.AddRow("GEOMEAN", fmt.Sprintf("%.1f%%", jb), fmt.Sprintf("%.1f%%", pf), "")
	return t
}

// Fig11Table renders miss coverage.
func (r PerfResult) Fig11Table() *stats.Table {
	t := stats.NewTable("Figure 11: L2 instruction misses covered/uncovered/overpredicted (% of baseline misses)",
		"Function", "Covered", "Uncovered", "Overpredicted")
	var cs, us, os stats.Summary
	for _, row := range r.Rows {
		c, u, o := row.Coverage()
		cs.Add(c)
		us.Add(u)
		os.Add(o)
		t.AddRow(row.Name,
			fmt.Sprintf("%.0f%%", c*100), fmt.Sprintf("%.0f%%", u*100), fmt.Sprintf("%.0f%%", o*100))
	}
	t.AddRow("MEAN",
		fmt.Sprintf("%.0f%%", cs.Mean()*100), fmt.Sprintf("%.0f%%", us.Mean()*100),
		fmt.Sprintf("%.0f%%", os.Mean()*100))
	return t
}

// MeanCoverageByLang reports mean covered fraction per language (the
// Fig. 11 observation: Go 75-90%, Python/NodeJS 48-74%).
func (r PerfResult) MeanCoverageByLang() map[workload.Lang]float64 {
	sums := map[workload.Lang]*stats.Summary{}
	for _, row := range r.Rows {
		c, _, _ := row.Coverage()
		if sums[row.Lang] == nil {
			sums[row.Lang] = &stats.Summary{}
		}
		sums[row.Lang].Add(c)
	}
	langs := make([]workload.Lang, 0, len(sums))
	for l := range sums {
		langs = append(langs, l)
	}
	slices.Sort(langs)
	out := map[workload.Lang]float64{}
	for _, l := range langs {
		out[l] = sums[l].Mean()
	}
	return out
}

// Fig12Table renders the memory-bandwidth overhead decomposition.
func (r PerfResult) Fig12Table() *stats.Table {
	t := stats.NewTable("Figure 12: memory bandwidth increase over baseline",
		"Function", "Overpredicted", "Metadata record", "Metadata replay", "Total")
	var tot stats.Summary
	for _, row := range r.Rows {
		o, mr, mp := row.BandwidthOverhead()
		total := (o + mr + mp) * 100
		tot.Add(total)
		t.AddRow(row.Name,
			fmt.Sprintf("%.1f%%", o*100), fmt.Sprintf("%.1f%%", mr*100),
			fmt.Sprintf("%.1f%%", mp*100), fmt.Sprintf("%.1f%%", total))
	}
	t.AddRow("MEAN", "", "", "", fmt.Sprintf("%.1f%%", tot.Mean()))
	return t
}

// Fig9Row is one metadata-budget point.
type Fig9Row struct {
	BudgetKB int
	// SpeedupPct maps function name (plus "GEOMEAN") to speedup over the
	// no-Jukebox baseline.
	SpeedupPct map[string]float64
}

// Fig9Result backs Fig. 9. The swept budgets are carried per-row
// (Fig9Row.BudgetKB).
type Fig9Result struct {
	Functions []string
	Rows      []Fig9Row
}

// Fig9 sweeps Jukebox's per-direction metadata budget (the paper plots 8,
// 12, 16 and 32 KB) for the three per-language representatives, with the
// geomean computed over the whole selected suite.
func Fig9(opt Options) (Fig9Result, error) {
	opt = opt.withDefaults()
	budgets := []int{8 << 10, 12 << 10, 16 << 10, 32 << 10}
	reps := workload.Representatives()
	out := Fig9Result{Functions: reps}

	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	// One batch: the no-Jukebox baselines first, then every budget point.
	var cells []runner.Cell
	for _, w := range suite {
		cells = append(cells, opt.cell(w.Name, cpu.SkylakeConfig(), nil, false, lukewarm))
	}
	for _, b := range budgets {
		jb := core.DefaultConfig()
		jb.MetadataBytes = b
		for _, w := range suite {
			cfg := jb
			cells = append(cells, opt.cell(w.Name, cpu.SkylakeConfig(), &cfg, false, lukewarm))
		}
	}
	ms, err := opt.engine().Measure(cells)
	if err != nil {
		return out, err
	}
	baseCycles := map[string]float64{}
	for i, w := range suite {
		baseCycles[w.Name] = normCycles(ms[i])
	}
	for bi, b := range budgets {
		row := Fig9Row{BudgetKB: b / 1024, SpeedupPct: map[string]float64{}}
		var all []float64
		for wi, w := range suite {
			m := ms[len(suite)*(1+bi)+wi]
			sp := stats.SpeedupPct(baseCycles[w.Name], normCycles(m))
			all = append(all, 1+sp/100)
			for _, rep := range reps {
				if rep == w.Name {
					row.SpeedupPct[rep] = sp
				}
			}
		}
		row.SpeedupPct["GEOMEAN"] = (stats.GeoMean(all) - 1) * 100
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the budget sweep.
func (r Fig9Result) Table() *stats.Table {
	hdr := append(append([]string{"Budget"}, r.Functions...), "GEOMEAN")
	t := stats.NewTable("Figure 9: speedup vs Jukebox metadata budget", hdr...)
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%dKB", row.BudgetKB)}
		for _, fn := range r.Functions {
			if v, ok := row.SpeedupPct[fn]; ok {
				cells = append(cells, fmt.Sprintf("%.1f%%", v))
			} else {
				cells = append(cells, "-")
			}
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", row.SpeedupPct["GEOMEAN"]))
		t.AddRow(cells...)
	}
	return t
}

package experiments

import (
	"strings"
	"testing"
)

// schedTestOptions keeps the sweep tractable for CI while preserving the
// properties the experiment exists to show: enough co-resident functions to
// saturate the placement sweep's cores and enough invocations per function
// for the hybrid keep-alive policy to get past its learning phase.
func schedTestOptions() Options {
	return Options{
		Functions: []string{"Auth-G", "Pay-N", "Email-P", "ProdL-G", "Curr-N", "Geo-G"},
		Warmup:    1,
		Measure:   4,
		Audit:     true,
	}
}

func TestSchedPlacementSweep(t *testing.T) {
	r, err := Sched(schedTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(schedShapes) * len(schedPlacers); len(r.Placement) != want {
		t.Fatalf("placement sweep has %d rows, want %d", len(r.Placement), want)
	}
	for _, row := range r.Placement {
		if row.T.Served == 0 {
			t.Errorf("%s/%s served nothing", row.Shape, row.Policy)
		}
		if row.T.MeanCPI <= 0 {
			t.Errorf("%s/%s has non-positive CPI %g", row.Shape, row.Policy, row.T.MeanCPI)
		}
	}
	// The acceptance criterion: sticky placement recovers warmth the
	// earliest-available baseline destroys by scattering a function's
	// invocations across cores.
	if d := r.CPIDeltaPct("StickyAffinity"); d <= 0 {
		t.Errorf("StickyAffinity geomean CPI delta vs EarliestAvailable = %+.2f%%, want a win", d)
	}
	best, delta := r.BestPolicyCPIDeltaPct()
	if best == "" || delta <= 0 {
		t.Errorf("headline best policy %q delta %+.2f%%, want a positive headline", best, delta)
	}
	// JukeboxAware exists to cut Bind churn: its rebind count must not
	// exceed the baseline's on any shape.
	rebinds := func(policy, shape string) int {
		for _, row := range r.Placement {
			if row.Policy == policy && row.Shape == shape {
				return row.T.Rebinds
			}
		}
		t.Fatalf("missing placement row %s/%s", policy, shape)
		return 0
	}
	for _, shape := range schedShapes {
		if jb, ea := rebinds("JukeboxAware", shape.String()), rebinds("EarliestAvailable", shape.String()); jb > ea {
			t.Errorf("%s: JukeboxAware rebinds %d > EarliestAvailable %d", shape, jb, ea)
		}
	}
}

func TestSchedKeepAliveSweep(t *testing.T) {
	r, err := Sched(schedTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(schedShapes) * len(schedKeepAlives); len(r.KeepAlive) != want {
		t.Fatalf("keep-alive sweep has %d rows, want %d", len(r.KeepAlive), want)
	}
	fixed, okF := r.keepAliveRow("diurnal", "FixedTimeout")
	hybrid, okH := r.keepAliveRow("diurnal", "HybridHistogram")
	noEvict, okN := r.keepAliveRow("diurnal", "NoEvict")
	if !okF || !okH || !okN {
		t.Fatal("keep-alive sweep missing diurnal rows")
	}
	// The acceptance criterion: under diurnal traffic the learned pre-warm
	// windows beat the fixed timeout on cold-start rate without spending
	// more instance-memory (resident ms per invocation).
	if hybrid.T.ColdStartRate() >= fixed.T.ColdStartRate() {
		t.Errorf("hybrid cold-start rate %.1f%% not below fixed %.1f%%",
			hybrid.T.ColdStartRate()*100, fixed.T.ColdStartRate()*100)
	}
	if h, f := hybrid.T.ResidentMsPerServed(), fixed.T.ResidentMsPerServed(); h > f {
		t.Errorf("hybrid resident %.0f ms/inv exceeds fixed budget %.0f ms/inv", h, f)
	}
	// NoEvict is the zero-cold-start, unbounded-memory reference point.
	if noEvict.T.ColdStarts != 0 {
		t.Errorf("NoEvict cold-started %d times", noEvict.T.ColdStarts)
	}
	if noEvict.T.ResidentMsPerServed() <= fixed.T.ResidentMsPerServed() {
		t.Errorf("NoEvict resident %.0f ms/inv not above fixed %.0f — sweep is not load-bearing",
			noEvict.T.ResidentMsPerServed(), fixed.T.ResidentMsPerServed())
	}
}

func TestSchedTablesRender(t *testing.T) {
	r, err := Sched(schedTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{
		"placement":    r.Table().String(),
		"keep-alive":   r.KeepAliveTable().String(),
		"per-function": r.PerFuncTable().String(),
	} {
		if len(strings.Split(s, "\n")) < 4 {
			t.Errorf("%s table suspiciously short:\n%s", name, s)
		}
	}
	if !strings.Contains(r.Table().String(), "geomean") {
		t.Error("placement table missing geomean summary rows")
	}
	if !strings.Contains(r.PerFuncTable().String(), "Auth-G") {
		t.Error("per-function table missing suite functions")
	}
}

package experiments

import (
	"fmt"
	"strings"

	"lukewarm/internal/cluster"
	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/program"
	"lukewarm/internal/runner"
	"lukewarm/internal/sched"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// The cluster experiment takes the paper's single-node story to fleet
// reality: it sweeps node count × failure rate × fleet placement policy and
// reports what failures cost — availability after retries and hedging, the
// cold/lukewarm/warm split of what was actually served (node crashes
// destroy the warm state and Jukebox metadata the single-node results bank
// on), retry-inflated tail latency, wasted hedge work, and time spent in
// brownout tiers. Each sweep point is one runner.Cell with a Variant tag,
// cached and fanned out like every other experiment.

// Cluster-sweep parameters: a few cores per node under brisk traffic so the
// fleet has queueing to balance, a compressed cold-start charge (as in the
// keep-alive sweep), and a front end with the full resilience stack armed.
const (
	clusterCores     = 4
	clusterIATms     = 30
	clusterColdMs    = 25
	clusterKeepMs    = 200
	clusterSeed      = 31
	clusterFaultSeed = 1009

	clusterDeadlineMs  = 150
	clusterRetryMax    = 2
	clusterBackoffMs   = 2
	clusterHedgeMinMs  = 1
	clusterEjectAfter  = 4
	clusterEjectMs     = 50
	clusterShedLowMs   = 20
	clusterRecOnlyMs   = 40
	clusterRejectMs    = 80
)

// clusterNodeCounts is the fleet-size axis.
var clusterNodeCounts = []int{1, 2, 4}

// clusterFleetPlacers enumerates the fleet placement policies, baseline
// first. Placement runs at node scope here: Last/ForeignSince describe the
// node where a function last completed and how much foreign work it has
// absorbed since — the same warmth signal the per-core policies read.
var clusterFleetPlacers = []string{"EarliestAvailable", "StickyAffinity"}

// clusterFaultLevel is one failure-rate point of the sweep.
type clusterFaultLevel struct {
	name      string
	flakeProb float64
	crashProb float64
	mtbfMs    float64
	downMs    float64
}

// clusterFaultLevels is the failure-rate axis: clean, a production-shaped
// moderate level, and a heavy level where whole-node crashes dominate.
var clusterFaultLevels = []clusterFaultLevel{
	{name: "none"},
	{name: "moderate", flakeProb: 0.04, crashProb: 0.02, mtbfMs: 2000, downMs: 100},
	{name: "heavy", flakeProb: 0.25, crashProb: 0.12, mtbfMs: 500, downMs: 250},
}

// ClusterRow is one (nodes, fault level, fleet policy) cell of the sweep.
type ClusterRow struct {
	// Nodes is the fleet size.
	Nodes int
	// Policy names the fleet placement policy.
	Policy string
	// FaultLevel names the failure-rate point.
	FaultLevel string
	// C is the fleet run's summary.
	C cluster.Summary
}

// ClusterResult backs the `lukewarm cluster` experiment.
type ClusterResult struct {
	// Rows holds the sweep in (policy, fault level, nodes) order.
	Rows []ClusterRow
}

// clusterSpec describes one cell; the Variant tag is derived from it.
type clusterSpec struct {
	nodes  int
	policy string
	level  clusterFaultLevel
	invocs int
}

func (sp clusterSpec) variant() string {
	return fmt.Sprintf("cluster/%s/%s/nodes=%d/cores=%d/iat=%g/inv=%d/seed=%d/fseed=%d/flake=%g/crash=%g/mtbf=%g",
		sp.policy, sp.level.name, sp.nodes, clusterCores, float64(clusterIATms),
		sp.invocs, clusterSeed, clusterFaultSeed, sp.level.flakeProb, sp.level.crashProb, sp.level.mtbfMs)
}

// newFleetPlacer builds a fresh fleet placement policy by name.
func newFleetPlacer(name string) sched.Placer {
	if name == "StickyAffinity" {
		return sched.StickyAffinity(0)
	}
	return sched.EarliestAvailable()
}

// config builds the cell's fleet configuration with fresh policy and fault
// state.
func (sp clusterSpec) config(ws []workload.Workload) cluster.Config {
	cfg := cluster.Config{
		Nodes:     sp.nodes,
		Workloads: ws,
		Traffic: serverless.TrafficConfig{
			MeanIATms:              clusterIATms,
			Poisson:                true,
			InvocationsPerInstance: sp.invocs,
			KeepAliveMs:            clusterKeepMs,
			ColdStartMs:            clusterColdMs,
			Seed:                   clusterSeed,
		},
		FleetPlacer: newFleetPlacer(sp.policy),

		DeadlineMs:      clusterDeadlineMs,
		RetryMax:        clusterRetryMax,
		RetryBackoffMs:  clusterBackoffMs,
		HedgeDelayMinMs: clusterHedgeMinMs,
		EjectAfter:      clusterEjectAfter,
		EjectMs:         clusterEjectMs,
		ShedLowAtMs:     clusterShedLowMs,
		RecordOnlyAtMs:  clusterRecOnlyMs,
		RejectAtMs:      clusterRejectMs,
	}
	jb := core.DefaultConfig()
	cfg.Node = serverless.Config{Cores: clusterCores, Jukebox: &jb}
	// Every second function is low-priority, so the tier-1 shed rung has
	// something to drop under brownout.
	for i, w := range ws {
		if i%2 == 1 {
			cfg.LowPriority = append(cfg.LowPriority, w.Name)
		}
	}
	if sp.level.flakeProb > 0 || sp.level.crashProb > 0 || sp.level.mtbfMs > 0 {
		cfg.Faults = faults.NewPlan(program.Mix(clusterFaultSeed, uint64(sp.nodes)),
			faults.NodeCrash, faults.InstanceCrash, faults.DispatchFlake)
		cfg.DispatchFlakeProb = sp.level.flakeProb
		cfg.InstanceCrashProb = sp.level.crashProb
		cfg.NodeCrashMTBFms = sp.level.mtbfMs
		cfg.NodeDownMs = sp.level.downMs
	}
	return cfg
}

// Cluster runs the fleet experiment over the selected suite.
func Cluster(opt Options) (ClusterResult, error) {
	opt = opt.withDefaults()
	var out ClusterResult
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	names := make([]string, len(suite))
	for i, w := range suite {
		names[i] = w.Name
	}
	suiteTag := strings.Join(names, "+")
	invocs := opt.Measure + opt.Warmup

	var specs []clusterSpec
	for _, p := range clusterFleetPlacers {
		for _, lvl := range clusterFaultLevels {
			for _, n := range clusterNodeCounts {
				specs = append(specs, clusterSpec{nodes: n, policy: p, level: lvl, invocs: invocs})
			}
		}
	}

	byVariant := make(map[string]clusterSpec, len(specs))
	cells := make([]runner.Cell, len(specs))
	for i, sp := range specs {
		cells[i] = runner.Cell{
			Workload: suiteTag,
			CPU:      cpu.SkylakeConfig(),
			Mode:     runner.Reference,
			Warmup:   opt.Warmup,
			Measure:  opt.Measure,
			Audit:    opt.Audit,
			Variant:  sp.variant(),
		}
		byVariant[sp.variant()] = sp
	}

	ms, err := opt.engine().MeasureFunc(cells, func(c runner.Cell) (runner.Measurement, error) {
		sp := byVariant[c.Variant]
		var ws []workload.Workload
		for _, name := range strings.Split(c.Workload, "+") {
			w, err := workload.ByName(name)
			if err != nil {
				return runner.Measurement{}, err
			}
			ws = append(ws, w)
		}
		res, err := cluster.Run(sp.config(ws))
		if err != nil {
			return runner.Measurement{}, err
		}
		if c.Audit {
			if err := cluster.Audit(&res); err != nil {
				return runner.Measurement{}, fmt.Errorf("%s: %w", c.Variant, err)
			}
		}
		sum := res.Summary()
		return runner.Measurement{Cluster: &sum}, nil
	})
	if err != nil {
		return out, err
	}

	for i, sp := range specs {
		if ms[i].Cluster == nil {
			return out, fmt.Errorf("cluster: cell %s returned no fleet summary", sp.variant())
		}
		out.Rows = append(out.Rows, ClusterRow{
			Nodes: sp.nodes, Policy: sp.policy, FaultLevel: sp.level.name, C: *ms[i].Cluster,
		})
	}
	return out, nil
}

// Row finds one sweep cell.
func (r ClusterResult) Row(nodes int, policy, level string) (ClusterRow, bool) {
	for _, row := range r.Rows {
		if row.Nodes == nodes && row.Policy == policy && row.FaultLevel == level {
			return row, true
		}
	}
	return ClusterRow{}, false
}

// HeavyAvailabilityPct reports the headline metric: availability of the
// largest swept fleet under the heavy fault level with the baseline fleet
// placer — what the resilience front end salvages when everything is
// failing at once.
func (r ClusterResult) HeavyAvailabilityPct() float64 {
	row, ok := r.Row(clusterNodeCounts[len(clusterNodeCounts)-1], clusterFleetPlacers[0], "heavy")
	if !ok {
		return 0
	}
	return row.C.AvailabilityPct
}

// WastedHedgePct reports hedge overhead at the same sweep point: losing
// hedge copies' cycles as a share of all served work, the compute bill of
// the tail-latency insurance.
func (r ClusterResult) WastedHedgePct() float64 {
	row, ok := r.Row(clusterNodeCounts[len(clusterNodeCounts)-1], clusterFleetPlacers[0], "heavy")
	if !ok {
		return 0
	}
	served := 0.0
	for _, n := range row.C.PerNode {
		served += n.MeanServiceCycles * float64(n.Served)
	}
	return stats.Pct(row.C.WastedHedgeCycles, served)
}

// Table renders the sweep: availability, warmth split and fault toll per
// (policy, fault level, nodes) cell.
func (r ClusterResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Cluster: node count x failure rate x fleet placement (%d cores/node, retry<=%d, hedged)",
			clusterCores, clusterRetryMax),
		"Placer", "Faults", "Nodes", "Avail", "Cold/Luke/Warm", "Lukewarm CPI",
		"p99 latency [cyc]", "Crashes n/i", "Flakes", "Retries", "Hedge waste [cyc]", "Degraded [ms]")
	for _, row := range r.Rows {
		degraded := row.C.TimeInTierMs[1] + row.C.TimeInTierMs[2] + row.C.TimeInTierMs[3]
		t.AddRow(row.Policy, row.FaultLevel, fmt.Sprint(row.Nodes),
			fmt.Sprintf("%.1f%%", row.C.AvailabilityPct),
			fmt.Sprintf("%d/%d/%d", row.C.ColdServed, row.C.LukewarmServed, row.C.WarmServed),
			fmt.Sprintf("%.3f", row.C.LukewarmCPI),
			fmt.Sprintf("%.0f", row.C.P99LatencyCyc),
			fmt.Sprintf("%d/%d", row.C.NodeCrashes, row.C.InstanceCrashes),
			fmt.Sprint(row.C.DispatchFlakes),
			fmt.Sprint(row.C.Retries),
			fmt.Sprintf("%.0f", row.C.WastedHedgeCycles),
			fmt.Sprintf("%.0f", degraded))
	}
	return t
}

// LatencyTable renders the latency ladder per cell — mean through P99,
// retry- and backoff-inflation included — plus the resilience actions that
// produced it.
func (r ClusterResult) LatencyTable() *stats.Table {
	t := stats.NewTable(
		"Cluster: end-to-end latency ladder (retry- and backoff-inflated)",
		"Placer", "Faults", "Nodes", "Mean [cyc]", "p50", "p95", "p99",
		"Exhausted", "Deadline", "Hedges w/r", "Eject/readmit")
	for _, row := range r.Rows {
		t.AddRow(row.Policy, row.FaultLevel, fmt.Sprint(row.Nodes),
			fmt.Sprintf("%.0f", row.C.MeanLatencyCycles),
			fmt.Sprintf("%.0f", row.C.P50LatencyCyc),
			fmt.Sprintf("%.0f", row.C.P95LatencyCyc),
			fmt.Sprintf("%.0f", row.C.P99LatencyCyc),
			fmt.Sprint(row.C.RetriesExhausted),
			fmt.Sprint(row.C.DeadlineFailed),
			fmt.Sprintf("%d/%d", row.C.WastedHedges, row.C.HedgeRescues),
			fmt.Sprintf("%d/%d", row.C.Ejections, row.C.Readmissions))
	}
	return t
}

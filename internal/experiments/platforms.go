package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/runner"
	"lukewarm/internal/stats"
)

// Table3Result backs Table 3 and the Sec. 5.6 Broadwell study: the
// reduction in L2 and LLC instruction MPKI with Jukebox on both simulated
// platforms, plus the Broadwell geomean speedup.
type Table3Result struct {
	// ReductionPct[platform][level] is the % reduction in instruction MPKI.
	ReductionPct map[string]map[string]float64
	// GeomeanSpeedupPct[platform] is Jukebox's suite geomean speedup.
	GeomeanSpeedupPct map[string]float64
}

// Table3 measures Jukebox's instruction-MPKI reductions on the Skylake-like
// (16 KB metadata, per Sec. 5.1) and Broadwell-like (32 KB metadata, per
// Sec. 5.6's re-assessment for the smaller L2) platforms.
func Table3(opt Options) (Table3Result, error) {
	opt = opt.withDefaults()
	out := Table3Result{
		ReductionPct:      map[string]map[string]float64{},
		GeomeanSpeedupPct: map[string]float64{},
	}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	platforms := []struct {
		cfg   cpu.Config
		jbKB  int
		label string
	}{
		{cpu.SkylakeConfig(), 16, "Skylake"},
		{cpu.BroadwellConfig(), 32, "Broadwell"},
	}
	var cells []runner.Cell
	for _, p := range platforms {
		jb := core.DefaultConfig()
		jb.MetadataBytes = p.jbKB << 10
		for _, w := range suite {
			cfg := jb
			cells = append(cells,
				opt.cell(w.Name, p.cfg, nil, false, lukewarm),
				opt.cell(w.Name, p.cfg, &cfg, false, lukewarm))
		}
	}
	ms, err := opt.engine().Measure(cells)
	if err != nil {
		return out, err
	}
	for pi, p := range platforms {
		var l2Base, l2JB, llcBase, llcJB stats.Summary
		var speedups []float64
		for wi := range suite {
			base := ms[2*(pi*len(suite)+wi)]
			withJB := ms[2*(pi*len(suite)+wi)+1]
			l2Base.Add(base.MPKI(base.L2, mem.Instr))
			l2JB.Add(withJB.MPKI(withJB.L2, mem.Instr))
			llcBase.Add(base.MPKI(base.LLC, mem.Instr))
			llcJB.Add(withJB.MPKI(withJB.LLC, mem.Instr))
			speedups = append(speedups, 1+stats.SpeedupPct(normCycles(base), normCycles(withJB))/100)
		}
		out.ReductionPct[p.label] = map[string]float64{
			"L2":  -stats.Pct(l2JB.Mean()-l2Base.Mean(), l2Base.Mean()),
			"LLC": -stats.Pct(llcJB.Mean()-llcBase.Mean(), llcBase.Mean()),
		}
		out.GeomeanSpeedupPct[p.label] = (stats.GeoMean(speedups) - 1) * 100
	}
	return out, nil
}

// Table renders Table 3 plus the Sec. 5.6 speedups.
func (r Table3Result) Table() *stats.Table {
	t := stats.NewTable("Table 3: reduction in instruction MPKI with Jukebox (plus geomean speedup)",
		"Platform", "L2 instr misses", "LLC instr misses", "Geomean speedup")
	for _, p := range []string{"Skylake", "Broadwell"} {
		t.AddRow(p,
			fmt.Sprintf("-%.0f%%", r.ReductionPct[p]["L2"]),
			fmt.Sprintf("-%.0f%%", r.ReductionPct[p]["LLC"]),
			fmt.Sprintf("%.1f%%", r.GeomeanSpeedupPct[p]))
	}
	return t
}

// Table1 renders the simulated processor parameters (Table 1).
func Table1() *stats.Table {
	cfg := cpu.SkylakeConfig()
	t := stats.NewTable("Table 1: simulated processor parameters (Skylake-like)", "Component", "Value")
	t.AddRow("Architecture", fmt.Sprintf("%s, %0.1f GHz, %d-wide, ROB %d",
		cfg.Name, cfg.FreqGHz, cfg.DispatchWidth, cfg.ROBSize))
	t.AddRow("Branch predictor", fmt.Sprintf("gshare %dK + bimodal %dK + chooser, BTB %dK",
		cfg.BP.GshareEntries>>10, cfg.BP.BimodalEntries>>10, cfg.BP.BTBEntries>>10))
	c := cfg.Hier
	cache := func(cc mem.Config) string {
		return fmt.Sprintf("%dKB, %d-way, %d-cycle", cc.SizeBytes>>10, cc.Ways, cc.HitLatency)
	}
	t.AddRow("L1-I", cache(c.L1I))
	t.AddRow("L1-D", cache(c.L1D)+", next-line prefetcher")
	t.AddRow("L2", cache(c.L2))
	t.AddRow("LLC", cache(c.LLC))
	t.AddRow("DRAM", fmt.Sprintf("%d-cycle access, %d-cycle line period",
		c.DRAM.AccessLatency, c.DRAM.LinePeriod))
	jb := core.DefaultConfig()
	t.AddRow("Jukebox", fmt.Sprintf("CRRB %d entries, %dB regions, %dKB metadata (x2)",
		jb.CRRBEntries, jb.RegionSizeBytes, jb.MetadataBytes>>10))
	return t
}

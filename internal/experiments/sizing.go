package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// Fig8Row is one function's metadata-size curve across region sizes.
type Fig8Row struct {
	Name string
	// BytesByRegion maps region size (bytes) to recorded metadata size
	// (bytes) with an unlimited buffer.
	BytesByRegion map[int]int
}

// Fig8Result backs Fig. 8 (and the CRRB-size ablation when run with
// different CRRB sizes).
type Fig8Result struct {
	RegionSizes []int
	CRRBEntries int
	Rows        []Fig8Row
}

// Fig8 measures the metadata required to record one full lukewarm
// invocation of each function, across code-region sizes, with the given
// CRRB size (16 in the paper's plot).
func Fig8(opt Options, crrbEntries int) (Fig8Result, error) {
	opt = opt.withDefaults()
	if crrbEntries <= 0 {
		crrbEntries = 16
	}
	regions := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	out := Fig8Result{RegionSizes: regions, CRRBEntries: crrbEntries}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	for _, w := range suite {
		row := Fig8Row{Name: w.Name, BytesByRegion: map[int]int{}}
		for _, rs := range regions {
			jb := core.Config{
				RegionSizeBytes: rs,
				CRRBEntries:     crrbEntries,
				MetadataBytes:   0, // unlimited: measure required size
				VABits:          48,
				RecordEnabled:   true,
				ReplayEnabled:   false,
			}
			srv := newServer(cpu.SkylakeConfig(), &jb, false)
			inst := srv.Deploy(w)
			// One lukewarm invocation records the full working set.
			srv.RunLukewarm(inst, 1)
			row.BytesByRegion[rs] = inst.Jukebox.Stats.LastRecordBytes
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// BestRegionSize reports the region size minimizing the suite-mean metadata
// size (the paper finds 1 KB).
func (r Fig8Result) BestRegionSize() int {
	best, bestMean := 0, 0.0
	for _, rs := range r.RegionSizes {
		var s stats.Summary
		for _, row := range r.Rows {
			s.Add(float64(row.BytesByRegion[rs]))
		}
		if best == 0 || s.Mean() < bestMean {
			best, bestMean = rs, s.Mean()
		}
	}
	return best
}

// Table renders the sweep.
func (r Fig8Result) Table() *stats.Table {
	hdr := []string{"Function"}
	for _, rs := range r.RegionSizes {
		hdr = append(hdr, fmt.Sprintf("%dB", rs))
	}
	t := stats.NewTable(
		fmt.Sprintf("Figure 8: metadata size (KB) vs region size, CRRB=%d", r.CRRBEntries), hdr...)
	sums := make([]stats.Summary, len(r.RegionSizes))
	for _, row := range r.Rows {
		cells := []string{row.Name}
		for i, rs := range r.RegionSizes {
			kb := float64(row.BytesByRegion[rs]) / 1024
			sums[i].Add(kb)
			cells = append(cells, fmt.Sprintf("%.1f", kb))
		}
		t.AddRow(cells...)
	}
	cells := []string{"Mean"}
	for i := range r.RegionSizes {
		cells = append(cells, fmt.Sprintf("%.1f", sums[i].Mean()))
	}
	t.AddRow(cells...)
	return t
}

// CRRBAblationResult reports the paper's "modest sensitivity to the size of
// the CRRB" claim (Sec. 5.1): mean metadata size at the preferred 1 KB
// region for CRRB sizes 8, 16 and 32.
type CRRBAblationResult struct {
	Sizes  []int
	MeanKB []float64
}

// CRRBAblation runs the CRRB-size sensitivity study.
func CRRBAblation(opt Options) (CRRBAblationResult, error) {
	opt = opt.withDefaults()
	out := CRRBAblationResult{Sizes: []int{8, 16, 32}}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	for _, n := range out.Sizes {
		var s stats.Summary
		for _, w := range suite {
			jb := core.Config{
				RegionSizeBytes: 1024, CRRBEntries: n, MetadataBytes: 0,
				VABits: 48, RecordEnabled: true, ReplayEnabled: false,
			}
			srv := newServer(cpu.SkylakeConfig(), &jb, false)
			inst := srv.Deploy(w)
			srv.RunLukewarm(inst, 1)
			s.Add(float64(inst.Jukebox.Stats.LastRecordBytes) / 1024)
		}
		out.MeanKB = append(out.MeanKB, s.Mean())
	}
	return out, nil
}

// Table renders the ablation.
func (r CRRBAblationResult) Table() *stats.Table {
	t := stats.NewTable("CRRB-size sensitivity (mean metadata KB at 1KB regions)", "CRRB entries", "Mean KB")
	for i, n := range r.Sizes {
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.1f", r.MeanKB[i]))
	}
	return t
}

// suiteByName is a convenience for single-function lookups in experiments.
func suiteByName(name string) (workload.Workload, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return workload.Workload{}, fmt.Errorf("experiments: %w", err)
	}
	return w, nil
}

package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/runner"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// recordJB is the record-only Jukebox configuration Fig. 8 sweeps: an
// unlimited metadata budget so the recorded size itself is the measurement.
func recordJB(regionBytes, crrbEntries int) core.Config {
	return core.Config{
		RegionSizeBytes: regionBytes,
		CRRBEntries:     crrbEntries,
		MetadataBytes:   0, // unlimited: measure required size
		VABits:          48,
		RecordEnabled:   true,
		ReplayEnabled:   false,
	}
}

// execRecordOnly executes a "fig8-record" cell: one lukewarm invocation with
// a record-only Jukebox, reporting the recorded metadata size in MetaBytes.
// Fig8 and CRRBAblation share this executor, so overlapping sweep points
// (e.g. CRRB=16 at 1 KB regions) are simulated once.
func execRecordOnly(c runner.Cell) (runner.Measurement, error) {
	if c.Variant == "" {
		return runner.Execute(c)
	}
	w, err := suiteByName(c.Workload)
	if err != nil {
		return runner.Measurement{}, err
	}
	srv := newServer(c.CPU, c.Jukebox, false)
	inst := srv.Deploy(w)
	srv.RunLukewarm(inst, 1)
	return runner.Measurement{
		JB:        inst.Jukebox.Stats,
		MetaBytes: inst.Jukebox.Stats.LastRecordBytes,
	}, nil
}

// Fig8Row is one function's metadata-size curve across region sizes.
type Fig8Row struct {
	Name string
	// BytesByRegion maps region size (bytes) to recorded metadata size
	// (bytes) with an unlimited buffer.
	BytesByRegion map[int]int
}

// Fig8Result backs Fig. 8 (and the CRRB-size ablation when run with
// different CRRB sizes).
type Fig8Result struct {
	RegionSizes []int
	CRRBEntries int
	Rows        []Fig8Row
}

// Fig8 measures the metadata required to record one full lukewarm
// invocation of each function, across code-region sizes, with the given
// CRRB size (16 in the paper's plot).
func Fig8(opt Options, crrbEntries int) (Fig8Result, error) {
	opt = opt.withDefaults()
	if crrbEntries <= 0 {
		crrbEntries = 16
	}
	regions := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	out := Fig8Result{RegionSizes: regions, CRRBEntries: crrbEntries}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	var cells []runner.Cell
	for _, w := range suite {
		for _, rs := range regions {
			jb := recordJB(rs, crrbEntries)
			cells = append(cells, opt.variantCell("fig8-record", w.Name, cpu.SkylakeConfig(), &jb, lukewarm))
		}
	}
	ms, err := opt.engine().MeasureFunc(cells, execRecordOnly)
	if err != nil {
		return out, err
	}
	for wi, w := range suite {
		row := Fig8Row{Name: w.Name, BytesByRegion: map[int]int{}}
		for ri, rs := range regions {
			row.BytesByRegion[rs] = ms[wi*len(regions)+ri].MetaBytes
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// BestRegionSize reports the region size minimizing the suite-mean metadata
// size (the paper finds 1 KB).
func (r Fig8Result) BestRegionSize() int {
	best, bestMean := 0, 0.0
	for _, rs := range r.RegionSizes {
		var s stats.Summary
		for _, row := range r.Rows {
			s.Add(float64(row.BytesByRegion[rs]))
		}
		if best == 0 || s.Mean() < bestMean {
			best, bestMean = rs, s.Mean()
		}
	}
	return best
}

// Table renders the sweep.
func (r Fig8Result) Table() *stats.Table {
	hdr := []string{"Function"}
	for _, rs := range r.RegionSizes {
		hdr = append(hdr, fmt.Sprintf("%dB", rs))
	}
	t := stats.NewTable(
		fmt.Sprintf("Figure 8: metadata size (KB) vs region size, CRRB=%d", r.CRRBEntries), hdr...)
	sums := make([]stats.Summary, len(r.RegionSizes))
	for _, row := range r.Rows {
		cells := []string{row.Name}
		for i, rs := range r.RegionSizes {
			kb := float64(row.BytesByRegion[rs]) / 1024
			sums[i].Add(kb)
			cells = append(cells, fmt.Sprintf("%.1f", kb))
		}
		t.AddRow(cells...)
	}
	cells := []string{"Mean"}
	for i := range r.RegionSizes {
		cells = append(cells, fmt.Sprintf("%.1f", sums[i].Mean()))
	}
	t.AddRow(cells...)
	return t
}

// CRRBAblationResult reports the paper's "modest sensitivity to the size of
// the CRRB" claim (Sec. 5.1): mean metadata size at the preferred 1 KB
// region for CRRB sizes 8, 16 and 32.
type CRRBAblationResult struct {
	Sizes  []int
	MeanKB []float64
}

// CRRBAblation runs the CRRB-size sensitivity study.
func CRRBAblation(opt Options) (CRRBAblationResult, error) {
	opt = opt.withDefaults()
	out := CRRBAblationResult{Sizes: []int{8, 16, 32}}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	var cells []runner.Cell
	for _, n := range out.Sizes {
		for _, w := range suite {
			jb := recordJB(1024, n)
			cells = append(cells, opt.variantCell("fig8-record", w.Name, cpu.SkylakeConfig(), &jb, lukewarm))
		}
	}
	ms, err := opt.engine().MeasureFunc(cells, execRecordOnly)
	if err != nil {
		return out, err
	}
	for ni := range out.Sizes {
		var s stats.Summary
		for wi := range suite {
			s.Add(float64(ms[ni*len(suite)+wi].MetaBytes) / 1024)
		}
		out.MeanKB = append(out.MeanKB, s.Mean())
	}
	return out, nil
}

// Table renders the ablation.
func (r CRRBAblationResult) Table() *stats.Table {
	t := stats.NewTable("CRRB-size sensitivity (mean metadata KB at 1KB regions)", "CRRB entries", "Mean KB")
	for i, n := range r.Sizes {
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.1f", r.MeanKB[i]))
	}
	return t
}

// suiteByName is a convenience for single-function lookups in experiments.
func suiteByName(name string) (workload.Workload, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return workload.Workload{}, fmt.Errorf("experiments: %w", err)
	}
	return w, nil
}

package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
)

// ScalingRow is one core-count point of the multi-core study.
type ScalingRow struct {
	Cores int
	// Baseline and Jukebox are the two configurations' traffic results.
	Baseline, Jukebox serverless.TrafficResult
	// JukeboxGainPct is the mean-service-time reduction with Jukebox.
	JukeboxGainPct float64
}

// ScalingResult backs the multi-core extension: the suite under saturating
// Poisson traffic on 1, 2 and 4 cores (private L1/L2, shared LLC and memory
// controller), baseline vs Jukebox. It validates the Sec. 3.4.1 property
// that Jukebox's in-memory metadata follows an instance to whichever core
// the scheduler picks.
type ScalingResult struct {
	Rows []ScalingRow
}

// Scaling runs the study.
func Scaling(opt Options) (ScalingResult, error) {
	opt = opt.withDefaults()
	traffic := serverless.TrafficConfig{
		MeanIATms:              4, // saturating for one core, comfortable for four
		Poisson:                true,
		InvocationsPerInstance: opt.Measure + opt.Warmup,
		AmbientThrash:          true, // the deployed suite samples a larger fleet
		Seed:                   11,
	}
	var out ScalingResult
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	coreCounts := []int{1, 2, 4}
	// Each (cores, config) traffic simulation is independent; fan all six out.
	// Traffic results are distributions, not Measurements, so they bypass the
	// result cache.
	trs, err := runner.MapOn(opt.engine(), 2*len(coreCounts),
		func(i int) string {
			label := "base"
			if i%2 == 1 {
				label = "jukebox"
			}
			return fmt.Sprintf("scaling/%dcores/%s", coreCounts[i/2], label)
		},
		func(i int) (serverless.TrafficResult, error) {
			var jb *core.Config
			if i%2 == 1 {
				cfg := core.DefaultConfig()
				jb = &cfg
			}
			srv := serverless.New(serverless.Config{CPU: cpu.SkylakeConfig(), Cores: coreCounts[i/2], Jukebox: jb})
			for _, w := range suite {
				srv.Deploy(w)
			}
			return srv.ServeTraffic(traffic)
		})
	if err != nil {
		return out, err
	}
	for ci, cores := range coreCounts {
		row := ScalingRow{Cores: cores, Baseline: trs[2*ci], Jukebox: trs[2*ci+1]}
		row.JukeboxGainPct = stats.SpeedupPct(
			row.Baseline.ServiceCycles.Mean(), row.Jukebox.ServiceCycles.Mean())
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the study.
func (r ScalingResult) Table() *stats.Table {
	t := stats.NewTable("Multi-core scaling (shared LLC, saturating Poisson traffic)",
		"Cores", "Base p99 lat [cyc]", "JB p99 lat [cyc]", "Base busy", "JB busy", "JB service gain")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Cores),
			fmt.Sprintf("%.0f", row.Baseline.P99LatencyCycles()),
			fmt.Sprintf("%.0f", row.Jukebox.P99LatencyCycles()),
			fmt.Sprintf("%.0f%%", row.Baseline.BusyFraction*100),
			fmt.Sprintf("%.0f%%", row.Jukebox.BusyFraction*100),
			fmt.Sprintf("%.1f%%", row.JukeboxGainPct))
	}
	return t
}

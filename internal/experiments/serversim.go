package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
)

// ServerSimResult backs the system-level validation: the whole suite
// co-resident on one host under Poisson invocation traffic, with and
// without Jukebox. Unlike the per-figure experiments, interleaving here is
// *natural* — one instance's execution thrashes the others — so the
// end-to-end benefit emerges without any explicit flushing.
type ServerSimResult struct {
	// Baseline and Jukebox are the two configurations' traffic results.
	Baseline, Jukebox serverless.TrafficResult
	// ThroughputGainPct is the service-time reduction expressed as a
	// throughput gain at fixed load.
	ThroughputGainPct float64
}

// ServerSim deploys the selected suite as co-resident warm instances and
// serves Poisson traffic (mean IAT scaled so the run stays tractable; the
// ambient-thrash model stands in for the thousands of additional instances
// a production host would hold).
func ServerSim(opt Options) (ServerSimResult, error) {
	opt = opt.withDefaults()
	traffic := serverless.TrafficConfig{
		MeanIATms:              30,
		Poisson:                true,
		InvocationsPerInstance: opt.Measure + opt.Warmup,
		AmbientThrash:          true,
		Seed:                   7,
	}
	var out ServerSimResult
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	// The two configurations are independent full-server simulations; run
	// them as two engine jobs (distributions bypass the result cache).
	trs, err := runner.MapOn(opt.engine(), 2,
		func(i int) string {
			if i == 0 {
				return "serversim/base"
			}
			return "serversim/jukebox"
		},
		func(i int) (serverless.TrafficResult, error) {
			var jb *core.Config
			if i == 1 {
				cfg := core.DefaultConfig()
				jb = &cfg
			}
			srv := serverless.New(serverless.Config{CPU: cpu.SkylakeConfig(), Jukebox: jb})
			for _, w := range suite {
				srv.Deploy(w)
			}
			return srv.ServeTraffic(traffic)
		})
	if err != nil {
		return out, err
	}
	out.Baseline, out.Jukebox = trs[0], trs[1]
	out.ThroughputGainPct = stats.SpeedupPct(
		out.Baseline.ServiceCycles.Mean(), out.Jukebox.ServiceCycles.Mean())
	return out, nil
}

// Table renders the comparison.
func (r ServerSimResult) Table() *stats.Table {
	t := stats.NewTable("System-level traffic simulation (co-resident suite, Poisson arrivals)",
		"Config", "Mean CPI", "Mean service [cyc]", "Mean latency [cyc]", "p99 latency [cyc]", "Busy")
	add := func(label string, tr serverless.TrafficResult) {
		t.AddRow(label,
			fmt.Sprintf("%.3f", tr.CPI.Mean()),
			fmt.Sprintf("%.0f", tr.ServiceCycles.Mean()),
			fmt.Sprintf("%.0f", tr.LatencyCycles.Mean()),
			fmt.Sprintf("%.0f", tr.P99LatencyCycles()),
			fmt.Sprintf("%.0f%%", tr.BusyFraction*100))
	}
	add("Baseline", r.Baseline)
	add("Jukebox", r.Jukebox)
	t.AddRow("Throughput gain", fmt.Sprintf("%.1f%%", r.ThroughputGainPct))
	return t
}

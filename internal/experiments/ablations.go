package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/reap"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// CompactionResult backs the virtual-vs-physical metadata ablation
// (Sec. 3.3 argues Jukebox must record virtual addresses to survive OS page
// migration; this experiment demonstrates why).
type CompactionResult struct {
	// Coverage maps addressing mode -> mean covered fraction of baseline L2
	// instruction misses after a page-compaction event.
	Coverage map[string]float64
	// Speedup maps addressing mode -> mean speedup over baseline after
	// compaction.
	Speedup map[string]float64
}

// Compaction records metadata, migrates every page of the instance
// (vm.AddressSpace.Compact), and measures the next lukewarm invocation,
// for both addressing modes.
func Compaction(opt Options) (CompactionResult, error) {
	opt = opt.withDefaults()
	out := CompactionResult{Coverage: map[string]float64{}, Speedup: map[string]float64{}}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	modes := []string{"virtual", "physical"}
	// One batch: each workload's baseline once (the two addressing modes
	// share it), then the post-compaction cells for both modes.
	var cells []runner.Cell
	for _, w := range suite {
		cells = append(cells, opt.cell(w.Name, cpu.SkylakeConfig(), nil, false, lukewarm))
	}
	for _, label := range modes {
		for _, w := range suite {
			jb := core.DefaultConfig()
			jb.UsePhysicalAddresses = label == "physical"
			c := opt.variantCell("compact-"+label, w.Name, cpu.SkylakeConfig(), &jb, lukewarm)
			// Measure exactly the first post-compaction invocation: later
			// ones re-record valid addresses and would mask the effect.
			c.Measure = 1
			cells = append(cells, c)
		}
	}
	ms, err := opt.engine().MeasureFunc(cells, execCompaction)
	if err != nil {
		return out, err
	}
	for mi, label := range modes {
		var cov stats.Summary
		var speed []float64
		for wi := range suite {
			base := ms[wi]
			m := ms[len(suite)*(1+mi)+wi]
			l2 := m.L2
			denom := float64(l2.PrefetchUsed[mem.Instr] + l2.DemandMisses[mem.Instr])
			if denom > 0 {
				cov.Add(float64(l2.PrefetchUsed[mem.Instr]) / denom)
			}
			speed = append(speed, 1+stats.SpeedupPct(normCycles(base), normCycles(m))/100)
		}
		out.Coverage[label] = cov.Mean()
		out.Speedup[label] = (stats.GeoMean(speed) - 1) * 100
	}
	return out, nil
}

// execCompaction executes "compact-<mode>" cells: record metadata over the
// cell's warm-up invocations, migrate every page, then measure the first
// post-compaction invocation. Untagged baseline cells run standard.
func execCompaction(c runner.Cell) (runner.Measurement, error) {
	if c.Variant == "" {
		return runner.Execute(c)
	}
	w, err := suiteByName(c.Workload)
	if err != nil {
		return runner.Measurement{}, err
	}
	srv := newServer(c.CPU, c.Jukebox, false)
	inst := srv.Deploy(w)
	srv.RunLukewarm(inst, c.Warmup) // record metadata
	inst.AS.Compact()               // the OS migrates every page
	return runner.MeasureInstance(srv, inst, runner.Lukewarm, 0, c.Measure, c.Audit)
}

// Table renders the ablation.
func (r CompactionResult) Table() *stats.Table {
	t := stats.NewTable("Ablation: metadata addressing vs OS page migration",
		"Metadata addresses", "Coverage after compaction", "Speedup after compaction")
	for _, mode := range []string{"virtual", "physical"} {
		t.AddRow(mode,
			fmt.Sprintf("%.0f%%", r.Coverage[mode]*100),
			fmt.Sprintf("%.1f%%", r.Speedup[mode]))
	}
	return t
}

// SnapshotResult backs the Sec. 3.4.2 extension: shipping Jukebox metadata
// inside a function snapshot accelerates the very first invocation of a
// freshly restored instance (which is otherwise fully cold).
type SnapshotResult struct {
	// FirstInvocationSpeedupPct is the geomean speedup of a restored
	// instance's first invocation when it adopts snapshot metadata.
	FirstInvocationSpeedupPct float64
	// PerFunction lists the per-function speedups.
	PerFunction map[string]float64
}

// Snapshot measures cold-start replay: a donor instance records metadata;
// a fresh instance with an identical (snapshot-cloned) layout adopts it and
// replays on its first invocation.
func Snapshot(opt Options) (SnapshotResult, error) {
	opt = opt.withDefaults()
	out := SnapshotResult{PerFunction: map[string]float64{}}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	var cells []runner.Cell
	for _, w := range suite {
		jb := core.DefaultConfig()
		replay := opt.variantCell("snapshot-replay", w.Name, cpu.SkylakeConfig(), &jb, lukewarm)
		rc := reap.DefaultConfig()
		replay.Reap = &rc
		cells = append(cells,
			opt.variantCell("snapshot-cold", w.Name, cpu.SkylakeConfig(), nil, lukewarm),
			replay)
	}
	ms, err := opt.engine().MeasureFunc(cells, execSnapshot)
	if err != nil {
		return out, err
	}
	var speed []float64
	for i, w := range suite {
		cold, first := ms[2*i], ms[2*i+1]
		sp := stats.SpeedupPct(normCycles(cold), normCycles(first))
		out.PerFunction[w.Name] = sp
		speed = append(speed, 1+sp/100)
	}
	out.FirstInvocationSpeedupPct = (stats.GeoMean(speed) - 1) * 100
	return out, nil
}

// execSnapshot executes the snapshot study's cells. "snapshot-cold" measures
// a fresh instance's fully cold first invocation; "snapshot-replay" has a
// donor record metadata over the cell's warm-up invocations, then a restored
// instance adopt it and replay on its own first invocation.
func execSnapshot(c runner.Cell) (runner.Measurement, error) {
	w, err := suiteByName(c.Workload)
	if err != nil {
		return runner.Measurement{}, err
	}
	switch c.Variant {
	case "snapshot-cold":
		srv := newServer(c.CPU, nil, false)
		inst := srv.Deploy(w)
		srv.FlushMicroarch()
		res := srv.Invoke(inst)
		return runner.Measurement{Instrs: res.Instrs, Cycles: res.Cycles}, nil
	case "snapshot-replay":
		srv := serverless.New(serverless.Config{CPU: c.CPU, Jukebox: c.Jukebox, Reap: c.Reap})
		donor := srv.Deploy(w)
		srv.RunLukewarm(donor, c.Warmup)
		restored := srv.Deploy(w)
		if err := restored.Jukebox.AdoptMetadata(donor.Jukebox); err != nil {
			return runner.Measurement{}, fmt.Errorf("experiments: snapshot adopt %s: %w", w.Name, err)
		}
		// The snapshot ships the REAP record file alongside the Jukebox
		// metadata (internal/reap supersedes the metadata-only study): the
		// restored instance prefetches the donor's page working set too.
		if err := restored.Reap.AdoptManifest(donor.Reap); err != nil {
			return runner.Measurement{}, fmt.Errorf("experiments: snapshot adopt %s: %w", w.Name, err)
		}
		srv.FlushMicroarch()
		first := srv.Invoke(restored)
		return runner.Measurement{Instrs: first.Instrs, Cycles: first.Cycles}, nil
	}
	return runner.Measurement{}, fmt.Errorf("experiments: unknown snapshot variant %q", c.Variant)
}

// Table renders the snapshot study.
func (r SnapshotResult) Table() *stats.Table {
	t := stats.NewTable("Extension: snapshot-shipped metadata accelerates the first invocation",
		"Function", "First-invocation speedup")
	for _, name := range workload.Names() {
		if sp, ok := r.PerFunction[name]; ok {
			t.AddRow(name, fmt.Sprintf("%.1f%%", sp))
		}
	}
	t.AddRow("GEOMEAN", fmt.Sprintf("%.1f%%", r.FirstInvocationSpeedupPct))
	return t
}

// DynamicMetadataResult backs the Sec. 5.1 extension: per-function metadata
// sizing (each instance gets its Fig. 8 requirement instead of a fixed
// budget).
type DynamicMetadataResult struct {
	// FixedKB and Dynamic report the geomean speedup and total metadata
	// cost of a 1000-instance server under each policy.
	FixedSpeedupPct   float64
	DynamicSpeedupPct float64
	FixedTotalMB      float64
	DynamicTotalMB    float64
}

// DynamicMetadata compares the fixed 16 KB budget against per-function
// sizing at each function's measured requirement (rounded up to a page).
func DynamicMetadata(opt Options) (DynamicMetadataResult, error) {
	opt = opt.withDefaults()
	var out DynamicMetadataResult
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	// Phase 1: each function's baseline plus an unlimited record-only pass
	// that measures its metadata requirement.
	var phase1 []runner.Cell
	for _, w := range suite {
		sizing := core.DefaultConfig()
		sizing.MetadataBytes = 0
		sizing.ReplayEnabled = false
		phase1 = append(phase1,
			opt.cell(w.Name, cpu.SkylakeConfig(), nil, false, lukewarm),
			opt.variantCell("fig8-record", w.Name, cpu.SkylakeConfig(), &sizing, lukewarm))
	}
	ms1, err := opt.engine().MeasureFunc(phase1, execRecordOnly)
	if err != nil {
		return out, err
	}
	// Phase 2: each function under the fixed budget and its own sized budget
	// (the dynamic budgets only exist once phase 1 has run).
	dynBudgets := make([]int, len(suite))
	var phase2 []runner.Cell
	for i, w := range suite {
		pages := (ms1[2*i+1].MetaBytes + 4095) / 4096
		dynBudgets[i] = pages * 4096
		fixedJB := core.DefaultConfig()
		fixedJB.MetadataBytes = 16 << 10
		dynJB := core.DefaultConfig()
		dynJB.MetadataBytes = dynBudgets[i]
		phase2 = append(phase2,
			opt.cell(w.Name, cpu.SkylakeConfig(), &fixedJB, false, lukewarm),
			opt.cell(w.Name, cpu.SkylakeConfig(), &dynJB, false, lukewarm))
	}
	ms2, err := opt.engine().Measure(phase2)
	if err != nil {
		return out, err
	}
	var fixed, dyn []float64
	var fixedBytes, dynBytes float64
	for i := range suite {
		base := normCycles(ms1[2*i])
		fixed = append(fixed, 1+stats.SpeedupPct(base, normCycles(ms2[2*i]))/100)
		dyn = append(dyn, 1+stats.SpeedupPct(base, normCycles(ms2[2*i+1]))/100)
		fixedBytes += 2 * 16 << 10
		dynBytes += 2 * float64(dynBudgets[i])
	}
	n := float64(len(fixed))
	scale := 1000 / n // per-1000-instance cost, instances spread evenly
	out.FixedSpeedupPct = (stats.GeoMean(fixed) - 1) * 100
	out.DynamicSpeedupPct = (stats.GeoMean(dyn) - 1) * 100
	out.FixedTotalMB = fixedBytes * scale / (1 << 20)
	out.DynamicTotalMB = dynBytes * scale / (1 << 20)
	return out, nil
}

// Table renders the comparison.
func (r DynamicMetadataResult) Table() *stats.Table {
	t := stats.NewTable("Extension: dynamic per-function metadata sizing (1000 warm instances)",
		"Policy", "Geomean speedup", "Total metadata")
	t.AddRow("Fixed 16KB x2", fmt.Sprintf("%.1f%%", r.FixedSpeedupPct), fmt.Sprintf("%.0f MB", r.FixedTotalMB))
	t.AddRow("Per-function", fmt.Sprintf("%.1f%%", r.DynamicSpeedupPct), fmt.Sprintf("%.0f MB", r.DynamicTotalMB))
	return t
}

package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// CompactionResult backs the virtual-vs-physical metadata ablation
// (Sec. 3.3 argues Jukebox must record virtual addresses to survive OS page
// migration; this experiment demonstrates why).
type CompactionResult struct {
	// Coverage maps addressing mode -> mean covered fraction of baseline L2
	// instruction misses after a page-compaction event.
	Coverage map[string]float64
	// Speedup maps addressing mode -> mean speedup over baseline after
	// compaction.
	Speedup map[string]float64
}

// Compaction records metadata, migrates every page of the instance
// (vm.AddressSpace.Compact), and measures the next lukewarm invocation,
// for both addressing modes.
func Compaction(opt Options) (CompactionResult, error) {
	opt = opt.withDefaults()
	out := CompactionResult{Coverage: map[string]float64{}, Speedup: map[string]float64{}}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	for _, physical := range []bool{false, true} {
		label := "virtual"
		if physical {
			label = "physical"
		}
		var cov stats.Summary
		var speed []float64
		for _, w := range suite {
			base, err := measureWorkload(w, cpu.SkylakeConfig(), nil, false, lukewarm, opt)
			if err != nil {
				return out, err
			}

			jb := core.DefaultConfig()
			jb.UsePhysicalAddresses = physical
			srv := newServer(cpu.SkylakeConfig(), &jb, false)
			inst := srv.Deploy(w)
			srv.RunLukewarm(inst, opt.Warmup) // record metadata
			inst.AS.Compact()                 // the OS migrates every page
			srv.FlushMicroarch()
			srv.Core.Hier.ResetStats()
			// Measure exactly the first post-compaction invocation: later
			// ones re-record valid addresses and would mask the effect.
			m, err := measure(srv, inst, lukewarm, Options{Warmup: -1, Measure: 1, Audit: opt.Audit}.withDefaults())
			if err != nil {
				return out, err
			}

			l2 := m.L2
			denom := float64(l2.PrefetchUsed[mem.Instr] + l2.DemandMisses[mem.Instr])
			if denom > 0 {
				cov.Add(float64(l2.PrefetchUsed[mem.Instr]) / denom)
			}
			speed = append(speed, 1+stats.SpeedupPct(normCycles(base), normCycles(m))/100)
		}
		out.Coverage[label] = cov.Mean()
		out.Speedup[label] = (stats.GeoMean(speed) - 1) * 100
	}
	return out, nil
}

// Table renders the ablation.
func (r CompactionResult) Table() *stats.Table {
	t := stats.NewTable("Ablation: metadata addressing vs OS page migration",
		"Metadata addresses", "Coverage after compaction", "Speedup after compaction")
	for _, mode := range []string{"virtual", "physical"} {
		t.AddRow(mode,
			fmt.Sprintf("%.0f%%", r.Coverage[mode]*100),
			fmt.Sprintf("%.1f%%", r.Speedup[mode]))
	}
	return t
}

// SnapshotResult backs the Sec. 3.4.2 extension: shipping Jukebox metadata
// inside a function snapshot accelerates the very first invocation of a
// freshly restored instance (which is otherwise fully cold).
type SnapshotResult struct {
	// FirstInvocationSpeedupPct is the geomean speedup of a restored
	// instance's first invocation when it adopts snapshot metadata.
	FirstInvocationSpeedupPct float64
	// PerFunction lists the per-function speedups.
	PerFunction map[string]float64
}

// Snapshot measures cold-start replay: a donor instance records metadata;
// a fresh instance with an identical (snapshot-cloned) layout adopts it and
// replays on its first invocation.
func Snapshot(opt Options) (SnapshotResult, error) {
	opt = opt.withDefaults()
	out := SnapshotResult{PerFunction: map[string]float64{}}
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	var speed []float64
	for _, w := range suite {
		// Cold first invocation without metadata.
		srvA := newServer(cpu.SkylakeConfig(), nil, false)
		instA := srvA.Deploy(w)
		srvA.FlushMicroarch()
		cold := srvA.Invoke(instA)

		// Donor records; restored instance adopts and replays.
		jb := core.DefaultConfig()
		srvB := serverless.New(serverless.Config{CPU: cpu.SkylakeConfig(), Jukebox: &jb})
		donor := srvB.Deploy(w)
		srvB.RunLukewarm(donor, opt.Warmup)

		restored := srvB.Deploy(w)
		if err := restored.Jukebox.AdoptMetadata(donor.Jukebox); err != nil {
			return out, fmt.Errorf("experiments: snapshot adopt %s: %w", w.Name, err)
		}
		srvB.FlushMicroarch()
		first := srvB.Invoke(restored)

		sp := stats.SpeedupPct(
			float64(cold.Cycles)/float64(cold.Instrs)*1e6,
			float64(first.Cycles)/float64(first.Instrs)*1e6)
		out.PerFunction[w.Name] = sp
		speed = append(speed, 1+sp/100)
	}
	out.FirstInvocationSpeedupPct = (stats.GeoMean(speed) - 1) * 100
	return out, nil
}

// Table renders the snapshot study.
func (r SnapshotResult) Table() *stats.Table {
	t := stats.NewTable("Extension: snapshot-shipped metadata accelerates the first invocation",
		"Function", "First-invocation speedup")
	for _, name := range workload.Names() {
		if sp, ok := r.PerFunction[name]; ok {
			t.AddRow(name, fmt.Sprintf("%.1f%%", sp))
		}
	}
	t.AddRow("GEOMEAN", fmt.Sprintf("%.1f%%", r.FirstInvocationSpeedupPct))
	return t
}

// DynamicMetadataResult backs the Sec. 5.1 extension: per-function metadata
// sizing (each instance gets its Fig. 8 requirement instead of a fixed
// budget).
type DynamicMetadataResult struct {
	// FixedKB and Dynamic report the geomean speedup and total metadata
	// cost of a 1000-instance server under each policy.
	FixedSpeedupPct   float64
	DynamicSpeedupPct float64
	FixedTotalMB      float64
	DynamicTotalMB    float64
}

// DynamicMetadata compares the fixed 16 KB budget against per-function
// sizing at each function's measured requirement (rounded up to a page).
func DynamicMetadata(opt Options) (DynamicMetadataResult, error) {
	opt = opt.withDefaults()
	var out DynamicMetadataResult
	suite, err := opt.suite()
	if err != nil {
		return out, err
	}
	var fixed, dyn []float64
	var fixedBytes, dynBytes float64
	for _, w := range suite {
		baseM, err := measureWorkload(w, cpu.SkylakeConfig(), nil, false, lukewarm, opt)
		if err != nil {
			return out, err
		}
		base := normCycles(baseM)

		// Measure the requirement with an unlimited record-only pass.
		sizing := core.DefaultConfig()
		sizing.MetadataBytes = 0
		sizing.ReplayEnabled = false
		srv := newServer(cpu.SkylakeConfig(), &sizing, false)
		inst := srv.Deploy(w)
		srv.RunLukewarm(inst, 1)
		need := inst.Jukebox.Stats.LastRecordBytes
		pages := (need + 4095) / 4096
		dynBudget := pages * 4096

		run := func(budget int) (float64, error) {
			jb := core.DefaultConfig()
			jb.MetadataBytes = budget
			m, err := measureWorkload(w, cpu.SkylakeConfig(), &jb, false, lukewarm, opt)
			if err != nil {
				return 0, err
			}
			return normCycles(m), nil
		}
		fixedCycles, err := run(16 << 10)
		if err != nil {
			return out, err
		}
		dynCycles, err := run(dynBudget)
		if err != nil {
			return out, err
		}
		fixed = append(fixed, 1+stats.SpeedupPct(base, fixedCycles)/100)
		dyn = append(dyn, 1+stats.SpeedupPct(base, dynCycles)/100)
		fixedBytes += 2 * 16 << 10
		dynBytes += 2 * float64(dynBudget)
	}
	n := float64(len(fixed))
	scale := 1000 / n // per-1000-instance cost, instances spread evenly
	out.FixedSpeedupPct = (stats.GeoMean(fixed) - 1) * 100
	out.DynamicSpeedupPct = (stats.GeoMean(dyn) - 1) * 100
	out.FixedTotalMB = fixedBytes * scale / (1 << 20)
	out.DynamicTotalMB = dynBytes * scale / (1 << 20)
	return out, nil
}

// Table renders the comparison.
func (r DynamicMetadataResult) Table() *stats.Table {
	t := stats.NewTable("Extension: dynamic per-function metadata sizing (1000 warm instances)",
		"Policy", "Geomean speedup", "Total metadata")
	t.AddRow("Fixed 16KB x2", fmt.Sprintf("%.1f%%", r.FixedSpeedupPct), fmt.Sprintf("%.0f MB", r.FixedTotalMB))
	t.AddRow("Per-function", fmt.Sprintf("%.1f%%", r.DynamicSpeedupPct), fmt.Sprintf("%.0f MB", r.DynamicTotalMB))
	return t
}

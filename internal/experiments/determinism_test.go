package experiments

import (
	"fmt"
	"testing"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/runner"
)

// detOpt is a small subset so each table renders in a few seconds.
var detOpt = Options{
	Functions: []string{"Auth-G", "Pay-N"},
	Warmup:    1,
	Measure:   2,
}

// renderTables produces the determinism-gated tables with the given engine.
func renderTables(t *testing.T, eng *runner.Engine) map[string]string {
	t.Helper()
	opt := detOpt
	opt.Engine = eng

	char, err := Characterize(opt)
	if err != nil {
		t.Fatal(err)
	}
	perf, err := Performance(opt, cpu.SkylakeConfig(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f13, err := Fig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Sched(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Cluster(opt)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Coldstart(opt)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]string{
		"fig2":  char.Fig2Table().String(),
		"fig10": perf.Fig10Table().String(),
		"fig13": f13.Table().String(),
		// The scheduling tables gate the arrival processes themselves: every
		// sweep cell draws a full Poisson, heavy-tail or diurnal arrival
		// sequence, so a single worker-dependent or cache-dependent draw
		// shows up as a byte difference here.
		"sched-place": sc.Table().String(),
		"sched-keep":  sc.KeepAliveTable().String(),
		// The cluster tables gate the fleet simulation: arrival draws, keyed
		// fault draws, retry backoff jitter and crash schedules all feed
		// these bytes, so any worker- or cache-order dependence surfaces.
		"cluster":     cl.Table().String(),
		"cluster-lat": cl.LatencyTable().String(),
		// The coldstart tables gate the REAP restore engine: manifest replay
		// order, blind line streaming, TLB-probe deltas and the staleness
		// sweep's drifted workload variants all feed these bytes.
		"coldstart":           cs.Table().String(),
		"coldstart-crossover": cs.CrossoverTable().String(),
		"coldstart-staleness": cs.StalenessTable().String(),
		// The raw rows are stricter than the rendered tables (no rounding):
		// every counter and float must match bit-for-bit.
		"sched-rows":     fmt.Sprintf("%+v", sc),
		"cluster-rows":   fmt.Sprintf("%+v", cl),
		"coldstart-rows": fmt.Sprintf("%+v", cs),
	}
}

func engineWith(t *testing.T, jobs int, dir string) *runner.Engine {
	t.Helper()
	e, err := runner.New(runner.Config{Jobs: jobs, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTablesDeterministicAcrossJobsAndCache is the engine's end-to-end
// regression gate: the Fig. 2, 10 and 13 tables must be byte-identical
// whether cells run serially or eight-wide, and whether the run starts cold
// or entirely from a warm on-disk cache.
func TestTablesDeterministicAcrossJobsAndCache(t *testing.T) {
	dir := t.TempDir()
	ref := renderTables(t, engineWith(t, 1, ""))

	parallel := renderTables(t, engineWith(t, 8, dir)) // also populates dir
	for name, want := range ref {
		if got := parallel[name]; got != want {
			t.Errorf("%s: jobs=8 table differs from jobs=1:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s", name, want, got)
		}
	}

	warmEng := engineWith(t, 8, dir)
	warm := renderTables(t, warmEng)
	for name, want := range ref {
		if got := warm[name]; got != want {
			t.Errorf("%s: warm-cache table differs from cold:\n--- cold ---\n%s--- warm ---\n%s", name, want, got)
		}
	}
	st := warmEng.Stats()
	if st.CacheHits == 0 {
		t.Error("warm-cache run recorded no cache hits")
	}
}

// TestCrossExperimentCacheSharing checks that content-identical cells
// submitted by different experiments are simulated once: Fig. 13's baseline
// and Jukebox configurations are the same cells Fig. 10 already measured.
func TestCrossExperimentCacheSharing(t *testing.T) {
	eng := engineWith(t, 4, "")
	opt := detOpt
	opt.Engine = eng

	if _, err := Performance(opt, cpu.SkylakeConfig(), core.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	if before.CacheHits != 0 {
		t.Fatalf("unexpected hits before Fig13: %+v", before)
	}
	if _, err := Fig13(opt); err != nil {
		t.Fatal(err)
	}
	after := eng.Stats()
	// Fig13 submits baseline and Jukebox cells for each of the two functions
	// that Performance already measured: at least 4 hits.
	if got := after.CacheHits - before.CacheHits; got < 4 {
		t.Errorf("Fig13 reused %d cached cells, want >= 4", got)
	}
}

// TestPrewarmDeterministicAcrossJobs gates the predictive pre-warm sweep:
// forecaster state (histograms, EWMA), the pre-warm ledger and the
// readiness-tier clocks all accumulate inside each traffic cell, so a
// worker-order or cache-order dependence anywhere in the prediction path
// shows up as a byte difference between a serial and an eight-wide run. One
// function keeps the 40-cell sweep affordable; the raw rows are compared
// unrounded.
func TestPrewarmDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the full pre-warm sweep twice; skipped in -short mode")
	}
	opt := detOpt
	opt.Functions = []string{"Auth-G"}

	render := func(jobs int) (string, string) {
		o := opt
		o.Engine = engineWith(t, jobs, "")
		r, err := Prewarm(o)
		if err != nil {
			t.Fatal(err)
		}
		return r.Table().String(), fmt.Sprintf("%+v", r)
	}

	serialTab, serialRows := render(1)
	wideTab, wideRows := render(8)
	if wideTab != serialTab {
		t.Errorf("prewarm table differs across jobs:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s", serialTab, wideTab)
	}
	if wideRows != serialRows {
		t.Errorf("prewarm raw rows differ across jobs (table matched: rounding hid the drift)")
	}
}

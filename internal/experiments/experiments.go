// Package experiments contains one runner per figure and table of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each runner
// builds the servers it needs, executes the workloads under the paper's
// configurations, and returns typed rows plus rendered tables; the
// cmd/lukewarm binary and the repository's benchmarks drive them.
package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/mem"
	"lukewarm/internal/serverless"
	"lukewarm/internal/topdown"
	"lukewarm/internal/workload"
)

// Options scales an experiment run. The zero value selects defaults sized
// for interactive use; the paper's methodology (20 measured invocations
// after checkpoint warm-up) corresponds to Warmup: 2, Measure: 20.
type Options struct {
	// Warmup is the number of unmeasured invocations run first: they warm
	// the reference configuration's caches and record the first Jukebox
	// metadata generation (standing in for the paper's 20000-invocation
	// functional warm-up and checkpoint).
	Warmup int
	// Measure is the number of measured invocations per configuration.
	Measure int
	// Functions restricts the suite to the named functions (nil = all 20).
	Functions []string
	// Audit runs the faults.Audit invariant checks on every measured
	// invocation and on the per-window cache counters, failing the
	// experiment with an error on any violation.
	Audit bool
}

func (o Options) withDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 2
	}
	if o.Warmup < 0 { // explicit "no warmup"
		o.Warmup = 0
	}
	if o.Measure <= 0 {
		o.Measure = 3
	}
	return o
}

// suite resolves the selected workloads, erroring on unknown names.
func (o Options) suite() ([]workload.Workload, error) {
	all := workload.Suite()
	if len(o.Functions) == 0 {
		return all, nil
	}
	var out []workload.Workload
	for _, name := range o.Functions {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		out = append(out, w)
	}
	return out, nil
}

// mode selects the execution regime of a measurement.
type mode uint8

const (
	// reference: back-to-back invocations, fully warm (Sec. 2.3).
	reference mode = iota
	// lukewarm: full microarchitectural flush before every invocation —
	// the paper's interleaved/baseline configuration.
	lukewarm
)

// measured aggregates one measurement window.
type measured struct {
	Stack  topdown.Stack
	Instrs uint64
	Cycles mem.Cycle
	L1I    mem.CacheStats
	L2     mem.CacheStats
	LLC    mem.CacheStats
	DRAM   map[mem.TrafficClass]uint64 // bytes by class
	JB     core.Stats
}

// CPI reports the window's cycles per instruction.
func (m measured) CPI() float64 {
	if m.Instrs == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Instrs)
}

// MPKI reports misses per kilo-instruction from a cache's counters.
func (m measured) MPKI(s mem.CacheStats, k mem.Kind) float64 {
	if m.Instrs == 0 {
		return 0
	}
	return float64(s.DemandMisses[k]) / float64(m.Instrs) * 1000
}

// measure runs warmup then measure invocations of inst under md and returns
// the aggregated measurement window. With opt.Audit set, every measured
// invocation and the window's cache counters are checked against the
// faults package's conservation invariants.
func measure(srv *serverless.Server, inst *serverless.Instance, md mode, opt Options) (measured, error) {
	invoke := func() cpu.RunResult {
		if md == lukewarm {
			srv.FlushMicroarch()
		}
		return srv.Invoke(inst)
	}
	for i := 0; i < opt.Warmup; i++ {
		invoke()
	}
	srv.Core.Hier.ResetStats()
	srv.Core.MMU.ResetStats()
	srv.Core.BP.ResetStats()
	srv.Core.BTB.ResetStats()
	if inst.Jukebox != nil {
		inst.Jukebox.ResetStats()
	}

	var out measured
	for i := 0; i < opt.Measure; i++ {
		res := invoke()
		if opt.Audit {
			if err := faults.Audit(res); err != nil {
				return out, fmt.Errorf("%s invocation %d: %w", inst.Workload.Name, i, err)
			}
		}
		out.Stack.Merge(res.Stack)
		out.Instrs += res.Instrs
		out.Cycles += res.Cycles
	}
	hier := srv.Core.Hier
	hier.DrainUnusedPrefetches()
	out.L1I = hier.L1I.Stats
	out.L2 = hier.L2.Stats
	out.LLC = hier.LLC.Stats
	out.DRAM = map[mem.TrafficClass]uint64{}
	for _, cls := range []mem.TrafficClass{mem.TrafficDemand, mem.TrafficPrefetch,
		mem.TrafficMetadataRecord, mem.TrafficMetadataReplay, mem.TrafficWriteback} {
		out.DRAM[cls] = hier.DRAM.Bytes(cls)
	}
	if inst.Jukebox != nil {
		out.JB = inst.Jukebox.Stats
		if opt.Audit {
			if err := faults.AuditJukebox(out.JB); err != nil {
				return out, fmt.Errorf("%s: %w", inst.Workload.Name, err)
			}
		}
	}
	// Cache-counter conservation holds within a window whenever the window
	// starts from flushed caches (the lukewarm regime); reference windows
	// legitimately carry pre-reset prefetched lines across the stats reset.
	if opt.Audit && md == lukewarm {
		for _, c := range []struct {
			name  string
			stats mem.CacheStats
		}{{"L1I", out.L1I}, {"L2", out.L2}, {"LLC", out.LLC}} {
			if err := faults.AuditCache(c.name, c.stats); err != nil {
				return out, fmt.Errorf("%s: %w", inst.Workload.Name, err)
			}
		}
	}
	return out, nil
}

// newServer builds a single-purpose server for one measurement.
func newServer(cfg cpu.Config, jb *core.Config, perfect bool) *serverless.Server {
	return serverless.New(serverless.Config{CPU: cfg, Jukebox: jb, PerfectICache: perfect})
}

// measureWorkload deploys w on a fresh server and measures it.
func measureWorkload(w workload.Workload, cfg cpu.Config, jb *core.Config, perfect bool, md mode, opt Options) (measured, error) {
	srv := newServer(cfg, jb, perfect)
	inst := srv.Deploy(w)
	return measure(srv, inst, md, opt)
}

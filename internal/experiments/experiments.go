// Package experiments contains one runner per figure and table of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each runner
// describes its measurements as independent simulation cells and submits
// them to the execution engine (internal/runner), which fans them out across
// a worker pool and memoizes results by content; the cmd/lukewarm binary and
// the repository's benchmarks drive them.
package experiments

import (
	"fmt"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/runner"
	"lukewarm/internal/serverless"
	"lukewarm/internal/workload"
)

// Options scales an experiment run. The zero value selects defaults sized
// for interactive use; the paper's methodology (20 measured invocations
// after checkpoint warm-up) corresponds to Warmup: 2, Measure: 20.
type Options struct {
	// Warmup is the number of unmeasured invocations run first: they warm
	// the reference configuration's caches and record the first Jukebox
	// metadata generation (standing in for the paper's 20000-invocation
	// functional warm-up and checkpoint). Zero selects the default of 2;
	// request an explicitly unwarmed run with NoWarmup (a negative Warmup is
	// honored as "none" for backward compatibility).
	Warmup int
	// NoWarmup requests zero warm-up invocations. The flag exists because
	// Warmup's zero value means "default", so 0 alone cannot express "none".
	NoWarmup bool
	// Measure is the number of measured invocations per configuration.
	Measure int
	// Functions restricts the suite to the named functions (nil = all 20).
	Functions []string
	// Audit runs the faults.Audit invariant checks on every measured
	// invocation and on the per-window cache counters, failing the
	// experiment with an error on any violation.
	Audit bool
	// Engine executes the experiment's simulation cells. Nil selects a
	// fresh default engine (GOMAXPROCS workers, in-memory result cache);
	// the CLI shares one configured engine across all experiments so the
	// cache and telemetry span the whole run.
	Engine *runner.Engine
}

func (o Options) withDefaults() Options {
	switch {
	case o.NoWarmup || o.Warmup < 0:
		o.Warmup = 0
	case o.Warmup == 0:
		o.Warmup = 2
	}
	if o.Measure <= 0 {
		o.Measure = 3
	}
	if o.Engine == nil {
		o.Engine = runner.Default()
	}
	return o
}

// engine returns the run's execution engine (withDefaults guarantees one).
func (o Options) engine() *runner.Engine { return o.Engine }

// cell describes one standard measurement with the run's window settings.
func (o Options) cell(w string, cfg cpu.Config, jb *core.Config, perfect bool, md mode) runner.Cell {
	return runner.Cell{
		Workload: w, CPU: cfg, Jukebox: jb, Perfect: perfect, Mode: md,
		Warmup: o.Warmup, Measure: o.Measure, Audit: o.Audit,
	}
}

// variantCell is cell with a custom-executor tag (see runner.Cell.Variant).
func (o Options) variantCell(variant, w string, cfg cpu.Config, jb *core.Config, md mode) runner.Cell {
	c := o.cell(w, cfg, jb, false, md)
	c.Variant = variant
	return c
}

// suite resolves the selected workloads, erroring on unknown names.
func (o Options) suite() ([]workload.Workload, error) {
	all := workload.Suite()
	if len(o.Functions) == 0 {
		return all, nil
	}
	var out []workload.Workload
	for _, name := range o.Functions {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		out = append(out, w)
	}
	return out, nil
}

// mode selects the execution regime of a measurement (see runner.Mode).
type mode = runner.Mode

const (
	// reference: back-to-back invocations, fully warm (Sec. 2.3).
	reference = runner.Reference
	// lukewarm: full microarchitectural flush before every invocation —
	// the paper's interleaved/baseline configuration.
	lukewarm = runner.Lukewarm
)

// measured aggregates one measurement window (see runner.Measurement).
type measured = runner.Measurement

// newServer builds a single-purpose server for one measurement.
func newServer(cfg cpu.Config, jb *core.Config, perfect bool) *serverless.Server {
	return serverless.New(serverless.Config{CPU: cfg, Jukebox: jb, PerfectICache: perfect})
}

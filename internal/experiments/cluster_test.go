package experiments

import (
	"strings"
	"testing"
)

// clusterTestOptions keeps the fleet sweep tractable for CI: a small
// cross-language suite and few invocations, with auditing on so every cell
// is checked against the fleet conservation invariants.
func clusterTestOptions() Options {
	return Options{
		Functions: []string{"Auth-G", "Email-P", "Pay-N", "Geo-G"},
		Warmup:    1,
		Measure:   3,
		Audit:     true,
	}
}

func TestClusterSweep(t *testing.T) {
	r, err := Cluster(clusterTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := len(clusterFleetPlacers) * len(clusterFaultLevels) * len(clusterNodeCounts)
	if len(r.Rows) != want {
		t.Fatalf("cluster sweep has %d rows, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		if row.C.Served == 0 {
			t.Errorf("%s/%s/nodes=%d served nothing", row.Policy, row.FaultLevel, row.Nodes)
		}
		switch row.FaultLevel {
		case "none":
			if row.C.AvailabilityPct != 100 {
				t.Errorf("%s/nodes=%d fault-free availability = %.2f%%, want 100%%",
					row.Policy, row.Nodes, row.C.AvailabilityPct)
			}
			if row.C.Injections != 0 {
				t.Errorf("%s/nodes=%d injected %d faults with no plan armed",
					row.Policy, row.Nodes, row.C.Injections)
			}
		case "heavy":
			// Moderate faults may dodge a small test cell entirely; the
			// heavy level must not.
			if row.C.Injections == 0 {
				t.Errorf("%s/heavy/nodes=%d armed faults but injected nothing",
					row.Policy, row.Nodes)
			}
		}
	}
	// The fault axis must bite: heavy faults cost availability relative to
	// the clean run on the largest swept fleet.
	nodes := clusterNodeCounts[len(clusterNodeCounts)-1]
	clean, okC := r.Row(nodes, clusterFleetPlacers[0], "none")
	heavy, okH := r.Row(nodes, clusterFleetPlacers[0], "heavy")
	if !okC || !okH {
		t.Fatal("sweep missing clean or heavy row for the largest fleet")
	}
	if heavy.C.AvailabilityPct >= clean.C.AvailabilityPct {
		t.Errorf("heavy faults did not cost availability: %.2f%% vs clean %.2f%%",
			heavy.C.AvailabilityPct, clean.C.AvailabilityPct)
	}
	if heavy.C.NodeCrashes == 0 {
		t.Error("heavy fault level fired no node crashes")
	}
	if heavy.C.Retries == 0 {
		t.Error("heavy faults exercised no retries")
	}
	if h := r.HeavyAvailabilityPct(); h <= 0 || h >= 100 {
		t.Errorf("headline heavy availability = %.2f%%, want strictly between 0 and 100", h)
	}
}

func TestClusterTables(t *testing.T) {
	r, err := Cluster(clusterTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Table().String()
	lat := r.LatencyTable().String()
	for _, frag := range []string{"EarliestAvailable", "StickyAffinity", "heavy", "moderate"} {
		if !strings.Contains(tbl, frag) {
			t.Errorf("sweep table missing %q:\n%s", frag, tbl)
		}
		if !strings.Contains(lat, frag) {
			t.Errorf("latency table missing %q:\n%s", frag, lat)
		}
	}
	if !strings.Contains(tbl, "100.0%") {
		t.Errorf("sweep table shows no fault-free cell at full availability:\n%s", tbl)
	}
}

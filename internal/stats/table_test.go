package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("CPI", "Function", "Ref", "Interleaved")
	tb.AddRow("Fib-P", "1.00", "1.85")
	tb.AddRow("AES-NodeJS-With-A-Long-Name", "0.90", "1.40")
	out := tb.String()
	if !strings.Contains(out, "== CPI ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Function") || !strings.Contains(out, "Interleaved") {
		t.Errorf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "Ref" column starts at the same offset in each data row.
	hdr := lines[1]
	refCol := strings.Index(hdr, "Ref")
	for _, ln := range lines[3:] {
		cell := strings.TrimSpace(ln[refCol : refCol+4])
		if cell != "1.00" && cell != "0.90" {
			t.Errorf("misaligned column, found %q in %q", cell, ln)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z") // longer than header
	out := tb.String()
	if !strings.Contains(out, "z") {
		t.Errorf("extra column dropped:\n%s", out)
	}
	if strings.Contains(out, "== ") {
		t.Errorf("empty title should not render a title line:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("Figure 10: speedups", "Function", "Jukebox")
	tb.AddRow("Auth-G", "25.6%")
	tb.AddRow("with,comma", "1%")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "Function,Jukebox\nAuth-G,25.6%\n\"with,comma\",1%\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Figure 10: speedup over baseline": "figure-10",
		"Table 3: reductions":              "table-3",
		"CRRB-size sensitivity (mean KB)":  "crrb-size-sensitivity-mean-kb",
		"  Weird   spacing!!  ":            "weird-spacing",
		"":                                 "",
	}
	for title, want := range cases {
		tb := NewTable(title, "A")
		if got := tb.Slug(); got != want {
			t.Errorf("Slug(%q) = %q, want %q", title, got, want)
		}
	}
}

func TestCell(t *testing.T) {
	if got := Cell(3.14159); got != "3.14" {
		t.Errorf("Cell(float64) = %q", got)
	}
	if got := Cell(float32(2.5)); got != "2.50" {
		t.Errorf("Cell(float32) = %q", got)
	}
	if got := Cell(42); got != "42" {
		t.Errorf("Cell(int) = %q", got)
	}
	if got := Cell("s"); got != "s" {
		t.Errorf("Cell(string) = %q", got)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); len(got) != 10 {
		t.Errorf("Bar overflow len = %d", len(got))
	}
	if got := Bar(-1, 10, 10); got != "" {
		t.Errorf("Bar negative = %q", got)
	}
	if got := Bar(5, 0, 10); got != "" {
		t.Errorf("Bar zero max = %q", got)
	}
}

func TestStackedBar(t *testing.T) {
	got := StackedBar([]float64{2, 2}, []rune{'R', 'F'}, 4, 8)
	if got != "RRRRFFFF" {
		t.Errorf("StackedBar = %q, want RRRRFFFF", got)
	}
	// zero and negative segments are skipped
	got = StackedBar([]float64{2, 0, 2}, []rune{'R', 'X', 'F'}, 4, 8)
	if got != "RRRRFFFF" {
		t.Errorf("StackedBar with zero = %q", got)
	}
	// output truncated to width
	got = StackedBar([]float64{4, 4}, []rune{'R', 'F'}, 4, 8)
	if len(got) != 8 {
		t.Errorf("StackedBar overflow len = %d", len(got))
	}
	if got := StackedBar([]float64{1}, nil, 0, 8); got != "" {
		t.Errorf("StackedBar zero max = %q", got)
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 {
		t.Fatalf("zero Summary: got n=%d mean=%v", s.N(), s.Mean())
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.StdDev(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Add(-3.5)
	if s.Min() != -3.5 || s.Max() != -3.5 || s.Mean() != -3.5 {
		t.Errorf("single value summary wrong: %v", s.String())
	}
	if s.Variance() != 0 {
		t.Errorf("Variance of single value = %v, want 0", s.Variance())
	}
}

func TestSummaryVarianceNonNegativeProperty(t *testing.T) {
	f := func(vs []float64) bool {
		var s Summary
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// keep magnitudes sane so sumq does not overflow
			s.Add(math.Mod(v, 1e6))
		}
		return s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{-5, 0}); got != 0 {
		t.Errorf("GeoMean of non-positive = %v, want 0", got)
	}
	// non-positive values are skipped, not zeroing the result
	if got := GeoMean([]float64{0, 4, 9}); !almostEqual(got, 6, 1e-9) {
		t.Errorf("GeoMean skipping zero = %v, want 6", got)
	}
}

func TestGeoMeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vs []float64
		for _, v := range raw {
			v = math.Abs(math.Mod(v, 1e3))
			if v > 1e-6 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return GeoMean(vs) == 0
		}
		g := GeoMean(vs)
		min, max := vs[0], vs[0]
		for _, v := range vs {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {125, 50}, {-5, 10},
	}
	for _, c := range cases {
		if got := Percentile(vs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func setOf(vs ...uint64) map[uint64]struct{} {
	m := make(map[uint64]struct{}, len(vs))
	for _, v := range vs {
		m[v] = struct{}{}
	}
	return m
}

func TestJaccard(t *testing.T) {
	a := setOf(1, 2, 3, 4)
	b := setOf(3, 4, 5, 6)
	if got := Jaccard(a, b); !almostEqual(got, 2.0/6.0, 1e-12) {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("Jaccard(a,a) = %v, want 1", got)
	}
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("Jaccard(nil,nil) = %v, want 1", got)
	}
	if got := Jaccard(a, nil); got != 0 {
		t.Errorf("Jaccard(a,nil) = %v, want 0", got)
	}
}

func TestJaccardProperties(t *testing.T) {
	// Symmetry and range over generated sets.
	f := func(xs, ys []uint8) bool {
		a := make(map[uint64]struct{})
		b := make(map[uint64]struct{})
		for _, x := range xs {
			a[uint64(x)] = struct{}{}
		}
		for _, y := range ys {
			b[uint64(y)] = struct{}{}
		}
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioAndPct(t *testing.T) {
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio div-by-zero = %v", got)
	}
	if got := Pct(1, 4); !almostEqual(got, 25, 1e-12) {
		t.Errorf("Pct = %v, want 25", got)
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(200, 100); !almostEqual(got, 100, 1e-12) {
		t.Errorf("SpeedupPct = %v, want 100", got)
	}
	if got := SpeedupPct(100, 100); !almostEqual(got, 0, 1e-12) {
		t.Errorf("SpeedupPct equal = %v, want 0", got)
	}
	if got := SpeedupPct(100, 0); got != 0 {
		t.Errorf("SpeedupPct zero denom = %v, want 0", got)
	}
	// Slowdown is negative.
	if got := SpeedupPct(100, 200); !almostEqual(got, -50, 1e-12) {
		t.Errorf("SpeedupPct slowdown = %v, want -50", got)
	}
}

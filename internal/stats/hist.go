package stats

import (
	"fmt"
	"math"
	"strings"

	"lukewarm/internal/cfgerr"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are clamped into the first/last bin so nothing is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	count  int
}

// NewHistogram creates a histogram with n bins over [lo, hi). It returns an
// error wrapping cfgerr.ErrBadConfig if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, cfgerr.New("histogram needs at least one bin, got %d", n)
	}
	if hi <= lo {
		return nil, cfgerr.New("histogram range must have hi > lo, got [%g, %g)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.count++
}

// N reports the number of observations recorded.
func (h *Histogram) N() int { return h.count }

// BinCenter reports the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}

// Quantile reports the q-th quantile (0..1) estimated from bin centers.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	cum := 0.0
	for i, c := range h.Bins {
		cum += float64(c)
		if cum >= target {
			return h.BinCenter(i)
		}
	}
	return h.BinCenter(len(h.Bins) - 1)
}

// Render draws the histogram as rows of "center | bar count" with bars scaled
// to width characters.
func (h *Histogram) Render(width int) string {
	maxBin := 0
	for _, c := range h.Bins {
		if c > maxBin {
			maxBin = c
		}
	}
	var b strings.Builder
	for i, c := range h.Bins {
		bar := 0
		if maxBin > 0 {
			bar = int(math.Round(float64(c) / float64(maxBin) * float64(width)))
		}
		fmt.Fprintf(&b, "%10.3g |%-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Package stats provides the small statistical toolkit used throughout the
// simulator: streaming summaries, geometric means, Jaccard set commonality,
// histograms, and percentage helpers.
//
// Everything in this package is deterministic and allocation-conscious; the
// experiment runners lean on it to aggregate per-invocation measurements into
// the rows the paper's figures report.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and reports basic
// descriptive statistics. The zero value is ready to use.
type Summary struct {
	n    int
	sum  float64
	sumq float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumq += v * v
}

// N reports the number of observations recorded so far.
func (s *Summary) N() int { return s.n }

// Mean reports the arithmetic mean, or 0 if no observations were recorded.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min reports the smallest observation, or 0 if none were recorded.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation, or 0 if none were recorded.
func (s *Summary) Max() float64 { return s.max }

// Sum reports the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Variance reports the population variance.
func (s *Summary) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumq/float64(s.n) - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev reports the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// String renders "mean [min, max] (n=N)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] (n=%d)", s.Mean(), s.min, s.max, s.n)
}

// Mean reports the arithmetic mean of vs, or 0 for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// GeoMean reports the geometric mean of vs. All values must be positive;
// non-positive values are skipped (they would otherwise poison the product),
// matching how speedup geomeans are conventionally computed.
func GeoMean(vs []float64) float64 {
	logSum := 0.0
	n := 0
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Median reports the median of vs (the slice is not modified), or 0 for an
// empty slice.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	c := make([]float64, len(vs))
	copy(c, vs)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// Percentile reports the p-th percentile (0..100) of vs using linear
// interpolation, or 0 for an empty slice.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	c := make([]float64, len(vs))
	copy(c, vs)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Jaccard reports the Jaccard index |a∩b| / |a∪b| of two sets of cache-block
// addresses, the commonality metric of the paper's Sec. 2.5 (Fig. 6b).
// Two empty sets have index 1 (identical).
func Jaccard(a, b map[uint64]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Ratio reports num/den, or 0 when den is 0. It keeps MPKI/CPI style
// divisions free of NaNs on empty runs.
func Ratio(num, den float64) float64 {
	//lukewarm:floateq exact zero is the only invalid denominator; this guard is the canonical form
	if den == 0 {
		return 0
	}
	return num / den
}

// Pct reports num/den as a percentage, or 0 when den is 0.
func Pct(num, den float64) float64 { return Ratio(num, den) * 100 }

// SpeedupPct converts a pair of cycle counts into the "% speedup" the paper
// plots: how much faster the optimized run is relative to the baseline.
// A positive value means the optimized run took fewer cycles.
func SpeedupPct(baselineCycles, optimizedCycles float64) float64 {
	//lukewarm:floateq exact zero-denominator guard, as in Ratio
	if optimizedCycles == 0 {
		return 0
	}
	return (baselineCycles/optimizedCycles - 1) * 100
}

// ApproxEqual reports whether a and b agree within tol, using a relative
// comparison that degrades to absolute near zero:
//
//	|a-b| <= tol * max(1, |a|, |b|)
//
// This is the comparison simulation code must use instead of ==/!= on
// floats (enforced by the floateq analyzer): accumulated rounding varies
// with evaluation order, and the golden-figure gates hold tables only to
// tolerance bands. NaNs compare unequal to everything, like ==.
func ApproxEqual(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// NearTol is Near's tolerance: loose enough to absorb order-of-evaluation
// rounding across a whole experiment, tight enough that any modeled effect
// (the paper's smallest reported delta is ~0.1%) stays visible.
const NearTol = 1e-9

// Near is ApproxEqual at NearTol, the default equality for simulation code.
func Near(a, b float64) bool { return ApproxEqual(a, b, NearTol) }

package stats

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"lukewarm/internal/cfgerr"
)

func mustHistogram(t *testing.T, lo, hi float64, n int) *Histogram {
	t.Helper()
	h, err := NewHistogram(lo, hi, n)
	if err != nil {
		t.Fatalf("NewHistogram(%g, %g, %d): %v", lo, hi, n, err)
	}
	return h
}

func TestHistogramBasics(t *testing.T) {
	h := mustHistogram(t, 0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.N() != 10 {
		t.Fatalf("N = %d", h.N())
	}
	for i, c := range h.Bins {
		if c != 1 {
			t.Errorf("bin %d = %d, want 1", i, c)
		}
	}
	if got := h.BinCenter(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := mustHistogram(t, 0, 10, 5)
	h.Add(-100)
	h.Add(1000)
	h.Add(10) // exactly Hi lands in last bin
	if h.Bins[0] != 1 {
		t.Errorf("low outlier not clamped: %v", h.Bins)
	}
	if h.Bins[4] != 2 {
		t.Errorf("high outliers not clamped: %v", h.Bins)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := mustHistogram(t, 0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Errorf("median estimate = %v", med)
	}
	if got := mustHistogram(t, 0, 1, 4).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestHistogramBadConfig(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{
		{0, 10, 0},
		{10, 10, 4},
		{10, 5, 4},
	} {
		h, err := NewHistogram(c.lo, c.hi, c.n)
		if err == nil || h != nil {
			t.Errorf("NewHistogram(%g, %g, %d): expected error, got %v", c.lo, c.hi, c.n, h)
		}
		if !errors.Is(err, cfgerr.ErrBadConfig) {
			t.Errorf("NewHistogram(%g, %g, %d): error %v does not wrap ErrBadConfig", c.lo, c.hi, c.n, err)
		}
	}
}

func TestHistogramCountConservedProperty(t *testing.T) {
	f := func(vs []float64) bool {
		h, err := NewHistogram(-50, 50, 7)
		if err != nil {
			return false
		}
		n := 0
		for _, v := range vs {
			if v != v { // NaN guard
				continue
			}
			h.Add(v)
			n++
		}
		sum := 0
		for _, c := range h.Bins {
			sum += c
		}
		return sum == n && h.N() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := mustHistogram(t, 0, 4, 2)
	h.Add(1)
	h.Add(3)
	h.Add(3.5)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("render lines = %d, want 2:\n%s", lines, out)
	}
}

package runner

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/serverless"
	"lukewarm/internal/workload"
)

// testEngine builds an engine with the given worker count and no disk tier.
func testEngine(t *testing.T, jobs int) *Engine {
	t.Helper()
	e, err := New(Config{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// quickCells builds a small standard-cell batch spanning configurations.
func quickCells() []Cell {
	jb := core.DefaultConfig()
	var cells []Cell
	for _, w := range []string{"Auth-G", "Email-P"} {
		for _, c := range []Cell{
			{Workload: w, CPU: cpu.SkylakeConfig(), Mode: Lukewarm},
			{Workload: w, CPU: cpu.SkylakeConfig(), Jukebox: &jb, Mode: Lukewarm},
			{Workload: w, CPU: cpu.SkylakeConfig(), Mode: Reference},
		} {
			c.Warmup, c.Measure = 1, 1
			cells = append(cells, c)
		}
	}
	return cells
}

func TestMapOnOrderAndConcurrency(t *testing.T) {
	for _, jobs := range []int{1, 3, 8, 100} {
		e := testEngine(t, jobs)
		got, err := MapOn(e, 20, func(i int) string { return fmt.Sprint(i) },
			func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapOnLowestIndexError(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		e := testEngine(t, jobs)
		var ran atomic.Int64
		_, err := MapOn(e, 10, func(i int) string { return "u" },
			func(i int) (int, error) {
				ran.Add(1)
				if i == 7 || i == 3 {
					return 0, fmt.Errorf("unit %d failed", i)
				}
				return i, nil
			})
		if err == nil || !strings.Contains(err.Error(), "unit 3") {
			t.Errorf("jobs=%d: err = %v, want lowest-index unit 3", jobs, err)
		}
		if ran.Load() != 10 {
			t.Errorf("jobs=%d: ran %d units, want all 10 despite failures", jobs, ran.Load())
		}
	}
}

func TestMapOnEmpty(t *testing.T) {
	e := testEngine(t, 4)
	got, err := MapOn(e, 0, nil, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("MapOn(0) = %v, %v", got, err)
	}
}

func TestCellKey(t *testing.T) {
	base := Cell{Workload: "Auth-G", CPU: cpu.SkylakeConfig(), Mode: Lukewarm, Warmup: 1, Measure: 2}
	if base.Key() != base.Key() {
		t.Error("key not deterministic")
	}
	jb := core.DefaultConfig()
	jb2 := core.DefaultConfig()
	withJB := base
	withJB.Jukebox = &jb
	sameJB := base
	sameJB.Jukebox = &jb2
	if withJB.Key() != sameJB.Key() {
		t.Error("equal Jukebox configs behind distinct pointers must share a key")
	}
	mutants := []func(*Cell){
		func(c *Cell) { c.Workload = "Email-P" },
		func(c *Cell) { c.CPU = cpu.BroadwellConfig() },
		func(c *Cell) { c.Perfect = true },
		func(c *Cell) { c.Mode = Reference },
		func(c *Cell) { c.Warmup = 9 },
		func(c *Cell) { c.Measure = 9 },
		func(c *Cell) { c.Audit = true },
		func(c *Cell) { c.Variant = "custom" },
		func(c *Cell) { jb := core.DefaultConfig(); c.Jukebox = &jb },
		func(c *Cell) { jb := core.DefaultConfig(); jb.MetadataBytes *= 2; c.Jukebox = &jb },
	}
	seen := map[uint64]int{base.Key(): -1}
	for i, mutate := range mutants {
		c := base
		mutate(&c)
		if prev, dup := seen[c.Key()]; dup {
			t.Errorf("mutant %d collides with %d", i, prev)
		}
		seen[c.Key()] = i
	}
}

func TestExecuteRejectsVariantCells(t *testing.T) {
	_, err := Execute(Cell{Workload: "Auth-G", CPU: cpu.SkylakeConfig(), Variant: "custom", Measure: 1})
	if err == nil {
		t.Fatal("Execute accepted a variant cell")
	}
}

func TestMeasureDeterministicAcrossJobs(t *testing.T) {
	cells := quickCells()
	ref, err := testEngine(t, 1).Measure(cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8} {
		got, err := testEngine(t, jobs).Measure(cells)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("jobs=%d: measurements differ from jobs=1", jobs)
		}
	}
}

func TestMeasureMemoizes(t *testing.T) {
	e := testEngine(t, 4)
	cells := quickCells()
	first, err := e.Measure(cells)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Cells != uint64(len(cells)) || st.CacheHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	again, err := e.Measure(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cached results differ from executed results")
	}
	st = e.Stats()
	if st.CacheHits != uint64(len(cells)) {
		t.Errorf("warm stats = %+v, want %d hits", st, len(cells))
	}
}

func TestMeasureFuncCustomExecutorAndCachedReentrancy(t *testing.T) {
	e := testEngine(t, 4)
	var execs atomic.Int64
	exec := func(c Cell) (Measurement, error) {
		execs.Add(1)
		return Measurement{Instrs: uint64(len(c.Variant))}, nil
	}
	cells := []Cell{
		{Workload: "Auth-G", Variant: "v1", Measure: 1},
		{Workload: "Auth-G", Variant: "custom", Measure: 1},
	}
	ms, err := e.MeasureFunc(cells, exec)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Instrs != 2 || ms[1].Instrs != 6 {
		t.Errorf("ms = %+v", ms)
	}
	// Cached is the re-entrant path: memoized sub-measurements inside MapOn
	// units must not deadlock and must hit the same cache.
	_, err = MapOn(e, 4, func(int) string { return "outer" }, func(i int) (int, error) {
		m, err := e.Cached(cells[0], exec)
		return int(m.Instrs), err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("executor ran %d times, want 2 (everything else cached)", n)
	}
}

// TestSharedProgramConcurrentWalks pins the library-wide determinism audit:
// programs are immutable after construction, so concurrent cells may walk
// one shared *Program (as the Scaling and ServerSim experiments do when they
// deploy the same suite into parallel traffic simulations). Run under -race,
// this fails loudly if anyone adds mutable walk state to Program.
func TestSharedProgramConcurrentWalks(t *testing.T) {
	w, err := workload.ByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	e := testEngine(t, 8)
	cpis, err := MapOn(e, 8, func(i int) string { return fmt.Sprintf("walk%d", i) },
		func(i int) (float64, error) {
			srv := serverless.New(serverless.Config{CPU: cpu.SkylakeConfig()})
			inst := srv.Deploy(w) // every unit shares w.Program
			return srv.RunLukewarm(inst, 2).CPI(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cpis {
		if c != cpis[0] {
			t.Fatalf("walk %d CPI %v != walk 0 CPI %v: shared program walks are not deterministic", i, c, cpis[0])
		}
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := Measurement{Instrs: 123, Cycles: 456, MetaBytes: 7}
	c1.Put(42, m)

	// A fresh cache over the same directory must hit from disk.
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(42)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Fatalf("disk get = %+v, %v", got, ok)
	}
	if c2.Len() != 1 {
		t.Errorf("disk hit not promoted to memory: len = %d", c2.Len())
	}

	// Corrupt entries are misses and get removed.
	path := filepath.Join(dir, fmt.Sprintf("%016x.gob", uint64(99)))
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(99); ok {
		t.Error("corrupt entry reported as hit")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt entry not removed")
	}

	// Memory-only cache misses cleanly.
	c3, _ := NewCache("")
	if _, ok := c3.Get(42); ok {
		t.Error("memory-only cache hit a disk entry")
	}
}

func TestEngineDiskCacheAcrossProcessesSimulated(t *testing.T) {
	dir := t.TempDir()
	cells := quickCells()
	e1, err := New(Config{Jobs: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first, err := e1.Measure(cells)
	if err != nil {
		t.Fatal(err)
	}
	// A second engine over the same directory stands in for a new process.
	e2, err := New(Config{Jobs: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	again, err := e2.Measure(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("disk-cached results differ")
	}
	if st := e2.Stats(); st.CacheHits != uint64(len(cells)) {
		t.Errorf("second engine stats = %+v, want all hits", st)
	}
}

func TestProgressLines(t *testing.T) {
	var buf bytes.Buffer
	e, err := New(Config{Jobs: 1, Progress: &buf})
	if err != nil {
		t.Fatal(err)
	}
	e.SetPhase("figX")
	if _, err := MapOn(e, 2, func(i int) string { return fmt.Sprintf("unit%d", i) },
		func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[1/2] figX unit0", "[2/2] figX unit1"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output %q missing %q", out, want)
		}
	}
}

func TestDefaultEngine(t *testing.T) {
	e := Default()
	if e.Jobs() < 1 {
		t.Errorf("Jobs = %d", e.Jobs())
	}
}

func TestModeString(t *testing.T) {
	if Reference.String() != "ref" || Lukewarm.String() != "lukewarm" {
		t.Error("mode strings changed; cache schema may need a bump")
	}
}

func TestCellLabel(t *testing.T) {
	jb := core.DefaultConfig()
	for _, tc := range []struct {
		cell Cell
		want string
	}{
		{Cell{Workload: "W", Mode: Lukewarm}, "W/lukewarm"},
		{Cell{Workload: "W", Mode: Reference}, "W/ref"},
		{Cell{Workload: "W", Jukebox: &jb}, "W/jukebox"},
		{Cell{Workload: "W", Perfect: true}, "W/perfect"},
		{Cell{Workload: "W", Variant: "v", Jukebox: &jb}, "W/v"},
	} {
		if got := tc.cell.Label(); got != tc.want {
			t.Errorf("Label() = %q, want %q", got, tc.want)
		}
	}
}

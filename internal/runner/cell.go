package runner

import (
	"fmt"
	"hash/fnv"

	"lukewarm/internal/cluster"
	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/mem"
	"lukewarm/internal/reap"
	"lukewarm/internal/serverless"
	"lukewarm/internal/topdown"
	"lukewarm/internal/workload"
)

// SchemaVersion is folded into every cache key. Bump it whenever the
// Measurement layout or the simulator's semantics change, so stale on-disk
// cache entries can never be mistaken for current results — invalidation by
// construction, no cleanup pass needed.
//
// v2: Measurement gained the Traffic field (scheduling experiments).
// v3: Measurement gained the Cluster field and TrafficSummary gained
// Offered/Failed (fleet simulation).
// v4: Cells gained the Reap field and Measurement the Reap stats (REAP
// working-set restore; the data-access observer also shifts prefetcher
// composition semantics).
// v5: TrafficSummary gained the readiness-tier partition and the predictive
// pre-warm ledger (internal/predict).
const SchemaVersion = 5

// Mode selects the execution regime of a measurement cell.
type Mode uint8

// The paper's two regimes (Sec. 2.3).
const (
	// Reference: back-to-back invocations, fully warm.
	Reference Mode = iota
	// Lukewarm: full microarchitectural flush before every invocation — the
	// interleaved/baseline configuration.
	Lukewarm
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Reference {
		return "ref"
	}
	return "lukewarm"
}

// Cell describes one independent simulation: which workload runs on which
// platform under which regime, and how much of it is measured. Cells are
// pure values — the executor builds a fresh server from the content, so two
// cells with equal content always produce equal measurements. That property
// is what makes them content-addressable.
type Cell struct {
	// Workload names the function (workload.ByName).
	Workload string
	// CPU is the platform configuration.
	CPU cpu.Config
	// Jukebox, when non-nil, deploys the instance with a Jukebox.
	Jukebox *core.Config
	// Reap, when non-nil, deploys the instance with a REAP working-set
	// recorder/restorer (internal/reap).
	Reap *reap.Config
	// Perfect services instruction fetches at L1 latency (Fig. 10's bound).
	Perfect bool
	// Mode is the execution regime.
	Mode Mode
	// Warmup and Measure are the unmeasured and measured invocation counts.
	Warmup, Measure int
	// Audit cross-checks every measured invocation against the faults
	// package's conservation invariants.
	Audit bool
	// Variant tags cells that need a custom executor (Engine.MeasureFunc):
	// comparator prefetchers, compaction, snapshot adoption. Standard cells
	// leave it empty. The tag participates in the cache key, so custom
	// setups can never collide with standard ones.
	Variant string
}

// Label names the cell in progress lines and telemetry.
func (c Cell) Label() string {
	tag := c.Mode.String()
	switch {
	case c.Variant != "":
		tag = c.Variant
	case c.Reap != nil && c.Jukebox != nil:
		tag = "reap+jukebox"
	case c.Reap != nil:
		tag = "reap"
	case c.Jukebox != nil:
		tag = "jukebox"
	case c.Perfect:
		tag = "perfect"
	}
	return c.Workload + "/" + tag
}

// Key returns the cell's content address: an FNV-1a hash over a canonical
// rendering of every field that influences the measurement, plus the schema
// version. Configurations are flat value structs, so their fmt rendering is
// canonical; any config change — a cache size, a Jukebox budget, a penalty
// cycle — lands the cell at a different address.
func (c Cell) Key() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "schema=%d|wl=%s|cpu=%+v|perfect=%t|mode=%d|warm=%d|meas=%d|audit=%t|variant=%s",
		SchemaVersion, c.Workload, c.CPU, c.Perfect, c.Mode, c.Warmup, c.Measure, c.Audit, c.Variant)
	if c.Jukebox != nil {
		fmt.Fprintf(h, "|jb=%+v", *c.Jukebox)
	} else {
		fmt.Fprintf(h, "|jb=nil")
	}
	if c.Reap != nil {
		fmt.Fprintf(h, "|reap=%+v", *c.Reap)
	} else {
		fmt.Fprintf(h, "|reap=nil")
	}
	return h.Sum64()
}

// Measurement aggregates one cell's measurement window. It is the unit of
// caching: every field is a plain exported value, so it round-trips through
// gob unchanged.
type Measurement struct {
	Stack  topdown.Stack
	Instrs uint64
	Cycles mem.Cycle
	L1I    mem.CacheStats
	L2     mem.CacheStats
	LLC    mem.CacheStats
	DRAM   map[mem.TrafficClass]uint64 // bytes by class
	JB     core.Stats
	// Reap holds the instance's REAP recorder/restorer counters; zero for
	// cells without a Reap configuration.
	Reap reap.Stats
	// FirstInvCycles is the first measured invocation's cycle count — the
	// start latency a custom executor chose to surface (the coldstart
	// comparator); zero for standard cells.
	FirstInvCycles mem.Cycle
	// MetaBytes is the per-instance metadata cost a custom executor chose to
	// report (comparator prefetchers); zero for standard cells, whose
	// Jukebox cost is in JB.
	MetaBytes int
	// Traffic holds a whole-server traffic simulation's summary for cells
	// whose custom executor runs ServeTraffic instead of a per-instance
	// measurement window (the scheduling experiment); nil for standard
	// cells.
	Traffic *serverless.TrafficSummary
	// Cluster holds a fleet simulation's summary for cells whose custom
	// executor runs cluster.Run (the cluster experiment); nil otherwise.
	Cluster *cluster.Summary
}

// CPI reports the window's cycles per instruction.
func (m Measurement) CPI() float64 {
	if m.Instrs == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Instrs)
}

// MPKI reports misses per kilo-instruction from a cache's counters.
func (m Measurement) MPKI(s mem.CacheStats, k mem.Kind) float64 {
	if m.Instrs == 0 {
		return 0
	}
	return float64(s.DemandMisses[k]) / float64(m.Instrs) * 1000
}

// Execute runs one standard cell from scratch: a fresh single-purpose server,
// one deployed instance, warmup then measurement. It is the default executor
// behind Engine.Measure.
func Execute(c Cell) (Measurement, error) {
	if c.Variant != "" {
		return Measurement{}, fmt.Errorf("runner: cell %s has variant %q but no custom executor", c.Label(), c.Variant)
	}
	w, err := workload.ByName(c.Workload)
	if err != nil {
		return Measurement{}, err
	}
	srv := serverless.New(serverless.Config{CPU: c.CPU, Jukebox: c.Jukebox, Reap: c.Reap, PerfectICache: c.Perfect})
	inst := srv.Deploy(w)
	return MeasureInstance(srv, inst, c.Mode, c.Warmup, c.Measure, c.Audit)
}

// MeasureInstance runs warmup then measure invocations of inst under md on
// srv and returns the aggregated measurement window. Custom executors use it
// after their own server setup. With audit set, every measured invocation
// and the window's cache counters are checked against the faults package's
// conservation invariants.
func MeasureInstance(srv *serverless.Server, inst *serverless.Instance, md Mode, warmup, measure int, audit bool) (Measurement, error) {
	invoke := func() cpu.RunResult {
		if md == Lukewarm {
			srv.FlushMicroarch()
		}
		return srv.Invoke(inst)
	}
	for i := 0; i < warmup; i++ {
		invoke()
	}
	srv.Core.Hier.ResetStats()
	srv.Core.MMU.ResetStats()
	srv.Core.BP.ResetStats()
	srv.Core.BTB.ResetStats()
	if inst.Jukebox != nil {
		inst.Jukebox.ResetStats()
	}
	if inst.Reap != nil {
		inst.Reap.ResetStats()
	}

	var out Measurement
	for i := 0; i < measure; i++ {
		res := invoke()
		if audit {
			if err := faults.Audit(res); err != nil {
				return out, fmt.Errorf("%s invocation %d: %w", inst.Workload.Name, i, err)
			}
		}
		out.Stack.Merge(res.Stack)
		out.Instrs += res.Instrs
		out.Cycles += res.Cycles
	}
	hier := srv.Core.Hier
	hier.DrainUnusedPrefetches()
	out.L1I = hier.L1I.Stats
	out.L2 = hier.L2.Stats
	out.LLC = hier.LLC.Stats
	out.DRAM = map[mem.TrafficClass]uint64{}
	for _, cls := range []mem.TrafficClass{mem.TrafficDemand, mem.TrafficPrefetch,
		mem.TrafficMetadataRecord, mem.TrafficMetadataReplay, mem.TrafficWriteback} {
		out.DRAM[cls] = hier.DRAM.Bytes(cls)
	}
	if inst.Jukebox != nil {
		out.JB = inst.Jukebox.Stats
		if audit {
			if err := faults.AuditJukebox(out.JB); err != nil {
				return out, fmt.Errorf("%s: %w", inst.Workload.Name, err)
			}
		}
	}
	if inst.Reap != nil {
		out.Reap = inst.Reap.Stats
		if audit {
			if err := faults.AuditReap(out.Reap); err != nil {
				return out, fmt.Errorf("%s: %w", inst.Workload.Name, err)
			}
		}
	}
	// Cache-counter conservation holds within a window whenever the window
	// starts from flushed caches (the lukewarm regime); reference windows
	// legitimately carry pre-reset prefetched lines across the stats reset.
	if audit && md == Lukewarm {
		for _, c := range []struct {
			name  string
			stats mem.CacheStats
		}{{"L1I", out.L1I}, {"L2", out.L2}, {"LLC", out.LLC}} {
			if err := faults.AuditCache(c.name, c.stats); err != nil {
				return out, fmt.Errorf("%s: %w", inst.Workload.Name, err)
			}
		}
	}
	return out, nil
}

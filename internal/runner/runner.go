// Package runner is the experiment execution engine: it takes sets of
// independent simulation cells (workload × platform config × execution mode),
// fans them out across a bounded worker pool, and merges the results in
// deterministic submission order, so any experiment's rendered tables are
// byte-identical regardless of the worker count.
//
// On top of the pool the engine layers a content-addressed memoization cache
// (see cell.go for the key definition and cache.go for the tiers) and run
// telemetry: per-cell wall time, cache hit/miss counters, and optional live
// progress lines. The experiment runners in internal/experiments submit all
// their measurements through one Engine, which the lukewarm CLI configures
// from its -jobs, -cache and -progress flags.
//
// Determinism contract: a cell's result depends only on the cell's content,
// never on scheduling. Every cell builds its own simulated server from its
// own configuration, and all randomness in the stack flows through seeded
// per-instance streams (package program), so concurrent execution cannot
// perturb results. The engine's tests prove this under -race and across
// worker counts.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes an Engine. Every field value is meaningful — zero
// values select documented defaults — so there is nothing to reject.
//
//lukewarm:novalidate all field values are valid; zero values select defaults (Jobs -> GOMAXPROCS, CacheDir -> no disk tier, Now -> wall clock)
type Config struct {
	// Jobs is the maximum number of cells simulated concurrently. Zero or
	// negative selects GOMAXPROCS. A batch of n cells uses min(Jobs, n)
	// workers.
	Jobs int
	// CacheDir, when non-empty, adds an on-disk tier to the result cache:
	// cells memoized there are skipped across process runs. The directory is
	// created if missing.
	CacheDir string
	// Progress, when non-nil, receives one line per completed cell:
	//
	//	[12/60] fig10 Pay-N/jukebox 1.8s
	//
	// Writes are serialized; direct this at stderr so stdout tables stay
	// byte-identical.
	Progress io.Writer
	// Now is the engine's clock, read once per cell start and finish for
	// telemetry (progress lines, CellWall, -report wall times). Nil selects
	// the wall clock. Telemetry is the engine's only time source — results
	// never depend on it — and tests inject a fake here to make progress
	// and report timing deterministic.
	Now func() time.Time
}

// Engine executes cell batches. Create one with New and share it across an
// entire run so the cache and telemetry span experiments; the zero value is
// not usable.
type Engine struct {
	jobs     int
	cache    *Cache
	progress io.Writer
	now      func() time.Time // telemetry clock seam; see Config.Now

	mu    sync.Mutex // guards progress writes and phase
	phase string

	cells    atomic.Uint64
	hits     atomic.Uint64
	cellWall atomic.Int64 // summed per-cell wall time, ns
}

// New builds an engine. An error is returned only when the on-disk cache
// directory cannot be created.
func New(cfg Config) (*Engine, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	if cfg.Now == nil {
		//lukewarm:wallclock the engine's sole wall-clock seam; telemetry only, tests inject Config.Now
		cfg.Now = time.Now
	}
	return &Engine{jobs: cfg.Jobs, cache: cache, progress: cfg.Progress, now: cfg.Now}, nil
}

// Default builds the engine experiments fall back on when the caller did not
// supply one: GOMAXPROCS workers, in-memory cache, no progress output.
func Default() *Engine {
	e, _ := New(Config{}) // no disk tier: New cannot fail
	return e
}

// Jobs reports the configured worker cap.
func (e *Engine) Jobs() int { return e.jobs }

// SetPhase labels subsequent progress lines (typically the experiment name).
func (e *Engine) SetPhase(name string) {
	e.mu.Lock()
	e.phase = name
	e.mu.Unlock()
}

// Stats is a snapshot of the engine's telemetry counters. Cells counts every
// unit executed (including cache hits); CellWall sums per-cell wall time
// across workers, so it exceeds elapsed time when cells run concurrently.
type Stats struct {
	Cells     uint64
	CacheHits uint64
	CellWall  time.Duration
}

// Stats returns the current counter snapshot. Take deltas of two snapshots
// for per-experiment accounting.
func (e *Engine) Stats() Stats {
	return Stats{
		Cells:     e.cells.Load(),
		CacheHits: e.hits.Load(),
		CellWall:  time.Duration(e.cellWall.Load()),
	}
}

// note records one finished cell and emits its progress line.
func (e *Engine) note(done, total int, label string, wall time.Duration, hit bool) {
	e.cells.Add(1)
	if hit {
		e.hits.Add(1)
	}
	e.cellWall.Add(int64(wall))
	if e.progress == nil {
		return
	}
	suffix := ""
	if hit {
		suffix = " (cached)"
	}
	e.mu.Lock()
	phase := e.phase
	if phase != "" {
		phase += " "
	}
	fmt.Fprintf(e.progress, "[%d/%d] %s%s %s%s\n",
		done, total, phase, label, wall.Round(time.Millisecond), suffix)
	e.mu.Unlock()
}

// MapOn runs fn(i) for every i in [0, n) on the engine's worker pool and
// returns the results in index order — the deterministic-merge primitive the
// cell API is built on. Use it directly for experiment units that are not
// plain measurement cells (traffic simulations, footprint walks, chaos
// cells). label(i) names unit i in progress lines. All units run even if one
// fails; the returned error is the failing unit with the lowest index, so
// error reporting is as deterministic as the results.
//
// fn must not call MapOn or the Measure methods on the same engine (workers
// would deadlock waiting for themselves); Engine.Cached is the re-entrant
// way to memoize sub-measurements inside a unit.
func MapOn[T any](e *Engine, n int, label func(int) string, fn func(int) (T, error)) ([]T, error) {
	return mapHit(e, n, label, func(i int) (T, bool, error) {
		v, err := fn(i)
		return v, false, err
	})
}

// mapHit is MapOn with a per-unit cache-hit flag for telemetry.
func mapHit[T any](e *Engine, n int, label func(int) string, fn func(int) (T, bool, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	var done atomic.Int64

	run := func(i int) {
		start := e.now()
		var hit bool
		results[i], hit, errs[i] = fn(i)
		e.note(int(done.Add(1)), n, label(i), e.now().Sub(start), hit)
	}

	if workers := min(e.jobs, n); workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			run(i)
		}
	}

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Measure executes a batch of standard cells (Variant == "") through the
// pool and the cache, returning measurements in cell order.
func (e *Engine) Measure(cells []Cell) ([]Measurement, error) {
	return e.MeasureFunc(cells, Execute)
}

// MeasureFunc is Measure with a custom executor, for cells whose server
// setup goes beyond Execute's (attached comparator prefetchers, mid-run
// page compaction, snapshot adoption...). Such cells carry a non-empty
// Variant naming the setup, which keys the cache alongside the standard
// fields; exec is only invoked on cache misses.
func (e *Engine) MeasureFunc(cells []Cell, exec func(Cell) (Measurement, error)) ([]Measurement, error) {
	return mapHit(e, len(cells), func(i int) string { return cells[i].Label() },
		func(i int) (Measurement, bool, error) {
			return e.lookup(cells[i], exec)
		})
}

// Cached memoizes one cell through the engine's cache, executing it on a
// miss. Unlike the batch methods it runs on the caller's goroutine, so it is
// safe (and intended) to call from inside a MapOn unit that needs cacheable
// sub-measurements.
func (e *Engine) Cached(c Cell, exec func(Cell) (Measurement, error)) (Measurement, error) {
	m, _, err := e.lookup(c, exec)
	return m, err
}

// lookup is the cache-or-execute core shared by MeasureFunc and Cached.
func (e *Engine) lookup(c Cell, exec func(Cell) (Measurement, error)) (Measurement, bool, error) {
	key := c.Key()
	if m, ok := e.cache.Get(key); ok {
		return m, true, nil
	}
	m, err := exec(c)
	if err != nil {
		return m, false, err
	}
	e.cache.Put(key, m)
	return m, false, nil
}

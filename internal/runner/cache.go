package runner

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the two-tier content-addressed result store. The in-memory tier
// is always on: within one process, any two experiments that submit the same
// cell share one simulation. The on-disk tier (one gob file per key) is
// optional and makes repeated runs of the same figure start warm across
// processes.
//
// There is no explicit invalidation: keys embed SchemaVersion and every
// config field (see Cell.Key), so entries written under a different schema
// or configuration are simply never looked up again. Undecodable disk
// entries — a torn write, a foreign file — are treated as misses and
// removed.
type Cache struct {
	mu  sync.Mutex
	mem map[uint64]Measurement
	dir string // empty: memory tier only
}

// NewCache builds a cache; dir == "" selects the memory tier only. The
// directory is created if missing.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: cache dir: %w", err)
		}
	}
	return &Cache{mem: map[uint64]Measurement{}, dir: dir}, nil
}

// path is the disk location of key's entry.
func (c *Cache) path(key uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("%016x.gob", key))
}

// Get looks key up in both tiers, promoting disk hits into memory.
func (c *Cache) Get(key uint64) (Measurement, bool) {
	c.mu.Lock()
	m, ok := c.mem[key]
	c.mu.Unlock()
	if ok || c.dir == "" {
		return m, ok
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return Measurement{}, false
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		os.Remove(c.path(key)) // corrupt entry: drop it and re-measure
		return Measurement{}, false
	}
	c.mu.Lock()
	c.mem[key] = m
	c.mu.Unlock()
	return m, true
}

// Put stores key in memory and, when configured, on disk. Disk writes go
// through a temp file and rename, so a crash can leave at worst a stray
// .tmp, never a torn entry; write failures silently degrade to memory-only
// caching (the result itself is already safe in the memory tier).
func (c *Cache) Put(key uint64, m Measurement) {
	c.mu.Lock()
	c.mem[key] = m
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// Len reports the number of in-memory entries (for tests and telemetry).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

package serverless

import (
	"math"
	"strings"
	"testing"

	"lukewarm/internal/core"
	"lukewarm/internal/predict"
	"lukewarm/internal/reap"
	"lukewarm/internal/workload"
)

// prewarmServer builds a host whose instances carry both warm-up mechanisms.
func prewarmServer() *Server {
	jb := core.DefaultConfig()
	rc := reap.DefaultConfig()
	return New(Config{Jukebox: &jb, Reap: &rc})
}

// predictTraffic is fixed-spacing traffic (perfectly predictable) with the
// named forecaster armed; fc "" leaves prediction off.
func predictTraffic(fc string, leadMs float64) TrafficConfig {
	cfg := TrafficConfig{
		MeanIATms:              50,
		InvocationsPerInstance: 6,
		NoKeepAlive:            true,
		Seed:                   3,
	}
	if fc != "" {
		cfg.Predict = &predict.Config{Forecaster: predict.NewForecaster(fc), LeadMs: leadMs}
	}
	return cfg
}

// TestPrewarmOracleUsedSkipsReplay drives the full integration: on a
// perfectly predictable schedule the oracle's pre-warms are all used, every
// used pre-warm makes its invocation skip the dispatch replay, the
// readiness-tier partition accounts for the pre-warmed tail of each gap, and
// the per-function breakdown conserves the ledger.
func TestPrewarmOracleUsedSkipsReplay(t *testing.T) {
	s := prewarmServer()
	deploySubset(t, s, "Auth-G", "Email-P")
	res := mustServe(t, s, predictTraffic("oracle", 4))

	l := res.Prewarm
	if l.Used == 0 {
		t.Fatalf("oracle on fixed spacing committed no used pre-warms: %+v", l)
	}
	if l.ReplaySkips != l.Used {
		t.Errorf("replay skips %d != used %d", l.ReplaySkips, l.Used)
	}
	if l.Scheduled != l.Used+l.Partial+l.Wasted {
		t.Errorf("ledger does not partition: %+v", l)
	}
	if l.Partial != 0 || l.Wasted != l.Expired {
		t.Errorf("oracle recorded mid-run misses: %+v", l)
	}
	if l.MeanAbsErrMs() > 1e-6 {
		t.Errorf("oracle prediction error %g ms, want ~0", l.MeanAbsErrMs())
	}
	if res.TierPrewarmedMs <= 0 {
		t.Errorf("no pre-warmed tier time despite %d used pre-warms", l.Used)
	}
	sum := res.TierColdMs + res.TierResidentMs + res.TierPrewarmedMs
	if math.Abs(sum-res.IdleMs) > 1e-6*res.IdleMs+1e-3 {
		t.Errorf("tier partition broke: %g + %g + %g != %g",
			res.TierColdMs, res.TierResidentMs, res.TierPrewarmedMs, res.IdleMs)
	}
	var used, wasted int
	for _, f := range res.PerFunction {
		used += f.PrewarmsUsed
		wasted += f.PrewarmsWasted
	}
	if used != l.Used || wasted != l.Wasted {
		t.Errorf("per-function pre-warms %d used / %d wasted != ledger %d / %d",
			used, wasted, l.Used, l.Wasted)
	}
	if !strings.Contains(res.String(), "pre-warms") {
		t.Errorf("summary does not render the pre-warm ledger: %s", res.String())
	}
}

// TestPrewarmWastedOnBursty drives the misprediction path: the histogram
// forecaster under the adversarial bursty shape fires into lulls, so the
// wasted side of the ledger fills with real replay bytes.
func TestPrewarmWastedOnBursty(t *testing.T) {
	s := prewarmServer()
	deploySubset(t, s, "Auth-G", "Email-P")
	cfg := predictTraffic("histpeak", 4)
	cfg.Bursty = true
	cfg.InvocationsPerInstance = 24
	res := mustServe(t, s, cfg)

	l := res.Prewarm
	if l.Scheduled == 0 {
		t.Fatalf("histogram forecaster never scheduled: %+v", l)
	}
	if l.Wasted == 0 {
		t.Errorf("bursty shape produced no wasted pre-warms: %+v", l)
	}
	if l.Wasted > 0 && l.WastedReplayBytes == 0 {
		t.Errorf("wasted pre-warms with no wasted bytes: %+v", l)
	}
	if l.MeanAbsErrMs() <= 0 {
		t.Errorf("bursty prediction error %g ms, want positive", l.MeanAbsErrMs())
	}
}

// TestSyncReplayChargedOnBareNotPrewarmed checks the synchronous-restore
// semantics: with SyncReplay the bare baseline pays its dispatch replay on
// the critical path (service time, CPI, latency), while a timely oracle
// pre-warm has already run the replay off the critical path and escapes the
// charge.
func TestSyncReplayChargedOnBareNotPrewarmed(t *testing.T) {
	run := func(fc string, sync bool) TrafficResult {
		s := prewarmServer()
		deploySubset(t, s, "Auth-G", "Email-P")
		cfg := predictTraffic(fc, 4)
		cfg.SyncReplay = sync
		return mustServe(t, s, cfg)
	}

	async := run("", false)
	if async.SyncReplays != 0 || async.SyncReplayMs != 0 {
		t.Fatalf("sync counters without SyncReplay: %d, %g ms", async.SyncReplays, async.SyncReplayMs)
	}
	bare := run("", true)
	if bare.SyncReplays == 0 || bare.SyncReplayMs <= 0 {
		t.Fatalf("bare SyncReplay run charged nothing: %d, %g ms", bare.SyncReplays, bare.SyncReplayMs)
	}
	if bare.ServiceCycles.Mean() <= async.ServiceCycles.Mean() {
		t.Errorf("sync service %.0f cycles not above async %.0f",
			bare.ServiceCycles.Mean(), async.ServiceCycles.Mean())
	}
	if bare.CPI.Mean() <= async.CPI.Mean() {
		t.Errorf("sync CPI %.4f not above async %.4f", bare.CPI.Mean(), async.CPI.Mean())
	}
	if !strings.Contains(bare.String(), "sync replays") {
		t.Errorf("summary does not render sync replays: %s", bare.String())
	}

	oracle := run("oracle", true)
	if oracle.Prewarm.Used == 0 {
		t.Fatalf("oracle committed no used pre-warms: %+v", oracle.Prewarm)
	}
	if oracle.SyncReplayMs >= bare.SyncReplayMs {
		t.Errorf("pre-warmed run paid %.3f ms sync replay, bare paid %.3f ms — pre-warming should shed the charge",
			oracle.SyncReplayMs, bare.SyncReplayMs)
	}
	if oracle.CPI.Mean() >= bare.CPI.Mean() {
		t.Errorf("pre-warmed CPI %.4f not below bare sync CPI %.4f", oracle.CPI.Mean(), bare.CPI.Mean())
	}
}

// TestPrewarmBudgetDenies checks the shared-allowance plumbing at the
// traffic level: a one-grant budget stops the forecaster after its first
// pre-warm and the denials are ledgered, not silently dropped.
func TestPrewarmBudgetDenies(t *testing.T) {
	s := prewarmServer()
	deploySubset(t, s, "Auth-G", "Email-P")
	cfg := predictTraffic("oracle", 4)
	cfg.Predict.Budget = predict.NewBudget(1, 0)
	res := mustServe(t, s, cfg)

	l := res.Prewarm
	if l.Scheduled > 1 {
		t.Errorf("budget of 1 let %d pre-warms through", l.Scheduled)
	}
	if l.BudgetDenied == 0 {
		t.Errorf("no budget denials recorded: %+v", l)
	}
}

// BenchmarkPrewarmSweep measures one pre-warm sweep cell end to end: bursty
// traffic over two instances with both mechanisms deployed, the histogram
// forecaster armed and synchronous restore semantics — the kernel the
// `lukewarm prewarm` experiment runs 40 times.
func BenchmarkPrewarmSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := prewarmServer()
		for _, n := range []string{"Auth-G", "Email-P"} {
			w, err := workload.ByName(n)
			if err != nil {
				b.Fatal(err)
			}
			s.Deploy(w)
		}
		cfg := predictTraffic("histpeak", 4)
		cfg.Bursty = true
		cfg.SyncReplay = true
		cfg.AmbientThrash = true
		cfg.InvocationsPerInstance = 16
		if _, err := s.ServeTraffic(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

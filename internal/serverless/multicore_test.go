package serverless

import (
	"testing"

	"lukewarm/internal/core"
	"lukewarm/internal/mem"
	"lukewarm/internal/workload"
)

func TestMultiCoreConstruction(t *testing.T) {
	s := New(Config{Cores: 4})
	if s.NumCores() != 4 {
		t.Fatalf("NumCores = %d", s.NumCores())
	}
	if s.Core != s.Cores[0] {
		t.Error("Core alias broken")
	}
	// Cores share the LLC and DRAM, but not private levels.
	if s.Cores[0].Hier.LLC != s.Cores[1].Hier.LLC {
		t.Error("LLC not shared")
	}
	if s.Cores[0].Hier.DRAM != s.Cores[1].Hier.DRAM {
		t.Error("DRAM not shared")
	}
	if s.Cores[0].Hier.L2 == s.Cores[1].Hier.L2 {
		t.Error("L2 must be private")
	}
	if s.Cores[0].MMU == s.Cores[1].MMU {
		t.Error("MMU must be private")
	}
}

func TestInvokeOnDifferentCores(t *testing.T) {
	s := New(Config{Cores: 2})
	inst := s.Deploy(mustWorkload(t, "Auth-G"))
	r0 := s.InvokeOn(0, inst)
	r1 := s.InvokeOn(1, inst)
	if r0.Instrs == 0 || r1.Instrs == 0 {
		t.Fatal("invocations empty")
	}
	// Core 1 was cold privately but shares the LLC core 0 warmed, so its
	// run lands between fully-warm and fully-lukewarm.
	if r1.CPI() <= 0 {
		t.Fatal("bad CPI")
	}
	if s.Cores[0].Hier.L1I.Stats.DemandAccesses[mem.Instr] == 0 ||
		s.Cores[1].Hier.L1I.Stats.DemandAccesses[mem.Instr] == 0 {
		t.Error("one core never fetched")
	}
}

func TestSharedLLCWarmsSecondCore(t *testing.T) {
	s := New(Config{Cores: 2})
	inst := s.Deploy(mustWorkload(t, "Auth-G"))
	s.InvokeOn(0, inst) // warms the shared LLC
	onWarmLLC := s.InvokeOn(1, inst)

	s2 := New(Config{Cores: 2})
	inst2 := s2.Deploy(mustWorkload(t, "Auth-G"))
	coldEverything := s2.InvokeOn(1, inst2)

	if onWarmLLC.Cycles >= coldEverything.Cycles {
		t.Errorf("shared LLC gave no benefit: %d vs %d", onWarmLLC.Cycles, coldEverything.Cycles)
	}
}

// TestJukeboxMigratesAcrossCores checks the Sec. 3.4.1 property this whole
// design hinges on: metadata lives in main memory, so an instance scheduled
// onto a different core still replays.
func TestJukeboxMigratesAcrossCores(t *testing.T) {
	jb := core.DefaultConfig()
	s := New(Config{Cores: 2, Jukebox: &jb})
	inst := s.Deploy(mustWorkload(t, "Auth-G"))

	// Record on core 0 (lukewarm).
	s.FlushMicroarch()
	s.InvokeOn(0, inst)
	if inst.Jukebox.ReplayBuffer().Len() == 0 {
		t.Fatal("nothing recorded on core 0")
	}

	// Replay on core 1, fully flushed: the replay must cover misses there.
	s.FlushMicroarch()
	s.Cores[1].Hier.ResetStats()
	s.InvokeOn(1, inst)
	l2 := s.Cores[1].Hier.L2.Stats
	if l2.PrefetchUsed[mem.Instr] == 0 {
		t.Fatal("no covered misses after migrating to core 1")
	}
	cov := float64(l2.PrefetchUsed[mem.Instr]) /
		float64(l2.PrefetchUsed[mem.Instr]+l2.DemandMisses[mem.Instr])
	if cov < 0.5 {
		t.Errorf("cross-core coverage = %.2f", cov)
	}
}

func TestMultiCoreTrafficScales(t *testing.T) {
	tc := TrafficConfig{
		MeanIATms:              3, // saturating load for one core
		Poisson:                true,
		InvocationsPerInstance: 3,
		Seed:                   5,
	}
	run := func(cores int) TrafficResult {
		s := New(Config{Cores: cores})
		for _, n := range []string{"Auth-G", "Email-P", "Pay-N", "Geo-G", "Prof-G", "Curr-N"} {
			s.Deploy(mustWorkload(t, n))
		}
		return mustServe(t, s, tc)
	}
	one := run(1)
	four := run(4)
	if four.Served != one.Served {
		t.Fatalf("served %d vs %d", four.Served, one.Served)
	}
	// More cores drain the same arrivals with less queueing.
	if four.LatencyCycles.Mean() >= one.LatencyCycles.Mean() {
		t.Errorf("4 cores not faster: latency %.0f vs %.0f",
			four.LatencyCycles.Mean(), one.LatencyCycles.Mean())
	}
	if four.BusyFraction >= one.BusyFraction {
		t.Errorf("4-core busy fraction %.2f not below 1-core %.2f",
			four.BusyFraction, one.BusyFraction)
	}
}

func TestPerCorePrefetcherAttachment(t *testing.T) {
	s := New(Config{Cores: 2})
	inst := s.Deploy(mustWorkload(t, "ProdL-G"))
	rec := &countingPF{}
	s.AttachCorePrefetcherOn(1, rec)
	s.InvokeOn(0, inst)
	if rec.fetches != 0 {
		t.Error("core-1 prefetcher saw core-0 traffic")
	}
	s.InvokeOn(1, inst)
	if rec.fetches == 0 {
		t.Error("core-1 prefetcher saw nothing on core 1")
	}
}

// countingPF is a minimal hook counter.
type countingPF struct{ fetches int }

func (c *countingPF) InvocationStart(mem.Cycle)                     {}
func (c *countingPF) InvocationEnd(mem.Cycle)                       {}
func (c *countingPF) OnFetch(mem.Cycle, uint64, uint64, mem.Result) { c.fetches++ }
func (c *countingPF) OnBlockRetire(mem.Cycle, uint64, uint64)       {}

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

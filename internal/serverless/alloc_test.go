package serverless

import (
	"testing"

	"lukewarm/internal/mem"
)

// TestInvokeWarmAllocs pins the server's warm invocation path at zero
// steady-state allocations: the pooled per-instance walker, the per-core
// prefetcher scratch, and the core's batch buffer must absorb everything
// after the first few invocations.
func TestInvokeWarmAllocs(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	inst := s.Instances()[0]
	for i := 0; i < 10; i++ {
		s.Invoke(inst)
	}
	avg := testing.AllocsPerRun(8, func() { s.Invoke(inst) })
	if avg != 0 {
		t.Fatalf("warm Invoke allocates %.2f objects/run, want 0", avg)
	}
}

// TestTrafficDispatchWarmAllocs pins the steady-state TrafficSim step. The
// only live allocation source is the amortized growth of the latency-sample
// slice, so a warm dispatch must average well under one object per step;
// anything more means a per-dispatch allocation crept back into the engine.
func TestTrafficDispatchWarmAllocs(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	ts, err := s.NewTrafficSim(DefaultTrafficConfig())
	if err != nil {
		t.Fatal(err)
	}
	inst := s.Instances()[0]
	at := s.Core.Now()
	step := func() {
		at += mem.Cycle(100_000)
		ts.Dispatch(inst, at, false, nil)
	}
	// Warm until the latency slice reaches a power-of-two capacity well
	// above the measured window, so append growth cannot fire mid-measure.
	for i := 0; i < 100; i++ {
		step()
	}
	avg := testing.AllocsPerRun(16, func() { step() })
	if avg > 0.5 {
		t.Fatalf("warm TrafficSim dispatch allocates %.2f objects/run, want < 0.5", avg)
	}
}

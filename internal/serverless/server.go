// Package serverless models the host side of the paper's setting: a cloud
// server keeping many warm function instances memory-resident, scheduling
// their invocations onto a core, and — crucially — the interleaving between
// invocations of a given instance that obliterates its microarchitectural
// state (Sec. 2.2).
//
// Three execution regimes are provided, matching the paper's methodology:
//
//   - Reference: back-to-back invocations of the same instance on the same
//     core with nothing disturbed — the fully warm lower bound (Sec. 2.3).
//   - Lukewarm: all microarchitectural state flushed between invocations —
//     exactly how the paper's simulated interleaving baseline is modeled
//     ("flushing all microarchitectural state in-between function
//     invocations", Sec. 5.2).
//   - Partial: an inter-arrival-time (IAT) dependent partial thrash, used
//     for the Fig. 1 IAT sweep: during the idle gap, co-resident instances
//     stream foreign state through the shared structures; each structure
//     loses 1-exp(-bytes/capacity) of its contents.
package serverless

import (
	"math"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/predict"
	"lukewarm/internal/program"
	"lukewarm/internal/reap"
	"lukewarm/internal/vm"
	"lukewarm/internal/workload"
)

// Config describes a server.
type Config struct {
	// CPU selects the platform (cpu.SkylakeConfig() by default).
	CPU cpu.Config
	// Cores is the number of cores (default 1). Cores have private L1s,
	// L2, branch state and TLBs; they share the LLC and the memory
	// controller, like the paper's 10-core host.
	Cores int
	// Jukebox, when non-nil, deploys every instance with its own Jukebox
	// using this configuration.
	Jukebox *core.Config
	// Reap, when non-nil, deploys every instance with a REAP working-set
	// recorder/restorer (internal/reap) using this configuration. It
	// composes with Jukebox and core prefetchers: REAP restores pages
	// into the LLC and TLBs, Jukebox replays instruction regions into the
	// L2.
	Reap *reap.Config
	// ThrashBytesPerMs is the volume of foreign microarchitectural state
	// streamed through the core and caches per millisecond of idle time at
	// the ambient server load (Fig. 1 runs at ~50% CPU load). The default
	// of 96 KB/ms puts the CPI knee at tens of milliseconds and saturation
	// near one second on the characterization host, as in Fig. 1.
	ThrashBytesPerMs int
	// PerfectICache services all instruction fetches at L1 latency
	// (the Fig. 10 upper bound).
	PerfectICache bool
}

// DefaultThrashBytesPerMs is the Fig. 1 interleaving intensity.
const DefaultThrashBytesPerMs = 96 << 10

// Instance is one warm, memory-resident function instance: its address
// space, its Jukebox metadata (if enabled), and its invocation counter.
type Instance struct {
	Workload workload.Workload
	AS       *vm.AddressSpace
	// Jukebox is the instance's prefetcher state, nil when disabled.
	Jukebox *core.Jukebox
	// Reap is the instance's working-set recorder/restorer, nil when
	// disabled. Its sealed manifest conceptually lives with the snapshot,
	// not the instance's memory, so it survives Evict.
	Reap *reap.Reap
	// Invocations counts invocations served.
	Invocations uint64
	srv         *Server
	// inv is the instance's pooled walker, reset per dispatch so the steady
	// state of a warm instance allocates nothing.
	inv program.Invocation
}

// Server is one simulated host with its co-resident instances. Core points
// at core 0 for the common single-core workflows; Cores holds all of them.
type Server struct {
	Core      *cpu.Core
	Cores     []*cpu.Core
	Alloc     *vm.FrameAllocator
	cfg       Config
	instances []*Instance
	thrashRNG *program.RNG
	lastAS    []*vm.AddressSpace
	corePFs   []cpu.InstrPrefetcher
	// pfScratch is per-core reusable storage for the composed prefetcher
	// list a dispatch installs; per-core because each core retains its
	// current composition in Core.Prefetcher between dispatches.
	pfScratch []cpu.MultiPrefetcher
}

// AttachCorePrefetcher installs a core-level instruction prefetcher (e.g.
// PIF) on core 0; it composes with per-instance Jukeboxes via
// cpu.MultiPrefetcher. Build the prefetcher against srv.Core.Hier.
func (s *Server) AttachCorePrefetcher(pf cpu.InstrPrefetcher) { s.corePFs[0] = pf }

// AttachCorePrefetcherOn installs a core-level prefetcher on core idx;
// core-level structures are per-core hardware, so multi-core setups attach
// one instance per core (built against s.Cores[idx].Hier).
func (s *Server) AttachCorePrefetcherOn(idx int, pf cpu.InstrPrefetcher) { s.corePFs[idx] = pf }

// withDefaults fills zero-valued config fields.
func (cfg Config) withDefaults() Config {
	if cfg.CPU.DispatchWidth == 0 {
		cfg.CPU = cpu.SkylakeConfig()
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.ThrashBytesPerMs == 0 {
		cfg.ThrashBytesPerMs = DefaultThrashBytesPerMs
	}
	return cfg
}

// Validate checks the (defaulted) configuration: the platform, its cache and
// TLB geometry, and the Jukebox parameters if one is attached. Errors wrap
// cfgerr.ErrBadConfig.
func (cfg Config) Validate() error {
	cfg = cfg.withDefaults()
	if err := cfg.CPU.Validate(); err != nil {
		return err
	}
	if cfg.Jukebox != nil {
		if err := cfg.Jukebox.Validate(); err != nil {
			return err
		}
	}
	if cfg.Reap != nil {
		if err := cfg.Reap.Validate(); err != nil {
			return err
		}
	}
	if cfg.ThrashBytesPerMs < 0 {
		return cfgerr.New("server: negative ThrashBytesPerMs %d", cfg.ThrashBytesPerMs)
	}
	return nil
}

// NewErr builds a server like New but returns a validation error (wrapping
// cfgerr.ErrBadConfig) instead of panicking on bad configuration.
func NewErr(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return New(cfg), nil
}

// New builds a server. Zero-valued config fields get defaults. It panics on
// invalid configuration; use NewErr when the config comes from user input.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	llc := mem.NewCache(cfg.CPU.Hier.LLC)
	dram := mem.NewDRAM(cfg.CPU.Hier.DRAM)
	s := &Server{
		Alloc:     vm.NewFrameAllocator(0),
		cfg:       cfg,
		thrashRNG: program.NewRNG(0x7A4A5),
		lastAS:    make([]*vm.AddressSpace, cfg.Cores),
		corePFs:   make([]cpu.InstrPrefetcher, cfg.Cores),
		pfScratch: make([]cpu.MultiPrefetcher, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		hier := mem.NewSharedHierarchy(cfg.CPU.Hier, llc, dram)
		hier.PerfectL1I = cfg.PerfectICache
		s.Cores = append(s.Cores, cpu.NewCoreWithHierarchy(cfg.CPU, hier))
	}
	s.Core = s.Cores[0]
	return s
}

// NumCores reports the core count.
func (s *Server) NumCores() int { return len(s.Cores) }

// Deploy creates a warm instance of w on the server.
func (s *Server) Deploy(w workload.Workload) *Instance {
	inst := &Instance{Workload: w, AS: vm.NewAddressSpace(s.Alloc), srv: s}
	if s.cfg.Jukebox != nil {
		inst.Jukebox = core.New(*s.cfg.Jukebox, s.Core.Hier, s.Core.MMU, s.Alloc)
	}
	if s.cfg.Reap != nil {
		inst.Reap = reap.New(*s.cfg.Reap, s.Core.Hier, s.Core.MMU)
	}
	s.instances = append(s.instances, inst)
	return inst
}

// Instances lists the deployed instances in deployment order.
func (s *Server) Instances() []*Instance { return s.instances }

// Evict models the OS reclaiming the instance's memory mid-lifetime: the
// address space is replaced by a fresh one (all pages gone) and any Jukebox
// metadata — in-flight recording and sealed replay state — is discarded,
// since it lives in the instance's (reclaimed) memory. A REAP manifest, by
// contrast, is part of the snapshot's record file and survives: the next
// invocation is a cold start microarchitecturally but can still restore its
// working set from the manifest — exactly the asymmetry the coldstart
// comparator measures.
func (inst *Instance) Evict() {
	inst.AS = vm.NewAddressSpace(inst.srv.Alloc)
	if inst.Jukebox != nil {
		inst.Jukebox.DropMetadata()
	}
	if inst.Reap != nil {
		inst.Reap.Abandon()
	}
}

// DropManifest discards the instance's REAP manifest along with the rest of
// its state — the crash path for a host that did not ship its record files.
func (inst *Instance) DropManifest() {
	if inst.Reap != nil {
		inst.Reap.DropManifest()
	}
}

// Invoke schedules one invocation of inst on core 0 and runs it to
// completion.
func (s *Server) Invoke(inst *Instance) cpu.RunResult { return s.InvokeOn(0, inst) }

// InvokeOn schedules one invocation of inst on core idx. The OS work is
// modeled faithfully: the process's address space is installed (flushing
// untagged TLBs on a process switch), and the scheduler programs the
// Jukebox base/limit registers of the chosen core from the instance's
// bookkeeping (Sec. 3.4.1) — metadata lives in memory, so the instance can
// run on any core.
//lukewarm:hotpath noalloc the fleet multiplies every dispatch by millions of invocations; the OS model must not allocate
func (s *Server) InvokeOn(idx int, inst *Instance) cpu.RunResult {
	c := s.Cores[idx]
	if s.lastAS[idx] != inst.AS {
		c.MMU.SetAddressSpace(inst.AS)
		c.MMU.Flush()
		s.lastAS[idx] = inst.AS
	}
	// Compose the present warm-up mechanisms in restore order: REAP's bulk
	// page restore first (LLC + TLBs), then Jukebox's region replay (L2),
	// then any core-level prefetcher.
	multi := s.pfScratch[idx][:0]
	if inst.Reap != nil {
		inst.Reap.Bind(c.Hier, c.MMU)
		multi = append(multi, inst.Reap) //lukewarm:hotalloc per-core scratch grows to the mechanism count (<=3) once
	}
	if inst.Jukebox != nil {
		inst.Jukebox.Bind(c.Hier, c.MMU)
		multi = append(multi, inst.Jukebox) //lukewarm:hotalloc per-core scratch grows to the mechanism count (<=3) once
	}
	if s.corePFs[idx] != nil {
		multi = append(multi, s.corePFs[idx]) //lukewarm:hotalloc per-core scratch grows to the mechanism count (<=3) once
	}
	s.pfScratch[idx] = multi
	switch len(multi) {
	case 0:
		c.Prefetcher = nil
	case 1:
		c.Prefetcher = multi[0]
	default:
		// Hand the core a pointer to the per-core scratch slot: assigning
		// the slice value itself would box it into the interface and heap-
		// allocate on every composed dispatch.
		c.Prefetcher = &s.pfScratch[idx]
	}
	inst.Workload.Program.ResetInvocation(&inst.inv, inst.Invocations)
	inst.Invocations++
	return c.RunInvocation(&inst.inv)
}

// PrewarmOutcome reports what a predictive pre-warm pass installed.
type PrewarmOutcome struct {
	// Ran reports that at least one mechanism actually issued its replay
	// (sealed state existed and verified).
	Ran bool
	// Bytes is the prefetch volume the pre-warm streamed on chip.
	Bytes uint64
	// BusyCycles is how long the replay engines stayed busy issuing.
	BusyCycles mem.Cycle
}

// PrewarmOn pre-runs inst's warm-up mechanisms on core idx while the
// instance is idle, ahead of its predicted next arrival: the OS schedules
// the idle instance's restore onto the core exactly as a dispatch would
// (address-space install, register programming), the selected mechanisms
// replay immediately, and a latch makes the instance's next InvocationStart
// skip its replay phase — the invocation starts microarchitecturally warm.
// The replay engines run in the background of the idle core, so the core
// clock does not advance; the occupancy is reported in BusyCycles and
// charged to the predict ledger instead.
func (s *Server) PrewarmOn(idx int, inst *Instance, mech predict.Mech) PrewarmOutcome {
	c := s.Cores[idx]
	if s.lastAS[idx] != inst.AS {
		c.MMU.SetAddressSpace(inst.AS)
		c.MMU.Flush()
		s.lastAS[idx] = inst.AS
	}
	var out PrewarmOutcome
	now := c.Now()
	if inst.Reap != nil && mech != predict.MechJukebox {
		inst.Reap.Bind(c.Hier, c.MMU)
		before := inst.Reap.Stats.PrefetchedBytes
		if inst.Reap.BeginPrewarm(now) {
			out.Ran = true
			out.Bytes += inst.Reap.Stats.PrefetchedBytes - before
			if d := inst.Reap.Stats.LastRestoreDone; d > now {
				out.BusyCycles += d - now
			}
		}
	}
	if inst.Jukebox != nil && mech != predict.MechReap {
		inst.Jukebox.Bind(c.Hier, c.MMU)
		before := inst.Jukebox.Stats.ReplayPrefetches
		if inst.Jukebox.BeginPrewarm(now) {
			out.Ran = true
			out.Bytes += (inst.Jukebox.Stats.ReplayPrefetches - before) * mem.LineSize
			if d := inst.Jukebox.Stats.LastReplayDone; d > now {
				out.BusyCycles += d - now
			}
		}
	}
	return out
}

// FlushMicroarch obliterates all on-chip state on every core (the lukewarm
// baseline's inter-invocation interleaving).
func (s *Server) FlushMicroarch() {
	for i, c := range s.Cores {
		c.FlushMicroarch() // includes the shared LLC; idempotent
		s.lastAS[i] = nil
	}
}

// AdvanceIAT models an idle inter-arrival gap of ms milliseconds on core 0:
// the clock advances and co-resident instances partially thrash every
// structure in proportion to the foreign state streamed through it
// (Sec. 2.2's interleaving).
func (s *Server) AdvanceIAT(ms float64) { s.AdvanceIATOn(0, ms) }

// AdvanceIATOn is AdvanceIAT for core idx. The core's private structures
// and the shared LLC thrash; other cores' private state is untouched (their
// own gaps handle it).
func (s *Server) AdvanceIATOn(idx int, ms float64) {
	if ms <= 0 {
		return
	}
	c := s.Cores[idx]
	// ms * 1e-3 s * freq GHz * 1e9 cycles/s = ms * freq * 1e6 cycles.
	c.AdvanceCycles(mem.Cycle(ms * s.cfg.CPU.FreqGHz * 1e6))

	bytes := ms * float64(s.cfg.ThrashBytesPerMs)
	rng := s.thrashRNG.Uint64
	frac := func(capacityBytes int) float64 {
		return 1 - math.Exp(-bytes/float64(capacityBytes))
	}
	hier := c.Hier
	cfg := hier.Config()
	hier.L1I.EvictFraction(frac(cfg.L1I.SizeBytes), rng)
	hier.L1D.EvictFraction(frac(cfg.L1D.SizeBytes), rng)
	hier.L2.EvictFraction(frac(cfg.L2.SizeBytes), rng)
	hier.LLC.EvictFraction(frac(cfg.LLC.SizeBytes), rng)

	// Core-side structures: sized in equivalent foreign-state bytes. The
	// BTB holds ~8K entries trained by foreign taken branches (~1 per 64 B
	// of foreign code); TLBs hold translations for foreign pages.
	c.BTB.EvictFraction(frac(512<<10), rng)
	c.BP.DecayFraction(frac(256<<10), rng)
	c.MMU.ITLB.EvictFraction(frac(512<<10), rng)
	c.MMU.DTLB.EvictFraction(frac(256<<10), rng)
	if bytes > 256<<10 {
		c.MMU.Walker.Flush()
	}
}

// RunReference performs n back-to-back invocations of inst (the paper's
// reference configuration) and returns the result of the last one, which is
// fully warm.
func (s *Server) RunReference(inst *Instance, n int) cpu.RunResult {
	var last cpu.RunResult
	for i := 0; i < n; i++ {
		last = s.Invoke(inst)
	}
	return last
}

// RunLukewarm performs n invocations of inst with a full microarchitectural
// flush before each (the paper's interleaved/baseline configuration) and
// returns the last result.
func (s *Server) RunLukewarm(inst *Instance, n int) cpu.RunResult {
	var last cpu.RunResult
	for i := 0; i < n; i++ {
		s.FlushMicroarch()
		last = s.Invoke(inst)
	}
	return last
}

// RunWithIAT performs n invocations of inst separated by idle gaps of
// iatMs milliseconds (the Fig. 1 sweep) and returns the last result.
func (s *Server) RunWithIAT(inst *Instance, n int, iatMs float64) cpu.RunResult {
	var last cpu.RunResult
	for i := 0; i < n; i++ {
		s.AdvanceIAT(iatMs)
		last = s.Invoke(inst)
	}
	return last
}

package serverless

import (
	"strings"
	"testing"

	"lukewarm/internal/core"
	"lukewarm/internal/workload"
)

// deploySubset deploys a small cross-language subset.
func deploySubset(t *testing.T, s *Server, names ...string) {
	t.Helper()
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		s.Deploy(w)
	}
}

func smallTraffic() TrafficConfig {
	cfg := DefaultTrafficConfig()
	cfg.InvocationsPerInstance = 3
	cfg.MeanIATms = 50 // keep the simulated span short for tests
	return cfg
}

func TestServeTrafficBasics(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G", "ProdL-G", "Email-P")
	res := s.ServeTraffic(smallTraffic())
	if res.Served != 9 {
		t.Fatalf("served = %d, want 9", res.Served)
	}
	if res.CPI.N() != 9 || res.LatencyCycles.N() != 9 {
		t.Errorf("summaries incomplete: %d/%d", res.CPI.N(), res.LatencyCycles.N())
	}
	if res.BusyFraction <= 0 || res.BusyFraction > 1 {
		t.Errorf("busy fraction = %v", res.BusyFraction)
	}
	if res.SimulatedMs <= 0 {
		t.Errorf("simulated span = %v", res.SimulatedMs)
	}
	if res.P99LatencyCycles() < res.LatencyCycles.Mean() {
		t.Errorf("p99 %.0f below mean %.0f", res.P99LatencyCycles(), res.LatencyCycles.Mean())
	}
	if !strings.Contains(res.String(), "served 9 invocations") {
		t.Errorf("summary rendering: %s", res.String())
	}
}

func TestServeTrafficDeterministic(t *testing.T) {
	run := func() float64 {
		s := New(Config{})
		deploySubset(t, s, "Auth-G", "Email-P")
		res := s.ServeTraffic(smallTraffic())
		return res.CPI.Mean()
	}
	if run() != run() {
		t.Error("traffic run not deterministic")
	}
}

func TestCoResidencyMakesInvocationsLukewarm(t *testing.T) {
	// A lone instance under traffic stays warm; the same instance among
	// many co-residents runs lukewarm — the paper's core observation,
	// reproduced with natural interleaving rather than flushes.
	w, err := workload.ByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTraffic()
	cfg.InvocationsPerInstance = 4

	alone := New(Config{})
	alone.Deploy(w)
	aloneRes := alone.ServeTraffic(cfg)

	crowded := New(Config{})
	crowded.Deploy(w)
	deploySubset(t, crowded, "Email-P", "Pay-N", "Auth-P", "Geo-G", "Prof-G", "Curr-N", "RecO-P")
	crowdedRes := crowded.ServeTraffic(cfg)

	if crowdedRes.CPI.Mean() <= aloneRes.CPI.Mean()*1.15 {
		t.Errorf("co-residency did not degrade CPI: %.3f vs alone %.3f",
			crowdedRes.CPI.Mean(), aloneRes.CPI.Mean())
	}
}

func TestJukeboxHelpsUnderRealTraffic(t *testing.T) {
	// Co-residency must exceed the LLC for the lukewarm effect to bite:
	// with only a handful of instances the 8 MB LLC retains every footprint
	// and Jukebox has little left to prefetch. Deploy the whole suite
	// (~9 MB of code plus data) — still far below the thousands of
	// instances on a production host.
	run := func(jb bool) float64 {
		var cfg Config
		if jb {
			j := core.DefaultConfig()
			cfg.Jukebox = &j
		}
		s := New(cfg)
		for _, w := range workload.Suite() {
			s.Deploy(w)
		}
		tc := smallTraffic()
		tc.InvocationsPerInstance = 3
		res := s.ServeTraffic(tc)
		return res.ServiceCycles.Sum()
	}
	base, withJB := run(false), run(true)
	speedup := base/withJB - 1
	if speedup < 0.04 {
		t.Errorf("Jukebox speedup under traffic = %.1f%%, want clearly positive", speedup*100)
	}
}

func TestKeepAliveColdStarts(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	cfg := smallTraffic()
	cfg.MeanIATms = 100
	cfg.Poisson = false
	cfg.KeepAliveMs = 10 // evict almost immediately
	cfg.InvocationsPerInstance = 4
	res := s.ServeTraffic(cfg)
	if res.ColdStarts == 0 {
		t.Error("tiny keep-alive produced no cold starts")
	}
	// Latency includes the boot cost.
	bootCycles := cfg.ColdStartMs * 2.6e6
	if res.LatencyCycles.Max() < bootCycles {
		t.Errorf("max latency %.0f below a single cold start %.0f", res.LatencyCycles.Max(), bootCycles)
	}
}

func TestHeavyTailTraffic(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G", "Email-P")
	cfg := smallTraffic()
	cfg.HeavyTail = true
	cfg.InvocationsPerInstance = 5
	res := s.ServeTraffic(cfg)
	if res.Served != 10 {
		t.Fatalf("served %d", res.Served)
	}
	// Burstiness shows up as higher latency variance than fixed spacing.
	sFixed := New(Config{})
	deploySubset(t, sFixed, "Auth-G", "Email-P")
	cfgF := cfg
	cfgF.HeavyTail = false
	cfgF.Poisson = false
	resF := sFixed.ServeTraffic(cfgF)
	if res.LatencyCycles.StdDev() <= resF.LatencyCycles.StdDev() {
		t.Errorf("heavy-tail latency stddev %.0f not above fixed %.0f",
			res.LatencyCycles.StdDev(), resF.LatencyCycles.StdDev())
	}
}

func TestServeTrafficPanicsOnBadConfig(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	for _, f := range []func(){
		func() { s.ServeTraffic(TrafficConfig{MeanIATms: 0, InvocationsPerInstance: 1}) },
		func() { s.ServeTraffic(TrafficConfig{MeanIATms: 10, InvocationsPerInstance: 0}) },
		func() { New(Config{}).ServeTraffic(DefaultTrafficConfig()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

package serverless

import (
	"errors"
	"strings"
	"testing"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/core"
	"lukewarm/internal/workload"
)

// deploySubset deploys a small cross-language subset.
func deploySubset(t *testing.T, s *Server, names ...string) {
	t.Helper()
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		s.Deploy(w)
	}
}

func smallTraffic() TrafficConfig {
	cfg := DefaultTrafficConfig()
	cfg.InvocationsPerInstance = 3
	cfg.MeanIATms = 50 // keep the simulated span short for tests
	return cfg
}

// mustServe runs ServeTraffic and fails the test on error.
func mustServe(t *testing.T, s *Server, cfg TrafficConfig) TrafficResult {
	t.Helper()
	res, err := s.ServeTraffic(cfg)
	if err != nil {
		t.Fatalf("ServeTraffic: %v", err)
	}
	return res
}

func TestServeTrafficBasics(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G", "ProdL-G", "Email-P")
	res := mustServe(t, s, smallTraffic())
	if res.Served != 9 {
		t.Fatalf("served = %d, want 9", res.Served)
	}
	if res.CPI.N() != 9 || res.LatencyCycles.N() != 9 {
		t.Errorf("summaries incomplete: %d/%d", res.CPI.N(), res.LatencyCycles.N())
	}
	if res.BusyFraction <= 0 || res.BusyFraction > 1 {
		t.Errorf("busy fraction = %v", res.BusyFraction)
	}
	if res.SimulatedMs <= 0 {
		t.Errorf("simulated span = %v", res.SimulatedMs)
	}
	if res.P99LatencyCycles() < res.LatencyCycles.Mean() {
		t.Errorf("p99 %.0f below mean %.0f", res.P99LatencyCycles(), res.LatencyCycles.Mean())
	}
	if !strings.Contains(res.String(), "served 9 of 9 offered") {
		t.Errorf("summary rendering: %s", res.String())
	}
}

func TestServeTrafficDeterministic(t *testing.T) {
	run := func() float64 {
		s := New(Config{})
		deploySubset(t, s, "Auth-G", "Email-P")
		res := mustServe(t, s, smallTraffic())
		return res.CPI.Mean()
	}
	if run() != run() {
		t.Error("traffic run not deterministic")
	}
}

func TestCoResidencyMakesInvocationsLukewarm(t *testing.T) {
	// A lone instance under traffic stays warm; the same instance among
	// many co-residents runs lukewarm — the paper's core observation,
	// reproduced with natural interleaving rather than flushes.
	w, err := workload.ByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTraffic()
	cfg.InvocationsPerInstance = 4

	alone := New(Config{})
	alone.Deploy(w)
	aloneRes := mustServe(t, alone, cfg)

	crowded := New(Config{})
	crowded.Deploy(w)
	deploySubset(t, crowded, "Email-P", "Pay-N", "Auth-P", "Geo-G", "Prof-G", "Curr-N", "RecO-P")
	crowdedRes := mustServe(t, crowded, cfg)

	if crowdedRes.CPI.Mean() <= aloneRes.CPI.Mean()*1.15 {
		t.Errorf("co-residency did not degrade CPI: %.3f vs alone %.3f",
			crowdedRes.CPI.Mean(), aloneRes.CPI.Mean())
	}
}

func TestJukeboxHelpsUnderRealTraffic(t *testing.T) {
	// Co-residency must exceed the LLC for the lukewarm effect to bite:
	// with only a handful of instances the 8 MB LLC retains every footprint
	// and Jukebox has little left to prefetch. Deploy the whole suite
	// (~9 MB of code plus data) — still far below the thousands of
	// instances on a production host.
	run := func(jb bool) float64 {
		var cfg Config
		if jb {
			j := core.DefaultConfig()
			cfg.Jukebox = &j
		}
		s := New(cfg)
		for _, w := range workload.Suite() {
			s.Deploy(w)
		}
		tc := smallTraffic()
		tc.InvocationsPerInstance = 3
		res := mustServe(t, s, tc)
		return res.ServiceCycles.Sum()
	}
	base, withJB := run(false), run(true)
	speedup := base/withJB - 1
	if speedup < 0.04 {
		t.Errorf("Jukebox speedup under traffic = %.1f%%, want clearly positive", speedup*100)
	}
}

func TestKeepAliveColdStarts(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	cfg := smallTraffic()
	cfg.MeanIATms = 100
	cfg.Poisson = false
	cfg.KeepAliveMs = 10 // evict almost immediately
	cfg.InvocationsPerInstance = 4
	res := mustServe(t, s, cfg)
	if res.ColdStarts == 0 {
		t.Error("tiny keep-alive produced no cold starts")
	}
	// Latency includes the boot cost.
	bootCycles := cfg.ColdStartMs * 2.6e6
	if res.LatencyCycles.Max() < bootCycles {
		t.Errorf("max latency %.0f below a single cold start %.0f", res.LatencyCycles.Max(), bootCycles)
	}
}

func TestHeavyTailTraffic(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G", "Email-P")
	cfg := smallTraffic()
	cfg.HeavyTail = true
	cfg.InvocationsPerInstance = 5
	res := mustServe(t, s, cfg)
	if res.Served != 10 {
		t.Fatalf("served %d", res.Served)
	}
	// Burstiness shows up as higher latency variance than fixed spacing.
	sFixed := New(Config{})
	deploySubset(t, sFixed, "Auth-G", "Email-P")
	cfgF := cfg
	cfgF.HeavyTail = false
	cfgF.Poisson = false
	resF := mustServe(t, sFixed, cfgF)
	if res.LatencyCycles.StdDev() <= resF.LatencyCycles.StdDev() {
		t.Errorf("heavy-tail latency stddev %.0f not above fixed %.0f",
			res.LatencyCycles.StdDev(), resF.LatencyCycles.StdDev())
	}
}

func TestServeTrafficRejectsBadConfig(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	for name, run := range map[string]func() (TrafficResult, error){
		"zero IAT": func() (TrafficResult, error) {
			return s.ServeTraffic(TrafficConfig{MeanIATms: 0, InvocationsPerInstance: 1})
		},
		"zero budget": func() (TrafficResult, error) {
			return s.ServeTraffic(TrafficConfig{MeanIATms: 10, InvocationsPerInstance: 0})
		},
		"no instances": func() (TrafficResult, error) { return New(Config{}).ServeTraffic(DefaultTrafficConfig()) },
	} {
		if _, err := run(); err == nil {
			t.Errorf("%s: expected error", name)
		} else if !errors.Is(err, cfgerr.ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadConfig", name, err)
		}
	}
}

func TestServeTrafficEdgeCases(t *testing.T) {
	// IAT far above keep-alive: every re-invocation is a cold start.
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	cfg := DefaultTrafficConfig()
	cfg.Poisson = false
	cfg.MeanIATms = 500
	cfg.KeepAliveMs = 5
	cfg.InvocationsPerInstance = 4
	res := mustServe(t, s, cfg)
	if res.ColdStarts != 3 {
		t.Errorf("IAT >> keep-alive: cold starts = %d, want 3 (every invocation after the first)", res.ColdStarts)
	}

	// Single-invocation budget: exactly one served, no cold starts.
	s1 := New(Config{})
	deploySubset(t, s1, "Auth-G")
	c1 := DefaultTrafficConfig()
	c1.InvocationsPerInstance = 1
	c1.KeepAliveMs = 1
	r1 := mustServe(t, s1, c1)
	if r1.Served != 1 || r1.ColdStarts != 0 || r1.Shed != 0 {
		t.Errorf("single budget: served %d, cold %d, shed %d", r1.Served, r1.ColdStarts, r1.Shed)
	}
}

func TestServeTrafficShedsUnderOverload(t *testing.T) {
	// Saturating arrivals (IAT far below service time) with a tight queue
	// bound must shed load with accounting, not grow the heap unboundedly.
	s := New(Config{})
	deploySubset(t, s, "Auth-G", "Email-P", "Pay-N", "ProdL-G")
	cfg := DefaultTrafficConfig()
	cfg.MeanIATms = 0.05
	cfg.InvocationsPerInstance = 6
	cfg.MaxQueue = 2
	res := mustServe(t, s, cfg)
	if res.Shed == 0 {
		t.Fatal("saturating traffic with MaxQueue=2 shed nothing")
	}
	if res.Served+res.Shed != 4*6 {
		t.Errorf("served %d + shed %d != offered %d", res.Served, res.Shed, 4*6)
	}
	if !strings.Contains(res.String(), "shed") {
		t.Errorf("summary does not report shedding: %s", res.String())
	}

	// Deadline shedding: any invocation waiting longer than ShedAfterMs is
	// dropped at dispatch.
	s2 := New(Config{})
	deploySubset(t, s2, "Auth-G", "Email-P", "Pay-N", "ProdL-G")
	cfg2 := DefaultTrafficConfig()
	cfg2.MeanIATms = 0.05
	cfg2.InvocationsPerInstance = 6
	cfg2.ShedAfterMs = 0.5
	res2 := mustServe(t, s2, cfg2)
	if res2.Shed == 0 {
		t.Error("deadline shedding dropped nothing under saturation")
	}
}

func TestServeTrafficShedDeterminism(t *testing.T) {
	run := func() TrafficResult {
		s := New(Config{})
		deploySubset(t, s, "Auth-G", "Email-P")
		cfg := DefaultTrafficConfig()
		cfg.MeanIATms = 0.1
		cfg.InvocationsPerInstance = 5
		cfg.MaxQueue = 1
		return mustServe(t, s, cfg)
	}
	a, b := run(), run()
	if a.String() != b.String() || a.Shed != b.Shed {
		t.Errorf("shedding run not deterministic:\n%s\n%s", a.String(), b.String())
	}
}

func TestNoKeepAlive(t *testing.T) {
	// NoKeepAlive must behave like the deprecated KeepAliveMs=0 sentinel:
	// instances stay resident across gaps far beyond any provider window.
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	cfg := DefaultTrafficConfig()
	cfg.Poisson = false
	cfg.MeanIATms = 5000
	cfg.NoKeepAlive = true
	cfg.InvocationsPerInstance = 4
	res := mustServe(t, s, cfg)
	if res.ColdStarts != 0 {
		t.Errorf("NoKeepAlive cold-started %d times", res.ColdStarts)
	}
	if res.ResidentMs <= 0 {
		t.Error("NoKeepAlive run accounted no resident time")
	}

	// Contradicting it with a positive timeout is a configuration error.
	bad := DefaultTrafficConfig()
	bad.NoKeepAlive = true
	bad.KeepAliveMs = 100
	if err := bad.Validate(); err == nil {
		t.Error("NoKeepAlive + KeepAliveMs accepted")
	} else if !errors.Is(err, cfgerr.ErrBadConfig) {
		t.Errorf("error %v does not wrap ErrBadConfig", err)
	}
	if err := (TrafficConfig{MeanIATms: 10, InvocationsPerInstance: 1, DiurnalPeriodMs: -1}).Validate(); err == nil {
		t.Error("negative DiurnalPeriodMs accepted")
	}
}

func TestPerFunctionBreakdown(t *testing.T) {
	s := New(Config{})
	deploySubset(t, s, "Auth-G", "Email-P")
	cfg := smallTraffic()
	cfg.Poisson = false
	cfg.MeanIATms = 100
	cfg.KeepAliveMs = 10
	cfg.InvocationsPerInstance = 3
	res := mustServe(t, s, cfg)
	if len(res.PerFunction) != 2 {
		t.Fatalf("per-function rows = %d, want 2", len(res.PerFunction))
	}
	var served, cold int
	for _, f := range res.PerFunction {
		served += f.Served
		cold += f.ColdStarts
		if f.Served > 0 && f.MeanCPI() <= 0 {
			t.Errorf("%s: served %d with mean CPI %g", f.Name, f.Served, f.MeanCPI())
		}
	}
	if served != res.Served || cold != res.ColdStarts {
		t.Errorf("per-function sums %d/%d != fleet %d/%d", served, cold, res.Served, res.ColdStarts)
	}
	if res.ColdStarts == 0 {
		t.Fatal("test setup produced no cold starts")
	}
	if out := res.String(); !strings.Contains(out, "by function") || !strings.Contains(out, "Auth-G") {
		t.Errorf("summary lacks per-function breakdown: %s", out)
	}
}

func TestDiurnalTrafficWiring(t *testing.T) {
	// Diurnal takes precedence and produces gaps inside the designed band.
	s := New(Config{})
	deploySubset(t, s, "Auth-G")
	cfg := DefaultTrafficConfig()
	cfg.Diurnal = true
	cfg.MeanIATms = 50
	cfg.InvocationsPerInstance = 8
	res := mustServe(t, s, cfg)
	if res.Served != 8 {
		t.Fatalf("served %d", res.Served)
	}
	// A ±30% rate swing keeps the span within [n*min_gap, n*max_gap].
	if res.SimulatedMs < 7*50/1.4 || res.SimulatedMs > 8*50*1.6 {
		t.Errorf("diurnal span %.0f ms outside plausible band", res.SimulatedMs)
	}
}

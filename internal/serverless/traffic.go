package serverless

import (
	"container/heap"
	"fmt"
	"strings"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/sched"
	"lukewarm/internal/stats"
)

// TrafficConfig drives a system-level simulation: invocations arrive for
// each deployed instance as an independent arrival process and are served
// in arrival order on the core a placement policy picks. Interleaving here
// is *natural* — running other instances thrashes the shared
// microarchitectural state, no explicit flush — so lukewarm behavior emerges
// the way it does in production (Sec. 2.2).
type TrafficConfig struct {
	// MeanIATms is each instance's mean inter-arrival time in milliseconds.
	// The Azure study the paper builds on (Shahrad et al., ATC'20) puts the
	// vast majority of warm invocations at 1 s to a few minutes.
	MeanIATms float64
	// Poisson selects exponential inter-arrival times; false gives fixed
	// spacing (instances are phase-shifted either way).
	Poisson bool
	// HeavyTail layers burstiness over the Poisson process, approximating
	// the Azure production traces (Shahrad et al., ATC'20): half the gaps
	// are short intra-burst arrivals, half are long lulls, preserving the
	// configured mean. Implies Poisson.
	HeavyTail bool
	// Diurnal selects near-periodic arrivals modulated by a fleet-wide
	// sinusoidal rate cycle (see sched.Diurnal) — individually predictable
	// gaps whose rate drifts over the period, the common pattern in the
	// Azure traces. Takes precedence over HeavyTail and Poisson.
	Diurnal bool
	// DiurnalPeriodMs is the diurnal cycle length; 0 selects the default
	// (sched.DiurnalPeriodInMeans mean gaps).
	DiurnalPeriodMs float64
	// InvocationsPerInstance bounds the run.
	InvocationsPerInstance int
	// KeepAliveMs evicts instances idle longer than this; an evicted
	// instance's next invocation is a cold start (paper Sec. 2.1). 0 is the
	// default — keep instances forever, the paper's 5-60 min provider
	// window being far above typical IATs.
	//
	// Deprecated as a "keep forever" request: 0 doubles as the zero value,
	// so it cannot express the intent explicitly. Set NoKeepAlive for that;
	// 0 stays honored for compatibility. KeepAlive, when non-nil,
	// supersedes both fields.
	KeepAliveMs float64
	// NoKeepAlive explicitly requests that instances are never evicted
	// (equivalent to the KeepAliveMs = 0 default, but self-documenting).
	// Setting it together with a positive KeepAliveMs is a configuration
	// error.
	NoKeepAlive bool
	// ColdStartMs is the instance boot cost charged to a cold start
	// (paper Sec. 2.1: "hundreds of milliseconds in today's clouds").
	ColdStartMs float64
	// AmbientThrash treats the deployed instances as a sample of a much
	// larger co-resident population: idle gaps apply the server's
	// ThrashBytesPerMs partial-eviction model (as in the Fig. 1 sweep) in
	// addition to the natural interleaving of the deployed instances.
	AmbientThrash bool
	// MaxQueue bounds the number of invocations waiting past their arrival
	// time at dispatch; when the backlog reaches the bound the dispatcher
	// sheds the invocation instead of serving it (0 = unbounded). This is
	// the overload valve: under saturating bursts the arrival heap stays
	// bounded and throughput degrades smoothly.
	MaxQueue int
	// ShedAfterMs sheds any invocation that has already waited longer than
	// this when it reaches the dispatcher (0 = no deadline). Models a
	// request timeout at the front end.
	ShedAfterMs float64
	// Placer picks the core that serves each invocation. Nil selects
	// sched.EarliestAvailable(), the historical dispatch rule. Stateful
	// placers (RoundRobin, StickyAffinity) must not be shared between
	// concurrent ServeTraffic runs.
	Placer sched.Placer
	// KeepAlive decides instance eviction and pre-warming. Nil derives the
	// policy from KeepAliveMs/NoKeepAlive (FixedTimeout or NoEvict).
	// Learning policies (HybridHistogram) must not be shared between
	// concurrent ServeTraffic runs.
	KeepAlive sched.KeepAlive
	// Seed determinizes arrivals.
	Seed uint64
}

// Validate reports whether the traffic configuration is serveable. Errors
// wrap cfgerr.ErrBadConfig.
func (c TrafficConfig) Validate() error {
	switch {
	case c.MeanIATms <= 0:
		return cfgerr.New("traffic: MeanIATms must be positive, got %g", c.MeanIATms)
	case c.InvocationsPerInstance <= 0:
		return cfgerr.New("traffic: InvocationsPerInstance must be positive, got %d", c.InvocationsPerInstance)
	case c.KeepAliveMs < 0:
		return cfgerr.New("traffic: negative KeepAliveMs %g", c.KeepAliveMs)
	case c.NoKeepAlive && c.KeepAliveMs > 0:
		return cfgerr.New("traffic: NoKeepAlive contradicts KeepAliveMs %g", c.KeepAliveMs)
	case c.ColdStartMs < 0:
		return cfgerr.New("traffic: negative ColdStartMs %g", c.ColdStartMs)
	case c.DiurnalPeriodMs < 0:
		return cfgerr.New("traffic: negative DiurnalPeriodMs %g", c.DiurnalPeriodMs)
	case c.MaxQueue < 0:
		return cfgerr.New("traffic: negative MaxQueue %d", c.MaxQueue)
	case c.ShedAfterMs < 0:
		return cfgerr.New("traffic: negative ShedAfterMs %g", c.ShedAfterMs)
	}
	return nil
}

// shape resolves the configured arrival-process shape.
func (c TrafficConfig) shape() sched.Shape {
	s := sched.Shape{Kind: sched.Fixed, MeanIATms: c.MeanIATms, PeriodMs: c.DiurnalPeriodMs}
	switch {
	case c.Diurnal:
		s.Kind = sched.Diurnal
	case c.HeavyTail:
		s.Kind = sched.HeavyTail
	case c.Poisson:
		s.Kind = sched.Poisson
	}
	return s
}

// placer resolves the placement policy.
func (c TrafficConfig) placer() sched.Placer {
	if c.Placer != nil {
		return c.Placer
	}
	return sched.EarliestAvailable()
}

// keepAlive resolves the eviction policy.
func (c TrafficConfig) keepAlive() sched.KeepAlive {
	switch {
	case c.KeepAlive != nil:
		return c.KeepAlive
	//lukewarm:floateq 0 is the no-keep-alive config sentinel, an exact configured value, not arithmetic
	case c.NoKeepAlive || c.KeepAliveMs == 0:
		return sched.NoEvict()
	}
	return sched.FixedTimeout(c.KeepAliveMs)
}

// DefaultTrafficConfig returns a 1 s Poisson workload, the representative
// point of the paper's IAT discussion.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{
		MeanIATms:              1000,
		Poisson:                true,
		InvocationsPerInstance: 6,
		ColdStartMs:            250,
		Seed:                   1,
	}
}

// FuncTraffic is one function's slice of a traffic run, in deployment
// order: the per-function breakdown of the fleet-wide counters.
type FuncTraffic struct {
	// Name is the function name.
	Name string
	// Served, ColdStarts and Shed are this function's share of the
	// fleet-wide counters.
	Served, ColdStarts, Shed int
	// CPISum accumulates per-invocation CPI; CPISum/Served is the
	// function's mean CPI over the run.
	CPISum float64
}

// MeanCPI reports the function's mean per-invocation CPI.
func (f FuncTraffic) MeanCPI() float64 {
	if f.Served == 0 {
		return 0
	}
	return f.CPISum / float64(f.Served)
}

// TrafficResult summarizes a traffic run.
type TrafficResult struct {
	// Served counts completed invocations.
	Served int
	// Shed counts invocations dropped by the overload valve (MaxQueue bound
	// or ShedAfterMs deadline) instead of being served.
	Shed int
	// ColdStarts counts invocations that found their instance evicted.
	ColdStarts int
	// PrewarmHits counts invocations whose instance had been evicted but
	// was restored by the keep-alive policy's pre-warm before they arrived
	// (no cold start charged).
	PrewarmHits int
	// PlacementMigrations counts invocations served on a different core
	// than their function's previous one.
	PlacementMigrations int
	// JukeboxRebinds counts invocations that had to program their Jukebox
	// base/limit registers on a core that did not already hold them (first
	// invocations and migrations). Zero when Jukebox is disabled.
	JukeboxRebinds int
	// ResidentMs sums, across all idle gaps, the time instances stayed
	// memory-resident — the instance-memory budget the keep-alive policy
	// spent. Busy (executing) time is not included.
	ResidentMs float64
	// PerFunction breaks Served/ColdStarts/Shed down by function, in
	// deployment order.
	PerFunction []FuncTraffic
	// CPI summarizes per-invocation CPI across all instances.
	CPI stats.Summary
	// ServiceCycles summarizes per-invocation service time (execution
	// only), in cycles.
	ServiceCycles stats.Summary
	// LatencyCycles summarizes arrival-to-completion latency (queueing +
	// cold start + execution), in cycles.
	LatencyCycles stats.Summary
	// BusyFraction is the core's utilization over the simulated span.
	BusyFraction float64
	// SimulatedMs is the simulated wall-clock span.
	SimulatedMs float64
	latencies   []float64
}

// P99LatencyCycles reports the 99th-percentile latency.
func (r *TrafficResult) P99LatencyCycles() float64 {
	return stats.Percentile(r.latencies, 99)
}

// ColdStartRate reports the fraction of served invocations that cold-started.
func (r *TrafficResult) ColdStartRate() float64 {
	if r.Served == 0 {
		return 0
	}
	return float64(r.ColdStarts) / float64(r.Served)
}

// ShedRate reports the fraction of offered invocations that were shed.
func (r *TrafficResult) ShedRate() float64 {
	if offered := r.Served + r.Shed; offered > 0 {
		return float64(r.Shed) / float64(offered)
	}
	return 0
}

// JukeboxCoverage reports the fraction of served invocations that found
// their Jukebox metadata registers already programmed on the chosen core
// (no Bind churn). It is 0 when Jukebox is disabled.
func (r *TrafficResult) JukeboxCoverage() float64 {
	if r.Served == 0 || r.JukeboxRebinds == 0 {
		return 0
	}
	return 1 - float64(r.JukeboxRebinds)/float64(r.Served)
}

// TrafficSummary is the flat, gob-safe projection of a TrafficResult: every
// field is a plain exported value, so it round-trips through the result
// cache unchanged. Experiment runners store it inside runner.Measurement.
type TrafficSummary struct {
	Served, Shed, ColdStarts         int
	PrewarmHits, Migrations, Rebinds int
	MeanCPI, MeanServiceCycles       float64
	MeanLatencyCycles, P99LatencyCyc float64
	BusyFraction, SimulatedMs        float64
	ResidentMs                       float64
	PerFunction                      []FuncTraffic
}

// Summary projects the result into its cacheable form.
func (r *TrafficResult) Summary() TrafficSummary {
	return TrafficSummary{
		Served: r.Served, Shed: r.Shed, ColdStarts: r.ColdStarts,
		PrewarmHits: r.PrewarmHits, Migrations: r.PlacementMigrations,
		Rebinds:           r.JukeboxRebinds,
		MeanCPI:           r.CPI.Mean(),
		MeanServiceCycles: r.ServiceCycles.Mean(),
		MeanLatencyCycles: r.LatencyCycles.Mean(),
		P99LatencyCyc:     r.P99LatencyCycles(),
		BusyFraction:      r.BusyFraction,
		SimulatedMs:       r.SimulatedMs,
		ResidentMs:        r.ResidentMs,
		PerFunction:       r.PerFunction,
	}
}

// ColdStartRate mirrors TrafficResult.ColdStartRate.
func (s TrafficSummary) ColdStartRate() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Served)
}

// ShedRate mirrors TrafficResult.ShedRate.
func (s TrafficSummary) ShedRate() float64 {
	if offered := s.Served + s.Shed; offered > 0 {
		return float64(s.Shed) / float64(offered)
	}
	return 0
}

// JukeboxCoverage mirrors TrafficResult.JukeboxCoverage.
func (s TrafficSummary) JukeboxCoverage() float64 {
	if s.Served == 0 || s.Rebinds == 0 {
		return 0
	}
	return 1 - float64(s.Rebinds)/float64(s.Served)
}

// ResidentMsPerServed reports the mean instance-memory spend per served
// invocation — the budget axis keep-alive policies are compared on.
func (s TrafficSummary) ResidentMsPerServed() float64 {
	if s.Served == 0 {
		return 0
	}
	return s.ResidentMs / float64(s.Served)
}

// arrival is one pending invocation.
type arrival struct {
	at   mem.Cycle
	inst *Instance
	seq  int // tie-breaker for determinism
}

// arrivalQueue is a min-heap of arrivals ordered by time.
type arrivalQueue []arrival

func (q arrivalQueue) Len() int { return len(q) }
func (q arrivalQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q arrivalQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *arrivalQueue) Push(x any)   { *q = append(*q, x.(arrival)) }
func (q *arrivalQueue) Pop() any     { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }
func (q arrivalQueue) Peek() arrival { return q[0] }

// instSched is the per-instance bookkeeping the scheduling policies read.
type instSched struct {
	fn         *FuncTraffic
	lastDone   mem.Cycle
	hasDone    bool
	lastCore   int // core of the last completion, -1 before the first
	servedMark int // coreServed[lastCore] at that completion
}

// ServeTraffic runs the arrival process over every deployed instance until
// each has received cfg.InvocationsPerInstance invocations, serving them
// FIFO in arrival order on the core the placement policy picks and evicting
// idle instances per the keep-alive policy. It returns the aggregate result,
// or an error (wrapping cfgerr.ErrBadConfig) for an unserveable
// configuration or a server with no deployed instances.
//
// Idle gaps advance the clock but do not thrash state: with multiple
// co-resident instances the interleaved executions themselves provide the
// (realistic, partial) state destruction.
func (s *Server) ServeTraffic(cfg TrafficConfig) (TrafficResult, error) {
	if err := cfg.Validate(); err != nil {
		return TrafficResult{}, err
	}
	if len(s.instances) == 0 {
		return TrafficResult{}, cfgerr.New("traffic: server has no deployed instances")
	}
	rng := program.NewRNG(program.Mix(0x7AF1C, cfg.Seed))
	cyclesPerMs := s.cfg.CPU.FreqGHz * 1e6
	shape := cfg.shape()
	placer := cfg.placer()
	keepAlive := cfg.keepAlive()

	nextGap := func(nowMs float64) mem.Cycle {
		c := mem.Cycle(shape.GapMs(rng, nowMs) * cyclesPerMs)
		if c == 0 {
			c = 1
		}
		return c
	}

	var res TrafficResult
	var q arrivalQueue
	seq := 0
	remaining := map[*Instance]int{}
	state := map[*Instance]*instSched{}
	res.PerFunction = make([]FuncTraffic, len(s.instances))
	for i, inst := range s.instances {
		res.PerFunction[i].Name = inst.Workload.Name
		remaining[inst] = cfg.InvocationsPerInstance
		state[inst] = &instSched{fn: &res.PerFunction[i], lastCore: -1}
		// Phase-shift first arrivals across instances.
		first := s.Core.Now() + mem.Cycle(rng.Float64()*cfg.MeanIATms*cyclesPerMs)
		heap.Push(&q, arrival{at: first, inst: inst, seq: seq})
		seq++
	}
	coreServed := make([]int, len(s.Cores))
	views := make([]sched.CoreView, len(s.Cores))

	start := s.Core.Now()
	var busy mem.Cycle

	for q.Len() > 0 {
		a := heap.Pop(&q).(arrival)
		st := state[a.inst]
		arrivalMs := float64(a.at) / cyclesPerMs
		// Snapshot per-core state and let the placement policy dispatch.
		for i := range s.Cores {
			views[i] = sched.CoreView{
				FreeAtMs: float64(s.Cores[i].Now()) / cyclesPerMs,
				Last:     st.lastCore == i,
			}
			if views[i].Last {
				views[i].ForeignSince = coreServed[i] - st.servedMark
				views[i].Bound = a.inst.Jukebox != nil
			}
		}
		idx := placer.Place(sched.Request{
			Func:       a.inst.Workload.Name,
			ArrivalMs:  arrivalMs,
			HasJukebox: a.inst.Jukebox != nil,
		}, views)
		core := s.Cores[idx]
		// Overload valve: shed before touching any simulated state, so a
		// shed decision never perturbs the microarchitecture. An invocation
		// is shed when it already blew its deadline waiting for a core, or
		// when the due backlog (this arrival plus queued arrivals whose time
		// has passed) exceeds the configured bound. The client's later
		// requests still arrive, so the process drains deterministically.
		if cfg.ShedAfterMs > 0 || cfg.MaxQueue > 0 {
			waitedMs := 0.0
			if core.Now() > a.at {
				waitedMs = float64(core.Now()-a.at) / cyclesPerMs
			}
			due := 1
			for _, p := range q {
				if p.at <= core.Now() {
					due++
				}
			}
			if (cfg.ShedAfterMs > 0 && waitedMs > cfg.ShedAfterMs) ||
				(cfg.MaxQueue > 0 && due > cfg.MaxQueue) {
				res.Shed++
				st.fn.Shed++
				remaining[a.inst]--
				if remaining[a.inst] > 0 {
					heap.Push(&q, arrival{at: a.at + nextGap(arrivalMs), inst: a.inst, seq: seq})
					seq++
				}
				continue
			}
		}
		if core.Now() < a.at {
			gap := a.at - core.Now()
			if cfg.AmbientThrash {
				s.AdvanceIATOn(idx, float64(gap)/cyclesPerMs)
			} else {
				core.AdvanceCycles(gap)
			}
		}
		// Keep-alive: judge the idle gap since the instance's last
		// completion. Evicted-and-not-prewarmed instances cold-start.
		if st.hasDone {
			idleMs := 0.0
			if a.at > st.lastDone {
				idleMs = float64(a.at-st.lastDone) / cyclesPerMs
			}
			d := keepAlive.Decide(a.inst.Workload.Name, idleMs)
			res.ResidentMs += d.ResidentMs
			if d.Prewarmed {
				res.PrewarmHits++
			}
			if d.ColdStart() {
				res.ColdStarts++
				st.fn.ColdStarts++
				core.AdvanceCycles(mem.Cycle(cfg.ColdStartMs * cyclesPerMs))
			}
		}
		// Placement accounting: a core change is a migration, and (with
		// Jukebox) a base/limit reprogramming on the new core.
		if st.lastCore >= 0 && st.lastCore != idx {
			res.PlacementMigrations++
		}
		if a.inst.Jukebox != nil && st.lastCore != idx {
			res.JukeboxRebinds++
		}
		r := s.InvokeOn(idx, a.inst)
		busy += r.Cycles
		res.Served++
		st.fn.Served++
		st.fn.CPISum += r.CPI()
		res.CPI.Add(r.CPI())
		res.ServiceCycles.Add(float64(r.Cycles))
		lat := float64(core.Now() - a.at)
		res.LatencyCycles.Add(lat)
		res.latencies = append(res.latencies, lat)
		coreServed[idx]++
		st.lastDone = core.Now()
		st.hasDone = true
		st.lastCore = idx
		st.servedMark = coreServed[idx]

		remaining[a.inst]--
		if remaining[a.inst] > 0 {
			heap.Push(&q, arrival{at: a.at + nextGap(arrivalMs), inst: a.inst, seq: seq})
			seq++
		}
	}

	var span mem.Cycle
	for _, c := range s.Cores {
		if d := c.Now() - start; d > span {
			span = d
		}
	}
	if span > 0 {
		res.BusyFraction = float64(busy) / (float64(span) * float64(len(s.Cores)))
	}
	res.SimulatedMs = float64(span) / cyclesPerMs
	return res, nil
}

// String renders a one-paragraph summary, with a per-function breakdown of
// cold starts and shedding when any occurred.
func (r *TrafficResult) String() string {
	shed := ""
	if r.Shed > 0 {
		shed = fmt.Sprintf(", %d shed", r.Shed)
	}
	extra := ""
	if r.PrewarmHits > 0 {
		extra += fmt.Sprintf(", %d pre-warm hits", r.PrewarmHits)
	}
	if r.PlacementMigrations > 0 {
		extra += fmt.Sprintf(", %d migrations", r.PlacementMigrations)
	}
	if r.JukeboxRebinds > 0 {
		extra += fmt.Sprintf(", %d jukebox rebinds", r.JukeboxRebinds)
	}
	out := fmt.Sprintf(
		"served %d invocations over %.0f ms simulated (%.1f%% core busy, %d cold starts%s%s); "+
			"mean CPI %.3f; service %.0f cycles mean; latency %.0f mean / %.0f p99 cycles; "+
			"instances resident %.0f ms",
		r.Served, r.SimulatedMs, r.BusyFraction*100, r.ColdStarts, shed, extra,
		r.CPI.Mean(), r.ServiceCycles.Mean(), r.LatencyCycles.Mean(), r.P99LatencyCycles(),
		r.ResidentMs)
	if r.ColdStarts > 0 || r.Shed > 0 {
		var parts []string
		for _, f := range r.PerFunction {
			if f.ColdStarts > 0 || f.Shed > 0 {
				parts = append(parts, fmt.Sprintf("%s %d cold/%d shed", f.Name, f.ColdStarts, f.Shed))
			}
		}
		if len(parts) > 0 {
			out += "; by function: " + strings.Join(parts, ", ")
		}
	}
	return out
}

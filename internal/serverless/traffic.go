package serverless

import (
	"container/heap"
	"fmt"
	"math"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/stats"
)

// TrafficConfig drives a system-level simulation: invocations arrive for
// each deployed instance as an independent arrival process and are served
// in arrival order on the server's core. Interleaving here is *natural* —
// running other instances thrashes the shared microarchitectural state, no
// explicit flush — so lukewarm behavior emerges the way it does in
// production (Sec. 2.2).
type TrafficConfig struct {
	// MeanIATms is each instance's mean inter-arrival time in milliseconds.
	// The Azure study the paper builds on (Shahrad et al., ATC'20) puts the
	// vast majority of warm invocations at 1 s to a few minutes.
	MeanIATms float64
	// Poisson selects exponential inter-arrival times; false gives fixed
	// spacing (instances are phase-shifted either way).
	Poisson bool
	// HeavyTail layers burstiness over the Poisson process, approximating
	// the Azure production traces (Shahrad et al., ATC'20): half the gaps
	// are short intra-burst arrivals, half are long lulls, preserving the
	// configured mean. Implies Poisson.
	HeavyTail bool
	// InvocationsPerInstance bounds the run.
	InvocationsPerInstance int
	// KeepAliveMs evicts instances idle longer than this (0 = keep forever,
	// the paper's 5-60 min window is far above typical IATs). An evicted
	// instance's next invocation is a cold start.
	KeepAliveMs float64
	// ColdStartMs is the instance boot cost charged to a cold start
	// (paper Sec. 2.1: "hundreds of milliseconds in today's clouds").
	ColdStartMs float64
	// AmbientThrash treats the deployed instances as a sample of a much
	// larger co-resident population: idle gaps apply the server's
	// ThrashBytesPerMs partial-eviction model (as in the Fig. 1 sweep) in
	// addition to the natural interleaving of the deployed instances.
	AmbientThrash bool
	// MaxQueue bounds the number of invocations waiting past their arrival
	// time at dispatch; when the backlog reaches the bound the dispatcher
	// sheds the invocation instead of serving it (0 = unbounded). This is
	// the overload valve: under saturating bursts the arrival heap stays
	// bounded and throughput degrades smoothly.
	MaxQueue int
	// ShedAfterMs sheds any invocation that has already waited longer than
	// this when it reaches the dispatcher (0 = no deadline). Models a
	// request timeout at the front end.
	ShedAfterMs float64
	// Seed determinizes arrivals.
	Seed uint64
}

// Validate reports whether the traffic configuration is serveable. Errors
// wrap cfgerr.ErrBadConfig.
func (c TrafficConfig) Validate() error {
	switch {
	case c.MeanIATms <= 0:
		return cfgerr.New("traffic: MeanIATms must be positive, got %g", c.MeanIATms)
	case c.InvocationsPerInstance <= 0:
		return cfgerr.New("traffic: InvocationsPerInstance must be positive, got %d", c.InvocationsPerInstance)
	case c.KeepAliveMs < 0:
		return cfgerr.New("traffic: negative KeepAliveMs %g", c.KeepAliveMs)
	case c.ColdStartMs < 0:
		return cfgerr.New("traffic: negative ColdStartMs %g", c.ColdStartMs)
	case c.MaxQueue < 0:
		return cfgerr.New("traffic: negative MaxQueue %d", c.MaxQueue)
	case c.ShedAfterMs < 0:
		return cfgerr.New("traffic: negative ShedAfterMs %g", c.ShedAfterMs)
	}
	return nil
}

// DefaultTrafficConfig returns a 1 s Poisson workload, the representative
// point of the paper's IAT discussion.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{
		MeanIATms:              1000,
		Poisson:                true,
		InvocationsPerInstance: 6,
		ColdStartMs:            250,
		Seed:                   1,
	}
}

// TrafficResult summarizes a traffic run.
type TrafficResult struct {
	// Served counts completed invocations.
	Served int
	// Shed counts invocations dropped by the overload valve (MaxQueue bound
	// or ShedAfterMs deadline) instead of being served.
	Shed int
	// ColdStarts counts invocations that found their instance evicted.
	ColdStarts int
	// CPI summarizes per-invocation CPI across all instances.
	CPI stats.Summary
	// ServiceCycles summarizes per-invocation service time (execution
	// only), in cycles.
	ServiceCycles stats.Summary
	// LatencyCycles summarizes arrival-to-completion latency (queueing +
	// cold start + execution), in cycles.
	LatencyCycles stats.Summary
	// BusyFraction is the core's utilization over the simulated span.
	BusyFraction float64
	// SimulatedMs is the simulated wall-clock span.
	SimulatedMs float64
	latencies   []float64
}

// P99LatencyCycles reports the 99th-percentile latency.
func (r *TrafficResult) P99LatencyCycles() float64 {
	return stats.Percentile(r.latencies, 99)
}

// arrival is one pending invocation.
type arrival struct {
	at   mem.Cycle
	inst *Instance
	seq  int // tie-breaker for determinism
}

// arrivalQueue is a min-heap of arrivals ordered by time.
type arrivalQueue []arrival

func (q arrivalQueue) Len() int { return len(q) }
func (q arrivalQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q arrivalQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *arrivalQueue) Push(x any)   { *q = append(*q, x.(arrival)) }
func (q *arrivalQueue) Pop() any     { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }
func (q arrivalQueue) Peek() arrival { return q[0] }

// ServeTraffic runs the arrival process over every deployed instance until
// each has received cfg.InvocationsPerInstance invocations, serving them
// FIFO on the core. It returns the aggregate result, or an error (wrapping
// cfgerr.ErrBadConfig) for an unserveable configuration or a server with no
// deployed instances.
//
// Idle gaps advance the clock but do not thrash state: with multiple
// co-resident instances the interleaved executions themselves provide the
// (realistic, partial) state destruction.
func (s *Server) ServeTraffic(cfg TrafficConfig) (TrafficResult, error) {
	if err := cfg.Validate(); err != nil {
		return TrafficResult{}, err
	}
	if len(s.instances) == 0 {
		return TrafficResult{}, cfgerr.New("traffic: server has no deployed instances")
	}
	rng := program.NewRNG(program.Mix(0x7AF1C, cfg.Seed))
	cyclesPerMs := s.cfg.CPU.FreqGHz * 1e6

	exp := func(mean float64) float64 {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		return -math.Log(u) * mean
	}
	nextIAT := func() mem.Cycle {
		ms := cfg.MeanIATms
		switch {
		case cfg.HeavyTail:
			// A 50/50 mixture of short intra-burst gaps (mean/4) and long
			// lulls (7*mean/4) keeps the overall mean at MeanIATms.
			if rng.Bool(0.5) {
				ms = exp(cfg.MeanIATms / 4)
			} else {
				ms = exp(cfg.MeanIATms * 7 / 4)
			}
		case cfg.Poisson:
			ms = exp(cfg.MeanIATms)
		}
		c := mem.Cycle(ms * cyclesPerMs)
		if c == 0 {
			c = 1
		}
		return c
	}

	var q arrivalQueue
	seq := 0
	remaining := map[*Instance]int{}
	lastDone := map[*Instance]mem.Cycle{}
	for _, inst := range s.instances {
		remaining[inst] = cfg.InvocationsPerInstance
		// Phase-shift first arrivals across instances.
		first := s.Core.Now() + mem.Cycle(rng.Float64()*cfg.MeanIATms*cyclesPerMs)
		heap.Push(&q, arrival{at: first, inst: inst, seq: seq})
		seq++
	}

	var res TrafficResult
	start := s.Core.Now()
	var busy mem.Cycle

	for q.Len() > 0 {
		a := heap.Pop(&q).(arrival)
		// Dispatch to the earliest-available core.
		idx := 0
		for i := range s.Cores {
			if s.Cores[i].Now() < s.Cores[idx].Now() {
				idx = i
			}
		}
		core := s.Cores[idx]
		// Overload valve: shed before touching any simulated state, so a
		// shed decision never perturbs the microarchitecture. An invocation
		// is shed when it already blew its deadline waiting for a core, or
		// when the due backlog (this arrival plus queued arrivals whose time
		// has passed) exceeds the configured bound. The client's later
		// requests still arrive, so the process drains deterministically.
		if cfg.ShedAfterMs > 0 || cfg.MaxQueue > 0 {
			waitedMs := 0.0
			if core.Now() > a.at {
				waitedMs = float64(core.Now()-a.at) / cyclesPerMs
			}
			due := 1
			for _, p := range q {
				if p.at <= core.Now() {
					due++
				}
			}
			if (cfg.ShedAfterMs > 0 && waitedMs > cfg.ShedAfterMs) ||
				(cfg.MaxQueue > 0 && due > cfg.MaxQueue) {
				res.Shed++
				remaining[a.inst]--
				if remaining[a.inst] > 0 {
					heap.Push(&q, arrival{at: a.at + nextIAT(), inst: a.inst, seq: seq})
					seq++
				}
				continue
			}
		}
		if core.Now() < a.at {
			gap := a.at - core.Now()
			if cfg.AmbientThrash {
				s.AdvanceIATOn(idx, float64(gap)/cyclesPerMs)
			} else {
				core.AdvanceCycles(gap)
			}
		}
		// Keep-alive: evicted instances cold-start.
		if cfg.KeepAliveMs > 0 {
			if last, ok := lastDone[a.inst]; ok {
				idle := float64(a.at-last) / cyclesPerMs
				if idle > cfg.KeepAliveMs {
					res.ColdStarts++
					core.AdvanceCycles(mem.Cycle(cfg.ColdStartMs * cyclesPerMs))
				}
			}
		}
		r := s.InvokeOn(idx, a.inst)
		busy += r.Cycles
		res.Served++
		res.CPI.Add(r.CPI())
		res.ServiceCycles.Add(float64(r.Cycles))
		lat := float64(core.Now() - a.at)
		res.LatencyCycles.Add(lat)
		res.latencies = append(res.latencies, lat)
		lastDone[a.inst] = core.Now()

		remaining[a.inst]--
		if remaining[a.inst] > 0 {
			heap.Push(&q, arrival{at: a.at + nextIAT(), inst: a.inst, seq: seq})
			seq++
		}
	}

	var span mem.Cycle
	for _, c := range s.Cores {
		if d := c.Now() - start; d > span {
			span = d
		}
	}
	if span > 0 {
		res.BusyFraction = float64(busy) / (float64(span) * float64(len(s.Cores)))
	}
	res.SimulatedMs = float64(span) / cyclesPerMs
	return res, nil
}

// String renders a one-paragraph summary.
func (r *TrafficResult) String() string {
	shed := ""
	if r.Shed > 0 {
		shed = fmt.Sprintf(", %d shed", r.Shed)
	}
	return fmt.Sprintf(
		"served %d invocations over %.0f ms simulated (%.1f%% core busy, %d cold starts%s); "+
			"mean CPI %.3f; service %.0f cycles mean; latency %.0f mean / %.0f p99 cycles",
		r.Served, r.SimulatedMs, r.BusyFraction*100, r.ColdStarts, shed,
		r.CPI.Mean(), r.ServiceCycles.Mean(), r.LatencyCycles.Mean(), r.P99LatencyCycles())
}

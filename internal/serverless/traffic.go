package serverless

import (
	"fmt"
	"strings"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
	"lukewarm/internal/predict"
	"lukewarm/internal/program"
	"lukewarm/internal/sched"
	"lukewarm/internal/stats"
)

// TrafficConfig drives a system-level simulation: invocations arrive for
// each deployed instance as an independent arrival process and are served
// in arrival order on the core a placement policy picks. Interleaving here
// is *natural* — running other instances thrashes the shared
// microarchitectural state, no explicit flush — so lukewarm behavior emerges
// the way it does in production (Sec. 2.2).
type TrafficConfig struct {
	// MeanIATms is each instance's mean inter-arrival time in milliseconds.
	// The Azure study the paper builds on (Shahrad et al., ATC'20) puts the
	// vast majority of warm invocations at 1 s to a few minutes.
	MeanIATms float64
	// Poisson selects exponential inter-arrival times; false gives fixed
	// spacing (instances are phase-shifted either way).
	Poisson bool
	// HeavyTail layers burstiness over the Poisson process, approximating
	// the Azure production traces (Shahrad et al., ATC'20): half the gaps
	// are short intra-burst arrivals, half are long lulls, preserving the
	// configured mean. Implies Poisson.
	HeavyTail bool
	// Diurnal selects near-periodic arrivals modulated by a fleet-wide
	// sinusoidal rate cycle (see sched.Diurnal) — individually predictable
	// gaps whose rate drifts over the period, the common pattern in the
	// Azure traces. Takes precedence over Bursty, HeavyTail and Poisson.
	Diurnal bool
	// Bursty selects the adversarial mixture shape (sched.Bursty): tight
	// intra-burst gaps most of the time, long lulls otherwise, mean
	// preserved — the worst case for gap forecasters, whose modal
	// prediction fires into the occasional lull and is wasted. Takes
	// precedence over HeavyTail and Poisson; Diurnal takes precedence
	// over it.
	Bursty bool
	// DiurnalPeriodMs is the diurnal cycle length; 0 selects the default
	// (sched.DiurnalPeriodInMeans mean gaps).
	DiurnalPeriodMs float64
	// InvocationsPerInstance bounds the run.
	InvocationsPerInstance int
	// KeepAliveMs evicts instances idle longer than this; an evicted
	// instance's next invocation is a cold start (paper Sec. 2.1). 0 is the
	// default — keep instances forever, the paper's 5-60 min provider
	// window being far above typical IATs.
	//
	// Deprecated as a "keep forever" request: 0 doubles as the zero value,
	// so it cannot express the intent explicitly. Set NoKeepAlive for that;
	// 0 stays honored for compatibility. KeepAlive, when non-nil,
	// supersedes both fields.
	KeepAliveMs float64
	// NoKeepAlive explicitly requests that instances are never evicted
	// (equivalent to the KeepAliveMs = 0 default, but self-documenting).
	// Setting it together with a positive KeepAliveMs is a configuration
	// error.
	NoKeepAlive bool
	// ColdStartMs is the instance boot cost charged to a cold start
	// (paper Sec. 2.1: "hundreds of milliseconds in today's clouds").
	ColdStartMs float64
	// AmbientThrash treats the deployed instances as a sample of a much
	// larger co-resident population: idle gaps apply the server's
	// ThrashBytesPerMs partial-eviction model (as in the Fig. 1 sweep) in
	// addition to the natural interleaving of the deployed instances.
	AmbientThrash bool
	// MaxQueue bounds the number of invocations waiting past their arrival
	// time at dispatch; when the backlog reaches the bound the dispatcher
	// sheds the invocation instead of serving it (0 = unbounded). This is
	// the overload valve: under saturating bursts the arrival heap stays
	// bounded and throughput degrades smoothly.
	MaxQueue int
	// ShedAfterMs sheds any invocation that has already waited longer than
	// this when it reaches the dispatcher (0 = no deadline). Models a
	// request timeout at the front end.
	ShedAfterMs float64
	// Placer picks the core that serves each invocation. Nil selects
	// sched.EarliestAvailable(), the historical dispatch rule. Stateful
	// placers (RoundRobin, StickyAffinity) must not be shared between
	// concurrent ServeTraffic runs.
	Placer sched.Placer
	// KeepAlive decides instance eviction and pre-warming. Nil derives the
	// policy from KeepAliveMs/NoKeepAlive (FixedTimeout or NoEvict).
	// Learning policies (HybridHistogram) must not be shared between
	// concurrent ServeTraffic runs.
	KeepAlive sched.KeepAlive
	// SyncReplay charges dispatch-time warm-up replay to the invocation's
	// critical path: the instance's restore (REAP's userspace bulk read,
	// Jukebox's replay stream) runs to completion before execution begins,
	// and its duration counts toward the invocation's service time, CPI and
	// latency. This is the production semantics of snapshot restore — the
	// function cannot run ahead of its own working set — and it is exactly
	// the cost a timely pre-warm removes: a pre-warmed instance already ran
	// its replay off the critical path, so its dispatch pays only the
	// unfinished tail (if the replay fired late). Off by default, which
	// preserves the historical overlap model where replay races execution.
	SyncReplay bool
	// Predict, when non-nil, arms predictive pre-warming: a forecaster
	// predicts each resident instance's next arrival and its warm-up
	// mechanisms (Jukebox replay, REAP restore) are pre-run LeadMs before
	// it, so on-time arrivals skip the replay phase and start
	// microarchitecturally warm. Mispredictions are charged to the
	// TrafficResult.Prewarm ledger. The forecaster (and the optional
	// shared Budget) is stateful; a cluster passes the same *predict.Config
	// to every node's sim deliberately, single-node runs must not share it
	// between concurrent simulations.
	Predict *predict.Config
	// Seed determinizes arrivals.
	Seed uint64
}

// Validate reports whether the traffic configuration is serveable. Errors
// wrap cfgerr.ErrBadConfig.
func (c TrafficConfig) Validate() error {
	switch {
	case c.MeanIATms <= 0:
		return cfgerr.New("traffic: MeanIATms must be positive, got %g", c.MeanIATms)
	case c.InvocationsPerInstance <= 0:
		return cfgerr.New("traffic: InvocationsPerInstance must be positive, got %d", c.InvocationsPerInstance)
	case c.KeepAliveMs < 0:
		return cfgerr.New("traffic: negative KeepAliveMs %g", c.KeepAliveMs)
	case c.NoKeepAlive && c.KeepAliveMs > 0:
		return cfgerr.New("traffic: NoKeepAlive contradicts KeepAliveMs %g", c.KeepAliveMs)
	case c.ColdStartMs < 0:
		return cfgerr.New("traffic: negative ColdStartMs %g", c.ColdStartMs)
	case c.DiurnalPeriodMs < 0:
		return cfgerr.New("traffic: negative DiurnalPeriodMs %g", c.DiurnalPeriodMs)
	case c.MaxQueue < 0:
		return cfgerr.New("traffic: negative MaxQueue %d", c.MaxQueue)
	case c.ShedAfterMs < 0:
		return cfgerr.New("traffic: negative ShedAfterMs %g", c.ShedAfterMs)
	}
	return c.Predict.Validate()
}

// shape resolves the configured arrival-process shape.
func (c TrafficConfig) shape() sched.Shape {
	s := sched.Shape{Kind: sched.Fixed, MeanIATms: c.MeanIATms, PeriodMs: c.DiurnalPeriodMs}
	switch {
	case c.Diurnal:
		s.Kind = sched.Diurnal
	case c.Bursty:
		s.Kind = sched.Bursty
	case c.HeavyTail:
		s.Kind = sched.HeavyTail
	case c.Poisson:
		s.Kind = sched.Poisson
	}
	return s
}

// Shape exposes the resolved arrival-process shape (the cluster front end
// drives the same generator at fleet scope).
func (c TrafficConfig) Shape() sched.Shape { return c.shape() }

// placer resolves the placement policy.
func (c TrafficConfig) placer() sched.Placer {
	if c.Placer != nil {
		return c.Placer
	}
	return sched.EarliestAvailable()
}

// keepAlive resolves the eviction policy.
func (c TrafficConfig) keepAlive() sched.KeepAlive {
	switch {
	case c.KeepAlive != nil:
		return c.KeepAlive
	//lukewarm:floateq 0 is the no-keep-alive config sentinel, an exact configured value, not arithmetic
	case c.NoKeepAlive || c.KeepAliveMs == 0:
		return sched.NoEvict()
	}
	return sched.FixedTimeout(c.KeepAliveMs)
}

// DefaultTrafficConfig returns a 1 s Poisson workload, the representative
// point of the paper's IAT discussion.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{
		MeanIATms:              1000,
		Poisson:                true,
		InvocationsPerInstance: 6,
		ColdStartMs:            250,
		Seed:                   1,
	}
}

// FuncTraffic is one function's slice of a traffic run, in deployment
// order: the per-function breakdown of the fleet-wide counters.
type FuncTraffic struct {
	// Name is the function name.
	Name string
	// Served, ColdStarts and Shed are this function's share of the
	// fleet-wide counters.
	Served, ColdStarts, Shed int
	// Failed counts dispatches that ran but whose response was lost to an
	// injected instance crash (fleet simulations); always 0 in plain
	// ServeTraffic runs.
	Failed int
	// CPISum accumulates per-invocation CPI; CPISum/Served is the
	// function's mean CPI over the run.
	CPISum float64
	// PrewarmsUsed and PrewarmsWasted are this function's share of the
	// predictive pre-warm ledger (always 0 without TrafficConfig.Predict);
	// wasted includes end-of-run expiries.
	PrewarmsUsed, PrewarmsWasted int
	// PredJudged counts this function's idle gaps judged with a prediction
	// in hand; PredAbsErrMsSum accumulates |predicted - observed| over them.
	PredJudged      int
	PredAbsErrMsSum float64
}

// MeanCPI reports the function's mean per-invocation CPI.
func (f FuncTraffic) MeanCPI() float64 {
	if f.Served == 0 {
		return 0
	}
	return f.CPISum / float64(f.Served)
}

// MeanAbsPredErrMs reports the function's mean absolute prediction error
// over judged gaps.
func (f FuncTraffic) MeanAbsPredErrMs() float64 {
	if f.PredJudged == 0 {
		return 0
	}
	return f.PredAbsErrMsSum / float64(f.PredJudged)
}

// TrafficResult summarizes a traffic run.
type TrafficResult struct {
	// Offered counts every invocation that reached the dispatcher:
	// Offered == Served + Shed + Failed (the conservation invariant
	// faults.AuditTraffic enforces).
	Offered int
	// Served counts completed invocations.
	Served int
	// Shed counts invocations dropped by the overload valve (MaxQueue bound
	// or ShedAfterMs deadline) instead of being served.
	Shed int
	// Failed counts invocations that executed but whose response was lost
	// to an injected instance crash. Plain ServeTraffic runs never fail
	// invocations; the cluster front end injects them via TrafficSim.
	Failed int
	// ColdStarts counts invocations that found their instance evicted.
	ColdStarts int
	// PrewarmHits counts invocations whose instance had been evicted but
	// was restored by the keep-alive policy's pre-warm before they arrived
	// (no cold start charged).
	PrewarmHits int
	// PlacementMigrations counts invocations served on a different core
	// than their function's previous one.
	PlacementMigrations int
	// JukeboxRebinds counts invocations that had to program their Jukebox
	// base/limit registers on a core that did not already hold them (first
	// invocations and migrations). Zero when Jukebox is disabled.
	JukeboxRebinds int
	// ResidentMs sums, across all idle gaps, the time instances stayed
	// memory-resident — the instance-memory budget the keep-alive policy
	// spent. Busy (executing) time is not included.
	ResidentMs float64
	// IdleMs sums every judged idle gap (every dispatch of an instance
	// with a previous completion), and the Tier fields partition it by the
	// readiness ladder: TierColdMs the evicted remainder of gaps that
	// cold-started, TierPrewarmedMs the tail of gaps spent with a used
	// pre-warm's replay already installed, TierResidentMs everything else
	// (memory-resident, microarchitecturally decaying). The partition
	// invariant TierColdMs + TierResidentMs + TierPrewarmedMs == IdleMs is
	// enforced by faults.AuditTraffic.
	IdleMs          float64
	TierColdMs      float64
	TierResidentMs  float64
	TierPrewarmedMs float64
	// Prewarm is the predictive pre-warm conservation ledger (zero without
	// TrafficConfig.Predict); faults.AuditPredict checks its invariants.
	Prewarm predict.Ledger
	// SyncReplays counts dispatches that paid a synchronous dispatch-time
	// replay (TrafficConfig.SyncReplay), and SyncReplayMs is the total
	// critical-path time they spent in it. Both are 0 without SyncReplay.
	SyncReplays  int
	SyncReplayMs float64
	// PerFunction breaks Served/ColdStarts/Shed/Failed down by function, in
	// deployment order.
	PerFunction []FuncTraffic
	// CPI summarizes per-invocation CPI across all instances.
	CPI stats.Summary
	// ServiceCycles summarizes per-invocation service time (execution
	// only), in cycles.
	ServiceCycles stats.Summary
	// LatencyCycles summarizes arrival-to-completion latency (queueing +
	// cold start + execution), in cycles.
	LatencyCycles stats.Summary
	// BusyFraction is the core's utilization over the simulated span.
	BusyFraction float64
	// SimulatedMs is the simulated wall-clock span.
	SimulatedMs float64
	latencies   []float64
}

// P99LatencyCycles reports the 99th-percentile latency.
func (r *TrafficResult) P99LatencyCycles() float64 {
	return stats.Percentile(r.latencies, 99)
}

// ColdStartRate reports the fraction of served invocations that cold-started.
func (r *TrafficResult) ColdStartRate() float64 {
	if r.Served == 0 {
		return 0
	}
	return float64(r.ColdStarts) / float64(r.Served)
}

// ShedRate reports the fraction of offered invocations that were shed.
func (r *TrafficResult) ShedRate() float64 {
	if offered := r.Served + r.Shed; offered > 0 {
		return float64(r.Shed) / float64(offered)
	}
	return 0
}

// JukeboxCoverage reports the fraction of served invocations that found
// their Jukebox metadata registers already programmed on the chosen core
// (no Bind churn). It is 0 when Jukebox is disabled.
func (r *TrafficResult) JukeboxCoverage() float64 {
	if r.Served == 0 || r.JukeboxRebinds == 0 {
		return 0
	}
	return 1 - float64(r.JukeboxRebinds)/float64(r.Served)
}

// TrafficSummary is the flat, gob-safe projection of a TrafficResult: every
// field is a plain exported value, so it round-trips through the result
// cache unchanged. Experiment runners store it inside runner.Measurement.
type TrafficSummary struct {
	Served, Shed, ColdStarts         int
	Offered, Failed                  int
	PrewarmHits, Migrations, Rebinds int
	MeanCPI, MeanServiceCycles       float64
	MeanLatencyCycles, P99LatencyCyc float64
	BusyFraction, SimulatedMs        float64
	ResidentMs                       float64
	// Readiness-tier partition of idle time (see TrafficResult.IdleMs).
	IdleMs, TierColdMs              float64
	TierResidentMs, TierPrewarmedMs float64
	// Predictive pre-warm ledger projection (see predict.Ledger).
	Prewarm predict.Ledger
	// Synchronous dispatch-time replay accounting (see
	// TrafficResult.SyncReplays).
	SyncReplays  int
	SyncReplayMs float64
	PerFunction  []FuncTraffic
}

// Summary projects the result into its cacheable form.
func (r *TrafficResult) Summary() TrafficSummary {
	return TrafficSummary{
		Served: r.Served, Shed: r.Shed, ColdStarts: r.ColdStarts,
		Offered: r.Offered, Failed: r.Failed,
		PrewarmHits: r.PrewarmHits, Migrations: r.PlacementMigrations,
		Rebinds:           r.JukeboxRebinds,
		MeanCPI:           r.CPI.Mean(),
		MeanServiceCycles: r.ServiceCycles.Mean(),
		MeanLatencyCycles: r.LatencyCycles.Mean(),
		P99LatencyCyc:     r.P99LatencyCycles(),
		BusyFraction:      r.BusyFraction,
		SimulatedMs:       r.SimulatedMs,
		ResidentMs:        r.ResidentMs,
		IdleMs:            r.IdleMs,
		TierColdMs:        r.TierColdMs,
		TierResidentMs:    r.TierResidentMs,
		TierPrewarmedMs:   r.TierPrewarmedMs,
		Prewarm:           r.Prewarm,
		SyncReplays:       r.SyncReplays,
		SyncReplayMs:      r.SyncReplayMs,
		PerFunction:       r.PerFunction,
	}
}

// ColdStartRate mirrors TrafficResult.ColdStartRate.
func (s TrafficSummary) ColdStartRate() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Served)
}

// ShedRate mirrors TrafficResult.ShedRate.
func (s TrafficSummary) ShedRate() float64 {
	if offered := s.Served + s.Shed; offered > 0 {
		return float64(s.Shed) / float64(offered)
	}
	return 0
}

// JukeboxCoverage mirrors TrafficResult.JukeboxCoverage.
func (s TrafficSummary) JukeboxCoverage() float64 {
	if s.Served == 0 || s.Rebinds == 0 {
		return 0
	}
	return 1 - float64(s.Rebinds)/float64(s.Served)
}

// ResidentMsPerServed reports the mean instance-memory spend per served
// invocation — the budget axis keep-alive policies are compared on.
func (s TrafficSummary) ResidentMsPerServed() float64 {
	if s.Served == 0 {
		return 0
	}
	return s.ResidentMs / float64(s.Served)
}

// arrival is one pending invocation.
type arrival struct {
	at   mem.Cycle
	inst *Instance
	seq  int // tie-breaker for determinism
}

// arrivalQueue is a typed min-heap of arrivals ordered by (time, seq). The
// ordering is total, so the pop sequence — the only observable — is
// independent of heap internals; the typed implementation exists so pushes
// do not box each arrival into an interface (the dispatch loop's last
// steady-state allocation).
type arrivalQueue []arrival

func (q arrivalQueue) Len() int { return len(q) }
func (q arrivalQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push adds a onto the heap.
//lukewarm:hotpath noalloc one push per generated invocation; boxing here was the dispatch loop's last steady-state allocation
func (q *arrivalQueue) push(a arrival) {
	*q = append(*q, a) //lukewarm:hotalloc the backing array grows to the in-flight high-water mark once, then is reused
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum arrival.
//lukewarm:hotpath noalloc,noescape one pop per dispatched invocation; pure in-place swaps
func (q *arrivalQueue) pop() arrival {
	h := *q
	n := len(h) - 1
	v := h[0]
	h[0] = h[n]
	*q = h[:n]
	h = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.less(r, l) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return v
}

func (q arrivalQueue) Peek() arrival { return q[0] }

// instSched is the per-instance bookkeeping the scheduling policies read.
type instSched struct {
	fn         *FuncTraffic
	lastDone   mem.Cycle
	hasDone    bool
	lastCore   int // core of the last completion, -1 before the first
	servedMark int // coreServed[lastCore] at that completion
	// forceCold marks an instance whose warm state was destroyed outside
	// the keep-alive policy's control (node or instance crash): its next
	// dispatch cold-starts unconditionally. Never set by ServeTraffic.
	forceCold bool
}

// WarmthClass classifies one served invocation's microarchitectural state
// at dispatch — the cold/lukewarm/warm split the fleet results report.
type WarmthClass uint8

// The three warmth classes of the paper's framing.
const (
	// ClassCold: the instance was evicted (or never ran) and paid the boot
	// charge — or would have, for a first invocation.
	ClassCold WarmthClass = iota
	// ClassLukewarm: the instance was memory-resident but other invocations
	// ran on its core since its last completion (state partially thrashed),
	// or it came back on a different core.
	ClassLukewarm
	// ClassWarm: back-to-back on the same core with nothing in between —
	// the fully warm reference regime.
	ClassWarm
)

// String names the class.
func (c WarmthClass) String() string {
	switch c {
	case ClassCold:
		return "cold"
	case ClassWarm:
		return "warm"
	default:
		return "lukewarm"
	}
}

// DispatchOutcome reports what one dispatched arrival did to the node.
type DispatchOutcome struct {
	// Shed reports the arrival was dropped by an overload valve; nothing
	// else in the outcome is meaningful.
	Shed bool
	// Failed reports the invocation executed (cycles were spent, state was
	// thrashed) but its response was lost: the dispatch was Doomed.
	Failed bool
	// Class is the invocation's warmth class at dispatch.
	Class WarmthClass
	// ColdStart reports the keep-alive (or a crash) charged a cold start.
	ColdStart bool
	// Prewarmed reports the keep-alive's pre-warm absorbed the eviction.
	Prewarmed bool
	// Core is the core index that served the invocation.
	Core int
	// Done is the chosen core's clock after completion.
	Done mem.Cycle
	// LatencyCycles is arrival-to-completion time, ServiceCycles execution
	// time only, CPI the invocation's cycles per instruction.
	LatencyCycles, ServiceCycles, CPI float64
}

// TrafficSim is the dispatch engine underneath ServeTraffic, factored out so
// a fleet front end (internal/cluster) can drive one node's instances
// arrival-by-arrival while owning the arrival processes, retries and fault
// injection itself. The sim owns everything node-local: core placement,
// overload valves, keep-alive judgments, migration/rebind accounting and the
// per-node TrafficResult. It draws no randomness of its own — determinism is
// exactly the caller's arrival order.
type TrafficSim struct {
	srv         *Server
	cfg         TrafficConfig
	placer      sched.Placer
	keepAlive   sched.KeepAlive
	cyclesPerMs float64

	res        TrafficResult
	state      map[*Instance]*instSched
	perFn      []*FuncTraffic
	insts      []*Instance // registration order, for the Finish expiry sweep
	coreServed []int
	views      []sched.CoreView
	start      mem.Cycle
	busy       mem.Cycle
	prewarmer  *predict.Prewarmer
}

// NewTrafficSim builds a dispatch engine for srv under cfg. The server's
// already-deployed instances are registered in deployment order; instances
// deployed later must be registered explicitly.
func (s *Server) NewTrafficSim(cfg TrafficConfig) (*TrafficSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ts := &TrafficSim{
		srv:         s,
		cfg:         cfg,
		placer:      cfg.placer(),
		keepAlive:   cfg.keepAlive(),
		cyclesPerMs: s.cfg.CPU.FreqGHz * 1e6,
		state:       map[*Instance]*instSched{},
		coreServed:  make([]int, len(s.Cores)),
		views:       make([]sched.CoreView, len(s.Cores)),
		start:       s.Core.Now(),
	}
	if cfg.Predict != nil {
		ts.prewarmer = predict.NewPrewarmer(cfg.Predict)
	}
	for _, inst := range s.instances {
		ts.Register(inst)
	}
	return ts, nil
}

// Register adds per-instance bookkeeping (and a PerFunction row) for inst.
func (ts *TrafficSim) Register(inst *Instance) {
	if ts.state[inst] != nil {
		return
	}
	fn := &FuncTraffic{Name: inst.Workload.Name}
	ts.perFn = append(ts.perFn, fn)
	ts.insts = append(ts.insts, inst)
	ts.state[inst] = &instSched{fn: fn, lastCore: -1}
}

// CyclesPerMs reports the clock conversion factor of the underlying server.
func (ts *TrafficSim) CyclesPerMs() float64 { return ts.cyclesPerMs }

// EarliestFreeAt reports when the node's least-loaded core drains its
// backlog — the fleet placer's per-node FreeAt signal.
func (ts *TrafficSim) EarliestFreeAt() mem.Cycle {
	min := ts.srv.Cores[0].Now()
	for _, c := range ts.srv.Cores[1:] {
		if n := c.Now(); n < min {
			min = n
		}
	}
	return min
}

// MarkCrashed models the instance dying with its host state: the address
// space and any Jukebox metadata are reclaimed (Instance.Evict), the REAP
// manifest is lost with the host's snapshot store, and the next dispatch
// cold-starts unconditionally, bypassing the keep-alive policy.
func (ts *TrafficSim) MarkCrashed(inst *Instance) { ts.markCrashed(inst, false) }

// MarkCrashedShipped is MarkCrashed for a fleet that ships REAP record
// files off-host: the instance still cold-starts, but its sealed manifest
// survives, so the restart restores its working set instead of demand-
// faulting everything.
func (ts *TrafficSim) MarkCrashedShipped(inst *Instance) { ts.markCrashed(inst, true) }

func (ts *TrafficSim) markCrashed(inst *Instance, shipManifest bool) {
	st := ts.state[inst]
	if st == nil {
		return
	}
	inst.Evict()
	if !shipManifest {
		inst.DropManifest()
	}
	st.forceCold = true
	st.hasDone = false
}

// prewarmArmed reports whether inst has sealed warm-up state the selected
// mechanism could replay ahead of an arrival.
func (ts *TrafficSim) prewarmArmed(inst *Instance, mech predict.Mech) bool {
	if inst.Reap != nil && mech != predict.MechJukebox &&
		inst.Reap.RestoreEnabled() && inst.Reap.RestoreFootprintBytes() > 0 {
		return true
	}
	if inst.Jukebox != nil && mech != predict.MechReap &&
		inst.Jukebox.ReplayEnabled() && inst.Jukebox.ReplayFootprintBytes() > 0 {
		return true
	}
	return false
}

// prewarmCharge estimates what a wasted pre-warm of inst costs: the full
// replay prefetch volume of the selected mechanism(s) and the replay-engine
// occupancy at one line per cycle. Wasted and partial pre-warms are never
// physically executed (the warmth they installed is gone by dispatch), so
// the ledger charges this static estimate instead.
func (ts *TrafficSim) prewarmCharge(inst *Instance, mech predict.Mech) predict.Charge {
	var bytes uint64
	if inst.Reap != nil && mech != predict.MechJukebox && inst.Reap.RestoreEnabled() {
		bytes += inst.Reap.RestoreFootprintBytes()
	}
	if inst.Jukebox != nil && mech != predict.MechReap && inst.Jukebox.ReplayEnabled() {
		bytes += inst.Jukebox.ReplayFootprintBytes()
	}
	return predict.Charge{
		Bytes:  bytes,
		BusyMs: float64(bytes/mem.LineSize) / ts.cyclesPerMs,
	}
}

// Dispatch serves one arrival of inst at time at: core placement, overload
// valves, keep-alive judgment, cold-start charge, migration accounting and
// the invocation itself, exactly as ServeTraffic's historical loop body.
//
// due, consulted only when an overload valve is armed, must report how many
// other pending arrivals are due at or before the chosen core's clock (this
// arrival is counted by the sim itself).
//
// doomed runs the invocation but loses the response: the work is done and
// the state thrashed, but the arrival counts as Failed, not Served, and the
// instance crashes with it (MarkCrashed semantics). ServeTraffic never dooms.
func (ts *TrafficSim) Dispatch(inst *Instance, at mem.Cycle, doomed bool, due func(coreNow mem.Cycle) int) DispatchOutcome {
	st := ts.state[inst]
	cfg := ts.cfg
	s := ts.srv
	arrivalMs := float64(at) / ts.cyclesPerMs
	ts.res.Offered++
	// Snapshot per-core state and let the placement policy dispatch.
	for i := range s.Cores {
		ts.views[i] = sched.CoreView{
			FreeAtMs: float64(s.Cores[i].Now()) / ts.cyclesPerMs,
			Last:     st.lastCore == i,
		}
		if ts.views[i].Last {
			ts.views[i].ForeignSince = ts.coreServed[i] - st.servedMark
			ts.views[i].Bound = inst.Jukebox != nil
		}
	}
	idx := ts.placer.Place(sched.Request{
		Func:       inst.Workload.Name,
		ArrivalMs:  arrivalMs,
		HasJukebox: inst.Jukebox != nil,
	}, ts.views)
	core := s.Cores[idx]
	// Overload valve: shed before touching any simulated state, so a
	// shed decision never perturbs the microarchitecture. An invocation
	// is shed when it already blew its deadline waiting for a core, or
	// when the due backlog (this arrival plus queued arrivals whose time
	// has passed) exceeds the configured bound. The client's later
	// requests still arrive, so the process drains deterministically.
	if cfg.ShedAfterMs > 0 || cfg.MaxQueue > 0 {
		waitedMs := 0.0
		if core.Now() > at {
			waitedMs = float64(core.Now()-at) / ts.cyclesPerMs
		}
		d := 1
		if due != nil {
			d += due(core.Now())
		}
		if (cfg.ShedAfterMs > 0 && waitedMs > cfg.ShedAfterMs) ||
			(cfg.MaxQueue > 0 && d > cfg.MaxQueue) {
			ts.res.Shed++
			st.fn.Shed++
			return DispatchOutcome{Shed: true, Core: idx}
		}
	}
	// Predictive pre-warm: judge the gap's pre-warm against the observed
	// arrival. The decision was conceptually made at the last completion
	// (predict the gap, schedule the replay LeadMs early); the sim owns no
	// event loop, so it is reconstructed lazily here, before the clock
	// advances across the gap. A used pre-warm physically replays mid-gap
	// below, and the remaining gap's ambient interleaving then decays the
	// freshly installed warmth — firing too early is a real cost.
	var pre predict.Outcome
	var preMech predict.Mech
	if ts.prewarmer != nil && st.hasDone && !st.forceCold {
		idleMs := 0.0
		if at > st.lastDone {
			idleMs = float64(at-st.lastDone) / ts.cyclesPerMs
		}
		preMech = ts.prewarmer.Config().Mech(inst.Workload.Name)
		pre = ts.prewarmer.Judge(inst.Workload.Name, idleMs, arrivalMs,
			ts.prewarmArmed(inst, preMech), ts.prewarmCharge(inst, preMech))
		if pre.HavePred {
			st.fn.PredJudged++
			st.fn.PredAbsErrMsSum += pre.AbsErrMs
		}
		if pre.Verdict == predict.VerdictWasted {
			st.fn.PrewarmsWasted++
		}
	}
	advance := func(to mem.Cycle) {
		if to <= core.Now() {
			return
		}
		gap := to - core.Now()
		if cfg.AmbientThrash {
			s.AdvanceIATOn(idx, float64(gap)/ts.cyclesPerMs)
		} else {
			core.AdvanceCycles(gap)
		}
	}
	prewarmRan := false
	if pre.Verdict == predict.VerdictUsed {
		// Fire the replay at its scheduled point in the gap, then let the
		// rest of the gap act on the freshly installed state.
		advance(st.lastDone + mem.Cycle(pre.FireMs*ts.cyclesPerMs))
		po := s.PrewarmOn(idx, inst, preMech)
		ts.prewarmer.CommitUsed(po.Ran, po.Bytes, float64(po.BusyCycles)/ts.cyclesPerMs)
		if po.Ran {
			prewarmRan = true
			st.fn.PrewarmsUsed++
		}
	}
	advance(at)
	var out DispatchOutcome
	out.Core = idx
	// Warmth class: fully warm only when nothing ran on the instance's last
	// core since its last completion; a cold start (from keep-alive or a
	// crash) is cold; everything else — including first invocations on a
	// thrashed core and pre-warm restorations — is lukewarm. First-ever
	// invocations on a fresh server are cold microarchitecturally even
	// though no boot charge applies.
	switch {
	case st.forceCold || !st.hasDone:
		out.Class = ClassCold
	case st.lastCore == idx && ts.coreServed[idx] == st.servedMark:
		out.Class = ClassWarm
	default:
		out.Class = ClassLukewarm
	}
	// Keep-alive: judge the idle gap since the instance's last
	// completion. Evicted-and-not-prewarmed instances cold-start. A
	// crash-marked instance cold-starts unconditionally: its state is
	// already gone, no policy can have kept it.
	if st.forceCold {
		st.forceCold = false
		out.ColdStart = true
		ts.res.ColdStarts++
		st.fn.ColdStarts++
		core.AdvanceCycles(mem.Cycle(cfg.ColdStartMs * ts.cyclesPerMs))
	} else if st.hasDone {
		idleMs := 0.0
		if at > st.lastDone {
			idleMs = float64(at-st.lastDone) / ts.cyclesPerMs
		}
		d := ts.keepAlive.Decide(inst.Workload.Name, idleMs)
		ts.res.ResidentMs += d.ResidentMs
		// Readiness-tier partition of the gap: the evicted remainder is
		// cold, the tail past a used pre-warm's firing point is pre-warmed,
		// the rest plain resident.
		ts.res.IdleMs += idleMs
		coldMs := idleMs - d.ResidentMs
		if coldMs < 0 {
			coldMs = 0
		}
		resMs := idleMs - coldMs
		if prewarmRan {
			if pw := idleMs - pre.FireMs; pw > 0 {
				if pw > resMs {
					pw = resMs
				}
				resMs -= pw
				ts.res.TierPrewarmedMs += pw
			}
		}
		ts.res.TierColdMs += coldMs
		ts.res.TierResidentMs += resMs
		if d.Prewarmed {
			ts.res.PrewarmHits++
			out.Prewarmed = true
		}
		if d.ColdStart() {
			out.Class = ClassCold
			out.ColdStart = true
			ts.res.ColdStarts++
			st.fn.ColdStarts++
			core.AdvanceCycles(mem.Cycle(cfg.ColdStartMs * ts.cyclesPerMs))
		}
	}
	// Placement accounting: a core change is a migration, and (with
	// Jukebox) a base/limit reprogramming on the new core.
	if st.lastCore >= 0 && st.lastCore != idx {
		ts.res.PlacementMigrations++
	}
	if inst.Jukebox != nil && st.lastCore != idx {
		ts.res.JukeboxRebinds++
	}
	// Synchronous dispatch-time replay: run the restore to completion before
	// execution and charge its duration to the invocation. The pre-warm
	// latch makes this pay only for replay work a timely pre-warm did not
	// already do — a fully pre-warmed instance is charged at most the
	// unfinished tail of a replay that fired late in the gap.
	var syncCycles mem.Cycle
	if cfg.SyncReplay {
		po := s.PrewarmOn(idx, inst, predict.MechAuto)
		if po.BusyCycles > 0 {
			core.AdvanceCycles(po.BusyCycles)
			syncCycles = po.BusyCycles
			ts.res.SyncReplays++
			ts.res.SyncReplayMs += float64(po.BusyCycles) / ts.cyclesPerMs
		}
	}
	r := s.InvokeOn(idx, inst)
	ts.busy += r.Cycles + syncCycles
	out.Done = core.Now()
	out.CPI = r.CPI()
	if r.Instrs > 0 {
		out.CPI = float64(r.Cycles+syncCycles) / float64(r.Instrs)
	}
	out.ServiceCycles = float64(r.Cycles + syncCycles)
	out.LatencyCycles = float64(core.Now() - at)
	ts.coreServed[idx]++
	if doomed {
		// The work ran — cycles were burned and foreign state streamed
		// through the core — but the response died with the instance.
		out.Failed = true
		ts.res.Failed++
		st.fn.Failed++
		inst.Evict()
		st.forceCold = true
		st.hasDone = false
		return out
	}
	ts.res.Served++
	st.fn.Served++
	st.fn.CPISum += out.CPI
	ts.res.CPI.Add(out.CPI)
	ts.res.ServiceCycles.Add(out.ServiceCycles)
	ts.res.LatencyCycles.Add(out.LatencyCycles)
	ts.res.latencies = append(ts.res.latencies, out.LatencyCycles)
	st.lastDone = core.Now()
	st.hasDone = true
	st.lastCore = idx
	st.servedMark = ts.coreServed[idx]
	return out
}

// Finish seals the run: busy fraction and span are computed and the
// aggregate result returned. The sim must not be dispatched to afterwards.
func (ts *TrafficSim) Finish() TrafficResult {
	// Settle pre-warms left pending at end of run: each instance's
	// forecaster would have scheduled one more after its last completion,
	// and nothing ever arrived to consume it — fully wasted speculation.
	if ts.prewarmer != nil {
		for _, inst := range ts.insts {
			st := ts.state[inst]
			if st == nil || !st.hasDone {
				continue
			}
			mech := ts.prewarmer.Config().Mech(inst.Workload.Name)
			before := ts.prewarmer.Ledger.Expired
			ts.prewarmer.Expire(inst.Workload.Name,
				float64(st.lastDone)/ts.cyclesPerMs,
				ts.prewarmArmed(inst, mech), ts.prewarmCharge(inst, mech))
			if ts.prewarmer.Ledger.Expired > before {
				st.fn.PrewarmsWasted++
			}
		}
		ts.res.Prewarm = ts.prewarmer.Ledger
	}
	var span mem.Cycle
	for _, c := range ts.srv.Cores {
		if d := c.Now() - ts.start; d > span {
			span = d
		}
	}
	if span > 0 {
		ts.res.BusyFraction = float64(ts.busy) / (float64(span) * float64(len(ts.srv.Cores)))
	}
	ts.res.SimulatedMs = float64(span) / ts.cyclesPerMs
	ts.res.PerFunction = make([]FuncTraffic, len(ts.perFn))
	for i, fn := range ts.perFn {
		ts.res.PerFunction[i] = *fn
	}
	return ts.res
}

// ServeTraffic runs the arrival process over every deployed instance until
// each has received cfg.InvocationsPerInstance invocations, serving them
// FIFO in arrival order on the core the placement policy picks and evicting
// idle instances per the keep-alive policy. It returns the aggregate result,
// or an error (wrapping cfgerr.ErrBadConfig) for an unserveable
// configuration or a server with no deployed instances.
//
// Idle gaps advance the clock but do not thrash state: with multiple
// co-resident instances the interleaved executions themselves provide the
// (realistic, partial) state destruction.
func (s *Server) ServeTraffic(cfg TrafficConfig) (TrafficResult, error) {
	if len(s.instances) == 0 {
		return TrafficResult{}, cfgerr.New("traffic: server has no deployed instances")
	}
	sim, err := s.NewTrafficSim(cfg)
	if err != nil {
		return TrafficResult{}, err
	}
	rng := program.NewRNG(program.Mix(0x7AF1C, cfg.Seed))
	cyclesPerMs := sim.CyclesPerMs()
	shape := cfg.shape()

	nextGap := func(nowMs float64) mem.Cycle {
		c := mem.Cycle(shape.GapMs(rng, nowMs) * cyclesPerMs)
		if c == 0 {
			c = 1
		}
		return c
	}

	var q arrivalQueue
	seq := 0
	remaining := map[*Instance]int{}
	for _, inst := range s.instances {
		remaining[inst] = cfg.InvocationsPerInstance
		// Phase-shift first arrivals across instances.
		first := s.Core.Now() + mem.Cycle(rng.Float64()*cfg.MeanIATms*cyclesPerMs)
		q.push(arrival{at: first, inst: inst, seq: seq})
		seq++
	}

	due := func(coreNow mem.Cycle) int {
		due := 0
		for _, p := range q {
			if p.at <= coreNow {
				due++
			}
		}
		return due
	}
	for q.Len() > 0 {
		a := q.pop()
		sim.Dispatch(a.inst, a.at, false, due)
		remaining[a.inst]--
		if remaining[a.inst] > 0 {
			arrivalMs := float64(a.at) / cyclesPerMs
			q.push(arrival{at: a.at + nextGap(arrivalMs), inst: a.inst, seq: seq})
			seq++
		}
	}
	return sim.Finish(), nil
}

// String renders a one-paragraph summary, with a per-function breakdown of
// cold starts and shedding when any occurred.
func (r *TrafficResult) String() string {
	shed := ""
	if r.Shed > 0 {
		shed = fmt.Sprintf(", %d shed", r.Shed)
	}
	if r.Failed > 0 {
		shed += fmt.Sprintf(", %d failed", r.Failed)
	}
	extra := ""
	if r.PrewarmHits > 0 {
		extra += fmt.Sprintf(", %d pre-warm hits", r.PrewarmHits)
	}
	if r.PlacementMigrations > 0 {
		extra += fmt.Sprintf(", %d migrations", r.PlacementMigrations)
	}
	if r.JukeboxRebinds > 0 {
		extra += fmt.Sprintf(", %d jukebox rebinds", r.JukeboxRebinds)
	}
	if r.SyncReplays > 0 {
		extra += fmt.Sprintf(", %d sync replays (%.2f ms on critical path)",
			r.SyncReplays, r.SyncReplayMs)
	}
	out := fmt.Sprintf(
		"served %d of %d offered invocations over %.0f ms simulated (%.1f%% core busy, %d cold starts%s%s); "+
			"mean CPI %.3f; service %.0f cycles mean; latency %.0f mean / %.0f p99 cycles; "+
			"instances resident %.0f ms",
		r.Served, r.Offered, r.SimulatedMs, r.BusyFraction*100, r.ColdStarts, shed, extra,
		r.CPI.Mean(), r.ServiceCycles.Mean(), r.LatencyCycles.Mean(), r.P99LatencyCycles(),
		r.ResidentMs)
	if r.ColdStarts > 0 || r.Shed > 0 || r.Failed > 0 {
		var parts []string
		for _, f := range r.PerFunction {
			if f.ColdStarts > 0 || f.Shed > 0 || f.Failed > 0 {
				parts = append(parts, fmt.Sprintf("%s %d cold/%d shed/%d failed", f.Name, f.ColdStarts, f.Shed, f.Failed))
			}
		}
		if len(parts) > 0 {
			out += "; by function: " + strings.Join(parts, ", ")
		}
	}
	if l := r.Prewarm; l.Scheduled > 0 || l.BudgetDenied > 0 {
		out += fmt.Sprintf(
			"; idle tiers %.0f cold / %.0f resident / %.0f pre-warmed of %.0f ms; "+
				"pre-warms %d scheduled: %d used / %d partial / %d wasted (%d expired), "+
				"%d budget-denied, %.1f KiB wasted replay, %.3f ms engine busy, mean |err| %.2f ms",
			r.TierColdMs, r.TierResidentMs, r.TierPrewarmedMs, r.IdleMs,
			l.Scheduled, l.Used, l.Partial, l.Wasted, l.Expired,
			l.BudgetDenied, float64(l.WastedReplayBytes)/1024, l.PrewarmBusyMs, l.MeanAbsErrMs())
		var parts []string
		for _, f := range r.PerFunction {
			if f.PrewarmsUsed > 0 || f.PrewarmsWasted > 0 {
				parts = append(parts, fmt.Sprintf("%s %d used/%d wasted (|err| %.1f ms)",
					f.Name, f.PrewarmsUsed, f.PrewarmsWasted, f.MeanAbsPredErrMs()))
			}
		}
		if len(parts) > 0 {
			out += "; pre-warms by function: " + strings.Join(parts, ", ")
		}
	}
	return out
}

package serverless

import (
	"testing"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/pif"
	"lukewarm/internal/workload"
)

func authG(t *testing.T) workload.Workload {
	t.Helper()
	w, err := workload.ByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDeployAndInvoke(t *testing.T) {
	s := New(Config{})
	inst := s.Deploy(authG(t))
	res := s.Invoke(inst)
	if res.Instrs == 0 {
		t.Fatal("invocation ran nothing")
	}
	if inst.Invocations != 1 {
		t.Errorf("Invocations = %d", inst.Invocations)
	}
	if len(s.Instances()) != 1 {
		t.Errorf("Instances = %d", len(s.Instances()))
	}
}

func TestReferenceFasterThanLukewarm(t *testing.T) {
	s := New(Config{})
	inst := s.Deploy(authG(t))
	ref := s.RunReference(inst, 3)

	s2 := New(Config{})
	inst2 := s2.Deploy(authG(t))
	luke := s2.RunLukewarm(inst2, 3)

	ratio := luke.CPI() / ref.CPI()
	// The paper's headline band: +31% to +114%.
	if ratio < 1.25 || ratio > 2.5 {
		t.Errorf("lukewarm/reference CPI ratio = %.2f, want within ~[1.31, 2.14]", ratio)
	}
}

func TestIATSweepMonotoneAndSaturating(t *testing.T) {
	cpi := func(iatMs float64) float64 {
		s := New(Config{CPU: cpu.CharacterizationConfig()})
		inst := s.Deploy(authG(t))
		s.RunReference(inst, 2) // warm up
		return s.RunWithIAT(inst, 3, iatMs).CPI()
	}
	c0 := cpi(0)
	c10 := cpi(10)
	c1000 := cpi(1000)
	c10000 := cpi(10000)
	if !(c0 < c10 && c10 < c1000) {
		t.Errorf("CPI not increasing with IAT: %v %v %v", c0, c10, c1000)
	}
	// Saturation: 10s barely worse than 1s (Fig. 1 flattens past ~1s).
	if c10000 > c1000*1.1 {
		t.Errorf("no saturation: CPI(1s)=%v CPI(10s)=%v", c1000, c10000)
	}
	// The saturated degradation is in the paper's 150-270% normalized band.
	norm := c1000 / c0
	if norm < 1.3 || norm > 3.2 {
		t.Errorf("saturated normalized CPI = %.2f, want ~1.5-2.7", norm)
	}
}

func TestJukeboxDeploymentSpeedsUpLukewarm(t *testing.T) {
	base := New(Config{})
	luke := base.RunLukewarm(base.Deploy(authG(t)), 3)

	jbCfg := core.DefaultConfig()
	jb := New(Config{Jukebox: &jbCfg})
	jbRes := jb.RunLukewarm(jb.Deploy(authG(t)), 3)

	speedup := float64(luke.Cycles)/float64(jbRes.Cycles) - 1
	if speedup < 0.05 {
		t.Errorf("Jukebox speedup = %.1f%%, want clearly positive", speedup*100)
	}
}

func TestPerInstanceJukeboxIsolation(t *testing.T) {
	jbCfg := core.DefaultConfig()
	s := New(Config{Jukebox: &jbCfg})
	a := s.Deploy(authG(t))
	w2, err := workload.ByName("Geo-G")
	if err != nil {
		t.Fatal(err)
	}
	b := s.Deploy(w2)
	if a.Jukebox == nil || b.Jukebox == nil {
		t.Fatal("instances missing Jukebox")
	}
	if a.Jukebox == b.Jukebox {
		t.Fatal("instances share a Jukebox")
	}
	s.FlushMicroarch()
	s.Invoke(a)
	s.Invoke(b)
	if a.Jukebox.ReplayBuffer().Len() == 0 || b.Jukebox.ReplayBuffer().Len() == 0 {
		t.Error("per-instance metadata not recorded")
	}
	// Distinct address spaces: no physical aliasing.
	pa := a.AS.Translate(0x40_0000)
	pb := b.AS.Translate(0x40_0000)
	if pa == pb {
		t.Error("instances share physical frames")
	}
}

func TestCorePrefetcherAttached(t *testing.T) {
	s := New(Config{})
	pf := pif.New(pif.IdealConfig(), s.Core.Hier)
	s.AttachCorePrefetcher(pf)
	inst := s.Deploy(authG(t))
	s.FlushMicroarch()
	s.Invoke(inst)
	if pf.Stats.Appends == 0 {
		t.Error("core prefetcher saw no traffic")
	}
}

func TestCorePrefetcherComposesWithJukebox(t *testing.T) {
	jbCfg := core.DefaultConfig()
	s := New(Config{Jukebox: &jbCfg})
	pf := pif.New(pif.IdealConfig(), s.Core.Hier)
	s.AttachCorePrefetcher(pf)
	inst := s.Deploy(authG(t))
	s.FlushMicroarch()
	s.Invoke(inst)
	if pf.Stats.Appends == 0 || inst.Jukebox.Stats.RecordedEntries == 0 {
		t.Error("composed prefetchers did not both run")
	}
}

func TestInterleavedInstancesThrashEachOther(t *testing.T) {
	s := New(Config{})
	a := s.Deploy(authG(t))
	w2, err := workload.ByName("Auth-P")
	if err != nil {
		t.Fatal(err)
	}
	b := s.Deploy(w2)
	// Warm a.
	s.RunReference(a, 2)
	warm := s.Invoke(a)
	// Interleave several b invocations, then measure a again: real
	// co-residency interleaving (no explicit flush) degrades a.
	for i := 0; i < 3; i++ {
		s.Invoke(b)
	}
	luke := s.Invoke(a)
	if luke.CPI() <= warm.CPI()*1.05 {
		t.Errorf("interleaving b did not degrade a: %.3f vs %.3f", luke.CPI(), warm.CPI())
	}
}

func TestStressorInterleavingApproachesFullFlush(t *testing.T) {
	// Running the stress-ng stand-in between invocations (the paper's
	// real-hardware interleaving methodology, Sec. 2.3) degrades the FUT
	// nearly as much as the simulator's explicit full flush.
	w := authG(t)

	s := New(Config{})
	fut := s.Deploy(w)
	stress := s.Deploy(workload.Workload{Name: "stress-ng", Program: workload.Stressor()})
	s.RunReference(fut, 2)
	warm := s.Invoke(fut)
	s.Invoke(stress)
	stressed := s.Invoke(fut)

	s2 := New(Config{})
	fut2 := s2.Deploy(w)
	s2.RunReference(fut2, 3)
	s2.FlushMicroarch()
	flushed := s2.Invoke(fut2)

	if stressed.CPI() <= warm.CPI()*1.15 {
		t.Errorf("stressor barely degraded the FUT: %.3f vs warm %.3f", stressed.CPI(), warm.CPI())
	}
	// Within ~25% of the full-flush penalty.
	if stressed.CPI() < flushed.CPI()*0.7 {
		t.Errorf("stressor (%.3f) far from full flush (%.3f)", stressed.CPI(), flushed.CPI())
	}
}

func TestAdvanceIATZeroIsNoop(t *testing.T) {
	s := New(Config{})
	before := s.Core.Now()
	s.AdvanceIAT(0)
	if s.Core.Now() != before {
		t.Error("AdvanceIAT(0) advanced the clock")
	}
}

package vm

import (
	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
)

// WalkerConfig describes the hardware page-table walker cost model.
type WalkerConfig struct {
	// BaseLatency is charged for every walk (pipeline + cached PTE levels).
	BaseLatency mem.Cycle
	// CacheEntries sizes the walker's PTE-line cache: leaf PTE cache lines
	// recently read by walks. A walk whose leaf PTE line is resident costs
	// BaseLatency; otherwise it also pays a memory access.
	CacheEntries int
}

// DefaultWalkerConfig models a radix-4 walker whose upper levels are almost
// always cached: ~25 cycles when the leaf PTE line is on chip, plus a DRAM
// access when it is not.
func DefaultWalkerConfig() WalkerConfig {
	return WalkerConfig{BaseLatency: 25, CacheEntries: 64}
}

// Validate reports whether the cost model is realizable: no negative
// latency or cache size (zero fields select defaults in NewWalker). Errors
// wrap cfgerr.ErrBadConfig.
func (c WalkerConfig) Validate() error {
	if c.BaseLatency < 0 || c.CacheEntries < 0 {
		return cfgerr.New("walker: negative parameters (latency %d, entries %d)",
			c.BaseLatency, c.CacheEntries)
	}
	return nil
}

// Walker is the hardware page-table walker. PTE lines hold 8 PTEs (64 B /
// 8 B), so vpage>>3 identifies the leaf PTE line for a page.
type Walker struct {
	cfg   WalkerConfig
	dram  *mem.DRAM
	cache []uint64 // FIFO of resident PTE-line ids
	pos   int
	// Walks and ColdWalks count total walks and walks that went to memory.
	Walks     uint64
	ColdWalks uint64
}

// NewWalker builds a walker issuing cold PTE reads to dram. Zero config
// fields fall back to defaults.
func NewWalker(cfg WalkerConfig, dram *mem.DRAM) *Walker {
	def := DefaultWalkerConfig()
	if cfg.BaseLatency == 0 {
		cfg.BaseLatency = def.BaseLatency
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = def.CacheEntries
	}
	w := &Walker{cfg: cfg, dram: dram, cache: make([]uint64, cfg.CacheEntries)}
	for i := range w.cache {
		w.cache[i] = ^uint64(0)
	}
	return w
}

// Walk performs one page walk for vpage at time now and returns its latency.
func (w *Walker) Walk(now mem.Cycle, vpage uint64) mem.Cycle {
	w.Walks++
	pteLine := vpage >> 3
	for _, id := range w.cache {
		if id == pteLine {
			return w.cfg.BaseLatency
		}
	}
	w.ColdWalks++
	w.cache[w.pos] = pteLine
	w.pos = (w.pos + 1) % len(w.cache)
	return w.cfg.BaseLatency + w.dram.Access(now, mem.TrafficDemand)
}

// Flush empties the walker's PTE-line cache (microarchitectural flush).
func (w *Walker) Flush() {
	for i := range w.cache {
		w.cache[i] = ^uint64(0)
	}
}

// MMUConfig bundles TLB and walker configurations for one core.
type MMUConfig struct {
	ITLB, DTLB TLBConfig
	Walker     WalkerConfig
}

// Validate checks both TLB geometries and the walker cost model. Errors
// wrap cfgerr.ErrBadConfig.
func (c MMUConfig) Validate() error {
	if err := c.ITLB.Validate(); err != nil {
		return err
	}
	if err := c.DTLB.Validate(); err != nil {
		return err
	}
	return c.Walker.Validate()
}

// DefaultMMUConfig models a 128-entry ITLB and a 64-entry DTLB.
func DefaultMMUConfig() MMUConfig {
	return MMUConfig{
		ITLB:   TLBConfig{Name: "ITLB", Sets: 16, Ways: 8},
		DTLB:   TLBConfig{Name: "DTLB", Sets: 16, Ways: 4},
		Walker: DefaultWalkerConfig(),
	}
}

// MMU performs instruction- and data-side address translation for one core
// executing one address space at a time.
type MMU struct {
	ITLB, DTLB *TLB
	Walker     *Walker
	as         *AddressSpace
}

// NewMMU builds an MMU; dram services cold page walks.
func NewMMU(cfg MMUConfig, dram *mem.DRAM) *MMU {
	return &MMU{
		ITLB:   NewTLB(cfg.ITLB),
		DTLB:   NewTLB(cfg.DTLB),
		Walker: NewWalker(cfg.Walker, dram),
	}
}

// SetAddressSpace switches the MMU to translate as (process switch). The
// caller decides whether to flush the TLBs; tagged TLBs survive switches,
// untagged ones do not.
func (m *MMU) SetAddressSpace(as *AddressSpace) { m.as = as }

// AddressSpace returns the active address space.
func (m *MMU) AddressSpace() *AddressSpace { return m.as }

// TranslateInstr translates an instruction-side virtual address, charging
// TLB-miss page walks. It panics if no address space is active — running
// code without a process is a harness bug, not a runtime condition.
func (m *MMU) TranslateInstr(now mem.Cycle, vaddr uint64) (paddr uint64, lat mem.Cycle) {
	return m.translate(now, vaddr, m.ITLB)
}

// TranslateData translates a data-side virtual address.
func (m *MMU) TranslateData(now mem.Cycle, vaddr uint64) (paddr uint64, lat mem.Cycle) {
	return m.translate(now, vaddr, m.DTLB)
}

func (m *MMU) translate(now mem.Cycle, vaddr uint64, tlb *TLB) (uint64, mem.Cycle) {
	if m.as == nil {
		panic("vm: MMU has no active address space")
	}
	vp := PageOf(vaddr)
	var lat mem.Cycle
	if !tlb.Access(vp) {
		lat = m.Walker.Walk(now, vp)
	}
	return m.as.Translate(vaddr), lat
}

// Flush invalidates both TLBs and the walker cache.
func (m *MMU) Flush() {
	m.ITLB.Flush()
	m.DTLB.Flush()
	m.Walker.Flush()
}

// ResetStats zeroes TLB counters and walker counts, keeping contents.
func (m *MMU) ResetStats() {
	m.ITLB.ResetStats()
	m.DTLB.ResetStats()
	m.Walker.Walks = 0
	m.Walker.ColdWalks = 0
}

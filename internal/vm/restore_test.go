package vm

// These tests pin the translation semantics the REAP restore engine
// (internal/reap) builds on: a restore-time translation must leave the TLB
// warm for the demand stream that follows (prefetch-install), a TLB probe
// must stay side-effect-free so the lukewarm delta-skip cannot perturb
// state, and a page absent from the manifest must fault exactly as cold as
// an untouched page (divergence).

import (
	"testing"

	"lukewarm/internal/mem"
)

func TestRestoreTranslationPrePopulatesTLB(t *testing.T) {
	m, _ := newTestMMU()
	const vaddr = 0x40_2000

	// The restore engine translates each manifest page once, up front.
	if _, lat := m.TranslateInstr(0, vaddr); lat == 0 {
		t.Fatal("first restore translation charged no walk")
	}
	if !m.ITLB.Probe(PageOf(vaddr)) {
		t.Fatal("restore translation did not install the ITLB entry")
	}

	// The demand access that follows must ride the installed entry.
	m.ITLB.ResetStats()
	if _, lat := m.TranslateInstr(100, vaddr); lat != 0 {
		t.Errorf("demand access after restore charged a walk (%d cycles)", lat)
	}
	if s := m.ITLB.Stats; s.Misses != 0 || s.Accesses != 1 {
		t.Errorf("demand access after restore: %+v, want 1 hit", s)
	}
}

func TestProbeIsSideEffectFree(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "T", Sets: 2, Ways: 2})
	tlb.Access(5)
	before := tlb.Stats

	// Probing a resident and a non-resident page must count nothing and
	// insert nothing: the restore engine probes every manifest page on a
	// lukewarm start to skip the resident delta.
	if !tlb.Probe(5) {
		t.Error("Probe missed a resident page")
	}
	if tlb.Probe(7) {
		t.Error("Probe hit a page that was never accessed")
	}
	if tlb.Stats != before {
		t.Errorf("Probe mutated stats: %+v -> %+v", before, tlb.Stats)
	}
	if tlb.Probe(7) {
		t.Error("Probe inserted the probed page")
	}
}

func TestDivergentPageFaultsCold(t *testing.T) {
	m, _ := newTestMMU()

	// Restore a small manifest: pages 0x100-0x103.
	for vp := uint64(0x100); vp < 0x104; vp++ {
		m.TranslateData(0, vp<<PageShift)
	}
	coldBase := m.Walker.ColdWalks

	// A page the manifest never recorded (a divergent first touch) must pay
	// the full cold path: DTLB miss plus a walk whose leaf PTE line is not
	// in the walker cache, i.e. a DRAM access on top of the base latency.
	_, lat := m.TranslateData(1000, 0x9000<<PageShift)
	if lat <= DefaultWalkerConfig().BaseLatency {
		t.Errorf("divergent page walk = %d cycles, want > base latency (cold PTE read)", lat)
	}
	if m.Walker.ColdWalks != coldBase+1 {
		t.Errorf("divergent page did not take a cold walk (cold=%d, was %d)",
			m.Walker.ColdWalks, coldBase)
	}

	// Whereas a re-touch of a restored page stays free.
	if _, lat := m.TranslateData(2000, 0x100<<PageShift); lat != 0 {
		t.Errorf("restored page re-touch charged %d cycles", lat)
	}
}

func TestRestoreSurvivesEvictFractionPartially(t *testing.T) {
	m, _ := newTestMMU()
	const pages = 64
	for vp := uint64(0); vp < pages; vp++ {
		m.TranslateData(0, vp<<PageShift)
	}

	// Half-strength displacement (interleaved foreign translations between
	// the restore and the demand run) must leave some restored entries live
	// and kill others — the lukewarm middle ground between a fully warm TLB
	// and a flushed one.
	seed := uint64(42)
	rng := func() uint64 { // xorshift64
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	m.DTLB.EvictFraction(0.5, rng)

	live := 0
	for vp := uint64(0); vp < pages; vp++ {
		if m.DTLB.Probe(vp) {
			live++
		}
	}
	if live == 0 || live == pages {
		t.Errorf("EvictFraction(0.5) left %d/%d restored entries, want a strict subset", live, pages)
	}
}

func TestRestoreWalksShareLeafPTELines(t *testing.T) {
	dram := mem.NewDRAM(mem.DRAMConfig{AccessLatency: 100, LinePeriod: 10})
	w := NewWalker(WalkerConfig{BaseLatency: 25, CacheEntries: 16}, dram)

	// A manifest replayed in virtual-page order touches 8 consecutive pages
	// per leaf PTE line: only the first walk of each line goes to memory.
	for vp := uint64(0); vp < 32; vp++ {
		w.Walk(mem.Cycle(vp), vp)
	}
	if w.Walks != 32 || w.ColdWalks != 4 {
		t.Errorf("sequential restore: walks=%d cold=%d, want 32/4", w.Walks, w.ColdWalks)
	}
}

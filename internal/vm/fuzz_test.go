package vm

import (
	"sort"
	"testing"
)

// fuzzRefPageTable is the obviously-correct map-backed page table the
// chunked flat frame table replaced: one map entry per mapped virtual page,
// demand allocation on first touch, compaction in virtual-address order.
// FuzzFlatPageTable drives both representations from identical allocators
// over arbitrary byte-derived operation streams and fails on any divergence.
type fuzzRefPageTable struct {
	alloc  *FrameAllocator
	frames map[uint64]uint64
	moved  uint64
}

func (r *fuzzRefPageTable) translate(vaddr uint64) uint64 {
	vp := PageOf(vaddr)
	base, ok := r.frames[vp]
	if !ok {
		base = r.alloc.Alloc()
		r.frames[vp] = base
	}
	return base | (vaddr & (PageSize - 1))
}

func (r *fuzzRefPageTable) lookup(vaddr uint64) (uint64, bool) {
	base, ok := r.frames[PageOf(vaddr)]
	if !ok {
		return 0, false
	}
	return base | (vaddr & (PageSize - 1)), true
}

func (r *fuzzRefPageTable) pages() []uint64 {
	out := make([]uint64, 0, len(r.frames))
	for vp := range r.frames {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *fuzzRefPageTable) compact() {
	for _, vp := range r.pages() {
		r.frames[vp] = r.alloc.Alloc()
		r.moved++
	}
}

// FuzzFlatPageTable decodes the input as a stream of 3-byte operations —
// opcode plus a 16-bit virtual page — and checks the flat AddressSpace
// against the map reference after every step. Opcode bit 6 relocates the
// page to a gigabyte-offset sparse region, the chunked layout's worst case
// (single-page chunks far above the dense heap).
func FuzzFlatPageTable(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x00, 0x05, 0x02, 0x00, 0x0F, 0x01, 0x00})
	f.Add([]byte{0x40, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x0F, 0x00, 0x00, 0x45, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		flat := NewAddressSpace(NewFrameAllocator(11))
		ref := &fuzzRefPageTable{alloc: NewFrameAllocator(11), frames: map[uint64]uint64{}}
		for len(data) >= 3 {
			op := data[0]
			vp := uint64(data[1])<<8 | uint64(data[2])
			data = data[3:]
			if op&0x40 != 0 {
				// Sparse high pages: distinct far-away chunks.
				vp = (1 << 30 >> PageShift) + vp<<9
			}
			vaddr := vp<<PageShift | uint64(op)&(PageSize-1)
			switch k := op & 0x0F; {
			case k < 9:
				if got, want := flat.Translate(vaddr), ref.translate(vaddr); got != want {
					t.Fatalf("Translate(%#x) = %#x, reference %#x", vaddr, got, want)
				}
			case k < 14:
				got, gok := flat.Lookup(vaddr)
				want, wok := ref.lookup(vaddr)
				if gok != wok || got != want {
					t.Fatalf("Lookup(%#x) = %#x,%v, reference %#x,%v", vaddr, got, gok, want, wok)
				}
			default:
				flat.Compact()
				ref.compact()
				if flat.Migrations != ref.moved {
					t.Fatalf("Migrations = %d, reference %d", flat.Migrations, ref.moved)
				}
			}
			if got, want := flat.MappedPages(), len(ref.frames); got != want {
				t.Fatalf("MappedPages = %d, reference %d", got, want)
			}
		}
		gp, wp := flat.Pages(), ref.pages()
		if len(gp) != len(wp) {
			t.Fatalf("Pages len %d, reference %d", len(gp), len(wp))
		}
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("Pages[%d] = %#x, reference %#x", i, gp[i], wp[i])
			}
		}
	})
}

package vm

import (
	"testing"
	"testing/quick"
)

func TestFrameAllocator(t *testing.T) {
	a := NewFrameAllocator(10)
	p1 := a.Alloc()
	p2 := a.Alloc()
	if p1 != 10<<PageShift || p2 != 11<<PageShift {
		t.Errorf("frames = %#x, %#x", p1, p2)
	}
	base := a.AllocContiguous(4)
	if base != 12<<PageShift {
		t.Errorf("contiguous base = %#x", base)
	}
	if got := a.FramesAllocated(10); got != 6 {
		t.Errorf("FramesAllocated = %d", got)
	}
}

func TestAllocContiguousPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFrameAllocator(0).AllocContiguous(0)
}

func TestAddressSpaceTranslate(t *testing.T) {
	as := NewAddressSpace(NewFrameAllocator(100))
	p1 := as.Translate(0x1234)
	if p1&(PageSize-1) != 0x234 {
		t.Errorf("offset not preserved: %#x", p1)
	}
	// Same page translates consistently.
	if p2 := as.Translate(0x1FFF); PageOf(p2) != PageOf(p1) {
		t.Errorf("same vpage mapped to different frames: %#x vs %#x", p2, p1)
	}
	// Different page gets a different frame.
	if p3 := as.Translate(0x2000); PageOf(p3) == PageOf(p1) {
		t.Errorf("distinct vpages share a frame")
	}
	if as.MappedPages() != 2 {
		t.Errorf("MappedPages = %d", as.MappedPages())
	}
}

func TestAddressSpaceLookup(t *testing.T) {
	as := NewAddressSpace(NewFrameAllocator(0))
	if _, ok := as.Lookup(0x5000); ok {
		t.Error("unmapped lookup succeeded")
	}
	want := as.Translate(0x5042)
	got, ok := as.Lookup(0x5042)
	if !ok || got != want {
		t.Errorf("Lookup = %#x,%v want %#x", got, ok, want)
	}
	if as.MappedPages() != 1 {
		t.Error("Lookup allocated")
	}
}

func TestDistinctAddressSpacesDoNotAlias(t *testing.T) {
	alloc := NewFrameAllocator(0)
	a := NewAddressSpace(alloc)
	b := NewAddressSpace(alloc)
	pa := a.Translate(0x4000)
	pb := b.Translate(0x4000)
	if PageOf(pa) == PageOf(pb) {
		t.Errorf("two instances share a physical frame: %#x", pa)
	}
}

func TestCompactMovesEveryPage(t *testing.T) {
	as := NewAddressSpace(NewFrameAllocator(0))
	vaddrs := []uint64{0x1000, 0x2000, 0x3abc, 0x4fff}
	before := make(map[uint64]uint64)
	for _, v := range vaddrs {
		before[v] = as.Translate(v)
	}
	as.Compact()
	for _, v := range vaddrs {
		after := as.Translate(v)
		if PageOf(after) == PageOf(before[v]) {
			t.Errorf("page %#x not migrated", v)
		}
		if after&(PageSize-1) != before[v]&(PageSize-1) {
			t.Errorf("offset changed by compaction")
		}
	}
	if as.Migrations != 4 {
		t.Errorf("Migrations = %d", as.Migrations)
	}
	if as.MappedPages() != 4 {
		t.Errorf("MappedPages after compact = %d", as.MappedPages())
	}
}

// Property: translation is a function — the same vaddr always maps to the
// same paddr between compactions — and preserves page offsets.
func TestTranslateStableProperty(t *testing.T) {
	as := NewAddressSpace(NewFrameAllocator(0))
	f := func(vaddrs []uint32) bool {
		for _, v32 := range vaddrs {
			v := uint64(v32)
			p1 := as.Translate(v)
			p2 := as.Translate(v)
			if p1 != p2 {
				return false
			}
			if p1&(PageSize-1) != v&(PageSize-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "t", Sets: 4, Ways: 2})
	if tlb.Access(5) {
		t.Error("cold access hit")
	}
	if !tlb.Access(5) {
		t.Error("warm access missed")
	}
	if !tlb.Probe(5) {
		t.Error("Probe missed resident page")
	}
	if tlb.Probe(6) {
		t.Error("Probe hit absent page")
	}
	if tlb.Stats.Accesses != 2 || tlb.Stats.Misses != 1 {
		t.Errorf("stats = %+v", tlb.Stats)
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "t", Sets: 1, Ways: 2})
	tlb.Access(1)
	tlb.Access(2)
	tlb.Access(1) // 1 is MRU
	tlb.Access(3) // evicts 2
	if !tlb.Probe(1) || tlb.Probe(2) || !tlb.Probe(3) {
		t.Errorf("LRU eviction wrong: 1=%v 2=%v 3=%v", tlb.Probe(1), tlb.Probe(2), tlb.Probe(3))
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "t", Sets: 4, Ways: 2})
	tlb.Access(1)
	tlb.Flush()
	if tlb.Probe(1) {
		t.Error("entry survived flush")
	}
	if tlb.Stats.Flushes != 1 {
		t.Errorf("Flushes = %d", tlb.Stats.Flushes)
	}
	tlb.ResetStats()
	if tlb.Stats.Accesses != 0 {
		t.Error("ResetStats failed")
	}
}

func TestTLBEvictFraction(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "t", Sets: 16, Ways: 8})
	for vp := uint64(0); vp < 128; vp++ {
		tlb.Access(vp)
	}
	var state uint64 = 42
	rng := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	tlb.EvictFraction(0.5, rng)
	resident := 0
	for vp := uint64(0); vp < 128; vp++ {
		if tlb.Probe(vp) {
			resident++
		}
	}
	if resident < 40 || resident > 90 {
		t.Errorf("after 50%% evict, %d of 128 resident", resident)
	}
	tlb.EvictFraction(0, rng) // no-op
	after := 0
	for vp := uint64(0); vp < 128; vp++ {
		if tlb.Probe(vp) {
			after++
		}
	}
	if after != resident {
		t.Error("EvictFraction(0) changed contents")
	}
}

func TestTLBPanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []TLBConfig{
		{Sets: 0, Ways: 2}, {Sets: 3, Ways: 2}, {Sets: 4, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			NewTLB(cfg)
		}()
	}
}

package vm

import "testing"

// TestPagesCacheReuseAndInvalidation pins the Pages() contract that replaced
// the old collect-and-sort-per-call implementation: repeated calls without
// intervening mutation return the identical cached slice (no re-sort, no
// allocation), while mapping a new page or compacting rebuilds it.
func TestPagesCacheReuseAndInvalidation(t *testing.T) {
	as := NewAddressSpace(NewFrameAllocator(0))
	as.Translate(5 << PageShift)
	as.Translate(0)

	p1 := as.Pages()
	if len(p1) != 2 || p1[0] != 0 || p1[1] != 5 {
		t.Fatalf("Pages = %v, want [0 5]", p1)
	}
	if p2 := as.Pages(); &p2[0] != &p1[0] {
		t.Fatal("Pages rebuilt with no intervening mutation")
	}
	if avg := testing.AllocsPerRun(4, func() { as.Pages() }); avg != 0 {
		t.Fatalf("cached Pages allocates %.2f objects/call, want 0", avg)
	}

	// Re-translating an already-mapped page and lookups are not mutations.
	as.Translate(5<<PageShift | 12)
	as.Lookup(0)
	if p3 := as.Pages(); &p3[0] != &p1[0] {
		t.Fatal("Pages rebuilt after non-mutating accesses")
	}

	// A new mapping invalidates: the fresh slice must include it, sorted.
	as.Translate(3 << PageShift)
	p4 := as.Pages()
	if len(p4) != 3 || p4[0] != 0 || p4[1] != 3 || p4[2] != 5 {
		t.Fatalf("Pages after new mapping = %v, want [0 3 5]", p4)
	}

	// Compact migrates frames; the page set is unchanged but the cache must
	// not serve a slice observed before the migration.
	before := as.Translate(3 << PageShift)
	p4 = as.Pages()
	as.Compact()
	if after := as.Translate(3 << PageShift); after == before {
		t.Fatal("Compact did not migrate the page")
	}
	p5 := as.Pages()
	if len(p5) != 3 || p5[0] != 0 || p5[1] != 3 || p5[2] != 5 {
		t.Fatalf("Pages after Compact = %v, want [0 3 5]", p5)
	}
	if as.MappedPages() != 3 {
		t.Fatalf("MappedPages = %d, want 3", as.MappedPages())
	}
}

package vm

import (
	"testing"

	"lukewarm/internal/mem"
)

func newTestMMU() (*MMU, *mem.DRAM) {
	dram := mem.NewDRAM(mem.DRAMConfig{AccessLatency: 100, LinePeriod: 10})
	m := NewMMU(DefaultMMUConfig(), dram)
	m.SetAddressSpace(NewAddressSpace(NewFrameAllocator(0)))
	return m, dram
}

func TestWalkerColdAndWarm(t *testing.T) {
	dram := mem.NewDRAM(mem.DRAMConfig{AccessLatency: 100, LinePeriod: 10})
	w := NewWalker(WalkerConfig{BaseLatency: 25, CacheEntries: 4}, dram)
	cold := w.Walk(0, 7)
	if cold != 125 {
		t.Errorf("cold walk = %d, want 125", cold)
	}
	warm := w.Walk(1000, 7)
	if warm != 25 {
		t.Errorf("warm walk = %d, want 25", warm)
	}
	// A page sharing the PTE line (same vpage>>3) is also warm.
	if got := w.Walk(2000, 6); got != 25 {
		t.Errorf("PTE-line-sharing walk = %d, want 25", got)
	}
	if w.Walks != 3 || w.ColdWalks != 1 {
		t.Errorf("walks=%d cold=%d", w.Walks, w.ColdWalks)
	}
}

func TestWalkerFIFOEviction(t *testing.T) {
	dram := mem.NewDRAM(mem.DRAMConfig{AccessLatency: 100, LinePeriod: 10})
	w := NewWalker(WalkerConfig{BaseLatency: 25, CacheEntries: 2}, dram)
	w.Walk(0, 0<<3)
	w.Walk(0, 1<<3)
	w.Walk(0, 2<<3) // evicts PTE line 0
	if got := w.Walk(0, 0<<3); got == 25 {
		t.Error("evicted PTE line still warm")
	}
}

func TestWalkerFlush(t *testing.T) {
	dram := mem.NewDRAM(mem.DRAMConfig{AccessLatency: 100, LinePeriod: 10})
	w := NewWalker(WalkerConfig{}, dram)
	w.Walk(0, 9)
	w.Flush()
	if got := w.Walk(5000, 9); got == w.cfg.BaseLatency {
		t.Error("walker cache survived flush")
	}
}

func TestWalkerDefaults(t *testing.T) {
	w := NewWalker(WalkerConfig{}, mem.NewDRAM(mem.DRAMConfig{}))
	def := DefaultWalkerConfig()
	if w.cfg != def {
		t.Errorf("defaults not applied: %+v", w.cfg)
	}
}

func TestMMUTranslateChargesWalkOnlyOnMiss(t *testing.T) {
	m, _ := newTestMMU()
	_, lat1 := m.TranslateInstr(0, 0x40_0000)
	if lat1 == 0 {
		t.Error("cold ITLB access had no walk latency")
	}
	_, lat2 := m.TranslateInstr(100, 0x40_0100)
	if lat2 != 0 {
		t.Errorf("warm ITLB access charged %d", lat2)
	}
	if m.ITLB.Stats.Misses != 1 {
		t.Errorf("ITLB misses = %d", m.ITLB.Stats.Misses)
	}
}

func TestMMUInstrAndDataSidesAreSeparate(t *testing.T) {
	m, _ := newTestMMU()
	m.TranslateInstr(0, 0x1000)
	// Data side is still cold for the same page.
	_, lat := m.TranslateData(10, 0x1000)
	if lat == 0 {
		t.Error("DTLB warm after only ITLB access")
	}
	if m.DTLB.Stats.Misses != 1 {
		t.Errorf("DTLB misses = %d", m.DTLB.Stats.Misses)
	}
}

func TestMMUFlushAndReset(t *testing.T) {
	m, _ := newTestMMU()
	m.TranslateInstr(0, 0x1000)
	m.Flush()
	_, lat := m.TranslateInstr(100, 0x1000)
	if lat == 0 {
		t.Error("translation free right after flush")
	}
	m.ResetStats()
	if m.ITLB.Stats.Accesses != 0 || m.Walker.Walks != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestMMUPanicsWithoutAddressSpace(t *testing.T) {
	m := NewMMU(DefaultMMUConfig(), mem.NewDRAM(mem.DRAMConfig{}))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.TranslateInstr(0, 0x1000)
}

func TestMMUCompactionTransparency(t *testing.T) {
	// After Compact + TLB flush, the same virtual address translates to the
	// new physical page with no functional breakage — the property Jukebox's
	// virtual-address metadata relies on.
	m, _ := newTestMMU()
	as := m.AddressSpace()
	p1, _ := m.TranslateInstr(0, 0x7000)
	as.Compact()
	m.Flush()
	p2, _ := m.TranslateInstr(100, 0x7000)
	if PageOf(p1) == PageOf(p2) {
		t.Error("compaction did not move the page")
	}
	if p1&(PageSize-1) != p2&(PageSize-1) {
		t.Error("page offset not preserved across compaction")
	}
}

// Package vm models the virtual-memory subsystem: per-instance address
// spaces backed by a global physical frame allocator, instruction and data
// TLBs, a hardware page-table walker with a small walker cache, and page
// migration (memory compaction).
//
// Jukebox deliberately records *virtual* addresses so that its metadata
// survives OS page migration (paper Sec. 3.2/3.3); the Compact operation here
// exists to demonstrate exactly that property against a physical-address
// strawman.
package vm

import (
	"fmt"

	"lukewarm/internal/cfgerr"
)

// PageSize is the virtual-memory page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageOf returns the virtual page number containing addr.
func PageOf(addr uint64) uint64 { return addr >> PageShift }

// FrameAllocator hands out physical page frames. A single allocator is
// shared by all address spaces on a server so that distinct instances
// occupy distinct physical memory (and therefore contend in the shared LLC).
type FrameAllocator struct {
	next uint64
}

// NewFrameAllocator creates an allocator whose first frame starts at
// baseFrame (frames, not bytes).
func NewFrameAllocator(baseFrame uint64) *FrameAllocator {
	return &FrameAllocator{next: baseFrame}
}

// Alloc returns the physical base address of one fresh frame.
func (f *FrameAllocator) Alloc() uint64 {
	frame := f.next
	f.next++
	return frame << PageShift
}

// AllocContiguous returns the physical base address of n physically
// contiguous frames, as the OS does for Jukebox's metadata buffers
// (Sec. 3.4.1). It panics for n <= 0.
func (f *FrameAllocator) AllocContiguous(n int) uint64 {
	if n <= 0 {
		panic(fmt.Sprintf("vm: AllocContiguous(%d)", n))
	}
	base := f.next
	f.next += uint64(n)
	return base << PageShift
}

// FramesAllocated reports how many frames have been handed out relative to
// the allocator's base.
func (f *FrameAllocator) FramesAllocated(baseFrame uint64) uint64 { return f.next - baseFrame }

// Chunk geometry of the flat page table: each chunk covers chunkPages
// contiguous virtual pages (2 MB of VA), so the sparse gigabyte-wide gaps
// between the code/heap/kernel regions cost nothing while lookups within a
// region are a single indexed load.
const (
	chunkShift = 9
	chunkPages = 1 << chunkShift
	chunkMask  = chunkPages - 1
)

// asChunk is one 2 MB-aligned window of the page table. frames[i] holds the
// physical frame base address of page (base+i) with framePresent set in its
// low bit (frame bases are page-aligned, so the bit is free); 0 means
// unmapped.
type asChunk struct {
	base   uint64 // first vpage covered
	frames [chunkPages]uint64
}

// framePresent marks a populated frame slot.
const framePresent = 1

// AddressSpace is one process's page table: a demand-populated flat frame
// table over 2 MB chunks, kept sorted by base virtual page. The previous
// map-backed representation survives as the differential reference model in
// internal/check.
type AddressSpace struct {
	alloc  *FrameAllocator
	chunks []*asChunk // sorted by base
	last   *asChunk   // last chunk touched: locality makes this hit ~always
	mapped int
	// pages caches the sorted mapped-vpage slice Pages returns; nil when a
	// new mapping or a Compact invalidated it.
	pages []uint64
	// Migrations counts pages moved by Compact, for reporting.
	Migrations uint64
}

// NewAddressSpace creates an empty address space drawing frames from alloc.
func NewAddressSpace(alloc *FrameAllocator) *AddressSpace {
	return &AddressSpace{alloc: alloc}
}

// chunkFor returns the chunk containing vp, creating it if grow is set,
// nil otherwise.
func (as *AddressSpace) chunkFor(vp uint64, grow bool) *asChunk {
	base := vp &^ uint64(chunkMask)
	if c := as.last; c != nil && c.base == base {
		return c
	}
	// Binary search the sorted chunk list.
	lo, hi := 0, len(as.chunks)
	for lo < hi {
		mid := (lo + hi) / 2
		if as.chunks[mid].base < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(as.chunks) && as.chunks[lo].base == base {
		as.last = as.chunks[lo]
		return as.last
	}
	if !grow {
		return nil
	}
	//lukewarm:hotalloc one chunk per 2 MB of newly touched address space, amortized over 512 page faults
	c := &asChunk{base: base}
	//lukewarm:hotalloc the sorted chunk list grows to its high-water mark once per address space
	as.chunks = append(as.chunks, nil)
	copy(as.chunks[lo+1:], as.chunks[lo:])
	as.chunks[lo] = c
	as.last = c
	return c
}

// Translate maps vaddr to its physical address, demand-allocating a frame on
// first touch (anonymous mmap semantics: serverless instances are entirely
// memory-resident, swap is disabled on FaaS hosts).
//lukewarm:hotpath noalloc,nobce the chunked-frame fast path replaced the flat map in PR 9; every access translates here
func (as *AddressSpace) Translate(vaddr uint64) uint64 {
	vp := PageOf(vaddr)
	c := as.last
	if c == nil || c.base != vp&^uint64(chunkMask) {
		c = as.chunkFor(vp, true)
	}
	slot := &c.frames[vp&chunkMask]
	if *slot == 0 {
		*slot = as.alloc.Alloc() | framePresent
		as.mapped++
		as.pages = nil
	}
	return (*slot &^ (PageSize - 1)) | (vaddr & (PageSize - 1))
}

// Lookup is Translate without demand allocation; ok reports whether the page
// is mapped.
//lukewarm:hotpath noalloc,nobce the restore engines probe mappings at line rate through this path
func (as *AddressSpace) Lookup(vaddr uint64) (paddr uint64, ok bool) {
	vp := PageOf(vaddr)
	c := as.chunkFor(vp, false)
	if c == nil {
		return 0, false
	}
	slot := c.frames[vp&chunkMask]
	if slot == 0 {
		return 0, false
	}
	return (slot &^ (PageSize - 1)) | (vaddr & (PageSize - 1)), true
}

// MappedPages reports the number of resident pages.
func (as *AddressSpace) MappedPages() int { return as.mapped }

// Pages returns the mapped virtual page numbers in ascending order. The
// slice is cached and shared between calls — callers must not mutate it —
// and is rebuilt only after a new mapping or a Compact invalidated it, so
// iteration sites no longer pay a per-call collect-and-sort.
func (as *AddressSpace) Pages() []uint64 {
	if as.pages == nil && as.mapped > 0 {
		pages := make([]uint64, 0, as.mapped)
		for _, c := range as.chunks {
			for i := range c.frames {
				if c.frames[i] != 0 {
					pages = append(pages, c.base+uint64(i))
				}
			}
		}
		as.pages = pages
	}
	return as.pages
}

// Compact migrates every mapped page to a fresh physical frame, modeling OS
// memory compaction / page migration. Virtual addresses are unaffected;
// all previously returned physical addresses become stale. Pages migrate in
// virtual-address order: frame assignment must not depend on iteration
// order, or physically-indexed cache behaviour after compaction — and with
// it the compaction experiment — differs run to run. The chunk list is
// sorted by construction, so the walk is already in virtual-address order.
func (as *AddressSpace) Compact() {
	for _, c := range as.chunks {
		for i := range c.frames {
			if c.frames[i] != 0 {
				c.frames[i] = as.alloc.Alloc() | framePresent
				as.Migrations++
			}
		}
	}
	as.pages = nil
}

// TLBConfig describes one TLB's geometry and the cost model of refills.
type TLBConfig struct {
	Name string
	Sets int
	Ways int
}

// Validate reports whether the geometry is realizable: positive ways and a
// positive power-of-two set count. Errors wrap cfgerr.ErrBadConfig.
func (c TLBConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 || c.Ways <= 0 {
		return cfgerr.New("TLB %s: bad geometry %d sets x %d ways", c.Name, c.Sets, c.Ways)
	}
	return nil
}

// invalidVPage marks an empty TLB way. No real vpage collides with it:
// vpages are addr>>PageShift and simulated virtual addresses sit far below
// 2^52.
const invalidVPage = ^uint64(0)

// TLBStats counts TLB demand traffic.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
	Flushes  uint64
}

// TLB is a set-associative translation lookaside buffer over virtual pages.
// It caches only reachability (the physical mapping is read from the
// AddressSpace on every translation, so Compact takes effect immediately
// after a Flush, exactly like a real TLB shootdown). Entries are stored flat
// in parallel arrays — the hit-path scan touches only the vpage tags — with
// the set mask and way count hoisted out of the config at construction.
type TLB struct {
	cfg     TLBConfig
	ways    int
	setMask uint64
	vpages  []uint64 // sets*ways, set-major; invalidVPage = empty
	lru     []uint64 // parallel to vpages
	tick    uint64
	Stats   TLBStats
}

// NewTLB builds a TLB; it panics on invalid geometry. Callers taking TLB
// geometry from user input should call TLBConfig.Validate first.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("vm: %v", err))
	}
	t := &TLB{
		cfg:     cfg,
		ways:    cfg.Ways,
		setMask: uint64(cfg.Sets - 1),
		vpages:  make([]uint64, cfg.Sets*cfg.Ways),
		lru:     make([]uint64, cfg.Sets*cfg.Ways),
	}
	for i := range t.vpages {
		t.vpages[i] = invalidVPage
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

func (t *TLB) setBase(vpage uint64) int {
	return int(vpage&t.setMask) * t.ways
}

// Access looks up vpage, returning whether it hit, and inserts it on a miss.
//lukewarm:hotpath noalloc,noescape one TLB lookup per instruction block and per data access
func (t *TLB) Access(vpage uint64) bool {
	t.Stats.Accesses++
	base := t.setBase(vpage)
	for i := base; i < base+t.ways; i++ {
		if t.vpages[i] == vpage {
			t.tick++
			t.lru[i] = t.tick
			return true
		}
	}
	t.Stats.Misses++
	vi := base
	for i := base; i < base+t.ways; i++ {
		if t.vpages[i] == invalidVPage {
			vi = i
			break
		}
		if t.lru[i] < t.lru[vi] {
			vi = i
		}
	}
	t.tick++
	t.vpages[vi] = vpage
	t.lru[vi] = t.tick
	return false
}

// Probe reports residency without inserting or counting.
//lukewarm:hotpath noalloc,inline the REAP manifest delta scan probes every recorded page; the loop must inline
func (t *TLB) Probe(vpage uint64) bool {
	base := t.setBase(vpage)
	for i := base; i < base+t.ways; i++ {
		if t.vpages[i] == vpage {
			return true
		}
	}
	return false
}

// Flush invalidates all entries (context switch / shootdown).
func (t *TLB) Flush() {
	for i := range t.vpages {
		t.vpages[i] = invalidVPage
	}
	t.Stats.Flushes++
}

// ResetStats zeroes the counters, keeping contents.
func (t *TLB) ResetStats() { t.Stats = TLBStats{} }

// EvictFraction invalidates approximately frac of the TLB's entries,
// modeling partial displacement by interleaved foreign translations.
func (t *TLB) EvictFraction(frac float64, rng func() uint64) {
	if frac <= 0 {
		return
	}
	threshold := uint64(frac * float64(1<<32))
	for i := range t.vpages {
		if t.vpages[i] != invalidVPage && rng()&0xFFFFFFFF < threshold {
			t.vpages[i] = invalidVPage
		}
	}
}

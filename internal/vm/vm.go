// Package vm models the virtual-memory subsystem: per-instance address
// spaces backed by a global physical frame allocator, instruction and data
// TLBs, a hardware page-table walker with a small walker cache, and page
// migration (memory compaction).
//
// Jukebox deliberately records *virtual* addresses so that its metadata
// survives OS page migration (paper Sec. 3.2/3.3); the Compact operation here
// exists to demonstrate exactly that property against a physical-address
// strawman.
package vm

import (
	"fmt"
	"slices"

	"lukewarm/internal/cfgerr"
)

// PageSize is the virtual-memory page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageOf returns the virtual page number containing addr.
func PageOf(addr uint64) uint64 { return addr >> PageShift }

// FrameAllocator hands out physical page frames. A single allocator is
// shared by all address spaces on a server so that distinct instances
// occupy distinct physical memory (and therefore contend in the shared LLC).
type FrameAllocator struct {
	next uint64
}

// NewFrameAllocator creates an allocator whose first frame starts at
// baseFrame (frames, not bytes).
func NewFrameAllocator(baseFrame uint64) *FrameAllocator {
	return &FrameAllocator{next: baseFrame}
}

// Alloc returns the physical base address of one fresh frame.
func (f *FrameAllocator) Alloc() uint64 {
	frame := f.next
	f.next++
	return frame << PageShift
}

// AllocContiguous returns the physical base address of n physically
// contiguous frames, as the OS does for Jukebox's metadata buffers
// (Sec. 3.4.1). It panics for n <= 0.
func (f *FrameAllocator) AllocContiguous(n int) uint64 {
	if n <= 0 {
		panic(fmt.Sprintf("vm: AllocContiguous(%d)", n))
	}
	base := f.next
	f.next += uint64(n)
	return base << PageShift
}

// FramesAllocated reports how many frames have been handed out relative to
// the allocator's base.
func (f *FrameAllocator) FramesAllocated(baseFrame uint64) uint64 { return f.next - baseFrame }

// AddressSpace is one process's page table: a demand-populated map from
// virtual page to physical frame.
type AddressSpace struct {
	alloc *FrameAllocator
	table map[uint64]uint64 // vpage -> physical frame base address
	// Migrations counts pages moved by Compact, for reporting.
	Migrations uint64
}

// NewAddressSpace creates an empty address space drawing frames from alloc.
func NewAddressSpace(alloc *FrameAllocator) *AddressSpace {
	return &AddressSpace{alloc: alloc, table: make(map[uint64]uint64)}
}

// Translate maps vaddr to its physical address, demand-allocating a frame on
// first touch (anonymous mmap semantics: serverless instances are entirely
// memory-resident, swap is disabled on FaaS hosts).
func (as *AddressSpace) Translate(vaddr uint64) uint64 {
	vp := PageOf(vaddr)
	frame, ok := as.table[vp]
	if !ok {
		frame = as.alloc.Alloc()
		as.table[vp] = frame
	}
	return frame | (vaddr & (PageSize - 1))
}

// Lookup is Translate without demand allocation; ok reports whether the page
// is mapped.
func (as *AddressSpace) Lookup(vaddr uint64) (paddr uint64, ok bool) {
	frame, ok := as.table[PageOf(vaddr)]
	if !ok {
		return 0, false
	}
	return frame | (vaddr & (PageSize - 1)), true
}

// MappedPages reports the number of resident pages.
func (as *AddressSpace) MappedPages() int { return len(as.table) }

// Compact migrates every mapped page to a fresh physical frame, modeling OS
// memory compaction / page migration. Virtual addresses are unaffected;
// all previously returned physical addresses become stale. Pages migrate in
// virtual-address order: frame assignment must not depend on map iteration
// order, or physically-indexed cache behaviour after compaction — and with
// it the compaction experiment — differs run to run.
func (as *AddressSpace) Compact() {
	vps := make([]uint64, 0, len(as.table))
	for vp := range as.table {
		vps = append(vps, vp)
	}
	slices.Sort(vps)
	for _, vp := range vps {
		as.table[vp] = as.alloc.Alloc()
		as.Migrations++
	}
}

// TLBConfig describes one TLB's geometry and the cost model of refills.
type TLBConfig struct {
	Name string
	Sets int
	Ways int
}

// Validate reports whether the geometry is realizable: positive ways and a
// positive power-of-two set count. Errors wrap cfgerr.ErrBadConfig.
func (c TLBConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 || c.Ways <= 0 {
		return cfgerr.New("TLB %s: bad geometry %d sets x %d ways", c.Name, c.Sets, c.Ways)
	}
	return nil
}

// tlbEntry is one translation cache entry.
type tlbEntry struct {
	vpage uint64
	valid bool
	lru   uint64
}

// TLBStats counts TLB demand traffic.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
	Flushes  uint64
}

// TLB is a set-associative translation lookaside buffer over virtual pages.
// It caches only reachability (the physical mapping is read from the
// AddressSpace on every translation, so Compact takes effect immediately
// after a Flush, exactly like a real TLB shootdown).
type TLB struct {
	cfg     TLBConfig
	entries []tlbEntry
	tick    uint64
	Stats   TLBStats
}

// NewTLB builds a TLB; it panics on invalid geometry. Callers taking TLB
// geometry from user input should call TLBConfig.Validate first.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("vm: %v", err))
	}
	return &TLB{cfg: cfg, entries: make([]tlbEntry, cfg.Sets*cfg.Ways)}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

func (t *TLB) set(vpage uint64) []tlbEntry {
	s := int(vpage) & (t.cfg.Sets - 1)
	return t.entries[s*t.cfg.Ways : (s+1)*t.cfg.Ways]
}

// Access looks up vpage, returning whether it hit, and inserts it on a miss.
func (t *TLB) Access(vpage uint64) bool {
	t.Stats.Accesses++
	set := t.set(vpage)
	for i := range set {
		if set[i].valid && set[i].vpage == vpage {
			t.tick++
			set[i].lru = t.tick
			return true
		}
	}
	t.Stats.Misses++
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	t.tick++
	set[vi] = tlbEntry{vpage: vpage, valid: true, lru: t.tick}
	return false
}

// Probe reports residency without inserting or counting.
func (t *TLB) Probe(vpage uint64) bool {
	for _, e := range t.set(vpage) {
		if e.valid && e.vpage == vpage {
			return true
		}
	}
	return false
}

// Flush invalidates all entries (context switch / shootdown).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.Stats.Flushes++
}

// ResetStats zeroes the counters, keeping contents.
func (t *TLB) ResetStats() { t.Stats = TLBStats{} }

// EvictFraction invalidates approximately frac of the TLB's entries,
// modeling partial displacement by interleaved foreign translations.
func (t *TLB) EvictFraction(frac float64, rng func() uint64) {
	if frac <= 0 {
		return
	}
	threshold := uint64(frac * float64(1<<32))
	for i := range t.entries {
		if t.entries[i].valid && rng()&0xFFFFFFFF < threshold {
			t.entries[i].valid = false
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags iteration over maps in result-producing packages: Go
// randomizes map iteration order, so any such loop whose effects are
// order-sensitive feeds nondeterminism straight into rendered tables, cache
// keys, or replay state (the PR 4 vm.AddressSpace.Compact frame-assignment
// bug). A loop passes when it
//
//   - collects keys/values into a slice that is sorted later in the same
//     function (the sanctioned idiom),
//   - is provably order-insensitive — its body only performs commutative
//     integer accumulation, map writes with call-free right-hand sides,
//     deletes, or running-min/max updates — or
//   - carries a `//lukewarm:ordered <reason>` waiver.
//
// `maps.Keys`/`maps.Values` calls must likewise be wrapped in
// `slices.Sorted*` or waived.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags order-sensitive iteration over maps in result-producing packages",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	if !resultProducing(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapIter(pass, fd.Body)
		}
	}
	return nil
}

// checkFuncMapIter inspects one function body: every range-over-map inside
// it, plus unsorted maps.Keys/maps.Values calls. fnBody is also the region
// searched for the sort call that blesses a collect-then-sort loop.
func checkFuncMapIter(pass *Pass, fnBody *ast.BlockStmt) {
	sortedKeys := sortedArgs(pass, fnBody)
	ast.Inspect(fnBody, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if !isMap(pass.TypesInfo.Types[n.X].Type) {
				return true
			}
			if pass.waived(n.Pos(), "ordered") {
				return true
			}
			if collectsThenSorts(pass, n, fnBody) {
				return true
			}
			if orderInsensitiveBody(pass, n.Body) {
				return true
			}
			pass.Reportf(n.Pos(), "iteration over map %s is order-sensitive: "+
				"sort the keys first, or waive with //lukewarm:ordered <reason>",
				types.ExprString(n.X))
		case *ast.CallExpr:
			pkg, name, ok := pass.pkgFunc(n)
			if !ok || pkg != "maps" && pkg != "golang.org/x/exp/maps" {
				return true
			}
			if name != "Keys" && name != "Values" {
				return true
			}
			if sortedKeys[n] || pass.waived(n.Pos(), "ordered") {
				return true
			}
			pass.Reportf(n.Pos(), "maps.%s yields keys in random order: "+
				"wrap in slices.Sorted*, or waive with //lukewarm:ordered <reason>", name)
		}
		return true
	})
}

// sortedArgs records every expression passed directly to a slices.Sorted*
// call within body — the maps.Keys calls those bless.
func sortedArgs(pass *Pass, body *ast.BlockStmt) map[ast.Expr]bool {
	blessed := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pass.pkgFunc(call)
		if !ok || pkg != "slices" {
			return true
		}
		switch name {
		case "Sorted", "SortedFunc", "SortedStableFunc":
			if len(call.Args) > 0 {
				blessed[ast.Unparen(call.Args[0])] = true
			}
		}
		return true
	})
	return blessed
}

// collectsThenSorts recognizes the sanctioned determinism idiom:
//
//	for k := range m { keys = append(keys, k) }
//	slices.Sort(keys)
//
// The loop body must be a single append into a slice variable, and a sort
// call referencing that variable must appear after the loop in the enclosing
// function body.
func collectsThenSorts(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	obj := pass.TypesInfo.Uses[lhs]
	if obj == nil {
		obj = pass.TypesInfo.Defs[lhs]
	}
	if obj == nil {
		return false
	}
	return sortedAfter(pass, fnBody, obj, rng.End())
}

// sortedAfter reports whether a sort.* or slices.Sort* call mentioning obj
// appears after pos within body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		pkg, name, ok := pass.pkgFunc(call)
		if !ok {
			return true
		}
		isSort := pkg == "sort" || pkg == "slices" && (name == "Sort" ||
			name == "SortFunc" || name == "SortStableFunc" || name == "Reverse")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// orderInsensitiveBody reports whether every statement in the loop body is
// commutative with respect to iteration order.
func orderInsensitiveBody(pass *Pass, body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if !orderInsensitiveStmt(pass, s) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		// n++ / n-- on integers commutes; float increments do not round-trip.
		return isInteger(pass.TypesInfo.Types[s.X].Type)
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, s)
	case *ast.ExprStmt:
		// delete(m, k) into any map commutes.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
		return ok && b.Name() == "delete"
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.IfStmt:
		return orderInsensitiveIf(pass, s)
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// orderInsensitiveAssign accepts commutative integer accumulation
// (+= -= *= |= &= ^=), and plain assignment only into map elements with
// call-free right-hand sides — a call could carry state that makes the
// stored value depend on visit order (the Compact bug's alloc.Alloc()).
func orderInsensitiveAssign(pass *Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, l := range s.Lhs {
			if !isInteger(pass.TypesInfo.Types[l].Type) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		for _, l := range s.Lhs {
			l = ast.Unparen(l)
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			ix, ok := l.(*ast.IndexExpr)
			if !ok || !isMap(pass.TypesInfo.Types[ix.X].Type) {
				return false
			}
		}
		for _, r := range s.Rhs {
			if !pass.callFree(r) {
				return false
			}
		}
		return true
	}
	return false
}

// orderInsensitiveIf accepts two shapes: a guard whose branches are
// themselves order-insensitive (conditional counting, including a comma-ok
// membership probe in the init clause), and the running min/max idiom
// `if v > best { best = v }`, where the assigned variable appears in the
// comparison.
func orderInsensitiveIf(pass *Pass, s *ast.IfStmt) bool {
	if s.Init != nil && !callFreeDefine(pass, s.Init) {
		return false
	}
	if !pass.callFree(s.Cond) {
		return false
	}
	cmp, isCmp := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if isCmp {
		switch cmp.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if asg := singleAssign(s.Body); asg != nil && s.Else == nil &&
				assignTargetInCond(pass, asg, cmp) {
				return true
			}
		}
	}
	if !orderInsensitiveBody(pass, s.Body) {
		return false
	}
	switch e := s.Else.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		return orderInsensitiveBody(pass, e)
	case *ast.IfStmt:
		return orderInsensitiveIf(pass, e)
	}
	return false
}

// callFreeDefine accepts an if-init of the form `x, ok := m[k]` (or any
// other `:=` whose right-hand sides are call-free): its bindings are
// per-iteration and cannot carry state across iterations.
func callFreeDefine(pass *Pass, s ast.Stmt) bool {
	asg, ok := s.(*ast.AssignStmt)
	if !ok || asg.Tok != token.DEFINE {
		return false
	}
	for _, r := range asg.Rhs {
		if !pass.callFree(r) {
			return false
		}
	}
	return true
}

// singleAssign returns the block's sole statement when it is a plain `=`
// with one target, else nil.
func singleAssign(b *ast.BlockStmt) *ast.AssignStmt {
	if len(b.List) != 1 {
		return nil
	}
	asg, ok := b.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 {
		return nil
	}
	return asg
}

// assignTargetInCond reports whether the assignment's target identifier is an
// operand of the comparison — the running-min/max shape.
func assignTargetInCond(pass *Pass, asg *ast.AssignStmt, cmp *ast.BinaryExpr) bool {
	id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		if sid, ok := ast.Unparen(side).(*ast.Ident); ok && pass.TypesInfo.Uses[sid] == obj {
			return true
		}
	}
	return false
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the slice of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the given `go list` patterns (e.g. "./...") from dir — which
// must sit inside the module — and returns each matched package parsed with
// comments and fully type-checked.
//
// Type information for dependencies comes from the standard library's source
// importer, so no export data, build cache coupling, or external module is
// required; one importer instance is shared across the run so each dependency
// is checked once.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := CheckFiles(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir under the import path `path` —
// the fixture entry point used by analysistest-style tests.
func LoadDir(dir, path string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			files = append(files, m)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := CheckFiles(fset, imp, path, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// CheckFiles parses and type-checks one package from explicit file paths.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info}, nil
}

// goList shells out to `go list -json` for pattern expansion, the one piece
// of module awareness the standard library does not expose as an API.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPkg
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

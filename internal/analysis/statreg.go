package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// StatReg guards the result-struct → table pipeline: every exported field of
// an exported `*Result`/`*Stats` struct must be reachable from one of the
// type's emitter methods (String, *Table*, *CSV*, *Write*, *Render*, *Row*),
// directly or through same-package helpers those emitters call. A field that
// is not reachable is a measurement the experiment collects and then
// silently drops from every rendered table — the golden harness cannot
// notice a column that never existed. Structs with no emitter methods are
// out of scope (plain counters). Waive an intentionally internal field with
// `//lukewarm:nostat <reason>`.
var StatReg = &Analyzer{
	Name: "statreg",
	Doc:  "result/stats struct fields must be reachable from their String/CSV emitters",
	Run:  runStatReg,
}

func runStatReg(pass *Pass) error {
	if !resultProducing(pass.Pkg.Path()) {
		return nil
	}
	graph := packageFuncDecls(pass)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		if !strings.HasSuffix(name, "Result") && !strings.HasSuffix(name, "Stats") {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		checkStatStruct(pass, graph, named, st)
	}
	return nil
}

func isEmitterName(name string) bool {
	if name == "String" {
		return true
	}
	for _, part := range []string{"Table", "CSV", "Write", "Render", "Row"} {
		if strings.Contains(name, part) {
			return true
		}
	}
	return false
}

// packageFuncDecls maps every function/method object declared in the package
// to its syntax, so reachability can walk the package-local call graph.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

func checkStatStruct(pass *Pass, graph map[*types.Func]*ast.FuncDecl, named *types.Named, st *types.Struct) {
	// Seed the walk with the struct's emitter methods.
	var queue []*ast.FuncDecl
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if isEmitterName(m.Name()) {
			if decl := graph[m]; decl != nil {
				queue = append(queue, decl)
			}
		}
	}
	if len(queue) == 0 {
		return // no emitters: not a table-producing struct
	}

	// Fields of this struct, by canonical object.
	fields := map[types.Object]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = st.Field(i)
	}

	// BFS over the package-local call graph, collecting referenced fields.
	reached := map[types.Object]bool{}
	visited := map[*ast.FuncDecl]bool{}
	for len(queue) > 0 {
		decl := queue[0]
		queue = queue[1:]
		if visited[decl] || decl.Body == nil {
			continue
		}
		visited[decl] = true
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if _, isField := fields[obj]; isField {
				reached[obj] = true
			}
			if fn, ok := obj.(*types.Func); ok {
				if callee := graph[fn]; callee != nil && !visited[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || f.Anonymous() || reached[f] {
			continue
		}
		if pass.waived(f.Pos(), "nostat") {
			continue
		}
		pass.Reportf(f.Pos(), "%s.%s is never reachable from the type's String/CSV "+
			"emitters: the column is silently dropped from every table "+
			"(emit it, or waive with //lukewarm:nostat <reason>)", named.Obj().Name(), f.Name())
	}
}

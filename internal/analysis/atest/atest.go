// Package atest is the analysistest-style expectation checker shared by the
// analyzer test suites (internal/analysis and internal/analysis/perf). A
// fixture package carries `// want "regexp"` comments on the lines where
// diagnostics are expected (multiple quoted or backquoted regexps per comment
// are allowed), and Check reports unmatched expectations and unexpected
// diagnostics symmetrically, like
// golang.org/x/tools/go/analysis/analysistest.
//
// The package deliberately does not import internal/analysis — diagnostics
// arrive pre-flattened as Diag values — so the analysis package's in-package
// test files can import it without an import cycle, and any future analyzer
// suite can reuse it.
package atest

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
)

// TB is the subset of *testing.T the checker needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Diag is one analyzer finding, flattened to what matching needs.
type Diag struct {
	File    string // base name of the file the diagnostic landed in
	Line    int
	Message string
}

// wantRe extracts the quoted/backquoted patterns of one want comment.
var wantRe = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Check parses the want comments of every .go file in dir and matches diags
// against them: each diagnostic must be claimed by an expectation on its line,
// and each expectation must be matched by a diagnostic.
func Check(t TB, dir string, diags []Diag) {
	t.Helper()
	expects, err := parseExpectations(dir)
	if err != nil {
		t.Fatalf("parse want comments: %v", err)
	}
	for _, d := range diags {
		found := false
		for _, e := range expects {
			if e.matched || e.file != d.File || e.line != d.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.File, d.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func parseExpectations(dir string) ([]*expectation, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var expects []*expectation
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					pattern := arg
					if pattern[0] == '"' {
						if pattern, err = strconv.Unquote(arg); err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %v", file, arg, err)
						}
					} else {
						pattern = pattern[1 : len(pattern)-1]
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %s: %v", file, arg, err)
					}
					expects = append(expects, &expectation{
						file: filepath.Base(file),
						line: fset.Position(c.Pos()).Line,
						re:   re,
					})
				}
			}
		}
	}
	return expects, nil
}

package analysis

import "testing"

// TestRepoLintsClean is the meta-test behind the CI gate: the full analyzer
// suite over the whole module must report nothing, i.e.
// `go run ./cmd/lukewarmlint ./...` exits 0. Loading re-type-checks the tree
// from source, so this is the slowest test in the package.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree source type-check; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo is not lint-clean: %v", d)
	}
}

// Fixture for the seedhygiene analyzer: global math/rand use, constant seeds,
// and wall-clock reads are flagged; per-instance sources with derived seeds
// and reasoned waivers pass.
package seedhygiene

import (
	"math/rand"
	"time"
)

// Global-source draws: flagged.

func globalDraw() int {
	return rand.Intn(10) // want `rand.Intn draws from the process-global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `rand.Shuffle draws from the process-global source`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// Constant seeds: flagged. Derived seeds: clean.

func constantSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand.NewSource with a constant seed`
}

func derivedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func waivedGlobalDraw() int {
	//lukewarm:seed fixture: deliberately nondeterministic smoke path
	return rand.Intn(10)
}

// Wall-clock reads: flagged at every reference, including method values.

func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock in simulation code`
}

func storedSeamDefault() func() time.Time {
	return time.Now // want `time.Now reads the wall clock in simulation code`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock in simulation code`
}

func waivedClock() time.Time {
	//lukewarm:wallclock fixture: telemetry-only timestamp
	return time.Now()
}

// Simulated time arithmetic does not touch the wall clock: clean.

func simulatedTime(base time.Time) time.Time {
	return base.Add(3 * time.Millisecond)
}

// Fixture for the cfgvalidate analyzer: exported *Config structs must carry a
// called Validate() error wrapping cfgerr.ErrBadConfig. Missing methods,
// non-wrapping bodies, wrong signatures, and never-called validators are
// flagged; wrapping+called, delegating, trivial, and waived configs pass.
package cfgvalidate

import (
	"errors"

	"lukewarm/internal/cfgerr"
)

// GoodConfig: wraps the sentinel and is called below. Clean.
type GoodConfig struct{ N int }

func (c GoodConfig) Validate() error {
	if c.N < 0 {
		return cfgerr.New("N must be >= 0, got %d", c.N)
	}
	return nil
}

// MissingConfig has no Validate at all.
type MissingConfig struct{ N int } // want `exported config MissingConfig has no Validate\(\) error method`

// BadWrapConfig's Validate returns a bare error that does not wrap the
// sentinel, so errors.Is(err, cfgerr.ErrBadConfig) misses it.
type BadWrapConfig struct{ N int }

func (c BadWrapConfig) Validate() error { // want `BadWrapConfig.Validate returns errors that do not wrap`
	if c.N < 0 {
		return errors.New("bad N")
	}
	return nil
}

// BadSigConfig's Validate has the wrong shape.
type BadSigConfig struct{ N int }

func (c BadSigConfig) Validate(strict bool) error { // want `BadSigConfig.Validate must have signature Validate\(\) error`
	_ = strict
	return nil
}

// UncalledConfig wraps correctly but nothing ever invokes it.
type UncalledConfig struct{ N int } // want `UncalledConfig.Validate is never called`

func (c UncalledConfig) Validate() error {
	if c.N < 0 {
		return cfgerr.New("N must be >= 0, got %d", c.N)
	}
	return nil
}

// DelegatingConfig satisfies the wrapping rule by delegating to a nested
// config's Validate. Clean.
type DelegatingConfig struct{ Inner GoodConfig }

func (c DelegatingConfig) Validate() error { return c.Inner.Validate() }

// TrivialConfig has nothing to check: every return is `return nil`. Clean.
type TrivialConfig struct{ Label string }

func (c TrivialConfig) Validate() error { return nil }

//lukewarm:novalidate fixture: defaults are filled by withDefaults, nothing to reject
type WaivedConfig struct{ N int }

func use() error {
	if err := (GoodConfig{N: 1}).Validate(); err != nil {
		return err
	}
	if err := (BadWrapConfig{N: 1}).Validate(); err != nil {
		return err
	}
	if err := (DelegatingConfig{}).Validate(); err != nil {
		return err
	}
	if err := (TrivialConfig{}).Validate(); err != nil {
		return err
	}
	_ = BadSigConfig{}.Validate(true)
	_ = MissingConfig{}
	_ = UncalledConfig{}
	_ = WaivedConfig{}
	return nil
}

// Fixture for the statreg analyzer: exported fields of Result/Stats structs
// must be reachable from the type's emitter methods (String/*Table*/*CSV*/
// *Write*/*Render*/*Row*), directly or through same-package helpers. Dropped
// fields are flagged; reached, unexported, embedded, and waived fields pass,
// as do structs with no emitters at all.
package statreg

import "fmt"

type baseCounters struct{ raw uint64 }

// RunResult has a String emitter; every exported field must reach it.
type RunResult struct {
	baseCounters // embedded: out of scope

	Hits    uint64
	Misses  uint64
	Dropped uint64 // want `RunResult.Dropped is never reachable`

	//lukewarm:nostat fixture: scratch state carried between phases, not a column
	Scratch uint64

	internal uint64 // unexported: out of scope
}

func (r RunResult) String() string {
	return fmt.Sprintf("hits %d, %s", r.Hits, r.missLine())
}

// missLine is a same-package helper the emitter calls: Misses is reachable
// through it.
func (r RunResult) missLine() string {
	return fmt.Sprintf("misses %d", r.Misses)
}

// BareStats has no emitter methods, so it is a plain counter bag: skipped.
type BareStats struct {
	Count uint64
}

// CSVResult exercises a non-String emitter name.
type CSVResult struct {
	Rows  int
	Bytes int // want `CSVResult.Bytes is never reachable`
}

func (c CSVResult) WriteCSV() string {
	return fmt.Sprintf("%d", c.Rows)
}

// SweepResult mirrors the coldstart-comparator shape: nested map columns
// split across several emitters (a main table, a winner table, a headline
// accessor), with reachability satisfied as long as ANY emitter reads the
// field. A map field no emitter renders is still flagged.
type SweepResult struct {
	SpeedupPct map[string]map[string]float64
	Winner     map[string]string
	Crossover  float64
	Staleness  []float64
	WastedKB   map[string]float64 // want `SweepResult.WastedKB is never reachable`
}

func (r SweepResult) Table() string {
	return fmt.Sprintf("%v", r.SpeedupPct)
}

func (r SweepResult) CrossoverTable() string {
	return fmt.Sprintf("%v %.1f", r.Winner, r.Crossover)
}

func (r SweepResult) StalenessTable() string {
	return fmt.Sprintf("%v", r.Staleness)
}

// TierResult mirrors the pre-warm traffic summary shape: readiness-tier and
// sync-replay columns rendered only conditionally through a same-package
// helper that builds the "extra" suffix, plus a nested ledger struct whose
// own String emitter the outer one delegates to. Conditional rendering still
// counts as reachable; a tier column no emitter ever touches is flagged.
type TierResult struct {
	TierColdMs   float64
	TierWarmMs   float64
	SyncReplays  int
	SyncReplayMs float64
	Ledger       tierLedger
	TierStaleMs  float64 // want `TierResult.TierStaleMs is never reachable`
}

type tierLedger struct {
	Used   int
	Wasted int
}

func (l tierLedger) String() string {
	return fmt.Sprintf("%d used, %d wasted", l.Used, l.Wasted)
}

func (r TierResult) String() string {
	return fmt.Sprintf("cold %.1f ms, warm %.1f ms%s", r.TierColdMs, r.TierWarmMs, r.extra())
}

func (r TierResult) extra() string {
	if r.SyncReplays == 0 {
		return r.Ledger.String()
	}
	return fmt.Sprintf(", %d sync replays (%.2f ms)", r.SyncReplays, r.SyncReplayMs)
}

func use() {
	_ = RunResult{internal: 1, baseCounters: baseCounters{raw: 2}}.internal
	_ = BareStats{}
	_ = SweepResult{WastedKB: nil}
	_ = TierResult{TierStaleMs: 1}
}

// Fixture for the mapiter analyzer: order-sensitive map iteration is flagged,
// the sanctioned idioms (collect-then-sort, commutative accumulation,
// running min/max, deletes, membership counting) and reasoned waivers pass.
package mapiter

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

func next() string { return "x" }

// Order-sensitive loops: flagged.

func appendWithoutSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over map m is order-sensitive`
		out = append(out, fmt.Sprint(k))
	}
	return out
}

func floatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `iteration over map m is order-sensitive`
		sum += v
	}
	return sum
}

func mapWriteWithCall(m, dst map[string]string) {
	for k := range m { // want `iteration over map m is order-sensitive`
		dst[k] = next()
	}
}

// A bare waiver carries no reason and does not waive.
func bareWaiverDoesNotWaive(m map[string]int) []string {
	var out []string
	//lukewarm:ordered
	for k := range m { // want `iteration over map m is order-sensitive`
		out = append(out, fmt.Sprint(k))
	}
	return out
}

// Order-insensitive or sanctioned loops: clean.

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func integerCounting(m map[string]int) (n, total int) {
	for _, v := range m {
		n++
		total += v
	}
	return n, total
}

func runningMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func membershipCount(small, large map[string]bool) int {
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	return inter
}

func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func callFreeMapWrite(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

func waivedLoop(m map[string]int) int {
	s := 0
	//lukewarm:ordered fixture: demonstrates a reasoned waiver on the loop
	for _, v := range m {
		s = s + v // plain = into a non-map target would otherwise flag
	}
	return s
}

// maps.Keys must be sorted or waived.

func unsortedMapsKeys(m map[string]int) {
	for range maps.Keys(m) { // want `maps.Keys yields keys in random order`
	}
}

func sortedMapsKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// Regression fixture: the PR 4 vm.AddressSpace.Compact frame-assignment bug.
//
// Compact migrates every resident page to a freshly allocated frame. The
// pre-fix implementation ranged over the page table directly and called the
// stateful frame allocator inside the loop, so the virtual-page -> new-frame
// assignment depended on Go's randomized map iteration order — replays were
// not bit-identical across runs. The shipped fix collects and sorts the
// virtual pages first. mapiter must flag the former and pass the latter.
package mapiter

import "slices"

type frameAlloc struct{ next uint64 }

func (a *frameAlloc) Alloc() uint64 {
	a.next++
	return a.next
}

type addressSpace struct {
	table map[uint64]uint64 // virtual page -> physical frame
	alloc frameAlloc
}

// compactPreFix is the buggy PR 4 shape: alloc.Alloc() is a stateful call, so
// which page receives which frame follows map iteration order.
func (as *addressSpace) compactPreFix() {
	for vp := range as.table { // want `iteration over map as\.table is order-sensitive`
		as.table[vp] = as.alloc.Alloc()
	}
}

// compactFixed is the shipped fix: deterministic page order via collect-then-
// sort, then the stateful allocation in sorted order.
func (as *addressSpace) compactFixed() {
	vps := make([]uint64, 0, len(as.table))
	for vp := range as.table {
		vps = append(vps, vp)
	}
	slices.Sort(vps)
	for _, vp := range vps {
		as.table[vp] = as.alloc.Alloc()
	}
}

// Fixture for the floateq analyzer: exact ==/!= between float operands is
// flagged; integer comparisons, compile-time constant comparisons, and
// reasoned waivers pass.
package floateq

func exactEqual(a, b float64) bool {
	return a == b // want `exact float comparison`
}

func exactNotEqual(a, b float64) bool {
	return a != b // want `exact float comparison`
}

func zeroSentinelUnwaived(x float64) bool {
	return x == 0 // want `exact float comparison`
}

func mixedWidth(a float32, b float64) bool {
	return float64(a) == b // want `exact float comparison`
}

func integerCompare(a, b int) bool {
	return a == b
}

func orderedCompare(a, b float64) bool {
	return a < b // only ==/!= are exactness traps; ordering is well-defined
}

func bothConstant() bool {
	const eps = 1e-9
	return eps == 1e-9 // compile-time fact, not runtime float equality
}

func waivedSentinel(x float64) bool {
	//lukewarm:floateq fixture: 0 is a configured sentinel, not arithmetic
	return x == 0
}

package analysis

import (
	"strings"
	"testing"
)

func TestMapIterFixture(t *testing.T)     { runFixture(t, MapIter, "mapiter") }
func TestSeedHygieneFixture(t *testing.T) { runFixture(t, SeedHygiene, "seedhygiene") }
func TestCfgValidateFixture(t *testing.T) { runFixture(t, CfgValidate, "cfgvalidate") }
func TestFloatEqFixture(t *testing.T)     { runFixture(t, FloatEq, "floateq") }
func TestStatRegFixture(t *testing.T)     { runFixture(t, StatReg, "statreg") }

// TestCompactRegression pins the PR 4 vm.AddressSpace.Compact bug as a
// fixture: the pre-fix range-over-page-table shape must be flagged and the
// shipped collect-then-sort fix must pass. The mapiter fixture's want
// comments already encode this; here we assert it independently so the
// regression does not silently vanish if the fixture is edited.
func TestCompactRegression(t *testing.T) {
	pkg, err := LoadDir("testdata/src/mapiter", "mapiter")
	if err != nil {
		t.Fatalf("load mapiter fixture: %v", err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{MapIter})
	if err != nil {
		t.Fatalf("run mapiter: %v", err)
	}
	var preFixFlagged bool
	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, "compact.go") {
			continue
		}
		if strings.Contains(d.Message, "as.table") {
			preFixFlagged = true
			continue
		}
		t.Errorf("unexpected diagnostic in compact.go: %v", d)
	}
	if !preFixFlagged {
		t.Error("mapiter did not flag the pre-fix Compact loop (range over page table with stateful Alloc in the body)")
	}
}

func TestWaiverReason(t *testing.T) {
	cases := []struct {
		comment   string
		directive string
		waives    bool
	}{
		{"//lukewarm:ordered keys reduced to a sum", "ordered", true},
		{"//lukewarm:ordered", "ordered", false},           // bare: no reason
		{"//lukewarm:ordered   ", "ordered", false},        // whitespace-only reason
		{"//lukewarm:orderedX reason", "ordered", false},   // not the directive
		{"//lukewarm:seed reason", "ordered", false},       // different directive
		{"// lukewarm:ordered reason", "ordered", false},   // space breaks the marker
		{"//lukewarm:wallclock telemetry only", "wallclock", true},
	}
	for _, c := range cases {
		reason, ok := waiverReason(c.comment, c.directive)
		waives := ok && strings.TrimSpace(reason) != ""
		if waives != c.waives {
			t.Errorf("waiverReason(%q, %q): waives=%v, want %v", c.comment, c.directive, waives, c.waives)
		}
	}
}

func TestScopes(t *testing.T) {
	if !resultProducing("lukewarm/internal/vm") || !resultProducing("fixturepkg") {
		t.Error("vm and fixture packages must be in mapiter/statreg scope")
	}
	if resultProducing("lukewarm/internal/trace") {
		t.Error("trace is not a result-producing package")
	}
	if !simulation("lukewarm/internal/core") || !simulation("fixturepkg") {
		t.Error("core and fixture packages must be in simulation scope")
	}
	if simulation("lukewarm/cmd/lukewarm") || simulation("lukewarm/internal/analysis") {
		t.Error("cmd and the linter itself are outside simulation scope")
	}
}

// TestAllHaveFailingFixtures asserts every analyzer in the suite produces at
// least one diagnostic on its own fixture — an analyzer whose fixture never
// fires is dead enforcement.
func TestAllHaveFailingFixtures(t *testing.T) {
	fixtures := map[string]string{
		"mapiter":     "mapiter",
		"seedhygiene": "seedhygiene",
		"cfgvalidate": "cfgvalidate",
		"floateq":     "floateq",
		"statreg":     "statreg",
	}
	for _, a := range All() {
		fixture, ok := fixtures[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no fixture", a.Name)
			continue
		}
		pkg, err := LoadDir("testdata/src/"+fixture, fixture)
		if err != nil {
			t.Fatalf("load %s: %v", fixture, err)
		}
		diags, err := Run([]*Package{pkg}, []*Analyzer{a})
		if err != nil {
			t.Fatalf("run %s: %v", a.Name, err)
		}
		if len(diags) == 0 {
			t.Errorf("analyzer %s produced no diagnostics on its fixture", a.Name)
		}
	}
}

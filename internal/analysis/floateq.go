package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags `==` and `!=` between floating-point operands in simulation
// code. The golden-figure gates hold tables to tolerance bands precisely
// because float arithmetic accumulates rounding that varies with evaluation
// order; an exact comparison in the stack silently encodes an assumption
// those gates exist to catch. Use the tolerance helpers in internal/stats
// (stats.ApproxEqual / stats.Near), or waive a deliberate exact comparison
// (sentinel zeros, integer-valued identities) with
// `//lukewarm:floateq <reason>`.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on floats in simulation code; use internal/stats tolerance helpers",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	if !simulation(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || bin.Op != token.EQL && bin.Op != token.NEQ {
				return true
			}
			x := pass.TypesInfo.Types[bin.X]
			y := pass.TypesInfo.Types[bin.Y]
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			// An untyped constant operand whose value is exact at the
			// comparison (for example a switch over enum-like codes) is
			// still float equality; only both-constant comparisons are
			// compile-time facts.
			if x.Value != nil && y.Value != nil {
				return true
			}
			if pass.waived(bin.Pos(), "floateq") {
				return true
			}
			pass.Reportf(bin.Pos(), "exact float comparison (%s %s %s): use "+
				"stats.ApproxEqual/stats.Near, or waive with //lukewarm:floateq <reason>",
				types.ExprString(bin.X), bin.Op, types.ExprString(bin.Y))
			return true
		})
	}
	return nil
}

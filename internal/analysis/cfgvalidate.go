package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CfgValidate enforces the configuration-hygiene contract from the error
// model (DESIGN.md §7): every exported `*Config` struct carries a
// `Validate() error` whose failures wrap cfgerr.ErrBadConfig, and that
// Validate is actually invoked somewhere in the (non-test) tree — an unused
// validator is a validation gap the fault harness cannot see. A Validate
// body passes the wrapping rule when it references cfgerr.New /
// cfgerr.ErrBadConfig, delegates to another Validate, or can only
// `return nil`. Waive a type with `//lukewarm:novalidate <reason>` on its
// declaration.
var CfgValidate = &Analyzer{
	Name: "cfgvalidate",
	Doc:  "exported *Config structs need a called Validate() error wrapping cfgerr.ErrBadConfig",
	Run:  runCfgValidate,
}

func runCfgValidate(pass *Pass) error {
	if !simulation(pass.Pkg.Path()) {
		return nil
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || !strings.HasSuffix(name, "Config") {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		if pass.waived(tn.Pos(), "novalidate") {
			continue
		}
		checkConfigType(pass, tn, named)
	}
	return nil
}

func checkConfigType(pass *Pass, tn *types.TypeName, named *types.Named) {
	obj, _, _ := types.LookupFieldOrMethod(named, true, pass.Pkg, "Validate")
	fn, ok := obj.(*types.Func)
	if !ok {
		pass.Reportf(tn.Pos(), "exported config %s has no Validate() error method "+
			"(or waive with //lukewarm:novalidate <reason>)", tn.Name())
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 ||
		sig.Results().At(0).Type().String() != "error" {
		pass.Reportf(fn.Pos(), "%s.Validate must have signature Validate() error", tn.Name())
		return
	}
	if decl := methodDecl(pass, tn.Name(), "Validate"); decl != nil {
		if !validateWrapsSentinel(pass, decl) {
			pass.Reportf(decl.Pos(), "%s.Validate returns errors that do not wrap "+
				"cfgerr.ErrBadConfig (use cfgerr.New)", tn.Name())
		}
	}
	if !validateCalled(pass, pass.Pkg.Path(), tn.Name()) {
		pass.Reportf(tn.Pos(), "%s.Validate is never called: validate the config "+
			"before use (or waive with //lukewarm:novalidate <reason>)", tn.Name())
	}
}

// methodDecl finds the declaration of typeName's method in the package under
// analysis (methods cannot live elsewhere).
func methodDecl(pass *Pass, typeName, method string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != method || len(fd.Recv.List) != 1 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) == typeName {
				return fd
			}
		}
	}
	return nil
}

func recvTypeName(expr ast.Expr) string {
	switch t := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

// validateWrapsSentinel accepts a Validate body that references the cfgerr
// package (New or ErrBadConfig), delegates to another Validate call, or
// whose every return is a bare `return nil`.
func validateWrapsSentinel(pass *Pass, decl *ast.FuncDecl) bool {
	if decl.Body == nil {
		return true
	}
	usesCfgerr, delegates, trivial := false, false, true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj != nil && obj.Pkg() != nil &&
				strings.HasSuffix(obj.Pkg().Path(), "internal/cfgerr") &&
				(obj.Name() == "New" || obj.Name() == "ErrBadConfig") {
				usesCfgerr = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Validate" {
				delegates = true
			}
		case *ast.ReturnStmt:
			if len(n.Results) != 1 {
				trivial = false
				return true
			}
			if id, ok := ast.Unparen(n.Results[0]).(*ast.Ident); !ok || id.Name != "nil" {
				trivial = false
			}
		}
		return true
	})
	return usesCfgerr || delegates || trivial
}

// validateCalled scans every loaded package for a call of
// (<pkgPath>.<typeName>).Validate. Instances of the same package loaded
// through different importers are distinct objects, so the match is by
// package path and type name, not object identity.
func validateCalled(pass *Pass, pkgPath, typeName string) bool {
	for _, pkg := range pass.Prog {
		for _, file := range pkg.Syntax {
			found := false
			ast.Inspect(file, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Validate" {
					return true
				}
				tv, ok := pkg.TypesInfo.Types[sel.X]
				if !ok {
					return true
				}
				if namedTypeIs(tv.Type, pkgPath, typeName) {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		return namedTypeIs(ptr.Elem(), pkgPath, name)
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

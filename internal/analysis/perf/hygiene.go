package perf

import (
	"go/ast"
	"go/token"
	"go/types"

	"lukewarm/internal/analysis"
)

// HotHygiene flags allocation-prone constructs in every function reachable
// from a //lukewarm:hotpath root within its package: defer (a per-call defer
// record), map iteration (a hidden iterator and random order), closures
// (captures escape), string concatenation (a fresh backing array per +), and
// implicit interface conversions of non-pointer values (runtime boxing). The
// compiler gate (CompileCheck) is ground truth for what actually allocates;
// this pass front-runs it with precise positions on the idioms whose escape
// output is attributed poorly or not at all (defer, boxing through inlined
// callees).
//
// Intentional occurrences carry `//lukewarm:hothygiene <reason>` on the line
// or the line above.
var HotHygiene = &analysis.Analyzer{
	Name: "hothygiene",
	Doc:  "flags defer, map range, closures, string concat, and interface boxing on hot paths",
	Run:  runHotHygiene,
}

func runHotHygiene(pass *analysis.Pass) error {
	roots := hotpathsIn(pass.Fset, pass.Files, nil)
	if len(roots) == 0 {
		return nil
	}
	for _, fd := range reachableFrom(pass, roots) {
		checkHygiene(pass, fd)
	}
	return nil
}

func checkHygiene(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	report := func(pos token.Pos, format string, args ...any) {
		if !pass.Waived(pos, "hothygiene") {
			pass.Reportf(pos, format+"; hoist it off the hot path or waive with //lukewarm:hothygiene <reason>", args...)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			report(n.Pos(), "defer on hot path %s allocates a defer record per call", funcName(fd))
		case *ast.RangeStmt:
			if isMapType(pass.TypesInfo.Types[n.X].Type) {
				report(n.Pos(), "map iteration on hot path %s walks buckets in random order through a hidden iterator", funcName(fd))
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure on hot path %s heap-allocates its captures", funcName(fd))
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypesInfo.Types[n].Type) &&
				pass.TypesInfo.Types[n].Value == nil {
				report(n.Pos(), "string concatenation on hot path %s allocates a fresh backing array", funcName(fd))
				return false // the operands of a+b+c are more BinaryExprs
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if boxes(pass, pass.TypesInfo.Types[lhs].Type, n.Rhs[i]) {
					report(n.Rhs[i].Pos(), "assignment boxes %s into an interface on hot path %s",
						types.ExprString(n.Rhs[i]), funcName(fd))
				}
			}
		case *ast.CallExpr:
			checkCallBoxing(pass, fd, n, report)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fd, n, report)
		}
		return true
	})
}

// checkCallBoxing flags arguments whose static type is a concrete
// non-pointer value passed into an interface parameter, and conversions
// T(x) where T is an interface type.
func checkCallBoxing(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, report reportFunc) {
	funTV := pass.TypesInfo.Types[call.Fun]
	if funTV.IsType() {
		if types.IsInterface(funTV.Type) && len(call.Args) == 1 &&
			boxes(pass, funTV.Type, call.Args[0]) {
			report(call.Args[0].Pos(), "conversion boxes %s into an interface on hot path %s",
				types.ExprString(call.Args[0]), funcName(fd))
		}
		return
	}
	sig, ok := funTV.Type.(*types.Signature)
	if !ok {
		return // builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through unboxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pass, pt, arg) {
			report(arg.Pos(), "argument boxes %s into an interface on hot path %s",
				types.ExprString(arg), funcName(fd))
		}
	}
}

// checkReturnBoxing flags results whose static type is a concrete
// non-pointer value returned through an interface result.
func checkReturnBoxing(pass *analysis.Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt, report reportFunc) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(ret.Results) != results.Len() {
		return // bare return or single multi-value call
	}
	for i, res := range ret.Results {
		if boxes(pass, results.At(i).Type(), res) {
			report(res.Pos(), "return boxes %s into an interface on hot path %s",
				types.ExprString(res), funcName(fd))
		}
	}
}

// boxes reports whether assigning e to a target of type target performs a
// runtime interface conversion that allocates: the target is an interface,
// and e's static type is a concrete value the runtime cannot store directly
// in the interface word. Constants (compiled to static data), nil, pointers,
// and other pointer-shaped types (chan, map, func, unsafe.Pointer) do not
// box.
func boxes(pass *analysis.Pass, target types.Type, e ast.Expr) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

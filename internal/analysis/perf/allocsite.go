package perf

import (
	"go/ast"
	"go/token"
	"go/types"

	"lukewarm/internal/analysis"
)

// AllocSite flags explicit allocation sites in every function reachable from
// a //lukewarm:hotpath root within its package: make and new (one allocation
// per call), heap composite literals (&T{...} and slice/map literals), and
// append into a backing array that was not pre-sized in the same function
// (growth reallocates and copies). Amortized allocations — a buffer that
// grows to a high-water mark once and is reused thereafter — are the
// sanctioned exception and carry `//lukewarm:hotalloc <reason>` waivers.
var AllocSite = &analysis.Analyzer{
	Name: "allocsite",
	Doc:  "flags make/new, heap composite literals, and growing append on hot paths",
	Run:  runAllocSite,
}

func runAllocSite(pass *analysis.Pass) error {
	roots := hotpathsIn(pass.Fset, pass.Files, nil)
	if len(roots) == 0 {
		return nil
	}
	for _, fd := range reachableFrom(pass, roots) {
		checkAllocs(pass, fd)
	}
	return nil
}

func checkAllocs(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	presized := presizedSlices(pass, fd)
	report := func(pos token.Pos, format string, args ...any) {
		if !pass.Waived(pos, "hotalloc") {
			pass.Reportf(pos, format+"; hoist it off the hot path or waive with //lukewarm:hotalloc <reason>", args...)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				report(n.Pos(), "&%s literal on hot path %s allocates on the heap",
					typeLabel(pass, cl), funcName(fd))
				return false
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal on hot path %s allocates its backing array per call", funcName(fd))
			case *types.Map:
				report(n.Pos(), "map literal on hot path %s allocates per call", funcName(fd))
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "make", "new":
				report(n.Pos(), "%s on hot path %s allocates per call", b.Name(), funcName(fd))
			case "append":
				if len(n.Args) > 0 && appendsToPresized(pass, n.Args[0], presized) {
					return true
				}
				report(n.Pos(), "append on hot path %s may grow its backing array", funcName(fd))
			}
		}
		return true
	})
}

// presizedSlices collects the slice variables this function creates with an
// explicit capacity — `s := make([]T, n, cap)` — whose appends up to that
// capacity cannot reallocate. (The make itself is still reported; the blessed
// hot-path pattern keeps the make off the hot path entirely and reuses the
// buffer.)
func presizedSlices(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	presized := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || asg.Tok != token.DEFINE || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, lhs := range asg.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := ast.Unparen(asg.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "make" {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					presized[obj] = true
				}
			}
		}
		return true
	})
	return presized
}

// appendsToPresized reports whether the append target is one of the
// function's capacity-presized slices (possibly re-sliced, `s[:0]`).
func appendsToPresized(pass *analysis.Pass, target ast.Expr, presized map[types.Object]bool) bool {
	target = ast.Unparen(target)
	if sl, ok := target.(*ast.SliceExpr); ok {
		target = ast.Unparen(sl.X)
	}
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && presized[obj]
}

// typeLabel renders a composite literal's type for diagnostics.
func typeLabel(pass *analysis.Pass, cl *ast.CompositeLit) string {
	if cl.Type != nil {
		return types.ExprString(cl.Type)
	}
	if t := pass.TypesInfo.Types[cl].Type; t != nil {
		return t.String()
	}
	return "composite"
}

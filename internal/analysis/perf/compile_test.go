package perf

import (
	"path/filepath"
	"strings"
	"testing"

	"lukewarm/internal/analysis"
)

// moduleRoot is the repository root relative to this package: the directory
// CompileCheck's diagnostic `go build` runs from.
const moduleRoot = "../../.."

func loadCompiled(t *testing.T, name string) []*analysis.Package {
	t.Helper()
	pkg, err := analysis.LoadDir(filepath.Join("testdata", "compiled", name), name)
	if err != nil {
		t.Fatalf("load compiled fixture %s: %v", name, err)
	}
	return []*analysis.Package{pkg}
}

// TestCompileCheckViolations plants one violation per invariant kind and
// asserts the compiler gate reports each: a deliberate escape fails noalloc
// and noescape, a data-dependent index fails nobce, and a go:noinline
// function fails inline with the compiler's own reason.
func TestCompileCheckViolations(t *testing.T) {
	diags, err := CompileCheck(moduleRoot, loadCompiled(t, "violate"))
	if err != nil {
		t.Fatalf("CompileCheck: %v", err)
	}
	wants := []string{
		"hotpath escapes declares noalloc, but the compiler reports",
		"hotpath escapes declares noescape, but the compiler reports",
		"hotpath gather declares nobce, but a bounds check survives",
		"hotpath heavy declares inline, but the compiler reports",
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected violation containing %q; got:\n%s", w, dump(diags))
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("want exactly %d findings, got %d:\n%s", len(wants), len(diags), dump(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "perfgate" {
			t.Errorf("finding attributed to %q, want perfgate", d.Analyzer)
		}
	}
}

// TestCompileCheckClean compiles the all-invariants-hold fixture and expects
// silence.
func TestCompileCheckClean(t *testing.T) {
	diags, err := CompileCheck(moduleRoot, loadCompiled(t, "clean"))
	if err != nil {
		t.Fatalf("CompileCheck: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("clean fixture produced findings:\n%s", dump(diags))
	}
}

// TestCompileCheckNoAnnotations short-circuits without invoking the compiler.
func TestCompileCheckNoAnnotations(t *testing.T) {
	diags, err := CompileCheck(moduleRoot, nil)
	if err != nil || diags != nil {
		t.Fatalf("no packages: diags=%v err=%v", diags, err)
	}
}

func dump(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

package perf

import (
	"testing"

	"lukewarm/internal/analysis"
)

// TestRepoPerfClean mirrors the base suite's TestRepoLintsClean for the perf
// suite: the hotpath analyzers and the compiler-diagnostic gate over the
// whole module must report nothing — i.e. `go run ./cmd/lukewarmlint ./...`
// stays exit 0 with -perf on. It also pins the acceptance floor of eight
// annotated hot-path functions across the timing-core packages.
func TestRepoPerfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree source type-check plus diagnostic rebuild; skipped in -short")
	}
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := analysis.Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("run perf analyzers: %v", err)
	}
	gate, err := CompileCheck("../../..", pkgs)
	if err != nil {
		t.Fatalf("compiler gate: %v", err)
	}
	for _, d := range append(diags, gate...) {
		t.Errorf("repo violates its perf invariants: %v", d)
	}

	total := 0
	perPkg := map[string]int{}
	for _, pkg := range pkgs {
		n := len(hotpathsIn(pkg.Fset, pkg.Syntax, nil))
		total += n
		if n > 0 {
			perPkg[pkg.Path] += n
		}
	}
	if total < 8 {
		t.Errorf("want at least 8 //lukewarm:hotpath annotations across the tree, found %d (%v)", total, perPkg)
	}
	for _, p := range []string{"mem", "vm", "program", "cpu", "serverless"} {
		if perPkg["lukewarm/internal/"+p] == 0 {
			t.Errorf("package internal/%s carries no hotpath annotations", p)
		}
	}
}

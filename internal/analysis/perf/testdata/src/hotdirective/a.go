// Fixture for the hotdirective analyzer: directive-grammar edge cases —
// unknown directive names, missing mandatory reasons, annotations on the
// wrong line relative to the declaration, duplicated annotations, and
// misspelled invariants. Well-formed annotations pass silently.
package hotdirective

//lukewarm:hotpath noalloc fixture: well-formed annotation
func wellFormed(a, b int) int { return a + b }

type counter struct{ n int }

// bump is documented prose followed by the directive on the last line, the
// sanctioned placement.
//lukewarm:hotpath noalloc,nobce fixture: well-formed method annotation
func (c *counter) bump() { c.n++ }

//lukewarm:hotpaths noalloc typo in the directive name // want `unknown lukewarm directive "hotpaths"`
func typoName() {}

//lukewarm:hotpath noalloc // want `requires a reason after the invariant list`
func missingReason() {}

//lukewarm:hotpath // want `missing its invariant list`
func bareAnnotation() {}

//lukewarm:hotpath noallocs,inline misspelled invariant // want `unknown hotpath invariant "noallocs"`
func unknownInvariant() {}

//lukewarm:hotpath noalloc stranded above a blank line // want `must sit directly above a function declaration`

func strandedBelow() {}

//lukewarm:hotpath noalloc above the prose, not directly above the func // want `must be the last line of docAbove's doc comment`
// docAbove is documented, which pushes the directive off the declaration.
func docAbove() {}

//lukewarm:hotpath noalloc first of two // want `must be the last line of doubled's doc comment`
//lukewarm:hotpath nobce second of two // want `duplicate //lukewarm:hotpath annotation on doubled`
func doubled() {}

func host(m map[int]int) int {
	//lukewarm:hotpath noalloc directive inside a body // want `must sit directly above a function declaration`
	s := 0
	for _, v := range m {
		s += v
	}
	//lukewarm:hothygiene // want `//lukewarm:hothygiene requires a reason; a bare directive does not waive`
	return s
}

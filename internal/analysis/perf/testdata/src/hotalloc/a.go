// Fixture for the allocsite analyzer: explicit allocation sites inside
// functions reachable from a hotpath root are flagged (make/new, heap
// composite literals, growing append); the pre-sized-append idiom,
// unreachable functions, and reasoned waivers pass.
package hotalloc

type chunk struct{ data [64]byte }

type pool struct {
	free []*chunk
	buf  []int
}

//lukewarm:hotpath noalloc fixture: allocation-site root
func (p *pool) root(xs []int) {
	c := &chunk{} // want `&chunk literal on hot path .* allocates on the heap`
	_ = c
	m := make([]int, 8) // want `make on hot path .* allocates per call`
	_ = m
	n := new(chunk) // want `new on hot path .* allocates per call`
	_ = n
	s := []int{1, 2, 3} // want `slice literal on hot path .* allocates its backing array per call`
	_ = s
	lut := map[int]int{1: 1} // want `map literal on hot path .* allocates per call`
	_ = lut
	p.buf = append(p.buf, xs...) // want `append on hot path .* may grow its backing array`
	p.grow(xs)
	sized(xs)
}

// grow is reachable from the root: its append is amortized growth to a
// high-water mark, so it carries a waiver.
func (p *pool) grow(xs []int) {
	//lukewarm:hotalloc fixture: amortized growth to a high-water mark, buffer reused across calls
	p.buf = append(p.buf, xs...)
}

// sized demonstrates the blessed idiom: append into a slice made with an
// explicit capacity in the same function cannot grow, so only the make is
// reported.
func sized(xs []int) {
	out := make([]int, 0, len(xs)) // want `make on hot path sized allocates per call`
	for _, x := range xs {
		out = append(out, x)
	}
	_ = out
}

// cold allocates freely but is not reachable from any hotpath root.
func cold() []int {
	tmp := make([]int, 3)
	return append(tmp, 4)
}

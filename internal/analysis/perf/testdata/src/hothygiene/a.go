// Fixture for the hothygiene analyzer: allocation-prone constructs inside
// functions reachable from a hotpath root are flagged (defer, map range,
// closures, string concatenation, interface boxing); unreachable functions
// and reasoned waivers pass.
package hothygiene

type sink interface{ m() }

type val struct{ x int }

func (v val) m() {}

type pval struct{ x int }

func (p *pval) m() {}

var global sink

//lukewarm:hotpath noalloc fixture: hygiene root
func root(m map[int]int, names []string) {
	defer cleanup() // want `defer on hot path root allocates a defer record`
	for k := range m { // want `map iteration on hot path root walks buckets in random order`
		_ = k
	}
	f := func() int { return 1 } // want `closure on hot path root heap-allocates its captures`
	_ = f
	helper(names)
	waived(m)
}

func cleanup() {}

// helper is reachable from root, so it is held to the same hygiene.
func helper(names []string) {
	s := ""
	for _, n := range names {
		s = s + n // want `string concatenation on hot path helper allocates`
	}
	_ = s
	global = val{x: 1} // want `assignment boxes .* into an interface on hot path helper`
	p := &pval{x: 1}
	global = p // a pointer fits the interface word: no boxing
	take(val{x: 2}) // want `argument boxes .* into an interface on hot path helper`
	take(p)
	global = retBox(val{x: 3}) // interface-to-interface: the boxing happens (and is flagged) inside retBox
}

func take(s sink) { _ = s }

// retBox is reachable through helper's call.
func retBox(v val) sink {
	return v // want `return boxes v into an interface on hot path retBox`
}

// notReachable commits every sin but is never called from a hotpath root, so
// nothing is reported.
func notReachable(m map[int]int) {
	defer cleanup()
	for k := range m {
		_ = k
	}
	global = val{x: 9}
}

// waived shows the escape hatch: a reasoned waiver on the line above.
func waived(m map[int]int) {
	//lukewarm:hothygiene fixture: pure counting is order-insensitive and the iterator is amortized
	for range m {
	}
}

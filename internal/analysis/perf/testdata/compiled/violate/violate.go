// Package violate is the deliberately-failing CompileCheck fixture: each
// annotation declares an invariant its function visibly violates, and the
// gate test asserts that the compiler's escape/inline/bounds-check
// diagnostics surface as lint findings. This package is under testdata, so
// `go build ./...` and the repo-wide lint never see it; only the perf test
// suite compiles it, explicitly.
package violate

//lukewarm:hotpath noalloc,noescape fixture: the local escapes through the returned pointer
func escapes() *int {
	x := 42
	return &x
}

//lukewarm:hotpath nobce fixture: the index is data-dependent, so the bounds check survives
func gather(xs []int, idx []int) int {
	s := 0
	for _, i := range idx {
		s += xs[i]
	}
	return s
}

//go:noinline
//lukewarm:hotpath inline fixture: explicitly marked noinline, so the verdict is cannot-inline
func heavy(a, b int) int { return a + b }

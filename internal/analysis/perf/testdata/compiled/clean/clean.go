// Package clean is the passing CompileCheck fixture: every annotation's
// invariants hold, so the gate must report nothing.
package clean

//lukewarm:hotpath noalloc,noescape,inline,nobce fixture: branch-free register arithmetic stays on the stack
func mix(a, b uint64) uint64 {
	a ^= b << 13
	b ^= a >> 7
	return a + b
}

//lukewarm:hotpath noalloc,nobce fixture: the mask proves the index in range, eliminating the bounds check
func lookup(table *[256]uint8, x uint64) uint8 {
	return table[x&255]
}

package perf

import (
	"path/filepath"
	"testing"

	"lukewarm/internal/analysis"
	"lukewarm/internal/analysis/atest"
)

// runFixture mirrors the base suite's fixture runner: load
// testdata/src/<fixture>, run one analyzer, and match the diagnostics
// against the fixture's `// want "regexp"` comments.
func runFixture(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := analysis.LoadDir(dir, fixture)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, fixture, err)
	}
	flat := make([]atest.Diag, 0, len(diags))
	for _, d := range diags {
		flat = append(flat, atest.Diag{
			File:    filepath.Base(d.Pos.Filename),
			Line:    d.Pos.Line,
			Message: d.Message,
		})
	}
	atest.Check(t, dir, flat)
}

func TestHotDirectiveFixture(t *testing.T) { runFixture(t, HotDirective, "hotdirective") }

func TestHotHygieneFixture(t *testing.T) { runFixture(t, HotHygiene, "hothygiene") }

func TestAllocSiteFixture(t *testing.T) { runFixture(t, AllocSite, "hotalloc") }

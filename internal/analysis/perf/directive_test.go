package perf

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// scan parses src and returns the well-formed hotpaths plus every grammar
// diagnostic hotpathsIn reported, rendered as "line: message".
func scan(t *testing.T, src string) ([]*Hotpath, []string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var issues []string
	hot := hotpathsIn(fset, []*ast.File{f}, func(pos token.Pos, format string, args ...any) {
		issues = append(issues, fmt.Sprintf("%d: %s", fset.Position(pos).Line, fmt.Sprintf(format, args...)))
	})
	return hot, issues
}

func TestHotpathParsing(t *testing.T) {
	src := `package p

//lukewarm:hotpath noalloc,nobce the scan loop is the simulator's inner loop
func (c *Cache) locate(i int) int {
	return i
}
`
	hot, issues := scan(t, src)
	if len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
	if len(hot) != 1 {
		t.Fatalf("want 1 hotpath, got %d", len(hot))
	}
	h := hot[0]
	if h.Name != "(*Cache).locate" {
		t.Errorf("Name = %q, want (*Cache).locate", h.Name)
	}
	if !h.Invariants["noalloc"] || !h.Invariants["nobce"] || h.Invariants["inline"] {
		t.Errorf("Invariants = %v", h.Invariants)
	}
	if h.Reason != "the scan loop is the simulator's inner loop" {
		t.Errorf("Reason = %q", h.Reason)
	}
	if h.StartLine != 4 || h.EndLine != 6 {
		t.Errorf("line range = [%d,%d], want [4,6]", h.StartLine, h.EndLine)
	}
}

// TestHotpathGrammarDiagnostics pins the exact diagnostic for each edge case
// the directive grammar rejects.
func TestHotpathGrammarDiagnostics(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			"unknown invariant",
			"package p\n\n//lukewarm:hotpath noallocs speed\nfunc f() {}\n",
			`3: unknown hotpath invariant "noallocs" on f (known: noalloc, noescape, inline, nobce)`,
		},
		{
			"missing reason",
			"package p\n\n//lukewarm:hotpath noalloc\nfunc f() {}\n",
			"3: //lukewarm:hotpath on f requires a reason after the invariant list; a bare annotation does not gate",
		},
		{
			"missing everything",
			"package p\n\n//lukewarm:hotpath\nfunc f() {}\n",
			"3: //lukewarm:hotpath on f is missing its invariant list (noalloc, noescape, inline, nobce) and reason",
		},
		{
			"wrong line",
			"package p\n\n//lukewarm:hotpath noalloc fast\n\nfunc f() {}\n",
			"3: //lukewarm:hotpath must sit directly above a function declaration",
		},
		{
			"not last doc line",
			"package p\n\n//lukewarm:hotpath noalloc fast\n// f is documented.\nfunc f() {}\n",
			"3: //lukewarm:hotpath must be the last line of f's doc comment, directly above the declaration",
		},
		{
			"duplicate",
			"package p\n\n//lukewarm:hotpath noalloc fast\n//lukewarm:hotpath nobce tight\nfunc f() {}\n",
			"4: duplicate //lukewarm:hotpath annotation on f: declare all invariants in one comma-separated list",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hot, issues := scan(t, tc.src)
			found := false
			for _, is := range issues {
				if is == tc.want {
					found = true
				}
			}
			if !found {
				t.Errorf("want diagnostic %q, got %v", tc.want, issues)
			}
			for _, h := range hot {
				t.Errorf("malformed annotation still produced hotpath %s", h.Name)
			}
		})
	}
}

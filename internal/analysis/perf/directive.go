// Package perf is lukewarm's perf-invariant suite: a gcassert-style static
// gate over the timing core's hot paths. A function annotated
//
//	//lukewarm:hotpath <invariant>[,<invariant>...] <reason>
//
// declares compiler-verifiable performance invariants — the annotation sits
// on the line directly above the declaration (the last line of its doc
// comment) and the reason, like every lukewarm directive, is mandatory:
//
//	noalloc   — the compiler reports no heap allocation inside the function
//	            (no "escapes to heap"/"moved to heap" diagnostic in its line
//	            range; constant-string escapes, which are static data, are
//	            excluded)
//	noescape  — no local is moved to the heap ("moved to heap" only; a
//	            weaker guarantee than noalloc that still rules out hidden
//	            per-call boxing of locals)
//	inline    — the function stays inlinable ("can inline" must be reported;
//	            a "cannot inline" verdict fails with the compiler's reason)
//	nobce     — every bounds check is eliminated (no "Found IsInBounds" /
//	            "Found IsSliceInBounds" from -d=ssa/check_bce)
//
// Three layers enforce the annotations:
//
//	hotdirective — grammar: unknown directive names, unknown invariants,
//	               missing reasons, misplaced or duplicated annotations.
//	hothygiene   — AST hygiene in every function reachable from a hotpath
//	               root within its package: defer, map iteration, closures,
//	               string concatenation, implicit interface boxing.
//	               Waive with //lukewarm:hothygiene <reason>.
//	allocsite    — explicit allocation sites on the same reachable set:
//	               make/new, heap composite literals, append without a
//	               pre-sized backing array.
//	               Waive with //lukewarm:hotalloc <reason>.
//	CompileCheck — the compiler-diagnostic gate: recompiles annotated
//	               packages with `-gcflags=-m=2 -d=ssa/check_bce/debug=1`
//	               and verifies each declared invariant against the escape,
//	               inline, and bounds-check output.
//
// The static passes are deliberately conservative approximations — the
// compiler gate is ground truth for what actually allocates; the AST passes
// front-run it with precise source positions and catch allocation-prone
// idioms (defer, boxing) the escape output attributes poorly.
package perf

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lukewarm/internal/analysis"
)

// invariants maps each hotpath invariant to its one-line meaning (used in
// diagnostics and -list output).
var invariants = map[string]string{
	"noalloc":  "no heap allocation in the function body",
	"noescape": "no local variable moved to the heap",
	"inline":   "function remains inlinable",
	"nobce":    "all bounds checks eliminated",
}

// invariantNames is the stable order for messages.
var invariantNames = []string{"noalloc", "noescape", "inline", "nobce"}

// knownDirectives is every `//lukewarm:<name>` the tree understands; anything
// else is a typo that would otherwise silently waive nothing.
var knownDirectives = map[string]bool{
	"ordered":    true,
	"seed":       true,
	"wallclock":  true,
	"novalidate": true,
	"floateq":    true,
	"nostat":     true,
	"hotpath":    true,
	"hothygiene": true,
	"hotalloc":   true,
}

// Hotpath is one well-formed annotation paired with its function.
type Hotpath struct {
	Decl       *ast.FuncDecl
	Name       string // rendered name, e.g. "(*SetAssoc).findWay"
	Pos        token.Pos
	File       string // filename as recorded in the FileSet
	StartLine  int    // first line of the declaration
	EndLine    int    // last line of the body
	Invariants map[string]bool
	Reason     string
}

// reportFunc receives grammar problems during scanning; nil consumers
// (hygiene, allocsite, CompileCheck) skip malformed annotations silently and
// leave the reporting to the hotdirective analyzer.
type reportFunc func(pos token.Pos, format string, args ...any)

// hotpathsIn scans the files' comments and pairs each well-formed
// //lukewarm:hotpath annotation with the function it documents. An
// annotation binds to a function when it appears in the declaration's doc
// comment group; it must be the group's last line so it sits directly above
// the `func` keyword.
func hotpathsIn(fset *token.FileSet, files []*ast.File, report reportFunc) []*Hotpath {
	var hot []*Hotpath
	for _, f := range files {
		consumed := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			seen := 0
			for i, c := range fd.Doc.List {
				rest, ok := analysis.WaiverReason(c.Text, "hotpath")
				if !ok {
					continue
				}
				consumed[c] = true
				seen++
				if seen > 1 {
					if report != nil {
						report(c.Pos(), "duplicate //lukewarm:hotpath annotation on %s: declare all invariants in one comma-separated list", funcName(fd))
					}
					continue
				}
				if i != len(fd.Doc.List)-1 {
					if report != nil {
						report(c.Pos(), "//lukewarm:hotpath must be the last line of %s's doc comment, directly above the declaration", funcName(fd))
					}
					continue
				}
				h := parseHotpath(fset, fd, c, rest, report)
				if h != nil {
					hot = append(hot, h)
				}
			}
		}
		// Orphans: hotpath comments not attached to any function's doc group
		// (inside bodies, above non-function declarations, or separated from
		// the declaration by a blank line).
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, ok := analysis.WaiverReason(c.Text, "hotpath"); !ok || consumed[c] {
					continue
				}
				if report != nil {
					report(c.Pos(), "//lukewarm:hotpath must sit directly above a function declaration")
				}
			}
		}
	}
	return hot
}

// stripWant drops a trailing `// want "..."` expectation marker so the
// analyzer's own fixtures can assert diagnostics on directive lines (a
// directive otherwise consumes the rest of its line as the reason). Real
// reasons never contain the marker.
func stripWant(s string) string {
	if i := strings.Index(s, "// want "); i >= 0 {
		return s[:i]
	}
	return s
}

// parseHotpath validates one annotation's invariant list and reason,
// returning nil (after reporting) when malformed.
func parseHotpath(fset *token.FileSet, fd *ast.FuncDecl, c *ast.Comment, rest string, report reportFunc) *Hotpath {
	fields := strings.Fields(stripWant(rest))
	if len(fields) == 0 {
		if report != nil {
			report(c.Pos(), "//lukewarm:hotpath on %s is missing its invariant list (%s) and reason", funcName(fd), strings.Join(invariantNames, ", "))
		}
		return nil
	}
	declared := map[string]bool{}
	ok := true
	for _, inv := range strings.Split(fields[0], ",") {
		if _, known := invariants[inv]; !known {
			if report != nil {
				report(c.Pos(), "unknown hotpath invariant %q on %s (known: %s)", inv, funcName(fd), strings.Join(invariantNames, ", "))
			}
			ok = false
			continue
		}
		declared[inv] = true
	}
	reason := strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		if report != nil {
			report(c.Pos(), "//lukewarm:hotpath on %s requires a reason after the invariant list; a bare annotation does not gate", funcName(fd))
		}
		return nil
	}
	if !ok || len(declared) == 0 {
		return nil
	}
	return &Hotpath{
		Decl:       fd,
		Name:       funcName(fd),
		Pos:        c.Pos(),
		File:       fset.Position(fd.Pos()).Filename,
		StartLine:  fset.Position(fd.Pos()).Line,
		EndLine:    fset.Position(fd.End()).Line,
		Invariants: declared,
		Reason:     reason,
	}
}

// funcName renders a declaration's name with its receiver, matching how the
// compiler's -m output spells methods.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	if strings.HasPrefix(recv, "*") {
		return fmt.Sprintf("(%s).%s", recv, fd.Name.Name)
	}
	return fmt.Sprintf("%s.%s", recv, fd.Name.Name)
}

// HotDirective validates every lukewarm directive in simulation packages:
// unknown directive names (a typo'd waiver waives nothing), reasonless
// waivers, and the hotpath grammar (placement, invariant spelling, mandatory
// reason, duplicates).
var HotDirective = &analysis.Analyzer{
	Name: "hotdirective",
	Doc:  "validates //lukewarm: directive grammar (names, reasons, hotpath placement)",
	Run:  runHotDirective,
}

func runHotDirective(pass *analysis.Pass) error {
	if !analysis.Simulation(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lukewarm:")
				if !ok {
					continue
				}
				name, tail, _ := strings.Cut(rest, " ")
				name, _, _ = strings.Cut(name, "\t")
				if !knownDirectives[name] {
					pass.Reportf(c.Pos(), "unknown lukewarm directive %q; this comment waives nothing (known: ordered, seed, wallclock, novalidate, floateq, nostat, hotpath, hothygiene, hotalloc)", name)
					continue
				}
				if name != "hotpath" && strings.TrimSpace(stripWant(tail)) == "" {
					pass.Reportf(c.Pos(), "//lukewarm:%s requires a reason; a bare directive does not waive", name)
				}
			}
		}
	}
	// hotpath placement/grammar, reported at the annotation's position.
	hotpathsIn(pass.Fset, pass.Files, pass.Reportf)
	return nil
}

// Analyzers returns the perf suite's pure static passes in a stable order
// (the compiler gate, CompileCheck, runs separately: it needs the go tool).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{HotDirective, HotHygiene, AllocSite}
}

// reachableFrom walks package-internal calls from the hotpath roots and
// returns every function declaration reachable without leaving the package.
// Calls through interfaces and function values are cut points — they cannot
// be resolved statically — so the set is the portion of the hot path this
// package owns.
func reachableFrom(pass *analysis.Pass, roots []*Hotpath) []*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
	}
	seen := map[*ast.FuncDecl]bool{}
	var order []*ast.FuncDecl
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if seen[fd] {
			return
		}
		seen[fd] = true
		order = append(order, fd)
		if fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if callee, ok := decls[obj]; ok {
					visit(callee)
				}
			}
			return true
		})
	}
	for _, h := range roots {
		visit(h.Decl)
	}
	return order
}

// Package analysis is lukewarm's static-enforcement suite: a set of custom
// analyzers that lift the repository's determinism and configuration-hygiene
// invariants from dynamic checks (golden-figure gates, differential oracles)
// to `go vet`-time errors.
//
// The framework is deliberately shaped like golang.org/x/tools/go/analysis —
// an Analyzer is a named Run function over a type-checked Pass — but is
// self-contained on the standard library (go/ast, go/types, go/importer), so
// the module keeps its zero-dependency property and the linter builds in a
// hermetic environment. Should the tree ever vendor x/tools, each analyzer's
// Run body ports over unchanged.
//
// The five analyzers and the bug class each front-runs:
//
//	mapiter     — range over a map in result-producing code; front-runs the
//	              golden determinism gates (the PR 4 vm.AddressSpace.Compact
//	              frame-assignment bug was exactly this class).
//	seedhygiene — global math/rand sources, constant RNG seeds, wall-clock
//	              reads; front-runs replay bit-identity and cache-key drift.
//	cfgvalidate — exported *Config structs without a Validate() error that
//	              wraps cfgerr.ErrBadConfig and is actually called.
//	floateq     — ==/!= on floats in simulation code; front-runs tolerance
//	              drift in golden tables (use internal/stats helpers).
//	statreg     — result/stats struct fields unreachable from their String/
//	              CSV emitters; front-runs silently-dropped table columns.
//
// Intentional exceptions carry a waiver comment on the flagged line or the
// line above, with a mandatory reason:
//
//	//lukewarm:ordered    <reason>   (mapiter)
//	//lukewarm:seed       <reason>   (seedhygiene, rand)
//	//lukewarm:wallclock  <reason>   (seedhygiene, time)
//	//lukewarm:novalidate <reason>   (cfgvalidate)
//	//lukewarm:floateq    <reason>   (floateq)
//	//lukewarm:nostat     <reason>   (statreg)
//
// A waiver without a reason does not waive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Name appears in diagnostics, Doc in -help
// output, and Run is invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an analyzer, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog lists every package loaded in this run (including the one under
	// analysis), for the few whole-program checks (cfgvalidate's
	// "Validate is actually called" rule).
	Prog []*Package

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, SeedHygiene, CfgValidate, FloatEq, StatReg}
}

// Run applies each analyzer to each package and returns the findings sorted
// by position. Packages whose path the analyzer's scope rejects are handled
// inside the analyzers themselves (scope is part of the invariant).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Prog:      pkgs,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---------------------------------------------------------------------------
// Package scopes.
//
// Fixture packages (anything outside the lukewarm module path) are always in
// scope, so analysistest fixtures exercise every rule without masquerading as
// real package paths.

const modulePath = "lukewarm"

// resultPkgs are the packages whose outputs feed rendered tables, golden
// snapshots, or cache keys: the determinism surface.
var resultPkgs = map[string]bool{
	modulePath + "/internal/vm":          true,
	modulePath + "/internal/mem":         true,
	modulePath + "/internal/cpu":         true,
	modulePath + "/internal/pif":         true,
	modulePath + "/internal/serverless":  true,
	modulePath + "/internal/sched":       true,
	modulePath + "/internal/cluster":     true,
	modulePath + "/internal/experiments": true,
	modulePath + "/internal/runner":      true,
	modulePath + "/internal/stats":       true,
}

func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// resultProducing reports whether pkg's iteration order can reach a result
// table or cache key.
func resultProducing(path string) bool {
	if !inModule(path) {
		return true // fixtures
	}
	return resultPkgs[path]
}

// simulation reports whether pkg is part of the simulated stack (everything
// under internal/ except this linter). The CLI and examples sit outside: they
// are the telemetry allowlist where wall-clock reads are legitimate.
func simulation(path string) bool {
	if !inModule(path) {
		return true // fixtures
	}
	return strings.HasPrefix(path, modulePath+"/internal/") &&
		path != modulePath+"/internal/analysis" &&
		!strings.HasPrefix(path, modulePath+"/internal/analysis/")
}

// ---------------------------------------------------------------------------
// Waivers.

// waived reports whether pos carries a `//lukewarm:<directive> <reason>`
// waiver: a comment on the same line or the line directly above. The reason
// is mandatory — a bare directive does not waive.
func (p *Pass) waived(pos token.Pos, directive string) bool {
	position := p.Fset.Position(pos)
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename != position.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				reason, ok := waiverReason(c.Text, directive)
				if !ok || strings.TrimSpace(reason) == "" {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				if line == position.Line || line == position.Line-1 {
					return true
				}
			}
		}
	}
	return false
}

// Waived is the exported face of waived, for the perf sub-package's
// analyzers: their waiver directives (`hothygiene`, `hotalloc`) obey the same
// placement and mandatory-reason rules as the base suite's.
func (p *Pass) Waived(pos token.Pos, directive string) bool {
	return p.waived(pos, directive)
}

// WaiverReason is the exported face of waiverReason: the perf sub-package
// reuses the directive parser for its `//lukewarm:hotpath` annotations so the
// grammar stays in one place.
func WaiverReason(comment, directive string) (string, bool) {
	return waiverReason(comment, directive)
}

// Simulation is the exported face of simulation, for the perf sub-package's
// scope checks.
func Simulation(path string) bool {
	return simulation(path)
}

// waiverReason extracts the reason from a `//lukewarm:<directive> <reason>`
// comment, reporting whether the comment is that directive at all.
func waiverReason(comment, directive string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//lukewarm:"+directive)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //lukewarm:orderedX
	}
	return rest, true
}

// ---------------------------------------------------------------------------
// Small shared type helpers.

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInteger reports whether t's underlying type is an integer type.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pkgFunc resolves a call expression to (package path, function name) when it
// is a direct call of a package-level function, e.g. time.Now() or
// rand.Intn(n). It sees through parenthesization but not through method
// values or locals.
func (p *Pass) pkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	obj := p.TypesInfo.Uses[sel.Sel]
	fn, fnOK := obj.(*types.Func)
	if !fnOK || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, sigOK := fn.Type().(*types.Signature); !sigOK || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// callFree reports whether expr contains no function or method calls (type
// conversions are allowed — they cannot carry hidden state).
func (p *Pass) callFree(expr ast.Expr) bool {
	free := true
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, tvOK := p.TypesInfo.Types[call.Fun]; tvOK && tv.IsType() {
			return true // conversion
		}
		free = false
		return false
	})
	return free
}

package analysis

import (
	"go/ast"
	"go/types"
)

// SeedHygiene enforces the simulator's randomness and clock contract: all
// stochastic behaviour flows through seeded per-instance streams whose seeds
// derive from a Config or cell key, and nothing under internal/ reads the
// wall clock (replays must be bit-identical, cache keys content-addressed).
// It flags
//
//   - any use of math/rand or math/rand/v2 package-level functions (the
//     process-global source; `rand.New` over an explicit source is fine),
//   - `rand.NewSource`/`rand.NewPCG` whose seed arguments are compile-time
//     constants — a constant seed is not derived from the Config or cell key,
//     so distinct cells would share a stream, and
//   - `time.Now`/`time.Since`/`time.Until` outside the telemetry allowlist
//     (the CLI layer; injected clock seams carry a single-site waiver).
//
// Waive with `//lukewarm:seed <reason>` (rand) or
// `//lukewarm:wallclock <reason>` (time).
var SeedHygiene = &Analyzer{
	Name: "seedhygiene",
	Doc:  "flags global rand sources, constant seeds, and wall-clock reads in simulation code",
	Run:  runSeedHygiene,
}

func runSeedHygiene(pass *Pass) error {
	if !simulation(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name, ok := pass.pkgFunc(n); ok &&
					(pkg == "math/rand" || pkg == "math/rand/v2") {
					checkRandCall(pass, n, name)
				}
			case *ast.Ident:
				// Wall-clock access is flagged at every reference, calls and
				// method values alike, so a stored `time.Now` seam default is
				// visible too and carries its own single-site waiver.
				fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				switch fn.Name() {
				case "Now", "Since", "Until":
					if !pass.waived(n.Pos(), "wallclock") {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock in simulation code: "+
							"inject a clock seam, or waive with //lukewarm:wallclock <reason>", fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// constructors are the rand functions that build explicit sources or
// generators rather than touching the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

func checkRandCall(pass *Pass, call *ast.CallExpr, name string) {
	if !randConstructors[name] {
		if !pass.waived(call.Pos(), "seed") {
			pass.Reportf(call.Pos(), "rand.%s draws from the process-global source: "+
				"use a per-instance rand.New with a Config-derived seed, "+
				"or waive with //lukewarm:seed <reason>", name)
		}
		return
	}
	if name != "NewSource" && name != "NewPCG" {
		return
	}
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; !ok || tv.Value == nil {
			return // at least one runtime-derived seed component
		}
	}
	if !pass.waived(call.Pos(), "seed") {
		pass.Reportf(call.Pos(), "rand.%s with a constant seed: derive the seed "+
			"from the Config or cell key so distinct cells get distinct streams, "+
			"or waive with //lukewarm:seed <reason>", name)
	}
}

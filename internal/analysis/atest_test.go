package analysis

// analysistest-style fixture runner: each fixture is a package under
// testdata/src/<name>, annotated with `// want "regexp"` comments on the
// lines where diagnostics are expected (multiple quoted or backquoted
// regexps per comment are allowed). The runner reports unmatched
// expectations and unexpected diagnostics symmetrically, like
// golang.org/x/tools/go/analysis/analysistest.

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// wantRe extracts the quoted/backquoted patterns of one want comment.
var wantRe = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runFixture loads testdata/src/<fixture> as a package named <fixture> and
// checks the analyzer's diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadDir(dir, fixture)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, fixture, err)
	}

	expects, err := parseExpectations(dir)
	if err != nil {
		t.Fatalf("parse want comments: %v", err)
	}

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		found := false
		for _, e := range expects {
			if e.matched || e.file != base || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", base, d.Pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func parseExpectations(dir string) ([]*expectation, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var expects []*expectation
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					pattern := arg
					if pattern[0] == '"' {
						if pattern, err = strconv.Unquote(arg); err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %v", file, arg, err)
						}
					} else {
						pattern = pattern[1 : len(pattern)-1]
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %s: %v", file, arg, err)
					}
					expects = append(expects, &expectation{
						file: filepath.Base(file),
						line: fset.Position(c.Pos()).Line,
						re:   re,
					})
				}
			}
		}
	}
	return expects, nil
}

package analysis

// runFixture loads testdata/src/<fixture> as a package named <fixture> and
// checks one analyzer's diagnostics against the fixture's `// want "regexp"`
// comments. The expectation matching itself lives in internal/analysis/atest
// so the perf sub-package's fixture tests share it.

import (
	"path/filepath"
	"testing"

	"lukewarm/internal/analysis/atest"
)

func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadDir(dir, fixture)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, fixture, err)
	}
	flat := make([]atest.Diag, 0, len(diags))
	for _, d := range diags {
		flat = append(flat, atest.Diag{
			File:    filepath.Base(d.Pos.Filename),
			Line:    d.Pos.Line,
			Message: d.Message,
		})
	}
	atest.Check(t, dir, flat)
}

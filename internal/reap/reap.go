// Package reap implements record-and-prefetch restoration of a function's
// page-level working set, after REAP (Ustiugov et al., ASPLOS'21).
//
// The source paper optimizes *lukewarm* starts by replaying the instruction
// stream at region granularity (Jukebox); REAP attacks the *cold* start by
// recording the set of 4 KB pages — instruction and data alike — an
// invocation touches, persisting that manifest with the snapshot, and
// prefetching every recorded page ahead of demand when the snapshot is
// restored. This package models both halves against the existing timing
// machinery:
//
//   - Recording. The recorder observes the core's fetch stream
//     (cpu.InstrPrefetcher.OnFetch) and data stream (cpu.DataObserver) and
//     captures the ordered set of unique pages touched, at 4 KB granularity,
//     with per-page first-touch order. At invocation end the set is sealed
//     into a compact manifest — stable-sorted by page number, mirroring
//     REAP's record file — and the write-out is charged to DRAM as
//     metadata-record traffic.
//
//   - Restoring. At invocation start the sealed manifest is replayed in
//     first-touch order: the manifest stream itself is fetched as
//     metadata-replay traffic, each page's translation is installed into the
//     ITLB/DTLB through the real walker (charging page walks), and the
//     page's lines are installed into the LLC as prefetch traffic through
//     the shared DRAM model — so restore bandwidth contends with demand and
//     a page touched before its install completes counts as late
//     (timeliness model). Pages still TLB-resident are skipped, which makes
//     restore a *delta* on lukewarm starts and a full replay on cold ones.
//
// Divergence is accounted per invocation: a touched page absent from the
// manifest faults cold (DivergentPages), and a restored page never touched
// is pure waste (WastedPages/WastedBytes) — the stale-manifest cost that
// grows as the manifest ages relative to the function's churned data
// generations (see program.Invocation's generation alternation).
package reap

import (
	"sort"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
	"lukewarm/internal/vm"
)

// Config parameterizes a REAP recorder/restorer pair.
type Config struct {
	// MaxPages bounds the manifest; unique pages touched beyond the cap
	// are dropped (and counted). REAP's record file is tens of MB for
	// real snapshots; the default comfortably covers the suite's largest
	// working set.
	MaxPages int
	// EntryBytes is the size of one manifest entry in the record file
	// (page number plus kind/order metadata), metering the metadata
	// stream's DRAM traffic.
	EntryBytes int
	// Record captures the working set each invocation and reseals the
	// manifest at invocation end.
	Record bool
	// Restore replays the sealed manifest at invocation start.
	Restore bool
	// Cumulative unions each invocation's working set into the sealed
	// manifest instead of replacing it — REAP's record-since-snapshot
	// behavior. The manifest then only grows, and the wasted-prefetch
	// fraction grows with its age as dead data generations accumulate.
	Cumulative bool
}

// DefaultConfig is the REAP configuration used by the coldstart comparator.
func DefaultConfig() Config {
	return Config{MaxPages: 8192, EntryBytes: 8, Record: true, Restore: true}
}

// Validate reports whether the configuration is realizable. Errors wrap
// cfgerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.MaxPages <= 0 {
		return cfgerr.New("reap: MaxPages %d must be positive", c.MaxPages)
	}
	if c.EntryBytes <= 0 || c.EntryBytes > mem.LineSize {
		return cfgerr.New("reap: EntryBytes %d must be in 1..%d", c.EntryBytes, mem.LineSize)
	}
	return nil
}

// PageEntry is one manifest record: a virtual page, which side of the core
// first touched it, and its first-touch position within the recorded
// invocation (the replay order).
type PageEntry struct {
	VPage      uint64
	Kind       mem.Kind
	FirstTouch uint32
}

// Manifest is a sealed record file: entries stable-sorted by VPage (the
// on-disk format), with FirstTouch preserving the original touch order.
// Seq counts the invocations sealed into it.
type Manifest struct {
	Entries []PageEntry
	Seq     uint64
}

// Pages reports the manifest's page count.
func (m *Manifest) Pages() int { return len(m.Entries) }

// Bytes reports the record-file size under the given entry width.
func (m *Manifest) Bytes(entryBytes int) uint64 {
	return uint64(len(m.Entries)) * uint64(entryBytes)
}

// Stats counts recorder and restorer events. All counters are cumulative
// since the last ResetStats except ManifestPages/ManifestBytes, which
// describe the current sealed manifest.
type Stats struct {
	// Invocations is the number of completed invocations observed.
	Invocations uint64
	// RecordedPages counts unique first-touches captured across
	// invocations; DroppedPages counts unique touches beyond MaxPages.
	RecordedPages uint64
	DroppedPages  uint64
	// ManifestPages/ManifestBytes describe the current sealed manifest.
	ManifestPages uint64
	ManifestBytes uint64
	// Restores counts restore passes; DeltaRestores the subset that
	// skipped at least one still-resident page (lukewarm deltas).
	Restores      uint64
	DeltaRestores uint64
	// ReplayedPages counts manifest entries streamed through the restore
	// engine; each is either installed (RestoredPages) or skipped because
	// its translation was still TLB-resident (SkippedResident).
	ReplayedPages   uint64
	RestoredPages   uint64
	SkippedResident uint64
	// PrefetchedLines/PrefetchedBytes count lines streamed into the LLC.
	// The restore is blind to cache residency (only TLB-resident pages are
	// skipped), so a line that happens to still be resident costs its
	// transfer anyway.
	PrefetchedLines uint64
	PrefetchedBytes uint64
	// RestoreWalks counts page walks charged while pre-populating TLBs.
	RestoreWalks uint64
	// UsedPages counts restored pages the invocation then touched;
	// LatePages the subset touched before their install completed.
	// WastedPages/WastedBytes count restored pages never touched — the
	// stale-manifest cost. Each restored page lands in exactly one of
	// UsedPages or WastedPages.
	UsedPages   uint64
	LatePages   uint64
	WastedPages uint64
	WastedBytes uint64
	// DivergentPages counts pages touched after a restore that the
	// manifest did not contain — they fault cold, REAP's divergence cost.
	DivergentPages uint64
	// LastRestoreDone is the cycle the most recent restore pass finished.
	LastRestoreDone mem.Cycle
}

// WastedFraction reports wasted / restored pages, the headline staleness
// metric.
func (s Stats) WastedFraction() float64 {
	if s.RestoredPages == 0 {
		return 0
	}
	return float64(s.WastedPages) / float64(s.RestoredPages)
}

// Reap is one instance's recorder/restorer pair. It implements
// cpu.InstrPrefetcher (instruction-side recording plus restore-at-start)
// and cpu.DataObserver (data-side recording).
type Reap struct {
	cfg  Config
	hier *mem.Hierarchy
	mmu  *vm.MMU

	Stats Stats

	record  bool
	restore bool

	// Per-invocation recording state: seen dedupes first touches, rec
	// accumulates them in touch order.
	seen map[uint64]struct{}
	rec  []PageEntry

	// Sealed manifest plus derived lookups: sealedSet for divergence
	// checks, replayOrder indexing Entries in first-touch order.
	sealed      Manifest
	sealedSet   map[uint64]struct{}
	replayOrder []int

	// Per-invocation restore state: restored maps installed pages to the
	// cycle their lines are ready; entries are deleted on first demand
	// touch so used and wasted pages are never double-counted.
	restored   map[uint64]mem.Cycle
	restoreRan bool

	// prewarmed latches that a pre-warm already ran the restore pass: the
	// next InvocationStart keeps the installed pages' ready times (so
	// used/late/wasted accounting settles inside the invocation as usual)
	// and skips its own restore. Cleared by anything that invalidates the
	// installed state.
	prewarmed bool
}

// New builds a Reap bound to the hierarchy and MMU of the core it will
// observe. It panics on invalid configuration, as the other prefetcher
// constructors do — configurations reaching New have been validated.
func New(cfg Config, hier *mem.Hierarchy, mmu *vm.MMU) *Reap {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Reap{
		cfg:      cfg,
		hier:     hier,
		mmu:      mmu,
		record:   cfg.Record,
		restore:  cfg.Restore,
		seen:     make(map[uint64]struct{}),
		restored: make(map[uint64]mem.Cycle),
	}
}

// Bind re-points the recorder at another core's hierarchy and MMU — the
// instance migrated; its manifest travels with the snapshot.
func (r *Reap) Bind(hier *mem.Hierarchy, mmu *vm.MMU) {
	r.hier = hier
	r.mmu = mmu
}

// SetRecordEnabled toggles working-set recording; disabling it freezes the
// sealed manifest so later invocations restore from an aging record file.
func (r *Reap) SetRecordEnabled(on bool) { r.record = on && r.cfg.Record }

// SetRestoreEnabled toggles restore-at-start (record-only mode when off).
func (r *Reap) SetRestoreEnabled(on bool) { r.restore = on && r.cfg.Restore }

// RestoreEnabled reports whether restore-at-start is currently enabled.
func (r *Reap) RestoreEnabled() bool { return r.restore }

// Manifest exposes the sealed manifest (read-only; callers must not
// mutate).
func (r *Reap) ManifestView() *Manifest { return &r.sealed }

// InvocationStart implements cpu.InstrPrefetcher: replay the sealed
// manifest ahead of demand. The manifest stream is fetched as
// metadata-replay traffic; each non-resident page gets its translation
// pre-installed through the real walker and its lines installed into the
// LLC as prefetch traffic, all through the shared DRAM model so restore
// bandwidth contends with demand.
func (r *Reap) InvocationStart(now mem.Cycle) {
	clear(r.seen)
	r.rec = r.rec[:0]
	if r.prewarmed {
		// A pre-warm (BeginPrewarm) already streamed the manifest while the
		// instance was idle: keep the restored pages' ready times so the
		// invocation's demand touches settle used/late/wasted accounting
		// exactly as if the restore had run here, and skip the second pass.
		r.prewarmed = false
		return
	}
	clear(r.restored)
	r.restoreRan = false
	r.restoreNow(now)
}

// BeginPrewarm runs the restore pass ahead of the predicted next arrival,
// while the instance is idle. It reports whether a restore actually issued;
// when it did, a latch makes the next InvocationStart adopt the installed
// pages instead of restoring again. An already-pending pre-warm is not
// repeated.
func (r *Reap) BeginPrewarm(now mem.Cycle) bool {
	if r.prewarmed {
		return true
	}
	clear(r.restored)
	r.restoreRan = false
	r.restoreNow(now)
	r.prewarmed = r.restoreRan
	return r.restoreRan
}

// restoreNow is the restore engine shared by InvocationStart and
// BeginPrewarm.
func (r *Reap) restoreNow(now mem.Cycle) {
	if !r.restore || len(r.sealed.Entries) == 0 {
		return
	}
	r.restoreRan = true
	r.Stats.Restores++

	// First manifest line arrives from the snapshot store.
	cursor := now + r.hier.DRAM.Access(now, mem.TrafficMetadataReplay)
	streamed := 0
	skipped := false
	for _, idx := range r.replayOrder {
		e := r.sealed.Entries[idx]
		// Stream the record file a line at a time.
		streamed += r.cfg.EntryBytes
		for streamed >= mem.LineSize {
			streamed -= mem.LineSize
			cursor += r.hier.DRAM.Access(cursor, mem.TrafficMetadataReplay)
		}
		r.Stats.ReplayedPages++

		tlb := r.mmu.DTLB
		if e.Kind == mem.Instr {
			tlb = r.mmu.ITLB
		}
		if tlb.Probe(e.VPage) {
			// Still resident from the previous invocation: a lukewarm
			// delta skips it.
			r.Stats.SkippedResident++
			skipped = true
			continue
		}

		// Pre-populate the TLB, charging the walk to the restore stream.
		vaddr := e.VPage << 12
		var paddr uint64
		var walk mem.Cycle
		if e.Kind == mem.Instr {
			paddr, walk = r.mmu.TranslateInstr(cursor, vaddr)
		} else {
			paddr, walk = r.mmu.TranslateData(cursor, vaddr)
		}
		if walk > 0 {
			r.Stats.RestoreWalks++
			cursor += walk
		}

		// Install the page's lines behind the stream cursor; the page is
		// usable once its last line lands. The stream is blind to cache
		// residency — REAP copies recorded pages from the snapshot without
		// knowing what survived on chip — so redundant lines still occupy
		// prefetch bandwidth and push later installs' ready times out,
		// which is the restore's lukewarm-start penalty.
		ready := cursor
		for off := uint64(0); off < vm.PageSize; off += mem.LineSize {
			lineReady := r.hier.PrefetchLineIntoLLCBlind(cursor, paddr+off, e.Kind, mem.TrafficPrefetch)
			r.Stats.PrefetchedLines++
			r.Stats.PrefetchedBytes += mem.LineSize
			if lineReady > ready {
				ready = lineReady
			}
			cursor++ // replay engine issues one line per cycle
		}
		r.Stats.RestoredPages++
		r.restored[e.VPage] = ready
	}
	if skipped {
		r.Stats.DeltaRestores++
	}
	r.Stats.LastRestoreDone = cursor
}

// InvocationEnd implements cpu.InstrPrefetcher: settle waste accounting and
// reseal the manifest from this invocation's recording.
func (r *Reap) InvocationEnd(now mem.Cycle) {
	if r.restoreRan {
		// Whatever survives in restored was installed but never touched.
		w := uint64(len(r.restored))
		r.Stats.WastedPages += w
		r.Stats.WastedBytes += w * vm.PageSize
	}
	if r.record {
		r.seal(now)
	}
	r.Stats.Invocations++
}

// OnFetch implements cpu.InstrPrefetcher: record instruction pages.
func (r *Reap) OnFetch(now mem.Cycle, vaddr, _ uint64, _ mem.Result) {
	r.note(now, vaddr, mem.Instr)
}

// OnBlockRetire implements cpu.InstrPrefetcher; REAP does not consume the
// retire stream.
func (r *Reap) OnBlockRetire(mem.Cycle, uint64, uint64) {}

// OnDataAccess implements cpu.DataObserver: record data pages.
func (r *Reap) OnDataAccess(now mem.Cycle, vaddr, _ uint64, _ bool) {
	r.note(now, vaddr, mem.Data)
}

// note observes one demand access: first touches feed the recorder, and the
// first touch of a restored page settles its used/late accounting.
func (r *Reap) note(now mem.Cycle, vaddr uint64, k mem.Kind) {
	vp := vm.PageOf(vaddr)
	if _, ok := r.seen[vp]; ok {
		return
	}
	r.seen[vp] = struct{}{}

	if len(r.rec) < r.cfg.MaxPages {
		r.rec = append(r.rec, PageEntry{VPage: vp, Kind: k, FirstTouch: uint32(len(r.rec))})
		r.Stats.RecordedPages++
	} else {
		r.Stats.DroppedPages++
	}

	if ready, ok := r.restored[vp]; ok {
		r.Stats.UsedPages++
		if now < ready {
			r.Stats.LatePages++
		}
		// Delete so the page counts as used exactly once and never also
		// as wasted.
		delete(r.restored, vp)
	} else if r.restoreRan {
		if _, inManifest := r.sealedSet[vp]; !inManifest {
			// Touched but not in the record file: faults cold.
			r.Stats.DivergentPages++
		}
	}
}

// seal turns the invocation's recording into the new manifest and charges
// the record-file write-out as metadata-record traffic.
func (r *Reap) seal(now mem.Cycle) {
	merged := r.rec
	if r.cfg.Cumulative && len(r.sealed.Entries) > 0 {
		// Union: this invocation's pages first (freshest replay order),
		// then surviving stale pages from the old manifest.
		merged = append([]PageEntry(nil), r.rec...)
		fresh := make(map[uint64]struct{}, len(r.rec))
		for _, e := range r.rec {
			fresh[e.VPage] = struct{}{}
		}
		for _, idx := range r.replayOrder {
			e := r.sealed.Entries[idx]
			if _, ok := fresh[e.VPage]; ok {
				continue
			}
			if len(merged) >= r.cfg.MaxPages {
				break
			}
			merged = append(merged, e)
		}
		// Renumber first-touch order over the merged sequence.
		for i := range merged {
			merged[i].FirstTouch = uint32(i)
		}
	} else {
		merged = append([]PageEntry(nil), r.rec...)
	}

	sort.SliceStable(merged, func(i, j int) bool { return merged[i].VPage < merged[j].VPage })
	r.sealed = Manifest{Entries: merged, Seq: r.sealed.Seq + 1}
	r.index()
	r.Stats.ManifestPages = uint64(len(merged))
	r.Stats.ManifestBytes = r.sealed.Bytes(r.cfg.EntryBytes)
	r.hier.DRAM.AccessBytes(now, mem.TrafficMetadataRecord, len(merged)*r.cfg.EntryBytes)
}

// index rebuilds the sealed manifest's derived lookups.
func (r *Reap) index() {
	r.sealedSet = make(map[uint64]struct{}, len(r.sealed.Entries))
	for _, e := range r.sealed.Entries {
		r.sealedSet[e.VPage] = struct{}{}
	}
	r.replayOrder = make([]int, len(r.sealed.Entries))
	for i := range r.replayOrder {
		r.replayOrder[i] = i
	}
	sort.SliceStable(r.replayOrder, func(i, j int) bool {
		return r.sealed.Entries[r.replayOrder[i]].FirstTouch < r.sealed.Entries[r.replayOrder[j]].FirstTouch
	})
}

// AdoptManifest copies the donor's sealed manifest — the record file
// shipped with a snapshot to another host. The entry geometry must match;
// errors wrap cfgerr.ErrBadConfig.
func (r *Reap) AdoptManifest(donor *Reap) error {
	if donor == nil {
		return cfgerr.New("reap: adopting from nil donor")
	}
	if donor.cfg.EntryBytes != r.cfg.EntryBytes {
		return cfgerr.New("reap: manifest entry geometry mismatch (donor %d B, ours %d B)",
			donor.cfg.EntryBytes, r.cfg.EntryBytes)
	}
	r.sealed = Manifest{
		Entries: append([]PageEntry(nil), donor.sealed.Entries...),
		Seq:     donor.sealed.Seq,
	}
	r.index()
	r.Stats.ManifestPages = uint64(len(r.sealed.Entries))
	r.Stats.ManifestBytes = r.sealed.Bytes(r.cfg.EntryBytes)
	return nil
}

// DropManifest discards the sealed manifest — the record file died with its
// host (a node crash without manifest shipping).
func (r *Reap) DropManifest() {
	r.sealed = Manifest{}
	r.sealedSet = nil
	r.replayOrder = nil
	r.Stats.ManifestPages = 0
	r.Stats.ManifestBytes = 0
	r.prewarmed = false
}

// RestoreFootprintBytes reports the prefetch volume a full restore of the
// sealed manifest would stream — every manifest page's worth of lines. The
// predictive orchestrator charges this to its wasted-pre-warm ledger when a
// scheduled pre-warm's warmth decays unused.
func (r *Reap) RestoreFootprintBytes() uint64 {
	return uint64(len(r.sealed.Entries)) * vm.PageSize
}

// Abandon discards in-flight per-invocation state without sealing — the
// invocation died mid-run or the instance was reclaimed between
// invocations. The sealed manifest survives; it lives with the snapshot,
// not the instance's memory.
func (r *Reap) Abandon() {
	clear(r.seen)
	r.rec = r.rec[:0]
	clear(r.restored)
	r.restoreRan = false
	r.prewarmed = false
}

// ResetStats zeroes the counters while keeping the sealed manifest (and its
// descriptive ManifestPages/ManifestBytes) intact — the measurement-window
// idiom the other models follow.
func (r *Reap) ResetStats() {
	r.Stats = Stats{
		ManifestPages: uint64(len(r.sealed.Entries)),
		ManifestBytes: r.sealed.Bytes(r.cfg.EntryBytes),
	}
}

package reap_test

import (
	"errors"
	"testing"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/reap"
	"lukewarm/internal/serverless"
	"lukewarm/internal/workload"
)

// The recorder must see both sides of the core.
var (
	_ cpu.InstrPrefetcher = (*reap.Reap)(nil)
	_ cpu.DataObserver    = (*reap.Reap)(nil)
)

func TestConfigValidate(t *testing.T) {
	if err := reap.DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []reap.Config{
		{MaxPages: 0, EntryBytes: 8},
		{MaxPages: -1, EntryBytes: 8},
		{MaxPages: 64, EntryBytes: 0},
		{MaxPages: 64, EntryBytes: 65},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, cfgerr.ErrBadConfig) {
			t.Errorf("config %+v: want ErrBadConfig, got %v", cfg, err)
		}
	}
}

// newServer builds a single-purpose server with REAP enabled.
func newServer(t testing.TB, cfg reap.Config) (*serverless.Server, *serverless.Instance) {
	t.Helper()
	w, err := workload.ByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	srv := serverless.New(serverless.Config{Reap: &cfg})
	return srv, srv.Deploy(w)
}

func TestRecordSealRestore(t *testing.T) {
	srv, inst := newServer(t, reap.DefaultConfig())
	srv.RunLukewarm(inst, 1)
	s := inst.Reap.Stats
	if s.RecordedPages == 0 || s.ManifestPages == 0 {
		t.Fatalf("first invocation recorded nothing: %+v", s)
	}
	if s.Restores != 0 {
		t.Fatalf("first invocation had no manifest yet restored %d times", s.Restores)
	}

	srv.RunLukewarm(inst, 1)
	s = inst.Reap.Stats
	if s.Restores != 1 {
		t.Fatalf("second (flushed) invocation should restore once, got %d", s.Restores)
	}
	if s.RestoredPages == 0 || s.PrefetchedLines == 0 {
		t.Fatalf("restore installed nothing: %+v", s)
	}
	if s.UsedPages == 0 {
		t.Fatalf("no restored page was used: %+v", s)
	}
	if s.RestoreWalks == 0 {
		t.Fatalf("restore pre-populated no TLB entries: %+v", s)
	}
	if err := faults.AuditReap(s); err != nil {
		t.Fatal(err)
	}
}

func TestManifestSortedWithFirstTouchPermutation(t *testing.T) {
	srv, inst := newServer(t, reap.DefaultConfig())
	srv.RunLukewarm(inst, 1)
	m := inst.Reap.ManifestView()
	if m.Pages() == 0 {
		t.Fatal("empty manifest after a recorded invocation")
	}
	seen := make(map[uint32]bool, m.Pages())
	for i, e := range m.Entries {
		if i > 0 && m.Entries[i-1].VPage >= e.VPage {
			t.Fatalf("entries not strictly sorted by VPage at %d: %#x >= %#x",
				i, m.Entries[i-1].VPage, e.VPage)
		}
		if int(e.FirstTouch) >= m.Pages() || seen[e.FirstTouch] {
			t.Fatalf("FirstTouch %d not a permutation of 0..%d", e.FirstTouch, m.Pages()-1)
		}
		seen[e.FirstTouch] = true
	}
}

// TestColdRestoreSpeedsFirstInvocation is the tentpole claim: restoring the
// manifest makes a cold start cheaper than demand-faulting everything.
func TestColdRestoreSpeedsFirstInvocation(t *testing.T) {
	coldCycles := func(withReap bool) uint64 {
		w, err := workload.ByName("Auth-G")
		if err != nil {
			t.Fatal(err)
		}
		cfg := serverless.Config{}
		if withReap {
			rc := reap.DefaultConfig()
			cfg.Reap = &rc
		}
		srv := serverless.New(cfg)
		inst := srv.Deploy(w)
		srv.RunLukewarm(inst, 1) // record
		inst.Evict()             // cold: pages gone, manifest survives
		srv.FlushMicroarch()
		return uint64(srv.Invoke(inst).Cycles)
	}
	with, without := coldCycles(true), coldCycles(false)
	if with >= without {
		t.Fatalf("REAP restore did not speed the cold start: %d cycles with, %d without", with, without)
	}
}

// TestDeltaRestoreOnWarmInstance: when TLB entries survive the gap, the
// restore skips resident pages instead of re-installing them.
func TestDeltaRestoreOnWarmInstance(t *testing.T) {
	srv, inst := newServer(t, reap.DefaultConfig())
	srv.Invoke(inst)
	srv.Invoke(inst) // nothing flushed: most pages still resident
	s := inst.Reap.Stats
	if s.SkippedResident == 0 || s.DeltaRestores == 0 {
		t.Fatalf("warm back-to-back restore skipped nothing: %+v", s)
	}
	if err := faults.AuditReap(s); err != nil {
		t.Fatal(err)
	}
}

// TestWasteGrowsWithManifestStaleness: as the function's allocator drifts
// its live window (workload.WithChurnSlide), a manifest frozen at invocation
// 0 names ever more dead pages, so the wasted-prefetch fraction of each
// restore grows monotonically with the manifest's age.
func TestWasteGrowsWithManifestStaleness(t *testing.T) {
	w, err := workload.ByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	w = workload.WithChurnSlide(w, 8) // 8 KB drift per invocation
	cfg := reap.DefaultConfig()
	srv := serverless.New(serverless.Config{Reap: &cfg})
	inst := srv.Deploy(w)
	srv.RunLukewarm(inst, 1) // record invocation 0, then freeze the manifest
	inst.Reap.SetRecordEnabled(false)

	prev := inst.Reap.Stats
	var fracs []float64
	for age := 1; age <= 8; age++ {
		srv.RunLukewarm(inst, 1)
		s := inst.Reap.Stats
		restored := s.RestoredPages - prev.RestoredPages
		if restored == 0 {
			t.Fatalf("age %d: nothing restored", age)
		}
		fracs = append(fracs, float64(s.WastedPages-prev.WastedPages)/float64(restored))
		prev = s
	}
	for i := 1; i < len(fracs); i++ {
		if fracs[i] < fracs[i-1] {
			t.Fatalf("wasted-prefetch fraction fell with staleness at age %d: %v", i+1, fracs)
		}
	}
	if fracs[len(fracs)-1] <= fracs[0] {
		t.Fatalf("wasted-prefetch fraction never grew: %v", fracs)
	}
}

// TestDivergenceFaultsCold: pages the invocation touches that the (frozen)
// manifest never named count as divergent — they demand-fault.
func TestDivergenceAccounting(t *testing.T) {
	srv, inst := newServer(t, reap.DefaultConfig())
	srv.RunLukewarm(inst, 1) // record invocation 0 (data generation 0)
	inst.Reap.SetRecordEnabled(false)
	srv.RunLukewarm(inst, 1) // invocation 1 flips the churned generation
	s := inst.Reap.Stats
	if s.DivergentPages == 0 {
		t.Fatalf("generation flip produced no divergent pages: %+v", s)
	}
	if s.WastedPages == 0 {
		t.Fatalf("generation flip produced no wasted pages: %+v", s)
	}
	if err := faults.AuditReap(s); err != nil {
		t.Fatal(err)
	}
}

func TestEvictKeepsManifestCrashDropsIt(t *testing.T) {
	srv, inst := newServer(t, reap.DefaultConfig())
	srv.RunLukewarm(inst, 1)
	inst.Evict()
	if inst.Reap.ManifestView().Pages() == 0 {
		t.Fatal("Evict dropped the manifest; it lives with the snapshot")
	}
	srv.FlushMicroarch()
	srv.Invoke(inst)
	if inst.Reap.Stats.Restores != 1 {
		t.Fatalf("post-evict invocation did not restore: %+v", inst.Reap.Stats)
	}
	inst.DropManifest()
	if inst.Reap.ManifestView().Pages() != 0 {
		t.Fatal("DropManifest left entries behind")
	}
	srv.FlushMicroarch()
	srv.Invoke(inst)
	if got := inst.Reap.Stats.Restores; got != 1 {
		t.Fatalf("restore ran from a dropped manifest (restores %d)", got)
	}
}

func TestAdoptManifest(t *testing.T) {
	srvA, instA := newServer(t, reap.DefaultConfig())
	srvA.RunLukewarm(instA, 1)

	srvB, instB := newServer(t, reap.DefaultConfig())
	if err := instB.Reap.AdoptManifest(instA.Reap); err != nil {
		t.Fatal(err)
	}
	srvB.FlushMicroarch()
	srvB.Invoke(instB)
	if instB.Reap.Stats.Restores != 1 {
		t.Fatalf("adopted manifest did not restore: %+v", instB.Reap.Stats)
	}

	odd := reap.DefaultConfig()
	odd.EntryBytes = 16
	srvC, instC := newServer(t, odd)
	_ = srvC
	if err := instC.Reap.AdoptManifest(instA.Reap); !errors.Is(err, cfgerr.ErrBadConfig) {
		t.Fatalf("geometry mismatch accepted: %v", err)
	}
	if err := instC.Reap.AdoptManifest(nil); !errors.Is(err, cfgerr.ErrBadConfig) {
		t.Fatalf("nil donor accepted: %v", err)
	}
}

// TestDeterministicStats: two identical runs produce identical counters —
// the property the golden harness and cache rely on.
func TestDeterministicStats(t *testing.T) {
	run := func() reap.Stats {
		srv, inst := newServer(t, reap.DefaultConfig())
		srv.RunLukewarm(inst, 3)
		return inst.Reap.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats diverged across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestResetStatsKeepsManifest(t *testing.T) {
	srv, inst := newServer(t, reap.DefaultConfig())
	srv.RunLukewarm(inst, 2)
	inst.Reap.ResetStats()
	s := inst.Reap.Stats
	if s.Restores != 0 || s.RecordedPages != 0 {
		t.Fatalf("ResetStats left counters: %+v", s)
	}
	if s.ManifestPages == 0 || s.ManifestBytes == 0 {
		t.Fatalf("ResetStats lost the manifest description: %+v", s)
	}
}

// BenchmarkReapRestore measures the restore path: a full manifest replay
// plus the restored invocation, the inner loop of every cold-start cell.
func BenchmarkReapRestore(b *testing.B) {
	srv, inst := newServer(b, reap.DefaultConfig())
	srv.RunLukewarm(inst, 1) // record and seal
	inst.Reap.SetRecordEnabled(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.FlushMicroarch()
		srv.Invoke(inst)
	}
}

package sched

// Decision is a KeepAlive policy's verdict on one idle gap, consulted when
// the function's next invocation arrives. The gap runs from the previous
// invocation's completion to this arrival.
type Decision struct {
	// Evicted reports that the instance was reclaimed during the gap.
	Evicted bool
	// Prewarmed reports that a pre-warm restored the instance to memory
	// before the arrival; an evicted-then-prewarmed gap is not a cold start.
	Prewarmed bool
	// ResidentMs is how long the instance stayed memory-resident during the
	// gap — the instance-memory budget the policy spent on it.
	ResidentMs float64
}

// ColdStart reports whether the gap ends in a cold start: the instance was
// evicted and no pre-warm brought it back in time.
func (d Decision) ColdStart() bool { return d.Evicted && !d.Prewarmed }

// KeepAlive decides how long idle instances stay memory-resident. The
// traffic engine consults Decide lazily, at each arrival that follows an
// idle gap; policies that learn (HybridHistogram) fold the observed gap into
// their per-function model as part of the call. Calls arrive in
// deterministic dispatch order.
type KeepAlive interface {
	// Name labels the policy in tables and variant tags.
	Name() string
	// Decide judges one idle gap of fn and returns what happened to the
	// instance during it.
	Decide(fn string, idleMs float64) Decision
}

// fixedTimeout evicts after a constant idle timeout.
type fixedTimeout struct{ timeoutMs float64 }

// FixedTimeout returns the classic provider policy (and the traffic
// engine's historical behaviour): the instance is reclaimed once it has been
// idle longer than timeoutMs, and its next invocation cold-starts.
func FixedTimeout(timeoutMs float64) KeepAlive { return fixedTimeout{timeoutMs: timeoutMs} }

func (fixedTimeout) Name() string { return "FixedTimeout" }

func (p fixedTimeout) Decide(_ string, idleMs float64) Decision {
	if idleMs > p.timeoutMs {
		return Decision{Evicted: true, ResidentMs: p.timeoutMs}
	}
	return Decision{ResidentMs: idleMs}
}

// noEvict keeps every instance resident forever.
type noEvict struct{}

// NoEvict returns the keep-forever policy: no instance is ever reclaimed,
// so no invocation ever cold-starts — at the price of paying memory for
// every idle millisecond.
func NoEvict() KeepAlive { return noEvict{} }

func (noEvict) Name() string { return "NoEvict" }

func (noEvict) Decide(_ string, idleMs float64) Decision {
	return Decision{ResidentMs: idleMs}
}

// HybridConfig parameterizes the HybridHistogram policy. The zero value
// selects the defaults documented on each field.
//
//lukewarm:novalidate the whole field domain is realizable: zero/negative fields select the documented defaults in withDefaults
type HybridConfig struct {
	// FallbackMs is the fixed timeout applied while a function has fewer
	// than MinSamples observed gaps (and as the behaviour HybridHistogram
	// degrades to when its histogram says the pattern is unpredictable and
	// even the conservative window would be pointless). Zero selects 250 ms.
	FallbackMs float64
	// MinSamples is how many gaps a function must exhibit before the
	// histogram is trusted. Zero selects 4.
	MinSamples int
	// SpreadMax is the p99/p5 IAT ratio up to which a function counts as
	// predictable (low CV in Shahrad et al.'s terms) and earns a pre-warm
	// window. Zero selects 4.
	SpreadMax float64
}

func (c HybridConfig) withDefaults() HybridConfig {
	if c.FallbackMs <= 0 {
		c.FallbackMs = 250
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.SpreadMax <= 0 {
		c.SpreadMax = 4
	}
	return c
}

// hybridHistogram is the per-function hybrid policy of Shahrad et al.
type hybridHistogram struct {
	cfg   HybridConfig
	hists map[string]*IATHistogram
}

// HybridHistogram returns the per-function hybrid keep-alive/pre-warm policy
// of Shahrad et al. (ATC'20): each function's observed inter-arrival gaps
// feed a log-scale histogram, and the policy derives two windows from it.
//
// For a predictable function (p99/p5 spread within SpreadMax) the instance
// is kept resident only for a short head window (p5/8, absorbing intra-burst
// re-invocations), reclaimed, and pre-warmed at 80% of the 5th-percentile
// gap — just before the earliest plausible next arrival — so nearly every
// invocation finds it warm while memory is spent only on the tail of each
// gap. For an unpredictable function the policy falls back to a conservative
// fixed keep-alive at the 99th-percentile gap (no pre-warm can beat a
// memoryless arrival process). Functions with fewer than MinSamples observed
// gaps use the FallbackMs fixed timeout.
func HybridHistogram(cfg HybridConfig) KeepAlive {
	return &hybridHistogram{cfg: cfg.withDefaults(), hists: map[string]*IATHistogram{}}
}

func (*hybridHistogram) Name() string { return "HybridHistogram" }

func (p *hybridHistogram) Decide(fn string, idleMs float64) Decision {
	h := p.hists[fn]
	if h == nil {
		h = &IATHistogram{}
		p.hists[fn] = h
	}
	d := p.decide(h, idleMs)
	h.Add(idleMs)
	return d
}

// fallbackMs is the fixed-timeout window used while a function's histogram
// is not yet trusted. It re-applies the documented 250 ms default so that an
// empty history never degenerates to a zero-length window (and an immediate
// evict) even when the policy was built from a zero-value HybridConfig that
// bypassed withDefaults.
func (p *hybridHistogram) fallbackMs() float64 {
	if p.cfg.FallbackMs <= 0 {
		return 250
	}
	return p.cfg.FallbackMs
}

// decide judges idleMs against the windows the current histogram implies.
func (p *hybridHistogram) decide(h *IATHistogram, idleMs float64) Decision {
	// An empty history must fall back to the fixed timeout: percentile
	// returns 0 for n == 0, which would otherwise collapse both windows to
	// zero and evict (and "pre-warm") on every gap.
	if h.N() == 0 || h.N() < p.cfg.MinSamples {
		return fixedTimeout{timeoutMs: p.fallbackMs()}.Decide("", idleMs)
	}
	p5, p99 := h.Percentile(5), h.Percentile(99)
	if p99 > p5*p.cfg.SpreadMax {
		// Unpredictable: conservative keep-alive at the p99 gap, no pre-warm.
		return fixedTimeout{timeoutMs: p99}.Decide("", idleMs)
	}
	head := p5 / 8
	prewarmAt := 0.8 * p5
	switch {
	case idleMs <= head:
		// Intra-burst re-invocation: never left memory.
		return Decision{ResidentMs: idleMs}
	case idleMs >= prewarmAt:
		// Evicted at the head window, restored by the pre-warm before the
		// arrival: warm again, memory spent only on head + tail.
		return Decision{Evicted: true, Prewarmed: true,
			ResidentMs: head + (idleMs - prewarmAt)}
	default:
		// Arrived in the reclaimed window before the pre-warm fired.
		return Decision{Evicted: true, ResidentMs: head}
	}
}

// Windows reports the pre-warm and keep-alive windows the policy currently
// derives for fn, for inspection and tests: headMs is the post-completion
// keep-alive, prewarmMs the pre-warm point (0 when the function is
// unpredictable or unlearned, in which case keepMs is the fixed window in
// effect).
func (p *hybridHistogram) Windows(fn string) (headMs, prewarmMs, keepMs float64) {
	h := p.hists[fn]
	if h == nil || h.N() == 0 || h.N() < p.cfg.MinSamples {
		return 0, 0, p.fallbackMs()
	}
	p5, p99 := h.Percentile(5), h.Percentile(99)
	if p99 > p5*p.cfg.SpreadMax {
		return 0, 0, p99
	}
	return p5 / 8, 0.8 * p5, 0
}

// HybridWindows exposes a HybridHistogram policy's learned windows for fn.
// It returns zeros for any other KeepAlive implementation.
func HybridWindows(ka KeepAlive, fn string) (headMs, prewarmMs, keepMs float64) {
	if p, ok := ka.(*hybridHistogram); ok {
		return p.Windows(fn)
	}
	return 0, 0, 0
}

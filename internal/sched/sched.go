// Package sched is the invocation-scheduling subsystem of the traffic
// engine: pluggable placement policies (which core serves an arriving
// invocation) and keep-alive policies (how long an idle instance stays
// memory-resident, and whether it is pre-warmed before its predicted next
// arrival).
//
// The paper's thesis is that scheduling determines microarchitectural fate:
// inter-arrival time and what runs in between turn a warm function lukewarm
// (Fig. 1), and Jukebox metadata follows the instance to whichever core the
// OS picks (Sec. 3.4.1). The policies here let the traffic engine ask the
// system-level question directly — how much of the lukewarm penalty a
// smarter scheduler can claim back without any hardware, and how much
// remains for Jukebox:
//
//   - EarliestAvailable: the classic load balancer (and the traffic
//     engine's historical behaviour) — lowest-indexed core that drains its
//     backlog first.
//   - RoundRobin: static striping, the placement-oblivious strawman.
//   - StickyAffinity: route an invocation back to the core whose L1-I, L2
//     and BTB state is warmest for its function, turning lukewarm back into
//     warm while the warmth lasts.
//   - JukeboxAware: prefer the core where the instance's metadata base/limit
//     registers are already programmed, minimizing Jukebox.Bind churn, but
//     yield to load when the bound core is too far behind.
//
// Keep-alive policies (keepalive.go) mirror the provider-side literature:
// a fixed idle timeout, an explicit keep-forever, and the hybrid
// per-function IAT-histogram policy of Shahrad et al. (ATC'20) that picks a
// pre-warm window and a keep-alive window per function. Arrival-process
// shapes (arrivals.go) supply the deterministic gap generators the traffic
// engine draws from, including the diurnal generator.
//
// Everything in this package is deterministic: policies are plain state
// machines fed by the traffic engine's single-threaded dispatch loop, and
// arrival shapes draw from seeded RNG streams.
package sched

// Request describes one arriving invocation to a Placer.
type Request struct {
	// Func names the function (instances are one-per-function in the
	// traffic engine, so Func identifies the instance too).
	Func string
	// ArrivalMs is the arrival time in simulated milliseconds.
	ArrivalMs float64
	// HasJukebox reports whether the instance carries Jukebox metadata.
	HasJukebox bool
}

// CoreView is the per-core state snapshot a Placer chooses from. Views are
// indexed by core; all times are simulated milliseconds.
type CoreView struct {
	// FreeAtMs is when the core drains its current backlog (<= ArrivalMs
	// means the core is idle when the invocation arrives).
	FreeAtMs float64
	// Last reports that this is the core where the request's function most
	// recently ran — the only core with any residual warmth for it.
	Last bool
	// ForeignSince counts invocations of other functions served on this
	// core since the request's function last completed here. It is the
	// warmth meter: each foreign invocation streams a foreign working set
	// through the private L1-I/L2/BTB. Meaningful only when Last is set.
	ForeignSince int
	// Bound reports that the instance's Jukebox base/limit registers are
	// still programmed on this core (no Bind needed to run here).
	Bound bool
}

// Placer picks the core that serves an arriving invocation. Implementations
// may keep internal state; the traffic engine calls Place sequentially in
// deterministic arrival order.
type Placer interface {
	// Name labels the policy in tables and variant tags.
	Name() string
	// Place returns the index of the chosen core. cores is never empty.
	Place(r Request, cores []CoreView) int
}

// earliestIdx returns the lowest-indexed core with the smallest FreeAtMs —
// the traffic engine's historical dispatch rule.
func earliestIdx(cores []CoreView) int {
	idx := 0
	for i := range cores {
		if cores[i].FreeAtMs < cores[idx].FreeAtMs {
			idx = i
		}
	}
	return idx
}

// earliestAvailable is the baseline policy.
type earliestAvailable struct{}

// EarliestAvailable returns the baseline placement policy: the invocation
// goes to the core that drains its backlog first (lowest index on ties).
// This is exactly the traffic engine's behaviour before placement became
// pluggable.
func EarliestAvailable() Placer { return earliestAvailable{} }

func (earliestAvailable) Name() string { return "EarliestAvailable" }

func (earliestAvailable) Place(_ Request, cores []CoreView) int { return earliestIdx(cores) }

// roundRobin stripes invocations across cores in arrival order.
type roundRobin struct{ next int }

// RoundRobin returns a policy that stripes invocations across cores in
// arrival order, ignoring both load and warmth — the placement-oblivious
// strawman.
func RoundRobin() Placer { return &roundRobin{} }

func (*roundRobin) Name() string { return "RoundRobin" }

func (p *roundRobin) Place(_ Request, cores []CoreView) int {
	idx := p.next % len(cores)
	p.next++
	return idx
}

// DefaultStickyPatience is how many foreign invocations may run on the warm
// core before StickyAffinity gives the function up as lukewarm there. Tens
// of co-resident invocations stream several times the L2's capacity through
// the private levels (Sec. 2.2), at which point there is nothing left to
// stick to.
const DefaultStickyPatience = 16

// stickyAffinity prefers the function's last core while warmth remains.
type stickyAffinity struct{ patience int }

// StickyAffinity returns a warmth-seeking policy: an invocation is routed
// back to the core where its function last ran — the only core whose
// L1-I/L2/BTB hold any of its state — unless more than patience foreign
// invocations have run there since (warmth gone, fall back to
// EarliestAvailable). patience <= 0 selects DefaultStickyPatience.
func StickyAffinity(patience int) Placer {
	if patience <= 0 {
		patience = DefaultStickyPatience
	}
	return &stickyAffinity{patience: patience}
}

func (*stickyAffinity) Name() string { return "StickyAffinity" }

func (p *stickyAffinity) Place(_ Request, cores []CoreView) int {
	for i := range cores {
		if cores[i].Last && cores[i].ForeignSince <= p.patience {
			return i
		}
	}
	return earliestIdx(cores)
}

// DefaultJukeboxSlackMs is how far behind the earliest-available core the
// metadata-bound core may be before JukeboxAware migrates the instance
// anyway. A couple of milliseconds is a few invocations' worth of service
// time — roughly the cost of the replay churn a migration causes.
const DefaultJukeboxSlackMs = 2.0

// jukeboxAware prefers the metadata-bound core within a load slack.
type jukeboxAware struct{ slackMs float64 }

// JukeboxAware returns a metadata-locality policy: an instance with Jukebox
// metadata is routed to the core whose base/limit registers already hold its
// bookkeeping (no Bind churn, replay starts immediately) unless that core's
// backlog trails the earliest-available core by more than slackMs
// milliseconds, in which case load wins and the instance migrates (its
// metadata follows, Sec. 3.4.1). Instances without Jukebox fall back to
// EarliestAvailable. slackMs <= 0 selects DefaultJukeboxSlackMs.
func JukeboxAware(slackMs float64) Placer {
	if slackMs <= 0 {
		slackMs = DefaultJukeboxSlackMs
	}
	return &jukeboxAware{slackMs: slackMs}
}

func (*jukeboxAware) Name() string { return "JukeboxAware" }

func (p *jukeboxAware) Place(r Request, cores []CoreView) int {
	idx := earliestIdx(cores)
	if !r.HasJukebox {
		return idx
	}
	for i := range cores {
		if cores[i].Bound && cores[i].FreeAtMs <= cores[idx].FreeAtMs+p.slackMs {
			return i
		}
	}
	return idx
}

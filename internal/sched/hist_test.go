package sched

import "testing"

func TestIATHistogramEmpty(t *testing.T) {
	var h IATHistogram
	if h.N() != 0 {
		t.Fatalf("zero-value N = %d", h.N())
	}
	if p := h.Percentile(50); p != 0 {
		t.Errorf("empty Percentile(50) = %v, want 0", p)
	}
	if ms, mass := h.Mode(2); ms != 0 || mass != 0 {
		t.Errorf("empty Mode = (%v, %v), want (0, 0)", ms, mass)
	}
}

func TestIATHistogramMode(t *testing.T) {
	var h IATHistogram
	// 30 observations at ~8 ms, 10 spread over a decade: the mode must land
	// on the 8 ms bin with most of the mass inside the +/-2-bin window.
	for i := 0; i < 30; i++ {
		h.Add(8)
	}
	for _, ms := range []float64{1, 2, 40, 80, 160, 320, 640, 1280, 2560, 5120} {
		h.Add(ms)
	}
	ms, mass := h.Mode(2)
	if ms < 7 || ms > 9.5 {
		t.Errorf("Mode value = %.2f ms, want ~8 within bin resolution", ms)
	}
	if mass < 0.7 || mass > 0.8 {
		t.Errorf("Mode mass = %.3f, want 30/40 = 0.75", mass)
	}
}

// Ties between equally-populated bins must resolve to the shortest gap so
// Mode is a deterministic function of the observations.
func TestIATHistogramModeTieBreaksLow(t *testing.T) {
	var h IATHistogram
	h.Add(10)
	h.Add(1000)
	ms, _ := h.Mode(0)
	if ms > 11 {
		t.Errorf("tied Mode = %.2f ms, want the 10 ms bin", ms)
	}
}

// The window argument widens the confidence mass but never changes the modal
// value, and mass is monotone in the window.
func TestIATHistogramModeWindowMonotone(t *testing.T) {
	var h IATHistogram
	for _, ms := range []float64{10, 10, 10, 9, 11, 12, 8, 100} {
		h.Add(ms)
	}
	prev := -1.0
	v0, _ := h.Mode(0)
	for w := 0; w <= 4; w++ {
		v, mass := h.Mode(w)
		if v != v0 {
			t.Fatalf("Mode value changed with window %d: %v vs %v", w, v, v0)
		}
		if mass < prev {
			t.Fatalf("Mode mass not monotone in window: %v after %v", mass, prev)
		}
		prev = mass
	}
	if _, mass := h.Mode(histBins); mass != 1 {
		t.Errorf("full-window mass = %v, want 1", mass)
	}
}

func TestIATHistogramPercentileClampsToLastBin(t *testing.T) {
	var h IATHistogram
	h.Add(1e12) // absurdly long gap lands in the final bin
	if got, want := h.Percentile(99), histValue(histBins-1); got != want {
		t.Errorf("Percentile(99) = %v, want final-bin edge %v", got, want)
	}
}

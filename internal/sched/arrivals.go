package sched

import (
	"math"

	"lukewarm/internal/program"
)

// ShapeKind enumerates the arrival-process shapes the traffic engine can
// drive an instance with.
type ShapeKind uint8

const (
	// Fixed spaces arrivals exactly MeanIATms apart.
	Fixed ShapeKind = iota
	// Poisson draws exponential gaps (memoryless arrivals).
	Poisson
	// HeavyTail layers burstiness over Poisson: a 50/50 mixture of short
	// intra-burst gaps (mean/4) and long lulls (7*mean/4), preserving the
	// configured mean — the Azure-trace approximation (Shahrad et al.).
	HeavyTail
	// Diurnal modulates near-periodic arrivals with a fleet-wide sinusoidal
	// rate cycle (the day/night load swing) plus a small jitter: gaps are
	// individually predictable (low CV, the common case in the Azure
	// traces) while the rate drifts over the period.
	Diurnal
	// Bursty is the adversarial shape for pre-warm forecasters: an 80/20
	// mixture of very short intra-burst gaps (mean/8) and very long lulls
	// (4.5*mean), preserving the configured mean. A mode-seeking forecaster
	// locks onto the short gap, so every lull both wastes its scheduled
	// pre-warm and cold-faults the next arrival — mispredictions are
	// maximally costly.
	Bursty
)

// String names the shape for tables and variant tags.
func (k ShapeKind) String() string {
	switch k {
	case Fixed:
		return "fixed"
	case Poisson:
		return "poisson"
	case HeavyTail:
		return "heavytail"
	case Diurnal:
		return "diurnal"
	case Bursty:
		return "bursty"
	}
	return "unknown"
}

// Diurnal-shape constants: a ±30% rate swing keeps per-function gaps inside
// a ~1.9x band (predictable for the hybrid keep-alive policy), and the 5%
// jitter stands in for client-side noise. The default period is 20 mean
// gaps, so a run long enough to measure anything sees the rate drift.
const (
	DiurnalAmplitude     = 0.3
	DiurnalJitter        = 0.05
	DiurnalPeriodInMeans = 20
)

// Shape is one instance's arrival-gap generator: a pure sampler over an
// externally supplied RNG stream, so the traffic engine controls draw order
// (and therefore bit-exact reproducibility) while the shapes own the math.
type Shape struct {
	// Kind selects the gap distribution.
	Kind ShapeKind
	// MeanIATms is the mean gap in milliseconds.
	MeanIATms float64
	// PeriodMs is the diurnal cycle length; <= 0 selects
	// DiurnalPeriodInMeans * MeanIATms. Ignored by other kinds.
	PeriodMs float64
}

// period returns the effective diurnal period.
func (s Shape) period() float64 {
	if s.PeriodMs > 0 {
		return s.PeriodMs
	}
	return DiurnalPeriodInMeans * s.MeanIATms
}

// exp draws an exponential gap with the given mean, clamping the uniform
// draw away from zero exactly as the traffic engine always has.
func exp(rng *program.RNG, mean float64) float64 {
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return -math.Log(u) * mean
}

// GapMs draws the next inter-arrival gap in milliseconds. nowMs is the
// simulated time the gap starts at (the previous arrival), used only by the
// time-varying Diurnal shape. The number and order of RNG draws per kind is
// part of the determinism contract: Fixed draws none, Poisson one, HeavyTail
// two, Diurnal one, Bursty two.
func (s Shape) GapMs(rng *program.RNG, nowMs float64) float64 {
	switch s.Kind {
	case Poisson:
		return exp(rng, s.MeanIATms)
	case HeavyTail:
		if rng.Bool(0.5) {
			return exp(rng, s.MeanIATms/4)
		}
		return exp(rng, s.MeanIATms*7/4)
	case Bursty:
		// 0.8*(1/8) + 0.2*4.5 = 1: the mixture preserves MeanIATms.
		if rng.Bool(0.8) {
			return exp(rng, s.MeanIATms/8)
		}
		return exp(rng, s.MeanIATms*4.5)
	case Diurnal:
		rate := 1 + DiurnalAmplitude*math.Sin(2*math.Pi*nowMs/s.period())
		jitter := 1 + DiurnalJitter*(2*rng.Float64()-1)
		return s.MeanIATms / rate * jitter
	}
	return s.MeanIATms
}

// Sequence generates the first n gaps of one instance's arrival process from
// a fresh stream seeded by (seed, stream), accumulating simulated time as it
// goes. It exists for tests and offline analysis: the same (shape, seed,
// stream, n) always yields the same slice, on any machine, under any
// parallelism — arrival processes are pure functions of their seeds.
func (s Shape) Sequence(seed, stream uint64, n int) []float64 {
	rng := program.NewRNG(program.Mix(seed, stream))
	gaps := make([]float64, n)
	now := 0.0
	for i := range gaps {
		gaps[i] = s.GapMs(rng, now)
		now += gaps[i]
	}
	return gaps
}

package sched

import (
	"math"
	"testing"

	"lukewarm/internal/program"
)

// TestShapeDrawCounts pins the RNG-draw-count contract documented on GapMs:
// a shape that silently starts drawing more (or fewer) uniforms would shift
// every downstream draw and break bit-exact reproducibility of the traffic
// engine. Each kind's post-GapMs RNG state must equal a fresh RNG skipped
// exactly the documented number of Float64 draws.
func TestShapeDrawCounts(t *testing.T) {
	draws := map[ShapeKind]int{
		Fixed:     0,
		Poisson:   1,
		HeavyTail: 2,
		Diurnal:   1,
		Bursty:    2,
	}
	for kind, n := range draws {
		s := Shape{Kind: kind, MeanIATms: 64}
		a := program.NewRNG(99)
		s.GapMs(a, 0)
		b := program.NewRNG(99)
		for i := 0; i < n; i++ {
			b.Float64()
		}
		if a.Float64() != b.Float64() {
			t.Errorf("%v: GapMs consumed a number of draws other than the documented %d", kind, n)
		}
	}
}

// TestHeavyTailTailMass checks the distribution shape, not just the mean:
// HeavyTail must put substantially more mass beyond 3x the mean gap than the
// memoryless Poisson process does (analytically ~9.0% vs ~5.0%).
func TestHeavyTailTailMass(t *testing.T) {
	tailFrac := func(kind ShapeKind) float64 {
		gaps := Shape{Kind: kind, MeanIATms: 100}.Sequence(11, 3, 20000)
		tail := 0
		for _, g := range gaps {
			if g > 300 {
				tail++
			}
		}
		return float64(tail) / float64(len(gaps))
	}
	ht, po := tailFrac(HeavyTail), tailFrac(Poisson)
	if ht < 1.5*po {
		t.Errorf("heavy-tail mass beyond 3x mean = %.3f, Poisson = %.3f; want >= 1.5x", ht, po)
	}
}

// TestBurstyShape checks the adversarial mixture's two modes: ~80% of gaps
// are intra-burst (well under half the mean, drawn at mean/8) and the long
// lulls carry enough tail mass that a mode-seeking forecaster who locks onto
// the burst gap mispredicts every lull.
func TestBurstyShape(t *testing.T) {
	gaps := Shape{Kind: Bursty, MeanIATms: 100}.Sequence(11, 3, 20000)
	short, tail := 0, 0
	for _, g := range gaps {
		if g < 50 {
			short++
		}
		if g > 200 {
			tail++
		}
	}
	shortFrac := float64(short) / float64(len(gaps))
	tailFrac := float64(tail) / float64(len(gaps))
	if shortFrac < 0.75 || shortFrac > 0.86 {
		t.Errorf("bursty short-gap fraction = %.3f, want ~0.81 (80%% mixture at mean/8)", shortFrac)
	}
	if tailFrac < 0.09 || tailFrac > 0.17 {
		t.Errorf("bursty tail mass beyond 2x mean = %.3f, want ~0.13", tailFrac)
	}
}

// TestDiurnalPeriod verifies the rate cycle has the configured period: with
// the 5% jitter the only other modulation, every observed gap must sit
// within the jitter band of mean/(1 + A*sin(2*pi*t/period)) evaluated at the
// gap's start time. A wrong period would desynchronize the predicted rate
// from the drawn gaps almost immediately.
func TestDiurnalPeriod(t *testing.T) {
	const mean, period = 100.0, 1500.0
	s := Shape{Kind: Diurnal, MeanIATms: mean, PeriodMs: period}
	gaps := s.Sequence(21, 4, 500)
	now := 0.0
	for i, g := range gaps {
		rate := 1 + DiurnalAmplitude*math.Sin(2*math.Pi*now/period)
		want := mean / rate
		if math.Abs(g-want) > want*(DiurnalJitter+1e-9) {
			t.Fatalf("gap %d = %.2f ms at t=%.1f, outside jitter band around %.2f: period modulation wrong", i, g, now, want)
		}
		now += g
	}
}

package sched

import (
	"math"
	"testing"
)

func views(freeAt ...float64) []CoreView {
	vs := make([]CoreView, len(freeAt))
	for i, f := range freeAt {
		vs[i].FreeAtMs = f
	}
	return vs
}

func TestEarliestAvailable(t *testing.T) {
	p := EarliestAvailable()
	if got := p.Place(Request{}, views(3, 1, 2)); got != 1 {
		t.Errorf("picked core %d, want 1", got)
	}
	// Ties break to the lowest index, matching the historical dispatch loop.
	if got := p.Place(Request{}, views(2, 2, 2)); got != 0 {
		t.Errorf("tie picked core %d, want 0", got)
	}
}

func TestRoundRobinStripes(t *testing.T) {
	p := RoundRobin()
	vs := views(0, 0, 0)
	for i := 0; i < 7; i++ {
		if got := p.Place(Request{}, vs); got != i%3 {
			t.Fatalf("placement %d: core %d, want %d", i, got, i%3)
		}
	}
}

func TestStickyAffinity(t *testing.T) {
	p := StickyAffinity(4)
	vs := views(9, 1, 5) // core 1 is least loaded
	vs[2].Last = true
	vs[2].ForeignSince = 3
	if got := p.Place(Request{Func: "f"}, vs); got != 2 {
		t.Errorf("warm core ignored: got %d, want 2", got)
	}
	// Warmth expired: more foreign invocations than patience.
	vs[2].ForeignSince = 5
	if got := p.Place(Request{Func: "f"}, vs); got != 1 {
		t.Errorf("expired warmth: got %d, want earliest-available 1", got)
	}
	// Never ran anywhere: earliest available.
	if got := p.Place(Request{Func: "g"}, views(2, 0, 1)); got != 1 {
		t.Errorf("fresh function: got %d, want 1", got)
	}
}

func TestJukeboxAware(t *testing.T) {
	p := JukeboxAware(2)
	vs := views(0, 1, 0)
	vs[1].Bound = true
	// Bound core within slack of the earliest: stay, no Bind churn.
	if got := p.Place(Request{HasJukebox: true}, vs); got != 1 {
		t.Errorf("bound core within slack: got %d, want 1", got)
	}
	// Bound core too far behind: migrate (metadata follows the instance).
	vs[1].FreeAtMs = 5
	if got := p.Place(Request{HasJukebox: true}, vs); got != 0 {
		t.Errorf("overloaded bound core: got %d, want 0", got)
	}
	// No Jukebox: plain earliest-available.
	if got := p.Place(Request{HasJukebox: false}, vs); got != 0 {
		t.Errorf("no jukebox: got %d, want 0", got)
	}
}

func TestFixedTimeoutAndNoEvict(t *testing.T) {
	ka := FixedTimeout(10)
	if d := ka.Decide("f", 5); d.Evicted || d.ResidentMs != 5 {
		t.Errorf("short gap: %+v", d)
	}
	d := ka.Decide("f", 25)
	if !d.ColdStart() || d.Prewarmed || d.ResidentMs != 10 {
		t.Errorf("long gap: %+v", d)
	}
	if d := NoEvict().Decide("f", 1e6); d.Evicted || d.ResidentMs != 1e6 {
		t.Errorf("NoEvict evicted: %+v", d)
	}
}

func TestHybridHistogramLearnsPredictableFunction(t *testing.T) {
	ka := HybridHistogram(HybridConfig{FallbackMs: 50, MinSamples: 4})
	// A near-periodic function: 100 ms gaps with small wobble. The fallback
	// (50 ms) cold-starts every one of them.
	gaps := []float64{98, 102, 99, 101, 100, 97, 103, 100}
	var coldBefore, coldAfter int
	var residentAfter float64
	for i, g := range gaps {
		d := ka.Decide("periodic", g)
		if i < 4 {
			if d.ColdStart() {
				coldBefore++
			}
		} else {
			if d.ColdStart() {
				coldAfter++
			}
			residentAfter += d.ResidentMs
		}
	}
	if coldBefore != 4 {
		t.Errorf("fallback phase cold starts = %d, want 4 (every gap > 50 ms)", coldBefore)
	}
	if coldAfter != 0 {
		t.Errorf("learned phase cold starts = %d, want 0 (pre-warm covers the gaps)", coldAfter)
	}
	// The learned windows spend less memory per gap than the 50 ms fallback.
	if perGap := residentAfter / 4; perGap >= 50 {
		t.Errorf("learned resident %.1f ms/gap, want below the 50 ms fallback", perGap)
	}
	head, prewarm, keep := HybridWindows(ka, "periodic")
	if head <= 0 || prewarm <= head || keep != 0 {
		t.Errorf("windows head=%.1f prewarm=%.1f keep=%.1f, want head<prewarm, no fixed window",
			head, prewarm, keep)
	}
	if prewarm >= 97 {
		t.Errorf("pre-warm at %.1f ms fires after the earliest observed gap", prewarm)
	}
}

func TestHybridHistogramUnpredictableFallsBackToP99(t *testing.T) {
	ka := HybridHistogram(HybridConfig{FallbackMs: 50, MinSamples: 4, SpreadMax: 4})
	// Wildly spread gaps: spread far beyond SpreadMax.
	for _, g := range []float64{1, 10, 100, 1000, 5000} {
		ka.Decide("wild", g)
	}
	head, prewarm, keep := HybridWindows(ka, "wild")
	if head != 0 || prewarm != 0 {
		t.Errorf("unpredictable function earned a pre-warm window: head=%.1f prewarm=%.1f", head, prewarm)
	}
	if keep < 1000 {
		t.Errorf("conservative keep-alive %.1f ms, want near the p99 gap", keep)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h IATHistogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	p50 := h.Percentile(50)
	if p50 < 45 || p50 > 60 {
		t.Errorf("p50 = %.1f, want ~50 within bin resolution", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 95 || p99 > 110 {
		t.Errorf("p99 = %.1f, want ~99 within bin resolution", p99)
	}
}

func TestShapeSequencesDeterministic(t *testing.T) {
	for _, kind := range []ShapeKind{Fixed, Poisson, HeavyTail, Diurnal, Bursty} {
		s := Shape{Kind: kind, MeanIATms: 100}
		a := s.Sequence(42, 7, 200)
		b := s.Sequence(42, 7, 200)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: gap %d differs: %g vs %g", kind, i, a[i], b[i])
			}
		}
		// A different stream must give a different (but still deterministic)
		// process for every stochastic kind.
		if kind != Fixed {
			c := s.Sequence(42, 8, 200)
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%v: streams 7 and 8 produced identical sequences", kind)
			}
		}
	}
}

func TestShapeMeansRoughlyPreserved(t *testing.T) {
	for _, kind := range []ShapeKind{Fixed, Poisson, HeavyTail, Diurnal, Bursty} {
		s := Shape{Kind: kind, MeanIATms: 100}
		gaps := s.Sequence(1, 1, 20000)
		sum := 0.0
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		if math.Abs(mean-100) > 10 {
			t.Errorf("%v: mean gap %.1f ms, want within 10%% of 100", kind, mean)
		}
	}
}

func TestDiurnalGapsPredictableBand(t *testing.T) {
	s := Shape{Kind: Diurnal, MeanIATms: 100}
	gaps := s.Sequence(3, 5, 1000)
	lo, hi := math.Inf(1), 0.0
	for _, g := range gaps {
		lo = math.Min(lo, g)
		hi = math.Max(hi, g)
	}
	// The ±30% rate swing with 5% jitter keeps every gap inside a band the
	// hybrid keep-alive policy classifies as predictable.
	if lo < 100/1.3*0.94 || hi > 100/0.7*1.06 {
		t.Errorf("diurnal gaps span [%.1f, %.1f], outside the designed band", lo, hi)
	}
	if hi/lo > 4 {
		t.Errorf("diurnal spread %.1fx would defeat the hybrid policy's predictability test", hi/lo)
	}
}

// Regression: an empty IAT history must fall back to the fixed timeout, not
// evict immediately. Before the h.n == 0 guard in decide, a zero-value
// HybridConfig (MinSamples 0, bypassing withDefaults) made percentile return
// 0, collapsing both windows to zero and reporting every gap as
// evicted-and-prewarmed.
func TestHybridHistogramEmptyHistoryFallsBackToFixedTimeout(t *testing.T) {
	// The degenerate construction: a zero-value config never run through
	// withDefaults, as an embedding caller might build it.
	p := &hybridHistogram{cfg: HybridConfig{}, hists: map[string]*IATHistogram{}}
	d := p.Decide("f", 10)
	if d.Evicted || d.Prewarmed {
		t.Fatalf("empty history with 10 ms gap: %+v, want resident (250 ms fallback)", d)
	}
	if d.ResidentMs != 10 {
		t.Fatalf("ResidentMs = %v, want 10", d.ResidentMs)
	}
	if head, prewarm, keep := p.Windows("g"); head != 0 || prewarm != 0 || keep != 250 {
		t.Fatalf("Windows on empty history = %v, %v, %v, want 0, 0, 250", head, prewarm, keep)
	}

	// The public constructor path: the very first gap a function ever shows
	// must be judged by FallbackMs alone.
	ka := HybridHistogram(HybridConfig{FallbackMs: 50})
	if d := ka.Decide("h", 40); d.Evicted {
		t.Fatalf("first 40 ms gap under 50 ms fallback evicted: %+v", d)
	}
	if d := ka.Decide("i", 60); !d.Evicted || d.Prewarmed {
		t.Fatalf("first 60 ms gap under 50 ms fallback: %+v, want plain eviction", d)
	}
}

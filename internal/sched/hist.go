package sched

import "math"

// Histogram geometry: 8 bins per octave starting at histMinMs gives ~9%
// value resolution over a 0.1 ms – ~50 min range, plenty for IATs that the
// Azure traces put between a second and a few minutes.
const (
	histBins        = 256
	histMinMs       = 0.1
	histBinsPerOct  = 8
	histBinRatioLog = 0.0866433975699932 // ln(2)/8
)

// histBin maps an IAT to its bin index.
func histBin(ms float64) int {
	if ms <= histMinMs {
		return 0
	}
	b := int(math.Log(ms/histMinMs) / histBinRatioLog)
	if b >= histBins {
		b = histBins - 1
	}
	return b
}

// histValue returns the upper-edge IAT of a bin.
func histValue(bin int) float64 {
	return histMinMs * math.Exp(float64(bin+1)*histBinRatioLog)
}

// IATHistogram is one function's inter-arrival-time histogram: fixed-size
// log-scale bins (8 per octave from 0.1 ms), so both the HybridHistogram
// keep-alive policy and the predict forecasters can share one per-function
// arrival model. The zero value is ready to use.
type IATHistogram struct {
	counts [histBins]int
	n      int
}

// Add folds one observed gap into the histogram.
func (h *IATHistogram) Add(ms float64) {
	h.counts[histBin(ms)]++
	h.n++
}

// N returns the number of observed gaps.
func (h *IATHistogram) N() int { return h.n }

// Percentile returns the upper edge of the bin holding the p-th percentile
// observation (0 < p < 100). It returns 0 when the histogram is empty.
func (h *IATHistogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int(math.Ceil(p / 100 * float64(h.n)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for b := 0; b < histBins; b++ {
		cum += h.counts[b]
		if cum >= target {
			return histValue(b)
		}
	}
	return histValue(histBins - 1)
}

// Mode returns the upper-edge IAT of the most-populated bin (ties break to
// the shortest gap, keeping the result deterministic) together with the
// fraction of all observations that fall within ±window bins of it — the
// natural confidence of a "next gap looks like the modal gap" forecast.
// Empty histograms return (0, 0).
func (h *IATHistogram) Mode(window int) (ms, mass float64) {
	if h.n == 0 {
		return 0, 0
	}
	best := 0
	for b := 1; b < histBins; b++ {
		if h.counts[b] > h.counts[best] {
			best = b
		}
	}
	lo, hi := best-window, best+window
	if lo < 0 {
		lo = 0
	}
	if hi >= histBins {
		hi = histBins - 1
	}
	near := 0
	for b := lo; b <= hi; b++ {
		near += h.counts[b]
	}
	return histValue(best), float64(near) / float64(h.n)
}

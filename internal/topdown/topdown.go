// Package topdown implements the Top-Down cycle-accounting methodology
// (Yasin, ISPASS'14) at the granularity the paper uses: the four level-1
// categories plus the level-2 split of Frontend Bound into Fetch Latency and
// Fetch Bandwidth (Figs. 2-4).
//
// The core model charges cycles to categories as it executes; a Stack is the
// resulting CPI decomposition for one run and supports the aggregation and
// normalization the figures need.
package topdown

import (
	"fmt"
	"strings"

	"lukewarm/internal/stats"
)

// Category is one Top-Down cycle class.
type Category uint8

// Top-Down categories. Retiring is useful work; everything else is a stall
// class to be minimized. FetchLatency and FetchBandwidth together form the
// level-1 "Frontend Bound" category.
const (
	Retiring Category = iota
	FetchLatency
	FetchBandwidth
	BadSpeculation
	BackendBound
	NumCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Retiring:
		return "Retiring"
	case FetchLatency:
		return "Fetch_Latency"
	case FetchBandwidth:
		return "Fetch_Bandwidth"
	case BadSpeculation:
		return "Bad_Speculation"
	case BackendBound:
		return "Backend_Bound"
	}
	return "Category?"
}

// Stack is the cycle decomposition of one or more runs. The zero value is an
// empty stack ready for accumulation.
type Stack struct {
	Cycles [NumCategories]float64
	Instrs uint64
}

// Add charges cyc cycles to category c.
func (s *Stack) Add(c Category, cyc float64) { s.Cycles[c] += cyc }

// AddInstrs records retired instructions.
func (s *Stack) AddInstrs(n uint64) { s.Instrs += n }

// Total reports total accounted cycles.
func (s *Stack) Total() float64 {
	t := 0.0
	for _, c := range s.Cycles {
		t += c
	}
	return t
}

// CPI reports cycles per instruction, or 0 with no instructions.
func (s *Stack) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return s.Total() / float64(s.Instrs)
}

// CPIOf reports the CPI contribution of category c.
func (s *Stack) CPIOf(c Category) float64 {
	if s.Instrs == 0 {
		return 0
	}
	return s.Cycles[c] / float64(s.Instrs)
}

// FrontendBound reports the combined level-1 frontend cycles.
func (s *Stack) FrontendBound() float64 {
	return s.Cycles[FetchLatency] + s.Cycles[FetchBandwidth]
}

// StallCycles reports all non-retiring cycles.
func (s *Stack) StallCycles() float64 { return s.Total() - s.Cycles[Retiring] }

// Fraction reports category c's share of total cycles, or 0 for an empty
// stack.
func (s *Stack) Fraction(c Category) float64 {
	return stats.Ratio(s.Cycles[c], s.Total())
}

// Merge accumulates o into s (for averaging across invocations).
func (s *Stack) Merge(o Stack) {
	for i := range s.Cycles {
		s.Cycles[i] += o.Cycles[i]
	}
	s.Instrs += o.Instrs
}

// Delta returns the per-category cycle difference s - o, clamped at zero
// (used for "extra stall cycles in the interleaved setup" analyses, where a
// category that shrank contributes no extra stalls). Instrs is carried from
// s.
func (s Stack) Delta(o Stack) Stack {
	var d Stack
	for i := range s.Cycles {
		v := s.Cycles[i] - o.Cycles[i]
		if v < 0 {
			v = 0
		}
		d.Cycles[i] = v
	}
	d.Instrs = s.Instrs
	return d
}

// Normalize returns a copy scaled so per-instruction comparisons hold when
// two runs retired different instruction counts: cycles are divided by
// Instrs (leaving CPI contributions) times the given reference instruction
// count.
func (s Stack) Normalize(refInstrs uint64) Stack {
	if s.Instrs == 0 || refInstrs == 0 {
		return s
	}
	f := float64(refInstrs) / float64(s.Instrs)
	var n Stack
	for i := range s.Cycles {
		n.Cycles[i] = s.Cycles[i] * f
	}
	n.Instrs = refInstrs
	return n
}

// String renders the stack as a one-line CPI breakdown.
func (s *Stack) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPI %.3f [", s.CPI())
	for c := Category(0); c < NumCategories; c++ {
		if c > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.3f", c, s.CPIOf(c))
	}
	b.WriteString("]")
	return b.String()
}

package topdown

import (
	"math"
	"strings"
	"testing"
)

func TestStackAccumulation(t *testing.T) {
	var s Stack
	s.Add(Retiring, 100)
	s.Add(FetchLatency, 50)
	s.Add(FetchBandwidth, 10)
	s.Add(BadSpeculation, 20)
	s.Add(BackendBound, 20)
	s.AddInstrs(100)
	if s.Total() != 200 {
		t.Errorf("Total = %v", s.Total())
	}
	if s.CPI() != 2.0 {
		t.Errorf("CPI = %v", s.CPI())
	}
	if s.CPIOf(FetchLatency) != 0.5 {
		t.Errorf("CPIOf(FetchLatency) = %v", s.CPIOf(FetchLatency))
	}
	if s.FrontendBound() != 60 {
		t.Errorf("FrontendBound = %v", s.FrontendBound())
	}
	if s.StallCycles() != 100 {
		t.Errorf("StallCycles = %v", s.StallCycles())
	}
	if got := s.Fraction(Retiring); got != 0.5 {
		t.Errorf("Fraction = %v", got)
	}
}

func TestEmptyStack(t *testing.T) {
	var s Stack
	if s.CPI() != 0 || s.CPIOf(Retiring) != 0 || s.Fraction(BackendBound) != 0 {
		t.Error("empty stack should report zeros")
	}
}

func TestMerge(t *testing.T) {
	var a, b Stack
	a.Add(Retiring, 10)
	a.AddInstrs(10)
	b.Add(BackendBound, 5)
	b.AddInstrs(10)
	a.Merge(b)
	if a.Total() != 15 || a.Instrs != 20 {
		t.Errorf("merged: total=%v instrs=%d", a.Total(), a.Instrs)
	}
}

func TestDeltaClampsNegatives(t *testing.T) {
	var ref, il Stack
	ref.Add(FetchLatency, 100)
	ref.Add(BadSpeculation, 50)
	ref.AddInstrs(1000)
	il.Add(FetchLatency, 300)
	il.Add(BadSpeculation, 40) // shrank
	il.AddInstrs(1000)
	d := il.Delta(ref)
	if d.Cycles[FetchLatency] != 200 {
		t.Errorf("delta FetchLatency = %v", d.Cycles[FetchLatency])
	}
	if d.Cycles[BadSpeculation] != 0 {
		t.Errorf("delta BadSpeculation = %v, want clamped 0", d.Cycles[BadSpeculation])
	}
	if d.Instrs != 1000 {
		t.Errorf("delta instrs = %d", d.Instrs)
	}
}

func TestNormalize(t *testing.T) {
	var s Stack
	s.Add(Retiring, 200)
	s.AddInstrs(100)
	n := s.Normalize(50)
	if n.Cycles[Retiring] != 100 || n.Instrs != 50 {
		t.Errorf("normalized: %+v", n)
	}
	if math.Abs(n.CPI()-s.CPI()) > 1e-12 {
		t.Errorf("CPI changed by normalization: %v vs %v", n.CPI(), s.CPI())
	}
	// Degenerate cases pass through.
	if got := s.Normalize(0); got != s {
		t.Error("Normalize(0) should be identity")
	}
	var empty Stack
	if got := empty.Normalize(10); got != empty {
		t.Error("Normalize of empty should be identity")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		Retiring:       "Retiring",
		FetchLatency:   "Fetch_Latency",
		FetchBandwidth: "Fetch_Bandwidth",
		BadSpeculation: "Bad_Speculation",
		BackendBound:   "Backend_Bound",
		Category(77):   "Category?",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestStackString(t *testing.T) {
	var s Stack
	s.Add(Retiring, 4)
	s.AddInstrs(4)
	out := s.String()
	if !strings.Contains(out, "CPI 1.000") || !strings.Contains(out, "Retiring=1.000") {
		t.Errorf("String() = %q", out)
	}
}

package topdown

import (
	"math"
	"testing"
)

// stackOf builds a stack from per-category cycles in declaration order.
func stackOf(instrs uint64, cycles ...float64) Stack {
	var s Stack
	for i, c := range cycles {
		s.Add(Category(i), c)
	}
	s.AddInstrs(instrs)
	return s
}

// TestStackInvariants drives the accounting identities through edge
// configurations: the category sum must equal the total, no bucket may go
// negative under any supported operation, fractions must partition the
// total, and per-category CPIs must sum to CPI.
func TestStackInvariants(t *testing.T) {
	cases := []struct {
		name  string
		stack Stack
	}{
		{"zero instructions", stackOf(0, 10, 5, 3, 2, 1)},
		{"zero cycles", stackOf(1000)},
		{"empty", Stack{}},
		{"retiring only", stackOf(4000, 1000)},
		// A pure-miss stream: every fetch stalls, nothing retires usefully —
		// all cycles land in the latency bucket.
		{"pure fetch-miss stream", stackOf(100, 0, 25000)},
		{"pure backend stream", stackOf(100, 0, 0, 0, 0, 9000)},
		{"mixed", stackOf(123457, 30864, 41000, 3500, 2200, 17000)},
		{"fractional cycles", stackOf(7, 0.25, 0.5, 0.125, 0, 0.0625)},
	}
	const eps = 1e-9
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.stack

			// Category-sum identity.
			sum := 0.0
			for c := Category(0); c < NumCategories; c++ {
				sum += s.Cycles[c]
			}
			if math.Abs(sum-s.Total()) > eps*math.Max(1, sum) {
				t.Errorf("category sum %v != Total %v", sum, s.Total())
			}

			// Non-negative buckets, fractions, CPI contributions.
			fracSum, cpiSum := 0.0, 0.0
			for c := Category(0); c < NumCategories; c++ {
				if s.Cycles[c] < 0 {
					t.Errorf("%s cycles negative: %v", c, s.Cycles[c])
				}
				if f := s.Fraction(c); f < 0 || f > 1+eps {
					t.Errorf("%s fraction out of range: %v", c, f)
				}
				fracSum += s.Fraction(c)
				cpiSum += s.CPIOf(c)
			}
			if s.Total() > 0 && math.Abs(fracSum-1) > eps {
				t.Errorf("fractions sum to %v, want 1", fracSum)
			}
			if math.Abs(cpiSum-s.CPI()) > eps*math.Max(1, s.CPI()) {
				t.Errorf("per-category CPIs sum to %v, CPI is %v", cpiSum, s.CPI())
			}

			// Degenerate stacks define their ratios as zero.
			if s.Instrs == 0 && (s.CPI() != 0 || s.CPIOf(Retiring) != 0) {
				t.Errorf("zero-instruction stack: CPI %v, CPIOf %v, want 0", s.CPI(), s.CPIOf(Retiring))
			}
			if s.Total() == 0 && s.Fraction(Retiring) != 0 {
				t.Errorf("zero-cycle stack: Fraction %v, want 0", s.Fraction(Retiring))
			}

			// FrontendBound and StallCycles are sub-sums of the same total.
			if fe := s.FrontendBound(); math.Abs(fe-(s.Cycles[FetchLatency]+s.Cycles[FetchBandwidth])) > eps {
				t.Errorf("FrontendBound %v != FetchLatency+FetchBandwidth", fe)
			}
			if st := s.StallCycles(); math.Abs(st-(s.Total()-s.Cycles[Retiring])) > eps || st < -eps {
				t.Errorf("StallCycles %v inconsistent with Total-Retiring", st)
			}

			// The identities survive the stack algebra: merging with itself,
			// subtracting itself, normalizing.
			m := s
			m.Merge(s)
			if math.Abs(m.Total()-2*s.Total()) > eps*math.Max(1, s.Total()) {
				t.Errorf("Merge doubled total to %v, want %v", m.Total(), 2*s.Total())
			}
			d := s.Delta(s)
			for c := Category(0); c < NumCategories; c++ {
				if d.Cycles[c] != 0 {
					t.Errorf("self-Delta left %v in %s", d.Cycles[c], c)
				}
			}
			n := s.Normalize(1000)
			for c := Category(0); c < NumCategories; c++ {
				if n.Cycles[c] < 0 {
					t.Errorf("Normalize made %s negative: %v", c, n.Cycles[c])
				}
			}
			if s.Instrs > 0 && math.Abs(n.CPI()-s.CPI()) > eps*math.Max(1, s.CPI()) {
				t.Errorf("Normalize changed CPI: %v -> %v", s.CPI(), n.CPI())
			}
		})
	}
}

// TestDeltaNeverNegative pins the clamp across asymmetric pairs, including
// ones where every category shrank.
func TestDeltaNeverNegative(t *testing.T) {
	pairs := []struct{ a, b Stack }{
		{stackOf(100, 10, 20, 30), stackOf(100, 40, 5, 30)},
		{Stack{}, stackOf(100, 1, 1, 1, 1, 1)},
		{stackOf(100, 1, 1, 1, 1, 1), Stack{}},
	}
	for i, p := range pairs {
		d := p.a.Delta(p.b)
		for c := Category(0); c < NumCategories; c++ {
			if d.Cycles[c] < 0 {
				t.Errorf("pair %d: Delta %s negative: %v", i, c, d.Cycles[c])
			}
		}
		if d.Instrs != p.a.Instrs {
			t.Errorf("pair %d: Delta carried Instrs %d, want %d", i, d.Instrs, p.a.Instrs)
		}
	}
}

// Package trace serializes dynamic instruction streams to a compact binary
// format and replays them into the core. It fills the role the paper's
// artifact tooling (vSwarm-u) plays for gem5: captured invocations can be
// stored, shared, diffed, and re-simulated under different configurations
// without regenerating them.
//
// Format (little-endian, stream-oriented):
//
//	header:  magic "LWT1"
//	record:  1 flag byte, then varints
//	         flags: bits 0-1 op, bit 2 taken, bit 3 cond, bit 4 indirect,
//	                bit 5 dependent-load, bit 6 end-of-stream
//	         vaddr:  zigzag varint delta from the previous record's vaddr
//	         mem:    zigzag varint delta from the previous memory address
//	                 (loads and stores only)
//	         target: zigzag varint delta from this record's vaddr
//	                 (all branches; not-taken conditionals carry their
//	                 would-be target)
//
// Delta+varint encoding exploits the stream's locality: typical traces cost
// ~2.5 bytes per instruction instead of the 26+ of a naive fixed layout.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lukewarm/internal/cpu"
	"lukewarm/internal/program"
)

// magic identifies the stream format and version.
var magic = [4]byte{'L', 'W', 'T', '1'}

const (
	flagOpMask   = 0b0000_0011
	flagTaken    = 1 << 2
	flagCond     = 1 << 3
	flagIndirect = 1 << 4
	flagDepLoad  = 1 << 5
	flagEnd      = 1 << 6
	flagReserved = 1 << 7 // never written; set means a corrupt stream
)

// maxCanonicalAddr bounds every decoded address. The simulator's programs
// live in a 48-bit canonical address space (program's layout constants top
// out at the kernel region ~2^47), so any decoded address at or above 2^48
// is corruption, not a legitimate delta.
const maxCanonicalAddr = uint64(1) << 48

// zigzag encodes a signed delta as an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer serializes instructions. Close writes the end marker; the Writer
// must not be used afterwards.
type Writer struct {
	w       *bufio.Writer
	lastVA  uint64
	lastMem uint64
	count   uint64
	buf     [3 * binary.MaxVarintLen64]byte
	closed  bool
}

// NewWriter starts a stream on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction.
func (t *Writer) Write(in program.Instr) error {
	if t.closed {
		return errors.New("trace: write after Close")
	}
	flags := byte(in.Op) & flagOpMask
	if in.Taken {
		flags |= flagTaken
	}
	if in.Cond {
		flags |= flagCond
	}
	if in.Indirect {
		flags |= flagIndirect
	}
	if in.DepLoad {
		flags |= flagDepLoad
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	n := binary.PutUvarint(t.buf[:], zigzag(int64(in.VAddr)-int64(t.lastVA)))
	t.lastVA = in.VAddr
	if in.Op == program.OpLoad || in.Op == program.OpStore {
		n += binary.PutUvarint(t.buf[n:], zigzag(int64(in.MemAddr)-int64(t.lastMem)))
		t.lastMem = in.MemAddr
	}
	if in.Op == program.OpBranch {
		n += binary.PutUvarint(t.buf[n:], zigzag(int64(in.Target)-int64(in.VAddr)))
	}
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count reports the instructions written so far.
func (t *Writer) Count() uint64 { return t.count }

// Close writes the end-of-stream marker and flushes.
func (t *Writer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if err := t.w.WriteByte(flagEnd); err != nil {
		return err
	}
	return t.w.Flush()
}

// Reader replays a stream. It implements cpu.InstrSource; decoding errors
// end the stream and are reported by Err.
type Reader struct {
	r       *bufio.Reader
	lastVA  uint64
	lastMem uint64
	count   uint64
	err     error
	done    bool
}

var _ cpu.InstrSource = (*Reader)(nil)

// NewReader validates the header and prepares replay.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got[:])
	}
	return &Reader{r: br}, nil
}

// Next implements cpu.InstrSource.
func (t *Reader) Next() (program.Instr, bool) {
	if t.done {
		return program.Instr{}, false
	}
	fail := func(err error) (program.Instr, bool) {
		t.done = true
		if err != io.EOF {
			t.err = err
		} else {
			t.err = io.ErrUnexpectedEOF
		}
		return program.Instr{}, false
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		return fail(err)
	}
	if flags&flagEnd != 0 {
		if flags&^byte(flagEnd) != 0 {
			return fail(fmt.Errorf("trace: record %d: end marker with extra flag bits %#02x", t.count, flags))
		}
		t.done = true
		return program.Instr{}, false
	}
	if flags&flagReserved != 0 {
		return fail(fmt.Errorf("trace: record %d: reserved flag bit set (%#02x)", t.count, flags))
	}
	var in program.Instr
	in.Op = program.Op(flags & flagOpMask)
	in.Taken = flags&flagTaken != 0
	in.Cond = flags&flagCond != 0
	in.Indirect = flags&flagIndirect != 0
	in.DepLoad = flags&flagDepLoad != 0

	d, err := binary.ReadUvarint(t.r)
	if err != nil {
		return fail(err)
	}
	in.VAddr = uint64(int64(t.lastVA) + unzigzag(d))
	if in.VAddr >= maxCanonicalAddr {
		return fail(fmt.Errorf("trace: record %d: non-canonical vaddr %#x", t.count, in.VAddr))
	}
	t.lastVA = in.VAddr
	if in.Op == program.OpLoad || in.Op == program.OpStore {
		d, err = binary.ReadUvarint(t.r)
		if err != nil {
			return fail(err)
		}
		in.MemAddr = uint64(int64(t.lastMem) + unzigzag(d))
		if in.MemAddr >= maxCanonicalAddr {
			return fail(fmt.Errorf("trace: record %d: non-canonical memory address %#x", t.count, in.MemAddr))
		}
		t.lastMem = in.MemAddr
	}
	if in.Op == program.OpBranch {
		d, err = binary.ReadUvarint(t.r)
		if err != nil {
			return fail(err)
		}
		in.Target = uint64(int64(in.VAddr) + unzigzag(d))
		if in.Target >= maxCanonicalAddr {
			return fail(fmt.Errorf("trace: record %d: non-canonical branch target %#x", t.count, in.Target))
		}
	}
	t.count++
	return in, true
}

// Count reports instructions decoded so far.
func (t *Reader) Count() uint64 { return t.count }

// Err reports a decoding failure (nil on clean end-of-stream).
func (t *Reader) Err() error { return t.err }

// DefaultReadLimit bounds Read's allocation when the caller passes no limit:
// 16M instructions, comfortably above the suite's longest invocation but far
// below what a hostile length-bombing stream could request.
const DefaultReadLimit = 16 << 20

// Read decodes an entire stream into memory. It never panics and never
// allocates more than maxInstrs entries (<= 0 selects DefaultReadLimit):
// truncated streams, bad flag bytes and absurd varint deltas all surface as
// errors, and a stream longer than the limit is rejected rather than
// buffered. Callers that do not need random access should prefer streaming
// with Reader.Next.
func Read(r io.Reader, maxInstrs uint64) ([]program.Instr, error) {
	if maxInstrs <= 0 {
		maxInstrs = DefaultReadLimit
	}
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []program.Instr
	for {
		in, ok := tr.Next()
		if !ok {
			break
		}
		if uint64(len(out)) >= maxInstrs {
			return nil, fmt.Errorf("trace: stream exceeds %d-instruction limit", maxInstrs)
		}
		out = append(out, in)
	}
	if err := tr.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Capture walks invocation id of p and writes it to w, returning the
// instruction count.
func Capture(p *program.Program, id uint64, w io.Writer) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	inv := p.NewInvocation(id)
	for {
		in, ok := inv.Next()
		if !ok {
			break
		}
		if err := tw.Write(in); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Close()
}

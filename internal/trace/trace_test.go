package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"lukewarm/internal/cpu"
	"lukewarm/internal/program"
	"lukewarm/internal/vm"
	"lukewarm/internal/workload"
)

func testProgram() *program.Program {
	return program.New(program.Config{
		Name: "tr-test-fn", Seed: 5, CodeKB: 64, DynamicInstrs: 40_000,
		CoreFrac: 0.85, OptionalProb: 0.8, RareFrac: 0.04, RareProb: 0.05,
		InstrPerLine: 16, LoadFrac: 0.22, StoreFrac: 0.08,
		CondFrac: 0.3, CondBias: 0.9, NoisyFrac: 0.02, IndirectFrac: 0.15,
		CallFrac: 0.35, SkipFrac: 0.05,
		DataKB: 64, HotDataKB: 16, HotDataFrac: 0.7, ColdDataFrac: 0.05,
		DepLoadFrac: 0.2, KernelFrac: 0.1,
	})
}

func TestRoundTripExact(t *testing.T) {
	p := testProgram()
	var buf bytes.Buffer
	n, err := Capture(p, 3, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty capture")
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	inv := p.NewInvocation(3)
	i := 0
	for {
		want, okW := inv.Next()
		got, okR := r.Next()
		if okW != okR {
			t.Fatalf("length mismatch at %d: walker %v, trace %v", i, okW, okR)
		}
		if !okW {
			break
		}
		if got != want {
			t.Fatalf("instr %d differs:\n got %+v\nwant %+v", i, got, want)
		}
		i++
	}
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if r.Count() != n {
		t.Errorf("counts differ: %d vs %d", r.Count(), n)
	}
}

func TestCompression(t *testing.T) {
	p := testProgram()
	var buf bytes.Buffer
	n, err := Capture(p, 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	perInstr := float64(buf.Len()) / float64(n)
	if perInstr > 5 {
		t.Errorf("%.2f bytes/instruction; delta encoding broken", perInstr)
	}
	if perInstr < 1 {
		t.Errorf("%.2f bytes/instruction is impossibly small", perInstr)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(strings.NewReader("LW")); err == nil {
		t.Error("short header accepted")
	}
}

func TestTruncatedStreamReportsError(t *testing.T) {
	p := testProgram()
	var buf bytes.Buffer
	if _, err := Capture(p, 1, &buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Error("truncated stream ended without error")
	}
	// After the failure, Next stays terminated.
	if _, ok := r.Next(); ok {
		t.Error("reader resumed after error")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Write(program.Instr{}); err == nil {
		t.Error("write after close succeeded")
	}
}

// TestRoundTripProperty round-trips arbitrary instruction sequences.
func TestRoundTripProperty(t *testing.T) {
	at := func(sl []uint32, i int) uint64 {
		if len(sl) == 0 {
			return 0
		}
		return uint64(sl[i%len(sl)])
	}
	opAt := func(sl []uint8, i int) program.Op {
		if len(sl) == 0 {
			return program.OpPlain
		}
		return program.Op(sl[i%len(sl)] % 4)
	}
	f := func(vaddrs []uint32, mems []uint32, ops []uint8) bool {
		var ins []program.Instr
		for i, va := range vaddrs {
			in := program.Instr{VAddr: uint64(va), Op: opAt(ops, i)}
			switch in.Op {
			case program.OpLoad, program.OpStore:
				in.MemAddr = at(mems, i)
				in.DepLoad = in.Op == program.OpLoad && i%3 == 0
			case program.OpBranch:
				in.Cond = i%2 == 0
				in.Taken = i%3 != 0
				if in.Taken {
					in.Target = uint64(va) ^ 0xF00
					in.Indirect = i%5 == 0
				}
			}
			ins = append(ins, in)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, in := range ins {
			if err := w.Write(in); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range ins {
			got, ok := r.Next()
			if !ok || got != ins[i] {
				t.Logf("mismatch at %d: %+v vs %+v", i, got, ins[i])
				return false
			}
		}
		_, ok := r.Next()
		return !ok && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReplayThroughCoreMatchesDirectRun(t *testing.T) {
	w, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Capture(w.Program, 0, &buf); err != nil {
		t.Fatal(err)
	}

	run := func(src cpu.InstrSource) cpu.RunResult {
		c := cpu.NewCore(cpu.SkylakeConfig())
		c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
		c.FlushMicroarch()
		return c.RunInvocation(src)
	}
	direct := run(w.Program.NewInvocation(0))
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := run(r)
	if direct.Cycles != replayed.Cycles || direct.Instrs != replayed.Instrs {
		t.Errorf("trace replay diverges: %d/%d vs %d/%d cycles/instrs",
			replayed.Cycles, replayed.Instrs, direct.Cycles, direct.Instrs)
	}
}

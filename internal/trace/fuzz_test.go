package trace

import (
	"bytes"
	"testing"

	"lukewarm/internal/program"
)

// fuzzSeedStream builds a small valid trace covering every record shape:
// plain instructions, loads, stores, dependent loads, conditional and
// indirect branches, and large-but-canonical address deltas.
func fuzzSeedStream(t testing.TB) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	instrs := []program.Instr{
		{VAddr: 0x400000, Op: program.OpPlain},
		{VAddr: 0x400004, Op: program.OpLoad, MemAddr: 0x2000_0000},
		{VAddr: 0x400008, Op: program.OpStore, MemAddr: 0x2000_0040},
		{VAddr: 0x40000c, Op: program.OpLoad, MemAddr: 0x4000_0000, DepLoad: true},
		{VAddr: 0x400010, Op: program.OpBranch, Taken: true, Cond: true, Target: 0x400100},
		{VAddr: 0x400100, Op: program.OpBranch, Indirect: true, Taken: true, Target: 0x7000_0000_0000},
		{VAddr: 0x7000_0000_0004, Op: program.OpPlain},
		{VAddr: 0x400104, Op: program.OpBranch, Cond: true, Target: 0x400200},
	}
	for _, in := range instrs {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceRead asserts the decoder is total: for any input bytes, Read
// either returns instructions whose addresses are all canonical or a typed
// error — never a panic, never unbounded allocation.
func FuzzTraceRead(f *testing.F) {
	valid := fuzzSeedStream(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("LWT1"))                     // header only, no end marker
	f.Add([]byte("LWT0\x40"))                 // bad magic
	f.Add(valid[:len(valid)/2])               // truncated mid-stream
	f.Add(append([]byte("LWT1"), 0x80))       // reserved flag bit
	f.Add(append([]byte("LWT1"), 0x41))       // end marker with extra bits
	f.Add(append([]byte("LWT1"), 0x00, 0xff)) // varint cut short
	f.Add(append([]byte("LWT1"),              // absurd vaddr delta (2^63)
		0x00, 0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x40))
	corrupted := append([]byte(nil), valid...)
	corrupted[9] ^= 0x55
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		instrs, err := Read(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		for i, in := range instrs {
			if in.VAddr >= maxCanonicalAddr || in.MemAddr >= maxCanonicalAddr || in.Target >= maxCanonicalAddr {
				t.Fatalf("instr %d has non-canonical address: %+v", i, in)
			}
		}
	})
}

// TestReadRoundTrip pins the happy path: the seed stream decodes exactly.
func TestReadRoundTrip(t *testing.T) {
	data := fuzzSeedStream(t)
	instrs, err := Read(bytes.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(instrs) != 8 {
		t.Fatalf("decoded %d instructions, want 8", len(instrs))
	}
	if instrs[5].Target != 0x7000_0000_0000 || !instrs[5].Indirect {
		t.Fatalf("instr 5 mismatch: %+v", instrs[5])
	}
}

// TestReadRejectsMalformed pins typed-error behavior for the classic
// corruptions.
func TestReadRejectsMalformed(t *testing.T) {
	valid := fuzzSeedStream(t)
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      []byte("XXXX\x40"),
		"truncated":      valid[:len(valid)-3],
		"reserved bit":   append([]byte("LWT1"), 0x80),
		"dirty end":      append([]byte("LWT1"), 0x43),
		"huge delta":     append([]byte("LWT1"), 0x00, 0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x40),
		"varint overrun": append([]byte("LWT1"), 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data), 0); err == nil {
			t.Errorf("%s: expected error, got clean decode", name)
		}
	}
}

// TestReadLimit verifies the allocation bound.
func TestReadLimit(t *testing.T) {
	data := fuzzSeedStream(t)
	if _, err := Read(bytes.NewReader(data), 3); err == nil {
		t.Fatal("expected limit error for 8-instruction stream with limit 3")
	}
}

package predict

import "lukewarm/internal/cfgerr"

// Mech selects which warm-up mechanism a pre-warm runs for a function.
type Mech uint8

const (
	// MechAuto runs every mechanism the instance has attached (REAP's page
	// restore first, then Jukebox's region replay — the InvokeOn order).
	MechAuto Mech = iota
	// MechJukebox pre-runs only the Jukebox metadata replay.
	MechJukebox
	// MechReap pre-runs only the REAP manifest restore.
	MechReap
)

// String names the mechanism for tables and variant tags.
func (m Mech) String() string {
	switch m {
	case MechJukebox:
		return "jukebox"
	case MechReap:
		return "reap"
	}
	return "auto"
}

// DefaultLeadMs is the default pre-warm lead: fire the replay this many
// milliseconds before the predicted arrival.
const DefaultLeadMs = 4

// Config arms a traffic simulation with predictive pre-warming.
type Config struct {
	// Forecaster predicts each function's next arrival. Required.
	Forecaster Forecaster
	// LeadMs fires the pre-warm this many milliseconds before the predicted
	// arrival: large enough that the replay completes before dispatch,
	// small enough that ambient interleaving has not re-thrashed the
	// installed state. Zero selects DefaultLeadMs.
	LeadMs float64
	// FreshnessMs bounds how stale a fired pre-warm may be and still count
	// as used: an arrival later than LeadMs+FreshnessMs past the pre-warm
	// point finds the warmth decayed and pays a full dispatch replay (the
	// pre-warm is charged as wasted). Zero selects 2*LeadMs, making the
	// used window symmetric around the predicted arrival.
	FreshnessMs float64
	// MinConfidence gates scheduling: predictions below it are observed but
	// never acted on. Zero selects 0.05; set negative to act on every
	// prediction.
	MinConfidence float64
	// MechFor selects the mechanism pre-warmed per function; nil selects
	// MechAuto for every function.
	MechFor func(fn string) Mech
	// Budget, when non-nil, is the fleet-level pre-warm allowance shared by
	// every node's simulation — hedged or retried traffic judged on two
	// nodes must not pre-warm (and charge) twice.
	Budget *Budget
}

// Validate reports whether the configuration is realizable. Errors wrap
// cfgerr.ErrBadConfig.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	switch {
	case c.Forecaster == nil:
		return cfgerr.New("predict: Config.Forecaster is required")
	case c.LeadMs < 0:
		return cfgerr.New("predict: negative LeadMs %g", c.LeadMs)
	case c.FreshnessMs < 0:
		return cfgerr.New("predict: negative FreshnessMs %g", c.FreshnessMs)
	case c.MinConfidence > 1:
		return cfgerr.New("predict: MinConfidence %g above 1 can never schedule", c.MinConfidence)
	}
	return nil
}

// leadMs resolves the effective lead.
func (c *Config) leadMs() float64 {
	if c.LeadMs > 0 {
		return c.LeadMs
	}
	return DefaultLeadMs
}

// freshnessMs resolves the effective staleness bound.
func (c *Config) freshnessMs() float64 {
	if c.FreshnessMs > 0 {
		return c.FreshnessMs
	}
	return 2 * c.leadMs()
}

// minConfidence resolves the scheduling gate.
func (c *Config) minConfidence() float64 {
	if c.MinConfidence > 0 {
		return c.MinConfidence
	}
	if c.MinConfidence < 0 {
		return 0
	}
	return 0.05
}

// Mech resolves the mechanism choice for fn.
func (c *Config) Mech(fn string) Mech {
	if c.MechFor == nil {
		return MechAuto
	}
	return c.MechFor(fn)
}

// Verdict classifies one judged idle gap's pre-warm.
type Verdict uint8

const (
	// VerdictNone: no pre-warm was scheduled for the gap (no prediction,
	// confidence below the gate, the mechanism had nothing sealed to
	// replay, or the budget denied it).
	VerdictNone Verdict = iota
	// VerdictUsed: the pre-warm fired before the arrival and the arrival
	// came within the freshness window — the invocation skips its replay.
	VerdictUsed
	// VerdictPartial: the function arrived before the scheduled pre-warm
	// fired; the in-flight replay folds into the dispatch replay (partial
	// warmth, half the replay volume charged).
	VerdictPartial
	// VerdictWasted: the function arrived so long after the pre-warm fired
	// that the installed warmth decayed (or never arrived at all); the full
	// replay volume and engine occupancy were spent for nothing.
	VerdictWasted
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictUsed:
		return "used"
	case VerdictPartial:
		return "partial"
	case VerdictWasted:
		return "wasted"
	}
	return "none"
}

// Charge describes what one pre-warm of a function would cost if wasted: the
// full replay prefetch volume and the replay-engine occupancy.
type Charge struct {
	// Bytes is the full-replay prefetch volume estimate.
	Bytes uint64
	// BusyMs is the replay-engine occupancy estimate in milliseconds.
	BusyMs float64
}

// Outcome is the Prewarmer's judgment of one idle gap.
type Outcome struct {
	// Verdict classifies the gap's pre-warm (see Verdict).
	Verdict Verdict
	// HavePred reports a prediction existed for the gap (error accounting
	// ran even when no pre-warm was scheduled).
	HavePred bool
	// PredIATms is the predicted gap, valid when HavePred.
	PredIATms float64
	// AbsErrMs is |predicted - observed|, valid when HavePred.
	AbsErrMs float64
	// FireMs is the pre-warm point as an offset from the last completion
	// (max(0, predicted - lead)), valid when a pre-warm was scheduled. For
	// VerdictUsed the caller replays the mechanism at this point in the gap
	// and commits the actual cost via CommitUsed.
	FireMs float64
}

// Ledger is the pre-warm conservation ledger faults.AuditPredict checks:
// every scheduled pre-warm lands in exactly one of used, partial or wasted,
// and every used pre-warm corresponds to one invocation that skipped its
// replay phase.
type Ledger struct {
	// Scheduled counts pre-warms committed: Scheduled == Used + Partial +
	// Wasted.
	Scheduled int
	// Used counts pre-warms whose warmth the next invocation consumed.
	Used int
	// Partial counts pre-warms overtaken by an early arrival.
	Partial int
	// Wasted counts pre-warms whose warmth decayed unused; Expired is the
	// subset whose function never arrived again before the run ended.
	Wasted  int
	Expired int
	// ReplaySkips counts invocations that skipped their dispatch replay
	// because a used pre-warm had already run it (== Used).
	ReplaySkips int
	// BudgetDenied counts pre-warms the shared fleet budget refused; they
	// are not Scheduled.
	BudgetDenied int
	// Judged counts idle gaps judged with a prediction in hand; AbsErrMsSum
	// accumulates |predicted - observed| over them.
	Judged      int
	AbsErrMsSum float64
	// UsedReplayBytes is the prefetch volume of used pre-warms;
	// PartialReplayBytes the half-volume charged to overtaken pre-warms;
	// WastedReplayBytes the full volume of wasted ones.
	UsedReplayBytes    uint64
	PartialReplayBytes uint64
	WastedReplayBytes  uint64
	// PrewarmBusyMs accumulates replay-engine occupancy spent on pre-warms
	// (used and wasted alike) — the occupied-instance cost of speculation.
	PrewarmBusyMs float64
}

// MeanAbsErrMs reports the mean absolute prediction error over judged gaps.
func (l Ledger) MeanAbsErrMs() float64 {
	if l.Judged == 0 {
		return 0
	}
	return l.AbsErrMsSum / float64(l.Judged)
}

// WastedFraction reports wasted / scheduled pre-warms, the headline
// misprediction metric.
func (l Ledger) WastedFraction() float64 {
	if l.Scheduled == 0 {
		return 0
	}
	return float64(l.Wasted) / float64(l.Scheduled)
}

// Add accumulates o into l (fleet-level aggregation).
func (l *Ledger) Add(o Ledger) {
	l.Scheduled += o.Scheduled
	l.Used += o.Used
	l.Partial += o.Partial
	l.Wasted += o.Wasted
	l.Expired += o.Expired
	l.ReplaySkips += o.ReplaySkips
	l.BudgetDenied += o.BudgetDenied
	l.Judged += o.Judged
	l.AbsErrMsSum += o.AbsErrMsSum
	l.UsedReplayBytes += o.UsedReplayBytes
	l.PartialReplayBytes += o.PartialReplayBytes
	l.WastedReplayBytes += o.WastedReplayBytes
	l.PrewarmBusyMs += o.PrewarmBusyMs
}

// Prewarmer drives the readiness ladder for one traffic simulation. The
// traffic engine owns the event loop, so judgment is lazy: at each arrival
// the Prewarmer reconstructs the decision that was made at the previous
// completion — predict the gap, schedule the replay LeadMs early, fire it —
// and classifies how that pre-warm fared against the observed gap. Calls
// arrive in deterministic dispatch order; the Prewarmer draws no randomness.
type Prewarmer struct {
	cfg    *Config
	Ledger Ledger
}

// NewPrewarmer builds a Prewarmer over a validated Config.
func NewPrewarmer(cfg *Config) *Prewarmer { return &Prewarmer{cfg: cfg} }

// Config exposes the configuration in effect.
func (p *Prewarmer) Config() *Config { return p.cfg }

// Judge classifies the pre-warm of one idle gap of fn ending at absolute
// time atMs. armed reports whether the function's mechanism had sealed state
// to replay (an unarmed function is observed but never scheduled); charge is
// what a wasted pre-warm of it costs. Partial and wasted verdicts are
// charged to the ledger here; a VerdictUsed outcome is provisional until the
// caller replays the mechanism at FireMs and calls CommitUsed with the
// actual cost.
func (p *Prewarmer) Judge(fn string, idleMs, atMs float64, armed bool, charge Charge) Outcome {
	f := p.cfg.Forecaster
	if pk, ok := f.(schedulePeeker); ok {
		// The oracle reads the true schedule, which for the gap being
		// judged is exactly the observed gap.
		pk.SetNext(fn, idleMs)
	}
	pred, ok := f.Predict(fn)
	f.Observe(fn, idleMs)
	if !ok {
		return Outcome{}
	}
	out := Outcome{HavePred: true, PredIATms: pred.IATms}
	out.AbsErrMs = pred.IATms - idleMs
	if out.AbsErrMs < 0 {
		out.AbsErrMs = -out.AbsErrMs
	}
	p.Ledger.Judged++
	p.Ledger.AbsErrMsSum += out.AbsErrMs
	if !armed || pred.Confidence < p.cfg.minConfidence() {
		return out
	}
	fire := pred.IATms - p.cfg.leadMs()
	if fire < 0 {
		fire = 0
	}
	// The pre-warm would fire at (completion + fire); charge it against the
	// fleet budget at that absolute time.
	if !p.cfg.Budget.Allow(fn, atMs-idleMs+fire) {
		p.Ledger.BudgetDenied++
		return out
	}
	out.FireMs = fire
	switch {
	case idleMs < fire:
		// The function came back before the scheduled replay ran: the
		// in-flight pre-warm folds into the dispatch replay (partial
		// warmth), costing half its volume in speculative traffic.
		out.Verdict = VerdictPartial
		p.Ledger.Scheduled++
		p.Ledger.Partial++
		p.Ledger.PartialReplayBytes += charge.Bytes / 2
	case idleMs <= fire+p.cfg.freshnessMs():
		// Fired before the arrival and still fresh: the caller replays at
		// FireMs and commits the actual cost.
		out.Verdict = VerdictUsed
	default:
		// Fired so early the warmth decayed before the arrival: full waste.
		out.Verdict = VerdictWasted
		p.Ledger.Scheduled++
		p.Ledger.Wasted++
		p.Ledger.WastedReplayBytes += charge.Bytes
		p.Ledger.PrewarmBusyMs += charge.BusyMs
	}
	return out
}

// CommitUsed settles a VerdictUsed judgment after the caller ran the
// pre-warm: ran reports whether a replay actually issued (a degraded
// mechanism may refuse), bytes and busyMs its actual cost. When ran is
// false, nothing was installed and nothing is charged — the pre-warm is not
// Scheduled and the invocation must run its own replay.
func (p *Prewarmer) CommitUsed(ran bool, bytes uint64, busyMs float64) {
	if !ran {
		return
	}
	p.Ledger.Scheduled++
	p.Ledger.Used++
	p.Ledger.ReplaySkips++
	p.Ledger.UsedReplayBytes += bytes
	p.Ledger.PrewarmBusyMs += busyMs
}

// Expire settles the pre-warm pending after fn's last completion (at
// absolute time lastDoneMs) when the run ends with no further arrival: the
// forecaster would have scheduled it, nothing ever consumed it. armed and
// charge mirror Judge's parameters. The oracle never expires — with no
// schedule left to peek it predicts nothing.
func (p *Prewarmer) Expire(fn string, lastDoneMs float64, armed bool, charge Charge) {
	pred, ok := p.cfg.Forecaster.Predict(fn)
	if !ok || !armed || pred.Confidence < p.cfg.minConfidence() {
		return
	}
	fire := pred.IATms - p.cfg.leadMs()
	if fire < 0 {
		fire = 0
	}
	if !p.cfg.Budget.Allow(fn, lastDoneMs+fire) {
		p.Ledger.BudgetDenied++
		return
	}
	p.Ledger.Scheduled++
	p.Ledger.Wasted++
	p.Ledger.Expired++
	p.Ledger.WastedReplayBytes += charge.Bytes
	p.Ledger.PrewarmBusyMs += charge.BusyMs
}

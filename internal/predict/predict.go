// Package predict implements learned pre-warm orchestration: forecasting
// each function's next arrival from its inter-arrival-time (IAT) history and
// running the instance's Jukebox/REAP replay just ahead of the predicted
// arrival, so the invocation starts microarchitecturally warm instead of
// paying the replay inside its own critical path.
//
// The package follows SPES's framing (see PAPERS.md): the warm-up mechanisms
// of the source paper repay the lukewarm tax *after* dispatch; the remaining
// win is to provision instances into graduated readiness states *before*
// dispatch, exploiting the per-function IAT structure Shahrad et al.
// (ATC'20) showed is highly predictable for most functions. The readiness
// ladder is
//
//	Cold → Resident → Prewarmed → Executing
//
// where Prewarmed means the replay already executed (Jukebox metadata
// replay, REAP manifest restore, or both) and the next InvocationStart skips
// it. Mispredictions are charged to an explicit ledger: an arrival before
// the scheduled pre-warm fires gets only partial warmth (the in-flight
// replay folds into the dispatch replay), an arrival long after it — or
// never — pays the full replay bytes and replay-engine occupancy for
// nothing. faults.AuditPredict enforces the ledger's conservation
// invariants.
//
// Three forecasters are provided: HistogramPeak (the modal next gap of a
// per-function log-scale IAT histogram, sharing sched.IATHistogram with the
// HybridHistogram keep-alive policy), EWMA (exponentially weighted next
// gap), and Oracle (peeks at the true schedule; the upper bound). All emit a
// predicted gap plus a confidence in [0, 1].
package predict

import "lukewarm/internal/sched"

// Prediction is a forecaster's estimate of one function's next idle gap.
type Prediction struct {
	// IATms is the predicted gap from the last completion to the next
	// arrival, in milliseconds.
	IATms float64
	// Confidence grades the prediction in [0, 1]; the Prewarmer only
	// schedules a pre-warm when it reaches Config.MinConfidence.
	Confidence float64
}

// Forecaster predicts per-function next arrivals. Implementations learn
// online: the traffic engine calls Observe with every judged idle gap in
// deterministic dispatch order, and Predict before the observation so the
// prediction never sees the gap it is judged against. Forecasters are
// stateful and must not be shared between concurrent runs.
type Forecaster interface {
	// Name labels the forecaster in tables and variant tags.
	Name() string
	// Predict estimates fn's next idle gap. ok is false while the
	// forecaster has no usable model for fn (no pre-warm is scheduled).
	Predict(fn string) (p Prediction, ok bool)
	// Observe folds one completed idle gap into fn's model.
	Observe(fn string, idleMs float64)
}

// HistogramPeak defaults.
const (
	// DefaultMinSamples gates predictions until a function has shown this
	// many gaps (matching the HybridHistogram policy's trust threshold).
	DefaultMinSamples = 4
	// DefaultModeWindow is the ±bin window around the modal IAT bin whose
	// observation mass becomes the confidence. Four 8-per-octave bins each
	// side spans roughly 0.7x–1.4x of the modal gap.
	DefaultModeWindow = 4
)

// histogramPeak predicts the modal gap of a per-function log-scale IAT
// histogram.
type histogramPeak struct {
	minSamples int
	window     int
	hists      map[string]*sched.IATHistogram
}

// HistogramPeak returns the histogram-mode forecaster: the predicted next
// gap is the most-populated bin of the function's IAT histogram (the same
// log-scale geometry the HybridHistogram keep-alive policy learns from), and
// the confidence is the fraction of observed gaps within ±window bins of the
// mode. minSamples and window fall back to DefaultMinSamples and
// DefaultModeWindow when non-positive.
func HistogramPeak(minSamples, window int) Forecaster {
	if minSamples <= 0 {
		minSamples = DefaultMinSamples
	}
	if window <= 0 {
		window = DefaultModeWindow
	}
	return &histogramPeak{minSamples: minSamples, window: window,
		hists: map[string]*sched.IATHistogram{}}
}

func (*histogramPeak) Name() string { return "histpeak" }

func (f *histogramPeak) Predict(fn string) (Prediction, bool) {
	h := f.hists[fn]
	if h == nil || h.N() < f.minSamples {
		return Prediction{}, false
	}
	ms, mass := h.Mode(f.window)
	return Prediction{IATms: ms, Confidence: mass}, true
}

func (f *histogramPeak) Observe(fn string, idleMs float64) {
	h := f.hists[fn]
	if h == nil {
		h = &sched.IATHistogram{}
		f.hists[fn] = h
	}
	h.Add(idleMs)
}

// DefaultEWMAAlpha is the smoothing factor balancing burst tracking against
// lull resistance.
const DefaultEWMAAlpha = 0.3

// ewmaState is one function's running estimate.
type ewmaState struct {
	mean   float64 // EWMA of observed gaps
	absErr float64 // EWMA of |observed - predicted|
	n      int
}

// ewma predicts an exponentially weighted moving average of the gaps.
type ewma struct {
	alpha float64
	state map[string]*ewmaState
}

// EWMA returns the exponentially-weighted-moving-average forecaster: the
// predicted next gap is the EWMA of observed gaps, and the confidence is
// 1 - (EWMA of absolute prediction error)/mean, clamped to [0, 1] — a
// forecaster that has been persistently wrong stops scheduling pre-warms.
// alpha falls back to DefaultEWMAAlpha when out of (0, 1].
func EWMA(alpha float64) Forecaster {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	return &ewma{alpha: alpha, state: map[string]*ewmaState{}}
}

func (*ewma) Name() string { return "ewma" }

func (f *ewma) Predict(fn string) (Prediction, bool) {
	st := f.state[fn]
	if st == nil || st.n < 2 {
		return Prediction{}, false
	}
	conf := 0.0
	if st.mean > 0 {
		conf = 1 - st.absErr/st.mean
		if conf < 0 {
			conf = 0
		}
	}
	return Prediction{IATms: st.mean, Confidence: conf}, true
}

func (f *ewma) Observe(fn string, idleMs float64) {
	st := f.state[fn]
	if st == nil {
		st = &ewmaState{}
		f.state[fn] = st
	}
	if st.n == 0 {
		st.mean = idleMs
	} else {
		err := idleMs - st.mean
		if err < 0 {
			err = -err
		}
		if st.n == 1 {
			st.absErr = err
		} else {
			st.absErr = f.alpha*err + (1-f.alpha)*st.absErr
		}
		st.mean = f.alpha*idleMs + (1-f.alpha)*st.mean
	}
	st.n++
}

// oracle predicts the true schedule: the traffic engine peeks each gap into
// it (SetNext) immediately before Predict, so its prediction is exact. It is
// the forecaster upper bound — on a deterministic schedule it never records
// a miss, and the residual gap to the warm reference is the part of the
// lukewarm tax prediction cannot repay.
type oracle struct {
	next map[string]float64
}

// Oracle returns the schedule-peeking forecaster.
func Oracle() Forecaster { return &oracle{next: map[string]float64{}} }

func (*oracle) Name() string { return "oracle" }

// SetNext implements the schedulePeeker seam the Prewarmer feeds the true
// next gap through.
func (f *oracle) SetNext(fn string, iatMs float64) { f.next[fn] = iatMs }

func (f *oracle) Predict(fn string) (Prediction, bool) {
	ms, ok := f.next[fn]
	if !ok {
		// Not peeked (e.g. the end-of-run expiry sweep): the oracle never
		// guesses, so it never schedules a pre-warm it cannot place.
		return Prediction{}, false
	}
	delete(f.next, fn)
	return Prediction{IATms: ms, Confidence: 1}, true
}

func (*oracle) Observe(string, float64) {}

// schedulePeeker is the seam through which the Prewarmer hands the oracle
// the true gap it is about to judge.
type schedulePeeker interface {
	SetNext(fn string, iatMs float64)
}

// NewForecaster builds a fresh forecaster by name ("histpeak", "ewma",
// "oracle") with default parameters, for experiment variant tags. Unknown
// names return nil.
func NewForecaster(name string) Forecaster {
	switch name {
	case "histpeak":
		return HistogramPeak(0, 0)
	case "ewma":
		return EWMA(0)
	case "oracle":
		return Oracle()
	}
	return nil
}

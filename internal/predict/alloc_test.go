package predict

import "testing"

// TestForecasterSteadyStateAllocs pins the learned forecasters' hot loop at
// zero steady-state allocations. The first Observe for a function allocates
// its per-function model (histogram or EWMA state); every Predict+Observe
// after that runs once per judged idle gap across the whole fleet sweep, so
// a single surviving allocation here multiplies by millions of dispatches.
func TestForecasterSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Forecaster
	}{
		{"histpeak", HistogramPeak(0, 0)},
		{"ewma", EWMA(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 16; i++ {
				tc.f.Observe("Auth-G", 100+float64(i%3))
			}
			i := 0
			avg := testing.AllocsPerRun(32, func() {
				if _, ok := tc.f.Predict("Auth-G"); !ok {
					t.Fatal("forecaster has no model after warm-up")
				}
				tc.f.Observe("Auth-G", 100+float64(i%3))
				i++
			})
			if avg != 0 {
				t.Fatalf("steady-state Predict+Observe allocates %.2f objects/run, want 0", avg)
			}
		})
	}
}

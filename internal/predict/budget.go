package predict

// Budget is a fleet-level pre-warm allowance shared across every node's
// traffic simulation: a total cap on scheduled pre-warms plus a per-function
// refractory window, so hedged or retried traffic judged on two nodes never
// double-pre-warms the same function arrival. A nil *Budget allows
// everything. Budgets are consulted in deterministic dispatch order and are
// not safe for concurrent use.
type Budget struct {
	total        int
	refractoryMs float64
	granted      int
	last         map[string]float64
}

// NewBudget builds a shared allowance. total caps scheduled pre-warms
// fleet-wide (0 = unlimited); refractoryMs is the minimum spacing between
// granted pre-warms of the same function anywhere in the fleet (0 = none).
func NewBudget(total int, refractoryMs float64) *Budget {
	return &Budget{total: total, refractoryMs: refractoryMs, last: map[string]float64{}}
}

// Allow reports whether a pre-warm of fn firing at absolute time atMs may be
// scheduled, and records it when granted.
func (b *Budget) Allow(fn string, atMs float64) bool {
	if b == nil {
		return true
	}
	if b.total > 0 && b.granted >= b.total {
		return false
	}
	if b.refractoryMs > 0 {
		if last, ok := b.last[fn]; ok {
			d := atMs - last
			if d < 0 {
				d = -d
			}
			if d < b.refractoryMs {
				return false
			}
		}
	}
	b.granted++
	b.last[fn] = atMs
	return true
}

// Granted reports how many pre-warms the budget has admitted.
func (b *Budget) Granted() int {
	if b == nil {
		return 0
	}
	return b.granted
}

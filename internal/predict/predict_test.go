package predict

import (
	"math"
	"testing"

	"lukewarm/internal/sched"
)

func TestHistogramPeakLearnsPeriodicFunction(t *testing.T) {
	f := HistogramPeak(0, 0)
	if _, ok := f.Predict("a"); ok {
		t.Fatal("predicted with no observations")
	}
	for i := 0; i < 3; i++ {
		f.Observe("a", 64)
	}
	if _, ok := f.Predict("a"); ok {
		t.Fatal("predicted below MinSamples")
	}
	f.Observe("a", 64)
	p, ok := f.Predict("a")
	if !ok {
		t.Fatal("no prediction after MinSamples observations")
	}
	if p.IATms < 58 || p.IATms > 72 {
		t.Errorf("predicted %g ms, want ~64 within bin resolution", p.IATms)
	}
	if p.Confidence != 1 {
		t.Errorf("confidence %g on a perfectly periodic function, want 1", p.Confidence)
	}
	// Per-function isolation: function b is still unlearned.
	if _, ok := f.Predict("b"); ok {
		t.Error("prediction leaked across functions")
	}
}

func TestHistogramPeakBurstyLocksOntoMode(t *testing.T) {
	f := HistogramPeak(0, 0)
	// 80/20 bursty mixture: short 8 ms intra-burst gaps, 300 ms lulls. The
	// mode-seeker must predict the short gap — the adversarial behavior the
	// prewarm sweep charges wasted replays to.
	for i := 0; i < 40; i++ {
		f.Observe("f", 8)
	}
	for i := 0; i < 10; i++ {
		f.Observe("f", 300)
	}
	p, ok := f.Predict("f")
	if !ok {
		t.Fatal("no prediction")
	}
	if p.IATms > 20 {
		t.Errorf("predicted %g ms, want the ~8 ms burst mode", p.IATms)
	}
	if p.Confidence < 0.7 || p.Confidence > 0.9 {
		t.Errorf("confidence %g, want ~0.8 (the burst mass)", p.Confidence)
	}
}

func TestEWMATracksAndGrades(t *testing.T) {
	f := EWMA(0)
	if _, ok := f.Predict("a"); ok {
		t.Fatal("predicted with no observations")
	}
	f.Observe("a", 100)
	if _, ok := f.Predict("a"); ok {
		t.Fatal("predicted from a single observation")
	}
	for i := 0; i < 20; i++ {
		f.Observe("a", 100)
	}
	p, ok := f.Predict("a")
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(p.IATms-100) > 1e-9 {
		t.Errorf("steady stream predicted %g, want 100", p.IATms)
	}
	if p.Confidence < 0.95 {
		t.Errorf("steady-stream confidence %g, want ~1", p.Confidence)
	}
	// A wildly alternating stream must erode confidence.
	g := EWMA(0)
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			g.Observe("b", 1)
		} else {
			g.Observe("b", 400)
		}
	}
	q, ok := g.Predict("b")
	if !ok {
		t.Fatal("no prediction for alternating stream")
	}
	if q.Confidence > 0.5 {
		t.Errorf("alternating-stream confidence %g, want low", q.Confidence)
	}
}

func TestOraclePeeksExactly(t *testing.T) {
	f := Oracle()
	if _, ok := f.Predict("a"); ok {
		t.Fatal("oracle predicted without a peek")
	}
	f.(*oracle).SetNext("a", 123)
	p, ok := f.Predict("a")
	if !ok || p.IATms != 123 || p.Confidence != 1 {
		t.Fatalf("peeked prediction = %+v, %v; want 123 ms at confidence 1", p, ok)
	}
	// The peek is consumed: a second predict (the expiry sweep) sees nothing.
	if _, ok := f.Predict("a"); ok {
		t.Error("oracle predicted from a consumed peek")
	}
}

// judge runs one gap through a fresh single-function scenario.
func judgeGaps(t *testing.T, cfg *Config, gaps []float64, charge Charge) (*Prewarmer, []Outcome) {
	t.Helper()
	p := NewPrewarmer(cfg)
	at := 0.0
	outs := make([]Outcome, 0, len(gaps))
	for _, g := range gaps {
		at += g
		o := p.Judge("f", g, at, true, charge)
		if o.Verdict == VerdictUsed {
			p.CommitUsed(true, charge.Bytes, charge.BusyMs)
		}
		outs = append(outs, o)
	}
	return p, outs
}

func TestPrewarmerOracleAlwaysUsed(t *testing.T) {
	cfg := &Config{Forecaster: Oracle(), LeadMs: 4}
	gaps := []float64{1, 3, 64, 500, 0.5, 12}
	p, outs := judgeGaps(t, cfg, gaps, Charge{Bytes: 1000, BusyMs: 0.1})
	for i, o := range outs {
		if o.Verdict != VerdictUsed {
			t.Errorf("gap %d (%g ms): verdict %v, want used", i, gaps[i], o.Verdict)
		}
	}
	l := p.Ledger
	if l.Used != len(gaps) || l.Partial != 0 || l.Wasted != 0 {
		t.Errorf("oracle ledger %+v, want all %d used", l, len(gaps))
	}
	if l.AbsErrMsSum != 0 {
		t.Errorf("oracle AbsErrMsSum %g, want 0", l.AbsErrMsSum)
	}
	if l.ReplaySkips != l.Used {
		t.Errorf("ReplaySkips %d != Used %d", l.ReplaySkips, l.Used)
	}
	// Expiry sweep: the oracle has nothing peeked, so nothing expires.
	p.Expire("f", 1000, true, Charge{Bytes: 1000})
	if p.Ledger.Expired != 0 {
		t.Errorf("oracle expired %d pre-warms, want 0", p.Ledger.Expired)
	}
}

func TestPrewarmerVerdictPartition(t *testing.T) {
	// A constant-prediction forecaster via EWMA locked at 100 ms.
	f := EWMA(0.001)
	for i := 0; i < 50; i++ {
		f.Observe("f", 100)
	}
	cfg := &Config{Forecaster: f, LeadMs: 10, FreshnessMs: 20}
	p := NewPrewarmer(cfg)
	charge := Charge{Bytes: 4096, BusyMs: 0.5}
	// Fire point is ~90 ms. Early (50 ms) → partial; on time (100 ms) →
	// used; late (400 ms) → wasted.
	cases := []struct {
		gap  float64
		want Verdict
	}{{50, VerdictPartial}, {100, VerdictUsed}, {400, VerdictWasted}}
	at := 0.0
	for _, c := range cases {
		at += c.gap
		o := p.Judge("f", c.gap, at, true, charge)
		if o.Verdict != c.want {
			t.Errorf("gap %g ms: verdict %v, want %v (pred %g, fire %g)", c.gap, o.Verdict, c.want, o.PredIATms, o.FireMs)
		}
		if o.Verdict == VerdictUsed {
			p.CommitUsed(true, 2048, 0.25)
		}
	}
	l := p.Ledger
	if l.Scheduled != l.Used+l.Partial+l.Wasted {
		t.Errorf("partition broken: %+v", l)
	}
	if l.Scheduled != 3 || l.Used != 1 || l.Partial != 1 || l.Wasted != 1 {
		t.Errorf("ledger %+v, want 1 of each verdict", l)
	}
	if l.PartialReplayBytes != 2048 || l.WastedReplayBytes != 4096 || l.UsedReplayBytes != 2048 {
		t.Errorf("byte charges wrong: %+v", l)
	}
	// Unarmed judgment observes but never schedules.
	p2 := NewPrewarmer(&Config{Forecaster: Oracle()})
	if o := p2.Judge("g", 50, 50, false, charge); o.Verdict != VerdictNone {
		t.Errorf("unarmed judge scheduled: %+v", o)
	}
	if p2.Ledger.Scheduled != 0 || p2.Ledger.Judged != 1 {
		t.Errorf("unarmed ledger %+v", p2.Ledger)
	}
}

func TestPrewarmerCommitUsedNotRan(t *testing.T) {
	cfg := &Config{Forecaster: Oracle(), LeadMs: 4}
	p := NewPrewarmer(cfg)
	o := p.Judge("f", 64, 64, true, Charge{Bytes: 100})
	if o.Verdict != VerdictUsed {
		t.Fatalf("verdict %v", o.Verdict)
	}
	p.CommitUsed(false, 0, 0)
	if p.Ledger.Scheduled != 0 || p.Ledger.Used != 0 || p.Ledger.ReplaySkips != 0 {
		t.Errorf("refused pre-warm charged: %+v", p.Ledger)
	}
}

func TestPrewarmerExpiry(t *testing.T) {
	f := EWMA(0.5)
	for i := 0; i < 10; i++ {
		f.Observe("f", 80)
	}
	p := NewPrewarmer(&Config{Forecaster: f, LeadMs: 4})
	p.Expire("f", 800, true, Charge{Bytes: 640, BusyMs: 0.1})
	l := p.Ledger
	if l.Scheduled != 1 || l.Wasted != 1 || l.Expired != 1 {
		t.Errorf("expiry ledger %+v", l)
	}
	if l.WastedReplayBytes != 640 {
		t.Errorf("expiry bytes %d, want 640", l.WastedReplayBytes)
	}
}

func TestBudgetRefractoryAndCap(t *testing.T) {
	b := NewBudget(3, 50)
	if !b.Allow("f", 100) {
		t.Fatal("first grant denied")
	}
	if b.Allow("f", 120) {
		t.Error("grant inside the refractory window")
	}
	if !b.Allow("g", 120) {
		t.Error("other function denied by f's window")
	}
	if !b.Allow("f", 200) {
		t.Error("grant past the refractory window denied")
	}
	if b.Allow("h", 300) {
		t.Error("grant beyond the total cap")
	}
	if b.Granted() != 3 {
		t.Errorf("granted %d, want 3", b.Granted())
	}
	// nil budget allows everything.
	var nb *Budget
	if !nb.Allow("x", 0) {
		t.Error("nil budget denied")
	}
}

func TestPrewarmerBudgetDenial(t *testing.T) {
	cfg := &Config{Forecaster: Oracle(), LeadMs: 4, Budget: NewBudget(0, 1000)}
	p := NewPrewarmer(cfg)
	o := p.Judge("f", 64, 64, true, Charge{})
	if o.Verdict != VerdictUsed {
		t.Fatalf("first judgment %v", o.Verdict)
	}
	p.CommitUsed(true, 10, 0)
	// Second arrival 64 ms later: inside the 1 s refractory window.
	o = p.Judge("f", 64, 128, true, Charge{})
	if o.Verdict != VerdictNone {
		t.Errorf("refractory-denied judgment %v, want none", o.Verdict)
	}
	if p.Ledger.BudgetDenied != 1 {
		t.Errorf("BudgetDenied %d, want 1", p.Ledger.BudgetDenied)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (&Config{}).Validate(); err == nil {
		t.Error("nil forecaster accepted")
	}
	if err := (&Config{Forecaster: Oracle(), LeadMs: -1}).Validate(); err == nil {
		t.Error("negative lead accepted")
	}
	if err := (&Config{Forecaster: Oracle(), MinConfidence: 2}).Validate(); err == nil {
		t.Error("unreachable confidence gate accepted")
	}
	if err := (&Config{Forecaster: Oracle()}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config (predict disabled) rejected: %v", err)
	}
}

func TestNewForecaster(t *testing.T) {
	for _, name := range []string{"histpeak", "ewma", "oracle"} {
		f := NewForecaster(name)
		if f == nil || f.Name() != name {
			t.Errorf("NewForecaster(%q) = %v", name, f)
		}
	}
	if NewForecaster("nope") != nil {
		t.Error("unknown forecaster name built something")
	}
}

// BenchmarkForecast measures the per-arrival forecasting cost the dispatch
// path pays: one Observe plus one Predict against a learned model.
func BenchmarkForecast(b *testing.B) {
	gaps := sched.Shape{Kind: sched.Bursty, MeanIATms: 64}.Sequence(7, 1, 4096)
	for _, f := range []Forecaster{HistogramPeak(0, 0), EWMA(0)} {
		b.Run(f.Name(), func(b *testing.B) {
			for _, g := range gaps {
				f.Observe("f", g)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Observe("f", gaps[i%len(gaps)])
				if _, ok := f.Predict("f"); !ok {
					b.Fatal("no prediction")
				}
			}
		})
	}
}

package mem

import "testing"

func newTestHierarchy() *Hierarchy { return NewHierarchy(SkylakeHierarchy()) }

func TestHierarchyColdFetchGoesToMemory(t *testing.T) {
	h := newTestHierarchy()
	res := h.FetchInstr(0, 0x40_0000)
	if res.Level != LevelMem || !res.L2Miss {
		t.Fatalf("cold fetch: %+v", res)
	}
	cfg := h.Config()
	wantMin := cfg.L1I.HitLatency + cfg.L2.HitLatency + cfg.LLC.HitLatency + 1
	if res.Latency < wantMin {
		t.Errorf("latency = %d, want >= %d", res.Latency, wantMin)
	}
	// Second fetch of the same block: L1 hit.
	res = h.FetchInstr(500, 0x40_0000)
	if res.Level != LevelL1 || res.Latency != cfg.L1I.HitLatency {
		t.Errorf("warm fetch: %+v", res)
	}
}

func TestHierarchyFillsAllLevelsOnPath(t *testing.T) {
	h := newTestHierarchy()
	h.FetchInstr(0, 0x1000)
	if !h.L1I.Probe(0x1000) || !h.L2.Probe(0x1000) || !h.LLC.Probe(0x1000) {
		t.Error("demand fill did not populate the path")
	}
	if h.L1D.Probe(0x1000) {
		t.Error("instruction fetch leaked into L1D")
	}
}

func TestHierarchyL2HitAfterL1Evict(t *testing.T) {
	h := newTestHierarchy()
	h.FetchInstr(0, 0x1000)
	h.L1I.Flush()
	res := h.FetchInstr(100, 0x1000)
	if res.Level != LevelL2 || res.L2Miss {
		t.Fatalf("expected L2 hit: %+v", res)
	}
	cfg := h.Config()
	if res.Latency != cfg.L1I.HitLatency+cfg.L2.HitLatency {
		t.Errorf("latency = %d", res.Latency)
	}
}

func TestHierarchyLLCHitAfterL2Flush(t *testing.T) {
	h := newTestHierarchy()
	h.FetchInstr(0, 0x1000)
	h.L1I.Flush()
	h.L2.Flush()
	res := h.FetchInstr(100, 0x1000)
	if res.Level != LevelLLC || !res.L2Miss {
		t.Fatalf("expected LLC hit with L2Miss: %+v", res)
	}
	// The path is refilled.
	if !h.L1I.Probe(0x1000) || !h.L2.Probe(0x1000) {
		t.Error("LLC hit did not refill inner levels")
	}
}

func TestPerfectL1I(t *testing.T) {
	h := newTestHierarchy()
	h.PerfectL1I = true
	res := h.FetchInstr(0, 0xABCDEF00)
	if res.Level != LevelL1 || res.Latency != h.Config().L1I.HitLatency || res.L2Miss {
		t.Errorf("perfect I-cache fetch: %+v", res)
	}
	if h.DRAM.TotalBytes() != 0 {
		t.Errorf("perfect I-cache generated memory traffic")
	}
}

func TestDataAccessAndNextLinePrefetcher(t *testing.T) {
	h := newTestHierarchy()
	res := h.AccessData(0, 0x8000, false)
	if res.Level != LevelMem {
		t.Fatalf("cold data access: %+v", res)
	}
	// The next-line prefetcher should have pulled 0x8040 into L1D.
	if !h.L1D.Probe(0x8040) {
		t.Error("next-line prefetch missing")
	}
	// It is marked prefetched: first demand access counts PrefetchUsed.
	h.AccessData(1000, 0x8040, false)
	if h.L1D.Stats.PrefetchUsed[Data] != 1 {
		t.Errorf("PrefetchUsed = %d", h.L1D.Stats.PrefetchUsed[Data])
	}
}

func TestNextLinePrefetcherDisabled(t *testing.T) {
	cfg := SkylakeHierarchy()
	cfg.L1DNextLine = false
	h := NewHierarchy(cfg)
	h.AccessData(0, 0x8000, false)
	if h.L1D.Probe(0x8040) {
		t.Error("next-line prefetch fired while disabled")
	}
}

func TestPrefetchIntoL2(t *testing.T) {
	h := newTestHierarchy()
	ready := h.PrefetchIntoL2(0, 0x2000, TrafficPrefetch)
	if ready <= 0 {
		t.Fatalf("ready = %d", ready)
	}
	if !h.L2.Probe(0x2000) || !h.LLC.Probe(0x2000) {
		t.Error("prefetch did not fill L2/LLC")
	}
	if h.L1I.Probe(0x2000) {
		t.Error("L2 prefetch leaked into L1I")
	}
	if h.DRAM.Bytes(TrafficPrefetch) != LineSize {
		t.Errorf("prefetch traffic = %d", h.DRAM.Bytes(TrafficPrefetch))
	}
	// Demand fetch after the prefetch ready time hits in L2 as a covered miss.
	res := h.FetchInstr(ready+10, 0x2000)
	if res.Level != LevelL2 || !res.L2PrefetchHit {
		t.Errorf("covered fetch: %+v", res)
	}
	// Re-prefetching an L2-resident block is free.
	before := h.DRAM.TotalBytes()
	if got := h.PrefetchIntoL2(1000, 0x2000, TrafficPrefetch); got != 1000 {
		t.Errorf("resident prefetch ready = %d, want 1000", got)
	}
	if h.DRAM.TotalBytes() != before {
		t.Error("resident prefetch generated traffic")
	}
}

func TestPrefetchIntoL2FromLLC(t *testing.T) {
	h := newTestHierarchy()
	h.FetchInstr(0, 0x3000) // fills all levels
	h.L1I.Flush()
	h.L2.Flush()
	before := h.DRAM.TotalBytes()
	ready := h.PrefetchIntoL2(100, 0x3000, TrafficPrefetch)
	if want := Cycle(100) + h.Config().LLC.HitLatency; ready != want {
		t.Errorf("LLC-sourced prefetch ready = %d, want %d", ready, want)
	}
	if h.DRAM.TotalBytes() != before {
		t.Error("LLC-sourced prefetch touched DRAM")
	}
}

func TestPrefetchIntoL1I(t *testing.T) {
	h := newTestHierarchy()
	ready := h.PrefetchIntoL1I(0, 0x5000, TrafficPrefetch)
	if !h.L1I.Probe(0x5000) || !h.L2.Probe(0x5000) {
		t.Error("L1I prefetch did not fill path")
	}
	res := h.FetchInstr(ready+1, 0x5000)
	if res.Level != LevelL1 {
		t.Errorf("fetch after L1I prefetch: %+v", res)
	}
	// From L2.
	h.L1I.Flush()
	before := h.DRAM.TotalBytes()
	ready = h.PrefetchIntoL1I(1000, 0x5000, TrafficPrefetch)
	if want := Cycle(1000) + h.Config().L2.HitLatency; ready != want {
		t.Errorf("L2-sourced ready = %d, want %d", ready, want)
	}
	if h.DRAM.TotalBytes() != before {
		t.Error("L2-sourced L1I prefetch touched DRAM")
	}
	// Resident: no-op.
	if got := h.PrefetchIntoL1I(2000, 0x5000, TrafficPrefetch); got != 2000 {
		t.Errorf("resident ready = %d", got)
	}
	// From LLC.
	h.L1I.Flush()
	h.L2.Flush()
	ready = h.PrefetchIntoL1I(3000, 0x5000, TrafficPrefetch)
	if want := Cycle(3000) + h.Config().L2.HitLatency + h.Config().LLC.HitLatency; ready != want {
		t.Errorf("LLC-sourced ready = %d, want %d", ready, want)
	}
}

func TestFlushAllObliteratesState(t *testing.T) {
	h := newTestHierarchy()
	for i := uint64(0); i < 100; i++ {
		h.FetchInstr(Cycle(i), i*64)
		h.AccessData(Cycle(i), 0x100000+i*64, i%3 == 0)
	}
	h.FlushAll()
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2, h.LLC} {
		if c.CountValid() != 0 {
			t.Errorf("%s has %d valid lines after FlushAll", c.Config().Name, c.CountValid())
		}
	}
}

func TestThrashFraction(t *testing.T) {
	h := newTestHierarchy()
	for i := uint64(0); i < 400; i++ {
		h.FetchInstr(Cycle(i), i*64)
	}
	valid := h.L1I.CountValid() + h.L2.CountValid() + h.LLC.CountValid()
	var state uint64 = 1
	rng := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	h.ThrashFraction(0.9, rng)
	after := h.L1I.CountValid() + h.L2.CountValid() + h.LLC.CountValid()
	if after >= valid/2 {
		t.Errorf("thrash 0.9 left %d of %d lines", after, valid)
	}
}

func TestWritebackTrafficOnDirtyEvictions(t *testing.T) {
	// Tiny hierarchy to force LLC evictions quickly.
	cfg := HierarchyConfig{
		L1I:  Config{Name: "L1I", SizeBytes: 1 << 10, Ways: 2, HitLatency: 4},
		L1D:  Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, HitLatency: 4},
		L2:   Config{Name: "L2", SizeBytes: 2 << 10, Ways: 2, HitLatency: 12},
		LLC:  Config{Name: "LLC", SizeBytes: 4 << 10, Ways: 2, HitLatency: 30},
		DRAM: DefaultDRAMConfig(),
	}
	h := NewHierarchy(cfg)
	// Write a large footprint so dirty lines cascade out of the LLC.
	for i := uint64(0); i < 4096; i++ {
		h.AccessData(Cycle(i), i*64, true)
	}
	if h.DRAM.Bytes(TrafficWriteback) == 0 {
		t.Error("no writeback traffic observed")
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := newTestHierarchy()
	h.FetchInstr(0, 0x1000)
	h.ResetStats()
	if h.L1I.Stats.DemandAccesses[Instr] != 0 || h.DRAM.TotalBytes() != 0 {
		t.Error("ResetStats incomplete")
	}
	// Contents survive.
	if !h.L1I.Probe(0x1000) {
		t.Error("ResetStats destroyed contents")
	}
}

func TestDrainUnusedPrefetchesHierarchy(t *testing.T) {
	h := newTestHierarchy()
	h.PrefetchIntoL2(0, 0x9000, TrafficPrefetch)
	h.DrainUnusedPrefetches()
	if h.L2.Stats.PrefetchEvictedUnused[Instr] != 1 {
		t.Errorf("L2 unused prefetch not drained: %+v", h.L2.Stats)
	}
}

func TestConfigPresets(t *testing.T) {
	sky := SkylakeHierarchy()
	if sky.L2.SizeBytes != 1<<20 {
		t.Errorf("Skylake L2 = %d", sky.L2.SizeBytes)
	}
	bdw := BroadwellHierarchy()
	if bdw.L2.SizeBytes != 256<<10 {
		t.Errorf("Broadwell L2 = %d", bdw.L2.SizeBytes)
	}
	ch := CharacterizationHierarchy()
	if ch.LLC.SizeBytes != 16<<20 {
		t.Errorf("Characterization LLC = %d", ch.LLC.SizeBytes)
	}
	// All presets must construct cleanly.
	for _, cfg := range []HierarchyConfig{sky, bdw, ch} {
		NewHierarchy(cfg)
	}
}

package mem

import "testing"

func BenchmarkCacheAccessHit(b *testing.B) {
	c := NewCache(Config{Name: "b", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4})
	c.fill(0, 0x1000, Instr, false, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.access(Cycle(i), 0x1000, Instr, false)
	}
}

func BenchmarkCacheAccessMiss(b *testing.B) {
	c := NewCache(Config{Name: "b", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.access(Cycle(i), uint64(i)<<LineShift, Data, false)
	}
}

func BenchmarkCacheFillEvict(b *testing.B) {
	c := NewCache(Config{Name: "b", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.fill(Cycle(i), uint64(i)<<LineShift, Data, false, 0)
	}
}

func BenchmarkHierarchyFetchWarm(b *testing.B) {
	h := NewHierarchy(SkylakeHierarchy())
	h.FetchInstr(0, 0x4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FetchInstr(Cycle(i), 0x4000)
	}
}

func BenchmarkHierarchyFetchCold(b *testing.B) {
	h := NewHierarchy(SkylakeHierarchy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FetchInstr(Cycle(i), uint64(i)<<LineShift)
	}
}

func BenchmarkHierarchyDataAccess(b *testing.B) {
	h := NewHierarchy(SkylakeHierarchy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessData(Cycle(i), uint64(i%4096)<<3, i%4 == 0)
	}
}

func BenchmarkPrefetchIntoL2(b *testing.B) {
	h := NewHierarchy(SkylakeHierarchy())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PrefetchIntoL2(Cycle(i), uint64(i)<<LineShift, TrafficPrefetch)
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	d := NewDRAM(DRAMConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(Cycle(i*10), TrafficDemand)
	}
}

package mem


// HierarchyConfig assembles the per-level cache configurations of one
// simulated platform. Table 1 of the paper defines the Skylake-like setup;
// Sec. 5.6 the Broadwell-like one.
type HierarchyConfig struct {
	L1I, L1D, L2, LLC Config
	DRAM              DRAMConfig
	// L1DNextLine enables the next-line prefetcher on the L1-D (Table 1).
	L1DNextLine bool
}

// Validate checks every level's geometry. Errors wrap cfgerr.ErrBadConfig.
func (c HierarchyConfig) Validate() error {
	for _, lvl := range []Config{c.L1I, c.L1D, c.L2, c.LLC} {
		if err := lvl.Validate(); err != nil {
			return err
		}
	}
	return c.DRAM.Validate()
}

// SkylakeHierarchy returns the Table 1 configuration: 32 KB L1-I/L1-D,
// 1 MB private L2, 8 MB shared LLC.
func SkylakeHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:         Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4, MSHRs: 10},
		L1D:         Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, HitLatency: 12, MSHRs: 10},
		L2:          Config{Name: "L2", SizeBytes: 1 << 20, Ways: 8, HitLatency: 36, MSHRs: 32},
		LLC:         Config{Name: "LLC", SizeBytes: 8 << 20, Ways: 16, HitLatency: 36, MSHRs: 32},
		DRAM:        DefaultDRAMConfig(),
		L1DNextLine: true,
	}
}

// BroadwellHierarchy returns the Sec. 5.6 configuration, which also matches
// the real-hardware host of the characterization study: 32 KB L1s, 256 KB
// L2, 8 MB LLC slice. The smaller L2 has a shorter hit latency.
func BroadwellHierarchy() HierarchyConfig {
	h := SkylakeHierarchy()
	h.L2 = Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, HitLatency: 12, MSHRs: 20}
	// Broadwell's ring-bus LLC is slower than Skylake's mesh slice.
	h.LLC.HitLatency = 42
	return h
}

// CharacterizationHierarchy returns the CloudLab xl170 host of Sec. 4.1:
// Broadwell with a 25 MB LLC (within power-of-two set constraints we use
// 16 MB, the closest realizable size; reference working sets still fit).
func CharacterizationHierarchy() HierarchyConfig {
	h := BroadwellHierarchy()
	h.LLC = Config{Name: "LLC", SizeBytes: 16 << 20, Ways: 16, HitLatency: 36, MSHRs: 32}
	return h
}

// pfBufEntry is one line in the instruction prefetch buffer.
type pfBufEntry struct {
	addr  uint64
	ready Cycle
	valid bool
}

// PFBufStats counts instruction-prefetch-buffer activity.
type PFBufStats struct {
	Fills          uint64
	Hits           uint64
	EvictionUnused uint64
}

// Hierarchy wires the caches and DRAM together and implements the demand
// and prefetch access paths.
type Hierarchy struct {
	L1I, L1D, L2, LLC *Cache
	DRAM              *DRAM
	cfg               HierarchyConfig
	lastDataBlock     uint64
	// Per-level hit latencies and the in-flight-prefetch wait cap, hoisted
	// out of the Config structs at construction so the demand path reads
	// them from the Hierarchy itself.
	l1iLat, l1dLat, l2Lat, llcLat Cycle
	maxWait                       Cycle
	// PerfectL1I services every instruction fetch at L1 hit latency,
	// modeling the paper's "Perfect I-cache" upper bound (Sec. 5.2).
	PerfectL1I bool

	// pfBuf is a small fully-associative FIFO instruction prefetch buffer
	// probed in parallel with the L1-I, used by stream prefetchers (PIF) to
	// avoid polluting the L1-I with speculative lines. Sized by
	// EnablePrefetchBuffer.
	pfBuf    []pfBufEntry
	pfBufPos int
	PFBuf    PFBufStats
}

// NewHierarchy builds a hierarchy from cfg with its own LLC and DRAM.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return NewSharedHierarchy(cfg, NewCache(cfg.LLC), NewDRAM(cfg.DRAM))
}

// NewSharedHierarchy builds the private levels of one core around a shared
// LLC and memory controller — the multi-core organization of the paper's
// host (private L1s and L2, shared LLC, one memory system).
func NewSharedHierarchy(cfg HierarchyConfig, llc *Cache, dram *DRAM) *Hierarchy {
	return &Hierarchy{
		L1I:     NewCache(cfg.L1I),
		L1D:     NewCache(cfg.L1D),
		L2:      NewCache(cfg.L2),
		LLC:     llc,
		DRAM:    dram,
		cfg:     cfg,
		l1iLat:  cfg.L1I.HitLatency,
		l1dLat:  cfg.L1D.HitLatency,
		l2Lat:   cfg.L2.HitLatency,
		llcLat:  cfg.LLC.HitLatency,
		maxWait: cfg.L2.HitLatency + cfg.LLC.HitLatency + dram.Config().AccessLatency,
	}
}

// FlushPrivate invalidates only the core-private levels (L1s, L2, prefetch
// buffer), leaving the shared LLC to the server-level policy.
func (h *Hierarchy) FlushPrivate() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
	h.FlushPrefetchBuffer()
	h.lastDataBlock = 0
}

// Config returns the hierarchy configuration in effect.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// FetchInstr performs a demand instruction fetch of the block containing
// paddr at time now.
func (h *Hierarchy) FetchInstr(now Cycle, paddr uint64) Result {
	if h.PerfectL1I {
		return Result{Latency: h.l1iLat, Level: LevelL1}
	}
	return h.demand(now, paddr, Instr, false)
}

// AccessData performs a demand data access at time now. write marks stores.
func (h *Hierarchy) AccessData(now Cycle, paddr uint64, write bool) Result {
	res := h.demand(now, paddr, Data, write)
	if h.cfg.L1DNextLine {
		h.nextLinePrefetch(now, paddr)
	}
	return res
}

// demand walks the hierarchy for one access.
func (h *Hierarchy) demand(now Cycle, paddr uint64, k Kind, write bool) Result {
	// A demand hit on a still-in-flight prefetch waits for the data, but
	// never longer than the rest of the miss path it replaced (the demand
	// would otherwise have fetched the line itself): the cap shrinks by the
	// hit latencies already paid at each level.
	maxWait := h.maxWait
	l1 := h.L1I
	lat := h.l1iLat
	if k == Data {
		l1 = h.L1D
		lat = h.l1dLat
	}
	if out := l1.access(now, paddr, k, write); out.hit {
		return Result{Latency: lat + min(out.extraWait, maxWait), Level: LevelL1}
	}

	// L1-I misses probe the prefetch buffer in parallel with the L2; the
	// buffer serves the demand only when it is the faster source (an
	// L2-resident copy whose data arrives sooner wins otherwise).
	if k == Instr && len(h.pfBuf) > 0 {
		if wait, hit := h.pfBufTake(now, paddr); hit {
			l2Wait, l2Present := h.L2.probeWait(now, paddr)
			if !l2Present || wait <= l2Wait+h.l2Lat {
				h.PFBuf.Hits++
				l1.fill(now, paddr, k, false, 0)
				return Result{Latency: lat + 2 + min(wait, maxWait), Level: LevelL1}
			}
		}
	}

	// L1 miss: look up the unified L2.
	if out := h.L2.access(now+lat, paddr, k, false); out.hit {
		cap := maxWait - h.l2Lat
		total := lat + h.l2Lat + min(out.extraWait, cap)
		l1.fill(now, paddr, k, false, 0)
		return Result{Latency: total, Level: LevelL2, L2PrefetchHit: out.prefetchHit}
	}
	lat += h.l2Lat

	// L2 miss: look up the shared LLC.
	if out := h.LLC.access(now+lat, paddr, k, false); out.hit {
		cap := maxWait - h.l2Lat - h.llcLat
		total := lat + h.llcLat + min(out.extraWait, cap)
		h.fillOnPath(now, paddr, k, write)
		return Result{Latency: total, Level: LevelLLC, L2Miss: true}
	}
	lat += h.llcLat

	// LLC miss: go to memory.
	lat += h.DRAM.Access(now+lat, TrafficDemand)
	if v := h.LLC.fill(now, paddr, k, false, 0); v.valid && v.dirty {
		h.DRAM.Access(now, TrafficWriteback)
	}
	h.fillOnPath(now, paddr, k, write)
	return Result{Latency: lat, Level: LevelMem, L2Miss: true}
}

// fillOnPath installs the block into L2 and the appropriate L1, accounting
// for dirty writebacks reaching memory from LLC evictions.
func (h *Hierarchy) fillOnPath(now Cycle, paddr uint64, k Kind, write bool) {
	if v := h.L2.fill(now, paddr, k, false, 0); v.valid && v.dirty {
		// Dirty L2 victims merge into the LLC; if absent there, install and
		// carry the dirty bit so the data eventually writes back to memory.
		if h.LLC.Probe(v.addr) {
			h.LLC.markDirty(v.addr)
		} else {
			if lv := h.LLC.fill(now, v.addr, v.kind, false, 0); lv.valid && lv.dirty {
				h.DRAM.Access(now, TrafficWriteback)
			}
			h.LLC.markDirty(v.addr)
		}
	}
	l1 := h.L1I
	if k == Data {
		l1 = h.L1D
	}
	v := l1.fill(now, paddr, k, false, 0)
	if write {
		l1.markDirty(paddr)
	}
	if v.valid && v.dirty {
		if !h.L2.Probe(v.addr) {
			h.L2.fill(now, v.addr, v.kind, false, 0)
		}
		h.L2.markDirty(v.addr)
	}
}

// nextLinePrefetch implements the simple L1-D next-line prefetcher from
// Table 1: on a demand access to a new block, pull in the sequentially next
// block if it is not already in the L1-D.
func (h *Hierarchy) nextLinePrefetch(now Cycle, paddr uint64) {
	blk := BlockAddr(paddr)
	if blk == h.lastDataBlock {
		return
	}
	h.lastDataBlock = blk
	next := blk + LineSize
	if h.L1D.Probe(next) {
		return
	}
	ready := now + h.l1dLat
	switch {
	case h.L2.Probe(next):
		ready += h.l2Lat
	case h.LLC.Probe(next):
		ready += h.l2Lat + h.llcLat
		h.L2.fill(now, next, Data, true, ready)
	default:
		ready += h.l2Lat + h.llcLat + h.DRAM.Access(now, TrafficPrefetch)
		h.LLC.fill(now, next, Data, true, ready)
		h.L2.fill(now, next, Data, true, ready)
	}
	h.L1D.fill(now, next, Data, true, ready)
}

// PrefetchIntoL2 installs the block containing paddr into the L2 (and LLC on
// the way) on behalf of an instruction prefetcher, returning the cycle at
// which the data is available in the L2. cls labels the DRAM traffic.
// If the block is already L2-resident the call is a no-op returning now.
func (h *Hierarchy) PrefetchIntoL2(now Cycle, paddr uint64, cls TrafficClass) Cycle {
	if h.L2.Probe(paddr) {
		return now
	}
	ready := now
	if h.LLC.Probe(paddr) {
		ready += h.cfg.LLC.HitLatency
	} else {
		ready += h.cfg.LLC.HitLatency + h.DRAM.Access(now, cls)
		h.LLC.fill(now, paddr, Instr, true, ready)
	}
	h.L2.fill(now, paddr, Instr, true, ready)
	return ready
}

// EnablePrefetchBuffer sizes the instruction prefetch buffer (n lines);
// n <= 0 disables it.
func (h *Hierarchy) EnablePrefetchBuffer(n int) {
	if n <= 0 {
		h.pfBuf = nil
		return
	}
	h.pfBuf = make([]pfBufEntry, n)
	h.pfBufPos = 0
}

// pfBufTake removes paddr's block from the prefetch buffer if present,
// returning the residual wait for in-flight data.
func (h *Hierarchy) pfBufTake(now Cycle, paddr uint64) (wait Cycle, hit bool) {
	blk := BlockAddr(paddr)
	for i := range h.pfBuf {
		e := &h.pfBuf[i]
		if e.valid && e.addr == blk {
			e.valid = false
			if e.ready > now {
				wait = e.ready - now
			}
			return wait, true
		}
	}
	return 0, false
}

// PrefetchIntoBuffer stages the block containing paddr in the instruction
// prefetch buffer (stream-prefetcher target), filling L2/LLC on the way as
// the data passes through. A FIFO victim that was never used counts as an
// overprediction. Returns the ready cycle; a no-op if the block is already
// in the L1-I or the buffer.
func (h *Hierarchy) PrefetchIntoBuffer(now Cycle, paddr uint64, cls TrafficClass) Cycle {
	if len(h.pfBuf) == 0 {
		return h.PrefetchIntoL1I(now, paddr, cls)
	}
	blk := BlockAddr(paddr)
	if h.L1I.Probe(blk) {
		return now
	}
	for i := range h.pfBuf {
		if h.pfBuf[i].valid && h.pfBuf[i].addr == blk {
			return h.pfBuf[i].ready
		}
	}
	ready := now
	switch {
	case h.L2.Probe(blk):
		ready += h.cfg.L2.HitLatency
	case h.LLC.Probe(blk):
		ready += h.cfg.L2.HitLatency + h.cfg.LLC.HitLatency
		h.L2.fill(now, blk, Instr, true, ready)
	default:
		ready += h.cfg.L2.HitLatency + h.cfg.LLC.HitLatency + h.DRAM.Access(now, cls)
		h.LLC.fill(now, blk, Instr, true, ready)
		h.L2.fill(now, blk, Instr, true, ready)
	}
	v := &h.pfBuf[h.pfBufPos]
	if v.valid {
		h.PFBuf.EvictionUnused++
	}
	*v = pfBufEntry{addr: blk, ready: ready, valid: true}
	h.pfBufPos = (h.pfBufPos + 1) % len(h.pfBuf)
	h.PFBuf.Fills++
	return ready
}

// FlushPrefetchBuffer invalidates the buffer, counting unused entries as
// overpredicted.
func (h *Hierarchy) FlushPrefetchBuffer() {
	for i := range h.pfBuf {
		if h.pfBuf[i].valid {
			h.PFBuf.EvictionUnused++
			h.pfBuf[i].valid = false
		}
	}
}

// PrefetchIntoLLC installs the block containing paddr into the LLC only,
// the target of whole-cache context-restoration schemes (RECAP-style).
// Returns the ready cycle; a no-op when already LLC-resident.
func (h *Hierarchy) PrefetchIntoLLC(now Cycle, paddr uint64, cls TrafficClass) Cycle {
	return h.PrefetchLineIntoLLC(now, paddr, Data, cls)
}

// PrefetchLineIntoLLC is PrefetchIntoLLC with an explicit line kind, so
// page-granular restore engines (internal/reap) can install instruction
// pages as Instr lines and keep the per-kind cache stats honest. Returns
// now unchanged when the line is already LLC-resident — the probe is what
// makes restore a delta on lukewarm starts.
func (h *Hierarchy) PrefetchLineIntoLLC(now Cycle, paddr uint64, k Kind, cls TrafficClass) Cycle {
	if h.LLC.Probe(paddr) {
		return now
	}
	ready := now + h.DRAM.Access(now, cls)
	h.LLC.fill(now, paddr, k, true, ready)
	return ready
}

// PrefetchLineIntoLLCBlind is PrefetchLineIntoLLC without the residency
// probe: a software restore engine (REAP) streams recorded pages from the
// snapshot regardless of what is already cache-resident, so every line
// occupies prefetch bandwidth even when redundant — redundant transfers
// push the useful installs' ready times later, which is exactly the
// restore's lukewarm-start penalty. A redundant fill refreshes the resident
// line without resetting its readiness.
func (h *Hierarchy) PrefetchLineIntoLLCBlind(now Cycle, paddr uint64, k Kind, cls TrafficClass) Cycle {
	ready := now + h.DRAM.Access(now, cls)
	h.LLC.fill(now, paddr, k, true, ready)
	return ready
}

// PrefetchIntoL1I installs the block containing paddr into the L1-I (used by
// the PIF comparator, which targets the L1-I). Returns the ready cycle.
func (h *Hierarchy) PrefetchIntoL1I(now Cycle, paddr uint64, cls TrafficClass) Cycle {
	if h.L1I.Probe(paddr) {
		return now
	}
	ready := now
	switch {
	case h.L2.Probe(paddr):
		ready += h.cfg.L2.HitLatency
	case h.LLC.Probe(paddr):
		ready += h.cfg.L2.HitLatency + h.cfg.LLC.HitLatency
		h.L2.fill(now, paddr, Instr, true, ready)
	default:
		ready += h.cfg.L2.HitLatency + h.cfg.LLC.HitLatency + h.DRAM.Access(now, cls)
		h.LLC.fill(now, paddr, Instr, true, ready)
		h.L2.fill(now, paddr, Instr, true, ready)
	}
	h.L1I.fill(now, paddr, Instr, true, ready)
	return ready
}

// FlushAll invalidates every cache, modeling total obliteration of on-chip
// state between invocations (the paper's simulated interleaving baseline).
func (h *Hierarchy) FlushAll() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
	h.LLC.Flush()
	h.FlushPrefetchBuffer()
	h.lastDataBlock = 0
}

// ThrashFraction partially evicts every cache, modeling a bounded amount of
// interleaved foreign execution (Fig. 1's sub-saturation IATs). frac is the
// per-line eviction probability; rng supplies deterministic randomness.
func (h *Hierarchy) ThrashFraction(frac float64, rng func() uint64) {
	h.L1I.EvictFraction(frac, rng)
	h.L1D.EvictFraction(frac, rng)
	h.L2.EvictFraction(frac, rng)
	h.LLC.EvictFraction(frac, rng)
}

// ResetStats zeroes all counters without disturbing cache contents.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.LLC.ResetStats()
	h.DRAM.ResetStats()
	h.PFBuf = PFBufStats{}
}

// DrainUnusedPrefetches finalizes overprediction accounting in the prefetch
// target caches at the end of a measurement window.
func (h *Hierarchy) DrainUnusedPrefetches() {
	h.L1I.DrainUnusedPrefetches()
	h.L2.DrainUnusedPrefetches()
	h.LLC.DrainUnusedPrefetches()
}

package mem

import (
	"fmt"

	"lukewarm/internal/cfgerr"
)

// line is one cache block's bookkeeping.
type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool  // filled by a prefetcher rather than demand
	used       bool  // touched by a demand access since fill
	ready      Cycle // for in-flight prefetches: cycle the data arrives
	lru        uint64
	kind       Kind
}

// CacheStats aggregates the per-cache counters the experiments read.
type CacheStats struct {
	// DemandAccesses, DemandHits and DemandMisses are indexed by Kind.
	DemandAccesses [numKinds]uint64
	DemandHits     [numKinds]uint64
	DemandMisses   [numKinds]uint64
	// PrefetchFills counts lines installed by a prefetcher, indexed by the
	// traffic kind the prefetcher declared at fill (instruction prefetchers
	// vs. the L1-D next-line prefetcher).
	PrefetchFills [numKinds]uint64
	// PrefetchUsed counts prefetched lines touched by a later demand access
	// (covered misses), by fill kind.
	PrefetchUsed [numKinds]uint64
	// PrefetchLate counts prefetched lines whose first demand use arrived
	// before the prefetch data did (the access stalled for the residue).
	PrefetchLate [numKinds]uint64
	// PrefetchEvictedUnused counts prefetched lines evicted without ever
	// being used (overprediction), by fill kind.
	PrefetchEvictedUnused [numKinds]uint64
	// Evictions counts valid lines displaced by fills.
	Evictions uint64
	// DirtyEvictions counts displaced lines that were dirty.
	DirtyEvictions uint64
}

// DemandMissRate reports misses/accesses for kind k, or 0 with no accesses.
func (s *CacheStats) DemandMissRate(k Kind) float64 {
	if s.DemandAccesses[k] == 0 {
		return 0
	}
	return float64(s.DemandMisses[k]) / float64(s.DemandAccesses[k])
}

// Config describes one cache's geometry and timing.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency Cycle
	MSHRs      int
}

// Sets reports the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (LineSize * c.Ways) }

// Validate reports whether the geometry is realizable: positive ways and a
// positive power-of-two set count. Errors wrap cfgerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return cfgerr.New("cache %s: ways must be positive, got %d", c.Name, c.Ways)
	}
	if sets := c.Sets(); sets <= 0 || sets&(sets-1) != 0 {
		return cfgerr.New("cache %s: %d sets is not a positive power of two", c.Name, sets)
	}
	return nil
}

// Cache is a set-associative, LRU, write-back cache. It is a passive array:
// the Hierarchy drives lookups and fills and decides what happens on a miss.
type Cache struct {
	cfg     Config
	sets    int
	setMask uint64
	lines   []line // sets*ways, set-major
	lruTick uint64
	Stats   CacheStats
}

// NewCache builds a cache from cfg. It panics if the geometry is invalid —
// callers that take cache geometry from user input should call
// Config.Validate first (the serverless facade does).
func NewCache(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("mem: %v", err))
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		lines:   make([]line, sets*cfg.Ways),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(addr uint64) []line {
	s := (addr >> LineShift) & c.setMask
	base := int(s) * c.cfg.Ways
	return c.lines[base : base+c.cfg.Ways]
}

func tagOf(addr uint64) uint64 { return addr >> LineShift }

// Probe reports whether addr is present, without touching LRU or counters.
func (c *Cache) Probe(addr uint64) bool {
	tag := tagOf(addr)
	for i := range c.set(addr) {
		ln := &c.set(addr)[i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// accessOutcome describes a demand lookup.
type accessOutcome struct {
	hit         bool
	prefetchHit bool  // hit on a prefetched, not-yet-used line
	extraWait   Cycle // residual wait for an in-flight prefetch
}

// access performs a demand lookup for addr at time now, updating LRU and
// demand counters.
func (c *Cache) access(now Cycle, addr uint64, k Kind, write bool) accessOutcome {
	c.Stats.DemandAccesses[k]++
	tag := tagOf(addr)
	set := c.set(addr)
	for i := range set {
		ln := &set[i]
		if !ln.valid || ln.tag != tag {
			continue
		}
		c.lruTick++
		ln.lru = c.lruTick
		if write {
			ln.dirty = true
		}
		out := accessOutcome{hit: true}
		if ln.prefetched && !ln.used {
			out.prefetchHit = true
			c.Stats.PrefetchUsed[ln.kind]++
			if ln.ready > now {
				out.extraWait = ln.ready - now
				c.Stats.PrefetchLate[ln.kind]++
			}
		}
		ln.used = true
		c.Stats.DemandHits[k]++
		return out
	}
	c.Stats.DemandMisses[k]++
	return accessOutcome{}
}

// victim describes a line displaced by a fill.
type victim struct {
	valid bool
	dirty bool
	addr  uint64
	kind  Kind
}

// fill installs addr, evicting the LRU way if needed. prefetched marks
// prefetcher-installed lines; ready is when in-flight data arrives (demand
// fills pass now).
func (c *Cache) fill(now Cycle, addr uint64, k Kind, prefetched bool, ready Cycle) victim {
	tag := tagOf(addr)
	set := c.set(addr)
	// Already present (e.g., a prefetch raced a demand fill): refresh only.
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			if !prefetched {
				ln.used = true
			}
			return victim{}
		}
	}
	// Pick an invalid way, else the LRU way.
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	ln := &set[vi]
	var v victim
	if ln.valid {
		// The victim's block address is reconstructed from its tag; the set
		// index is implied by the set being filled.
		v = victim{valid: true, dirty: ln.dirty, kind: ln.kind, addr: ln.tag << LineShift}
		c.Stats.Evictions++
		if ln.dirty {
			c.Stats.DirtyEvictions++
		}
		if ln.prefetched && !ln.used {
			c.Stats.PrefetchEvictedUnused[ln.kind]++
		}
	}
	c.lruTick++
	*ln = line{tag: tag, valid: true, prefetched: prefetched, used: !prefetched,
		ready: ready, lru: c.lruTick, kind: k}
	if prefetched {
		ln.used = false
		c.Stats.PrefetchFills[k]++
	}
	return v
}

// DemandAccess performs one standalone demand access: a lookup that fills
// the line on a miss (marking it dirty for writes, as the hierarchy's write
// path does) and reports whether it hit. It drives a single cache outside a
// Hierarchy — the differential oracles in internal/check and
// microbenchmarks use it; the Hierarchy itself sequences access and fill
// separately across levels.
func (c *Cache) DemandAccess(now Cycle, addr uint64, k Kind, write bool) bool {
	if c.access(now, addr, k, write).hit {
		return true
	}
	c.fill(now, addr, k, false, now)
	if write {
		c.markDirty(addr)
	}
	return false
}

// probeWait reports whether addr is resident and, for an in-flight
// prefetched line, the residual wait at time now. Counters and LRU are not
// touched.
func (c *Cache) probeWait(now Cycle, addr uint64) (wait Cycle, present bool) {
	tag := tagOf(addr)
	for _, ln := range c.set(addr) {
		if ln.valid && ln.tag == tag {
			if ln.prefetched && !ln.used && ln.ready > now {
				wait = ln.ready - now
			}
			return wait, true
		}
	}
	return 0, false
}

// markDirty sets the dirty bit on addr's line if present (write-allocate
// fills).
func (c *Cache) markDirty(addr uint64) {
	tag := tagOf(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			return
		}
	}
}

// Flush invalidates every line, modeling complete obliteration of the
// cache's contents by interleaved executions. Unused prefetched lines are
// counted as overpredicted.
func (c *Cache) Flush() {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.prefetched && !ln.used {
			c.Stats.PrefetchEvictedUnused[ln.kind]++
		}
		ln.valid = false
	}
}

// EvictFraction invalidates approximately frac of the cache's valid lines,
// chosen by a deterministic PRNG stream, modeling partial thrashing by a
// bounded amount of interleaved foreign execution (Fig. 1's IAT sweep).
func (c *Cache) EvictFraction(frac float64, rng func() uint64) {
	if frac <= 0 {
		return
	}
	if frac >= 1 {
		c.Flush()
		return
	}
	threshold := uint64(frac * float64(1<<32))
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		if rng()&0xFFFFFFFF < threshold {
			if ln.prefetched && !ln.used {
				c.Stats.PrefetchEvictedUnused[ln.kind]++
			}
			ln.valid = false
		}
	}
}

// CountValid reports the number of valid lines (used by tests and the
// thrash model).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// DrainUnusedPrefetches counts still-resident never-used prefetched lines as
// overpredicted and marks them used so repeated calls are idempotent. Call at
// the end of a measurement window.
func (c *Cache) DrainUnusedPrefetches() {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.prefetched && !ln.used {
			c.Stats.PrefetchEvictedUnused[ln.kind]++
			ln.used = true
		}
	}
}

// ResetStats zeroes the counters without touching cache contents, so warmup
// traffic can be excluded from measurement.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// ResidentBlocks appends the block addresses of all valid lines to dst and
// returns it, in set-major order. Context-restoration schemes (RECAP-style)
// use this to snapshot a cache's footprint at descheduling time.
func (c *Cache) ResidentBlocks(dst []uint64) []uint64 {
	for s := 0; s < c.sets; s++ {
		base := s * c.cfg.Ways
		for w := 0; w < c.cfg.Ways; w++ {
			if c.lines[base+w].valid {
				dst = append(dst, c.lines[base+w].tag<<LineShift)
			}
		}
	}
	return dst
}

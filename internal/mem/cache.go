package mem

import (
	"fmt"
	"math/bits"

	"lukewarm/internal/cfgerr"
)

// The cache's per-line state is stored flat, in parallel arrays, so the hot
// lookup path touches as few host cache lines as possible:
//
//   - tags holds the line tag (8 B/way), with invalidTag marking empty ways;
//   - flags holds one byte per line: dirty, prefetched, used, and the fill
//     kind, read on hits and at eviction;
//   - ready (prefetch arrival cycles) is written and read only for
//     prefetched lines, so demand traffic never touches it;
//   - recency packs each set's LRU order into one uint64 — a move-to-front
//     list of 4-bit way ids — replacing a per-line 8 B stamp. Victim choice
//     is identical to stamp-based LRU: stamps only ever encode recency
//     order within a set, and the list preserves exactly that order. Caches
//     wider than 16 ways (the fully-associative differential oracle) fall
//     back to per-line stamps;
//   - setEpoch implements O(1) whole-cache flushes: Flush bumps the cache
//     epoch and each set lazily re-zeroes its tags on its next fill.
//     Flush-time overprediction accounting comes from running counters
//     (liveValid, livePrefUnused) maintained at every fill/use/eviction.
//
// Every observable behavior — stats, LRU victim choice, eviction order,
// per-line RNG draws in EvictFraction — is bit-identical to the original
// struct-per-line implementation; internal/check's LRU differential oracle
// and the golden-figure harness enforce that.

// invalidTag marks an empty way. No real tag collides with it: tags are
// addr>>LineShift and simulated physical addresses are far below 2^58.
const invalidTag = ^uint64(0)

// Flag bits of the per-line flags byte. lineKindData holds the fill Kind
// (Instr=0, Data=1) in bit 3.
const (
	lineDirty = 1 << iota
	linePrefetched
	lineUsed
	lineKindData
)

// flagsKind extracts the fill kind from a flags byte.
func flagsKind(f uint8) Kind { return Kind(f>>3) & 1 }

// maxPackedWays is the widest set the packed recency list covers.
const maxPackedWays = 16

// identityPerm is the initial recency list: way 0 in front, way 15 in back.
const identityPerm = 0xFEDCBA9876543210

// CacheStats aggregates the per-cache counters the experiments read.
type CacheStats struct {
	// DemandAccesses, DemandHits and DemandMisses are indexed by Kind.
	DemandAccesses [numKinds]uint64
	DemandHits     [numKinds]uint64
	DemandMisses   [numKinds]uint64
	// PrefetchFills counts lines installed by a prefetcher, indexed by the
	// traffic kind the prefetcher declared at fill (instruction prefetchers
	// vs. the L1-D next-line prefetcher).
	PrefetchFills [numKinds]uint64
	// PrefetchUsed counts prefetched lines touched by a later demand access
	// (covered misses), by fill kind.
	PrefetchUsed [numKinds]uint64
	// PrefetchLate counts prefetched lines whose first demand use arrived
	// before the prefetch data did (the access stalled for the residue).
	PrefetchLate [numKinds]uint64
	// PrefetchEvictedUnused counts prefetched lines evicted without ever
	// being used (overprediction), by fill kind.
	PrefetchEvictedUnused [numKinds]uint64
	// Evictions counts valid lines displaced by fills.
	Evictions uint64
	// DirtyEvictions counts displaced lines that were dirty.
	DirtyEvictions uint64
}

// DemandMissRate reports misses/accesses for kind k, or 0 with no accesses.
func (s *CacheStats) DemandMissRate(k Kind) float64 {
	if s.DemandAccesses[k] == 0 {
		return 0
	}
	return float64(s.DemandMisses[k]) / float64(s.DemandAccesses[k])
}

// Config describes one cache's geometry and timing.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	HitLatency Cycle
	MSHRs      int
}

// Sets reports the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (LineSize * c.Ways) }

// Validate reports whether the geometry is realizable: positive ways and a
// positive power-of-two set count. Errors wrap cfgerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return cfgerr.New("cache %s: ways must be positive, got %d", c.Name, c.Ways)
	}
	if sets := c.Sets(); sets <= 0 || sets&(sets-1) != 0 {
		return cfgerr.New("cache %s: %d sets is not a positive power of two", c.Name, sets)
	}
	return nil
}

// Cache is a set-associative, LRU, write-back cache. It is a passive array:
// the Hierarchy drives lookups and fills and decides what happens on a miss.
type Cache struct {
	cfg     Config
	sets    int
	ways    int
	setMask uint64
	tags    []uint64 // sets*ways, set-major; invalidTag = empty
	flags   []uint8  // parallel to tags
	ready   []Cycle  // parallel to tags; meaningful while prefetched && !used
	// recency is the packed per-set LRU list (ways <= maxPackedWays);
	// wider caches use the lru stamp array instead.
	recency []uint64
	lru     []uint64
	lruTick uint64
	// setEpoch[s] != epoch means set s has not been touched since the last
	// Flush and its tags are logically all-invalid.
	setEpoch []uint64
	epoch    uint64
	// liveValid counts valid lines; livePrefUnused counts resident
	// prefetched-never-used lines by fill kind. Both fund O(1) Flush.
	liveValid      int
	livePrefUnused [numKinds]uint64
	Stats          CacheStats
}

// NewCache builds a cache from cfg. It panics if the geometry is invalid —
// callers that take cache geometry from user input should call
// Config.Validate first (the serverless facade does).
func NewCache(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("mem: %v", err))
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*cfg.Ways),
		flags:    make([]uint8, sets*cfg.Ways),
		ready:    make([]Cycle, sets*cfg.Ways),
		setEpoch: make([]uint64, sets),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if cfg.Ways <= maxPackedWays {
		c.recency = make([]uint64, sets)
		for i := range c.recency {
			c.recency[i] = identityPerm
		}
	} else {
		c.lru = make([]uint64, sets*cfg.Ways)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// setIdx lazily resets a flushed set and returns its index. Only mutators
// (fill) call it — lookups bail out on a stale epoch without writing.
//lukewarm:hotpath noalloc,inline every fill starts here; inlining keeps the epoch check branch-predictable
func (c *Cache) setIdx(addr uint64) int {
	s := int((addr >> LineShift) & c.setMask)
	if c.setEpoch[s] != c.epoch {
		c.setEpoch[s] = c.epoch
		base := s * c.ways
		t := c.tags[base : base+c.ways]
		for i := range t {
			t[i] = invalidTag
		}
	}
	return s
}

// valid reports whether absolute way index i holds a live line, without
// materializing lazily flushed sets.
func (c *Cache) valid(i int) bool {
	return c.setEpoch[i/c.ways] == c.epoch && c.tags[i] != invalidTag
}

func tagOf(addr uint64) uint64 { return addr >> LineShift }

// findWay returns the set index and absolute way index of addr, or way -1.
// It never writes: a set not touched since the last Flush is simply a miss.
//lukewarm:hotpath noalloc,inline the tag scan runs once per simulated memory reference
func (c *Cache) findWay(addr uint64) (int, int) {
	s := int((addr >> LineShift) & c.setMask)
	if c.setEpoch[s] != c.epoch {
		return s, -1
	}
	tag := tagOf(addr)
	base := s * c.ways
	t := c.tags[base : base+c.ways]
	for i := range t {
		if t[i] == tag {
			return s, base + i
		}
	}
	return s, -1
}

// touch moves way w of set s to the front of the recency order (the packed
// list, or a fresh stamp for wide caches).
//lukewarm:hotpath noalloc,noescape the PR 9 SWAR recency update must stay branch-light and allocation-free
func (c *Cache) touch(s, w int) {
	if c.recency == nil {
		c.lruTick++
		c.lru[s*c.ways+w] = c.lruTick
		return
	}
	l := c.recency[s]
	uw := uint64(w)
	if l&0xF == uw {
		return // already most recent
	}
	// Locate w's nibble with a SWAR zero-scan: x has exactly one zero nibble
	// (the list is a permutation), and the borrow in the subtract can only
	// produce spurious high bits above it, so the lowest set bit is exact.
	x := l ^ uw*0x1111111111111111
	m := (x - 0x1111111111111111) &^ x & 0x8888888888888888
	pos := uint(bits.TrailingZeros64(m)) &^ 3
	lowMask := uint64(1)<<pos - 1
	c.recency[s] = (l&lowMask)<<4 | l&^(uint64(1)<<(pos+4)-1) | uw
}

// Probe reports whether addr is present, without touching LRU or counters.
func (c *Cache) Probe(addr uint64) bool {
	_, i := c.findWay(addr)
	return i >= 0
}

// accessOutcome describes a demand lookup.
type accessOutcome struct {
	hit         bool
	prefetchHit bool  // hit on a prefetched, not-yet-used line
	extraWait   Cycle // residual wait for an in-flight prefetch
}

// access performs a demand lookup for addr at time now, updating LRU and
// demand counters.
//lukewarm:hotpath noalloc,noescape every demand reference at every cache level lands here
func (c *Cache) access(now Cycle, addr uint64, k Kind, write bool) accessOutcome {
	c.Stats.DemandAccesses[k]++
	s, i := c.findWay(addr)
	if i < 0 {
		c.Stats.DemandMisses[k]++
		return accessOutcome{}
	}
	c.touch(s, i-s*c.ways)
	f := c.flags[i]
	out := accessOutcome{hit: true}
	if f&(linePrefetched|lineUsed) == linePrefetched {
		out.prefetchHit = true
		fk := flagsKind(f)
		c.Stats.PrefetchUsed[fk]++
		c.livePrefUnused[fk]--
		if r := c.ready[i]; r > now {
			out.extraWait = r - now
			c.Stats.PrefetchLate[fk]++
		}
	}
	nf := f | lineUsed
	if write {
		nf |= lineDirty
	}
	if nf != f {
		c.flags[i] = nf
	}
	c.Stats.DemandHits[k]++
	return out
}

// victim describes a line displaced by a fill.
type victim struct {
	valid bool
	dirty bool
	addr  uint64
	kind  Kind
}

// fill installs addr, evicting the LRU way if needed. prefetched marks
// prefetcher-installed lines; ready is when in-flight data arrives (demand
// fills pass now).
//lukewarm:hotpath noalloc,noescape miss handling fills on every level; the victim struct must stay on the stack
func (c *Cache) fill(now Cycle, addr uint64, k Kind, prefetched bool, ready Cycle) victim {
	tag := tagOf(addr)
	s := c.setIdx(addr)
	base := s * c.ways
	t := c.tags[base : base+c.ways]
	// One pass: detect an already-present line (e.g., a prefetch raced a
	// demand fill, which refreshes without a recency touch) while noting
	// the first invalid way.
	firstInvalid := -1
	for i := range t {
		switch t[i] {
		case tag:
			if !prefetched {
				f := c.flags[base+i]
				if f&(linePrefetched|lineUsed) == linePrefetched {
					c.livePrefUnused[flagsKind(f)]--
				}
				c.flags[base+i] = f | lineUsed
			}
			return victim{}
		case invalidTag:
			if firstInvalid < 0 {
				firstInvalid = i
			}
		}
	}
	// Pick the first invalid way, else the LRU way.
	w := firstInvalid
	if w < 0 {
		if c.recency != nil {
			w = int(c.recency[s] >> (4 * (c.ways - 1)) & 0xF)
		} else {
			w = 0
			for i := 1; i < c.ways; i++ {
				if c.lru[base+i] < c.lru[base+w] {
					w = i
				}
			}
		}
	}
	vi := base + w
	var v victim
	if c.tags[vi] != invalidTag {
		// The victim's block address is reconstructed from its tag; the set
		// index is implied by the set being filled.
		f := c.flags[vi]
		v = victim{valid: true, dirty: f&lineDirty != 0, kind: flagsKind(f),
			addr: c.tags[vi] << LineShift}
		c.Stats.Evictions++
		if v.dirty {
			c.Stats.DirtyEvictions++
		}
		if f&(linePrefetched|lineUsed) == linePrefetched {
			c.Stats.PrefetchEvictedUnused[v.kind]++
			c.livePrefUnused[v.kind]--
		}
		c.liveValid--
	}
	c.tags[vi] = tag
	c.liveValid++
	nf := lineUsed | uint8(k)<<3
	if prefetched {
		nf = linePrefetched | uint8(k)<<3
		c.ready[vi] = ready
		c.Stats.PrefetchFills[k]++
		c.livePrefUnused[k]++
	}
	c.flags[vi] = nf
	c.touch(s, w)
	return v
}

// DemandAccess performs one standalone demand access: a lookup that fills
// the line on a miss (marking it dirty for writes, as the hierarchy's write
// path does) and reports whether it hit. It drives a single cache outside a
// Hierarchy — the differential oracles in internal/check and
// microbenchmarks use it; the Hierarchy itself sequences access and fill
// separately across levels.
func (c *Cache) DemandAccess(now Cycle, addr uint64, k Kind, write bool) bool {
	if c.access(now, addr, k, write).hit {
		return true
	}
	c.fill(now, addr, k, false, now)
	if write {
		c.markDirty(addr)
	}
	return false
}

// probeWait reports whether addr is resident and, for an in-flight
// prefetched line, the residual wait at time now. Counters and LRU are not
// touched.
func (c *Cache) probeWait(now Cycle, addr uint64) (wait Cycle, present bool) {
	_, i := c.findWay(addr)
	if i < 0 {
		return 0, false
	}
	if f := c.flags[i]; f&(linePrefetched|lineUsed) == linePrefetched {
		if r := c.ready[i]; r > now {
			wait = r - now
		}
	}
	return wait, true
}

// markDirty sets the dirty bit on addr's line if present (write-allocate
// fills).
func (c *Cache) markDirty(addr uint64) {
	if _, i := c.findWay(addr); i >= 0 {
		c.flags[i] |= lineDirty
	}
}

// Flush invalidates every line, modeling complete obliteration of the
// cache's contents by interleaved executions. Unused prefetched lines are
// counted as overpredicted. The flush is O(1): the epoch bump makes every
// set lazily reset on its next fill, and the overprediction charge comes
// from the running livePrefUnused counters.
func (c *Cache) Flush() {
	for k := range c.livePrefUnused {
		c.Stats.PrefetchEvictedUnused[k] += c.livePrefUnused[k]
		c.livePrefUnused[k] = 0
	}
	c.liveValid = 0
	c.epoch++
}

// EvictFraction invalidates approximately frac of the cache's valid lines,
// chosen by a deterministic PRNG stream, modeling partial thrashing by a
// bounded amount of interleaved foreign execution (Fig. 1's IAT sweep).
func (c *Cache) EvictFraction(frac float64, rng func() uint64) {
	if frac <= 0 {
		return
	}
	if frac >= 1 {
		c.Flush()
		return
	}
	threshold := uint64(frac * float64(1<<32))
	for i := range c.tags {
		if !c.valid(i) {
			continue
		}
		if rng()&0xFFFFFFFF < threshold {
			if f := c.flags[i]; f&(linePrefetched|lineUsed) == linePrefetched {
				fk := flagsKind(f)
				c.Stats.PrefetchEvictedUnused[fk]++
				c.livePrefUnused[fk]--
			}
			c.tags[i] = invalidTag
			c.liveValid--
		}
	}
}

// CountValid reports the number of valid lines (used by tests and the
// thrash model).
func (c *Cache) CountValid() int { return c.liveValid }

// DrainUnusedPrefetches counts still-resident never-used prefetched lines as
// overpredicted and marks them used so repeated calls are idempotent. Call at
// the end of a measurement window.
func (c *Cache) DrainUnusedPrefetches() {
	for i := range c.tags {
		if !c.valid(i) {
			continue
		}
		if f := c.flags[i]; f&(linePrefetched|lineUsed) == linePrefetched {
			fk := flagsKind(f)
			c.Stats.PrefetchEvictedUnused[fk]++
			c.livePrefUnused[fk]--
			c.flags[i] = f | lineUsed
		}
	}
}

// ResetStats zeroes the counters without touching cache contents, so warmup
// traffic can be excluded from measurement.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// ResidentBlocks appends the block addresses of all valid lines to dst and
// returns it, in set-major order. Context-restoration schemes (RECAP-style)
// use this to snapshot a cache's footprint at descheduling time.
func (c *Cache) ResidentBlocks(dst []uint64) []uint64 {
	for i := range c.tags {
		if c.valid(i) {
			dst = append(dst, c.tags[i]<<LineShift)
		}
	}
	return dst
}

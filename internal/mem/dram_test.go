package mem

import "testing"

func TestDRAMDefaults(t *testing.T) {
	d := NewDRAM(DRAMConfig{})
	def := DefaultDRAMConfig()
	if d.Config() != def {
		t.Errorf("defaults not applied: %+v", d.Config())
	}
}

func TestDRAMIdleLatency(t *testing.T) {
	d := NewDRAM(DRAMConfig{AccessLatency: 100, LinePeriod: 10})
	if got := d.Access(0, TrafficDemand); got != 100 {
		t.Errorf("idle latency = %d, want 100", got)
	}
	if d.Bytes(TrafficDemand) != LineSize {
		t.Errorf("bytes = %d", d.Bytes(TrafficDemand))
	}
	if d.Accesses(TrafficDemand) != 1 {
		t.Errorf("accesses = %d", d.Accesses(TrafficDemand))
	}
}

func TestDRAMQueueing(t *testing.T) {
	d := NewDRAM(DRAMConfig{AccessLatency: 100, LinePeriod: 10})
	d.Access(0, TrafficDemand) // occupies channel until 10
	if got := d.Access(0, TrafficDemand); got != 110 {
		t.Errorf("queued latency = %d, want 110", got)
	}
	// Third request at cycle 5 queues behind both.
	if got := d.Access(5, TrafficDemand); got != 115 {
		t.Errorf("queued latency = %d, want 115", got)
	}
	// A request far in the future sees an idle channel.
	if got := d.Access(10_000, TrafficDemand); got != 100 {
		t.Errorf("idle-again latency = %d, want 100", got)
	}
}

func TestDRAMPerClassAccounting(t *testing.T) {
	d := NewDRAM(DRAMConfig{})
	d.Access(0, TrafficDemand)
	d.Access(0, TrafficPrefetch)
	d.Access(0, TrafficMetadataRecord)
	d.Access(0, TrafficMetadataReplay)
	d.Access(0, TrafficWriteback)
	for _, cls := range []TrafficClass{TrafficDemand, TrafficPrefetch,
		TrafficMetadataRecord, TrafficMetadataReplay, TrafficWriteback} {
		if d.Bytes(cls) != LineSize {
			t.Errorf("%v bytes = %d", cls, d.Bytes(cls))
		}
	}
	if d.TotalBytes() != 5*LineSize {
		t.Errorf("total = %d", d.TotalBytes())
	}
	d.ResetStats()
	if d.TotalBytes() != 0 {
		t.Errorf("reset failed: %d", d.TotalBytes())
	}
}

func TestDRAMAccessBytes(t *testing.T) {
	d := NewDRAM(DRAMConfig{AccessLatency: 100, LinePeriod: 10})
	// 130 bytes => 3 lines.
	lat := d.AccessBytes(0, TrafficMetadataRecord, 130)
	if lat != 100 {
		t.Errorf("first-line latency = %d, want 100", lat)
	}
	if d.Accesses(TrafficMetadataRecord) != 3 {
		t.Errorf("lines = %d, want 3", d.Accesses(TrafficMetadataRecord))
	}
	if got := d.AccessBytes(0, TrafficMetadataRecord, 0); got != 0 {
		t.Errorf("zero-byte access latency = %d", got)
	}
}

func TestTrafficClassStrings(t *testing.T) {
	names := map[TrafficClass]string{
		TrafficDemand:         "demand",
		TrafficPrefetch:       "prefetch",
		TrafficMetadataRecord: "metadata-record",
		TrafficMetadataReplay: "metadata-replay",
		TrafficWriteback:      "writeback",
		TrafficClass(99):      "traffic?",
	}
	for cls, want := range names {
		if got := cls.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", cls, got, want)
		}
	}
}

func TestKindLevelStrings(t *testing.T) {
	if Instr.String() != "instr" || Data.String() != "data" || Kind(9).String() != "kind?" {
		t.Error("Kind strings wrong")
	}
	for l, want := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelLLC: "LLC", LevelMem: "Mem", Level(9): "Level?"} {
		if l.String() != want {
			t.Errorf("Level %d = %q, want %q", l, l.String(), want)
		}
	}
}

func TestBlockAddr(t *testing.T) {
	if got := BlockAddr(0x12345); got != 0x12340 {
		t.Errorf("BlockAddr = %#x", got)
	}
	if got := BlockAddr(0x12340); got != 0x12340 {
		t.Errorf("BlockAddr aligned = %#x", got)
	}
}

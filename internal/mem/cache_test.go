package mem

import (
	"testing"
	"testing/quick"
)

func testCache(sizeKB, ways int) *Cache {
	return NewCache(Config{Name: "t", SizeBytes: sizeKB << 10, Ways: ways, HitLatency: 4})
}

func TestCacheGeometry(t *testing.T) {
	c := testCache(32, 8)
	if got := c.Config().Sets(); got != 64 {
		t.Errorf("Sets = %d, want 64", got)
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	cases := []Config{
		{Name: "zero-ways", SizeBytes: 32 << 10, Ways: 0},
		{Name: "non-pow2", SizeBytes: 3 * 64 * 4, Ways: 4}, // 3 sets
		{Name: "too-small", SizeBytes: 0, Ways: 4},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", cfg.Name)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := testCache(32, 8)
	if out := c.access(0, 0x1000, Instr, false); out.hit {
		t.Fatal("cold access hit")
	}
	c.fill(0, 0x1000, Instr, false, 0)
	if out := c.access(1, 0x1000, Instr, false); !out.hit {
		t.Fatal("filled line missed")
	}
	// Same block, different byte offset: still a hit.
	if out := c.access(2, 0x103F, Instr, false); !out.hit {
		t.Fatal("same-block access missed")
	}
	// Next block: miss.
	if out := c.access(3, 0x1040, Instr, false); out.hit {
		t.Fatal("next block hit without fill")
	}
	s := c.Stats
	if s.DemandAccesses[Instr] != 4 || s.DemandHits[Instr] != 2 || s.DemandMisses[Instr] != 2 {
		t.Errorf("counters = %+v", s)
	}
}

func TestDemandAccessFillsOnMiss(t *testing.T) {
	c := testCache(32, 8)
	if c.DemandAccess(0, 0x1000, Data, false) {
		t.Fatal("cold DemandAccess hit")
	}
	if !c.DemandAccess(1, 0x1000, Data, false) {
		t.Fatal("DemandAccess did not fill on miss")
	}
	s := c.Stats
	if s.DemandAccesses[Data] != 2 || s.DemandHits[Data] != 1 || s.DemandMisses[Data] != 1 {
		t.Errorf("counters = %+v", s)
	}
	// A missing write both fills and dirties the line.
	one := NewCache(Config{Name: "t", SizeBytes: 1 * 64 * 1, Ways: 1})
	one.DemandAccess(0, 0x0, Data, true)
	if v := one.fill(1, 0x40, Data, false, 1); !v.valid || !v.dirty {
		t.Fatalf("write-miss victim not dirty: %+v", v)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: fill three blocks mapping to the same set; the least
	// recently used one must be the victim.
	c := NewCache(Config{Name: "t", SizeBytes: 2 * 64 * 4, Ways: 2}) // 4 sets, 2 ways
	setStride := uint64(4 * 64)                                      // same set every 4 blocks
	a, b, d := uint64(0), setStride, 2*setStride
	c.fill(0, a, Instr, false, 0)
	c.fill(1, b, Instr, false, 0)
	c.access(2, a, Instr, false) // a is now MRU
	v := c.fill(3, d, Instr, false, 0)
	if !v.valid || v.addr != b {
		t.Fatalf("victim = %+v, want addr %#x", v, b)
	}
	if !c.Probe(a) || c.Probe(b) || !c.Probe(d) {
		t.Errorf("post-evict contents wrong: a=%v b=%v d=%v", c.Probe(a), c.Probe(b), c.Probe(d))
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
}

func TestCacheDirtyVictim(t *testing.T) {
	c := NewCache(Config{Name: "t", SizeBytes: 1 * 64 * 1, Ways: 1}) // 1 set, 1 way
	c.fill(0, 0x0, Data, false, 0)
	c.access(1, 0x0, Data, true) // store marks dirty
	v := c.fill(2, 0x40, Data, false, 0)
	// 0x40 maps to the same single set.
	if !v.valid || !v.dirty {
		t.Fatalf("dirty victim not reported: %+v", v)
	}
	if c.Stats.DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d", c.Stats.DirtyEvictions)
	}
}

func TestMarkDirty(t *testing.T) {
	c := testCache(32, 8)
	c.fill(0, 0x2000, Data, false, 0)
	c.markDirty(0x2000)
	// Evict it by filling conflicting blocks.
	set := uint64(64 * 64) // stride that maps to the same set (64 sets)
	var dirtySeen bool
	for i := uint64(1); i <= 8; i++ {
		if v := c.fill(Cycle(i), 0x2000+i*set, Data, false, 0); v.valid && v.dirty {
			dirtySeen = true
		}
	}
	if !dirtySeen {
		t.Error("dirty bit set by markDirty was not observed on eviction")
	}
	// markDirty on an absent line is a no-op.
	c.markDirty(0xDEAD000)
}

func TestPrefetchAccounting(t *testing.T) {
	c := testCache(32, 8)
	c.fill(0, 0x1000, Instr, true, 100) // prefetched, ready at cycle 100
	if c.Stats.PrefetchFills[Instr] != 1 {
		t.Fatalf("PrefetchFills = %d", c.Stats.PrefetchFills[Instr])
	}
	// Demand use before ready: counted used and late, pays the residue.
	out := c.access(40, 0x1000, Instr, false)
	if !out.hit || !out.prefetchHit {
		t.Fatalf("prefetch hit not flagged: %+v", out)
	}
	if out.extraWait != 60 {
		t.Errorf("extraWait = %d, want 60", out.extraWait)
	}
	if c.Stats.PrefetchUsed[Instr] != 1 || c.Stats.PrefetchLate[Instr] != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	// Second access: no longer a prefetch first-use.
	out = c.access(200, 0x1000, Instr, false)
	if out.prefetchHit || out.extraWait != 0 {
		t.Errorf("second access misflagged: %+v", out)
	}
	if c.Stats.PrefetchUsed[Instr] != 1 {
		t.Errorf("PrefetchUsed double counted: %d", c.Stats.PrefetchUsed[Instr])
	}
}

func TestPrefetchTimelyNoWait(t *testing.T) {
	c := testCache(32, 8)
	c.fill(0, 0x40, Instr, true, 10)
	out := c.access(50, 0x40, Instr, false)
	if out.extraWait != 0 {
		t.Errorf("timely prefetch should not wait: %+v", out)
	}
	if c.Stats.PrefetchLate[Instr] != 0 {
		t.Errorf("PrefetchLate = %d", c.Stats.PrefetchLate[Instr])
	}
}

func TestPrefetchOverpredictionOnEviction(t *testing.T) {
	c := NewCache(Config{Name: "t", SizeBytes: 1 * 64 * 1, Ways: 1})
	c.fill(0, 0x0, Instr, true, 0)
	c.fill(1, 0x40, Instr, false, 0) // evicts the unused prefetch
	if c.Stats.PrefetchEvictedUnused[Instr] != 1 {
		t.Errorf("PrefetchEvictedUnused = %d", c.Stats.PrefetchEvictedUnused[Instr])
	}
}

func TestFlushCountsUnusedPrefetches(t *testing.T) {
	c := testCache(32, 8)
	c.fill(0, 0x0, Instr, true, 0)
	c.fill(0, 0x40, Instr, true, 0)
	c.access(1, 0x40, Instr, false)
	c.Flush()
	if c.Stats.PrefetchEvictedUnused[Instr] != 1 {
		t.Errorf("PrefetchEvictedUnused = %d, want 1", c.Stats.PrefetchEvictedUnused[Instr])
	}
	if c.CountValid() != 0 {
		t.Errorf("lines valid after flush: %d", c.CountValid())
	}
}

func TestDrainUnusedPrefetchesIdempotent(t *testing.T) {
	c := testCache(32, 8)
	c.fill(0, 0x0, Instr, true, 0)
	c.DrainUnusedPrefetches()
	c.DrainUnusedPrefetches()
	if c.Stats.PrefetchEvictedUnused[Instr] != 1 {
		t.Errorf("PrefetchEvictedUnused = %d, want 1", c.Stats.PrefetchEvictedUnused[Instr])
	}
}

func TestEvictFraction(t *testing.T) {
	c := testCache(32, 8)
	for i := uint64(0); i < 512; i++ {
		c.fill(Cycle(i), i*64, Data, false, 0)
	}
	if got := c.CountValid(); got != 512 {
		t.Fatalf("valid = %d, want 512", got)
	}
	var state uint64 = 0x9E3779B97F4A7C15
	rng := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	c.EvictFraction(0.5, rng)
	got := c.CountValid()
	if got < 180 || got > 330 {
		t.Errorf("after 50%% evict, valid = %d, want ~256", got)
	}
	c.EvictFraction(1.0, rng)
	if c.CountValid() != 0 {
		t.Errorf("full evict left %d lines", c.CountValid())
	}
	c.EvictFraction(0, rng) // no-op on empty cache
}

func TestFillIdempotentWhenPresent(t *testing.T) {
	c := testCache(32, 8)
	c.fill(0, 0x1000, Instr, false, 0)
	v := c.fill(1, 0x1000, Instr, false, 0)
	if v.valid {
		t.Errorf("refill of present line evicted %+v", v)
	}
	// A demand fill over an unused prefetched line marks it used.
	c.fill(2, 0x2000, Instr, true, 50)
	c.fill(3, 0x2000, Instr, false, 0)
	c.Flush()
	if c.Stats.PrefetchEvictedUnused[Instr] != 0 {
		t.Errorf("demand refill did not mark prefetch used")
	}
}

func TestResetStats(t *testing.T) {
	c := testCache(32, 8)
	c.access(0, 0x0, Instr, false)
	c.ResetStats()
	if c.Stats.DemandAccesses[Instr] != 0 {
		t.Errorf("stats not reset: %+v", c.Stats)
	}
}

func TestDemandMissRate(t *testing.T) {
	var s CacheStats
	if s.DemandMissRate(Instr) != 0 {
		t.Error("empty miss rate != 0")
	}
	s.DemandAccesses[Data] = 10
	s.DemandMisses[Data] = 3
	if got := s.DemandMissRate(Data); got != 0.3 {
		t.Errorf("miss rate = %v", got)
	}
}

// Property: a cache never holds more valid lines than its capacity, and a
// fill always makes the filled block resident.
func TestCacheCapacityProperty(t *testing.T) {
	c := NewCache(Config{Name: "t", SizeBytes: 4 << 10, Ways: 4}) // 16 sets * 4 ways = 64 lines
	f := func(addrs []uint32) bool {
		for i, a := range addrs {
			addr := uint64(a) << LineShift
			c.fill(Cycle(i), addr, Data, false, 0)
			if !c.Probe(addr) {
				return false
			}
			if c.CountValid() > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses == accesses for any access pattern.
func TestCacheCounterConservationProperty(t *testing.T) {
	f := func(addrs []uint16, fills []bool) bool {
		c := NewCache(Config{Name: "t", SizeBytes: 2 << 10, Ways: 2})
		for i, a := range addrs {
			addr := uint64(a) << LineShift
			out := c.access(Cycle(i), addr, Data, false)
			if !out.hit && i < len(fills) && fills[i] {
				c.fill(Cycle(i), addr, Data, false, 0)
			}
		}
		s := c.Stats
		return s.DemandAccesses[Data] == s.DemandHits[Data]+s.DemandMisses[Data]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package mem models the on-chip memory hierarchy of the simulated server:
// private L1-I/L1-D caches, a private unified L2, a shared non-inclusive LLC,
// and a bandwidth-limited DRAM.
//
// The hierarchy is the substrate both for the characterization experiments
// (Sec. 2 of the paper: MPKI breakdowns, lukewarm cache obliteration) and for
// the Jukebox prefetcher (Sec. 3), which records L2 instruction misses and
// replays them into the L2. Caches track per-kind (instruction vs. data)
// demand traffic and per-line prefetch provenance so that coverage,
// overprediction, and timeliness can be measured exactly.
//
// Addresses handed to this package are physical; virtual-to-physical
// translation lives in package vm.
package mem

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// LineSize is the cache block size in bytes throughout the hierarchy.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// BlockAddr truncates an address to its cache-block base.
func BlockAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// Kind distinguishes instruction from data traffic; the paper's MPKI
// breakdowns (Fig. 5) and Jukebox's record filter are keyed on it.
type Kind uint8

const (
	// Instr marks instruction-fetch traffic.
	Instr Kind = iota
	// Data marks load/store traffic.
	Data
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Instr:
		return "instr"
	case Data:
		return "data"
	}
	return "kind?"
}

// Level identifies which level of the hierarchy served a demand access.
type Level uint8

// Hierarchy levels, ordered from closest to the core outward.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMem:
		return "Mem"
	}
	return "Level?"
}

// Result describes the outcome of one demand access.
type Result struct {
	// Latency is the total access latency in cycles, including any wait for
	// an in-flight prefetch to land.
	Latency Cycle
	// Level is the hierarchy level that supplied the line.
	Level Level
	// L2Miss reports whether the access missed in the L2. Jukebox's record
	// logic filters on this bit (Sec. 3.2: "effectively filtering all L2
	// hits").
	L2Miss bool
	// L2PrefetchHit reports whether the access hit in the L2 on a line that
	// a prefetcher placed there — a covered miss in the coverage study.
	L2PrefetchHit bool
}

// TrafficClass labels DRAM traffic for the bandwidth study (Fig. 12).
type TrafficClass uint8

// Traffic classes accounted separately at the memory controller.
const (
	TrafficDemand TrafficClass = iota
	TrafficPrefetch
	TrafficMetadataRecord
	TrafficMetadataReplay
	TrafficWriteback
	numTrafficClasses
)

// String implements fmt.Stringer.
func (c TrafficClass) String() string {
	switch c {
	case TrafficDemand:
		return "demand"
	case TrafficPrefetch:
		return "prefetch"
	case TrafficMetadataRecord:
		return "metadata-record"
	case TrafficMetadataReplay:
		return "metadata-replay"
	case TrafficWriteback:
		return "writeback"
	}
	return "traffic?"
}

package mem

import "lukewarm/internal/cfgerr"

// DRAMConfig describes the memory device timing. The defaults model the
// paper's DDR4-2400 part (tRCD = tRP = tCL = 14 ns) behind a 2.6 GHz core:
// an idle access costs on the order of 150-200 core cycles beyond the LLC
// lookup, and the channel sustains one 64 B line every ~9 core cycles.
type DRAMConfig struct {
	// AccessLatency is the idle-channel latency of one line fill, in core
	// cycles, measured from request issue to data return.
	AccessLatency Cycle
	// LinePeriod is the channel occupancy of one 64 B transfer in core
	// cycles; back-to-back requests are spaced at least this far apart.
	LinePeriod Cycle
}

// DefaultDRAMConfig returns the DDR4-2400 model used by both simulated
// platforms.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{AccessLatency: 180, LinePeriod: 9}
}

// Validate reports whether the timing is realizable: no negative latencies
// or periods (zero fields select defaults in NewDRAM). Errors wrap
// cfgerr.ErrBadConfig.
func (c DRAMConfig) Validate() error {
	if c.AccessLatency < 0 || c.LinePeriod < 0 {
		return cfgerr.New("dram: negative timing (latency %d, period %d)",
			c.AccessLatency, c.LinePeriod)
	}
	return nil
}

// DRAM models main memory: a fixed access latency plus a single-channel
// bandwidth constraint, with per-class byte accounting for the bandwidth
// study (Fig. 12).
//
// The controller prioritizes demand reads over prefetch and metadata
// traffic: a demand access queues only behind other demand accesses, while
// prefetch-class accesses queue behind everything. Without this, a replay
// burst at invocation start would head-of-line-block the very demand misses
// it is trying to hide.
//
// Queue occupancy is tracked as *relative backlog* (cycles of pending
// transfers) that drains as time advances, rather than as an absolute
// free-at timestamp. The two are equivalent for a single monotonic clock,
// but the backlog form also behaves sensibly when multiple cores with
// skewed clocks share the controller (logically concurrent executions are
// simulated one after another; see the multi-core server).
type DRAM struct {
	cfg             DRAMConfig
	lastNow         Cycle
	demandBacklog   Cycle // pending demand transfers, in cycles
	prefetchBacklog Cycle // pending transfers as seen by prefetch traffic
	bytes           [numTrafficClasses]uint64
	accesses        [numTrafficClasses]uint64

	// Disturbance state (fault injection): while distLeft > 0, every access
	// pays distExtra additional latency and occupies the channel for
	// LinePeriod*distMult cycles, modeling a latency spike plus bandwidth
	// throttling from co-located interference.
	distExtra Cycle
	distMult  int
	distLeft  uint64
}

// NewDRAM builds a DRAM model. Zero-valued config fields fall back to the
// defaults.
func NewDRAM(cfg DRAMConfig) *DRAM {
	def := DefaultDRAMConfig()
	if cfg.AccessLatency == 0 {
		cfg.AccessLatency = def.AccessLatency
	}
	if cfg.LinePeriod == 0 {
		cfg.LinePeriod = def.LinePeriod
	}
	return &DRAM{cfg: cfg}
}

// decay drains backlog for the time elapsed since the last access. A
// backward timestamp jump (the simulator switching to a core whose clock is
// behind) drains nothing but re-bases the reference time, so the new core's
// own forward progress drains the queue normally from then on.
func (d *DRAM) decay(now Cycle) {
	if now <= d.lastNow {
		d.lastNow = now
		return
	}
	elapsed := now - d.lastNow
	d.lastNow = now
	if d.demandBacklog > elapsed {
		d.demandBacklog -= elapsed
	} else {
		d.demandBacklog = 0
	}
	if d.prefetchBacklog > elapsed {
		d.prefetchBacklog -= elapsed
	} else {
		d.prefetchBacklog = 0
	}
}

// Access performs one line-sized transfer of class cls at time now and
// returns its completion latency, including any queueing behind earlier
// transfers still occupying the channel (subject to demand priority).
func (d *DRAM) Access(now Cycle, cls TrafficClass) Cycle {
	d.decay(now)
	period, extra := d.cfg.LinePeriod, Cycle(0)
	if d.distLeft > 0 {
		period *= Cycle(d.distMult)
		extra = d.distExtra
		d.distLeft--
	}
	var wait Cycle
	if cls == TrafficDemand || cls == TrafficWriteback {
		wait = d.demandBacklog
		d.demandBacklog += period
		// Prefetch traffic yields to demand occupancy.
		if d.prefetchBacklog < d.demandBacklog {
			d.prefetchBacklog = d.demandBacklog
		}
	} else {
		wait = d.prefetchBacklog
		d.prefetchBacklog += period
	}
	d.bytes[cls] += LineSize
	d.accesses[cls]++
	return wait + d.cfg.AccessLatency + extra
}

// AccessBytes performs a transfer of n bytes (rounded up to whole lines) of
// class cls, returning the latency of the first line; used for metadata
// streams that are consumed incrementally.
func (d *DRAM) AccessBytes(now Cycle, cls TrafficClass, n int) Cycle {
	if n <= 0 {
		return 0
	}
	lines := (n + LineSize - 1) / LineSize
	lat := d.Access(now, cls)
	for i := 1; i < lines; i++ {
		d.Access(now, cls)
	}
	return lat
}

// Bytes reports the bytes transferred for class cls.
func (d *DRAM) Bytes(cls TrafficClass) uint64 { return d.bytes[cls] }

// Accesses reports the number of line transfers for class cls.
func (d *DRAM) Accesses(cls TrafficClass) uint64 { return d.accesses[cls] }

// TotalBytes reports bytes transferred across all classes.
func (d *DRAM) TotalBytes() uint64 {
	var t uint64
	for _, b := range d.bytes {
		t += b
	}
	return t
}

// ResetStats zeroes the byte and access counters (channel state persists).
func (d *DRAM) ResetStats() {
	d.bytes = [numTrafficClasses]uint64{}
	d.accesses = [numTrafficClasses]uint64{}
}

// Config returns the DRAM configuration in effect.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// InjectDisturbance arms a deterministic interference episode: the next n
// accesses each pay extra additional cycles of latency and occupy the
// channel for mult× the configured line period. mult < 1 is treated as 1.
// Used by the fault-injection harness to model latency spikes and bandwidth
// throttling from co-located tenants.
func (d *DRAM) InjectDisturbance(extra Cycle, mult int, n uint64) {
	if mult < 1 {
		mult = 1
	}
	d.distExtra = extra
	d.distMult = mult
	d.distLeft = n
}

// DisturbanceRemaining reports how many disturbed accesses are still armed.
func (d *DRAM) DisturbanceRemaining() uint64 { return d.distLeft }

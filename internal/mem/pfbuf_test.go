package mem

import "testing"

func newPFBufHierarchy() *Hierarchy {
	h := NewHierarchy(SkylakeHierarchy())
	h.EnablePrefetchBuffer(4)
	return h
}

func TestPrefetchBufferStagesAndServes(t *testing.T) {
	h := newPFBufHierarchy()
	ready := h.PrefetchIntoBuffer(0, 0x4000, TrafficPrefetch)
	if ready == 0 {
		t.Fatal("no ready cycle")
	}
	if h.PFBuf.Fills != 1 {
		t.Errorf("Fills = %d", h.PFBuf.Fills)
	}
	// A demand fetch after readiness is served from the buffer at near-L1
	// latency and moves the line into the L1-I.
	res := h.FetchInstr(ready+10, 0x4000)
	if res.Level != LevelL1 {
		t.Fatalf("buffer hit not at L1 level: %+v", res)
	}
	if res.Latency != h.Config().L1I.HitLatency+2 {
		t.Errorf("buffer-hit latency = %d", res.Latency)
	}
	if h.PFBuf.Hits != 1 {
		t.Errorf("Hits = %d", h.PFBuf.Hits)
	}
	if !h.L1I.Probe(0x4000) {
		t.Error("buffer hit did not promote line into L1-I")
	}
	// The entry was consumed: a second L1-I flush + fetch misses the buffer.
	h.L1I.Flush()
	res = h.FetchInstr(ready+100, 0x4000)
	if res.Level == LevelL1 {
		t.Error("consumed buffer entry served a second demand")
	}
}

func TestPrefetchBufferLateWaitCharged(t *testing.T) {
	h := newPFBufHierarchy()
	ready := h.PrefetchIntoBuffer(0, 0x8000, TrafficPrefetch)
	early := ready - 50
	res := h.FetchInstr(early, 0x8000)
	want := h.Config().L1I.HitLatency + 2 + 50
	if res.Latency != want {
		t.Errorf("late buffer hit latency = %d, want %d", res.Latency, want)
	}
}

func TestPrefetchBufferPrefersFasterL2Copy(t *testing.T) {
	h := newPFBufHierarchy()
	// Line resident in L2 via a demand fetch, then evicted from L1-I only.
	h.FetchInstr(0, 0xC000)
	h.L1I.Flush()
	// A stream prefetcher stages the same line far in the future (its
	// issue-time penalty pushes the ready cycle out); the demand probes the
	// buffer and the L2 in parallel and takes the faster L2 copy.
	h.PrefetchIntoBuffer(1200, 0xC000, TrafficPrefetch)
	res := h.FetchInstr(1001, 0xC000)
	if res.Level != LevelL2 {
		t.Errorf("demand should use the L2 copy: %+v", res)
	}
}

func TestPrefetchBufferFIFOEvictionCountsUnused(t *testing.T) {
	h := newPFBufHierarchy() // 4 entries
	for i := uint64(0); i < 6; i++ {
		h.PrefetchIntoBuffer(Cycle(i), 0x10000+i*LineSize, TrafficPrefetch)
	}
	if h.PFBuf.EvictionUnused != 2 {
		t.Errorf("EvictionUnused = %d, want 2", h.PFBuf.EvictionUnused)
	}
}

func TestPrefetchBufferDuplicateAndResidentSkipped(t *testing.T) {
	h := newPFBufHierarchy()
	r1 := h.PrefetchIntoBuffer(0, 0x4000, TrafficPrefetch)
	fills := h.PFBuf.Fills
	if r2 := h.PrefetchIntoBuffer(5, 0x4000, TrafficPrefetch); r2 != r1 {
		t.Errorf("duplicate prefetch changed ready: %d vs %d", r2, r1)
	}
	if h.PFBuf.Fills != fills {
		t.Error("duplicate prefetch filled again")
	}
	// L1-resident blocks are not staged.
	h.FetchInstr(100, 0x9000)
	if got := h.PrefetchIntoBuffer(200, 0x9000, TrafficPrefetch); got != 200 {
		t.Errorf("L1-resident prefetch ready = %d, want now", got)
	}
}

func TestPrefetchBufferFlush(t *testing.T) {
	h := newPFBufHierarchy()
	h.PrefetchIntoBuffer(0, 0x4000, TrafficPrefetch)
	h.FlushPrefetchBuffer()
	if h.PFBuf.EvictionUnused != 1 {
		t.Errorf("flush did not count unused entry: %+v", h.PFBuf)
	}
	res := h.FetchInstr(10_000, 0x4000)
	if res.Latency == h.Config().L1I.HitLatency+2 {
		t.Error("flushed entry still served")
	}
	// FlushAll covers the buffer too.
	h.PrefetchIntoBuffer(0, 0x4040, TrafficPrefetch)
	h.FlushAll()
	if h.PFBuf.EvictionUnused != 2 {
		t.Errorf("FlushAll did not flush the buffer: %+v", h.PFBuf)
	}
}

func TestPrefetchBufferDisabledFallsBackToL1I(t *testing.T) {
	h := NewHierarchy(SkylakeHierarchy())
	h.PrefetchIntoBuffer(0, 0x4000, TrafficPrefetch)
	if !h.L1I.Probe(0x4000) {
		t.Error("disabled buffer should prefetch straight into the L1-I")
	}
	// Disable after enabling.
	h2 := newPFBufHierarchy()
	h2.EnablePrefetchBuffer(0)
	h2.PrefetchIntoBuffer(0, 0x4000, TrafficPrefetch)
	if !h2.L1I.Probe(0x4000) {
		t.Error("re-disabled buffer should prefetch into the L1-I")
	}
}

func TestPrefetchBufferSourcesFromInnerLevels(t *testing.T) {
	h := newPFBufHierarchy()
	// Warm LLC only.
	h.FetchInstr(0, 0xD000)
	h.L1I.Flush()
	h.L2.Flush()
	dramBefore := h.DRAM.TotalBytes()
	ready := h.PrefetchIntoBuffer(100, 0xD000, TrafficPrefetch)
	if h.DRAM.TotalBytes() != dramBefore {
		t.Error("LLC-resident prefetch touched DRAM")
	}
	want := Cycle(100) + h.Config().L2.HitLatency + h.Config().LLC.HitLatency
	if ready != want {
		t.Errorf("LLC-sourced ready = %d, want %d", ready, want)
	}
	// L2-resident: cheaper still.
	h.FetchInstr(10_000, 0xE000)
	h.L1I.Flush()
	ready = h.PrefetchIntoBuffer(20_000, 0xE000, TrafficPrefetch)
	if want := Cycle(20_000) + h.Config().L2.HitLatency; ready != want {
		t.Errorf("L2-sourced ready = %d, want %d", ready, want)
	}
}

func TestResetStatsCoversPFBuf(t *testing.T) {
	h := newPFBufHierarchy()
	h.PrefetchIntoBuffer(0, 0x4000, TrafficPrefetch)
	h.ResetStats()
	if h.PFBuf.Fills != 0 {
		t.Error("PFBuf stats survived reset")
	}
}

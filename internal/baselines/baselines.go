// Package baselines implements the simpler comparison points the paper's
// related-work section positions Jukebox against (Sec. 6):
//
//   - NextLineI: a sequential next-line instruction prefetcher at the L1-I —
//     the classic low-cost front-end prefetcher. It helps straight-line runs
//     but cannot anticipate the discontinuities that dominate lukewarm
//     working-set re-fetch.
//   - Recap: a context-restoration scheme in the spirit of RECAP (Zebchuk
//     et al., HPCA'13) and Daly & Cain (HPCA'12): on a context switch out,
//     save the *physical* addresses of the entire LLC-resident footprint;
//     on switch-in, bulk-restore it into the LLC. The paper's critique is
//     reproduced by construction: metadata is proportional to the
//     multi-megabyte LLC footprint rather than the instruction working set,
//     restoration is indiscriminate (instructions and data alike, used or
//     not), misses still pay the LLC hit latency rather than Jukebox's L2
//     hit, and physical addressing breaks under OS page migration.
package baselines

import (
	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
)

// NextLineI is a sequential next-line instruction prefetcher: on every
// demand fetch of block B it stages B+1 in the instruction prefetch buffer.
// It implements cpu.InstrPrefetcher structurally.
type NextLineI struct {
	hier *mem.Hierarchy
	// Degree is how many sequential blocks to stage ahead (1 = classic
	// next-line).
	Degree int
	// FrontierPenalty is the commit-clock vs fetch-clock correction also
	// applied to PIF (see pif.Config.FrontierPenalty): a next-line prefetch
	// issued "one block ahead" in commit time has almost no lead over the
	// real fetch stream.
	FrontierPenalty mem.Cycle
	// Prefetches counts issued prefetch requests.
	Prefetches uint64
}

// nextLineBufferLines sizes the staging buffer.
const nextLineBufferLines = 16

// NewNextLineI builds the prefetcher and enables the hierarchy's
// instruction prefetch buffer.
func NewNextLineI(hier *mem.Hierarchy, degree int) *NextLineI {
	if degree <= 0 {
		degree = 1
	}
	if hier != nil {
		hier.EnablePrefetchBuffer(nextLineBufferLines)
	}
	return &NextLineI{hier: hier, Degree: degree, FrontierPenalty: 40}
}

// InvocationStart implements cpu.InstrPrefetcher (stateless).
func (n *NextLineI) InvocationStart(mem.Cycle) {}

// InvocationEnd implements cpu.InstrPrefetcher (stateless).
func (n *NextLineI) InvocationEnd(mem.Cycle) {}

// OnFetch stages the sequentially-next blocks.
func (n *NextLineI) OnFetch(now mem.Cycle, _, paddr uint64, _ mem.Result) {
	blk := mem.BlockAddr(paddr)
	for d := 1; d <= n.Degree; d++ {
		n.hier.PrefetchIntoBuffer(now+n.FrontierPenalty, blk+uint64(d)*mem.LineSize, mem.TrafficPrefetch)
		n.Prefetches++
	}
}

// OnBlockRetire implements cpu.InstrPrefetcher (unused).
func (n *NextLineI) OnBlockRetire(mem.Cycle, uint64, uint64) {}

// RecapConfig parameterizes the context-restoration baseline.
type RecapConfig struct {
	// MaxBlocks caps the saved footprint (prior works store the footprint
	// of the entire partition; 0 = unlimited). Each saved block costs
	// ~4 bytes of metadata in the published schemes.
	MaxBlocks int
	// RestoreRate is the issue spacing of restoration prefetches in cycles
	// per block at the LLC fill port (DRAM bandwidth still applies on top).
	RestoreRate mem.Cycle
}

// DefaultRecapConfig returns an unlimited-footprint configuration with a
// one-block-per-cycle fill port.
func DefaultRecapConfig() RecapConfig { return RecapConfig{RestoreRate: 1} }

// Validate reports whether the configuration is realizable: no negative
// footprint cap (zero means unlimited; a non-positive restore rate selects
// the default fill port). Errors wrap cfgerr.ErrBadConfig.
func (c RecapConfig) Validate() error {
	if c.MaxBlocks < 0 {
		return cfgerr.New("recap: negative footprint cap %d", c.MaxBlocks)
	}
	return nil
}

// RecapStats counts save/restore activity.
type RecapStats struct {
	// SavedBlocks counts footprint entries written at context-switch-out.
	SavedBlocks uint64
	// RestoredBlocks counts restoration prefetches issued.
	RestoredBlocks uint64
	// Invocations counts save/restore cycles.
	Invocations uint64
	// LastMetadataBytes is the footprint metadata size of the most recent
	// save (4 bytes per block, as in the published region-compressed
	// schemes).
	LastMetadataBytes int
}

// Recap is the per-instance context-restoration state: the physical block
// addresses of the LLC footprint saved at the last deschedule.
type Recap struct {
	cfg     RecapConfig
	hier    *mem.Hierarchy
	saved   []uint64
	scratch []uint64
	Stats   RecapStats
}

// NewRecap builds the baseline attached to hier.
func NewRecap(cfg RecapConfig, hier *mem.Hierarchy) *Recap {
	if err := cfg.Validate(); err != nil {
		panic("baselines: " + err.Error()) // configs are design-time constants
	}
	if cfg.RestoreRate <= 0 {
		cfg.RestoreRate = 1
	}
	return &Recap{cfg: cfg, hier: hier}
}

// SavedBlocks reports the current footprint size in blocks.
func (r *Recap) SavedBlocks() int { return len(r.saved) }

// InvocationStart restores the saved footprint into the LLC: a bulk
// sequence of physical-address prefetches, indiscriminately covering
// everything that was resident — instructions, data, dead lines alike.
func (r *Recap) InvocationStart(now mem.Cycle) {
	cursor := now
	for _, blk := range r.saved {
		r.hier.PrefetchIntoLLC(cursor, blk, mem.TrafficPrefetch)
		r.Stats.RestoredBlocks++
		cursor += r.cfg.RestoreRate
	}
}

// InvocationEnd snapshots the LLC-resident footprint (the context-switch-out
// save). The save costs metadata-write memory traffic.
func (r *Recap) InvocationEnd(now mem.Cycle) {
	r.scratch = r.hier.LLC.ResidentBlocks(r.scratch[:0])
	if r.cfg.MaxBlocks > 0 && len(r.scratch) > r.cfg.MaxBlocks {
		r.scratch = r.scratch[:r.cfg.MaxBlocks]
	}
	r.saved = append(r.saved[:0], r.scratch...)
	r.Stats.SavedBlocks += uint64(len(r.saved))
	r.Stats.LastMetadataBytes = 4 * len(r.saved)
	r.hier.DRAM.AccessBytes(now, mem.TrafficMetadataRecord, r.Stats.LastMetadataBytes)
	r.Stats.Invocations++
}

// OnFetch implements cpu.InstrPrefetcher (RECAP acts only at switches).
func (r *Recap) OnFetch(mem.Cycle, uint64, uint64, mem.Result) {}

// OnBlockRetire implements cpu.InstrPrefetcher (unused).
func (r *Recap) OnBlockRetire(mem.Cycle, uint64, uint64) {}

// ResetStats zeroes the counters (the saved footprint persists).
func (r *Recap) ResetStats() { r.Stats = RecapStats{} }

package baselines

import (
	"testing"

	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/vm"
)

var (
	_ cpu.InstrPrefetcher = (*NextLineI)(nil)
	_ cpu.InstrPrefetcher = (*Recap)(nil)
)

func testProgram() *program.Program {
	return program.New(program.Config{
		Name: "bl-test-fn", Seed: 77, CodeKB: 192, DynamicInstrs: 120_000,
		CoreFrac: 0.85, OptionalProb: 0.8, RareFrac: 0.04, RareProb: 0.05,
		InstrPerLine: 16, LoadFrac: 0.22, StoreFrac: 0.08,
		CondFrac: 0.3, CondBias: 0.9, NoisyFrac: 0.02, IndirectFrac: 0.15,
		CallFrac: 0.35, SkipFrac: 0.05,
		DataKB: 96, HotDataKB: 16, HotDataFrac: 0.7, ColdDataFrac: 0.05,
		DepLoadFrac: 0.2, KernelFrac: 0.1,
	})
}

func newCore(pf cpu.InstrPrefetcher) *cpu.Core {
	c := cpu.NewCore(cpu.SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	c.Prefetcher = pf
	return c
}

func lukewarmRun(c *cpu.Core, p *program.Program, n int) cpu.RunResult {
	var last cpu.RunResult
	for i := 0; i < n; i++ {
		c.FlushMicroarch()
		last = c.RunInvocation(p.NewInvocation(uint64(i)))
	}
	return last
}

func TestNextLineIssuesPrefetches(t *testing.T) {
	c := newCore(nil)
	nl := NewNextLineI(c.Hier, 1)
	c.Prefetcher = nl
	p := testProgram()
	lukewarmRun(c, p, 1)
	if nl.Prefetches == 0 {
		t.Fatal("next-line issued nothing")
	}
	if c.Hier.PFBuf.Hits == 0 {
		t.Error("no next-line prefetch was ever useful")
	}
}

func TestNextLineDegreeDefaultsAndScaling(t *testing.T) {
	c := newCore(nil)
	nl := NewNextLineI(c.Hier, 0)
	if nl.Degree != 1 {
		t.Errorf("default degree = %d", nl.Degree)
	}
	nl2 := NewNextLineI(c.Hier, 4)
	res := mem.Result{Level: mem.LevelMem}
	nl2.OnFetch(0, 0x4000, 0x4000, res)
	if nl2.Prefetches != 4 {
		t.Errorf("degree-4 issued %d prefetches", nl2.Prefetches)
	}
}

func TestNextLineSmallButPositiveBenefit(t *testing.T) {
	p := testProgram()
	base := lukewarmRun(newCore(nil), p, 3)
	c := newCore(nil)
	c.Prefetcher = NewNextLineI(c.Hier, 1)
	nlRes := lukewarmRun(c, p, 3)
	speedup := float64(base.Cycles)/float64(nlRes.Cycles) - 1
	if speedup < -0.02 {
		t.Errorf("next-line hurt by %.1f%%", -speedup*100)
	}
	// Sequential prefetching helps the straight-line portions of the
	// synthetic streams (which are somewhat more sequential than real
	// interpreter code) but must stay well below Jukebox's ~20%: it cannot
	// anticipate the discontinuities that dominate lukewarm re-fetch.
	if speedup > 0.16 {
		t.Errorf("next-line speedup %.1f%% implausibly high for lukewarm runs", speedup*100)
	}
}

func TestNextLineWellBelowJukeboxStyleCoverage(t *testing.T) {
	p := testProgram()
	c := newCore(nil)
	nl := NewNextLineI(c.Hier, 1)
	c.Prefetcher = nl
	c.Hier.ResetStats()
	lukewarmRun(c, p, 2)
	covered := float64(c.Hier.PFBuf.Hits)
	missed := float64(c.Hier.L1I.Stats.DemandMisses[mem.Instr]) - covered
	if missed <= 0 {
		t.Fatalf("next-line covered everything (%v of %v); discontinuities unmodeled",
			covered, covered+missed)
	}
}

func TestRecapSavesAndRestores(t *testing.T) {
	c := newCore(nil)
	rc := NewRecap(DefaultRecapConfig(), c.Hier)
	c.Prefetcher = rc
	p := testProgram()
	lukewarmRun(c, p, 1)
	if rc.SavedBlocks() == 0 {
		t.Fatal("nothing saved at deschedule")
	}
	// The footprint covers code and data: far more than Jukebox's ~16KB of
	// metadata would describe.
	if rc.Stats.LastMetadataBytes < 16<<10 {
		t.Errorf("RECAP metadata %dB suspiciously small", rc.Stats.LastMetadataBytes)
	}
	before := rc.Stats.RestoredBlocks
	lukewarmRun(c, p, 1)
	if rc.Stats.RestoredBlocks == before {
		t.Error("no restoration on the next invocation")
	}
}

func TestRecapSpeedsUpButTrailsOnLatency(t *testing.T) {
	p := testProgram()
	base := lukewarmRun(newCore(nil), p, 3)
	c := newCore(nil)
	rc := NewRecap(DefaultRecapConfig(), c.Hier)
	c.Prefetcher = rc
	res := lukewarmRun(c, p, 3)
	speedup := float64(base.Cycles)/float64(res.Cycles) - 1
	if speedup <= 0.02 {
		t.Errorf("RECAP speedup %.1f%% should be clearly positive", speedup*100)
	}
	// Restored lines are LLC hits, not L2 hits: demand L2 misses remain.
	if c.Hier.L2.Stats.DemandMisses[mem.Instr] == 0 {
		t.Error("RECAP should not eliminate L2 misses")
	}
}

func TestRecapBandwidthFarExceedsJukebox(t *testing.T) {
	p := testProgram()
	c := newCore(nil)
	rc := NewRecap(DefaultRecapConfig(), c.Hier)
	c.Prefetcher = rc
	c.Hier.ResetStats()
	lukewarmRun(c, p, 2)
	pfBytes := c.Hier.DRAM.Bytes(mem.TrafficPrefetch)
	demand := c.Hier.DRAM.Bytes(mem.TrafficDemand)
	// The paper's critique: indiscriminate restoration can double memory
	// traffic. Our restored footprint rivals demand traffic.
	if pfBytes < demand/2 {
		t.Errorf("RECAP restore traffic %d suspiciously small vs demand %d", pfBytes, demand)
	}
}

func TestRecapMaxBlocksCap(t *testing.T) {
	c := newCore(nil)
	rc := NewRecap(RecapConfig{MaxBlocks: 100, RestoreRate: 1}, c.Hier)
	c.Prefetcher = rc
	p := testProgram()
	lukewarmRun(c, p, 1)
	if rc.SavedBlocks() > 100 {
		t.Errorf("cap ignored: %d blocks saved", rc.SavedBlocks())
	}
}

func TestRecapPhysicalAddressesBreakOnCompaction(t *testing.T) {
	p := testProgram()
	c := newCore(nil)
	rc := NewRecap(DefaultRecapConfig(), c.Hier)
	c.Prefetcher = rc
	lukewarmRun(c, p, 1) // save a footprint
	// Migrate every page; saved physical addresses are now stale.
	c.MMU.AddressSpace().Compact()
	c.FlushMicroarch()
	c.Hier.ResetStats()
	lukewarmRun(c, p, 1)
	// Restored lines are never referenced: almost all LLC prefetches unused.
	llc := c.Hier.LLC.Stats
	used := llc.PrefetchUsed[mem.Instr] + llc.PrefetchUsed[mem.Data]
	if used > uint64(rc.SavedBlocks()/10) {
		t.Errorf("stale physical restore still mostly useful: %d used", used)
	}
}

func TestRecapResetStats(t *testing.T) {
	c := newCore(nil)
	rc := NewRecap(DefaultRecapConfig(), c.Hier)
	c.Prefetcher = rc
	lukewarmRun(c, testProgram(), 1)
	rc.ResetStats()
	if rc.Stats.SavedBlocks != 0 || rc.Stats.Invocations != 0 {
		t.Error("reset incomplete")
	}
	if rc.SavedBlocks() == 0 {
		t.Error("reset should keep the footprint")
	}
}

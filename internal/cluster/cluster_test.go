package cluster

import (
	"errors"
	"reflect"
	"testing"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/core"
	"lukewarm/internal/faults"
	"lukewarm/internal/predict"
	"lukewarm/internal/reap"
	"lukewarm/internal/serverless"
	"lukewarm/internal/workload"
)

// testWorkloads resolves a small cross-language subset.
func testWorkloads(t *testing.T, names ...string) []workload.Workload {
	t.Helper()
	var ws []workload.Workload
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// smallTraffic keeps simulated spans short for tests.
func smallTraffic() serverless.TrafficConfig {
	cfg := serverless.DefaultTrafficConfig()
	cfg.InvocationsPerInstance = 3
	cfg.MeanIATms = 50
	return cfg
}

// faultyConfig is the chaos configuration the determinism and conservation
// tests share: all three fleet fault kinds plus the full resilience stack.
func faultyConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	tc := smallTraffic()
	tc.InvocationsPerInstance = 6
	return Config{
		Nodes:     3,
		Workloads: testWorkloads(t, "Auth-G", "Email-P"),
		Traffic:   tc,

		DeadlineMs:      400,
		RetryMax:        1,
		RetryBackoffMs:  2,
		HedgeDelayMinMs: 0.5,
		EjectAfter:      3,
		EjectMs:         60,
		ShedLowAtMs:     5,
		RecordOnlyAtMs:  10,
		RejectAtMs:      20,
		LowPriority:     []string{"Email-P"},

		Faults:            faults.NewPlan(seed, faults.NodeCrash, faults.InstanceCrash, faults.DispatchFlake),
		InstanceCrashProb: 0.15,
		DispatchFlakeProb: 0.25,
		NodeCrashMTBFms:   120,
		NodeDownMs:        40,
	}
}

func TestOneNodeReproducesServeTraffic(t *testing.T) {
	ws := testWorkloads(t, "Auth-G", "Email-P")
	ref := serverless.New(serverless.Config{})
	for _, w := range ws {
		ref.Deploy(w)
	}
	want, err := ref.ServeTraffic(smallTraffic())
	if err != nil {
		t.Fatal(err)
	}

	res, err := Run(Config{Nodes: 1, Workloads: ws, Traffic: smallTraffic()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerNode) != 1 {
		t.Fatalf("PerNode has %d entries, want 1", len(res.PerNode))
	}
	if !reflect.DeepEqual(res.PerNode[0], want) {
		t.Errorf("1-node cluster diverged from ServeTraffic:\n got %+v\nwant %+v", res.PerNode[0], want)
	}
	if res.Served != want.Served || res.Offered != want.Offered {
		t.Errorf("fleet counters %d/%d != ServeTraffic %d/%d", res.Served, res.Offered, want.Served, want.Offered)
	}
	if res.Availability() != 1 {
		t.Errorf("fault-free availability = %v, want 1", res.Availability())
	}
	if err := Audit(&res); err != nil {
		t.Errorf("audit: %v", err)
	}
}

func TestChaosRunConservesAndRepeats(t *testing.T) {
	first, err := Run(faultyConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := Audit(&first); err != nil {
		t.Errorf("audit: %v", err)
	}
	if first.Injections == 0 {
		t.Error("chaos config fired no injections")
	}
	if first.NodeCrashes == 0 {
		t.Error("no node crashes at MTBF far below the simulated span")
	}
	if first.Availability() >= 1 {
		t.Error("chaos run lost nothing; faults are not biting")
	}
	again, err := Run(faultyConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("same seed produced different fleet results")
	}
	other, err := Run(faultyConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, other) {
		t.Error("different fault seeds produced identical results")
	}
}

func TestAvailabilityMonotoneInFailureRate(t *testing.T) {
	// Keyed Bernoulli draws give common random numbers across probability
	// levels: the struck set at a lower rate is a subset of the set at any
	// higher rate, so with resilience off, availability can only fall.
	avail := func(prob float64) float64 {
		cfg := Config{
			Nodes:             2,
			Workloads:         testWorkloads(t, "Auth-G", "Email-P"),
			Traffic:           smallTraffic(),
			Faults:            faults.NewPlan(11, faults.InstanceCrash, faults.DispatchFlake),
			InstanceCrashProb: prob,
			DispatchFlakeProb: prob,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := Audit(&res); err != nil {
			t.Fatalf("audit at prob %g: %v", prob, err)
		}
		return res.Availability()
	}
	prev := 2.0
	for _, p := range []float64{0, 0.05, 0.15, 0.35, 0.7, 1} {
		a := avail(p)
		if a > prev {
			t.Errorf("availability rose from %.4f to %.4f as failure rate rose to %g", prev, a, p)
		}
		prev = a
	}
	if avail(0) != 1 {
		t.Error("zero failure rate should serve everything")
	}
	if avail(1) != 0 {
		t.Error("certain failure with no retries should serve nothing")
	}
}

func TestNodeCrashForcesColdRestarts(t *testing.T) {
	cfg := Config{
		Nodes:           2,
		Workloads:       testWorkloads(t, "Auth-G"),
		Traffic:         smallTraffic(),
		RetryMax:        3,
		RetryBackoffMs:  1,
		Faults:          faults.NewPlan(3, faults.NodeCrash),
		NodeCrashMTBFms: 60,
		NodeDownMs:      30,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Audit(&res); err != nil {
		t.Errorf("audit: %v", err)
	}
	if res.NodeCrashes == 0 {
		t.Fatal("no node crashes fired")
	}
	cold := 0
	for i := range res.PerNode {
		cold += res.PerNode[i].ColdStarts
	}
	if cold == 0 {
		t.Error("node crashes destroyed warm state but nothing cold-started")
	}
}

func TestBrownoutLadderEngages(t *testing.T) {
	tc := smallTraffic()
	tc.MeanIATms = 0.2 // saturating load: arrivals far faster than service
	tc.InvocationsPerInstance = 12
	cfg := Config{
		Nodes:          1,
		Workloads:      testWorkloads(t, "Auth-G", "Email-P"),
		Traffic:        tc,
		ShedLowAtMs:    1,
		RecordOnlyAtMs: 4,
		RejectAtMs:     12,
		LowPriority:    []string{"Email-P"},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Audit(&res); err != nil {
		t.Errorf("audit: %v", err)
	}
	if res.TierShifts == 0 {
		t.Error("saturating load never moved the brownout ladder")
	}
	if res.Shed == 0 {
		t.Error("degraded tiers shed nothing under saturation")
	}
	degraded := res.TimeInTierMs[1] + res.TimeInTierMs[2] + res.TimeInTierMs[3]
	if degraded <= 0 {
		t.Error("no simulated time attributed to degraded tiers")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	ws := testWorkloads(t, "Auth-G")
	base := func() Config {
		return Config{Nodes: 1, Workloads: ws, Traffic: smallTraffic()}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Nodes = 0 }},
		{"no workloads", func(c *Config) { c.Workloads = nil }},
		{"node valves on", func(c *Config) { c.Traffic.MaxQueue = 4 }},
		{"retry no backoff", func(c *Config) { c.RetryMax = 2 }},
		{"eject no window", func(c *Config) { c.EjectAfter = 2 }},
		{"ladder not monotone", func(c *Config) { c.ShedLowAtMs = 10; c.RejectAtMs = 5 }},
		{"prob out of range", func(c *Config) { c.InstanceCrashProb = 1.5 }},
		{"probs without plan", func(c *Config) { c.DispatchFlakeProb = 0.1 }},
		{"mtbf no down time", func(c *Config) { c.Faults = faults.NewPlan(1, faults.NodeCrash); c.NodeCrashMTBFms = 10 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if _, err := Run(cfg); !errors.Is(err, cfgerr.ErrBadConfig) {
			t.Errorf("%s: error = %v, want ErrBadConfig", tc.name, err)
		}
	}
}

// predictTraffic arms smallTraffic with an oracle forecaster for the
// fleet-budget tests.
func predictTraffic() serverless.TrafficConfig {
	tc := smallTraffic()
	tc.InvocationsPerInstance = 8
	tc.Predict = &predict.Config{Forecaster: predict.NewForecaster("oracle"), LeadMs: 4}
	return tc
}

// prewarmNode deploys both warm-up mechanisms on every node.
func prewarmNode() serverless.Config {
	jb := core.DefaultConfig()
	rc := reap.DefaultConfig()
	return serverless.Config{Jukebox: &jb, Reap: &rc}
}

// TestFleetPrewarmBudgetLimitsDoublePrewarm checks the fleet-level
// allowance: with hedging enabled the same function is judged on two nodes
// around the same arrival, and the shared budget's refractory window must
// stop the second node from pre-warming (and charging) what the first
// already did. An uncapped fleet schedules freely; a capped one records
// denials and stays within its total.
func TestFleetPrewarmBudgetLimitsDoublePrewarm(t *testing.T) {
	base := func() Config {
		return Config{
			Nodes:           2,
			Workloads:       testWorkloads(t, "Auth-G", "Email-P"),
			Node:            prewarmNode(),
			Traffic:         predictTraffic(),
			HedgeDelayMinMs: 0.5,
		}
	}

	free, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	unlimited := free.PrewarmLedger()
	if unlimited.Scheduled == 0 {
		t.Fatalf("uncapped fleet scheduled no pre-warms: %+v", unlimited)
	}

	cfg := base()
	cfg.PrewarmBudget = unlimited.Scheduled / 2
	cfg.PrewarmRefractoryMs = 1
	capped, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := capped.PrewarmLedger()
	if l.Scheduled > cfg.PrewarmBudget {
		t.Errorf("budget %d exceeded: %d scheduled", cfg.PrewarmBudget, l.Scheduled)
	}
	if l.BudgetDenied == 0 {
		t.Errorf("capped fleet recorded no budget denials: %+v", l)
	}
	if err := Audit(&capped); err != nil {
		t.Errorf("audit: %v", err)
	}
}

// TestFleetPrewarmBudgetRequiresPredict pins the validation coupling: a
// budget without an armed forecaster is a configuration error, not a silent
// no-op.
func TestFleetPrewarmBudgetRequiresPredict(t *testing.T) {
	cfg := Config{Nodes: 1, Workloads: testWorkloads(t, "Auth-G"),
		Traffic: smallTraffic(), PrewarmBudget: 4}
	if _, err := Run(cfg); !errors.Is(err, cfgerr.ErrBadConfig) {
		t.Errorf("error = %v, want ErrBadConfig", err)
	}
}

package cluster

import "testing"

// TestFleetStepWarmAllocs pins the fleet front end's steady-state event step.
// Once the event heap, per-node walkers, and latency buffers reach their
// high-water marks, a warm dispatch step must average well under one object:
// the typed event heap removed the last per-push interface box, and anything
// above the amortized slice-growth residue means a per-dispatch allocation
// crept back in.
func TestFleetStepWarmAllocs(t *testing.T) {
	tc := smallTraffic()
	tc.InvocationsPerInstance = 500
	r, err := newRun(Config{
		Nodes:     1,
		Workloads: testWorkloads(t, "Auth-G"),
		Traffic:   tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		if r.live == 0 {
			t.Fatal("run drained mid-measure; raise InvocationsPerInstance")
		}
		if err := r.stepOne(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm until every pooled buffer has seen enough traffic to reach a
	// stable capacity.
	for i := 0; i < 200; i++ {
		step()
	}
	avg := testing.AllocsPerRun(32, step)
	if avg > 0.5 {
		t.Fatalf("warm fleet step allocates %.2f objects/run, want < 0.5", avg)
	}
}

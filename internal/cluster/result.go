package cluster

import (
	"fmt"
	"strings"

	"lukewarm/internal/faults"
	"lukewarm/internal/predict"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
)

// TierNames labels the brownout ladder's degradation tiers, by tier index.
var TierNames = [4]string{"full-service", "shed-low-priority", "record-only", "reject"}

// Result aggregates one fleet simulation.
type Result struct {
	// Nodes is the fleet size.
	Nodes int
	// Offered counts injected requests; every one resolves exactly once as
	// Served, Shed or Failed (the availability conservation invariant).
	Offered int
	// Served counts requests that completed with a response.
	Served int
	// Shed counts requests the brownout ladder dropped deliberately.
	Shed int
	// Failed counts requests lost to faults after exhausting resilience.
	Failed int
	// ShedLowPriority and TierRejected decompose Shed: tier-1 low-priority
	// sheds and tier-3 wholesale rejections.
	ShedLowPriority, TierRejected int
	// DeadlineFailed and RetriesExhausted decompose Failed: requests that
	// blew their end-to-end deadline waiting on backoff, and requests whose
	// last permitted attempt failed.
	DeadlineFailed, RetriesExhausted int
	// FailedAttempts counts dispatch attempts that failed (transient
	// flakes, instance crashes, no healthy node); each one either became a
	// retry or exhausted the budget: FailedAttempts == Retries +
	// RetriesExhausted, the no-double-count invariant.
	FailedAttempts int
	// Retries counts scheduled backoff retries.
	Retries int
	// Hedges counts hedged dispatches, WastedHedges the hedge races where
	// both copies completed (the loser's work is pure waste), HedgeRescues
	// the races where the hedge saved a failed primary.
	Hedges, WastedHedges, HedgeRescues int
	// WastedHedgeCycles sums the losing copies' service cycles — the
	// compute bill of the hedging insurance.
	WastedHedgeCycles float64
	// DispatchFlakes, InstanceCrashes and NodeCrashes count fired fleet
	// faults; Ejections and Readmissions count health-checker actions.
	DispatchFlakes, InstanceCrashes, NodeCrashes int
	Ejections, Readmissions                      int
	// ManifestRestores counts crashed instances whose shipped REAP
	// manifest survived (Config.ShipManifests), so their restart restored
	// the working set instead of demand-faulting it.
	ManifestRestores int
	// ServedWhileDown counts completions attributed to a node that was down
	// or ejected at dispatch — a tripwire that must stay zero.
	ServedWhileDown int
	// ColdServed, LukewarmServed and WarmServed split served requests by
	// warmth class at dispatch; the matching Summary fields carry each
	// class's CPI distribution (the fleet-scope cold/lukewarm/warm split).
	ColdServed, LukewarmServed, WarmServed int
	ColdCPI, LukewarmCPI, WarmCPI          stats.Summary
	// LatencyCycles summarizes end-to-end request latency — original
	// arrival to winning completion, so backoff waits and retry queueing
	// inflate it.
	LatencyCycles stats.Summary
	// TimeInTierMs is simulated time spent in each degradation tier.
	TimeInTierMs [4]float64
	// TierShifts counts brownout-ladder transitions.
	TierShifts int
	// Injections totals fired fault injections across the plan.
	Injections uint64
	// SimulatedMs is the fleet's simulated span (slowest node).
	SimulatedMs float64
	// PerNode carries each node's full traffic result, in node order.
	PerNode []serverless.TrafficResult

	latencies []float64
}

// Availability is the fraction of offered requests that were served.
func (r *Result) Availability() float64 {
	return stats.Ratio(float64(r.Served), float64(r.Offered))
}

// P50LatencyCycles reports the median end-to-end latency.
func (r *Result) P50LatencyCycles() float64 { return stats.Percentile(r.latencies, 50) }

// P95LatencyCycles reports the 95th-percentile end-to-end latency.
func (r *Result) P95LatencyCycles() float64 { return stats.Percentile(r.latencies, 95) }

// P99LatencyCycles reports the 99th-percentile end-to-end latency.
func (r *Result) P99LatencyCycles() float64 { return stats.Percentile(r.latencies, 99) }

// PrewarmLedger aggregates every node's predictive pre-warm ledger — the
// fleet-wide speculation bill. Zero when Traffic.Predict is not armed.
func (r *Result) PrewarmLedger() predict.Ledger {
	var l predict.Ledger
	for i := range r.PerNode {
		l.Add(r.PerNode[i].Prewarm)
	}
	return l
}

// Counters flattens the result into the conservation ledger
// faults.AuditFleet checks.
func (r *Result) Counters() faults.FleetCounters {
	c := faults.FleetCounters{
		Offered: r.Offered, Served: r.Served, Shed: r.Shed, Failed: r.Failed,
		ShedLowPriority: r.ShedLowPriority, TierRejected: r.TierRejected,
		DeadlineFailed: r.DeadlineFailed, RetriesExhausted: r.RetriesExhausted,
		FailedAttempts: r.FailedAttempts, Retries: r.Retries,
		Hedges: r.Hedges, WastedHedges: r.WastedHedges, HedgeRescues: r.HedgeRescues,
		InstanceCrashes: r.InstanceCrashes,
		ServedWhileDown: r.ServedWhileDown,
	}
	for i := range r.PerNode {
		n := &r.PerNode[i]
		c.NodeOffered += n.Offered
		c.NodeServed += n.Served
		c.NodeShed += n.Shed
		c.NodeFailed += n.Failed
		// The fleet front end owns overload shedding, so any node-valve
		// shed would surface here and unbalance the Shed breakdown.
		c.ValveShed += n.Shed
	}
	return c
}

// Audit checks the fleet run's conservation invariants: the fleet ledger
// (faults.AuditFleet), every per-node traffic result, and the warmth-class
// split of served requests.
func Audit(r *Result) error {
	if err := faults.AuditFleet(r.Counters()); err != nil {
		return err
	}
	for i := range r.PerNode {
		if err := faults.AuditTraffic(r.PerNode[i]); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	if r.ColdServed+r.LukewarmServed+r.WarmServed != r.Served {
		return fmt.Errorf("cluster: audit: class split %d+%d+%d != served %d",
			r.ColdServed, r.LukewarmServed, r.WarmServed, r.Served)
	}
	if n := r.ColdCPI.N() + r.LukewarmCPI.N() + r.WarmCPI.N(); n != r.Served {
		return fmt.Errorf("cluster: audit: %d class CPI samples for %d served", n, r.Served)
	}
	if r.LatencyCycles.N() != r.Served {
		return fmt.Errorf("cluster: audit: %d latency samples for %d served", r.LatencyCycles.N(), r.Served)
	}
	return nil
}

// Summary is the flat, gob-safe projection of a Result (plain values only),
// the form experiment runners cache inside runner.Measurement.
type Summary struct {
	Nodes                                        int
	Offered, Served, Shed, Failed                int
	ShedLowPriority, TierRejected                int
	DeadlineFailed, RetriesExhausted             int
	FailedAttempts, Retries                      int
	Hedges, WastedHedges, HedgeRescues           int
	WastedHedgeCycles                            float64
	DispatchFlakes, InstanceCrashes, NodeCrashes int
	Ejections, Readmissions                      int
	ColdServed, LukewarmServed, WarmServed       int
	ColdCPI, LukewarmCPI, WarmCPI                float64
	AvailabilityPct                              float64
	MeanLatencyCycles                            float64
	P50LatencyCyc, P95LatencyCyc, P99LatencyCyc  float64
	TimeInTierMs                                 [4]float64
	TierShifts                                   int
	Injections                                   uint64
	SimulatedMs                                  float64
	PerNode                                      []serverless.TrafficSummary
}

// Summary projects the result into its cacheable form.
func (r *Result) Summary() Summary {
	s := Summary{
		Nodes:   r.Nodes,
		Offered: r.Offered, Served: r.Served, Shed: r.Shed, Failed: r.Failed,
		ShedLowPriority: r.ShedLowPriority, TierRejected: r.TierRejected,
		DeadlineFailed: r.DeadlineFailed, RetriesExhausted: r.RetriesExhausted,
		FailedAttempts: r.FailedAttempts, Retries: r.Retries,
		Hedges: r.Hedges, WastedHedges: r.WastedHedges, HedgeRescues: r.HedgeRescues,
		WastedHedgeCycles: r.WastedHedgeCycles,
		DispatchFlakes:    r.DispatchFlakes, InstanceCrashes: r.InstanceCrashes,
		NodeCrashes: r.NodeCrashes, Ejections: r.Ejections, Readmissions: r.Readmissions,
		ColdServed: r.ColdServed, LukewarmServed: r.LukewarmServed, WarmServed: r.WarmServed,
		ColdCPI: r.ColdCPI.Mean(), LukewarmCPI: r.LukewarmCPI.Mean(), WarmCPI: r.WarmCPI.Mean(),
		AvailabilityPct:   r.Availability() * 100,
		MeanLatencyCycles: r.LatencyCycles.Mean(),
		P50LatencyCyc:     r.P50LatencyCycles(),
		P95LatencyCyc:     r.P95LatencyCycles(),
		P99LatencyCyc:     r.P99LatencyCycles(),
		TimeInTierMs:      r.TimeInTierMs,
		TierShifts:        r.TierShifts,
		Injections:        r.Injections,
		SimulatedMs:       r.SimulatedMs,
	}
	for i := range r.PerNode {
		s.PerNode = append(s.PerNode, r.PerNode[i].Summary())
	}
	return s
}

// String renders a multi-line fleet report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet of %d nodes over %.0f ms simulated: availability %.2f%% (%d served / %d shed / %d failed of %d offered)\n",
		r.Nodes, r.SimulatedMs, r.Availability()*100, r.Served, r.Shed, r.Failed, r.Offered)
	fmt.Fprintf(&b, "  warmth split: %d cold (CPI %.3f), %d lukewarm (CPI %.3f), %d warm (CPI %.3f)\n",
		r.ColdServed, r.ColdCPI.Mean(), r.LukewarmServed, r.LukewarmCPI.Mean(), r.WarmServed, r.WarmCPI.Mean())
	fmt.Fprintf(&b, "  latency: mean %.0f / p50 %.0f / p95 %.0f / p99 %.0f cycles (retry- and backoff-inflated)\n",
		r.LatencyCycles.Mean(), r.P50LatencyCycles(), r.P95LatencyCycles(), r.P99LatencyCycles())
	fmt.Fprintf(&b, "  resilience: %d retries, %d exhausted, %d deadline-failed, %d failed attempts; %d hedges (%d wasted costing %.0f cycles, %d rescues)\n",
		r.Retries, r.RetriesExhausted, r.DeadlineFailed, r.FailedAttempts,
		r.Hedges, r.WastedHedges, r.WastedHedgeCycles, r.HedgeRescues)
	fmt.Fprintf(&b, "  faults: %d node crashes, %d instance crashes, %d dispatch flakes (%d injections total); health: %d ejections, %d readmissions, %d served-while-down; %d manifest restores\n",
		r.NodeCrashes, r.InstanceCrashes, r.DispatchFlakes, r.Injections,
		r.Ejections, r.Readmissions, r.ServedWhileDown, r.ManifestRestores)
	fmt.Fprintf(&b, "  brownout: %d low-priority shed, %d rejected; %d tier shifts; time in tier", r.ShedLowPriority, r.TierRejected, r.TierShifts)
	for i, ms := range r.TimeInTierMs {
		fmt.Fprintf(&b, " %s=%.0fms", TierNames[i], ms)
	}
	b.WriteString("\n")
	if l := r.PrewarmLedger(); l.Scheduled > 0 || l.BudgetDenied > 0 {
		fmt.Fprintf(&b, "  pre-warms: %d scheduled fleet-wide (%d used / %d partial / %d wasted, %d expired), %d budget-denied, %.1f KiB wasted replay\n",
			l.Scheduled, l.Used, l.Partial, l.Wasted, l.Expired, l.BudgetDenied,
			float64(l.WastedReplayBytes)/1024)
	}
	for i := range r.PerNode {
		fmt.Fprintf(&b, "  node %d: %s\n", i, r.PerNode[i].String())
	}
	return b.String()
}

// CSVHeader is the column layout of CSV rows.
const CSVHeader = "nodes,offered,served,shed,failed,availability_pct,cold,lukewarm,warm," +
	"cold_cpi,lukewarm_cpi,warm_cpi,p50_lat_cyc,p99_lat_cyc,retries,hedges,wasted_hedges," +
	"node_crashes,instance_crashes,dispatch_flakes,ejections,manifest_restores,time_degraded_ms"

// CSV renders the fleet result as one comma-separated row (CSVHeader order).
func (r *Result) CSV() string {
	degraded := r.TimeInTierMs[1] + r.TimeInTierMs[2] + r.TimeInTierMs[3]
	return fmt.Sprintf("%d,%d,%d,%d,%d,%.3f,%d,%d,%d,%.4f,%.4f,%.4f,%.0f,%.0f,%d,%d,%d,%d,%d,%d,%d,%d,%.1f",
		r.Nodes, r.Offered, r.Served, r.Shed, r.Failed, r.Availability()*100,
		r.ColdServed, r.LukewarmServed, r.WarmServed,
		r.ColdCPI.Mean(), r.LukewarmCPI.Mean(), r.WarmCPI.Mean(),
		r.P50LatencyCycles(), r.P99LatencyCycles(),
		r.Retries, r.Hedges, r.WastedHedges,
		r.NodeCrashes, r.InstanceCrashes, r.DispatchFlakes, r.Ejections,
		r.ManifestRestores, degraded)
}

// AvailabilityPct mirrors Result.Availability as a percentage.
func (s Summary) Availability() float64 { return s.AvailabilityPct / 100 }

// Package cluster simulates a fleet of serverless nodes behind a resilient
// front-end load balancer. Each node is a full serverless.Server (cores,
// private hierarchies, shared LLC + DRAM, optional Jukebox) hosting one
// instance of every deployed function; the front end routes each request to
// a node with the same pluggable sched.Placer policies the single-node
// traffic engine uses per-core — placement policy applies at fleet scope.
//
// The fleet is where the paper's single-node story meets failure reality:
// a node crash destroys every resident instance's warm microarchitectural
// state and its Jukebox metadata, so rescheduled functions restart cold
// elsewhere (the cost Jukebox's in-DRAM metadata was supposed to amortize).
// The front end carries production-shaped resilience machinery — per-request
// deadlines, a retry budget with exponential backoff and seeded jitter,
// optional hedged requests after a P99-based delay, health checking with
// ejection/readmission, and a brownout ladder of graceful-degradation tiers
// (full service → shed low-priority → record-only Jukebox → reject) driven
// by fleet queue depth.
//
// Everything is deterministic: arrivals, backoff jitter and fault decisions
// come from independent seeded xorshift streams, fault strikes are keyed
// Bernoulli draws (faults.Plan.AttemptFails) so the struck set nests as
// probabilities rise, and the event loop is single-threaded with a total
// (time, sequence) order. A 1-node cluster with faults and resilience
// features disabled reproduces Server.ServeTraffic exactly.
package cluster

import (
	"math"

	"lukewarm/internal/cfgerr"
	"lukewarm/internal/faults"
	"lukewarm/internal/mem"
	"lukewarm/internal/predict"
	"lukewarm/internal/program"
	"lukewarm/internal/sched"
	"lukewarm/internal/serverless"
	"lukewarm/internal/stats"
	"lukewarm/internal/workload"
)

// Config describes one fleet simulation.
type Config struct {
	// Nodes is the fleet size. Every workload is deployed on every node.
	Nodes int
	// Node configures each simulated node (all nodes are identical).
	Node serverless.Config
	// Workloads are the functions deployed fleet-wide, one instance per
	// node each, in deployment order.
	Workloads []workload.Workload
	// Traffic shapes the client arrival processes and the node-local
	// dispatch (keep-alive, per-core placement). One arrival flow runs per
	// (node, function) pair, so offered load scales with fleet size. The
	// fleet front end owns overload protection: the node-level valves
	// (MaxQueue, ShedAfterMs) must be off.
	Traffic serverless.TrafficConfig
	// FleetPlacer picks the node that serves each request, seeing one
	// sched.CoreView per healthy node (FreeAtMs = the node's least-loaded
	// core, Last/ForeignSince = fleet-level warmth of the request's
	// function). Nil selects sched.EarliestAvailable. Stateful placers must
	// not be shared between concurrent runs.
	FleetPlacer sched.Placer
	// NodePlacer, when set, builds a fresh per-core placement policy for
	// each node (stateful policies must not be shared across nodes); it
	// overrides Traffic.Placer. When nil, Traffic.Placer is used as-is on
	// every node — fine for the stateless policies, wrong for stateful ones
	// on a multi-node fleet.
	NodePlacer func() sched.Placer

	// DeadlineMs fails any request still unserved this long after its
	// original arrival (checked when a retry comes up for dispatch).
	// 0 disables the deadline.
	DeadlineMs float64
	// RetryMax is how many times a failed attempt may be retried. 0 means
	// a first failure is final.
	RetryMax int
	// RetryBackoffMs is the base exponential-backoff delay: retry i waits
	// RetryBackoffMs·2^i plus up to 50% seeded jitter. Required positive
	// when RetryMax > 0.
	RetryBackoffMs float64
	// HedgeDelayMinMs enables hedged requests: when the chosen node's
	// predicted queueing delay exceeds max(HedgeDelayMinMs, observed P99
	// request latency), the request is also dispatched on the next-best
	// healthy node and the earlier completion wins; the loser is wasted
	// work. 0 disables hedging.
	HedgeDelayMinMs float64
	// EjectAfter ejects a node from rotation after this many consecutive
	// node-attributed failures (flakes, instance crashes). 0 disables
	// health ejection.
	EjectAfter int
	// EjectMs is how long an ejected node stays out before readmission.
	// Required positive when EjectAfter > 0.
	EjectMs float64

	// ShedLowAtMs, RecordOnlyAtMs and RejectAtMs arm the brownout ladder:
	// when the fleet's queue depth — the best healthy node's backlog in
	// milliseconds — reaches a rung's threshold, the fleet degrades to that
	// tier (1: shed low-priority functions, 2: additionally switch Jukebox
	// to record-only, 3: additionally reject everything). A tier is left
	// when the depth falls below half its threshold (hysteresis). 0
	// disables a rung.
	ShedLowAtMs, RecordOnlyAtMs, RejectAtMs float64
	// LowPriority names the functions tier 1 sheds.
	LowPriority []string

	// Faults, when non-nil, drives the fleet fault model; arm NodeCrash,
	// InstanceCrash and/or DispatchFlake on it. Nil runs fault-free.
	Faults *faults.Plan
	// InstanceCrashProb is the per-dispatch probability an armed
	// InstanceCrash kills the instance mid-invocation (work done, response
	// lost, instance cold afterwards).
	InstanceCrashProb float64
	// DispatchFlakeProb is the per-dispatch probability an armed
	// DispatchFlake drops the attempt before it reaches the node.
	DispatchFlakeProb float64
	// NodeCrashMTBFms is each node's mean time between whole-node crashes
	// (exponential, seeded); 0 disables node crashes even when armed.
	NodeCrashMTBFms float64
	// NodeDownMs is how long a crashed node stays dark. Required positive
	// when node crashes are enabled.
	NodeDownMs float64
	// ShipManifests keeps each instance's REAP manifest across node
	// crashes — the record file is shipped to durable storage with the
	// snapshot — so rescheduled instances restore their working set
	// instead of demand-faulting everything. No effect unless Node.Reap
	// is configured.
	ShipManifests bool

	// PrewarmBudget caps predictive pre-warms fleet-wide (0 = unlimited)
	// and PrewarmRefractoryMs is the minimum spacing between granted
	// pre-warms of the same function anywhere in the fleet (0 = none):
	// hedged or retried traffic judged on two nodes must not pre-warm (and
	// charge) the same arrival twice. Both require Traffic.Predict armed;
	// when either is set and Traffic.Predict.Budget is nil, Run installs a
	// shared predict.Budget across every node's simulation.
	PrewarmBudget       int
	PrewarmRefractoryMs float64
}

// Validate reports whether the fleet configuration is runnable. Errors wrap
// cfgerr.ErrBadConfig.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return cfgerr.New("cluster: Nodes must be positive, got %d", c.Nodes)
	case len(c.Workloads) == 0:
		return cfgerr.New("cluster: no workloads deployed")
	case c.Traffic.MaxQueue != 0 || c.Traffic.ShedAfterMs > 0:
		return cfgerr.New("cluster: node-level valves (MaxQueue %d, ShedAfterMs %g) must be off; the fleet front end owns overload protection",
			c.Traffic.MaxQueue, c.Traffic.ShedAfterMs)
	case c.DeadlineMs < 0:
		return cfgerr.New("cluster: negative DeadlineMs %g", c.DeadlineMs)
	case c.RetryMax < 0:
		return cfgerr.New("cluster: negative RetryMax %d", c.RetryMax)
	case c.RetryMax > 0 && c.RetryBackoffMs <= 0:
		return cfgerr.New("cluster: RetryMax %d needs a positive RetryBackoffMs, got %g", c.RetryMax, c.RetryBackoffMs)
	case c.RetryBackoffMs < 0:
		return cfgerr.New("cluster: negative RetryBackoffMs %g", c.RetryBackoffMs)
	case c.HedgeDelayMinMs < 0:
		return cfgerr.New("cluster: negative HedgeDelayMinMs %g", c.HedgeDelayMinMs)
	case c.EjectAfter < 0:
		return cfgerr.New("cluster: negative EjectAfter %d", c.EjectAfter)
	case c.EjectAfter > 0 && c.EjectMs <= 0:
		return cfgerr.New("cluster: EjectAfter %d needs a positive EjectMs, got %g", c.EjectAfter, c.EjectMs)
	case c.ShedLowAtMs < 0 || c.RecordOnlyAtMs < 0 || c.RejectAtMs < 0:
		return cfgerr.New("cluster: negative brownout threshold (%g/%g/%g)", c.ShedLowAtMs, c.RecordOnlyAtMs, c.RejectAtMs)
	case c.RecordOnlyAtMs > 0 && c.ShedLowAtMs > c.RecordOnlyAtMs:
		return cfgerr.New("cluster: ShedLowAtMs %g above RecordOnlyAtMs %g", c.ShedLowAtMs, c.RecordOnlyAtMs)
	case c.RejectAtMs > 0 && (c.ShedLowAtMs > c.RejectAtMs || c.RecordOnlyAtMs > c.RejectAtMs):
		return cfgerr.New("cluster: brownout ladder not monotone (%g/%g/%g)", c.ShedLowAtMs, c.RecordOnlyAtMs, c.RejectAtMs)
	case c.InstanceCrashProb < 0 || c.InstanceCrashProb > 1:
		return cfgerr.New("cluster: InstanceCrashProb %g outside [0, 1]", c.InstanceCrashProb)
	case c.DispatchFlakeProb < 0 || c.DispatchFlakeProb > 1:
		return cfgerr.New("cluster: DispatchFlakeProb %g outside [0, 1]", c.DispatchFlakeProb)
	case c.NodeCrashMTBFms < 0:
		return cfgerr.New("cluster: negative NodeCrashMTBFms %g", c.NodeCrashMTBFms)
	case c.NodeCrashMTBFms > 0 && c.NodeDownMs <= 0:
		return cfgerr.New("cluster: NodeCrashMTBFms %g needs a positive NodeDownMs, got %g", c.NodeCrashMTBFms, c.NodeDownMs)
	case c.Faults == nil && (c.InstanceCrashProb > 0 || c.DispatchFlakeProb > 0 || c.NodeCrashMTBFms > 0):
		return cfgerr.New("cluster: fault probabilities set but no fault plan armed")
	case c.PrewarmBudget < 0:
		return cfgerr.New("cluster: negative PrewarmBudget %d", c.PrewarmBudget)
	case c.PrewarmRefractoryMs < 0:
		return cfgerr.New("cluster: negative PrewarmRefractoryMs %g", c.PrewarmRefractoryMs)
	case (c.PrewarmBudget > 0 || c.PrewarmRefractoryMs > 0) && c.Traffic.Predict == nil:
		return cfgerr.New("cluster: pre-warm budget set (%d, %g ms) but Traffic.Predict is not armed",
			c.PrewarmBudget, c.PrewarmRefractoryMs)
	}
	if err := c.Traffic.Validate(); err != nil {
		return err
	}
	return nil
}

// fleetPlacer resolves the node-placement policy.
func (c Config) fleetPlacer() sched.Placer {
	if c.FleetPlacer != nil {
		return c.FleetPlacer
	}
	return sched.EarliestAvailable()
}

// Event kinds of the fleet loop.
const (
	evArrival = iota // a request attempt comes up for dispatch
	evNodeCrash
	evReadmit // an ejected node rejoins rotation
)

// event is one entry of the fleet event heap.
type event struct {
	at   mem.Cycle
	seq  int // tie-breaker: insertion order
	kind int
	// Arrival fields.
	flow    int
	attempt int
	origAt  mem.Cycle // first arrival time, for deadline + latency
	reqKey  uint64    // keys the request's fault draws
	// Node-event field.
	node int
}

// eventQueue is a typed min-heap of events ordered by (time, insertion
// order). The ordering is total, so the pop sequence — the only observable —
// is independent of heap internals; the typed implementation (mirroring
// serverless.arrivalQueue) exists so pushes do not box each event into an
// interface on every enqueue.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push adds e onto the heap.
//lukewarm:hotpath noalloc every fleet event — arrivals, retries, crashes, readmissions — is enqueued here
func (q *eventQueue) push(e event) {
	*q = append(*q, e) //lukewarm:hotalloc the backing array grows to the in-flight high-water mark once, then is reused
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
//lukewarm:hotpath noalloc,noescape one pop per fleet event; pure in-place swaps
func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	v := h[0]
	h[0] = h[n]
	*q = h[:n]
	h = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.less(r, l) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return v
}

// node is one failure domain: a full serverless server plus its health and
// availability state.
type node struct {
	srv   *serverless.Server
	sim   *serverless.TrafficSim
	insts []*serverless.Instance // by workload index
	// downUntil/ejectedUntil gate the node out of rotation; a node is
	// dispatchable at t only when t is at or past both.
	downUntil    mem.Cycle
	ejectedUntil mem.Cycle
	consecFails  int
	work         int // dispatches that ran here (fleet warmth meter)
}

func (n *node) healthy(t mem.Cycle) bool {
	return t >= n.downUntil && t >= n.ejectedUntil
}

// flow is one client arrival stream: a (node, function) pair's request
// sequence. The origin node only phases the stream; requests route anywhere.
type flow struct {
	wIdx      int
	fn        string
	remaining int
}

// affinity is the fleet-level warmth of one function: where it last ran and
// how much foreign work that node has absorbed since.
type affinity struct {
	lastNode int
	workMark int
}

// run is the in-flight state of one fleet simulation.
type run struct {
	cfg         Config
	nodes       []*node
	flows       []flow
	aff         []affinity // by workload index
	lowPri      map[string]bool
	cyclesPerMs float64
	q           eventQueue
	seq         int
	live        int // requests not yet resolved (incl. not yet injected)

	// Per-attempt placement scratch, reused across events so the dispatch
	// front end stays allocation-free; every placer only reads the views.
	healthyScratch []int
	viewScratch    []sched.CoreView

	arrivalRNG *program.RNG
	jitterRNG  *program.RNG
	shape      sched.Shape
	placer     sched.Placer

	tier        int
	th          [4]float64 // brownout thresholds by tier (0 unused)
	replayOn    bool       // Jukebox replay currently enabled fleet-wide
	lastEventAt mem.Cycle
	hedgeP99Ms  float64 // cached P99 latency in ms for the hedge delay
	res         Result
}

// Run executes the fleet simulation to completion: every flow's requests
// are injected, routed, retried and resolved, and the aggregate result
// returned. It returns an error (wrapping cfgerr.ErrBadConfig) for an
// unrunnable configuration.
func Run(cfg Config) (Result, error) {
	r, err := newRun(cfg)
	if err != nil {
		return Result{}, err
	}
	for r.live > 0 {
		if err := r.stepOne(); err != nil {
			return Result{}, err
		}
	}
	return r.finish(), nil
}

// newRun validates cfg, builds the fleet, and injects every arrival stream,
// leaving the run ready for stepOne to drain.
func newRun(cfg Config) (*run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &run{
		cfg:        cfg,
		lowPri:     map[string]bool{},
		arrivalRNG: program.NewRNG(program.Mix(0x7AF1C, cfg.Traffic.Seed)),
		jitterRNG:  program.NewRNG(program.Mix(0xC1F57, cfg.Traffic.Seed)),
		shape:      cfg.Traffic.Shape(),
		placer:     cfg.fleetPlacer(),
		replayOn:   cfg.Node.Jukebox != nil && cfg.Node.Jukebox.ReplayEnabled,
		th:         [4]float64{0, cfg.ShedLowAtMs, cfg.RecordOnlyAtMs, cfg.RejectAtMs},
	}
	for _, fn := range cfg.LowPriority {
		r.lowPri[fn] = true
	}
	// Arm the shared fleet pre-warm budget: every node's sim judges against
	// the same allowance, so a function hedged across two nodes pre-warms
	// on at most one of them. The caller's Config is copied, not mutated.
	if cfg.Traffic.Predict != nil && cfg.Traffic.Predict.Budget == nil &&
		(cfg.PrewarmBudget > 0 || cfg.PrewarmRefractoryMs > 0) {
		pc := *cfg.Traffic.Predict
		pc.Budget = predict.NewBudget(cfg.PrewarmBudget, cfg.PrewarmRefractoryMs)
		cfg.Traffic.Predict = &pc
		r.cfg.Traffic.Predict = &pc
	}
	// Build the fleet: identical nodes, every workload on every node.
	for n := 0; n < cfg.Nodes; n++ {
		srv, err := serverless.NewErr(cfg.Node)
		if err != nil {
			return nil, err
		}
		nd := &node{srv: srv}
		for _, w := range cfg.Workloads {
			nd.insts = append(nd.insts, srv.Deploy(w))
		}
		tcfg := cfg.Traffic
		if cfg.NodePlacer != nil {
			tcfg.Placer = cfg.NodePlacer()
		}
		if nd.sim, err = srv.NewTrafficSim(tcfg); err != nil {
			return nil, err
		}
		r.nodes = append(r.nodes, nd)
	}
	r.cyclesPerMs = r.nodes[0].sim.CyclesPerMs()
	r.aff = make([]affinity, len(cfg.Workloads))
	for i := range r.aff {
		r.aff[i] = affinity{lastNode: -1}
	}
	// Inject the flows: one arrival stream per (node, function) pair, in
	// node-major order, each phase-shifted exactly like ServeTraffic's
	// per-instance streams.
	for n := 0; n < cfg.Nodes; n++ {
		for w := range cfg.Workloads {
			fIdx := len(r.flows)
			r.flows = append(r.flows, flow{wIdx: w, fn: cfg.Workloads[w].Name, remaining: cfg.Traffic.InvocationsPerInstance})
			first := r.nodes[n].srv.Core.Now() +
				mem.Cycle(r.arrivalRNG.Float64()*cfg.Traffic.MeanIATms*r.cyclesPerMs)
			r.push(event{at: first, kind: evArrival, flow: fIdx, origAt: first,
				reqKey: reqKey(fIdx, 0)})
		}
	}
	r.live = len(r.flows) * cfg.Traffic.InvocationsPerInstance
	r.lastEventAt = r.nodes[0].srv.Core.Now()
	// Seed each node's crash schedule (plan-stream draws in node order).
	if cfg.Faults != nil && cfg.Faults.Armed(faults.NodeCrash) && cfg.NodeCrashMTBFms > 0 {
		for n := range r.nodes {
			if gap := cfg.Faults.NodeCrashGapMs(cfg.NodeCrashMTBFms); gap > 0 {
				r.push(event{at: r.lastEventAt + mem.Cycle(gap*r.cyclesPerMs), kind: evNodeCrash, node: n})
			}
		}
	}

	return r, nil
}

// stepOne pops and serves one fleet event — the per-dispatch front-end step
// the steady-state allocation pin measures.
func (r *run) stepOne() error {
	if r.q.Len() == 0 {
		return cfgerr.New("cluster: event heap drained with %d requests unresolved", r.live)
	}
	e := r.q.pop()
	r.accountTier(e.at)
	switch e.kind {
	case evNodeCrash:
		r.crashNode(e)
	case evReadmit:
		r.nodes[e.node].consecFails = 0
		r.res.Readmissions++
	case evArrival:
		r.serveAttempt(e)
	}
	return nil
}

// reqKey identifies one request for keyed fault draws.
func reqKey(flowIdx, reqIdx int) uint64 {
	return program.Mix(uint64(flowIdx)<<32|uint64(uint32(reqIdx)), 0x4EC0)
}

// push enqueues an event with the next sequence number.
func (r *run) push(e event) {
	e.seq = r.seq
	r.seq++
	r.q.push(e)
}

// accountTier charges the time since the last event to the current tier.
func (r *run) accountTier(at mem.Cycle) {
	if at > r.lastEventAt {
		r.res.TimeInTierMs[r.tier] += float64(at-r.lastEventAt) / r.cyclesPerMs
		r.lastEventAt = at
	}
}

// crashNode takes a whole node down: every resident instance loses its warm
// state and Jukebox metadata, the node leaves rotation for NodeDownMs, and
// the next crash is scheduled after recovery. With ShipManifests, REAP
// record files survive the crash and the restarted instances restore from
// them instead of going fully cold.
func (r *run) crashNode(e event) {
	nd := r.nodes[e.node]
	nd.downUntil = e.at + mem.Cycle(r.cfg.NodeDownMs*r.cyclesPerMs)
	for _, inst := range nd.insts {
		if r.cfg.ShipManifests && inst.Reap != nil {
			nd.sim.MarkCrashedShipped(inst)
			if inst.Reap.ManifestView().Pages() > 0 {
				r.res.ManifestRestores++
			}
			continue
		}
		nd.sim.MarkCrashed(inst)
	}
	nd.srv.FlushMicroarch()
	r.res.NodeCrashes++
	r.cfg.Faults.RecordInjection(faults.NodeCrash)
	if gap := r.cfg.Faults.NodeCrashGapMs(r.cfg.NodeCrashMTBFms); gap > 0 {
		r.push(event{at: nd.downUntil + mem.Cycle(gap*r.cyclesPerMs), kind: evNodeCrash, node: e.node})
	}
}

// fleetLagMs is the brownout ladder's queue-depth signal: the backlog, in
// milliseconds, of the best healthy node (how long a request arriving now
// would wait for a core anywhere). No healthy node reads as infinite depth.
func (r *run) fleetLagMs(t mem.Cycle) float64 {
	lag := math.Inf(1)
	for _, nd := range r.nodes {
		if !nd.healthy(t) {
			continue
		}
		free := nd.sim.EarliestFreeAt()
		l := 0.0
		if free > t {
			l = float64(free-t) / r.cyclesPerMs
		}
		if l < lag {
			lag = l
		}
	}
	return lag
}

// updateTier walks the brownout ladder: rise to the highest armed rung whose
// threshold the queue depth reaches, fall (with 50% hysteresis) once it
// drains. Crossing the record-only rung toggles Jukebox replay fleet-wide.
func (r *run) updateTier(lag float64) {
	up := 0
	for i := 1; i <= 3; i++ {
		if r.th[i] > 0 && lag >= r.th[i] {
			up = i
		}
	}
	t := r.tier
	if up >= t {
		t = up
	} else {
		for t > up && !(r.th[t] > 0 && lag >= r.th[t]/2) {
			t--
		}
	}
	if t == r.tier {
		return
	}
	r.res.TierShifts++
	wasRecordOnly, isRecordOnly := r.tier >= 2, t >= 2
	r.tier = t
	if r.replayOn && wasRecordOnly != isRecordOnly {
		for _, nd := range r.nodes {
			for _, inst := range nd.insts {
				if inst.Jukebox != nil {
					inst.Jukebox.SetReplayEnabled(!isRecordOnly)
				}
			}
		}
	}
}

// serveAttempt processes one request attempt: brownout ladder, deadline,
// node placement, fault draws, dispatch (with optional hedge), and retry or
// resolution.
func (r *run) serveAttempt(e event) {
	f := &r.flows[e.flow]
	first := e.attempt == 0
	if first {
		r.res.Offered++
	}
	r.updateTier(r.fleetLagMs(e.at))
	switch {
	case r.tier >= 3:
		r.res.TierRejected++
		r.res.Shed++
		r.resolve(e, first)
		return
	case r.tier >= 1 && r.lowPri[f.fn]:
		r.res.ShedLowPriority++
		r.res.Shed++
		r.resolve(e, first)
		return
	}
	if r.cfg.DeadlineMs > 0 && e.at > e.origAt+mem.Cycle(r.cfg.DeadlineMs*r.cyclesPerMs) {
		r.res.DeadlineFailed++
		r.res.Failed++
		r.resolve(e, first)
		return
	}
	// Healthy-node views for the fleet placer, built in pooled scratch.
	healthy := r.healthyScratch[:0]
	views := r.viewScratch[:0]
	af := &r.aff[f.wIdx]
	for n, nd := range r.nodes {
		if !nd.healthy(e.at) {
			continue
		}
		v := sched.CoreView{
			FreeAtMs: float64(nd.sim.EarliestFreeAt()) / r.cyclesPerMs,
			Last:     af.lastNode == n,
		}
		if v.Last {
			v.ForeignSince = nd.work - af.workMark
			v.Bound = r.cfg.Node.Jukebox != nil
		}
		healthy = append(healthy, n)
		views = append(views, v)
	}
	r.healthyScratch, r.viewScratch = healthy, views
	if len(healthy) == 0 {
		r.attemptFailed(e, first)
		return
	}
	pick := r.placer.Place(sched.Request{
		Func:       f.fn,
		ArrivalMs:  float64(e.at) / r.cyclesPerMs,
		HasJukebox: r.cfg.Node.Jukebox != nil,
	}, views)
	primary := healthy[pick]
	// Hedge decision, before any dispatch: when the chosen node's backlog
	// predicts a wait past the hedge delay, race a second copy on the
	// next-best healthy node.
	hedge := -1
	if r.cfg.HedgeDelayMinMs > 0 && len(healthy) >= 2 {
		delay := r.cfg.HedgeDelayMinMs
		if r.hedgeP99Ms > delay {
			delay = r.hedgeP99Ms
		}
		wait := views[pick].FreeAtMs - float64(e.at)/r.cyclesPerMs
		if wait > delay {
			best := -1
			for i := range healthy {
				if i != pick && (best < 0 || views[i].FreeAtMs < views[best].FreeAtMs) {
					best = i
				}
			}
			if best >= 0 {
				hedge = healthy[best]
			}
		}
	}
	pOut, pOK := r.dispatchOn(primary, f, e, 0)
	var hOut serverless.DispatchOutcome
	hOK := false
	if hedge >= 0 {
		r.res.Hedges++
		hOut, hOK = r.dispatchOn(hedge, f, e, 1)
	}
	switch {
	case pOK && hOK:
		// Both completed: the earlier finisher wins, the other is wasted.
		if hOut.Done < pOut.Done {
			r.serve(e, f, hedge, hOut)
			r.res.WastedHedges++
			r.res.WastedHedgeCycles += pOut.ServiceCycles
		} else {
			r.serve(e, f, primary, pOut)
			r.res.WastedHedges++
			r.res.WastedHedgeCycles += hOut.ServiceCycles
		}
	case pOK:
		r.serve(e, f, primary, pOut)
	case hOK:
		r.res.HedgeRescues++
		r.serve(e, f, hedge, hOut)
	default:
		r.attemptFailed(e, first)
	}
}

// dispatchOn runs one attempt copy on a node, applying the transient-flake
// and instance-crash fault draws. Reports the outcome and whether the copy
// produced a response.
func (r *run) dispatchOn(n int, f *flow, e event, hedgeBit uint64) (serverless.DispatchOutcome, bool) {
	nd := r.nodes[n]
	key := program.Mix(e.reqKey, uint64(e.attempt)<<1|hedgeBit)
	if r.cfg.Faults != nil &&
		r.cfg.Faults.AttemptFails(faults.DispatchFlake, program.Mix(key, 0xF1A4E), r.cfg.DispatchFlakeProb) {
		r.res.DispatchFlakes++
		r.nodeFailure(n, e.at)
		return serverless.DispatchOutcome{}, false
	}
	doomed := r.cfg.Faults != nil &&
		r.cfg.Faults.AttemptFails(faults.InstanceCrash, program.Mix(key, 0x1C4A5), r.cfg.InstanceCrashProb)
	if !nd.healthy(e.at) {
		// Tripwire, not a code path: placement only offers healthy nodes.
		r.res.ServedWhileDown++
	}
	out := nd.sim.Dispatch(nd.insts[f.wIdx], e.at, doomed, nil)
	nd.work++
	if doomed {
		r.res.InstanceCrashes++
		r.nodeFailure(n, e.at)
		return out, false
	}
	nd.consecFails = 0
	return out, true
}

// nodeFailure records a node-attributed failure for health checking and
// ejects the node once it fails EjectAfter attempts in a row.
func (r *run) nodeFailure(n int, at mem.Cycle) {
	nd := r.nodes[n]
	nd.consecFails++
	if r.cfg.EjectAfter > 0 && nd.consecFails >= r.cfg.EjectAfter && at >= nd.ejectedUntil {
		nd.ejectedUntil = at + mem.Cycle(r.cfg.EjectMs*r.cyclesPerMs)
		r.res.Ejections++
		r.push(event{at: nd.ejectedUntil, kind: evReadmit, node: n})
	}
}

// serve resolves a request as served by node n with outcome out.
func (r *run) serve(e event, f *flow, n int, out serverless.DispatchOutcome) {
	r.res.Served++
	lat := float64(out.Done - e.origAt)
	r.res.LatencyCycles.Add(lat)
	r.res.latencies = append(r.res.latencies, lat)
	switch out.Class {
	case serverless.ClassCold:
		r.res.ColdServed++
		r.res.ColdCPI.Add(out.CPI)
	case serverless.ClassWarm:
		r.res.WarmServed++
		r.res.WarmCPI.Add(out.CPI)
	default:
		r.res.LukewarmServed++
		r.res.LukewarmCPI.Add(out.CPI)
	}
	af := &r.aff[f.wIdx]
	af.lastNode = n
	af.workMark = r.nodes[n].work
	// Refresh the hedge-delay P99 every 32 completions.
	if r.cfg.HedgeDelayMinMs > 0 && r.res.Served%32 == 0 {
		r.hedgeP99Ms = stats.Percentile(r.res.latencies, 99) / r.cyclesPerMs
	}
	r.resolve(e, e.attempt == 0)
}

// attemptFailed resolves one failed attempt: schedule a backoff retry while
// budget remains, otherwise the request fails for good.
func (r *run) attemptFailed(e event, first bool) {
	r.res.FailedAttempts++
	if e.attempt < r.cfg.RetryMax {
		r.res.Retries++
		backoff := r.cfg.RetryBackoffMs * float64(uint64(1)<<uint(e.attempt))
		backoff += r.jitterRNG.Float64() * backoff / 2
		at := e.at + mem.Cycle(backoff*r.cyclesPerMs)
		if at <= e.at {
			at = e.at + 1
		}
		r.push(event{at: at, kind: evArrival, flow: e.flow, attempt: e.attempt + 1,
			origAt: e.origAt, reqKey: e.reqKey})
		if first {
			r.nextArrival(e)
		}
		return
	}
	r.res.RetriesExhausted++
	r.res.Failed++
	r.resolve(e, first)
}

// resolve finishes one request (served, shed or failed) and, for a
// first-attempt event, draws the flow's next client arrival — the single
// arrival-stream RNG draw per injected request, in event order, exactly
// where ServeTraffic draws it.
func (r *run) resolve(e event, first bool) {
	r.live--
	if first {
		r.nextArrival(e)
	}
}

// nextArrival pushes the flow's next request, if any remain.
func (r *run) nextArrival(e event) {
	f := &r.flows[e.flow]
	f.remaining--
	if f.remaining <= 0 {
		return
	}
	gap := mem.Cycle(r.shape.GapMs(r.arrivalRNG, float64(e.at)/r.cyclesPerMs) * r.cyclesPerMs)
	if gap == 0 {
		gap = 1
	}
	at := e.at + gap
	r.push(event{at: at, kind: evArrival, flow: e.flow, origAt: at,
		reqKey: reqKey(e.flow, r.cfg.Traffic.InvocationsPerInstance-f.remaining)})
}

// finish seals every node sim and assembles the fleet result.
func (r *run) finish() Result {
	r.res.Nodes = r.cfg.Nodes
	for _, nd := range r.nodes {
		pr := nd.sim.Finish()
		r.res.PerNode = append(r.res.PerNode, pr)
		if pr.SimulatedMs > r.res.SimulatedMs {
			r.res.SimulatedMs = pr.SimulatedMs
		}
	}
	if r.cfg.Faults != nil {
		r.res.Injections = r.cfg.Faults.TotalInjections()
	}
	return r.res
}

package cluster

import (
	"testing"

	"lukewarm/internal/faults"
	"lukewarm/internal/serverless"
	"lukewarm/internal/workload"
)

// benchConfig builds a small fleet; faulty arms the whole failure model.
func benchConfig(b *testing.B, faulty bool) Config {
	b.Helper()
	var ws []workload.Workload
	for _, n := range []string{"Auth-G", "Email-P"} {
		w, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w)
	}
	tc := serverless.DefaultTrafficConfig()
	tc.MeanIATms = 50
	tc.InvocationsPerInstance = 6
	cfg := Config{Nodes: 3, Workloads: ws, Traffic: tc}
	if faulty {
		cfg.DeadlineMs = 400
		cfg.RetryMax = 1
		cfg.RetryBackoffMs = 2
		cfg.HedgeDelayMinMs = 0.5
		cfg.EjectAfter = 3
		cfg.EjectMs = 60
		cfg.Faults = faults.NewPlan(7, faults.NodeCrash, faults.InstanceCrash, faults.DispatchFlake)
		cfg.InstanceCrashProb = 0.1
		cfg.DispatchFlakeProb = 0.2
		cfg.NodeCrashMTBFms = 150
		cfg.NodeDownMs = 40
	}
	return cfg
}

// BenchmarkFleetFaultFree is the fleet event loop with the failure model
// off: pure dispatch and placement overhead on top of the node simulators.
func BenchmarkFleetFaultFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(benchConfig(b, false)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetChaos adds the full failure model and resilience front end:
// keyed fault draws, retries, hedges, ejection and the brownout ladder.
func BenchmarkFleetChaos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(benchConfig(b, true)); err != nil {
			b.Fatal(err)
		}
	}
}

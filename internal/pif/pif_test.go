package pif

import (
	"testing"

	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/vm"
)

var _ cpu.InstrPrefetcher = (*PIF)(nil)

func testProgram() *program.Program {
	return program.New(program.Config{
		Name: "pif-test-fn", Seed: 51, CodeKB: 192, DynamicInstrs: 120_000,
		CoreFrac: 0.85, OptionalProb: 0.8, RareFrac: 0.04, RareProb: 0.05,
		InstrPerLine: 16, LoadFrac: 0.22, StoreFrac: 0.08,
		CondFrac: 0.3, CondBias: 0.9, NoisyFrac: 0.02, IndirectFrac: 0.15, CallFrac: 0.35, SkipFrac: 0.05,
		DataKB: 96, HotDataKB: 16, HotDataFrac: 0.7, ColdDataFrac: 0.05,
		DepLoadFrac: 0.2, KernelFrac: 0.1,
	})
}

func newCoreWith(pf cpu.InstrPrefetcher) *cpu.Core {
	c := cpu.NewCore(cpu.SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	c.Prefetcher = pf
	return c
}

func lukewarmRun(c *cpu.Core, p *program.Program, n int) cpu.RunResult {
	var last cpu.RunResult
	for i := 0; i < n; i++ {
		c.FlushMicroarch()
		last = c.RunInvocation(p.NewInvocation(uint64(i)))
	}
	return last
}

func TestPIFRecordsAndReplays(t *testing.T) {
	c := cpu.NewCore(cpu.SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	pf := New(DefaultConfig(), c.Hier)
	c.Prefetcher = pf
	p := testProgram()
	c.FlushMicroarch()
	c.RunInvocation(p.NewInvocation(0))
	if pf.Stats.Appends == 0 {
		t.Fatal("PIF recorded nothing")
	}
	// Within one invocation loops revisit recorded code: some prefetches
	// must have been issued.
	if pf.Stats.Prefetches == 0 {
		t.Error("PIF issued no prefetches")
	}
	if pf.Stats.Reindexes == 0 {
		t.Error("PIF never re-indexed")
	}
}

func TestPIFNonPersistentLosesStateAcrossInvocations(t *testing.T) {
	c := cpu.NewCore(cpu.SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	pf := New(DefaultConfig(), c.Hier)
	c.Prefetcher = pf
	p := testProgram()
	lukewarmRun(c, p, 1)
	// At the next invocation start the history is gone.
	pf.InvocationStart(0)
	if len(pf.history) != 0 || len(pf.index) != 0 {
		t.Error("non-persistent PIF kept metadata across invocations")
	}
}

func TestPIFIdealPersists(t *testing.T) {
	c := cpu.NewCore(cpu.SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	pf := New(IdealConfig(), c.Hier)
	c.Prefetcher = pf
	p := testProgram()
	lukewarmRun(c, p, 1)
	before := len(pf.history)
	pf.InvocationStart(0)
	if len(pf.history) != before {
		t.Error("PIF-ideal lost metadata at invocation start")
	}
}

func TestPIFHistoryCapacityBounded(t *testing.T) {
	cfg := Config{HistoryBytes: 6 * 100, IndexBytes: 6 * 50, LookaheadBlocks: 8}
	hier := mem.NewHierarchy(mem.SkylakeHierarchy())
	pf := New(cfg, hier)
	for i := uint64(0); i < 10_000; i++ {
		pf.record(i << 6)
	}
	if len(pf.history) > 100 {
		t.Errorf("history grew to %d records (cap 100)", len(pf.history))
	}
	if len(pf.index) > 50 {
		t.Errorf("index grew to %d entries (cap 50)", len(pf.index))
	}
}

func TestPIFIndexPositionsValidAfterWrap(t *testing.T) {
	cfg := Config{HistoryBytes: 6 * 64, IndexBytes: 0, LookaheadBlocks: 8}
	hier := mem.NewHierarchy(mem.SkylakeHierarchy())
	pf := New(cfg, hier)
	for i := uint64(0); i < 1000; i++ {
		pf.record(i << 6)
	}
	for blk, pos := range pf.index {
		if pos < 0 || pos >= len(pf.history) {
			t.Fatalf("index position %d out of range", pos)
		}
		if pf.history[pos] != blk {
			t.Fatalf("index points at wrong record: %#x vs %#x", pf.history[pos], blk)
		}
	}
}

func TestPIFIdealBeatsPIFBeatsBaseline(t *testing.T) {
	p := testProgram()
	base := lukewarmRun(newCoreWith(nil), p, 3)
	run := func(cfg Config) cpu.RunResult {
		c := cpu.NewCore(cpu.SkylakeConfig())
		c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
		c.Prefetcher = New(cfg, c.Hier)
		return lukewarmRun(c, p, 3)
	}
	pifR := run(DefaultConfig())
	idealR := run(IdealConfig())

	if pifR.Cycles > base.Cycles {
		t.Errorf("PIF slower than baseline: %d vs %d", pifR.Cycles, base.Cycles)
	}
	if idealR.Cycles >= pifR.Cycles {
		t.Errorf("PIF-ideal (%d) not faster than PIF (%d)", idealR.Cycles, pifR.Cycles)
	}
	// The paper's key comparison: even PIF-ideal leaves most of the
	// opportunity on the table because bounded lookahead cannot hide DRAM
	// latency. Speedup should be positive but modest.
	speedup := float64(base.Cycles)/float64(idealR.Cycles) - 1
	if speedup <= 0 {
		t.Errorf("PIF-ideal speedup %.2f%% not positive", speedup*100)
	}
	if speedup > 0.25 {
		t.Errorf("PIF-ideal speedup %.1f%% implausibly high; lookahead model broken", speedup*100)
	}
}

func TestMultiPrefetcherFansOut(t *testing.T) {
	c := cpu.NewCore(cpu.SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	a := New(IdealConfig(), c.Hier)
	b := New(IdealConfig(), c.Hier)
	c.Prefetcher = cpu.MultiPrefetcher{a, b}
	p := testProgram()
	c.FlushMicroarch()
	c.RunInvocation(p.NewInvocation(0))
	if a.Stats.Appends == 0 || b.Stats.Appends == 0 {
		t.Error("MultiPrefetcher did not fan out hooks")
	}
	if a.Stats.Invocations != 1 || b.Stats.Invocations != 1 {
		t.Error("invocation boundaries not fanned out")
	}
}

func TestPIFResetStats(t *testing.T) {
	hier := mem.NewHierarchy(mem.SkylakeHierarchy())
	pf := New(DefaultConfig(), hier)
	pf.record(0x40)
	pf.ResetStats()
	if pf.Stats.Appends != 0 {
		t.Error("ResetStats incomplete")
	}
}

// Package pif implements Proactive Instruction Fetch (Ferdman et al.,
// MICRO'11), the state-of-the-art temporal-streaming instruction prefetcher
// the paper compares Jukebox against (Sec. 5.5).
//
// PIF records the retired instruction stream at cache-block granularity into
// a history buffer and maintains an index from block address to the most
// recent history position. On the fly, it follows the recorded stream a
// fixed lookahead ahead of the core, prefetching into the L1-I. Whenever the
// core's actual stream diverges from the recorded one, PIF stops and
// re-indexes from the diverging block.
//
// Two variants are modeled, matching the paper's methodology:
//
//   - PIF: the published configuration (49 KB index, 164 KB stream storage,
//     idealized single-cycle lookups). Designed for long-running servers, it
//     does not preserve state across function invocations: its on-chip
//     history is part of the microarchitectural state obliterated between
//     lukewarm invocations.
//   - PIF-ideal: unlimited index and history that persist across
//     invocations — the strongest possible temporal-streaming baseline.
//
// The structural weakness the paper identifies is reproduced faithfully: a
// bounded lookahead tied to the core's progress covers L2/LLC-latency misses
// but cannot run hundreds of cycles ahead to hide DRAM, and every divergence
// resets the stream.
package pif

import (
	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
)

// Config parameterizes a PIF instance.
type Config struct {
	// HistoryBytes bounds the temporal stream storage (paper: 164 KB,
	// ~6 bytes per compressed block record). <= 0 means unlimited.
	HistoryBytes int
	// IndexBytes bounds the index (paper: 49 KB, ~6 bytes per entry).
	// <= 0 means unlimited.
	IndexBytes int
	// LookaheadBlocks is how far ahead of the core's *fetch* stream the
	// replay engine prefetches.
	LookaheadBlocks int
	// FrontierBlocks is how far the fetch frontier leads instruction
	// commit, in blocks (~ROB size / instructions per block). The
	// simulator's hooks fire in commit order, so the net prefetch lead in
	// simulation time is LookaheadBlocks - FrontierBlocks. This is the
	// structural reason PIF covers L2/LLC-latency misses but cannot run
	// hundreds of cycles ahead to hide DRAM: its stream is tethered to the
	// fetch engine, unlike Jukebox's bulk replay (Sec. 5.5).
	FrontierBlocks int
	// FrontierPenalty is the companion time-domain correction: the
	// simulator's single clock advances at commit speed (~CPI x block
	// instructions per block), while the real fetch engine demands blocks
	// at fetch speed. A prefetch issued "k blocks ahead" therefore looks
	// far more timely in commit time than it is in fetch time; the penalty
	// is added to each prefetch's ready time to compensate. See DESIGN.md.
	FrontierPenalty mem.Cycle
	// Persist keeps history and index across invocations (PIF-ideal).
	// The published design loses them with the rest of the
	// microarchitectural state.
	Persist bool
}

// Validate reports whether the configuration is realizable: the frontier
// model must not be negative (history/index bounds may be, meaning
// unlimited, and a non-positive lookahead selects the default). Errors wrap
// cfgerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.FrontierBlocks < 0 || c.FrontierPenalty < 0 {
		return cfgerr.New("pif: negative frontier model (blocks %d, penalty %d)",
			c.FrontierBlocks, c.FrontierPenalty)
	}
	return nil
}

// bytesPerRecord models PIF's spatio-temporal compression: one stream or
// index record covers one block at ~6 bytes (48-bit address region plus
// footprint bits amortized).
const bytesPerRecord = 6

// DefaultConfig returns the published PIF configuration.
func DefaultConfig() Config {
	return Config{
		HistoryBytes:    164 << 10,
		IndexBytes:      49 << 10,
		LookaheadBlocks: 16,
		FrontierBlocks:  14, // 224-entry ROB / 16 instructions per block
		FrontierPenalty: 40, // commit-clock vs fetch-clock correction
	}
}

// IdealConfig returns PIF-ideal: unlimited, persistent metadata.
func IdealConfig() Config {
	c := DefaultConfig()
	c.HistoryBytes = 0
	c.IndexBytes = 0
	c.Persist = true
	return c
}

// Stats counts PIF activity.
type Stats struct {
	// Appends counts blocks recorded into the history.
	Appends uint64
	// Reindexes counts divergences that forced an index lookup.
	Reindexes uint64
	// IndexMisses counts re-index attempts that found no stream.
	IndexMisses uint64
	// Prefetches counts prefetch requests issued to the L1-I.
	Prefetches uint64
	// Invocations counts invocation boundaries observed.
	Invocations uint64
}

// PIF is one core's prefetcher state. It implements the cpu.InstrPrefetcher
// hook interface structurally.
type PIF struct {
	cfg  Config
	hier *mem.Hierarchy

	history  []uint64       // retired block stream, append-only ring
	index    map[uint64]int // block -> most recent history position
	indexAge []uint64       // insertion order for index capacity eviction

	// replay state
	active    bool
	streamPos int // next expected history position
	aheadPos  int // first not-yet-prefetched position

	lastAppended uint64

	Stats Stats
}

// prefetchBufferLines sizes the dedicated instruction prefetch buffer PIF
// stages its lines in (probed alongside the L1-I, so speculative lines never
// pollute it).
const prefetchBufferLines = 32

// New builds a PIF attached to hier. Prefetched lines are staged in hier's
// instruction prefetch buffer, which New enables.
func New(cfg Config, hier *mem.Hierarchy) *PIF {
	if err := cfg.Validate(); err != nil {
		panic("pif: " + err.Error()) // configs are design-time constants
	}
	if cfg.LookaheadBlocks <= 0 {
		cfg.LookaheadBlocks = DefaultConfig().LookaheadBlocks
	}
	if hier != nil {
		hier.EnablePrefetchBuffer(prefetchBufferLines)
	}
	return &PIF{cfg: cfg, hier: hier, index: make(map[uint64]int)}
}

// Config returns the configuration in effect.
func (p *PIF) Config() Config { return p.cfg }

// historyCap reports the history capacity in records, or 0 for unlimited.
func (p *PIF) historyCap() int {
	if p.cfg.HistoryBytes <= 0 {
		return 0
	}
	return p.cfg.HistoryBytes / bytesPerRecord
}

// indexCap reports the index capacity in entries, or 0 for unlimited.
func (p *PIF) indexCap() int {
	if p.cfg.IndexBytes <= 0 {
		return 0
	}
	return p.cfg.IndexBytes / bytesPerRecord
}

// InvocationStart clears transient replay state; the non-persistent variant
// also loses its recorded metadata, like the rest of the on-chip state.
func (p *PIF) InvocationStart(mem.Cycle) {
	p.active = false
	if !p.cfg.Persist {
		p.history = p.history[:0]
		p.index = make(map[uint64]int)
		p.indexAge = p.indexAge[:0]
		p.lastAppended = 0
	}
}

// InvocationEnd is a no-op: PIF has no sealing step.
func (p *PIF) InvocationEnd(mem.Cycle) { p.Stats.Invocations++ }

// OnFetch triggers stream activation on instruction misses: an L1-I miss
// that breaks out of the prefetched window forces a re-index from the
// missing block (the "stop and re-index" behavior). PIF's structures are
// physically indexed, like the caches they front.
func (p *PIF) OnFetch(now mem.Cycle, vaddr, paddr uint64, res mem.Result) {
	if res.Level == mem.LevelL1 {
		return
	}
	blk := mem.BlockAddr(paddr)
	if p.active && p.streamPos < len(p.history) && p.history[p.streamPos] == blk {
		return // the stream already predicted this; OnBlockRetire advances it
	}
	p.reindex(now, blk)
}

// OnBlockRetire records the retired block stream and advances the replay
// window when the stream matches.
func (p *PIF) OnBlockRetire(now mem.Cycle, _, pBlock uint64) {
	p.record(pBlock)
	if !p.active {
		return
	}
	if p.streamPos < len(p.history)-1 && p.history[p.streamPos] == pBlock {
		// On stream: advance and keep the lookahead window full.
		p.streamPos++
		p.issueAhead(now)
		return
	}
	// Divergence: stop prefetching; the next miss re-indexes.
	p.active = false
}

// reindex looks the block up in the index and restarts the stream there.
func (p *PIF) reindex(now mem.Cycle, blk uint64) {
	p.Stats.Reindexes++
	pos, ok := p.index[blk]
	if !ok {
		p.Stats.IndexMisses++
		p.active = false
		return
	}
	p.active = true
	// streamPos points at the indexed block itself: the imminent
	// OnBlockRetire for the triggering block matches it and advances the
	// stream; prefetching starts from the following record.
	p.streamPos = pos
	p.aheadPos = pos + 1
	p.issueAhead(now)
}

// issueAhead prefetches stream records up to the net lookahead limit (the
// configured lookahead minus the fetch frontier's lead over commit time).
func (p *PIF) issueAhead(now mem.Cycle) {
	net := p.cfg.LookaheadBlocks - p.cfg.FrontierBlocks
	if net < 1 {
		net = 1
	}
	limit := p.streamPos + net
	if limit > len(p.history) {
		limit = len(p.history)
	}
	if p.aheadPos < p.streamPos {
		p.aheadPos = p.streamPos
	}
	for ; p.aheadPos < limit; p.aheadPos++ {
		p.hier.PrefetchIntoBuffer(now+p.cfg.FrontierPenalty, p.history[p.aheadPos], mem.TrafficPrefetch)
		p.Stats.Prefetches++
	}
}

// record appends a retired block to the history (consecutive duplicates are
// compressed away) and updates the index, honoring the capacity limits.
func (p *PIF) record(blk uint64) {
	if blk == p.lastAppended && len(p.history) > 0 {
		return
	}
	p.lastAppended = blk

	if cap := p.historyCap(); cap > 0 && len(p.history) >= cap {
		// The ring wraps: discard the oldest half to keep positions stable
		// without per-append copying. Index positions below the cut become
		// stale and are dropped lazily.
		cut := len(p.history) / 2
		p.history = append(p.history[:0], p.history[cut:]...)
		for b, pos := range p.index {
			if pos < cut {
				delete(p.index, b)
			} else {
				p.index[b] = pos - cut
			}
		}
		if p.active {
			p.streamPos -= cut
			p.aheadPos -= cut
			if p.streamPos < 0 {
				p.active = false
			}
		}
		// indexAge positions refer to blocks, which remain valid keys.
	}
	p.history = append(p.history, blk)
	pos := len(p.history) - 1

	if _, exists := p.index[blk]; !exists {
		if cap := p.indexCap(); cap > 0 && len(p.index) >= cap {
			// Evict the oldest inserted entry.
			for len(p.indexAge) > 0 {
				victim := p.indexAge[0]
				p.indexAge = p.indexAge[1:]
				if _, ok := p.index[victim]; ok {
					delete(p.index, victim)
					break
				}
			}
		}
		p.indexAge = append(p.indexAge, blk)
	}
	p.index[blk] = pos
	p.Stats.Appends++
}

// ResetStats zeroes the counters (metadata persists).
func (p *PIF) ResetStats() { p.Stats = Stats{} }

package core

import (
	"testing"

	"lukewarm/internal/mem"
	"lukewarm/internal/vm"
)

// TestLargeRegionReplaySpansPages exercises the 8 KB region configuration
// (the largest in the Fig. 8 sweep): one region covers two 4 KB pages, so
// the replay engine must translate each page separately and the access
// vector must address 128 lines.
func TestLargeRegionReplaySpansPages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RegionSizeBytes = 8 << 10
	r := newRig(cfg)

	// Record misses across a full 8 KB region (two pages).
	base := uint64(0x40_0000) // region-aligned
	for i := 0; i < 128; i++ {
		vaddr := base + uint64(i)*mem.LineSize
		paddr := r.core.MMU.AddressSpace().Translate(vaddr)
		r.jb.OnFetch(0, vaddr, paddr, mem.Result{L2Miss: true})
	}
	r.jb.InvocationEnd(0)
	if got := r.jb.ReplayBuffer().Len(); got != 1 {
		t.Fatalf("expected a single coalesced region entry, got %d", got)
	}
	e := r.jb.ReplayBuffer().Entries()[0]
	if e.PopCount() != 128 {
		t.Fatalf("vector popcount = %d, want 128", e.PopCount())
	}

	// Replay after a flush: all 128 lines must land in the L2 with correct
	// physical addresses despite the page boundary.
	r.core.FlushMicroarch()
	r.core.Hier.ResetStats()
	r.jb.InvocationStart(1000)
	if got := r.jb.Stats.ReplayPrefetches; got != 128 {
		t.Fatalf("ReplayPrefetches = %d, want 128", got)
	}
	if r.jb.Stats.ReplayWalks != 2 {
		t.Errorf("ReplayWalks = %d, want 2 (one per page)", r.jb.Stats.ReplayWalks)
	}
	for i := 0; i < 128; i++ {
		paddr := r.core.MMU.AddressSpace().Translate(base + uint64(i)*mem.LineSize)
		if !r.core.Hier.L2.Probe(paddr) {
			t.Fatalf("line %d not prefetched into L2", i)
		}
	}
}

// TestTinyRegionConfiguration exercises the 128 B end of the sweep: two
// lines per region, so the vector barely matters and entries churn.
func TestTinyRegionConfiguration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RegionSizeBytes = 128
	cfg.MetadataBytes = 0
	r := newRig(cfg)
	for i := 0; i < 64; i++ {
		vaddr := uint64(0x40_0000) + uint64(i)*mem.LineSize
		paddr := r.core.MMU.AddressSpace().Translate(vaddr)
		r.jb.OnFetch(0, vaddr, paddr, mem.Result{L2Miss: true})
	}
	r.jb.InvocationEnd(0)
	// 64 lines at 2 lines/region = 32 entries.
	if got := r.jb.ReplayBuffer().Len(); got != 32 {
		t.Errorf("entries = %d, want 32", got)
	}
}

// TestReplayOrderFollowsRecordOrder checks the FIFO temporal-order property
// (Sec. 3.2): regions are replayed in the order they were first recorded.
func TestReplayOrderFollowsRecordOrder(t *testing.T) {
	r := newRig(DefaultConfig())
	// Touch regions in a distinctive order: C, A, B (each one line).
	order := []uint64{0x80_0000, 0x40_0000, 0x60_0000}
	for _, base := range order {
		paddr := r.core.MMU.AddressSpace().Translate(base)
		r.jb.OnFetch(0, base, paddr, mem.Result{L2Miss: true})
	}
	r.jb.InvocationEnd(0)
	entries := r.jb.ReplayBuffer().Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	shift := DefaultConfig().regionShift()
	for i, base := range order {
		if entries[i].Region != base>>shift {
			t.Errorf("entry %d region = %#x, want %#x", i, entries[i].Region<<shift, base)
		}
	}
}

// TestJukeboxMetadataSurvivesIATThrash: the whole point of storing metadata
// in main memory — partial or total on-chip thrash cannot touch it.
func TestJukeboxMetadataSurvivesIATThrash(t *testing.T) {
	r := newRig(DefaultConfig())
	p := testProgram()
	r.core.FlushMicroarch()
	r.core.RunInvocation(p.NewInvocation(0))
	before := r.jb.ReplayBuffer().Len()
	if before == 0 {
		t.Fatal("nothing recorded")
	}
	// Obliterate on-chip state repeatedly; metadata must be untouched.
	for i := 0; i < 3; i++ {
		r.core.FlushMicroarch()
	}
	if got := r.jb.ReplayBuffer().Len(); got != before {
		t.Errorf("metadata changed by flushes: %d -> %d", before, got)
	}
}

// TestBindMovesPrefetcherBetweenCores exercises Bind directly at the unit
// level (the serverless package has the integration test).
func TestBindMovesPrefetcherBetweenCores(t *testing.T) {
	r := newRig(DefaultConfig())
	p := testProgram()
	r.core.FlushMicroarch()
	r.core.RunInvocation(p.NewInvocation(0)) // record on core A

	// A second, independent memory system ("core B").
	hierB := mem.NewHierarchy(mem.SkylakeHierarchy())
	mmuB := vm.NewMMU(vm.DefaultMMUConfig(), hierB.DRAM)
	mmuB.SetAddressSpace(r.core.MMU.AddressSpace())
	r.jb.Bind(hierB, mmuB)
	r.jb.InvocationStart(0)
	if hierB.L2.Stats.PrefetchFills[mem.Instr] == 0 {
		t.Error("replay after Bind did not fill the new core's L2")
	}
}

package core

// Entry is one unit of Jukebox metadata: a code-region pointer plus an
// access vector with one bit per cache line in the region. Vector is two
// words so the largest swept region size (8 KB = 128 lines) fits.
type Entry struct {
	// Region is the region's address right-shifted by the region size: the
	// CRRB tag and the metadata region pointer. Virtual by default;
	// physical in the ablation mode.
	Region uint64
	// Vector has bit n set when line n of the region missed in the L2.
	Vector [2]uint64
}

// SetBit marks line n as accessed.
func (e *Entry) SetBit(n int) { e.Vector[n>>6] |= 1 << (uint(n) & 63) }

// Bit reports whether line n is marked.
func (e *Entry) Bit(n int) bool { return e.Vector[n>>6]&(1<<(uint(n)&63)) != 0 }

// PopCount reports the number of marked lines.
func (e *Entry) PopCount() int {
	n := 0
	for _, w := range e.Vector {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// CRRB is the Code Region Reference Buffer: a small fully-associative FIFO
// keyed by region pointer (Sec. 3.2). Inserting into a full CRRB evicts the
// oldest entry, which becomes immutable metadata; a later miss to the same
// region allocates a fresh entry rather than recalling the evicted one.
type CRRB struct {
	entries []Entry
	valid   []bool
	head    int // oldest entry (next eviction victim)
	count   int
	// Coalesced counts bit-sets on existing entries; Evictions counts
	// entries pushed out to memory by capacity.
	Coalesced uint64
	Evictions uint64
}

// NewCRRB builds a CRRB with n entries; n must be positive (panic: design
// constant).
func NewCRRB(n int) *CRRB {
	if n <= 0 {
		panic("core: CRRB size must be positive")
	}
	return &CRRB{entries: make([]Entry, n), valid: make([]bool, n)}
}

// Capacity reports the configured entry count.
func (c *CRRB) Capacity() int { return len(c.entries) }

// Len reports the current occupancy.
func (c *CRRB) Len() int { return c.count }

// Record notes that line lineIdx of region missed in the L2. If the region
// is resident its vector is updated; otherwise a new entry is allocated,
// evicting the oldest entry when full. The evicted entry (to be written to
// the in-memory metadata) is returned with evicted=true.
func (c *CRRB) Record(region uint64, lineIdx int) (out Entry, evicted bool) {
	// Fully-associative lookup.
	for i := 0; i < len(c.entries); i++ {
		if c.valid[i] && c.entries[i].Region == region {
			c.entries[i].SetBit(lineIdx)
			c.Coalesced++
			return Entry{}, false
		}
	}
	// Allocate; evict the FIFO head if full.
	if c.count == len(c.entries) {
		out = c.entries[c.head]
		c.valid[c.head] = false
		c.count--
		evicted = true
		c.Evictions++
		// New entry takes the vacated slot; head advances.
		idx := c.head
		c.head = (c.head + 1) % len(c.entries)
		var e Entry
		e.Region = region
		e.SetBit(lineIdx)
		c.entries[idx] = e
		c.valid[idx] = true
		c.count++
		return out, true
	}
	// There is a free slot: entries are kept in arrival order in the ring
	// starting at head.
	idx := (c.head + c.count) % len(c.entries)
	var e Entry
	e.Region = region
	e.SetBit(lineIdx)
	c.entries[idx] = e
	c.valid[idx] = true
	c.count++
	return Entry{}, false
}

// Drain removes and returns all resident entries in FIFO (arrival) order,
// used at invocation end to seal the metadata.
func (c *CRRB) Drain() []Entry {
	out := make([]Entry, 0, c.count)
	for i := 0; i < len(c.entries) && c.count > 0; i++ {
		idx := c.head
		if c.valid[idx] {
			out = append(out, c.entries[idx])
			c.valid[idx] = false
			c.count--
		}
		c.head = (c.head + 1) % len(c.entries)
	}
	c.head = 0
	return out
}

// Reset empties the CRRB and zeroes its counters.
func (c *CRRB) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.head = 0
	c.count = 0
	c.Coalesced = 0
	c.Evictions = 0
}

// Package core implements Jukebox, the paper's contribution: a
// record-and-replay instruction prefetcher for lukewarm serverless function
// invocations (Sec. 3).
//
// Jukebox records the stream of L2 instruction misses using a
// spatio-temporal encoding — a FIFO of (code-region pointer, per-line access
// vector) entries coalesced in a small Code Region Reference Buffer (CRRB) —
// and stores it in main memory, ~16-32 KB per function instance. When the OS
// schedules the instance for a new invocation, the replay engine streams the
// metadata back in recording order, pre-translates each region through the
// ITLB, and bulk-prefetches the encoded cache lines into the L2 without ever
// synchronizing with the core.
//
// Design properties reproduced here:
//   - Record filters L2 hits: only L1-I misses that also miss in the L2 are
//     recorded (Sec. 3.2).
//   - Evicted CRRB entries are immutable; re-touched regions allocate fresh
//     entries, trading metadata size for design simplicity (Sec. 3.2).
//   - Metadata holds *virtual* addresses, so page migration by the OS does
//     not invalidate it; a physical-address mode exists solely as the
//     ablation strawman (Sec. 3.3).
//   - FIFO order encodes temporal order at region granularity, giving
//     approximate replay timeliness (Sec. 3.2-3.3).
//   - Record and replay are armed by base/limit register pairs written by
//     the OS scheduler from per-process state (Sec. 3.4.1); Instance in this
//     package models that bookkeeping.
package core

import (
	"lukewarm/internal/cfgerr"
	"lukewarm/internal/mem"
)

// Config parameterizes one Jukebox instance. The paper's preferred
// configuration (Table 1) is the default: 1 KB regions, a 16-entry CRRB,
// 16 KB of metadata per direction (32 KB per instance).
type Config struct {
	// RegionSizeBytes is the spatial region granularity. Must be a
	// power-of-two multiple of the cache line size, at most 8 KB (the
	// largest the paper sweeps in Fig. 8).
	RegionSizeBytes int
	// CRRBEntries is the Code Region Reference Buffer capacity.
	CRRBEntries int
	// MetadataBytes caps each metadata buffer (record and replay each get
	// this much: the paper's "16KB record + 16KB replay"). Zero or negative
	// means unlimited, used by the Fig. 8 sizing study.
	MetadataBytes int
	// VABits is the virtual address width used to size the region pointer
	// field (48 in the paper).
	VABits int
	// ReplayEnabled can be cleared for record-only runs (Fig. 8).
	ReplayEnabled bool
	// RecordEnabled can be cleared to freeze the metadata (snapshot mode,
	// Sec. 3.4.2).
	RecordEnabled bool
	// UsePhysicalAddresses switches record/replay to physical addresses —
	// the ablation strawman defeated by page migration (Sec. 3.3 argues
	// virtual addressing; see the compaction tests).
	UsePhysicalAddresses bool
}

// DefaultConfig returns the paper's preferred configuration.
func DefaultConfig() Config {
	return Config{
		RegionSizeBytes: 1024,
		CRRBEntries:     16,
		MetadataBytes:   16 << 10,
		VABits:          48,
		ReplayEnabled:   true,
		RecordEnabled:   true,
	}
}

// Validate reports a descriptive error for inconsistent configuration.
// Errors wrap cfgerr.ErrBadConfig.
func (c Config) Validate() error {
	switch {
	case c.RegionSizeBytes < mem.LineSize || c.RegionSizeBytes > 8<<10:
		return cfgerr.New("core: region size %d out of [64, 8192]", c.RegionSizeBytes)
	case c.RegionSizeBytes&(c.RegionSizeBytes-1) != 0:
		return cfgerr.New("core: region size %d not a power of two", c.RegionSizeBytes)
	case c.CRRBEntries <= 0:
		return cfgerr.New("core: CRRB needs at least one entry, got %d", c.CRRBEntries)
	case c.VABits < 32 || c.VABits > 64:
		return cfgerr.New("core: VABits %d out of [32, 64]", c.VABits)
	}
	return nil
}

// LinesPerRegion reports cache lines per region.
func (c Config) LinesPerRegion() int { return c.RegionSizeBytes / mem.LineSize }

// regionShift reports log2(RegionSizeBytes).
func (c Config) regionShift() uint {
	s := uint(0)
	for 1<<s < c.RegionSizeBytes {
		s++
	}
	return s
}

// EntryBits reports the storage cost of one metadata entry in bits: the
// region pointer (VABits minus the region offset) plus one access-vector bit
// per line. The paper's 1 KB/48-bit configuration yields 38+16 = 54 bits.
func (c Config) EntryBits() int {
	return c.VABits - int(c.regionShift()) + c.LinesPerRegion()
}

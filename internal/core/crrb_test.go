package core

import "testing"

func TestEntryBits(t *testing.T) {
	var e Entry
	e.SetBit(0)
	e.SetBit(15)
	e.SetBit(100)
	for _, n := range []int{0, 15, 100} {
		if !e.Bit(n) {
			t.Errorf("bit %d not set", n)
		}
	}
	if e.Bit(1) || e.Bit(64) {
		t.Error("unset bits read as set")
	}
	if e.PopCount() != 3 {
		t.Errorf("PopCount = %d", e.PopCount())
	}
}

func TestCRRBCoalescing(t *testing.T) {
	c := NewCRRB(4)
	if _, ev := c.Record(100, 1); ev {
		t.Error("first record evicted")
	}
	if _, ev := c.Record(100, 5); ev {
		t.Error("coalesced record evicted")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Coalesced != 1 {
		t.Errorf("Coalesced = %d", c.Coalesced)
	}
	got := c.Drain()
	if len(got) != 1 || got[0].Region != 100 || !got[0].Bit(1) || !got[0].Bit(5) {
		t.Errorf("drained entry wrong: %+v", got)
	}
}

func TestCRRBFIFOEviction(t *testing.T) {
	c := NewCRRB(2)
	c.Record(1, 0)
	c.Record(2, 0)
	out, ev := c.Record(3, 0) // evicts region 1 (oldest)
	if !ev || out.Region != 1 {
		t.Fatalf("eviction = %+v, %v", out, ev)
	}
	out, ev = c.Record(4, 0) // evicts region 2
	if !ev || out.Region != 2 {
		t.Fatalf("second eviction = %+v, %v", out, ev)
	}
	if c.Evictions != 2 {
		t.Errorf("Evictions = %d", c.Evictions)
	}
}

func TestCRRBEvictedEntriesAreImmutable(t *testing.T) {
	// After a region's entry is evicted, a new miss to it allocates a fresh
	// entry; the same region appears twice in the trace (Sec. 3.2).
	c := NewCRRB(1)
	c.Record(7, 0)
	out, ev := c.Record(8, 1) // evicts region 7 with bit 0
	if !ev || out.Region != 7 || !out.Bit(0) || out.PopCount() != 1 {
		t.Fatalf("evicted = %+v", out)
	}
	out, ev = c.Record(7, 2) // region 7 again: fresh entry, evicts 8
	if !ev || out.Region != 8 {
		t.Fatalf("re-allocation eviction = %+v, %v", out, ev)
	}
	got := c.Drain()
	if len(got) != 1 || got[0].Region != 7 || !got[0].Bit(2) || got[0].Bit(0) {
		t.Errorf("fresh entry carries stale bits: %+v", got)
	}
}

func TestCRRBDrainOrder(t *testing.T) {
	c := NewCRRB(4)
	for r := uint64(10); r < 14; r++ {
		c.Record(r, 0)
	}
	got := c.Drain()
	if len(got) != 4 {
		t.Fatalf("drained %d entries", len(got))
	}
	for i, e := range got {
		if e.Region != uint64(10+i) {
			t.Errorf("drain[%d].Region = %d, want %d (FIFO order)", i, e.Region, 10+i)
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len after drain = %d", c.Len())
	}
}

func TestCRRBDrainAfterWrap(t *testing.T) {
	c := NewCRRB(2)
	c.Record(1, 0)
	c.Record(2, 0)
	c.Record(3, 0) // wraps: evicts 1
	got := c.Drain()
	if len(got) != 2 || got[0].Region != 2 || got[1].Region != 3 {
		t.Errorf("drain after wrap = %+v", got)
	}
}

func TestCRRBReset(t *testing.T) {
	c := NewCRRB(2)
	c.Record(1, 0)
	c.Record(1, 1)
	c.Reset()
	if c.Len() != 0 || c.Coalesced != 0 || c.Evictions != 0 {
		t.Errorf("reset incomplete: len=%d", c.Len())
	}
	if got := c.Drain(); len(got) != 0 {
		t.Errorf("drain after reset = %+v", got)
	}
}

func TestCRRBPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCRRB(0)
}

func TestMetadataBufferLimit(t *testing.T) {
	// 54-bit entries, 27-byte limit => 4 entries fit (4*54=216 <= 216).
	b := NewMetadataBuffer(0x1000, 54, 27)
	for i := 0; i < 4; i++ {
		if !b.Append(Entry{Region: uint64(i)}) {
			t.Fatalf("append %d rejected", i)
		}
	}
	if b.Full() != true {
		t.Error("buffer should be full")
	}
	if b.Append(Entry{Region: 99}) {
		t.Error("append beyond limit accepted")
	}
	if b.Dropped != 1 {
		t.Errorf("Dropped = %d", b.Dropped)
	}
	if b.Len() != 4 {
		t.Errorf("Len = %d", b.Len())
	}
	if b.SizeBytes() != 27 {
		t.Errorf("SizeBytes = %d", b.SizeBytes())
	}
}

func TestMetadataBufferUnlimited(t *testing.T) {
	b := NewMetadataBuffer(0, 54, 0)
	for i := 0; i < 10_000; i++ {
		if !b.Append(Entry{Region: uint64(i)}) {
			t.Fatal("unlimited buffer rejected an append")
		}
	}
	if b.SizeBytes() != (10_000*54+7)/8 {
		t.Errorf("SizeBytes = %d", b.SizeBytes())
	}
}

func TestMetadataBufferReset(t *testing.T) {
	b := NewMetadataBuffer(0, 54, 10)
	b.Append(Entry{})
	b.Append(Entry{})
	b.Append(Entry{}) // dropped (3*54 > 80)
	b.Reset()
	if b.Len() != 0 || b.Dropped != 0 || b.SizeBytes() != 0 {
		t.Error("reset incomplete")
	}
}

func TestMetadataBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMetadataBuffer(0, 0, 10)
}

func TestConfigEntryBits(t *testing.T) {
	cfg := DefaultConfig()
	// Paper: 38-bit region pointer + 16-bit vector = 54 bits at 1 KB
	// regions with 48-bit VAs.
	if got := cfg.EntryBits(); got != 54 {
		t.Errorf("EntryBits = %d, want 54", got)
	}
	if got := cfg.LinesPerRegion(); got != 16 {
		t.Errorf("LinesPerRegion = %d, want 16", got)
	}
	cfg.RegionSizeBytes = 8 << 10
	if got := cfg.EntryBits(); got != 48-13+128 {
		t.Errorf("8KB EntryBits = %d", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.RegionSizeBytes = 32 },
		func(c *Config) { c.RegionSizeBytes = 16 << 10 },
		func(c *Config) { c.RegionSizeBytes = 1000 },
		func(c *Config) { c.CRRBEntries = 0 },
		func(c *Config) { c.VABits = 16 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

package core

import (
	"testing"

	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/vm"
)

// Interface conformance: Jukebox plugs into the core's prefetcher socket.
var _ cpu.InstrPrefetcher = (*Jukebox)(nil)

func testProgram() *program.Program {
	return program.New(program.Config{
		Name:          "jb-test-fn",
		Seed:          31,
		CodeKB:        192,
		DynamicInstrs: 120_000,
		CoreFrac:      0.85,
		OptionalProb:  0.8,
		RareFrac:      0.04,
		RareProb:      0.05,
		InstrPerLine:  16,
		LoadFrac:      0.22,
		StoreFrac:     0.08,
		CondFrac:      0.3,
		CondBias:      0.9,
		NoisyFrac:     0.02,
		IndirectFrac:  0.15,
		CallFrac:      0.35,
		DataKB:        96,
		HotDataKB:     16,
		HotDataFrac:   0.7,
		ColdDataFrac:  0.05,
		DepLoadFrac:   0.2,
		KernelFrac:    0.1,
	})
}

// rig is a core + address space + jukebox harness.
type rig struct {
	core  *cpu.Core
	jb    *Jukebox
	alloc *vm.FrameAllocator
}

func newRig(cfg Config) *rig {
	c := cpu.NewCore(cpu.SkylakeConfig())
	alloc := vm.NewFrameAllocator(0)
	c.MMU.SetAddressSpace(vm.NewAddressSpace(alloc))
	jb := New(cfg, c.Hier, c.MMU, alloc)
	c.Prefetcher = jb
	return &rig{core: c, jb: jb, alloc: alloc}
}

// runLukewarm executes n invocations with a full microarchitectural flush
// before each (the paper's interleaved baseline), returning the last result.
func (r *rig) runLukewarm(p *program.Program, n int) cpu.RunResult {
	var last cpu.RunResult
	for i := 0; i < n; i++ {
		r.core.FlushMicroarch()
		last = r.core.RunInvocation(p.NewInvocation(uint64(i)))
	}
	return last
}

func TestRecordProducesMetadata(t *testing.T) {
	r := newRig(DefaultConfig())
	p := testProgram()
	r.core.FlushMicroarch()
	r.core.RunInvocation(p.NewInvocation(0))
	// After the first invocation the replay buffer holds the sealed trace.
	if r.jb.ReplayBuffer().Len() == 0 {
		t.Fatal("no metadata recorded on a cold run")
	}
	if r.jb.Stats.RecordedEntries == 0 {
		t.Error("RecordedEntries = 0")
	}
	if r.jb.Stats.Invocations != 1 {
		t.Errorf("Invocations = %d", r.jb.Stats.Invocations)
	}
	if got := r.jb.Stats.LastRecordBytes; got == 0 || got > 16<<10 {
		t.Errorf("LastRecordBytes = %d", got)
	}
	// Record traffic reached DRAM.
	if r.core.Hier.DRAM.Bytes(mem.TrafficMetadataRecord) == 0 {
		t.Error("no metadata-record DRAM traffic")
	}
}

func TestReplayCoversMisses(t *testing.T) {
	r := newRig(DefaultConfig())
	p := testProgram()
	r.runLukewarm(p, 1) // record
	r.core.FlushMicroarch()
	r.core.Hier.ResetStats()
	r.core.RunInvocation(p.NewInvocation(1)) // replay + record

	l2 := r.core.Hier.L2.Stats
	if l2.PrefetchFills[mem.Instr] == 0 {
		t.Fatal("replay issued no L2 fills")
	}
	if l2.PrefetchUsed[mem.Instr] == 0 {
		t.Fatal("no covered misses")
	}
	coverage := float64(l2.PrefetchUsed[mem.Instr]) / float64(l2.PrefetchUsed[mem.Instr]+l2.DemandMisses[mem.Instr])
	if coverage < 0.4 {
		t.Errorf("coverage = %v, too low for a high-commonality workload", coverage)
	}
	if r.jb.Stats.ReplayPrefetches == 0 || r.jb.Stats.ReplayEntries == 0 {
		t.Errorf("replay stats empty: %+v", r.jb.Stats)
	}
	if r.core.Hier.DRAM.Bytes(mem.TrafficMetadataReplay) == 0 {
		t.Error("no metadata-replay DRAM traffic")
	}
}

func TestJukeboxSpeedsUpLukewarmRuns(t *testing.T) {
	p := testProgram()

	base := cpu.NewCore(cpu.SkylakeConfig())
	base.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	var baseLast cpu.RunResult
	for i := 0; i < 3; i++ {
		base.FlushMicroarch()
		baseLast = base.RunInvocation(p.NewInvocation(uint64(i)))
	}

	r := newRig(DefaultConfig())
	jbLast := r.runLukewarm(p, 3)

	if jbLast.Cycles >= baseLast.Cycles {
		t.Errorf("Jukebox run not faster: %d vs %d cycles", jbLast.Cycles, baseLast.Cycles)
	}
	speedup := float64(baseLast.Cycles)/float64(jbLast.Cycles) - 1
	if speedup < 0.05 {
		t.Errorf("speedup only %.1f%%", speedup*100)
	}
}

func TestReplayPrepopulatesITLB(t *testing.T) {
	r := newRig(DefaultConfig())
	p := testProgram()
	r.runLukewarm(p, 1)
	r.core.FlushMicroarch()
	if r.jb.Stats.ReplayWalks != 0 {
		t.Fatal("stats bleed before replay")
	}
	r.core.MMU.ResetStats()
	r.core.RunInvocation(p.NewInvocation(1))
	if r.jb.Stats.ReplayWalks == 0 {
		t.Error("replay performed no ITLB translations")
	}
}

func TestRecordOnlyMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplayEnabled = false
	cfg.MetadataBytes = 0 // unlimited: the Fig. 8 sizing configuration
	r := newRig(cfg)
	p := testProgram()
	r.runLukewarm(p, 2)
	if r.jb.Stats.ReplayPrefetches != 0 {
		t.Error("replay ran in record-only mode")
	}
	if r.jb.Stats.LastRecordBytes == 0 {
		t.Error("record-only mode recorded nothing")
	}
	if r.jb.Stats.DroppedEntries != 0 {
		t.Error("unlimited buffer dropped entries")
	}
}

func TestMetadataLimitDropsEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MetadataBytes = 1 << 10 // absurdly small: 1 KB
	r := newRig(cfg)
	p := testProgram()
	r.runLukewarm(p, 2)
	if r.jb.Stats.DroppedEntries == 0 {
		t.Error("tiny metadata limit dropped nothing")
	}
	if got := r.jb.ReplayBuffer().SizeBytes(); got > 1<<10 {
		t.Errorf("replay buffer %d bytes exceeds limit", got)
	}
}

func TestLargerMetadataCoversMore(t *testing.T) {
	p := testProgram()
	cov := func(limit int) float64 {
		cfg := DefaultConfig()
		cfg.MetadataBytes = limit
		r := newRig(cfg)
		r.runLukewarm(p, 1)
		r.core.FlushMicroarch()
		r.core.Hier.ResetStats()
		r.core.RunInvocation(p.NewInvocation(1))
		s := r.core.Hier.L2.Stats
		return float64(s.PrefetchUsed[mem.Instr]) / float64(s.PrefetchUsed[mem.Instr]+s.DemandMisses[mem.Instr])
	}
	small, large := cov(2<<10), cov(16<<10)
	if large <= small {
		t.Errorf("coverage did not grow with metadata: %v vs %v", small, large)
	}
}

func TestRecordFilterSkipsL2Hits(t *testing.T) {
	r := newRig(DefaultConfig())
	p := testProgram()
	// Warm everything, then run again without flushing: L2 misses are rare,
	// so recorded metadata shrinks drastically.
	r.core.RunInvocation(p.NewInvocation(0))
	coldBytes := r.jb.Stats.LastRecordBytes
	r.core.RunInvocation(p.NewInvocation(0))
	warmBytes := r.jb.Stats.LastRecordBytes
	if warmBytes >= coldBytes/4 {
		t.Errorf("warm-run metadata %d not much smaller than cold %d; L2-hit filter broken", warmBytes, coldBytes)
	}
}

func TestVirtualMetadataSurvivesCompaction(t *testing.T) {
	p := testProgram()

	run := func(physical bool) float64 {
		cfg := DefaultConfig()
		cfg.UsePhysicalAddresses = physical
		r := newRig(cfg)
		r.runLukewarm(p, 1) // record
		// The OS compacts memory between invocations; TLBs shot down.
		r.core.MMU.AddressSpace().Compact()
		r.core.FlushMicroarch()
		r.core.Hier.ResetStats()
		r.core.RunInvocation(p.NewInvocation(1))
		s := r.core.Hier.L2.Stats
		return float64(s.PrefetchUsed[mem.Instr]) / float64(s.PrefetchUsed[mem.Instr]+s.DemandMisses[mem.Instr])
	}

	virtual := run(false)
	physical := run(true)
	if virtual < 0.4 {
		t.Errorf("virtual-address coverage after compaction = %v", virtual)
	}
	if physical > virtual/2 {
		t.Errorf("physical-address metadata should collapse after compaction: %v vs virtual %v", physical, virtual)
	}
}

func TestMetadataFootprint(t *testing.T) {
	r := newRig(DefaultConfig())
	if got := r.jb.MetadataFootprintBytes(); got != 32<<10 {
		t.Errorf("MetadataFootprintBytes = %d, want 32KB", got)
	}
	cfg := DefaultConfig()
	cfg.MetadataBytes = 0
	r2 := newRig(cfg)
	p := testProgram()
	r2.core.FlushMicroarch()
	r2.core.RunInvocation(p.NewInvocation(0))
	if got := r2.jb.MetadataFootprintBytes(); got == 0 {
		t.Error("unlimited-mode footprint should reflect stored bytes")
	}
}

func TestBuffersPhysicallyPlaced(t *testing.T) {
	r := newRig(DefaultConfig())
	rec, rep := r.jb.RecordBuffer().PhysBase, r.jb.ReplayBuffer().PhysBase
	if rec == rep {
		t.Error("record and replay buffers alias")
	}
	if rec%vm.PageSize != 0 || rep%vm.PageSize != 0 {
		t.Error("metadata buffers not page aligned")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.RegionSizeBytes = 3
	newRig(cfg)
}

func TestResetStats(t *testing.T) {
	r := newRig(DefaultConfig())
	p := testProgram()
	r.runLukewarm(p, 1)
	r.jb.ResetStats()
	if r.jb.Stats.RecordedEntries != 0 || r.jb.Stats.Invocations != 0 {
		t.Error("ResetStats incomplete")
	}
}

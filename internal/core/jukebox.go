package core

import (
	"fmt"

	"lukewarm/internal/mem"
	"lukewarm/internal/vm"
)

// Stats aggregates one Jukebox instance's activity counters.
type Stats struct {
	// RecordedEntries counts metadata entries written (CRRB evictions plus
	// end-of-invocation drains that fit the limit).
	RecordedEntries uint64
	// DroppedEntries counts entries lost to the metadata limit.
	DroppedEntries uint64
	// ReplayEntries counts metadata entries consumed by replay phases.
	ReplayEntries uint64
	// ReplayPrefetches counts prefetch requests issued to the L2.
	ReplayPrefetches uint64
	// ReplayWalks counts ITLB translations performed during replay (these
	// pre-populate the ITLB for the upcoming invocation).
	ReplayWalks uint64
	// Invocations counts record/replay cycles completed.
	Invocations uint64
	// LastRecordBytes is the sealed metadata size of the most recent
	// invocation (the Fig. 8 metric when run without a limit).
	LastRecordBytes int
	// LastReplayDone is the cycle at which the most recent replay finished
	// issuing.
	LastReplayDone mem.Cycle
	// DegradedReplays counts replays abandoned because the metadata failed
	// its checksum or geometry check; the invocation proceeds record-only
	// instead of prefetching garbage.
	DegradedReplays uint64
}

// Jukebox is one function instance's prefetcher state: the per-instance
// record/replay metadata in main memory plus (architecturally shared, but
// stateless between invocations) CRRB and replay engine. It implements the
// cpu.InstrPrefetcher hook interface structurally.
type Jukebox struct {
	cfg  Config
	hier *mem.Hierarchy
	mmu  *vm.MMU
	crrb *CRRB

	record *MetadataBuffer
	replay *MetadataBuffer

	// pendingBits accumulates packed record bits until a 64 B line of
	// metadata is filled and written to memory.
	pendingBits int

	// prewarmed latches that a pre-warm already executed the replay phase
	// on this core: the next InvocationStart skips its replay (the warmth
	// is already installed) and clears the latch. Anything that invalidates
	// the installed state — eviction, metadata loss — clears it too.
	prewarmed bool

	// ReplayHook, if set, is called once per metadata entry consumed during
	// replay with the entry's index. It is a fault-injection seam: the
	// harness uses it to trigger page migration mid-replay.
	ReplayHook func(entry int)
	// RecordHook, if set, is called after each entry committed to the record
	// buffer with the buffer's new length. The fault harness uses it to
	// trigger mid-record eviction.
	RecordHook func(entries int)

	Stats Stats
}

// New builds a Jukebox for one function instance. hier and mmu are the
// core's memory system (the instance's address space must be active in mmu
// whenever the instance runs). alloc places the two metadata buffers in
// physically contiguous frames, as the OS does at instance start
// (Sec. 3.4.1).
func New(cfg Config, hier *mem.Hierarchy, mmu *vm.MMU, alloc *vm.FrameAllocator) *Jukebox {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	bufBytes := cfg.MetadataBytes
	if bufBytes <= 0 {
		bufBytes = 64 << 10 // physical reservation for unlimited-mode studies
	}
	pages := (bufBytes + vm.PageSize - 1) / vm.PageSize
	recBase := alloc.AllocContiguous(pages)
	repBase := alloc.AllocContiguous(pages)
	return &Jukebox{
		cfg:    cfg,
		hier:   hier,
		mmu:    mmu,
		crrb:   NewCRRB(cfg.CRRBEntries),
		record: NewMetadataBuffer(recBase, cfg.EntryBits(), cfg.MetadataBytes),
		replay: NewMetadataBuffer(repBase, cfg.EntryBits(), cfg.MetadataBytes),
	}
}

// Config returns the configuration in effect.
func (j *Jukebox) Config() Config { return j.cfg }

// SetReplayEnabled toggles metadata replay at run time. Recording continues
// either way, so a unit that re-enables replay picks up from the freshest
// sealed metadata. This is the knob behind the cluster front end's
// record-only brownout tier: under overload the fleet keeps learning access
// patterns but stops spending memory bandwidth on replay prefetches.
func (j *Jukebox) SetReplayEnabled(on bool) { j.cfg.ReplayEnabled = on }

// ReplayEnabled reports whether metadata replay is currently enabled.
func (j *Jukebox) ReplayEnabled() bool { return j.cfg.ReplayEnabled }

// Bind points the prefetcher at the core the OS scheduled the instance
// onto. Jukebox's metadata lives in main memory, so an instance can migrate
// freely between cores: scheduling it is exactly the OS writing the
// base/limit registers of the chosen core (Sec. 3.4.1). The instance's
// address space must be active in the bound core's MMU when it runs.
func (j *Jukebox) Bind(hier *mem.Hierarchy, mmu *vm.MMU) {
	j.hier = hier
	j.mmu = mmu
}

// RecordBuffer exposes the in-progress record metadata (sizing studies).
func (j *Jukebox) RecordBuffer() *MetadataBuffer { return j.record }

// ReplayBuffer exposes the sealed metadata the next invocation will replay.
func (j *Jukebox) ReplayBuffer() *MetadataBuffer { return j.replay }

// MetadataFootprintBytes reports the total main-memory cost of this
// instance's metadata (both directions), the per-instance cost the paper
// quotes as 32 KB.
func (j *Jukebox) MetadataFootprintBytes() int {
	if j.cfg.MetadataBytes > 0 {
		return 2 * j.cfg.MetadataBytes
	}
	return j.record.SizeBytes() + j.replay.SizeBytes()
}

// InvocationStart triggers the replay phase (Sec. 3.3): the OS has scheduled
// the instance onto the core and programmed the replay base/limit registers.
// If a pre-warm already ran the replay (BeginPrewarm), the invocation skips
// straight to execution — that skipped replay latency is the pre-warm's win.
func (j *Jukebox) InvocationStart(now mem.Cycle) {
	if j.prewarmed {
		j.prewarmed = false
		return
	}
	j.replayNow(now)
}

// BeginPrewarm runs the replay phase ahead of the predicted next arrival,
// while the instance is still idle: the predictive orchestrator (rather than
// a dispatch) programs the replay registers and fires the engine. It reports
// whether a replay actually issued; when it did, a latch makes the next
// InvocationStart skip its own replay phase. A pre-warm that already
// happened is not repeated.
func (j *Jukebox) BeginPrewarm(now mem.Cycle) bool {
	if j.prewarmed {
		return true
	}
	entriesBefore := j.Stats.ReplayEntries
	degradedBefore := j.Stats.DegradedReplays
	j.replayNow(now)
	if j.Stats.DegradedReplays != degradedBefore || j.Stats.ReplayEntries == entriesBefore {
		// Nothing sealed to replay, replay disabled, or the metadata failed
		// its checksum (degraded to record-only): no warmth was installed.
		return false
	}
	j.prewarmed = true
	return true
}

// replayNow is the replay engine shared by InvocationStart and BeginPrewarm.
func (j *Jukebox) replayNow(now mem.Cycle) {
	if !j.cfg.ReplayEnabled || j.replay.Len() == 0 {
		return
	}
	// Guard the replay source: if the in-memory metadata fails its checksum
	// or was sealed under a different entry geometry, prefetching from it
	// would pollute the L2 with garbage lines. Abandon the replay and run
	// this invocation record-only; the fresh recording re-seeds the metadata
	// for the next invocation (graceful degradation, not a crash).
	if !j.replay.Verify() || j.replay.SealedEntryBits() != j.cfg.EntryBits() {
		j.Stats.DegradedReplays++
		j.replay.Reset()
		return
	}
	// The engine reads metadata sequentially; the first line's fetch is
	// exposed, subsequent lines are fetched ahead of consumption and cost
	// only bandwidth.
	cursor := now + j.hier.DRAM.Access(now, mem.TrafficMetadataReplay)
	bitsConsumed := 0
	shift := j.cfg.regionShift()
	lines := j.cfg.LinesPerRegion()

	var havePage bool
	var curVPage, curPagePhys uint64

	for i := range j.replay.Entries() {
		e := &j.replay.Entries()[i]
		if j.ReplayHook != nil {
			j.ReplayHook(i)
		}
		j.Stats.ReplayEntries++
		bitsConsumed += j.cfg.EntryBits()
		if bitsConsumed >= 8*mem.LineSize {
			bitsConsumed -= 8 * mem.LineSize
			j.hier.DRAM.Access(cursor, mem.TrafficMetadataReplay)
		}
		regionAddr := e.Region << shift
		for n := 0; n < lines; n++ {
			if !e.Bit(n) {
				continue
			}
			lineAddr := regionAddr + uint64(n)*mem.LineSize
			var paddr uint64
			if j.cfg.UsePhysicalAddresses {
				// Ablation mode: the stored pointer is already physical —
				// and stale after any page migration.
				paddr = lineAddr
			} else {
				// Translate through the ITLB like a normal code request,
				// pre-populating it for the invocation (Sec. 3.3). One
				// translation covers all lines on the same page.
				vp := vm.PageOf(lineAddr)
				if !havePage || vp != curVPage {
					p, walk := j.mmu.TranslateInstr(cursor, lineAddr)
					cursor += walk
					curVPage, curPagePhys = vp, p&^uint64(vm.PageSize-1)
					havePage = true
					j.Stats.ReplayWalks++
				}
				paddr = curPagePhys | (lineAddr & (vm.PageSize - 1))
			}
			j.hier.PrefetchIntoL2(cursor, paddr, mem.TrafficPrefetch)
			j.Stats.ReplayPrefetches++
			cursor++ // L2 prefetch queue issue rate
		}
	}
	j.Stats.LastReplayDone = cursor
}

// OnFetch implements the record filter (Sec. 3.2): L1-I misses that also
// missed in the L2 are recorded when the fill returns. Demand hits on
// *prefetched* L2 lines are recorded too: they are lines that would have
// missed without Jukebox, and without them the metadata would decay to
// nothing one invocation after a successful replay (each replay turns the
// working set into L2 hits, which the plain filter would discard). The
// prefetched bit the L2 already tracks makes this a one-signal change; see
// DESIGN.md. Unused prefetches are never re-recorded, so stale metadata
// washes out after one generation — the property the paper relies on for
// adapting to JIT-induced working-set changes (Sec. 4.3).
func (j *Jukebox) OnFetch(now mem.Cycle, vaddr, paddr uint64, res mem.Result) {
	if !j.cfg.RecordEnabled || (!res.L2Miss && !res.L2PrefetchHit) {
		return
	}
	addr := vaddr
	if j.cfg.UsePhysicalAddresses {
		addr = paddr
	}
	region := addr >> j.cfg.regionShift()
	lineIdx := int(addr>>mem.LineShift) & (j.cfg.LinesPerRegion() - 1)
	if evicted, ok := j.crrb.Record(region, lineIdx); ok {
		j.writeEntry(now, evicted)
	}
}

// OnBlockRetire is unused by Jukebox (it records misses, not the retirement
// stream).
func (j *Jukebox) OnBlockRetire(mem.Cycle, uint64, uint64) {}

// InvocationEnd seals the record metadata: the CRRB drains to memory, the
// buffers swap so the next invocation replays what this one recorded, and
// per-invocation state resets (Sec. 3.4.1's descheduling bookkeeping).
func (j *Jukebox) InvocationEnd(now mem.Cycle) {
	for _, e := range j.crrb.Drain() {
		j.writeEntry(now, e)
	}
	if j.pendingBits > 0 {
		j.hier.DRAM.Access(now, mem.TrafficMetadataRecord)
		j.pendingBits = 0
	}
	j.Stats.LastRecordBytes = j.record.SizeBytes()
	j.Stats.DroppedEntries += j.record.Dropped
	j.record.Seal()

	j.record, j.replay = j.replay, j.record
	j.record.Reset()
	j.crrb.Reset()
	j.Stats.Invocations++
}

// writeEntry appends an evicted entry to the record buffer, charging DRAM
// bandwidth one 64 B line at a time. Metadata writes bypass the caches —
// on-chip reuse is not expected (Sec. 3.2).
func (j *Jukebox) writeEntry(now mem.Cycle, e Entry) {
	if !j.record.Append(e) {
		return
	}
	j.Stats.RecordedEntries++
	j.pendingBits += j.cfg.EntryBits()
	for j.pendingBits >= 8*mem.LineSize {
		j.pendingBits -= 8 * mem.LineSize
		j.hier.DRAM.Access(now, mem.TrafficMetadataRecord)
	}
	if j.RecordHook != nil {
		j.RecordHook(j.record.Len())
	}
}

// Abandon discards the in-flight recording state — CRRB contents, the
// partially written record buffer, and unflushed metadata bits — as happens
// when the OS evicts an instance mid-invocation. Sealed replay metadata from
// earlier invocations is untouched.
func (j *Jukebox) Abandon() {
	j.crrb.Reset()
	j.record.Reset()
	j.pendingBits = 0
	j.prewarmed = false
}

// DropMetadata discards both metadata directions and any in-flight recording
// state, as happens when the OS reclaims an evicted instance's memory. The
// next invocation records from scratch.
func (j *Jukebox) DropMetadata() {
	j.Abandon()
	j.replay.Reset()
}

// ResetStats zeroes the counters (metadata contents persist).
func (j *Jukebox) ResetStats() { j.Stats = Stats{} }

// ReplayFootprintBytes reports the prefetch volume a replay of the sealed
// metadata would issue — the set line bits across all entries times the line
// size. The predictive orchestrator charges this to its wasted-pre-warm
// ledger when a scheduled pre-warm's warmth decays unused.
func (j *Jukebox) ReplayFootprintBytes() uint64 {
	lines := j.cfg.LinesPerRegion()
	var n uint64
	for i := range j.replay.Entries() {
		e := &j.replay.Entries()[i]
		for b := 0; b < lines; b++ {
			if e.Bit(b) {
				n++
			}
		}
	}
	return n * mem.LineSize
}

// AdoptMetadata copies donor's sealed replay metadata into j, modeling a
// snapshot-based cold boot (Sec. 3.4.2): the metadata recorded before the
// snapshot ships with the image, so a freshly restored instance replays on
// its very first invocation. Both instances must use the same region
// geometry (otherwise the packed entries decode differently and the copy is
// refused); the entries are virtual addresses, valid in any address space
// cloned from the snapshot.
func (j *Jukebox) AdoptMetadata(donor *Jukebox) error {
	if j.cfg.RegionSizeBytes != donor.cfg.RegionSizeBytes {
		return fmt.Errorf("core: AdoptMetadata requires identical region geometry (%d vs %d bytes)",
			j.cfg.RegionSizeBytes, donor.cfg.RegionSizeBytes)
	}
	j.replay.Reset()
	for _, e := range donor.replay.Entries() {
		j.replay.Append(e)
	}
	j.replay.Seal()
	return nil
}

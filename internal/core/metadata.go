package core

// MetadataBuffer is one direction of a function instance's in-memory Jukebox
// metadata: an append-only sequence of entries bounded by the OS-programmed
// limit register. The buffer lives in physically contiguous memory
// (Sec. 3.4.1); PhysBase records where, so the replay engine can fetch it
// without address translation.
type MetadataBuffer struct {
	// PhysBase is the buffer's physical base address.
	PhysBase uint64
	entries  []Entry
	// entryBits is the packed storage cost per entry.
	entryBits int
	// limitBytes caps the buffer; <= 0 means unlimited (sizing studies).
	limitBytes int
	// Dropped counts entries discarded because the buffer was full.
	Dropped uint64
}

// NewMetadataBuffer creates a buffer storing entries of entryBits packed
// bits, bounded by limitBytes (<= 0 for unlimited).
func NewMetadataBuffer(physBase uint64, entryBits, limitBytes int) *MetadataBuffer {
	if entryBits <= 0 {
		panic("core: metadata entry size must be positive")
	}
	return &MetadataBuffer{PhysBase: physBase, entryBits: entryBits, limitBytes: limitBytes}
}

// Append stores e if the limit allows and reports whether it was stored.
func (b *MetadataBuffer) Append(e Entry) bool {
	if b.limitBytes > 0 && (len(b.entries)+1)*b.entryBits > b.limitBytes*8 {
		b.Dropped++
		return false
	}
	b.entries = append(b.entries, e)
	return true
}

// Entries returns the stored entries in record order. The returned slice is
// the buffer's backing store; callers must not mutate it.
func (b *MetadataBuffer) Entries() []Entry { return b.entries }

// Len reports the number of stored entries.
func (b *MetadataBuffer) Len() int { return len(b.entries) }

// SizeBytes reports the packed metadata size (rounded up to whole bytes).
func (b *MetadataBuffer) SizeBytes() int {
	return (len(b.entries)*b.entryBits + 7) / 8
}

// Full reports whether the next Append would be dropped.
func (b *MetadataBuffer) Full() bool {
	return b.limitBytes > 0 && (len(b.entries)+1)*b.entryBits > b.limitBytes*8
}

// Reset empties the buffer for reuse, keeping its physical placement.
func (b *MetadataBuffer) Reset() {
	b.entries = b.entries[:0]
	b.Dropped = 0
}

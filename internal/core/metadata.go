package core

// MetadataBuffer is one direction of a function instance's in-memory Jukebox
// metadata: an append-only sequence of entries bounded by the OS-programmed
// limit register. The buffer lives in physically contiguous memory
// (Sec. 3.4.1); PhysBase records where, so the replay engine can fetch it
// without address translation.
type MetadataBuffer struct {
	// PhysBase is the buffer's physical base address.
	PhysBase uint64
	entries  []Entry
	// entryBits is the packed storage cost per entry.
	entryBits int
	// limitBytes caps the buffer; <= 0 means unlimited (sizing studies).
	limitBytes int
	// Dropped counts entries discarded because the buffer was full.
	Dropped uint64

	// Seal state: a lightweight checksum written when recording finishes
	// (Seal) and checked before replay (Verify). Corruption of the underlying
	// memory — modeled by the mutators below — leaves the seal stale, so
	// the replay engine can detect it and degrade to record-only.
	sealSum  uint64
	sealBits int
	sealed   bool
}

// NewMetadataBuffer creates a buffer storing entries of entryBits packed
// bits, bounded by limitBytes (<= 0 for unlimited).
func NewMetadataBuffer(physBase uint64, entryBits, limitBytes int) *MetadataBuffer {
	if entryBits <= 0 {
		panic("core: metadata entry size must be positive")
	}
	return &MetadataBuffer{PhysBase: physBase, entryBits: entryBits, limitBytes: limitBytes}
}

// Append stores e if the limit allows and reports whether it was stored.
func (b *MetadataBuffer) Append(e Entry) bool {
	if b.limitBytes > 0 && (len(b.entries)+1)*b.entryBits > b.limitBytes*8 {
		b.Dropped++
		return false
	}
	b.entries = append(b.entries, e)
	return true
}

// Entries returns the stored entries in record order. The returned slice is
// the buffer's backing store; callers must not mutate it.
func (b *MetadataBuffer) Entries() []Entry { return b.entries }

// Len reports the number of stored entries.
func (b *MetadataBuffer) Len() int { return len(b.entries) }

// SizeBytes reports the packed metadata size (rounded up to whole bytes).
func (b *MetadataBuffer) SizeBytes() int {
	return (len(b.entries)*b.entryBits + 7) / 8
}

// Full reports whether the next Append would be dropped.
func (b *MetadataBuffer) Full() bool {
	return b.limitBytes > 0 && (len(b.entries)+1)*b.entryBits > b.limitBytes*8
}

// Reset empties the buffer for reuse, keeping its physical placement.
func (b *MetadataBuffer) Reset() {
	b.entries = b.entries[:0]
	b.Dropped = 0
	b.sealSum = 0
	b.sealBits = 0
	b.sealed = false
}

// checksum is an FNV-1a-style fold over the entry words plus the entry
// geometry. It is cheap (one multiply-xor per word), deterministic, and
// order-sensitive — exactly what a hardware metadata sealer would compute
// while streaming the buffer out to memory.
func (b *MetadataBuffer) checksum() uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(b.entryBits))
	mix(uint64(len(b.entries)))
	for i := range b.entries {
		mix(b.entries[i].Region)
		mix(b.entries[i].Vector[0])
		mix(b.entries[i].Vector[1])
	}
	return h
}

// Seal stamps the buffer with a checksum over its current contents and
// geometry. The recording side calls this when an invocation ends, before
// the buffer becomes the replay source.
func (b *MetadataBuffer) Seal() {
	b.sealSum = b.checksum()
	b.sealBits = b.entryBits
	b.sealed = true
}

// Sealed reports whether the buffer carries a seal.
func (b *MetadataBuffer) Sealed() bool { return b.sealed }

// SealedEntryBits reports the entry geometry recorded at seal time (0 if
// unsealed). A mismatch against the consumer's configured geometry means the
// metadata was produced by a differently-configured Jukebox.
func (b *MetadataBuffer) SealedEntryBits() int { return b.sealBits }

// Verify recomputes the checksum and reports whether the buffer still
// matches its seal. An unsealed buffer never verifies.
func (b *MetadataBuffer) Verify() bool {
	return b.sealed && b.sealBits == b.entryBits && b.checksum() == b.sealSum
}

// The mutators below model memory corruption of the in-DRAM metadata. They
// deliberately do NOT touch the seal: real corruption does not update
// checksums, which is precisely what lets Verify catch it.

// CorruptFlipBit flips one bit of one stored entry word. word selects
// Region (0) or a Vector half (1, 2); out-of-range indexes are reduced
// modulo the valid range so any seeded values are usable.
func (b *MetadataBuffer) CorruptFlipBit(entry, word, bit int) {
	if len(b.entries) == 0 {
		return
	}
	e := &b.entries[entry%len(b.entries)]
	mask := uint64(1) << (uint(bit) % 64)
	switch word % 3 {
	case 0:
		e.Region ^= mask
	case 1:
		e.Vector[0] ^= mask
	default:
		e.Vector[1] ^= mask
	}
}

// CorruptTruncate discards all but the first n entries (n < 0 keeps none),
// modeling a partial write-back or torn snapshot.
func (b *MetadataBuffer) CorruptTruncate(n int) {
	if n < 0 {
		n = 0
	}
	if n < len(b.entries) {
		b.entries = b.entries[:n]
	}
}

// CorruptZero zeroes every stored entry, modeling a lost or reinitialized
// backing page.
func (b *MetadataBuffer) CorruptZero() {
	for i := range b.entries {
		b.entries[i] = Entry{}
	}
}

package core

import (
	"testing"

	"lukewarm/internal/mem"
)

func BenchmarkCRRBRecordCoalesce(b *testing.B) {
	c := NewCRRB(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Record(uint64(i%8), i%16)
	}
}

func BenchmarkCRRBRecordChurn(b *testing.B) {
	c := NewCRRB(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Record(uint64(i), i%16)
	}
}

func BenchmarkJukeboxRecordPath(b *testing.B) {
	r := newRig(DefaultConfig())
	res := mem.Result{L2Miss: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.jb.OnFetch(mem.Cycle(i), uint64(i)<<6, uint64(i)<<6, res)
	}
}

func BenchmarkJukeboxReplay(b *testing.B) {
	r := newRig(DefaultConfig())
	p := testProgram()
	r.core.FlushMicroarch()
	r.core.RunInvocation(p.NewInvocation(0)) // seal one metadata generation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.core.Hier.FlushAll()
		r.jb.InvocationStart(mem.Cycle(i) * 1_000_000)
	}
}

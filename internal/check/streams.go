package check

import (
	"fmt"

	"lukewarm/internal/program"
	"lukewarm/internal/vm"
	"lukewarm/internal/workload"
)

// access is one element of a data-side address stream.
type access struct {
	addr  uint64
	write bool
}

// branchEvent is one taken-branch event of a control stream.
type branchEvent struct {
	pc     uint64
	target uint64
}

// randomAccesses draws n uniform accesses over pages 4 KiB pages starting at
// base, with writeFrac of them stores. A small page count forces reuse and
// eviction; a large one forces capacity misses — both regimes matter for the
// cache oracle.
func randomAccesses(seed uint64, n, pages int, base uint64, writeFrac float64) []access {
	rng := program.NewRNG(seed)
	out := make([]access, n)
	for i := range out {
		out[i] = access{
			addr:  base + uint64(rng.Intn(pages))<<vm.PageShift + uint64(rng.Intn(vm.PageSize)),
			write: rng.Bool(writeFrac),
		}
	}
	return out
}

// hotColdAccesses mixes a small hot set (90% of accesses over hotPages) with
// a large cold set, the locality shape of real instruction and data streams.
func hotColdAccesses(seed uint64, n, hotPages, coldPages int) []access {
	rng := program.NewRNG(program.Mix(seed, 0x9e3779b97f4a7c15))
	out := make([]access, n)
	for i := range out {
		var a uint64
		if rng.Bool(0.9) {
			a = uint64(rng.Intn(hotPages)) << vm.PageShift
		} else {
			a = 1<<32 + uint64(rng.Intn(coldPages))<<vm.PageShift
		}
		out[i] = access{addr: a + uint64(rng.Intn(vm.PageSize)), write: rng.Bool(0.3)}
	}
	return out
}

// stridedAccesses walks stride-separated lines, wrapping over spanBytes — the
// conflict-miss generator (every access maps to few sets when the stride is a
// multiple of the way span).
func stridedAccesses(n, strideBytes, spanBytes int) []access {
	out := make([]access, n)
	for i := range out {
		out[i] = access{addr: uint64(i*strideBytes) % uint64(spanBytes)}
	}
	return out
}

// randomBranches synthesizes taken-branch events from small pools of branch
// PCs and targets, sized to force direct-map aliasing in the BTB under test.
func randomBranches(seed uint64, n, pcs, targets int) []branchEvent {
	rng := program.NewRNG(program.Mix(seed, 0xbf58476d1ce4e5b9))
	out := make([]branchEvent, n)
	for i := range out {
		out[i] = branchEvent{
			pc:     0x400000 + uint64(rng.Intn(pcs))*4,
			target: 0x400000 + uint64(rng.Intn(targets))*4,
		}
	}
	return out
}

// traceAccesses derives a data-side address stream from a real workload: the
// load/store effective addresses of invocation id of function fn, capped at
// max (0 = all).
func traceAccesses(fn string, id uint64, max int) ([]access, error) {
	w, err := workload.ByName(fn)
	if err != nil {
		return nil, err
	}
	inv := w.Program.NewInvocation(id)
	var out []access
	for {
		in, ok := inv.Next()
		if !ok {
			break
		}
		if in.Op != program.OpLoad && in.Op != program.OpStore {
			continue
		}
		out = append(out, access{addr: in.MemAddr, write: in.Op == program.OpStore})
		if max > 0 && len(out) >= max {
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("check: %s invocation %d produced no memory accesses", fn, id)
	}
	return out, nil
}

// traceBranches derives the taken-branch stream of invocation id of fn,
// capped at max (0 = all). Indirect branches are skipped: the core
// synthesizes a per-occurrence target for them, which is its policy rather
// than the BTB's behaviour.
func traceBranches(fn string, id uint64, max int) ([]branchEvent, error) {
	w, err := workload.ByName(fn)
	if err != nil {
		return nil, err
	}
	inv := w.Program.NewInvocation(id)
	var out []branchEvent
	for {
		in, ok := inv.Next()
		if !ok {
			break
		}
		if in.Op != program.OpBranch || !in.Taken || in.Indirect {
			continue
		}
		out = append(out, branchEvent{pc: in.VAddr, target: in.Target})
		if max > 0 && len(out) >= max {
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("check: %s invocation %d produced no taken branches", fn, id)
	}
	return out, nil
}

// vpagesOf projects an access stream onto its virtual page stream.
func vpagesOf(stream []access) []uint64 {
	out := make([]uint64, len(stream))
	for i, a := range stream {
		out[i] = vm.PageOf(a.addr)
	}
	return out
}

package check

import (
	"fmt"

	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/topdown"
	"lukewarm/internal/vm"
	"lukewarm/internal/workload"
)

// The differential oracles: for each structure under test, a reference model
// small and simple enough to be obviously correct is driven with the same
// stream and compared access-by-access. The references deliberately use the
// most naive data structures that express the policy (recency-ordered
// slices, maps, FIFO slices) — no ticks, no packed arrays — so a bug in the
// optimized implementation cannot be mirrored here.

// refLRU is a reference set-associative LRU cache over opaque keys: each set
// is a recency-ordered slice, MRU last. With sets == 1 it is the
// fully-associative LRU cache of the textbook definition.
type refLRU struct {
	ways int
	sets [][]uint64
}

func newRefLRU(sets, ways int) *refLRU {
	return &refLRU{ways: ways, sets: make([][]uint64, sets)}
}

// access looks key up in its set, reporting a hit; either way key ends up
// MRU, evicting the set's LRU element when the set overflows.
func (c *refLRU) access(key uint64) bool {
	si := int(key) & (len(c.sets) - 1)
	s := c.sets[si]
	for i, k := range s {
		if k == key {
			c.sets[si] = append(append(s[:i:i], s[i+1:]...), key)
			return true
		}
	}
	s = append(s, key)
	if len(s) > c.ways {
		s = s[1:]
	}
	c.sets[si] = s
	return false
}

// resident reports the number of cached keys.
func (c *refLRU) resident() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}

// checkCacheOracle drives a mem.Cache and the reference LRU with the same
// demand stream and compares every outcome plus the final counters.
func checkCacheOracle(cfg mem.Config, stream []access) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	dut := mem.NewCache(cfg)
	ref := newRefLRU(cfg.Sets(), cfg.Ways)
	var hits, misses uint64
	for i, a := range stream {
		k := mem.Data
		if !a.write && i%3 == 0 {
			k = mem.Instr // exercise both traffic kinds
		}
		got := dut.DemandAccess(mem.Cycle(i), a.addr, k, a.write)
		want := ref.access(a.addr >> mem.LineShift)
		if got != want {
			return fmt.Errorf("cache %s: access %d addr %#x: hit=%v, reference says %v",
				cfg.Name, i, a.addr, got, want)
		}
		if want {
			hits++
		} else {
			misses++
		}
	}
	s := dut.Stats
	var accD, hitD, missD uint64
	for k := 0; k < 2; k++ {
		accD += s.DemandAccesses[k]
		hitD += s.DemandHits[k]
		missD += s.DemandMisses[k]
	}
	switch {
	case accD != uint64(len(stream)):
		return fmt.Errorf("cache %s: counted %d demand accesses, drove %d", cfg.Name, accD, len(stream))
	case hitD != hits || missD != misses:
		return fmt.Errorf("cache %s: counters say %d hits / %d misses, reference says %d / %d",
			cfg.Name, hitD, missD, hits, misses)
	case dut.CountValid() != ref.resident():
		return fmt.Errorf("cache %s: %d resident lines, reference says %d",
			cfg.Name, dut.CountValid(), ref.resident())
	}
	return nil
}

// refBTB is a reference direct-mapped branch target buffer: a map from slot
// index to the (pc, target) pair last installed there.
type refBTB struct {
	entries int
	slots   map[int]branchEvent
}

func (b *refBTB) lookupAndUpdate(pc, target uint64) bool {
	i := int(pc>>2) & (b.entries - 1)
	prev, ok := b.slots[i]
	b.slots[i] = branchEvent{pc: pc, target: target}
	return ok && prev.pc == pc && prev.target == target
}

// checkBTBOracle drives a cpu.BTB and the reference map with the same
// taken-branch stream.
func checkBTBOracle(entries int, stream []branchEvent) error {
	dut := cpu.NewBTB(entries)
	ref := &refBTB{entries: entries, slots: map[int]branchEvent{}}
	var resteers uint64
	for i, b := range stream {
		got := dut.LookupAndUpdate(b.pc, b.target)
		want := ref.lookupAndUpdate(b.pc, b.target)
		if got != want {
			return fmt.Errorf("BTB/%d: branch %d pc=%#x target=%#x: hit=%v, reference says %v",
				entries, i, b.pc, b.target, got, want)
		}
		if !want {
			resteers++
		}
	}
	if dut.Stats.Lookups != uint64(len(stream)) || dut.Stats.Resteers != resteers {
		return fmt.Errorf("BTB/%d: counters say %d lookups / %d resteers, reference says %d / %d",
			entries, dut.Stats.Lookups, dut.Stats.Resteers, uint64(len(stream)), resteers)
	}
	return nil
}

// refFIFO is a reference bounded FIFO set (the walker's PTE-line cache
// policy): membership plus insertion order, oldest evicted first.
type refFIFO struct {
	cap  int
	keys []uint64
}

func (f *refFIFO) accessed(key uint64) bool {
	for _, k := range f.keys {
		if k == key {
			return true
		}
	}
	f.keys = append(f.keys, key)
	if len(f.keys) > f.cap {
		f.keys = f.keys[1:]
	}
	return false
}

// checkTLBOracle drives the two-level translation path — vm.TLB lookup, then
// vm.Walker page walk on a miss — against a reference LRU TLB plus FIFO
// PTE-line set, on the same virtual-page stream.
func checkTLBOracle(cfg vm.TLBConfig, wcfg vm.WalkerConfig, vpages []uint64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	dutTLB := vm.NewTLB(cfg)
	dutWalker := vm.NewWalker(wcfg, mem.NewDRAM(mem.DefaultDRAMConfig()))
	refTLB := newRefLRU(cfg.Sets, cfg.Ways)
	refPTE := &refFIFO{cap: wcfg.CacheEntries}
	var misses, cold uint64
	now := mem.Cycle(0)
	for i, vp := range vpages {
		gotHit := dutTLB.Access(vp)
		wantHit := refTLB.access(vp)
		if gotHit != wantHit {
			return fmt.Errorf("TLB %s: access %d vpage %#x: hit=%v, reference says %v",
				cfg.Name, i, vp, gotHit, wantHit)
		}
		if wantHit {
			continue
		}
		misses++
		lat := dutWalker.Walk(now, vp)
		gotCold := lat > wcfg.BaseLatency
		wantCold := !refPTE.accessed(vp >> 3)
		if gotCold != wantCold {
			return fmt.Errorf("walker: walk %d vpage %#x: cold=%v (latency %d), reference says %v",
				i, vp, gotCold, lat, wantCold)
		}
		if wantCold {
			cold++
		}
		now += lat
	}
	switch {
	case dutTLB.Stats.Accesses != uint64(len(vpages)) || dutTLB.Stats.Misses != misses:
		return fmt.Errorf("TLB %s: counters say %d accesses / %d misses, reference says %d / %d",
			cfg.Name, dutTLB.Stats.Accesses, dutTLB.Stats.Misses, uint64(len(vpages)), misses)
	case dutWalker.Walks != misses || dutWalker.ColdWalks != cold:
		return fmt.Errorf("walker: counters say %d walks / %d cold, reference says %d / %d",
			dutWalker.Walks, dutWalker.ColdWalks, misses, cold)
	}
	return nil
}

// fetchAccount is the in-order fetch accountant's independent pass over an
// invocation's instruction stream.
type fetchAccount struct {
	instrs      uint64
	fetchBlocks uint64 // distinct-consecutive 64 B fetch blocks
	conds       uint64 // conditional branches
	takens      uint64 // taken branches (BTB lookups)
	dataAccs    uint64 // loads + stores
}

func accountStream(src cpu.InstrSource) fetchAccount {
	var a fetchAccount
	curBlock := ^uint64(0)
	for {
		in, ok := src.Next()
		if !ok {
			return a
		}
		a.instrs++
		if blk := in.VAddr &^ (mem.LineSize - 1); blk != curBlock {
			curBlock = blk
			a.fetchBlocks++
		}
		switch in.Op {
		case program.OpLoad, program.OpStore:
			a.dataAccs++
		case program.OpBranch:
			if in.Cond {
				a.conds++
			}
			if in.Taken {
				a.takens++
			}
		}
	}
}

// checkFetchAccountant runs one invocation of fn on a fresh core and
// cross-checks the core's event counters — retiring cycles, L1-I and TLB
// demand traffic, predictor and BTB activity — against the accountant's
// independent walk of the same stream. The Top-Down conservation identity is
// audited as well.
func checkFetchAccountant(fn string, id uint64) error {
	w, err := workload.ByName(fn)
	if err != nil {
		return err
	}
	c := cpu.NewCore(cpu.SkylakeConfig())
	c.MMU.SetAddressSpace(vm.NewAddressSpace(vm.NewFrameAllocator(0)))
	res := c.RunInvocation(w.Program.NewInvocation(id))
	want := accountStream(w.Program.NewInvocation(id))

	fail := func(what string, got, exp uint64) error {
		return fmt.Errorf("fetch accountant %s/%d: %s: core says %d, accountant says %d",
			fn, id, what, got, exp)
	}
	switch {
	case res.Instrs != want.instrs:
		return fail("retired instructions", res.Instrs, want.instrs)
	case res.Instrs != w.Program.DynamicLength(id):
		return fail("dynamic length", res.Instrs, w.Program.DynamicLength(id))
	//lukewarm:floateq the oracle asserts an exact integer-valued identity; any drift must fail loudly
	case res.Stack.Cycles[topdown.Retiring] != float64(want.instrs/uint64(c.Cfg.DispatchWidth)):
		// Retiring on a fresh core is exactly floor(instrs/DispatchWidth):
		// one cycle per full dispatch group, the sub-group residue uncharged.
		return fmt.Errorf("fetch accountant %s/%d: retiring cycles: core says %.0f, accountant says %d",
			fn, id, res.Stack.Cycles[topdown.Retiring], want.instrs/uint64(c.Cfg.DispatchWidth))
	case c.Hier.L1I.Stats.DemandAccesses[mem.Instr] != want.fetchBlocks:
		return fail("L1-I demand fetches", c.Hier.L1I.Stats.DemandAccesses[mem.Instr], want.fetchBlocks)
	case c.MMU.ITLB.Stats.Accesses != want.fetchBlocks:
		return fail("ITLB accesses", c.MMU.ITLB.Stats.Accesses, want.fetchBlocks)
	case c.Hier.L1D.Stats.DemandAccesses[mem.Data] != want.dataAccs:
		return fail("L1-D demand accesses", c.Hier.L1D.Stats.DemandAccesses[mem.Data], want.dataAccs)
	case c.MMU.DTLB.Stats.Accesses != want.dataAccs:
		return fail("DTLB accesses", c.MMU.DTLB.Stats.Accesses, want.dataAccs)
	case c.BP.Stats.Predictions != want.conds:
		return fail("direction predictions", c.BP.Stats.Predictions, want.conds)
	case c.BTB.Stats.Lookups != want.takens:
		return fail("BTB lookups", c.BTB.Stats.Lookups, want.takens)
	case res.Mispredicts != c.BP.Stats.Mispredicts:
		return fail("mispredict delta", res.Mispredicts, c.BP.Stats.Mispredicts)
	case res.Resteers != c.BTB.Stats.Resteers:
		return fail("resteer delta", res.Resteers, c.BTB.Stats.Resteers)
	}
	if err := faults.Audit(res); err != nil {
		return fmt.Errorf("fetch accountant %s/%d: %w", fn, id, err)
	}
	return nil
}

// oracleChecks enumerates the differential-oracle battery: every structure
// on seeded random streams, conflict streams, and trace-derived streams.
func oracleChecks() []namedCheck {
	smallCache := mem.Config{Name: "oracle-l1", SizeBytes: 16 << 10, Ways: 4, HitLatency: 1, MSHRs: 8}
	faCache := mem.Config{Name: "oracle-fa", SizeBytes: 8 << 10, Ways: 128, HitLatency: 1, MSHRs: 8}
	tlbCfg := vm.TLBConfig{Name: "oracle-tlb", Sets: 8, Ways: 4}
	walkerCfg := vm.WalkerConfig{BaseLatency: 25, CacheEntries: 16}

	return []namedCheck{
		{"oracle/cache/random", func() error {
			return checkCacheOracle(smallCache, randomAccesses(1, 60000, 32, 0, 0.3))
		}},
		{"oracle/cache/hot-cold", func() error {
			return checkCacheOracle(smallCache, hotColdAccesses(2, 60000, 4, 4096))
		}},
		{"oracle/cache/strided-conflict", func() error {
			return checkCacheOracle(smallCache, stridedAccesses(20000, 4<<10, 1<<20))
		}},
		{"oracle/cache/fully-associative", func() error {
			return checkCacheOracle(faCache, randomAccesses(3, 60000, 16, 0, 0.5))
		}},
		{"oracle/cache/trace", func() error {
			stream, err := traceAccesses("Auth-G", 0, 120000)
			if err != nil {
				return err
			}
			return checkCacheOracle(smallCache, stream)
		}},
		{"oracle/btb/random", func() error {
			return checkBTBOracle(256, randomBranches(4, 60000, 1024, 64))
		}},
		{"oracle/btb/trace", func() error {
			stream, err := traceBranches("Email-P", 0, 120000)
			if err != nil {
				return err
			}
			return checkBTBOracle(256, stream)
		}},
		{"oracle/tlb/random", func() error {
			return checkTLBOracle(tlbCfg, walkerCfg,
				vpagesOf(randomAccesses(5, 60000, 256, 0, 0)))
		}},
		{"oracle/tlb/trace", func() error {
			stream, err := traceAccesses("Pay-N", 0, 120000)
			if err != nil {
				return err
			}
			return checkTLBOracle(tlbCfg, walkerCfg, vpagesOf(stream))
		}},
		{"oracle/fetch-accountant/Auth-G", func() error {
			return checkFetchAccountant("Auth-G", 0)
		}},
		{"oracle/fetch-accountant/Email-P", func() error {
			return checkFetchAccountant("Email-P", 1)
		}},
	}
}

package check

import (
	"strings"
	"testing"
)

// TestProperties runs every metamorphic invariant as a subtest.
func TestProperties(t *testing.T) {
	for _, c := range propertyChecks() {
		t.Run(strings.TrimPrefix(c.name, "property/"), func(t *testing.T) {
			if err := c.fn(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunReport exercises the battery entry point the CLI uses: every check
// is present in the report and the report renders.
func TestRunReport(t *testing.T) {
	r := Run()
	if want := len(battery()); len(r.Results) != want {
		t.Fatalf("report has %d results, battery has %d checks", len(r.Results), want)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Failures() != 0 {
		t.Fatalf("%d failures", r.Failures())
	}
	out := r.Table().String()
	if !strings.Contains(out, "oracle/cache/random") || !strings.Contains(out, "property/traffic-conservation") {
		t.Fatalf("report table missing expected checks:\n%s", out)
	}
}

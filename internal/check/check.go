// Package check is the repository's validation subsystem: an independent
// line of evidence that the microarchitectural structures underneath every
// figure are right.
//
// It has three layers:
//
//   - Differential oracles (oracles.go): small, obviously-correct reference
//     models — a per-set recency-list LRU cache, a map-based direct-map BTB,
//     a naive two-level TLB walk, an in-order fetch accountant — cross-checked
//     access-by-access against internal/mem, internal/cpu, and internal/vm on
//     seeded random and trace-derived address streams.
//   - Metamorphic properties (properties.go): invariants that must hold
//     across related runs — a larger cache never misses more, a zero-length
//     inter-arrival gap is the warm steady state, a disabled Jukebox is
//     bit-identical to no Jukebox, the Top-Down stack sums to the measured
//     cycles, and ServeTraffic conserves invocations.
//   - Golden-figure regression (golden.go, golden_test.go): canonical
//     small-config runs of every experiment, snapshotted under
//     testdata/golden with explicit tolerance bands and refreshed via
//     `go test ./internal/check -run Golden -update`.
//
// The oracle and property layers run in plain unit tests and behind the
// `lukewarm check` subcommand (Run); the golden layer is test-only because
// it needs the checked-in testdata.
package check

import (
	"fmt"

	"lukewarm/internal/stats"
)

// namedCheck is one entry of the validation battery.
type namedCheck struct {
	name string
	fn   func() error
}

// Result is one check's outcome.
type Result struct {
	// Name identifies the check, e.g. "oracle/cache/random".
	Name string
	// Err is nil for a pass.
	Err error
}

// Report collects the battery's outcomes.
type Report struct {
	Results []Result
}

// Failures reports how many checks failed.
func (r *Report) Failures() int {
	n := 0
	for _, res := range r.Results {
		if res.Err != nil {
			n++
		}
	}
	return n
}

// Err summarizes the report as an error: nil when everything passed,
// otherwise the first failure annotated with the failure count.
func (r *Report) Err() error {
	for _, res := range r.Results {
		if res.Err != nil {
			return fmt.Errorf("check: %d of %d checks failed, first: %s: %w",
				r.Failures(), len(r.Results), res.Name, res.Err)
		}
	}
	return nil
}

// Table renders the report.
func (r *Report) Table() *stats.Table {
	t := stats.NewTable("Validation battery: differential oracles + metamorphic properties",
		"check", "status", "detail")
	for _, res := range r.Results {
		status, detail := "ok", ""
		if res.Err != nil {
			status, detail = "FAIL", res.Err.Error()
		}
		t.AddRow(res.Name, status, detail)
	}
	return t
}

// battery returns every oracle and property check in execution order. Tests
// and Run share it, so the CLI battery and `go test ./internal/check` can
// never drift apart.
func battery() []namedCheck {
	var checks []namedCheck
	checks = append(checks, oracleChecks()...)
	checks = append(checks, pagetableChecks()...)
	checks = append(checks, propertyChecks()...)
	return checks
}

// Run executes the full oracle + property battery and returns its report.
// The golden-figure regression layer is excluded: it lives in the test
// binary, next to its testdata.
func Run() *Report {
	r := &Report{}
	for _, c := range battery() {
		r.Results = append(r.Results, Result{Name: c.name, Err: c.fn()})
	}
	return r
}

package check

import (
	"flag"
	"fmt"
	"path/filepath"
	"testing"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/experiments"
	"lukewarm/internal/runner"
	"lukewarm/internal/stats"
)

// update rewrites the golden snapshots instead of comparing against them
// (package path before the flag, or go test hands the path to the wrong
// binary):
//
//	go test ./internal/check -run Golden -update
var update = flag.Bool("update", false, "rewrite golden snapshots in testdata/golden")

// goldenOpts is the canonical small configuration every experiment is
// snapshotted under: two functions, one warm-up, two measured invocations —
// big enough that every code path runs, small enough to stay test-speed.
func goldenOpts(eng *runner.Engine) experiments.Options {
	return experiments.Options{
		Warmup:    1,
		Measure:   2,
		Functions: []string{"Auth-G", "Email-P"},
		Engine:    eng,
	}
}

// goldenCase is one experiment of the regression harness.
type goldenCase struct {
	name string
	// tolPct is the per-cell tolerance band. The simulator is deterministic,
	// so snapshots reproduce exactly today; the band states how much model
	// drift a future change may introduce without refreshing the snapshot.
	tolPct float64
	tables func(opt experiments.Options) ([]*stats.Table, error)
}

func one(t *stats.Table, err error) ([]*stats.Table, error) { return []*stats.Table{t}, err }

// goldenCases enumerates every experiment's canonical tables.
func goldenCases() []goldenCase {
	return []goldenCase{
		{"fig1", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Fig1(o)
			return one(r.Table(), err)
		}},
		{"characterization", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Characterize(o)
			return []*stats.Table{r.Fig2Table(), r.Fig3Table(), r.Fig4Table(),
				r.Fig5aTable(), r.Fig5bTable()}, err
		}},
		{"footprints", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Footprints(o, 5)
			return []*stats.Table{r.Fig6aTable(), r.Fig6bTable()}, err
		}},
		{"fig8", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Fig8(o, 16)
			return one(r.Table(), err)
		}},
		{"fig9", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Fig9(o)
			return one(r.Table(), err)
		}},
		{"performance", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Performance(o, cpu.SkylakeConfig(), core.DefaultConfig())
			return []*stats.Table{r.Fig10Table(), r.Fig11Table(), r.Fig12Table()}, err
		}},
		{"fig13", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Fig13(o)
			return one(r.Table(), err)
		}},
		{"table3", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Table3(o)
			return one(r.Table(), err)
		}},
		{"crrb-ablation", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.CRRBAblation(o)
			return one(r.Table(), err)
		}},
		{"compaction", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Compaction(o)
			return one(r.Table(), err)
		}},
		{"snapshot", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Snapshot(o)
			return one(r.Table(), err)
		}},
		{"dynamic-metadata", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.DynamicMetadata(o)
			return one(r.Table(), err)
		}},
		{"baselines", 0.5, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Baselines(o)
			return one(r.Table(), err)
		}},
		// Traffic-level experiments aggregate queueing and placement effects;
		// give them a slightly wider band than the per-instance figures.
		{"server-sim", 1.0, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.ServerSim(o)
			return one(r.Table(), err)
		}},
		{"scaling", 1.0, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Scaling(o)
			return one(r.Table(), err)
		}},
		{"sched", 1.0, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Sched(o)
			return []*stats.Table{r.Table(), r.KeepAliveTable(), r.PerFuncTable()}, err
		}},
		{"chaos", 1.0, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Chaos(o, 42)
			return one(r.Table(), err)
		}},
		{"cluster", 1.0, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Cluster(o)
			return []*stats.Table{r.Table(), r.LatencyTable()}, err
		}},
		{"coldstart", 1.0, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Coldstart(o)
			return []*stats.Table{r.Table(), r.CrossoverTable(), r.StalenessTable()}, err
		}},
		{"prewarm", 1.0, func(o experiments.Options) ([]*stats.Table, error) {
			r, err := experiments.Prewarm(o)
			return one(r.Table(), err)
		}},
	}
}

// TestGoldenExperiments regenerates every experiment's canonical tables and
// holds them to the checked-in snapshots (or refreshes the snapshots with
// -update). One engine spans all experiments, as in the CLI, so shared cells
// are simulated once.
func TestGoldenExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regression runs every experiment; skipped in -short mode")
	}
	eng := runner.Default()
	seen := map[string]string{}
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			tables, err := gc.tables(goldenOpts(eng))
			if err != nil {
				t.Fatalf("running %s: %v", gc.name, err)
			}
			for _, tb := range tables {
				path := filepath.Join("testdata", "golden", tb.Slug()+".json")
				if prev, dup := seen[path]; dup {
					t.Fatalf("table slug collision: %s and %s both map to %s", prev, gc.name, path)
				}
				seen[path] = gc.name
				if *update {
					g, err := Snapshot(tb, gc.tolPct)
					if err != nil {
						t.Fatal(err)
					}
					if err := WriteGolden(path, g); err != nil {
						t.Fatal(err)
					}
					continue
				}
				g, err := ReadGolden(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := g.Compare(tb); err != nil {
					t.Errorf("%s: %v\n(refresh with `go test ./internal/check -run Golden -update` if the change is intended)",
						filepath.Base(path), err)
				}
			}
		})
	}
}

// TestGoldenCompare unit-tests the tolerance machinery itself on synthetic
// tables, independent of the experiment snapshots.
func TestGoldenCompare(t *testing.T) {
	mk := func(cpi string) *stats.Table {
		tb := stats.NewTable("Synthetic: compare", "func", "cpi", "speedup", "share")
		tb.AddRow("Auth-G", cpi, "1.53x", "12.3%")
		return tb
	}
	g, err := Snapshot(mk("2.00"), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Compare(mk("2.01")); err != nil {
		t.Fatalf("0.5%% drift rejected under 1%% tolerance: %v", err)
	}
	if err := g.Compare(mk("2.10")); err == nil {
		t.Fatal("5% drift accepted under 1% tolerance")
	}
	bad := mk("2.00")
	bad.AddRow("Email-P", "1.00", "1.00x", "0.0%")
	if err := g.Compare(bad); err == nil {
		t.Fatal("extra row accepted")
	}

	// Unit suffixes parse; non-numeric cells require exact equality.
	if v, ok := numericCell("1.53x"); !ok || v != 1.53 {
		t.Fatalf("numericCell(1.53x) = %v, %v", v, ok)
	}
	if v, ok := numericCell("12.3%"); !ok || v != 12.3 {
		t.Fatalf("numericCell(12.3%%) = %v, %v", v, ok)
	}
	if _, ok := numericCell("Auth-G"); ok {
		t.Fatal("numericCell accepted a function name")
	}
	if fmt.Sprint(g.Header) != "[func cpi speedup share]" {
		t.Fatalf("header round-trip: %v", g.Header)
	}
}

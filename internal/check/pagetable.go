package check

import (
	"fmt"
	"sort"

	"lukewarm/internal/program"
	"lukewarm/internal/vm"
)

// refPageTable is the map-backed page table that internal/vm used before the
// chunked flat frame table replaced it: one map entry per mapped virtual
// page, demand allocation on first touch, and a collect-and-sort Pages walk.
// It is deliberately the obviously-correct shape — every operation is a map
// lookup — and serves as the differential reference the flat representation
// is checked against, operation by operation.
type refPageTable struct {
	alloc  *vm.FrameAllocator
	frames map[uint64]uint64 // vpage -> physical frame base
	moved  uint64
}

func newRefPageTable(alloc *vm.FrameAllocator) *refPageTable {
	return &refPageTable{alloc: alloc, frames: map[uint64]uint64{}}
}

func (r *refPageTable) translate(vaddr uint64) uint64 {
	vp := vm.PageOf(vaddr)
	base, ok := r.frames[vp]
	if !ok {
		base = r.alloc.Alloc()
		r.frames[vp] = base
	}
	return base | (vaddr & (vm.PageSize - 1))
}

func (r *refPageTable) lookup(vaddr uint64) (uint64, bool) {
	base, ok := r.frames[vm.PageOf(vaddr)]
	if !ok {
		return 0, false
	}
	return base | (vaddr & (vm.PageSize - 1)), true
}

func (r *refPageTable) pages() []uint64 {
	out := make([]uint64, 0, len(r.frames))
	for vp := range r.frames {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// compact migrates every mapped page to a fresh frame in virtual-address
// order — the same deterministic order the real Compact guarantees.
func (r *refPageTable) compact() {
	for _, vp := range r.pages() {
		r.frames[vp] = r.alloc.Alloc()
		r.moved++
	}
}

// ptOp is one step of a page-table differential stream.
type ptOp struct {
	vaddr   uint64
	kind    uint8 // 0 translate, 1 lookup, 2 compact
	checkAt bool  // cross-check Pages()/MappedPages after this op
}

const (
	ptTranslate = iota
	ptLookup
	ptCompact
)

// checkPageTable drives the flat AddressSpace and the map-backed reference
// over the same operation stream from identical allocators and fails on the
// first divergence in translations, lookups, page sets, or migration counts.
func checkPageTable(ops []ptOp) error {
	flat := vm.NewAddressSpace(vm.NewFrameAllocator(7))
	ref := newRefPageTable(vm.NewFrameAllocator(7))
	for i, op := range ops {
		switch op.kind {
		case ptTranslate:
			got, want := flat.Translate(op.vaddr), ref.translate(op.vaddr)
			if got != want {
				return fmt.Errorf("op %d: Translate(%#x) = %#x, reference %#x", i, op.vaddr, got, want)
			}
		case ptLookup:
			got, gok := flat.Lookup(op.vaddr)
			want, wok := ref.lookup(op.vaddr)
			if gok != wok || got != want {
				return fmt.Errorf("op %d: Lookup(%#x) = %#x,%v, reference %#x,%v",
					i, op.vaddr, got, gok, want, wok)
			}
		case ptCompact:
			flat.Compact()
			ref.compact()
			if flat.Migrations != ref.moved {
				return fmt.Errorf("op %d: Migrations = %d, reference %d", i, flat.Migrations, ref.moved)
			}
		}
		if op.checkAt || i == len(ops)-1 {
			if got, want := flat.MappedPages(), len(ref.frames); got != want {
				return fmt.Errorf("op %d: MappedPages = %d, reference %d", i, got, want)
			}
			gp, wp := flat.Pages(), ref.pages()
			if len(gp) != len(wp) {
				return fmt.Errorf("op %d: Pages len %d, reference %d", i, len(gp), len(wp))
			}
			for j := range gp {
				if gp[j] != wp[j] {
					return fmt.Errorf("op %d: Pages[%d] = %#x, reference %#x", i, j, gp[j], wp[j])
				}
			}
		}
	}
	return nil
}

// randomPTOps mixes translations, lookups and occasional compactions over a
// bounded page range, with a sprinkle of sparse high-VA pages (the chunked
// representation's worst case: single-page chunks far from the dense region).
func randomPTOps(seed uint64, n int, pageSpan uint64) []ptOp {
	rng := program.NewRNG(program.Mix(0xFA6E, seed))
	ops := make([]ptOp, 0, n)
	for i := 0; i < n; i++ {
		var op ptOp
		r := rng.Float64()
		vp := rng.Uint64() % pageSpan
		if rng.Float64() < 0.02 {
			// Sparse high pages: distinct 2 MB chunks at gigabyte offsets.
			vp = (1 << 30 >> vm.PageShift) + (rng.Uint64()%64)<<9
		}
		op.vaddr = vp<<vm.PageShift | (rng.Uint64() & (vm.PageSize - 1))
		switch {
		case r < 0.55:
			op.kind = ptTranslate
		case r < 0.98:
			op.kind = ptLookup
		default:
			op.kind = ptCompact
		}
		op.checkAt = rng.Float64() < 0.01
		ops = append(ops, op)
	}
	return ops
}

// stridedPTOps touches pages at a fixed stride — the chunk-boundary
// crossing pattern — then re-walks the same range with lookups.
func stridedPTOps(n int, stridePages uint64) []ptOp {
	ops := make([]ptOp, 0, 2*n)
	for i := 0; i < n; i++ {
		ops = append(ops, ptOp{vaddr: uint64(i) * stridePages << vm.PageShift, kind: ptTranslate})
	}
	for i := 0; i < n; i++ {
		ops = append(ops, ptOp{vaddr: uint64(i) * stridePages << vm.PageShift, kind: ptLookup})
	}
	return ops
}

// churnPTOps alternates growth bursts with compactions: the allocator-churn
// pattern that exercises Pages-cache invalidation and frame reassignment.
func churnPTOps(seed uint64, rounds, pagesPerRound int) []ptOp {
	rng := program.NewRNG(program.Mix(0xC4, seed))
	var ops []ptOp
	for r := 0; r < rounds; r++ {
		for i := 0; i < pagesPerRound; i++ {
			vp := uint64(r*pagesPerRound+i) + rng.Uint64()%8
			ops = append(ops, ptOp{vaddr: vp << vm.PageShift, kind: ptTranslate})
		}
		ops = append(ops, ptOp{kind: ptCompact, checkAt: true})
	}
	return ops
}

// pagetableChecks enumerates the flat-vs-map page-table differential battery.
func pagetableChecks() []namedCheck {
	return []namedCheck{
		{"oracle/pagetable/random", func() error {
			return checkPageTable(randomPTOps(1, 40000, 4096))
		}},
		{"oracle/pagetable/sparse", func() error {
			return checkPageTable(randomPTOps(2, 20000, 1<<22))
		}},
		{"oracle/pagetable/strided", func() error {
			// Stride of 512 pages lands every touch in its own chunk.
			return checkPageTable(stridedPTOps(4000, 512))
		}},
		{"oracle/pagetable/churn-compact", func() error {
			return checkPageTable(churnPTOps(3, 40, 200))
		}},
	}
}

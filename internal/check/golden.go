package check

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"lukewarm/internal/stats"
)

// GoldenTable is the serialized snapshot of one experiment table: the
// rendered cells plus the tolerance band future runs are held to. Numeric
// cells are compared within TolPct percent (relative, with a small absolute
// floor); non-numeric cells must match exactly.
type GoldenTable struct {
	Title  string     `json:"title"`
	TolPct float64    `json:"tol_pct"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// tableCells extracts a table's header and rows through its CSV rendering,
// the one machine-readable surface stats.Table exposes.
func tableCells(t *stats.Table) ([]string, [][]string, error) {
	var buf bytes.Buffer
	if err := t.WriteCSV(&buf); err != nil {
		return nil, nil, err
	}
	cr := csv.NewReader(&buf)
	cr.FieldsPerRecord = -1 // tables may have ragged rows (e.g. section breaks)
	all, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("check: re-reading %q as CSV: %w", t.Title, err)
	}
	if len(all) == 0 {
		return nil, nil, fmt.Errorf("check: table %q rendered empty", t.Title)
	}
	return all[0], all[1:], nil
}

// Snapshot captures t as a golden table with the given tolerance.
func Snapshot(t *stats.Table, tolPct float64) (GoldenTable, error) {
	header, rows, err := tableCells(t)
	if err != nil {
		return GoldenTable{}, err
	}
	return GoldenTable{Title: t.Title, TolPct: tolPct, Header: header, Rows: rows}, nil
}

// numericCell parses a cell as a number, accepting the unit suffixes the
// tables use ("1.53x" speedups, "12.3%" shares).
func numericCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// cellsMatch compares one golden cell against the current run's cell under
// the table's tolerance.
func (g GoldenTable) cellsMatch(want, got string) bool {
	if want == got {
		return true
	}
	wv, wok := numericCell(want)
	gv, gok := numericCell(got)
	if !wok || !gok {
		return false
	}
	scale := math.Max(math.Abs(wv), math.Abs(gv))
	return math.Abs(wv-gv) <= g.TolPct/100*scale+1e-9
}

// Compare checks the current rendering of t against the golden snapshot and
// describes the first divergence.
func (g GoldenTable) Compare(t *stats.Table) error {
	header, rows, err := tableCells(t)
	if err != nil {
		return err
	}
	if t.Title != g.Title {
		return fmt.Errorf("title %q, golden has %q", t.Title, g.Title)
	}
	if fmt.Sprint(header) != fmt.Sprint(g.Header) {
		return fmt.Errorf("header %v, golden has %v", header, g.Header)
	}
	if len(rows) != len(g.Rows) {
		return fmt.Errorf("%d rows, golden has %d", len(rows), len(g.Rows))
	}
	for i, want := range g.Rows {
		got := rows[i]
		if len(got) != len(want) {
			return fmt.Errorf("row %d: %d cells, golden has %d", i, len(got), len(want))
		}
		for j := range want {
			if !g.cellsMatch(want[j], got[j]) {
				return fmt.Errorf("row %d (%s), column %q: got %q, golden has %q (tolerance %.2f%%)",
					i, strings.Join(got, " | "), g.Header[j], got[j], want[j], g.TolPct)
			}
		}
	}
	return nil
}

// ReadGolden loads a golden snapshot from path.
func ReadGolden(path string) (GoldenTable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return GoldenTable{}, fmt.Errorf("check: reading golden (run `go test ./internal/check -run Golden -update` to create it): %w", err)
	}
	var g GoldenTable
	if err := json.Unmarshal(data, &g); err != nil {
		return GoldenTable{}, fmt.Errorf("check: parsing golden %s: %w", path, err)
	}
	return g, nil
}

// WriteGolden stores a golden snapshot at path, creating the directory.
func WriteGolden(path string, g GoldenTable) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("check: creating golden dir: %w", err)
	}
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return fmt.Errorf("check: encoding golden %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package check

import (
	"strings"
	"testing"

	"lukewarm/internal/mem"
)

// TestReferenceLRUBasics pins the reference model itself to hand-computed
// sequences, so the oracle cannot drift into agreeing with a shared bug.
func TestReferenceLRUBasics(t *testing.T) {
	c := newRefLRU(1, 2) // fully associative, 2 entries
	steps := []struct {
		key uint64
		hit bool
	}{
		{1, false}, {2, false}, {1, true}, // 1 touched: now MRU
		{3, false}, // evicts 2 (LRU), not 1
		{1, true},
		{2, false},
	}
	for i, s := range steps {
		if got := c.access(s.key); got != s.hit {
			t.Fatalf("step %d key %d: hit=%v, want %v", i, s.key, got, s.hit)
		}
	}
	if c.resident() != 2 {
		t.Fatalf("resident = %d, want 2", c.resident())
	}
}

// TestReferenceFIFOBasics pins the FIFO reference: insertion order evicts,
// re-access does not refresh.
func TestReferenceFIFOBasics(t *testing.T) {
	f := &refFIFO{cap: 2}
	steps := []struct {
		key uint64
		hit bool
	}{
		{1, false}, {2, false}, {1, true},
		{3, false}, // evicts 1: FIFO ignores the re-access above
		{1, false},
	}
	for i, s := range steps {
		if got := f.accessed(s.key); got != s.hit {
			t.Fatalf("step %d key %d: hit=%v, want %v", i, s.key, got, s.hit)
		}
	}
}

// TestOracles runs every differential-oracle check as a subtest.
func TestOracles(t *testing.T) {
	for _, c := range oracleChecks() {
		t.Run(strings.TrimPrefix(c.name, "oracle/"), func(t *testing.T) {
			if err := c.fn(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOracleCatchesPlantedBug makes sure a differential check actually
// fires: a cache whose geometry differs from the reference's must be caught
// within a short stream.
func TestOracleCatchesPlantedBug(t *testing.T) {
	// The DUT has 8 sets x 4 ways; drive the comparison helper with a
	// reference built for 4 sets x 8 ways by lying about the config. The
	// easiest way to lie is to compare two mem.Caches of different geometry
	// through the same stream and require divergence.
	a := mem.NewCache(mem.Config{Name: "a", SizeBytes: 2 << 10, Ways: 4, HitLatency: 1, MSHRs: 8})
	b := mem.NewCache(mem.Config{Name: "b", SizeBytes: 2 << 10, Ways: 8, HitLatency: 1, MSHRs: 8})
	// Six blocks all mapping to one set: a 4-way LRU thrashes on the cycle,
	// an 8-way holds all six.
	stream := make([]access, 64)
	for i := range stream {
		stream[i] = access{addr: uint64(i%6) * 4096}
	}
	diverged := false
	for i, ac := range stream {
		ha := a.DemandAccess(mem.Cycle(i), ac.addr, mem.Data, false)
		hb := b.DemandAccess(mem.Cycle(i), ac.addr, mem.Data, false)
		if ha != hb {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("caches of different geometry agreed on a conflict-heavy stream; the differential comparison has no power")
	}
}

package check

import (
	"fmt"
	"math"
	"reflect"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/faults"
	"lukewarm/internal/mem"
	"lukewarm/internal/serverless"
	"lukewarm/internal/topdown"
	"lukewarm/internal/workload"
)

// The metamorphic properties: invariants that relate *pairs* of runs (or a
// run to itself), so they hold regardless of the simulator's absolute
// numbers. Each one pins down a class of bug the differential oracles
// cannot see — cross-structure interactions, regime plumbing, conservation.

// propCacheMonotonic checks the LRU stack property: growing a cache by
// adding ways at a fixed set count can never produce more misses on the same
// stream. (The property is specific to adding ways — changing the set count
// re-hashes addresses and legitimately breaks monotonicity.)
func propCacheMonotonic() error {
	streams := map[string][]access{
		"random":   randomAccesses(11, 40000, 64, 0, 0.25),
		"hot-cold": hotColdAccesses(12, 40000, 8, 2048),
		"strided":  stridedAccesses(20000, 4<<10, 1<<20),
	}
	for name, stream := range streams {
		prev := uint64(math.MaxUint64)
		for _, ways := range []int{2, 4, 8, 16} {
			// 64 sets at every associativity: SizeBytes scales with ways.
			cfg := mem.Config{Name: "mono", SizeBytes: 64 * mem.LineSize * ways,
				Ways: ways, HitLatency: 1, MSHRs: 8}
			c := mem.NewCache(cfg)
			for i, a := range stream {
				c.DemandAccess(mem.Cycle(i), a.addr, mem.Data, a.write)
			}
			misses := c.Stats.DemandMisses[mem.Data]
			if misses > prev {
				return fmt.Errorf("%s stream: %d ways missed %d times, %d ways missed %d — larger cache missed more",
					name, ways/2, prev, ways, misses)
			}
			prev = misses
		}
	}
	return nil
}

// propZeroIAT checks that a zero-length inter-arrival gap is the warm steady
// state: RunWithIAT(…, 0) must be bit-identical to back-to-back reference
// invocations — no thrash, no decay, no eviction may fire for an empty gap.
func propZeroIAT(fn string, n int) error {
	w, err := workload.ByName(fn)
	if err != nil {
		return err
	}
	ref := serverless.New(serverless.Config{})
	refRes := ref.RunReference(ref.Deploy(w), n)
	iat := serverless.New(serverless.Config{})
	iatRes := iat.RunWithIAT(iat.Deploy(w), n, 0)
	if refRes != iatRes {
		return fmt.Errorf("%s: zero-IAT run diverged from reference: CPI %.4f vs %.4f (cycles %d vs %d)",
			fn, iatRes.CPI(), refRes.CPI(), iatRes.Cycles, refRes.Cycles)
	}
	return nil
}

// propJukeboxDisabled checks that a Jukebox with both record and replay
// disabled is bit-identical to no Jukebox at all: the hardware must be
// perfectly transparent when turned off, for every invocation of a lukewarm
// sequence.
func propJukeboxDisabled(fn string, n int) error {
	w, err := workload.ByName(fn)
	if err != nil {
		return err
	}
	run := func(jb *core.Config) ([]mem.Cycle, error) {
		srv := serverless.New(serverless.Config{Jukebox: jb})
		inst := srv.Deploy(w)
		out := make([]mem.Cycle, n)
		for i := range out {
			srv.FlushMicroarch()
			out[i] = srv.Invoke(inst).Cycles
		}
		return out, nil
	}
	base, err := run(nil)
	if err != nil {
		return err
	}
	off := core.DefaultConfig()
	off.RecordEnabled = false
	off.ReplayEnabled = false
	disabled, err := run(&off)
	if err != nil {
		return err
	}
	for i := range base {
		if base[i] != disabled[i] {
			return fmt.Errorf("%s invocation %d: disabled Jukebox took %d cycles, no Jukebox took %d — hardware not transparent when off",
				fn, i, disabled[i], base[i])
		}
	}
	return nil
}

// propTopdownConservation checks the Top-Down identity on real runs, in both
// regimes: the category cycles sum to the measured cycles, no bucket is
// negative, and CPI contributions sum to CPI.
func propTopdownConservation(fn string, n int) error {
	w, err := workload.ByName(fn)
	if err != nil {
		return err
	}
	srv := serverless.New(serverless.Config{})
	inst := srv.Deploy(w)
	for i := 0; i < 2*n; i++ {
		if i >= n {
			srv.FlushMicroarch() // second half runs lukewarm
		}
		res := srv.Invoke(inst)
		if err := faults.Audit(res); err != nil {
			return fmt.Errorf("%s invocation %d: %w", fn, i, err)
		}
		var cpiSum float64
		for c := topdown.Category(0); c < topdown.NumCategories; c++ {
			cpiSum += res.Stack.CPIOf(c)
		}
		if diff := math.Abs(cpiSum - res.Stack.CPI()); diff > 1e-9*res.Stack.CPI() {
			return fmt.Errorf("%s invocation %d: per-category CPIs sum to %.9f, CPI is %.9f",
				fn, i, cpiSum, res.Stack.CPI())
		}
	}
	return nil
}

// trafficConfig is the property suite's canonical overloaded traffic run:
// bursty arrivals, a tight queue bound and deadline (so shedding triggers),
// and a short keep-alive (so cold starts trigger).
func trafficConfig() serverless.TrafficConfig {
	cfg := serverless.DefaultTrafficConfig()
	cfg.MeanIATms = 2
	cfg.HeavyTail = true
	cfg.InvocationsPerInstance = 12
	cfg.KeepAliveMs = 1
	cfg.ColdStartMs = 5
	cfg.MaxQueue = 2
	cfg.ShedAfterMs = 4
	cfg.Seed = 7
	return cfg
}

// runTraffic deploys nFuncs suite functions on a fresh server and serves the
// canonical traffic.
func runTraffic(nFuncs int) (serverless.TrafficResult, int, error) {
	srv := serverless.New(serverless.Config{Cores: 2})
	suite := workload.Suite()[:nFuncs]
	for _, w := range suite {
		srv.Deploy(w)
	}
	res, err := srv.ServeTraffic(trafficConfig())
	return res, nFuncs * trafficConfig().InvocationsPerInstance, err
}

// propTrafficConservation checks arrival conservation on an overloaded
// ServeTraffic run: every offered invocation is either completed or shed
// (the engine runs to drain, so nothing stays in flight), the per-function
// breakdown sums to the fleet totals, and the faults-package traffic audit
// passes.
func propTrafficConservation() error {
	res, offered, err := runTraffic(3)
	if err != nil {
		return err
	}
	if res.Shed == 0 {
		return fmt.Errorf("overload valve never fired: config no longer exercises shedding")
	}
	if res.ColdStarts == 0 {
		return fmt.Errorf("keep-alive never evicted: config no longer exercises cold starts")
	}
	if got := res.Served + res.Shed; got != offered {
		return fmt.Errorf("offered %d invocations, accounted %d (%d served + %d shed)",
			offered, got, res.Served, res.Shed)
	}
	var served, shed, cold int
	for _, f := range res.PerFunction {
		served += f.Served
		shed += f.Shed
		cold += f.ColdStarts
	}
	if served != res.Served || shed != res.Shed || cold != res.ColdStarts {
		return fmt.Errorf("per-function breakdown (%d/%d/%d) disagrees with fleet totals (%d/%d/%d)",
			served, shed, cold, res.Served, res.Shed, res.ColdStarts)
	}
	return faults.AuditTraffic(res)
}

// propTrafficDeterminism checks that two fresh servers serving the identical
// traffic configuration produce the identical summary — the foundation the
// content-addressed result cache and the golden harness stand on.
func propTrafficDeterminism() error {
	a, _, err := runTraffic(2)
	if err != nil {
		return err
	}
	b, _, err := runTraffic(2)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(a.Summary(), b.Summary()) {
		return fmt.Errorf("identical traffic configs produced different summaries:\n%+v\n%+v",
			a.Summary(), b.Summary())
	}
	return nil
}

// propLukewarmNotFaster checks the paper's premise as an inequality: a full
// microarchitectural flush before an invocation can never make it faster
// than the warm reference run of the same instance.
func propLukewarmNotFaster(fn string, n int) error {
	w, err := workload.ByName(fn)
	if err != nil {
		return err
	}
	srv := serverless.New(serverless.Config{CPU: cpu.SkylakeConfig()})
	inst := srv.Deploy(w)
	warm := srv.RunReference(inst, n)
	srv.FlushMicroarch()
	luke := srv.Invoke(inst)
	if luke.Cycles < warm.Cycles {
		return fmt.Errorf("%s: lukewarm invocation took %d cycles, warm took %d — flush made it faster",
			fn, luke.Cycles, warm.Cycles)
	}
	return nil
}

// propertyChecks enumerates the metamorphic battery.
func propertyChecks() []namedCheck {
	return []namedCheck{
		{"property/cache-monotonic", propCacheMonotonic},
		{"property/zero-iat-warm-steady", func() error { return propZeroIAT("Auth-G", 3) }},
		{"property/jukebox-disabled-bit-identical", func() error { return propJukeboxDisabled("Email-P", 3) }},
		{"property/topdown-conservation", func() error { return propTopdownConservation("Auth-G", 2) }},
		{"property/traffic-conservation", propTrafficConservation},
		{"property/traffic-determinism", propTrafficDeterminism},
		{"property/lukewarm-not-faster", func() error { return propLukewarmNotFaster("Pay-N", 3) }},
	}
}

package check

import (
	"testing"

	"lukewarm/internal/vm"
)

// TestPageTableDifferential runs the flat-vs-map page-table battery: the
// chunked flat frame table in internal/vm must agree with the map-backed
// reference on every translation, lookup, page enumeration and compaction.
func TestPageTableDifferential(t *testing.T) {
	for _, c := range pagetableChecks() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := c.fn(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPageTableDivergenceDetected makes sure the reference model has teeth:
// models fed from skewed frame allocators must disagree on the physical
// translation (so the differential harness would report it), while agreeing
// on the purely virtual observables.
func TestPageTableDivergenceDetected(t *testing.T) {
	flat := vm.NewAddressSpace(vm.NewFrameAllocator(0))
	ref := newRefPageTable(vm.NewFrameAllocator(1))
	const vaddr = 0x1234
	if got, want := flat.Translate(vaddr), ref.translate(vaddr); got == want {
		t.Fatalf("skewed allocators translated identically (%#x); harness has no teeth", got)
	}
	if got, want := flat.MappedPages(), len(ref.frames); got != want {
		t.Fatalf("MappedPages %d != reference %d", got, want)
	}
}

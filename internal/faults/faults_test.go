package faults

import (
	"bytes"
	"testing"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/serverless"
	"lukewarm/internal/topdown"
	"lukewarm/internal/trace"
	"lukewarm/internal/workload"
)

func jbServer(t *testing.T, fn string) (*serverless.Server, *serverless.Instance) {
	t.Helper()
	jb := core.DefaultConfig()
	s := serverless.New(serverless.Config{Jukebox: &jb})
	w, err := workload.ByName(fn)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.Deploy(w)
}

// warmJB runs enough invocations that the instance has sealed replay
// metadata and a working replay loop.
func warmJB(s *serverless.Server, inst *serverless.Instance) {
	for i := 0; i < 3; i++ {
		s.FlushMicroarch()
		s.Invoke(inst)
	}
}

func TestMetadataCorruptionDegradesToRecordOnly(t *testing.T) {
	for _, k := range []Kind{MetadataCorrupt, MetadataTruncate, MetadataZero} {
		s, inst := jbServer(t, "Email-P")
		warmJB(s, inst)
		plan := NewPlan(42, k)

		before := inst.Jukebox.Stats.DegradedReplays
		plan.CorruptMetadata(inst.Jukebox)
		if plan.Injections[k] == 0 {
			t.Fatalf("%v: nothing injected", k)
		}
		s.FlushMicroarch()
		r := s.Invoke(inst)
		if inst.Jukebox.Stats.DegradedReplays != before+1 {
			t.Errorf("%v: corruption not detected (degraded %d -> %d)",
				k, before, inst.Jukebox.Stats.DegradedReplays)
		}
		if err := Audit(r); err != nil {
			t.Errorf("%v: audit after degraded replay: %v", k, err)
		}
		// The fallback recording must restore replay on the next invocation.
		s.FlushMicroarch()
		s.Invoke(inst)
		if inst.Jukebox.Stats.ReplayPrefetches == 0 {
			t.Errorf("%v: replay did not recover after record-only fallback", k)
		}
	}
}

func TestDegradedReplayNotWorseThanBaseline(t *testing.T) {
	// The acceptance bound: with corrupting faults active, Jukebox must not
	// run materially worse than no Jukebox at all (garbage is skipped, and
	// the only residual costs are metadata DRAM traffic and the checksum).
	w, err := workload.ByName("Email-P")
	if err != nil {
		t.Fatal(err)
	}
	base := serverless.New(serverless.Config{})
	bi := base.Deploy(w)
	baseRes := base.RunLukewarm(bi, 4)

	s, inst := jbServer(t, "Email-P")
	plan := NewPlan(7, MetadataCorrupt)
	var last cpu.RunResult
	for i := 0; i < 4; i++ {
		plan.CorruptMetadata(inst.Jukebox)
		s.FlushMicroarch()
		last = s.Invoke(inst)
	}
	if ratio := last.CPI() / baseRes.CPI(); ratio > 1.02 {
		t.Errorf("corrupted Jukebox CPI %.4f is %.1f%% above baseline %.4f (bound 2%%)",
			last.CPI(), (ratio-1)*100, baseRes.CPI())
	}
}

func TestReplayCompactionSurvives(t *testing.T) {
	s, inst := jbServer(t, "Email-P")
	warmJB(s, inst)
	plan := NewPlan(3, ReplayCompaction)
	plan.ArmReplayCompaction(inst.Jukebox, inst.AS)

	migBefore := inst.AS.Migrations
	s.FlushMicroarch()
	r := s.Invoke(inst)
	if plan.Injections[ReplayCompaction] != 1 {
		t.Fatal("compaction hook did not fire")
	}
	if inst.AS.Migrations == migBefore {
		t.Fatal("no pages migrated")
	}
	// Virtual-address metadata: the replay continues across the migration
	// and the invocation completes with a sane result.
	if inst.Jukebox.Stats.DegradedReplays != 0 {
		t.Error("compaction wrongly flagged as corruption")
	}
	if err := Audit(r); err != nil {
		t.Errorf("audit after mid-replay compaction: %v", err)
	}
	inst.Jukebox.ReplayHook = nil
}

func TestMidRecordEviction(t *testing.T) {
	s, inst := jbServer(t, "Email-P")
	warmJB(s, inst)
	plan := NewPlan(9, RecordEviction)
	plan.ArmMidRecordEviction(inst)

	s.FlushMicroarch()
	r := s.Invoke(inst)
	if plan.Injections[RecordEviction] != 1 {
		t.Fatal("eviction hook did not fire")
	}
	if err := Audit(r); err != nil {
		t.Errorf("audit after mid-record eviction: %v", err)
	}
	inst.Jukebox.RecordHook = nil
	inst.Evict()
	// Post-eviction: fresh address space, no metadata, next invocation runs
	// record-only and re-seeds.
	if inst.Jukebox.ReplayBuffer().Len() != 0 {
		t.Error("eviction left replay metadata behind")
	}
	s.FlushMicroarch()
	s.Invoke(inst)
	s.FlushMicroarch()
	s.Invoke(inst)
	if inst.Jukebox.Stats.ReplayPrefetches == 0 {
		t.Error("replay did not re-seed after eviction")
	}
}

func TestDRAMSpikeSlowsRuns(t *testing.T) {
	w, err := workload.ByName("Email-P")
	if err != nil {
		t.Fatal(err)
	}
	clean := serverless.New(serverless.Config{})
	ci := clean.Deploy(w)
	cleanRes := clean.RunLukewarm(ci, 3)

	spiked := serverless.New(serverless.Config{})
	si := spiked.Deploy(w)
	spiked.RunLukewarm(si, 2)
	plan := NewPlan(5, DRAMSpike)
	plan.DisturbDRAM(spiked.Core.Hier.DRAM)
	spiked.FlushMicroarch()
	r := spiked.Invoke(si)
	if plan.Injections[DRAMSpike] != 1 {
		t.Fatal("no disturbance injected")
	}
	if r.CPI() <= cleanRes.CPI() {
		t.Errorf("DRAM spike did not slow the run: %.4f vs clean %.4f", r.CPI(), cleanRes.CPI())
	}
	if err := Audit(r); err != nil {
		t.Errorf("audit under DRAM spike: %v", err)
	}
}

func TestDRAMSpikeDeterministic(t *testing.T) {
	run := func() float64 {
		s := serverless.New(serverless.Config{})
		w, _ := workload.ByName("Auth-G")
		inst := s.Deploy(w)
		s.RunLukewarm(inst, 1)
		plan := NewPlan(11, DRAMSpike)
		plan.DisturbDRAM(s.Core.Hier.DRAM)
		s.FlushMicroarch()
		return s.Invoke(inst).CPI()
	}
	if run() != run() {
		t.Error("faulted run not deterministic")
	}
}

func TestTraceCorruptionNeverPanics(t *testing.T) {
	w, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Capture(w.Program, 0, &buf); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 32; seed++ {
		plan := NewPlan(seed, TraceCorrupt)
		data := plan.CorruptTrace(buf.Bytes())
		// Either a typed error or a clean decode of canonical addresses —
		// never a panic (the test binary would die).
		instrs, err := trace.Read(bytes.NewReader(data), 0)
		if err != nil {
			continue
		}
		for _, in := range instrs {
			if in.VAddr >= 1<<48 {
				t.Fatalf("seed %d: corrupt stream decoded non-canonical vaddr %#x", seed, in.VAddr)
			}
		}
	}
}

func TestBurstTrafficShedsGracefully(t *testing.T) {
	s := serverless.New(serverless.Config{})
	for _, n := range []string{"Auth-G", "Email-P", "Pay-N"} {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		s.Deploy(w)
	}
	plan := NewPlan(13, TrafficBurst)
	cfg := serverless.DefaultTrafficConfig()
	cfg.MeanIATms = 30
	cfg.InvocationsPerInstance = 5
	cfg = plan.BurstTraffic(cfg)
	res, err := s.ServeTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Error("burst did not shed any load")
	}
	if res.Served+res.Shed != 3*5 {
		t.Errorf("served %d + shed %d != offered %d", res.Served, res.Shed, 15)
	}
	if err := AuditTraffic(res); err != nil {
		t.Errorf("traffic audit: %v", err)
	}
}

func TestIdenticalSeededRunsAreByteIdentical(t *testing.T) {
	// Determinism regression across the fault plan: two identical seeded
	// runs must render identical results, with and without faults.
	run := func(faulted bool) string {
		s, inst := jbServer(t, "Email-P")
		warmJB(s, inst)
		var plan *Plan
		if faulted {
			plan = NewPlan(21, MetadataCorrupt, DRAMSpike)
		}
		var out bytes.Buffer
		for i := 0; i < 3; i++ {
			if plan != nil {
				plan.CorruptMetadata(inst.Jukebox)
				plan.DisturbDRAM(s.Core.Hier.DRAM)
			}
			s.FlushMicroarch()
			r := s.Invoke(inst)
			out.WriteString(r.Stack.String())
		}
		return out.String()
	}
	if run(false) != run(false) {
		t.Error("clean runs differ")
	}
	if run(true) != run(true) {
		t.Error("faulted runs differ")
	}
	if run(true) == run(false) {
		t.Error("fault plan had no observable effect")
	}
}

func TestAuditCatchesViolations(t *testing.T) {
	good := cpu.RunResult{Instrs: 100, Cycles: 200}
	good.Stack.AddInstrs(100)
	good.Stack.Add(topdown.Retiring, 150)
	good.Stack.Add(topdown.FetchLatency, 50)
	if err := Audit(good); err != nil {
		t.Errorf("consistent result flagged: %v", err)
	}

	bad := good
	bad.Cycles = 500 // stack no longer sums to total
	if Audit(bad) == nil {
		t.Error("cycle mismatch not caught")
	}
	neg := good
	neg.Stack.Cycles[topdown.Retiring] = -150
	if Audit(neg) == nil {
		t.Error("negative category not caught")
	}
	mism := good
	mism.Instrs = 99
	if Audit(mism) == nil {
		t.Error("instruction mismatch not caught")
	}

	var cs mem.CacheStats
	cs.DemandAccesses[mem.Instr] = 10
	cs.DemandHits[mem.Instr] = 6
	cs.DemandMisses[mem.Instr] = 4
	if err := AuditCache("L1I", cs); err != nil {
		t.Errorf("consistent cache flagged: %v", err)
	}
	cs.DemandHits[mem.Instr] = 7
	if AuditCache("L1I", cs) == nil {
		t.Error("demand mismatch not caught")
	}

	bt := serverless.TrafficResult{Served: 2, ColdStarts: 5}
	if AuditTraffic(bt) == nil {
		t.Error("cold starts > served not caught")
	}
}

// TestAuditTrafficConservation exercises the dispatch-conservation checks:
// a real run balances, and any miscounted ledger is caught.
func TestAuditTrafficConservation(t *testing.T) {
	s := serverless.New(serverless.Config{})
	for _, fn := range []string{"Auth-G", "Email-P"} {
		w, err := workload.ByName(fn)
		if err != nil {
			t.Fatal(err)
		}
		s.Deploy(w)
	}
	cfg := serverless.DefaultTrafficConfig()
	cfg.InvocationsPerInstance = 3
	cfg.MeanIATms = 50
	res, err := s.ServeTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditTraffic(res); err != nil {
		t.Errorf("clean run flagged: %v", err)
	}
	if res.Offered != res.Served+res.Shed {
		t.Errorf("offered %d != served %d + shed %d", res.Offered, res.Served, res.Shed)
	}

	leak := res
	leak.Offered++ // one injected invocation vanished
	if AuditTraffic(leak) == nil {
		t.Error("lost invocation not caught")
	}
	double := res
	double.Served++ // one invocation counted twice
	if AuditTraffic(double) == nil {
		t.Error("double-counted invocation not caught")
	}
	fail := res
	fail.Failed = -1
	if AuditTraffic(fail) == nil {
		t.Error("negative failed count not caught")
	}
	if len(res.PerFunction) > 0 {
		fn := res
		fn.PerFunction = append([]serverless.FuncTraffic(nil), res.PerFunction...)
		fn.PerFunction[0].Failed++ // per-function ledger out of balance
		if AuditTraffic(fn) == nil {
			t.Error("per-function failed imbalance not caught")
		}
	}
}

func TestAuditFleetInvariants(t *testing.T) {
	good := FleetCounters{
		Offered: 10, Served: 7, Shed: 2, Failed: 1,
		ShedLowPriority: 1, TierRejected: 1,
		DeadlineFailed: 0, RetriesExhausted: 1,
		FailedAttempts: 3, Retries: 2,
		NodeOffered: 9, NodeServed: 8, NodeFailed: 1,
		Hedges: 2, WastedHedges: 1, HedgeRescues: 1,
		InstanceCrashes: 1,
	}
	if err := AuditFleet(good); err != nil {
		t.Errorf("balanced ledger flagged: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*FleetCounters)
	}{
		{"lost request", func(c *FleetCounters) { c.Offered++ }},
		{"shed breakdown", func(c *FleetCounters) { c.TierRejected++ }},
		{"failure breakdown", func(c *FleetCounters) { c.DeadlineFailed++ }},
		{"double-counted retry", func(c *FleetCounters) { c.Retries++ }},
		{"node conservation", func(c *FleetCounters) { c.NodeServed++; c.NodeOffered++ }},
		{"phantom node shed", func(c *FleetCounters) { c.NodeShed++; c.NodeOffered++ }},
		{"served while down", func(c *FleetCounters) { c.ServedWhileDown = 1 }},
		{"wasted exceeds hedges", func(c *FleetCounters) { c.WastedHedges = 5 }},
		{"negative counter", func(c *FleetCounters) { c.Served = -1; c.Failed = 9 }},
	}
	for _, tc := range cases {
		c := good
		tc.mutate(&c)
		if AuditFleet(c) == nil {
			t.Errorf("%s not caught", tc.name)
		}
	}
}

// TestAttemptFailsKeyed pins the common-random-numbers contract: draws are
// order-independent, nested across probabilities, and seed-keyed.
func TestAttemptFailsKeyed(t *testing.T) {
	strikes := func(prob float64, keys []uint64) map[uint64]bool {
		p := NewPlan(42, DispatchFlake)
		out := map[uint64]bool{}
		for _, k := range keys {
			if p.AttemptFails(DispatchFlake, k, prob) {
				out[k] = true
			}
		}
		return out
	}
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(i) * 977
	}
	lo, hi := strikes(0.1, keys), strikes(0.4, keys)
	if len(lo) == 0 || len(hi) == 0 {
		t.Fatal("no strikes at either probability")
	}
	if len(lo) >= len(hi) {
		t.Errorf("strike counts not increasing: %d at 0.1, %d at 0.4", len(lo), len(hi))
	}
	for k := range lo {
		if !hi[k] {
			t.Fatalf("key %d struck at 0.1 but spared at 0.4: draws not nested", k)
		}
	}
	// Reversed call order must strike the same set.
	rev := make([]uint64, len(keys))
	for i, k := range keys {
		rev[len(keys)-1-i] = k
	}
	back := strikes(0.1, rev)
	if len(back) != len(lo) {
		t.Error("call order changed the struck set")
	}
	for k := range lo {
		if !back[k] {
			t.Error("call order changed the struck set membership")
		}
	}
	// Unarmed kinds and zero probability never fire.
	p := NewPlan(42, DispatchFlake)
	if p.AttemptFails(InstanceCrash, 1, 1.0) {
		t.Error("unarmed kind fired")
	}
	if p.AttemptFails(DispatchFlake, 1, 0) {
		t.Error("zero probability fired")
	}
	n := NewPlan(42, DispatchFlake)
	hits := 0
	for _, k := range keys {
		if n.AttemptFails(DispatchFlake, k, 0.25) {
			hits++
		}
	}
	if int(n.Injections[DispatchFlake]) != hits {
		t.Errorf("injection counter %d != observed strikes %d", n.Injections[DispatchFlake], hits)
	}
}

func TestNodeCrashGapDeterministic(t *testing.T) {
	draw := func() []float64 {
		p := NewPlan(5, NodeCrash)
		var gs []float64
		for i := 0; i < 8; i++ {
			gs = append(gs, p.NodeCrashGapMs(1000))
		}
		return gs
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical plans: %g vs %g", i, a[i], b[i])
		}
		if a[i] < 1 {
			t.Errorf("gap %g below the 1 ms floor", a[i])
		}
	}
	unarmed := NewPlan(5, DispatchFlake)
	if g := unarmed.NodeCrashGapMs(1000); g != 0 {
		t.Errorf("unarmed plan drew a crash gap %g", g)
	}
}

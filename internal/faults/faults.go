// Package faults is a deterministic, seeded fault-injection harness for the
// simulation stack. It perturbs the simulated system at well-defined seams —
// Jukebox metadata in DRAM, page migration mid-replay, instance eviction
// mid-record, DRAM interference, trace streams, traffic overload — and the
// companion auditor (audit.go) checks that results still satisfy their
// conservation invariants afterwards.
//
// Everything is driven by the library's own xorshift streams, never by
// wall-clock or global randomness: the same seed injects the same faults at
// the same points, so fault runs are as reproducible as clean ones.
package faults

import (
	"math"

	"lukewarm/internal/core"
	"lukewarm/internal/mem"
	"lukewarm/internal/program"
	"lukewarm/internal/serverless"
	"lukewarm/internal/vm"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

// The fault matrix. Each kind targets one seam of the stack.
const (
	// MetadataCorrupt flips bits in the sealed Jukebox replay metadata.
	MetadataCorrupt Kind = iota
	// MetadataTruncate discards the tail of the replay metadata.
	MetadataTruncate
	// MetadataZero zeroes the replay metadata wholesale.
	MetadataZero
	// ReplayCompaction migrates every page of the instance's address space
	// in the middle of a metadata replay.
	ReplayCompaction
	// RecordEviction evicts the instance (address space and metadata
	// reclaimed) partway through recording an invocation.
	RecordEviction
	// DRAMSpike injects a latency spike plus bandwidth throttling into the
	// memory controller.
	DRAMSpike
	// TraceCorrupt flips bytes in a serialized trace stream.
	TraceCorrupt
	// TrafficBurst turns an arrival process into a saturating burst.
	TrafficBurst
	// NodeCrash takes a whole simulated node down: every resident instance's
	// warm state and Jukebox metadata is lost, in-flight work dies, and the
	// node stays dark for a recovery window (cluster fleet simulations).
	NodeCrash
	// InstanceCrash kills one instance mid-invocation: the cycles are spent,
	// the response is lost, and the instance's next dispatch is cold.
	InstanceCrash
	// DispatchFlake is a transient front-end dispatch failure: the request
	// never reaches the node and is eligible for retry.
	DispatchFlake

	numKinds
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case MetadataCorrupt:
		return "metadata-corrupt"
	case MetadataTruncate:
		return "metadata-truncate"
	case MetadataZero:
		return "metadata-zero"
	case ReplayCompaction:
		return "replay-compaction"
	case RecordEviction:
		return "record-eviction"
	case DRAMSpike:
		return "dram-spike"
	case TraceCorrupt:
		return "trace-corrupt"
	case TrafficBurst:
		return "traffic-burst"
	case NodeCrash:
		return "node-crash"
	case InstanceCrash:
		return "instance-crash"
	case DispatchFlake:
		return "dispatch-flake"
	default:
		return "unknown-fault"
	}
}

// Kinds lists every fault kind in matrix order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Plan is one seeded fault campaign: a set of armed fault kinds plus the
// RNG stream that determinizes where each injection lands. A Plan is applied
// manually at the seams (CorruptMetadata between invocations, DisturbDRAM
// before a run, ...); the Injections counters record what actually fired.
type Plan struct {
	rng   *program.RNG
	seed  uint64
	armed [numKinds]bool
	// Injections counts fired injections per kind.
	Injections [numKinds]uint64
}

// NewPlan builds a plan with the given kinds armed, seeded from the
// library's xorshift stream family (never wall-clock).
func NewPlan(seed uint64, kinds ...Kind) *Plan {
	p := &Plan{rng: program.NewRNG(program.Mix(0xFA017, seed)), seed: seed}
	for _, k := range kinds {
		if k < numKinds {
			p.armed[k] = true
		}
	}
	return p
}

// Armed reports whether kind k is armed.
func (p *Plan) Armed(k Kind) bool { return k < numKinds && p.armed[k] }

// TotalInjections sums the fired-injection counters.
func (p *Plan) TotalInjections() uint64 {
	var t uint64
	for _, n := range p.Injections {
		t += n
	}
	return t
}

// CorruptMetadata applies the armed metadata faults to jb's replay buffer —
// the in-DRAM state the next invocation will prefetch from. Corruption goes
// through the buffer's mutators, which deliberately leave the seal stale, so
// a correctly degrading Jukebox detects it at InvocationStart and falls back
// to record-only.
func (p *Plan) CorruptMetadata(jb *core.Jukebox) {
	buf := jb.ReplayBuffer()
	if buf.Len() == 0 {
		return
	}
	if p.armed[MetadataCorrupt] {
		flips := 1 + int(p.rng.Uint64()%4)
		for i := 0; i < flips; i++ {
			buf.CorruptFlipBit(int(p.rng.Uint64()%uint64(buf.Len())), int(p.rng.Uint64()%3), int(p.rng.Uint64()%64))
		}
		p.Injections[MetadataCorrupt]++
	}
	if p.armed[MetadataTruncate] {
		buf.CorruptTruncate(buf.Len() / 2)
		p.Injections[MetadataTruncate]++
	}
	if p.armed[MetadataZero] {
		buf.CorruptZero()
		p.Injections[MetadataZero]++
	}
}

// ArmReplayCompaction hooks jb so that, partway through the next metadata
// replay, the OS migrates every page of as (vm.Compact). Because Jukebox
// records virtual addresses and translates through the MMU per entry, the
// replay must survive this: prefetches issued before the migration land in
// stale frames (wasted but harmless), later entries translate to the new
// frames. The hook disarms itself after firing once.
func (p *Plan) ArmReplayCompaction(jb *core.Jukebox, as *vm.AddressSpace) {
	if !p.armed[ReplayCompaction] {
		return
	}
	fired := false
	jb.ReplayHook = func(entry int) {
		if fired {
			return
		}
		// Fire at a deterministic midpoint entry so part of the replay sees
		// pre-migration frames and part post-migration.
		if target := jb.ReplayBuffer().Len() / 2; entry >= target {
			as.Compact()
			p.Injections[ReplayCompaction]++
			fired = true
		}
	}
}

// ArmMidRecordEviction hooks the instance's Jukebox so that once the
// recording of the current invocation reaches a seeded entry count, the OS
// evicts the instance: address space reclaimed, metadata dropped. The next
// invocation faults everything back in and records from scratch. Fires once.
func (p *Plan) ArmMidRecordEviction(inst *serverless.Instance) {
	if !p.armed[RecordEviction] || inst.Jukebox == nil {
		return
	}
	target := 4 + int(p.rng.Uint64()%8)
	fired := false
	jb := inst.Jukebox
	jb.RecordHook = func(entries int) {
		if fired || entries < target {
			return
		}
		fired = true
		p.Injections[RecordEviction]++
		// Drop metadata only: the address space swap is done by the caller
		// between invocations (swapping page tables under a running core is
		// not something even a hostile OS does).
		jb.Abandon()
	}
}

// DisturbDRAM arms a seeded interference episode on the memory controller:
// 100-300 extra cycles of latency and 2-4x channel occupancy for the next
// 2000-4000 accesses.
func (p *Plan) DisturbDRAM(d *mem.DRAM) {
	if !p.armed[DRAMSpike] {
		return
	}
	extra := mem.Cycle(100 + p.rng.Uint64()%201)
	mult := 2 + int(p.rng.Uint64()%3)
	n := 2000 + p.rng.Uint64()%2001
	d.InjectDisturbance(extra, mult, n)
	p.Injections[DRAMSpike]++
}

// CorruptTrace returns a copy of a serialized trace stream with 1-4 bytes
// flipped after the 4-byte header (flipping the magic is the boring failure;
// the decoder's typed-error paths live past it). Streams too short to have a
// body are returned unchanged.
func (p *Plan) CorruptTrace(data []byte) []byte {
	out := append([]byte(nil), data...)
	if !p.armed[TraceCorrupt] || len(out) <= 5 {
		return out
	}
	flips := 1 + int(p.rng.Uint64()%4)
	for i := 0; i < flips; i++ {
		idx := 4 + int(p.rng.Uint64()%uint64(len(out)-4))
		out[idx] ^= byte(1 << (p.rng.Uint64() % 8))
	}
	p.Injections[TraceCorrupt]++
	return out
}

// AttemptFails decides, by a keyed Bernoulli draw, whether fault kind k
// strikes the attempt identified by key, with probability prob. The draw is
// a pure function of (plan seed, kind, key) — never of call order or of prob
// itself — which gives the campaign the common-random-numbers property: the
// set of struck attempts at probability p is a subset of the set at any
// p' > p. Availability therefore degrades monotonically as failure rates
// rise, which the cluster chaos tests assert. Counts an injection when it
// fires. Unarmed kinds and non-positive probabilities never fire.
func (p *Plan) AttemptFails(k Kind, key uint64, prob float64) bool {
	if k >= numKinds || !p.armed[k] || prob <= 0 {
		return false
	}
	u := program.NewRNG(program.Mix(program.Mix(p.seed, 0x51AB+uint64(k)), key)).Float64()
	if u >= prob {
		return false
	}
	p.Injections[k]++
	return true
}

// NodeCrashGapMs draws the gap to a node's next crash from an exponential
// distribution with mean mtbfMs, clamped to at least 1 ms. Draws come from
// the plan's own stream in call order, so a fixed call sequence (node
// initialization order, then crash-event order) is fully determined by the
// seed. Returns 0 — never crash — when NodeCrash is unarmed or mtbfMs is
// not positive.
func (p *Plan) NodeCrashGapMs(mtbfMs float64) float64 {
	if !p.armed[NodeCrash] || mtbfMs <= 0 {
		return 0
	}
	g := -math.Log(1-p.rng.Float64()) * mtbfMs
	if g < 1 {
		g = 1
	}
	return g
}

// RecordInjection counts one fired injection of kind k for injections whose
// firing decision lives outside the plan (node-crash events scheduled from
// NodeCrashGapMs draws).
func (p *Plan) RecordInjection(k Kind) {
	if k < numKinds {
		p.Injections[k]++
	}
}

// BurstTraffic transforms an arrival process into a saturating burst:
// inter-arrival times collapse to 1% of the configured mean (at least 10 µs)
// and, so the overload degrades gracefully, deadline shedding is switched on
// if the caller left both valves off. The deadline valve is the one that
// works at any instance count (the arrival heap holds at most one pending
// arrival per instance, so a queue bound above the instance count never
// binds).
func (p *Plan) BurstTraffic(cfg serverless.TrafficConfig) serverless.TrafficConfig {
	if !p.armed[TrafficBurst] {
		return cfg
	}
	cfg.MeanIATms /= 100
	if cfg.MeanIATms < 0.01 {
		cfg.MeanIATms = 0.01
	}
	cfg.HeavyTail = true
	//lukewarm:floateq 0 is the disabled-valve config sentinel, an exact configured value, not arithmetic
	if cfg.MaxQueue == 0 && cfg.ShedAfterMs == 0 {
		cfg.ShedAfterMs = 1.0
	}
	p.Injections[TrafficBurst]++
	return cfg
}

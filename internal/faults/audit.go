package faults

import (
	"fmt"
	"math"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/serverless"
	"lukewarm/internal/topdown"
)

// The invariants below are conservation properties: they must hold for any
// run, faulted or not. A violation means the simulator itself miscounted —
// the one failure mode graceful degradation cannot excuse.

// Audit checks one invocation result's conservation invariants:
//
//   - the Top-Down stack's instruction count matches the run's,
//   - the stack's cycle components sum to the run's total cycles
//     (within float tolerance),
//   - no category carries negative cycles.
func Audit(r cpu.RunResult) error {
	if r.Stack.Instrs != r.Instrs {
		return fmt.Errorf("faults: audit: stack instrs %d != run instrs %d", r.Stack.Instrs, r.Instrs)
	}
	total := r.Stack.Total()
	if total < 0 {
		return fmt.Errorf("faults: audit: negative stack total %g", total)
	}
	// Tolerance: accumulated float error across per-instruction charges.
	tol := 1e-6*float64(r.Cycles) + 1.0
	if diff := math.Abs(total - float64(r.Cycles)); diff > tol {
		return fmt.Errorf("faults: audit: stack sums to %.3f cycles, run reports %d (diff %.3f > tol %.3f)",
			total, r.Cycles, diff, tol)
	}
	for c := topdown.Category(0); c < topdown.NumCategories; c++ {
		if r.Stack.Cycles[c] < 0 {
			return fmt.Errorf("faults: audit: category %v has negative cycles %g", c, r.Stack.Cycles[c])
		}
	}
	return nil
}

// AuditCache checks one cache's counter conservation: per traffic kind,
// hits + misses == accesses, and prefetch coverage accounting never exceeds
// the fills that back it.
func AuditCache(name string, s mem.CacheStats) error {
	for k := range s.DemandAccesses {
		if s.DemandHits[k]+s.DemandMisses[k] != s.DemandAccesses[k] {
			return fmt.Errorf("faults: audit %s kind %d: hits %d + misses %d != accesses %d",
				name, k, s.DemandHits[k], s.DemandMisses[k], s.DemandAccesses[k])
		}
	}
	for k := range s.PrefetchFills {
		if s.PrefetchUsed[k] > s.PrefetchFills[k] {
			return fmt.Errorf("faults: audit %s kind %d: prefetch used %d > fills %d",
				name, k, s.PrefetchUsed[k], s.PrefetchFills[k])
		}
	}
	return nil
}

// AuditJukebox checks a Jukebox's counters for self-consistency.
func AuditJukebox(s core.Stats) error {
	if s.LastRecordBytes < 0 {
		return fmt.Errorf("faults: audit jukebox: negative record bytes %d", s.LastRecordBytes)
	}
	if s.ReplayPrefetches > 0 && s.ReplayEntries == 0 {
		return fmt.Errorf("faults: audit jukebox: %d prefetches from zero replay entries", s.ReplayPrefetches)
	}
	return nil
}

// AuditTraffic checks a traffic run's aggregate invariants.
func AuditTraffic(r serverless.TrafficResult) error {
	switch {
	case r.Served < 0 || r.Shed < 0 || r.ColdStarts < 0:
		return fmt.Errorf("faults: audit traffic: negative counters (served %d, shed %d, cold %d)",
			r.Served, r.Shed, r.ColdStarts)
	case r.ColdStarts > r.Served:
		return fmt.Errorf("faults: audit traffic: cold starts %d exceed served %d", r.ColdStarts, r.Served)
	case r.PrewarmHits < 0 || r.PlacementMigrations < 0 || r.JukeboxRebinds < 0:
		return fmt.Errorf("faults: audit traffic: negative scheduling counters (prewarm %d, migrations %d, rebinds %d)",
			r.PrewarmHits, r.PlacementMigrations, r.JukeboxRebinds)
	case r.PlacementMigrations > r.Served || r.JukeboxRebinds > r.Served:
		return fmt.Errorf("faults: audit traffic: migrations %d / rebinds %d exceed served %d",
			r.PlacementMigrations, r.JukeboxRebinds, r.Served)
	case r.ResidentMs < 0:
		return fmt.Errorf("faults: audit traffic: negative resident time %g ms", r.ResidentMs)
	case r.BusyFraction < 0 || r.BusyFraction > 1.000001:
		return fmt.Errorf("faults: audit traffic: busy fraction %g outside [0, 1]", r.BusyFraction)
	case r.SimulatedMs < 0:
		return fmt.Errorf("faults: audit traffic: negative simulated span %g ms", r.SimulatedMs)
	case r.CPI.N() != r.Served:
		return fmt.Errorf("faults: audit traffic: %d CPI samples for %d served", r.CPI.N(), r.Served)
	}
	// The per-function breakdown must conserve the fleet-wide counters.
	var served, cold, shed int
	for _, f := range r.PerFunction {
		if f.Served < 0 || f.ColdStarts < 0 || f.Shed < 0 {
			return fmt.Errorf("faults: audit traffic: %s has negative counters (%d/%d/%d)",
				f.Name, f.Served, f.ColdStarts, f.Shed)
		}
		served += f.Served
		cold += f.ColdStarts
		shed += f.Shed
	}
	if len(r.PerFunction) > 0 && (served != r.Served || cold != r.ColdStarts || shed != r.Shed) {
		return fmt.Errorf("faults: audit traffic: per-function sums %d/%d/%d != fleet %d/%d/%d",
			served, cold, shed, r.Served, r.ColdStarts, r.Shed)
	}
	return nil
}

package faults

import (
	"fmt"
	"math"

	"lukewarm/internal/core"
	"lukewarm/internal/cpu"
	"lukewarm/internal/mem"
	"lukewarm/internal/predict"
	"lukewarm/internal/reap"
	"lukewarm/internal/serverless"
	"lukewarm/internal/topdown"
	"lukewarm/internal/vm"
)

// The invariants below are conservation properties: they must hold for any
// run, faulted or not. A violation means the simulator itself miscounted —
// the one failure mode graceful degradation cannot excuse.

// Audit checks one invocation result's conservation invariants:
//
//   - the Top-Down stack's instruction count matches the run's,
//   - the stack's cycle components sum to the run's total cycles
//     (within float tolerance),
//   - no category carries negative cycles.
func Audit(r cpu.RunResult) error {
	if r.Stack.Instrs != r.Instrs {
		return fmt.Errorf("faults: audit: stack instrs %d != run instrs %d", r.Stack.Instrs, r.Instrs)
	}
	total := r.Stack.Total()
	if total < 0 {
		return fmt.Errorf("faults: audit: negative stack total %g", total)
	}
	// Tolerance: accumulated float error across per-instruction charges.
	tol := 1e-6*float64(r.Cycles) + 1.0
	if diff := math.Abs(total - float64(r.Cycles)); diff > tol {
		return fmt.Errorf("faults: audit: stack sums to %.3f cycles, run reports %d (diff %.3f > tol %.3f)",
			total, r.Cycles, diff, tol)
	}
	for c := topdown.Category(0); c < topdown.NumCategories; c++ {
		if r.Stack.Cycles[c] < 0 {
			return fmt.Errorf("faults: audit: category %v has negative cycles %g", c, r.Stack.Cycles[c])
		}
	}
	return nil
}

// AuditCache checks one cache's counter conservation: per traffic kind,
// hits + misses == accesses, and prefetch coverage accounting never exceeds
// the fills that back it.
func AuditCache(name string, s mem.CacheStats) error {
	for k := range s.DemandAccesses {
		if s.DemandHits[k]+s.DemandMisses[k] != s.DemandAccesses[k] {
			return fmt.Errorf("faults: audit %s kind %d: hits %d + misses %d != accesses %d",
				name, k, s.DemandHits[k], s.DemandMisses[k], s.DemandAccesses[k])
		}
	}
	for k := range s.PrefetchFills {
		if s.PrefetchUsed[k] > s.PrefetchFills[k] {
			return fmt.Errorf("faults: audit %s kind %d: prefetch used %d > fills %d",
				name, k, s.PrefetchUsed[k], s.PrefetchFills[k])
		}
	}
	return nil
}

// AuditJukebox checks a Jukebox's counters for self-consistency.
func AuditJukebox(s core.Stats) error {
	if s.LastRecordBytes < 0 {
		return fmt.Errorf("faults: audit jukebox: negative record bytes %d", s.LastRecordBytes)
	}
	if s.ReplayPrefetches > 0 && s.ReplayEntries == 0 {
		return fmt.Errorf("faults: audit jukebox: %d prefetches from zero replay entries", s.ReplayPrefetches)
	}
	return nil
}

// AuditReap checks a REAP recorder/restorer's conservation invariants:
// every replayed manifest page is installed or skipped exactly once, every
// installed page settles as used or wasted (never both — demanded and
// prefetched installs are never double-counted), prefetched bytes are
// line-exact and bounded by the pages the manifest named, and late pages
// are a subset of used ones.
func AuditReap(s reap.Stats) error {
	switch {
	case s.RestoredPages+s.SkippedResident != s.ReplayedPages:
		return fmt.Errorf("faults: audit reap: restored %d + skipped %d != replayed %d",
			s.RestoredPages, s.SkippedResident, s.ReplayedPages)
	case s.UsedPages+s.WastedPages > s.RestoredPages:
		return fmt.Errorf("faults: audit reap: used %d + wasted %d exceeds restored %d (double-counted install)",
			s.UsedPages, s.WastedPages, s.RestoredPages)
	case s.PrefetchedBytes != s.PrefetchedLines*mem.LineSize:
		return fmt.Errorf("faults: audit reap: prefetched bytes %d != %d lines x %d B",
			s.PrefetchedBytes, s.PrefetchedLines, mem.LineSize)
	case s.PrefetchedBytes > s.ReplayedPages*vm.PageSize:
		return fmt.Errorf("faults: audit reap: prefetched %d B exceeds manifest reach %d pages x %d B",
			s.PrefetchedBytes, s.ReplayedPages, vm.PageSize)
	case s.LatePages > s.UsedPages:
		return fmt.Errorf("faults: audit reap: late pages %d exceed used pages %d", s.LatePages, s.UsedPages)
	case s.WastedBytes != s.WastedPages*vm.PageSize:
		return fmt.Errorf("faults: audit reap: wasted bytes %d != %d pages x %d B",
			s.WastedBytes, s.WastedPages, vm.PageSize)
	case s.ManifestBytes < s.ManifestPages: // any positive entry width makes bytes >= pages
		return fmt.Errorf("faults: audit reap: manifest bytes %d below page count %d", s.ManifestBytes, s.ManifestPages)
	case s.DeltaRestores > s.Restores:
		return fmt.Errorf("faults: audit reap: delta restores %d exceed restores %d", s.DeltaRestores, s.Restores)
	}
	return nil
}

// AuditTraffic checks a traffic run's aggregate invariants, including
// dispatch conservation: every offered invocation is accounted for exactly
// once as served, shed or failed.
func AuditTraffic(r serverless.TrafficResult) error {
	switch {
	case r.Offered < 0 || r.Served < 0 || r.Shed < 0 || r.Failed < 0 || r.ColdStarts < 0:
		return fmt.Errorf("faults: audit traffic: negative counters (offered %d, served %d, shed %d, failed %d, cold %d)",
			r.Offered, r.Served, r.Shed, r.Failed, r.ColdStarts)
	case r.Served+r.Shed+r.Failed != r.Offered:
		return fmt.Errorf("faults: audit traffic: served %d + shed %d + failed %d != offered %d",
			r.Served, r.Shed, r.Failed, r.Offered)
	case r.ColdStarts > r.Served+r.Failed:
		return fmt.Errorf("faults: audit traffic: cold starts %d exceed dispatched %d", r.ColdStarts, r.Served+r.Failed)
	case r.PrewarmHits < 0 || r.PlacementMigrations < 0 || r.JukeboxRebinds < 0:
		return fmt.Errorf("faults: audit traffic: negative scheduling counters (prewarm %d, migrations %d, rebinds %d)",
			r.PrewarmHits, r.PlacementMigrations, r.JukeboxRebinds)
	case r.PlacementMigrations > r.Served+r.Failed || r.JukeboxRebinds > r.Served+r.Failed:
		return fmt.Errorf("faults: audit traffic: migrations %d / rebinds %d exceed dispatched %d",
			r.PlacementMigrations, r.JukeboxRebinds, r.Served+r.Failed)
	case r.ResidentMs < 0:
		return fmt.Errorf("faults: audit traffic: negative resident time %g ms", r.ResidentMs)
	case r.BusyFraction < 0 || r.BusyFraction > 1.000001:
		return fmt.Errorf("faults: audit traffic: busy fraction %g outside [0, 1]", r.BusyFraction)
	case r.SimulatedMs < 0:
		return fmt.Errorf("faults: audit traffic: negative simulated span %g ms", r.SimulatedMs)
	case r.CPI.N() != r.Served:
		return fmt.Errorf("faults: audit traffic: %d CPI samples for %d served", r.CPI.N(), r.Served)
	}
	// The per-function breakdown must conserve the fleet-wide counters.
	var served, cold, shed, failed int
	for _, f := range r.PerFunction {
		if f.Served < 0 || f.ColdStarts < 0 || f.Shed < 0 || f.Failed < 0 {
			return fmt.Errorf("faults: audit traffic: %s has negative counters (%d/%d/%d/%d)",
				f.Name, f.Served, f.ColdStarts, f.Shed, f.Failed)
		}
		served += f.Served
		cold += f.ColdStarts
		shed += f.Shed
		failed += f.Failed
	}
	if len(r.PerFunction) > 0 && (served != r.Served || cold != r.ColdStarts || shed != r.Shed || failed != r.Failed) {
		return fmt.Errorf("faults: audit traffic: per-function sums %d/%d/%d/%d != fleet %d/%d/%d/%d",
			served, cold, shed, failed, r.Served, r.ColdStarts, r.Shed, r.Failed)
	}
	// Readiness-tier accounting: every judged idle millisecond lands in
	// exactly one tier.
	if r.IdleMs < 0 || r.TierColdMs < 0 || r.TierResidentMs < 0 || r.TierPrewarmedMs < 0 {
		return fmt.Errorf("faults: audit traffic: negative tier times (idle %g, cold %g, resident %g, prewarmed %g)",
			r.IdleMs, r.TierColdMs, r.TierResidentMs, r.TierPrewarmedMs)
	}
	tol := 1e-6*r.IdleMs + 1e-3
	if sum := r.TierColdMs + r.TierResidentMs + r.TierPrewarmedMs; math.Abs(sum-r.IdleMs) > tol {
		return fmt.Errorf("faults: audit traffic: tiers sum to %g ms, idle %g ms (diff > tol %g)",
			sum, r.IdleMs, tol)
	}
	// Synchronous dispatch-time replay: at most one charge per dispatched
	// invocation, time only when charges exist.
	if r.SyncReplays < 0 || r.SyncReplayMs < 0 {
		return fmt.Errorf("faults: audit traffic: negative sync-replay counters (%d, %g ms)",
			r.SyncReplays, r.SyncReplayMs)
	}
	if r.SyncReplays > r.Served+r.Failed {
		return fmt.Errorf("faults: audit traffic: %d sync replays exceed dispatched %d",
			r.SyncReplays, r.Served+r.Failed)
	}
	if r.SyncReplays == 0 && r.SyncReplayMs > 0 {
		return fmt.Errorf("faults: audit traffic: %g ms sync-replay time with zero sync replays", r.SyncReplayMs)
	}
	// The pre-warm ledger must conserve, and the per-function breakdown must
	// conserve the ledger: used pre-warms are counted at commit, wasted ones
	// at judgment or expiry, each exactly once.
	if err := AuditPredict(r.Prewarm, ""); err != nil {
		return err
	}
	var used, wasted int
	for _, f := range r.PerFunction {
		if f.PrewarmsUsed < 0 || f.PrewarmsWasted < 0 || f.PredJudged < 0 || f.PredAbsErrMsSum < 0 {
			return fmt.Errorf("faults: audit traffic: %s has negative pre-warm counters (%d used, %d wasted, %d judged, |err| sum %g)",
				f.Name, f.PrewarmsUsed, f.PrewarmsWasted, f.PredJudged, f.PredAbsErrMsSum)
		}
		used += f.PrewarmsUsed
		wasted += f.PrewarmsWasted
	}
	if len(r.PerFunction) > 0 && (used != r.Prewarm.Used || wasted != r.Prewarm.Wasted) {
		return fmt.Errorf("faults: audit traffic: per-function pre-warms %d used / %d wasted != ledger %d / %d",
			used, wasted, r.Prewarm.Used, r.Prewarm.Wasted)
	}
	return nil
}

// AuditPredict checks a pre-warm ledger's conservation invariants: every
// scheduled pre-warm settles as exactly one of used, partial or wasted;
// expiries are a subset of waste; and every used pre-warm corresponds to one
// invocation that skipped its dispatch replay. forecaster, when non-empty,
// enables forecaster-specific invariants: the schedule-peeking "oracle" on a
// deterministic schedule never records a miss — no partial warmth, no waste
// beyond end-of-run expiries, zero prediction error.
func AuditPredict(l predict.Ledger, forecaster string) error {
	switch {
	case l.Scheduled < 0 || l.Used < 0 || l.Partial < 0 || l.Wasted < 0 ||
		l.Expired < 0 || l.ReplaySkips < 0 || l.BudgetDenied < 0 || l.Judged < 0:
		return fmt.Errorf("faults: audit predict: negative counters in %+v", l)
	case l.AbsErrMsSum < 0 || l.PrewarmBusyMs < 0:
		return fmt.Errorf("faults: audit predict: negative accumulators (|err| sum %g, busy %g ms)",
			l.AbsErrMsSum, l.PrewarmBusyMs)
	case l.Used+l.Partial+l.Wasted != l.Scheduled:
		return fmt.Errorf("faults: audit predict: used %d + partial %d + wasted %d != scheduled %d",
			l.Used, l.Partial, l.Wasted, l.Scheduled)
	case l.Expired > l.Wasted:
		return fmt.Errorf("faults: audit predict: expired %d exceed wasted %d", l.Expired, l.Wasted)
	case l.ReplaySkips != l.Used:
		return fmt.Errorf("faults: audit predict: %d replay skips for %d used pre-warms", l.ReplaySkips, l.Used)
	case l.Used == 0 && l.UsedReplayBytes != 0,
		l.Partial == 0 && l.PartialReplayBytes != 0,
		l.Wasted == 0 && l.WastedReplayBytes != 0:
		return fmt.Errorf("faults: audit predict: replay bytes charged without pre-warms (%d/%d/%d B for %d/%d/%d)",
			l.UsedReplayBytes, l.PartialReplayBytes, l.WastedReplayBytes, l.Used, l.Partial, l.Wasted)
	}
	if forecaster == "oracle" {
		tol := 1e-6*float64(l.Judged) + 1e-6
		switch {
		case l.Partial != 0:
			return fmt.Errorf("faults: audit predict: oracle recorded %d partial pre-warms", l.Partial)
		case l.Wasted != l.Expired:
			return fmt.Errorf("faults: audit predict: oracle wasted %d pre-warms beyond %d expiries", l.Wasted, l.Expired)
		case l.AbsErrMsSum > tol:
			return fmt.Errorf("faults: audit predict: oracle prediction error %g ms (tol %g)", l.AbsErrMsSum, tol)
		}
	}
	return nil
}

// FleetCounters is the conservation ledger of one cluster run, flattened so
// AuditFleet can check it without importing the cluster package (which
// imports faults). The cluster result's Counters method produces it.
type FleetCounters struct {
	// Request-level accounting: every injected request resolves exactly once.
	Offered, Served, Shed, Failed int
	// Shed decomposition.
	ShedLowPriority, TierRejected, ValveShed int
	// Failure decomposition.
	DeadlineFailed, RetriesExhausted int
	// Attempt-level accounting: attempts that failed either spawned a retry
	// or exhausted the budget.
	FailedAttempts, Retries int
	// Node-side dispatch accounting (hedges make node attempts exceed
	// request successes).
	NodeOffered, NodeServed, NodeShed, NodeFailed int
	// Hedging: wasted completions, and hedges that rescued a failed primary.
	Hedges, WastedHedges, HedgeRescues int
	// InstanceCrashes is the node-side count of doomed dispatches.
	InstanceCrashes int
	// ServedWhileDown counts node completions attributed to a node that was
	// down or ejected at dispatch time — must always be zero.
	ServedWhileDown int
}

// AuditFleet checks a cluster run's conservation invariants: injected ==
// served + shed + failed, retries never double-count, hedge work is fully
// attributed, and no request was served by a down or ejected node.
func AuditFleet(c FleetCounters) error {
	switch {
	case c.Offered < 0 || c.Served < 0 || c.Shed < 0 || c.Failed < 0 ||
		c.ShedLowPriority < 0 || c.TierRejected < 0 || c.ValveShed < 0 ||
		c.DeadlineFailed < 0 || c.RetriesExhausted < 0 ||
		c.FailedAttempts < 0 || c.Retries < 0 ||
		c.NodeOffered < 0 || c.NodeServed < 0 || c.NodeShed < 0 || c.NodeFailed < 0 ||
		c.Hedges < 0 || c.WastedHedges < 0 || c.HedgeRescues < 0 || c.InstanceCrashes < 0:
		return fmt.Errorf("faults: audit fleet: negative counters in %+v", c)
	case c.Served+c.Shed+c.Failed != c.Offered:
		return fmt.Errorf("faults: audit fleet: served %d + shed %d + failed %d != offered %d",
			c.Served, c.Shed, c.Failed, c.Offered)
	case c.ShedLowPriority+c.TierRejected+c.ValveShed != c.Shed:
		return fmt.Errorf("faults: audit fleet: shed breakdown %d+%d+%d != shed %d",
			c.ShedLowPriority, c.TierRejected, c.ValveShed, c.Shed)
	case c.DeadlineFailed+c.RetriesExhausted != c.Failed:
		return fmt.Errorf("faults: audit fleet: failure breakdown %d+%d != failed %d",
			c.DeadlineFailed, c.RetriesExhausted, c.Failed)
	case c.FailedAttempts != c.Retries+c.RetriesExhausted:
		return fmt.Errorf("faults: audit fleet: %d failed attempts but %d retries + %d exhausted (double-counted retry?)",
			c.FailedAttempts, c.Retries, c.RetriesExhausted)
	case c.NodeServed+c.NodeShed+c.NodeFailed != c.NodeOffered:
		return fmt.Errorf("faults: audit fleet: node served %d + shed %d + failed %d != node offered %d",
			c.NodeServed, c.NodeShed, c.NodeFailed, c.NodeOffered)
	case c.NodeServed != c.Served+c.WastedHedges:
		return fmt.Errorf("faults: audit fleet: node completions %d != served %d + wasted hedges %d",
			c.NodeServed, c.Served, c.WastedHedges)
	case c.NodeShed != c.ValveShed:
		return fmt.Errorf("faults: audit fleet: node sheds %d != valve sheds %d", c.NodeShed, c.ValveShed)
	case c.NodeFailed != c.InstanceCrashes:
		return fmt.Errorf("faults: audit fleet: node failures %d != instance crashes %d", c.NodeFailed, c.InstanceCrashes)
	case c.WastedHedges > c.Hedges || c.HedgeRescues > c.Hedges:
		return fmt.Errorf("faults: audit fleet: wasted %d / rescues %d exceed hedges %d",
			c.WastedHedges, c.HedgeRescues, c.Hedges)
	case c.ServedWhileDown != 0:
		return fmt.Errorf("faults: audit fleet: %d completions attributed to down or ejected nodes", c.ServedWhileDown)
	}
	return nil
}
